module lrm

go 1.24
