package mechanism

import (
	"fmt"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
)

// AnswerMany is the universal multi-RHS answering entry point: it routes
// through the Prepared's own BatchAnswerer implementation when it has one
// and otherwise falls back to answering column by column. Either way the
// result is bit-identical to looping Answer over the columns of x with
// the same source (the BatchAnswerer contract; the fallback is that loop).
//
// x is n×B — one histogram per column — and the result is m×B.
func AnswerMany(p Prepared, x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if ba, ok := p.(BatchAnswerer); ok {
		return ba.AnswerMany(x, eps, src)
	}
	return AnswerManyLoop(p, x, eps, src)
}

// AnswerManyLoop answers the columns of x one at a time through
// p.Answer, stacking the releases as columns of the result. It is the
// fallback for mechanisms without a native multi-RHS path and the
// reference semantics every BatchAnswerer must reproduce exactly.
func AnswerManyLoop(p Prepared, x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	n, cols := x.Dims()
	if cols == 0 {
		return nil, fmt.Errorf("mechanism: AnswerMany with no data columns")
	}
	col := make([]float64, n)
	var out *mat.Dense
	for j := 0; j < cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = x.At(i, j)
		}
		a, err := p.Answer(col, eps, src)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = mat.New(len(a), cols)
		}
		out.SetCol(j, a)
	}
	return out, nil
}

// addLaplaceNoiseCols perturbs the r×B matrix y in place with Laplace
// noise of scale sensitivity/ε, drawing column by column in ascending
// column order — the draw order a loop of per-column Answer calls sharing
// one source would produce, which the BatchAnswerer bit-identity contract
// requires. The gather/scatter through buf keeps the draws flowing
// through the exact same privacy.AddLaplaceNoise code path (scale
// computation, validation) as the single-vector answering paths.
//
//lrm:sanitizer y — every column is Laplace-perturbed in place
func addLaplaceNoiseCols(y *mat.Dense, sensitivity float64, eps privacy.Epsilon, src *rng.Source) error {
	r, cols := y.Dims()
	buf := make([]float64, r)
	for j := 0; j < cols; j++ {
		for i := 0; i < r; i++ {
			buf[i] = y.At(i, j)
		}
		if err := privacy.AddLaplaceNoise(buf, sensitivity, eps, src); err != nil {
			return err
		}
		y.SetCol(j, buf)
	}
	return nil
}

// checkBatchShape validates the data matrix of an AnswerMany call against
// the mechanism's domain.
func checkBatchShape(x *mat.Dense, domain int) error {
	if x == nil {
		return fmt.Errorf("mechanism: nil data matrix")
	}
	if x.Rows() != domain {
		return fmt.Errorf("mechanism: data matrix has %d rows, domain is %d", x.Rows(), domain)
	}
	if x.Cols() == 0 {
		return fmt.Errorf("mechanism: AnswerMany with no data columns")
	}
	return nil
}
