package metrics

import (
	"sync"
	"testing"

	"lrm/internal/mechanism"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestEvaluateParallelTrials exercises the worker-pool trial runner with
// many goroutines; under -race it proves the per-trial RNG sub-streams
// and result slots never collide, and that the LRM answer path's pooled
// scratch buffers are safe under concurrent Answer calls.
func TestEvaluateParallelTrials(t *testing.T) {
	w := workload.Related(12, 16, 3, rng.New(3))
	x := rng.New(4).UniformVec(16, 0, 50)

	for _, mech := range []mechanism.Mechanism{mechanism.LaplaceData{}, mechanism.LRM{}} {
		m, err := Evaluate(mech, w, x, privacy.Epsilon(1), 32, rng.New(5))
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if m.Trials != 32 || m.AvgSquaredError <= 0 {
			t.Errorf("%s: implausible measurement %+v", mech.Name(), m)
		}
	}
}

// TestPreparedConcurrentAnswer hammers a single prepared LRM from many
// goroutines directly (the serving pattern, not the harness pattern);
// with -race it pins down that Answer is safe for concurrent use.
func TestPreparedConcurrentAnswer(t *testing.T) {
	w := workload.Related(12, 16, 3, rng.New(13))
	p, err := mechanism.LRM{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(14).UniformVec(16, 0, 50)
	exact := w.Answer(x)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		src := rng.New(int64(100 + g))
		go func(src *rng.Source) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				noisy, err := p.Answer(x, privacy.Epsilon(1), src)
				if err != nil {
					t.Error(err)
					return
				}
				if len(noisy) != len(exact) {
					t.Errorf("answer length %d, want %d", len(noisy), len(exact))
					return
				}
			}
		}(src)
	}
	wg.Wait()
}
