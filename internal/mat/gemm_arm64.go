//go:build arm64 && !noasm

package mat

// gemmKernel4x8 is the NEON (ASIMD) micro-kernel in gemm_arm64.s: the
// same 4×8 tile as the amd64 kernel, eight 2-lane double accumulators
// per pair of rows, one fused multiply-add (VFMLA) chain per element in
// ascending k. IEEE-754 fused multiply-add rounds once per step
// regardless of lane width, so this kernel's results are bit-identical
// to the AVX2 and AVX-512 FMA kernels'. It must only be called when
// gemmUseAsm is true.
//
//go:noescape
func gemmKernel4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)

// gemmKernelMulAdd4x8 is the column-exact NEON micro-kernel: same tile,
// but every accumulation step rounds the product and the sum separately
// — matching the scalar kernels and MulVecTo dot products bit for bit.
// The Go assembler exposes no vector FMUL/FADD for arm64, so the kernel
// synthesizes separate rounding from two VFMLA steps (see gemm_arm64.s).
// It must only be called when gemmUseAsm is true.
//
//go:noescape
func gemmKernelMulAdd4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)

// gemmUseAsm gates the assembly micro-kernel. ASIMD is architecturally
// baseline on arm64 — there is nothing to detect — but this stays a
// variable so tests can force the scalar fallback and check both paths
// against the oracle.
var gemmUseAsm = true

// gemmArchFamily is the architecture's base assembly tier — what the
// dispatcher reports and falls back to on arm64, which has no wider
// tier.
const gemmArchFamily = famNEON
