package mechanism

import (
	"math"
	"testing"

	"lrm/internal/rng"
	"lrm/internal/transform"
	"lrm/internal/workload"
)

func TestCompressivePrepareValidation(t *testing.T) {
	if _, err := (Compressive{}).Prepare(nil); err == nil {
		t.Fatal("want error for nil workload")
	}
	// Non-power-of-two domain is rejected (Haar dictionary).
	if _, err := (Compressive{}).Prepare(workload.Identity(12)); err == nil {
		t.Fatal("want error for non-power-of-two domain")
	}
	if _, err := (Compressive{Measurements: 99}).Prepare(workload.Identity(16)); err == nil {
		t.Fatal("want error for k > n")
	}
	p, err := (Compressive{}).Prepare(workload.Identity(64))
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("nil prepared")
	}
}

func TestCompressiveAnswerShapeAndFinite(t *testing.T) {
	src := rng.New(1)
	w := workload.Range(10, 64, src)
	p, err := (Compressive{Measurements: 16, Sparsity: 4, Seed: 5}).Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := src.UniformVec(64, 0, 50)
	got, err := p.Answer(x, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d answers want 10", len(got))
	}
	for _, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite answer")
		}
	}
	if _, err := p.Answer(x[:3], 1, src); err == nil {
		t.Fatal("want error for wrong data length")
	}
	if _, err := p.Answer(x, 0, src); err == nil {
		t.Fatal("want error for zero epsilon")
	}
	if !math.IsNaN(p.ExpectedSSE(1)) {
		t.Fatal("compressive should report no analytic SSE")
	}
}

func TestCompressiveAccurateOnSparseDataHighEps(t *testing.T) {
	// Wavelet-sparse data, huge ε: answers should be near exact.
	n := 128
	coeffs := make([]float64, n)
	coeffs[0], coeffs[3] = 200, 50
	x := transform.IHaar(coeffs)
	w := workload.Total(n)
	p, err := (Compressive{Measurements: 32, Sparsity: 2, Seed: 9}).Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	got, err := p.Answer(x, 1e9, src)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Answer(x)[0]
	if math.Abs(got[0]-want) > 1e-3*math.Abs(want) {
		t.Fatalf("total %g want %g", got[0], want)
	}
}

func TestHistogramPrepareValidation(t *testing.T) {
	if _, err := (Histogram{}).Prepare(nil); err == nil {
		t.Fatal("want error for nil workload")
	}
	if _, err := (Histogram{Buckets: 100}).Prepare(workload.Identity(8)); err == nil {
		t.Fatal("want error for buckets > n")
	}
	p, err := (Histogram{}).Prepare(workload.Identity(64))
	if err != nil {
		t.Fatal(err)
	}
	if p.(*histogramPrepared).buckets != 4 {
		t.Fatalf("default buckets for n=64 should be 4, got %d", p.(*histogramPrepared).buckets)
	}
}

func TestHistogramNames(t *testing.T) {
	if (Histogram{}).Name() != "NF" {
		t.Fatal("NoiseFirst variant should be named NF")
	}
	if (Histogram{StructureFirst: true}).Name() != "SF" {
		t.Fatal("StructureFirst variant should be named SF")
	}
	if (Compressive{}).Name() != "CM" {
		t.Fatal("compressive should be named CM")
	}
	if (Fourier{}).Name() != "FPA" {
		t.Fatal("Fourier should be named FPA")
	}
}

func TestHistogramAnswerBothVariants(t *testing.T) {
	src := rng.New(3)
	w := workload.Range(8, 64, src)
	x := make([]float64, 64)
	for i := range x {
		if i < 32 {
			x[i] = 40
		} else {
			x[i] = 10
		}
	}
	for _, m := range []Mechanism{
		Histogram{Buckets: 4},
		Histogram{Buckets: 4, StructureFirst: true},
	} {
		p, err := m.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got, err := p.Answer(x, 1, src)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(got) != 8 {
			t.Fatalf("%s: got %d answers", m.Name(), len(got))
		}
		for _, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite answer", m.Name())
			}
		}
		if _, err := p.Answer(x[:3], 1, src); err == nil {
			t.Fatalf("%s: want error for wrong data length", m.Name())
		}
		if _, err := p.Answer(x, 0, src); err == nil {
			t.Fatalf("%s: want error for zero epsilon", m.Name())
		}
		if !math.IsNaN(p.ExpectedSSE(1)) {
			t.Fatalf("%s: should report no analytic SSE", m.Name())
		}
	}
}

func TestHistogramNoiseFirstBeatsLaplaceOnBlockyData(t *testing.T) {
	// The headline claim of reference [29]: on blocky data, bucket
	// averaging beats per-cell Laplace noise for range queries.
	src := rng.New(4)
	n := 128
	x := make([]float64, n)
	for i := range x {
		if i/32%2 == 0 {
			x[i] = 500
		} else {
			x[i] = 100
		}
	}
	w := workload.Range(20, n, src)
	exact := w.Answer(x)

	sse := func(m Mechanism, seed int64) float64 {
		p, err := m.Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(seed)
		var total float64
		const trials = 15
		for trial := 0; trial < trials; trial++ {
			got, err := p.Answer(x, 0.1, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				d := got[i] - exact[i]
				total += d * d
			}
		}
		return total / trials
	}
	nf := sse(Histogram{Buckets: 8}, 5)
	lm := sse(LaplaceData{}, 6)
	if nf >= lm {
		t.Fatalf("NoiseFirst SSE %g should beat Laplace-on-data %g on blocky data", nf, lm)
	}
}
