package privacy

import (
	"errors"
	"sync"
	"testing"
)

// TestBudgetConcurrentSpend hammers Spend from many goroutines and checks
// the privacy invariant: the sum of successful spends never exceeds the
// total. Run with -race this also pins the mutex against regressions to
// the old unsynchronized check-then-add.
func TestBudgetConcurrentSpend(t *testing.T) {
	const (
		goroutines = 64
		perG       = 50
		eps        = Epsilon(0.05)
		total      = Epsilon(1.0)
	)
	b, err := NewBudget(total)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	granted := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := b.Spend(eps); err == nil {
					granted[g]++
				}
				b.Remaining() // concurrent reader
				b.Spent()
			}
		}(g)
	}
	wg.Wait()
	totalGranted := 0
	for _, n := range granted {
		totalGranted += n
	}
	// 1.0 / 0.05 = 20 spends fit exactly; anything more is an overspend.
	if totalGranted != 20 {
		t.Fatalf("granted %d spends of %v against total %v, want exactly 20",
			totalGranted, float64(eps), float64(total))
	}
	if spent := float64(b.Spent()); spent > float64(total)*(1+budgetSlack) {
		t.Fatalf("spent %v exceeds total %v", spent, float64(total))
	}
}

// TestBudgetLargeTotalBoundary: with the old absolute slack of 1e-12,
// accumulated rounding error on a large total rejected the legitimate
// final spend. The relative slack must admit it.
func TestBudgetLargeTotalBoundary(t *testing.T) {
	const total = Epsilon(1e9)
	b, err := NewBudget(total)
	if err != nil {
		t.Fatal(err)
	}
	part := total / 7 // not exactly representable; seven adds accumulate error
	for i := 0; i < 7; i++ {
		if err := b.Spend(part); err != nil {
			t.Fatalf("spend %d/7 of large total rejected: %v", i+1, err)
		}
	}
	if err := b.Spend(total / 1e6); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend after exhaustion = %v, want ErrBudgetExhausted", err)
	}
}

// TestBudgetTinyTotalBoundary: with the old absolute slack of 1e-12, a
// budget of 1e-10 admitted a genuine 0.5% overspend because the slack
// dwarfed the budget. The relative slack must reject it.
func TestBudgetTinyTotalBoundary(t *testing.T) {
	b, err := NewBudget(1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(1e-10); err != nil {
		t.Fatalf("spending the exact tiny total rejected: %v", err)
	}
	if err := b.Spend(5e-13); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("real overspend on tiny total = %v, want ErrBudgetExhausted", err)
	}
}
