// Accountant: budgeting repeated releases. A data custodian republishes
// the same (changing) histogram every day for 90 days. Naive sequential
// composition forces each day's ε to be ε_total/90; the Rényi-DP
// accountant with Gaussian noise spends the same total (ε, δ) budget far
// more efficiently, because Gaussian privacy loss composes like √k
// rather than k. The example calibrates both and compares per-day noise
// and total error on the final day's batch of range queries.
package main

import (
	"fmt"

	"lrm"
)

func main() {
	const (
		days     = 90
		n        = 256
		epsTotal = 2.0
		delta    = 1e-6
	)

	// --- Naive plan: Laplace each day at ε_total/days -----------------
	epsDay := lrm.Epsilon(epsTotal / days)
	budget, err := lrm.NewBudget(epsTotal)
	if err != nil {
		panic(err)
	}
	for d := 0; d < days; d++ {
		if err := budget.Spend(epsDay); err != nil {
			panic(fmt.Sprintf("day %d: %v", d, err))
		}
	}
	laplaceScale := 1 / float64(epsDay)
	fmt.Printf("naive sequential composition: ε/day = %.4f, Laplace scale %.0f, per-cell noise variance %.3g\n",
		float64(epsDay), laplaceScale, 2*laplaceScale*laplaceScale)

	// --- RDP plan: Gaussian each day, calibrated jointly ---------------
	sigma, err := lrm.GaussianSigmaForBudget(epsTotal, delta, days)
	if err != nil {
		panic(err)
	}
	fmt.Printf("RDP-accounted Gaussian:       σ/day = %.1f, per-cell noise variance %.3g\n",
		sigma, sigma*sigma)
	ratio := 2 * laplaceScale * laplaceScale / (sigma * sigma)
	fmt.Printf("per-day variance advantage of RDP plan: %.1f×\n\n", ratio)

	// --- Simulate the final day --------------------------------------
	src := lrm.NewSource(7)
	data := lrm.SearchLogs(8192, src).Merge(n)
	w := lrm.RangeWorkload(32, n, lrm.NewSource(2))
	exact := w.Answer(data.Counts)

	// Laplace day (the naive plan's daily release answers the workload on
	// per-cell noisy counts).
	var lapSSE, gaussSSE float64
	const trials = 20
	acct := lrm.NewRDPAccountant()
	for trial := 0; trial < trials; trial++ {
		noisyLap := make([]float64, n)
		noisyGauss := make([]float64, n)
		for i, v := range data.Counts {
			noisyLap[i] = v + src.Laplace(laplaceScale)
			noisyGauss[i] = v + src.Normal()*sigma
		}
		if err := acct.AddGaussian(sigma, 1); err != nil {
			panic(err)
		}
		for qi, e := range exact {
			dl := w.W.RawRow(qi)
			var al, ag float64
			for j, c := range dl {
				al += c * noisyLap[j]
				ag += c * noisyGauss[j]
			}
			lapSSE += (al - e) * (al - e)
			gaussSSE += (ag - e) * (ag - e)
		}
	}
	fmt.Printf("final-day workload SSE (32 range queries, %d trials):\n", trials)
	fmt.Printf("  naive Laplace plan:  %.4g\n", lapSSE/trials)
	fmt.Printf("  RDP Gaussian plan:   %.4g  (%.1f× lower)\n",
		gaussSSE/trials, lapSSE/gaussSSE)

	// The accountant certifies the simulated spend (only `trials` of the
	// 90 days were simulated here; the calibration covered all 90).
	spent, err := acct.Epsilon(delta)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\naccountant-certified ε after %d simulated releases: %.3f (δ = %g)\n",
		trials, float64(spent), delta)
	if float64(spent) > epsTotal {
		panic("accountant overspent — calibration bug")
	}
}
