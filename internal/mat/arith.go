package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// dimPanic reports a dimension mismatch in op between a and b.
func dimPanic(op string, a, b *Dense) {
	panic(fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
}

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Add", a, b)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Sub", a, b)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

// AddScaled returns a + s*b, the matrix axpy.
func AddScaled(a *Dense, s float64, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("AddScaled", a, b)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + s*b.data[i]
	}
	return out
}

// ElemMul returns the Hadamard (element-wise) product a ∘ b.
func ElemMul(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("ElemMul", a, b)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v * b.data[i]
	}
	return out
}

// parallelThreshold is the amount of multiply work (flops) below which
// Mul runs single-threaded; fork/join overhead dominates for small
// products, which the LRM inner loop issues by the thousand.
const parallelThreshold = 1 << 21

// Mul returns the matrix product a·b.
//
// The inner loops are written j-last over b's rows so that both operands
// stream sequentially (ikj order); rows of the output are computed in
// parallel when the product is large enough.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		dimPanic("Mul", a, b)
	}
	out := New(a.rows, b.cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Dense) {
	n := b.cols
	kmax := a.cols
	rowWork := func(i int) {
		arow := a.RawRow(i)
		orow := out.RawRow(i)
		// Register-blocked over 4 rows of b: one pass over orow applies
		// four axpy updates, quartering the load/store traffic on the
		// accumulator row.
		k := 0
		for ; k+3 < kmax; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.data[k*n : k*n+n]
			b1 := b.data[(k+1)*n : (k+1)*n+n]
			b2 := b.data[(k+2)*n : (k+2)*n+n]
			b3 := b.data[(k+3)*n : (k+3)*n+n]
			for j := range orow {
				orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < kmax; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.data[k*n : k*n+n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	parallelRows(a.rows, a.cols*b.cols, rowWork)
}

// parallelRows invokes work(i) for i in [0,rows), in parallel when the
// total work volume rows·workPerRow is large enough to amortize
// scheduling. Worker count is sized so each worker gets at least ~1M
// units of work, which keeps fork/join overhead negligible.
func parallelRows(rows, workPerRow int, work func(i int)) {
	if rows == 0 {
		return
	}
	total := rows * max(workPerRow, 1)
	if total < parallelThreshold || rows == 1 {
		for i := 0; i < rows; i++ {
			work(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if byWork := total / (1 << 20); workers > byWork {
		workers = byWork
	}
	if workers > rows {
		workers = rows
	}
	if workers < 2 {
		for i := 0; i < rows; i++ {
			work(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				work(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MulABt returns a·bᵀ without materializing the transpose.
func MulABt(a, b *Dense) *Dense {
	if a.cols != b.cols {
		dimPanic("MulABt", a, b)
	}
	out := New(a.rows, b.rows)
	work := func(i int) {
		arow := a.RawRow(i)
		orow := out.RawRow(i)
		for j := 0; j < b.rows; j++ {
			brow := b.RawRow(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	parallelRows(a.rows, a.cols*b.rows, work)
	return out
}

// MulAtB returns aᵀ·b without materializing the transpose.
func MulAtB(a, b *Dense) *Dense {
	if a.rows != b.rows {
		dimPanic("MulAtB", a, b)
	}
	// (aᵀb)ᵢⱼ = Σ_k a[k][i] b[k][j]. Accumulate row-by-row of the inputs;
	// parallelize over output rows (columns of a) via per-worker passes.
	out := New(a.cols, b.cols)
	work := func(i int) {
		orow := out.RawRow(i)
		for k := 0; k < a.rows; k++ {
			av := a.data[k*a.cols+i]
			if av == 0 {
				continue
			}
			brow := b.RawRow(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	parallelRows(a.cols, a.rows*b.cols, work)
	return out
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.RawRow(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns aᵀ·x.
func MulVecT(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.RawRow(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// Gram returns aᵀ·a, exploiting the symmetry of the result.
func Gram(a *Dense) *Dense {
	out := New(a.cols, a.cols)
	for k := 0; k < a.rows; k++ {
		row := a.RawRow(k)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			orow := out.RawRow(i)
			for j := i; j < a.cols; j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < a.cols; i++ {
		for j := i + 1; j < a.cols; j++ {
			out.data[j*a.cols+i] = out.data[i*a.cols+j]
		}
	}
	return out
}

// GramT returns a·aᵀ, exploiting the symmetry of the result.
func GramT(a *Dense) *Dense {
	out := New(a.rows, a.rows)
	work := func(i int) {
		ri := a.RawRow(i)
		orow := out.RawRow(i)
		for j := i; j < a.rows; j++ {
			rj := a.RawRow(j)
			var s float64
			for k, v := range ri {
				s += v * rj[k]
			}
			orow[j] = s
		}
	}
	parallelRows(a.rows, a.rows*a.cols/2, work)
	for i := 0; i < a.rows; i++ {
		for j := i + 1; j < a.rows; j++ {
			out.data[j*a.rows+i] = out.data[i*a.rows+j]
		}
	}
	return out
}

// Dot returns the Frobenius inner product ⟨a,b⟩ = Σᵢⱼ aᵢⱼ·bᵢⱼ.
func Dot(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Dot", a, b)
	}
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}
