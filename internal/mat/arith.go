package mat

import (
	"fmt"
)

// dimPanic reports a dimension mismatch in op between a and b.
func dimPanic(op string, a, b *Dense) {
	panic(fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
}

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Add", a, b)
	}
	return AddTo(New(a.rows, a.cols), a, b)
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Sub", a, b)
	}
	return SubTo(New(a.rows, a.cols), a, b)
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	return ScaleTo(New(a.rows, a.cols), s, a)
}

// AddScaled returns a + s*b, the matrix axpy.
func AddScaled(a *Dense, s float64, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("AddScaled", a, b)
	}
	return AddScaledTo(New(a.rows, a.cols), a, s, b)
}

// ElemMul returns the Hadamard (element-wise) product a ∘ b.
func ElemMul(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("ElemMul", a, b)
	}
	return ElemMulTo(New(a.rows, a.cols), a, b)
}

// Mul returns the matrix product a·b.
//
// Products funnel through the cache-blocked packed GEMM in gemm.go: the
// right operand is packed into column panels once per product and output
// tiles are computed by a register-blocked micro-kernel, in parallel on
// the package's persistent worker pool when the product is large enough
// (see pool.go).
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		dimPanic("Mul", a, b)
	}
	out := New(a.rows, b.cols)
	mulInto(out, a, b)
	return out
}

// mulInto overwrites out with a·b.
func mulInto(out, a, b *Dense) {
	gemmMain(out, a.rows, b.cols, a.cols,
		aView{data: a.data, row: a.cols, k: 1},
		b.data, b.cols, 1, false, false, nil)
}

// MulABt returns a·bᵀ without materializing the transpose.
func MulABt(a, b *Dense) *Dense {
	if a.cols != b.cols {
		dimPanic("MulABt", a, b)
	}
	out := New(a.rows, b.rows)
	mulABtInto(out, a, b)
	return out
}

// mulABtInto overwrites out with a·bᵀ. The transposed right operand
// packs in place (swapped pack strides), so no transpose is materialized.
func mulABtInto(out, a, b *Dense) {
	gemmMain(out, a.rows, b.rows, a.cols,
		aView{data: a.data, row: a.cols, k: 1},
		b.data, 1, b.cols, false, false, nil)
}

// MulAtB returns aᵀ·b without materializing the transpose.
func MulAtB(a, b *Dense) *Dense {
	if a.rows != b.rows {
		dimPanic("MulAtB", a, b)
	}
	out := New(a.cols, b.cols)
	mulAtBInto(out, a, b)
	return out
}

// mulAtBInto overwrites out with aᵀ·b: the left operand is walked
// through a transposed view (row stride 1, k stride a.cols), which the
// micro-kernels support natively.
func mulAtBInto(out, a, b *Dense) {
	gemmMain(out, a.cols, b.cols, a.rows,
		aView{data: a.data, row: 1, k: a.cols},
		b.data, b.cols, 1, false, false, nil)
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	return MulVecTo(make([]float64, a.rows), a, x)
}

// MulVecT returns aᵀ·x.
func MulVecT(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	return MulVecTTo(make([]float64, a.cols), a, x)
}

// Gram returns aᵀ·a, exploiting the symmetry of the result.
func Gram(a *Dense) *Dense {
	out := New(a.cols, a.cols)
	gramInto(out, a)
	return out
}

// gramInto overwrites out with aᵀ·a: only tiles touching the upper
// triangle are computed, then mirrored.
func gramInto(out, a *Dense) {
	gemmMain(out, a.cols, a.cols, a.rows,
		aView{data: a.data, row: 1, k: a.cols},
		a.data, a.cols, 1, true, false, nil)
	mirrorLower(out)
}

// GramT returns a·aᵀ, exploiting the symmetry of the result.
func GramT(a *Dense) *Dense {
	out := New(a.rows, a.rows)
	gramTInto(out, a)
	return out
}

// gramTInto overwrites out with a·aᵀ. Tiles strictly below the diagonal
// are skipped and the rest are clipped to the triangle; the pool's
// dynamic tile claiming balances the remaining triangular grid (the old
// contiguous row partition gave the first worker ~2× the flops of the
// last, since row i costs (rows−i) dot products).
func gramTInto(out, a *Dense) {
	gemmMain(out, a.rows, a.rows, a.cols,
		aView{data: a.data, row: a.cols, k: 1},
		a.data, 1, a.cols, true, false, nil)
	mirrorLower(out)
}

// Dot returns the Frobenius inner product ⟨a,b⟩ = Σᵢⱼ aᵢⱼ·bᵢⱼ.
func Dot(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Dot", a, b)
	}
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}
