package experiments

import (
	"fmt"
	"time"

	"lrm/internal/core"
	"lrm/internal/mat"
	"lrm/internal/rng"
)

// Ablations measures the design choices DESIGN.md calls out, holding the
// workload fixed and varying one optimizer knob at a time. Each row
// reports the achieved objective (expected SSE at ε = 1, the quantity the
// decomposition minimizes) and the wall-clock cost.
func Ablations(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	m, n := cfg.defaultM(), cfg.defaultN()
	s := sDefault(m, n)

	type variant struct {
		name string
		opts core.Options
	}
	base := cfg.lrmOptions()
	withBase := func(mod func(*core.Options)) core.Options {
		o := base
		mod(&o)
		return o
	}
	variants := []variant{
		{"nesterov", base},
		{"plain-pg", withBase(func(o *core.Options) { o.Solver = core.SolverProjectedGradient })},
		{"beta-adaptive", base},
		{"beta-fixed10", withBase(func(o *core.Options) { o.BetaDoubleEvery = 10 })},
		{"beta-frozen", withBase(func(o *core.Options) { o.BetaDoubleEvery = -1 })},
		{"restarts-1", base},
		{"restarts-4", withBase(func(o *core.Options) { o.Restarts = 4 })},
		{"fallback-on", withBase(func(o *core.Options) { o.IdentityFallback = true })},
		{"init-exact-svd", base},
		{"init-randomized", withBase(func(o *core.Options) { o.RandomizedInit = true })},
	}

	kinds := []string{"WRange", "WRelated"}
	results := make([][]Row, len(kinds)*len(variants))
	var points []func() error
	for ki, kind := range kinds {
		w, err := buildWorkload(kind, m, n, s, rng.New(cfg.Seed+int64(ki)*41))
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			slot := ki*len(variants) + vi
			kind, v := kind, v
			points = append(points, func() error {
				start := time.Now()
				d, err := core.Decompose(w.W, v.opts)
				if err != nil {
					return fmt.Errorf("ablation %s on %s: %w", v.name, kind, err)
				}
				results[slot] = []Row{{
					Figure: "Ablation", Dataset: "-", Workload: kind,
					Mechanism: v.name, Param: "variant", Value: float64(vi),
					Epsilon: 1, AvgSqErr: d.ExpectedSSE(1),
					Seconds: time.Since(start).Seconds(),
				}}
				return nil
			})
		}
	}
	if err := runPoints(points); err != nil {
		return nil, err
	}
	return flatten(results), nil
}

// AblationBaselineSSE returns the noise-on-data SSE for the ablation
// workloads so callers can contextualize the objective values.
func AblationBaselineSSE(cfg Config, kind string) (float64, error) {
	cfg = cfg.withDefaults()
	m, n := cfg.defaultM(), cfg.defaultN()
	ki := 0
	if kind == "WRelated" {
		ki = 1
	}
	w, err := buildWorkload(kind, m, n, sDefault(m, n), rng.New(cfg.Seed+int64(ki)*41))
	if err != nil {
		return 0, err
	}
	return 2 * mat.SquaredSum(w.W), nil
}
