// Package plan is the adaptive mechanism planner: the optimize-once /
// serve-many split between deciding HOW a workload should be answered
// and answering it. It turns the workload analysis of
// internal/workload (rank, sensitivity, the analytic baseline SSEs —
// the decision inputs of the paper's Sections 3.2 and 4) into an
// executable Plan: candidate mechanisms from the mechanism.ByName
// registry are scored by their analytic ExpectedSSE closed forms (with
// an empirical Monte-Carlo probe as the fallback when no closed form
// exists), the winner's tuned parameters are recorded, and the whole
// decision is reproducible (a content Digest) and explainable
// (Explain).
//
// One factorization, end to end: the planner runs workload.Analyze
// exactly once, and the retained SVD is handed to the chosen
// mechanism's PrepareAnalyzed (the LRM reuses it for its rank default
// and Lemma-3 starting point), so planning never factors W a second
// time. The paper's regime logic is built in: the LRM candidate is
// scored only when the analysis puts the workload in the low-rank
// regime of Section 4 — on a (near-)full-rank workload the ALM cannot
// beat the classical baselines, so the planner skips the expensive
// decomposition entirely and the Section 3.2 comparison (m·Δ'² vs ΣW²)
// decides between noise-on-results and noise-on-data.
package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"

	"lrm/internal/core"
	"lrm/internal/mechanism"
	"lrm/internal/metrics"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Options configures New. The zero value scores the default candidate
// set (lrm, lm, nor) at ε = 1.
type Options struct {
	// Mechanisms is the candidate set, as mechanism.ByName registry
	// names. Nil means DefaultCandidates. An unknown name fails the plan
	// (a typo silently narrowing the candidate set would be worse).
	Mechanisms []string
	// Eps is the scoring budget. All ExpectedSSE closed forms in this
	// repository scale as 1/ε², so ε cannot change the *ranking* of
	// analytic candidates — it exists so Explain reports errors at the
	// budget the caller will actually serve, and so probe scores (which
	// include ε-independent bias terms, e.g. a synopsis's truncation
	// error) are measured at the right operating point. Zero means 1.
	Eps privacy.Epsilon
	// Config carries the cross-mechanism tuning knobs (synopsis sizes,
	// preparation seeds) handed to mechanism.ByName for every candidate.
	Config mechanism.Config
	// LRM configures the lrm candidate's decomposition. A zero Rank is
	// tuned by the planner to the paper's recommendation, ⌈1.2·rank(W)⌉,
	// from the analysis — and the tuned value is recorded in the Plan.
	LRM core.Options
	// ShardRows mirrors the serving engine's row-sharding threshold so
	// the plan records whether (and how wide) the workload will shard.
	// Zero means no sharding. The decision itself lives in the engine;
	// the plan surfaces it for Explain and the digest.
	ShardRows int
	// ProbeTrials is the number of Monte-Carlo draws behind an empirical
	// probe score (candidates whose ExpectedSSE has no closed form).
	// Zero means 16.
	ProbeTrials int
	// ProbeSeed seeds the probe's histogram and noise streams (default
	// 1), so probe scores — and therefore plans — are reproducible.
	ProbeSeed int64
	// Fingerprint, when non-empty, must be core.Fingerprint(w.W); the
	// planner trusts it and skips hashing. Engines that already key the
	// workload by fingerprint set it.
	Fingerprint string
}

// DefaultCandidates is the candidate set scored when Options.Mechanisms
// is nil: the Low-Rank Mechanism plus the two classical baselines of
// Section 3.2. These are exactly the mechanisms whose scores cost at
// most one factorization — richer sets (wm, hm, mm, …) are opt-in
// because scoring them runs their full preparation.
func DefaultCandidates() []string { return []string{"lrm", "lm", "nor"} }

// Score sources.
const (
	// SourceAnalytic marks a score from the mechanism's ExpectedSSE
	// closed form.
	SourceAnalytic = "analytic"
	// SourceProbe marks an empirical Monte-Carlo score (no closed form).
	SourceProbe = "probe"
	// SourceSkipped marks a candidate that was not scored; Reason says
	// why.
	SourceSkipped = "skipped"
)

// Candidate is one scored (or skipped) mechanism of a Plan.
type Candidate struct {
	// Name is the registry name (lrm, lm, nor, …).
	Name string `json:"name"`
	// SSE is the expected sum of squared errors at the plan's Eps; NaN
	// when skipped (serialized as Reason instead).
	SSE float64 `json:"sse"`
	// Source is SourceAnalytic, SourceProbe, or SourceSkipped.
	Source string `json:"source"`
	// Reason explains a skipped candidate.
	Reason string `json:"reason,omitempty"`
}

// Plan is an executable answering plan for one workload: which
// mechanism serves it, with which tuned parameters, and why. Build with
// New; the winner's Prepared (retained from scoring) answers immediately
// via Prepared().
type Plan struct {
	// Fingerprint is core.Fingerprint of the planned workload.
	Fingerprint string `json:"fingerprint"`
	// Mechanism is the winning candidate's registry name.
	Mechanism string `json:"mechanism"`
	// Eps is the budget the plan was scored at.
	Eps privacy.Epsilon `json:"eps"`
	// SSE is the winner's expected SSE at Eps.
	SSE float64 `json:"sse"`
	// Shards is the serving width recorded from Options.ShardRows: 1
	// means unsharded, k means the engine will row-shard into k blocks
	// (each shard then gets its own plan under its own fingerprint).
	Shards int `json:"shards"`
	// SpecDesc, when non-empty, marks a plan made through the implicit
	// spec path (NewSpec): it is the workload.Spec's Describe() form, so
	// the engine can tell a factored strategy from a dense one when it
	// restores the plan. Empty for dense plans, whose digests are
	// unchanged by this field's existence.
	SpecDesc string `json:"spec,omitempty"`
	// LRMOptions is the lrm candidate's tuned decomposition options
	// (planner-resolved Rank included); meaningful when Mechanism is
	// "lrm" and recorded regardless so re-planning is reproducible.
	LRMOptions core.Options `json:"lrm_options"`
	// Candidates holds every candidate's score, in scoring order.
	Candidates []Candidate `json:"candidates"`
	// Stats is the workload analysis the decision rests on. Its SVD is
	// process-local and never serialized; a decoded Plan carries the
	// numeric summary only.
	Stats *workload.Stats `json:"stats"`

	prepared mechanism.Prepared
}

// New analyzes w and plans it: one workload.Analyze (one SVD), every
// candidate scored via its ExpectedSSE closed form — prepared through
// PrepareAnalyzed so the analysis is reused, never recomputed — with an
// empirical probe when no closed form exists, lowest expected SSE wins
// (ties break toward the earlier candidate). The winner's Prepared is
// retained on the Plan, so planning IS preparing: callers answer
// immediately via Prepared() with no further optimization.
func New(w *workload.Workload, opts Options) (*Plan, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("plan: nil workload")
	}
	// Validate everything cheap before the factorization: an invalid
	// scoring budget or candidate list must not cost an SVD.
	eps := opts.Eps
	if eps == 0 {
		eps = 1
	}
	if err := eps.Validate(); err != nil {
		return nil, fmt.Errorf("plan: scoring epsilon: %w", err)
	}
	names := opts.Mechanisms
	if names == nil {
		names = DefaultCandidates()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("plan: empty candidate set")
	}
	for _, name := range names {
		if _, err := mechanism.ByName(name, opts.Config); err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
	}
	stats, err := workload.Analyze(w)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	fp := opts.Fingerprint
	if fp == "" {
		fp = core.Fingerprint(w.W)
	}

	p := &Plan{
		Fingerprint: fp,
		Eps:         eps,
		Shards:      1,
		LRMOptions:  tunedLRM(opts.LRM, stats),
		Stats:       stats,
	}
	if opts.ShardRows > 0 && stats.Queries > opts.ShardRows {
		p.Shards = (stats.Queries + opts.ShardRows - 1) / opts.ShardRows
	}

	bestSSE := math.Inf(1)
	var bestPrepared mechanism.Prepared
	for _, name := range names {
		c := Candidate{Name: name, SSE: math.NaN()}
		if name == "lrm" && !stats.LowRank() {
			// Section 4's regime rule: the ALM decomposition pays off only
			// below full rank; on full-rank workloads Section 3.2 decides
			// between the baselines, so the expensive candidate is skipped
			// rather than scored.
			c.Source = SourceSkipped
			c.Reason = fmt.Sprintf("full-rank regime: rank %d ≥ 0.8·min(m,n) = %.4g, LRM cannot beat the baselines (Section 4)",
				stats.Rank, 0.8*math.Min(float64(stats.Queries), float64(stats.Domain)))
			p.Candidates = append(p.Candidates, c)
			continue
		}
		mech, err := candidateMechanism(name, opts, p.LRMOptions)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		prepared, err := mechanism.PrepareWith(mech, w, stats)
		if err != nil {
			c.Source = SourceSkipped
			c.Reason = fmt.Sprintf("prepare failed: %v", err)
			p.Candidates = append(p.Candidates, c)
			continue
		}
		c.SSE = prepared.ExpectedSSE(eps)
		c.Source = SourceAnalytic
		if math.IsNaN(c.SSE) {
			c.SSE, err = probeSSE(prepared, w, eps, opts)
			c.Source = SourceProbe
			if err != nil {
				c.SSE = math.NaN()
				c.Source = SourceSkipped
				c.Reason = fmt.Sprintf("no closed form and probe failed: %v", err)
				p.Candidates = append(p.Candidates, c)
				continue
			}
		}
		if c.SSE < bestSSE {
			bestSSE = c.SSE
			bestPrepared = prepared
			p.Mechanism = name
		}
		p.Candidates = append(p.Candidates, c)
	}
	if bestPrepared == nil {
		return nil, fmt.Errorf("plan: no scorable candidate among %v for %s (all skipped: %s)",
			names, describeShape(stats), skipReasons(p.Candidates))
	}
	p.SSE = bestSSE
	p.prepared = bestPrepared
	// The SVD served its purpose (scoring + PrepareAnalyzed); dropping it
	// keeps a cached plan at a few hundred bytes instead of pinning
	// O((m+n)·min(m,n)) floats in the engine's LRU for the entry's
	// lifetime.
	stats.SVD = nil
	return p, nil
}

// AutoPrepare plans w and returns the winning mechanism's Prepared
// alongside the plan that chose it — the one-call adaptive form of
// mechanism.Prepare. The whole call performs exactly one factorization
// of W (the analysis SVD, reused by the winner's PrepareAnalyzed).
func AutoPrepare(w *workload.Workload, opts Options) (mechanism.Prepared, *Plan, error) {
	p, err := New(w, opts)
	if err != nil {
		return nil, nil, err
	}
	return p.prepared, p, nil
}

// Prepared returns the winning mechanism's prepared instance, retained
// from scoring. Nil on a Plan that was decoded rather than built by New
// (decoded plans carry the decision; the engine re-prepares from it).
func (p *Plan) Prepared() mechanism.Prepared { return p.prepared }

// tunedLRM resolves the lrm candidate's options against the analysis:
// a zero Rank becomes the paper's ⌈1.2·rank(W)⌉ recommendation, computed
// from the already-run analysis rather than a fresh SVD, and recorded so
// the plan states the parameters it would serve with.
func tunedLRM(base core.Options, stats *workload.Stats) core.Options {
	out := base
	if out.Rank == 0 {
		out.Rank = int(math.Ceil(1.2 * float64(stats.Rank)))
		if out.Rank < 1 {
			out.Rank = 1
		}
	}
	return out
}

// candidateMechanism resolves one candidate from the registry, routing
// the tuned decomposition options into the lrm candidate.
func candidateMechanism(name string, opts Options, lrmOpts core.Options) (mechanism.Mechanism, error) {
	if name == "lrm" {
		return mechanism.LRM{Options: lrmOpts}, nil
	}
	return mechanism.ByName(name, opts.Config)
}

// probeSSE is the fallback score for mechanisms without an analytic
// error form: the mean squared error over ProbeTrials seeded releases of
// a synthetic uniform histogram. Unlike the closed forms, a probe score
// is data-dependent (it includes bias terms like a synopsis's
// truncation error on the probe data), which Explain discloses via the
// candidate's Source.
func probeSSE(p mechanism.Prepared, w *workload.Workload, eps privacy.Epsilon, opts Options) (float64, error) {
	trials := opts.ProbeTrials
	if trials <= 0 {
		trials = 16
	}
	seed := opts.ProbeSeed
	if seed == 0 {
		seed = 1
	}
	src := rng.New(seed)
	x := src.UniformVec(w.Domain(), 0, 100)
	m, err := metrics.EvaluatePrepared(p, w, x, eps, trials, src)
	if err != nil {
		return 0, err
	}
	return m.AvgSquaredError, nil
}

// Digest is a content hash of the decision and its justification:
// fingerprint, scoring budget, winner, tuned parameters, shard width,
// every candidate's score, and the analysis summary the scores rest on.
// Two plans with equal digests made the same decision for the same
// workload, so engines append it to their cache keys — a replanned
// workload whose decision changed (new candidate set, retuned options)
// must not be served by stale artifacts — and persisted documents
// re-verify it on decode, so none of these fields (the analysis
// included) can be hand-edited undetected.
func (p *Plan) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%v|%s|%v|%d|%#v\n", p.Fingerprint, float64(p.Eps), p.Mechanism, p.SSE, p.Shards, p.LRMOptions)
	if p.SpecDesc != "" {
		// Only spec plans hash the descriptor: dense plan digests predate
		// the field and must not change under it.
		fmt.Fprintf(h, "spec|%s\n", p.SpecDesc)
	}
	for _, c := range p.Candidates {
		fmt.Fprintf(h, "%s|%v|%s|%s\n", c.Name, c.SSE, c.Source, c.Reason)
	}
	if s := p.Stats; s != nil {
		fmt.Fprintf(h, "%d|%d|%d|%v|%v|%v|%v|%v\n",
			s.Queries, s.Domain, s.Rank, s.Sensitivity, s.SquaredSum, s.ConditionNumber, s.LaplaceSSE, s.ResultsSSE)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// Summary is the one-line decision: winner, expected error, and the
// margin over the runner-up. Used by engine stats surfaces.
func (p *Plan) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (SSE %.4g at ε=%g", p.Mechanism, p.SSE, float64(p.Eps))
	if name, sse, ok := p.runnerUp(); ok {
		fmt.Fprintf(&b, ", %.3g× better than %s", sse/p.SSE, name)
	}
	b.WriteString(")")
	if p.Shards > 1 {
		fmt.Fprintf(&b, " sharded ×%d", p.Shards)
	}
	return b.String()
}

// runnerUp returns the best losing candidate's name and SSE.
func (p *Plan) runnerUp() (string, float64, bool) {
	name, sse := "", math.Inf(1)
	for _, c := range p.Candidates {
		if c.Name != p.Mechanism && c.Source != SourceSkipped && c.SSE < sse {
			name, sse = c.Name, c.SSE
		}
	}
	return name, sse, name != "" && p.SSE > 0
}

// Explain renders the full human-readable justification: the workload
// analysis, every candidate's score (or skip reason), and the decision.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s for workload %s\n", p.Digest(), shortFP(p.Fingerprint))
	if p.Stats != nil {
		b.WriteString(p.Stats.Describe())
	}
	fmt.Fprintf(&b, "candidates at ε=%g:\n", float64(p.Eps))
	for _, c := range p.Candidates {
		switch c.Source {
		case SourceSkipped:
			fmt.Fprintf(&b, "  %-4s skipped: %s\n", c.Name, c.Reason)
		default:
			marker := ""
			if c.Name == p.Mechanism {
				marker = "  ← chosen"
			}
			fmt.Fprintf(&b, "  %-4s expected SSE %.6g (%s)%s\n", c.Name, c.SSE, c.Source, marker)
		}
	}
	fmt.Fprintf(&b, "decision: %s\n", p.Summary())
	if p.Mechanism == "lrm" {
		fmt.Fprintf(&b, "lrm tuning: rank %d (⌈1.2·rank(W)⌉ unless caller-pinned), gamma %g\n",
			p.LRMOptions.Rank, p.LRMOptions.Gamma)
	}
	return b.String()
}

func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

func describeShape(s *workload.Stats) string {
	return fmt.Sprintf("%d×%d workload (rank %d)", s.Queries, s.Domain, s.Rank)
}

func skipReasons(cs []Candidate) string {
	reasons := make([]string, 0, len(cs))
	for _, c := range cs {
		if c.Source == SourceSkipped {
			reasons = append(reasons, c.Name+": "+c.Reason)
		}
	}
	sort.Strings(reasons)
	return strings.Join(reasons, "; ")
}
