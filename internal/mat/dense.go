// Package mat provides the dense linear-algebra substrate used by the
// whole repository: a row-major matrix type with arithmetic, norms, and
// the decompositions (LU, Cholesky, QR, SVD, symmetric eigendecomposition)
// required by the Low-Rank Mechanism and its competitors.
//
// The package is self-contained (standard library only) and tuned for the
// moderate sizes that appear in the paper's experiments (matrices up to a
// few thousand rows/columns). Matrix products run through a cache-blocked
// packed GEMM (gemm.go) — an AVX2+FMA micro-kernel where the hardware
// supports it — whose output tiles are scheduled on a package-level
// persistent worker pool (pool.go) shared with the rest of the stack.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. All operations that produce a
// matrix allocate a fresh result unless documented otherwise.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zero-filled r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps data (row-major, length r*c) in a Dense without
// copying. The caller must not alias data afterwards.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row)))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// RawData returns the underlying row-major backing slice. Mutating it
// mutates the matrix.
func (m *Dense) RawData() []float64 { return m.data }

// RawRow returns row i as a slice aliasing the matrix storage.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.RawRow(i))
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.RawRow(i), v)
}

// SetCol copies v into column j.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src (same dimensions).
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %d×%d vs %d×%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Slice returns a copy of the submatrix rows [r0,r1) × cols [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: bad slice [%d:%d, %d:%d] of %d×%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.RawRow(i-r0), m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	return TransposeTo(New(m.cols, m.rows), m)
}

// Reuse repoints m at the given row-major backing slice (length r*c)
// without copying, replacing its previous shape and storage. It lets a
// long-lived header wrap solver-owned buffers without allocating a new
// Dense per wrap; the caller must not alias data through two headers
// into kernels that forbid aliasing.
func (m *Dense) Reuse(r, c int, data []float64) {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: Reuse data length %d does not match %d×%d", len(data), r, c))
	}
	m.rows, m.cols, m.data = r, c, data
}

// Equal reports whether m and n have the same shape and elements.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if v != n.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and n have the same shape and all elements
// within tol of each other.
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite (no NaN or ±Inf).
func (m *Dense) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%d×%d)[\n", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShow; i++ {
		b.WriteString("  ")
		for j := 0; j < m.cols && j < maxShow; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
		if m.cols > maxShow {
			b.WriteString("...")
		}
		b.WriteByte('\n')
	}
	if m.rows > maxShow {
		b.WriteString("  ...\n")
	}
	b.WriteByte(']')
	return b.String()
}
