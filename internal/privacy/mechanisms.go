package privacy

import (
	"errors"
	"fmt"
	"math"

	"lrm/internal/rng"
)

// This file provides the standard differential-privacy mechanism toolbox
// beyond the Laplace mechanism: the exponential mechanism of McSherry and
// Talwar (used pervasively in the literature the paper builds on), the
// geometric mechanism (integer-valued Laplace), the Gaussian mechanism
// for (ε,δ)-DP, and advanced composition accounting.

// ExponentialMechanism selects an index from scores under ε-DP: index i
// is chosen with probability ∝ exp(ε·scores[i]/(2·sensitivity)), where
// sensitivity bounds how much any single record can change any score.
func ExponentialMechanism(scores []float64, sensitivity float64, eps Epsilon, src *rng.Source) (int, error) {
	if err := eps.Validate(); err != nil {
		return 0, err
	}
	if len(scores) == 0 {
		return 0, errors.New("privacy: exponential mechanism with no candidates")
	}
	if sensitivity <= 0 {
		return 0, fmt.Errorf("privacy: exponential mechanism needs positive sensitivity, got %v", sensitivity)
	}
	// Numerically stable: subtract the max score before exponentiating.
	maxScore := scores[0]
	for _, s := range scores[1:] {
		if s > maxScore {
			maxScore = s
		}
	}
	c := float64(eps) / (2 * sensitivity)
	weights := make([]float64, len(scores))
	var total float64
	for i, s := range scores {
		w := math.Exp(c * (s - maxScore))
		weights[i] = w
		total += w
	}
	u := src.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i, nil
		}
	}
	return len(scores) - 1, nil
}

// GeometricMechanism adds two-sided geometric ("discrete Laplace") noise
// to an integer count: P(noise = k) ∝ α^|k| with α = exp(−ε/sensitivity).
// It is the canonical ε-DP mechanism for integer-valued queries.
func GeometricMechanism(exact int64, sensitivity float64, eps Epsilon, src *rng.Source) (int64, error) {
	if err := eps.Validate(); err != nil {
		return 0, err
	}
	if sensitivity <= 0 {
		return 0, fmt.Errorf("privacy: geometric mechanism needs positive sensitivity, got %v", sensitivity)
	}
	alpha := math.Exp(-float64(eps) / sensitivity)
	// Sample magnitude from a geometric distribution: P(|k| = j) for
	// j >= 1 is (1−α)/(1+α)·2α^j; P(0) = (1−α)/(1+α).
	u := src.Float64()
	p0 := (1 - alpha) / (1 + alpha)
	if u < p0 {
		return exact, nil
	}
	// Remaining mass split evenly between signs; invert the geometric CDF.
	u = (u - p0) / (1 - p0) // uniform in [0,1)
	sign := int64(1)
	if u >= 0.5 {
		sign = -1
		u = (u - 0.5) * 2
	} else {
		u *= 2
	}
	// P(j) ∝ α^j for j >= 1: j = 1 + floor(log(1−u)/log(α)).
	j := 1 + int64(math.Floor(math.Log(1-u)/math.Log(alpha)))
	if j < 1 {
		j = 1
	}
	return exact + sign*j, nil
}

// GaussianMechanism adds N(0, σ²) noise calibrated for (ε,δ)-DP with the
// classic analysis: σ = sensitivity·sqrt(2·ln(1.25/δ))/ε, valid for
// ε ≤ 1. Included for completeness; the paper's mechanisms are pure ε-DP.
func GaussianMechanism(exact []float64, l2Sensitivity float64, eps Epsilon, delta float64, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if eps > 1 {
		return nil, fmt.Errorf("privacy: gaussian mechanism analysis requires eps <= 1, got %v", float64(eps))
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("privacy: gaussian mechanism needs delta in (0,1), got %v", delta)
	}
	if l2Sensitivity < 0 {
		return nil, fmt.Errorf("privacy: negative sensitivity %v", l2Sensitivity)
	}
	sigma := l2Sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / float64(eps)
	out := make([]float64, len(exact))
	for i, v := range exact {
		out[i] = v + src.Normal()*sigma
	}
	return out, nil
}

// AdvancedComposition returns the (ε', δ') guarantee of running k
// mechanisms, each (ε, δ)-DP, under the advanced composition theorem of
// Dwork, Rothblum and Vadhan (FOCS 2010):
//
//	ε' = ε·sqrt(2k·ln(1/δ⁰)) + k·ε·(e^ε − 1),  δ' = k·δ + δ⁰
//
// for a chosen slack δ⁰ > 0.
func AdvancedComposition(eps Epsilon, delta float64, k int, slack float64) (Epsilon, float64, error) {
	if err := eps.Validate(); err != nil {
		return 0, 0, err
	}
	if k < 1 {
		return 0, 0, fmt.Errorf("privacy: composition of %d mechanisms", k)
	}
	if slack <= 0 || slack >= 1 {
		return 0, 0, fmt.Errorf("privacy: slack must be in (0,1), got %v", slack)
	}
	e := float64(eps)
	epsOut := e*math.Sqrt(2*float64(k)*math.Log(1/slack)) + float64(k)*e*(math.Exp(e)-1)
	deltaOut := float64(k)*delta + slack
	return Epsilon(epsOut), deltaOut, nil
}
