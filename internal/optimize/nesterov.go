package optimize

import (
	"math"
)

// Problem describes a smooth objective over ℝᵈ (stored flat) with a
// projection onto its feasible set. Grad must write into the supplied
// slice to avoid per-iteration allocation.
type Problem struct {
	// Dim is the number of variables.
	Dim int
	// Value returns the objective at x.
	Value func(x []float64) float64
	// Grad writes ∇f(x) into grad.
	Grad func(x []float64, grad []float64)
	// Project maps x in place onto the feasible set. Nil means
	// unconstrained.
	Project func(x []float64)
}

// NesterovOptions configures NesterovPG.
type NesterovOptions struct {
	// MaxIter bounds the number of accelerated iterations (default 300).
	MaxIter int
	// Tol is the stopping threshold on ‖S − L(t)‖_F between the
	// extrapolated point and its projected update (Algorithm 2 line 9;
	// default dim·1e-12 as in the paper's χ).
	Tol float64
	// Lipschitz0 is the initial Lipschitz estimate ω(0) (default 1).
	Lipschitz0 float64
	// FixedLipschitz trusts Lipschitz0 as a certified upper bound on the
	// gradient's Lipschitz constant and skips backtracking entirely.
	// For quadratic objectives (the LRM inner problem) the sufficient-
	// decrease inequality then holds unconditionally, so each iteration
	// costs one gradient evaluation and one projection — no objective
	// evaluations at all.
	FixedLipschitz bool
	// Work, when non-nil, supplies all solver scratch so a call performs
	// no heap allocation. Result.X then aliases Work memory: the caller
	// must copy it out and Put it back before the workspace is reused.
	Work *Workspace
}

// Result reports the outcome of an optimization run.
type Result struct {
	X          []float64
	Value      float64
	Iterations int
	Converged  bool
}

// NesterovPG minimizes p over its feasible set using Nesterov's
// accelerated projected gradient with backtracking estimation of the
// Lipschitz constant — Algorithm 2 of the paper. The returned X is
// feasible.
func NesterovPG(p Problem, x0 []float64, opt NesterovOptions) Result {
	if opt.MaxIter == 0 {
		opt.MaxIter = 300
	}
	if opt.Tol == 0 {
		opt.Tol = float64(p.Dim) * 1e-12
	}
	omega := opt.Lipschitz0
	if omega == 0 {
		omega = 1
	}

	d := p.Dim
	// L(t) and L(t−1) in the paper's notation.
	cur := workGet(opt.Work, d)
	copy(cur, x0)
	if p.Project != nil {
		p.Project(cur)
	}
	prev := workGet(opt.Work, d)
	copy(prev, cur)

	s := workGet(opt.Work, d)    // extrapolated point S
	grad := workGet(opt.Work, d) // ∇G(S)
	u := workGet(opt.Work, d)    // candidate update
	defer func() {
		// cur is returned as Result.X; everything else goes back.
		workPut(opt.Work, prev)
		workPut(opt.Work, s)
		workPut(opt.Work, grad)
		workPut(opt.Work, u)
	}()
	deltaPrev, delta := 0.0, 1.0

	converged := false
	iters := 0
	for t := 1; t <= opt.MaxIter; t++ {
		iters = t
		alpha := (deltaPrev - 1) / delta
		for i := range s {
			s[i] = cur[i] + alpha*(cur[i]-prev[i])
		}
		p.Grad(s, grad)

		if opt.FixedLipschitz {
			for i := range u {
				u[i] = s[i] - grad[i]/omega
			}
			if p.Project != nil {
				p.Project(u)
			}
			var moved float64
			for i := range u {
				dlt := u[i] - s[i]
				moved += dlt * dlt
			}
			copy(prev, cur)
			copy(cur, u)
			if math.Sqrt(moved) < opt.Tol {
				converged = true
				break
			}
			deltaPrev, delta = delta, (1+math.Sqrt(1+4*delta*delta))/2
			continue
		}

		gs := p.Value(s)
		// Backtracking line search on the Lipschitz estimate ω.
		accepted := false
		for j := 0; j < 60; j++ {
			for i := range u {
				u[i] = s[i] - grad[i]/omega
			}
			if p.Project != nil {
				p.Project(u)
			}
			// Convergence: the projected point did not move from S.
			var moved float64
			for i := range u {
				dlt := u[i] - s[i]
				moved += dlt * dlt
			}
			if math.Sqrt(moved) < opt.Tol {
				copy(cur, u)
				converged = true
				accepted = true
				break
			}
			// Sufficient decrease w.r.t. the quadratic model
			// J_{ω,S}(U) = G(S) + ⟨∇G(S), U−S⟩ + ω/2·‖U−S‖².
			var lin, quad float64
			for i := range u {
				dlt := u[i] - s[i]
				lin += grad[i] * dlt
				quad += dlt * dlt
			}
			model := gs + lin + 0.5*omega*quad
			if p.Value(u) <= model {
				accepted = true
				break
			}
			omega *= 2
		}
		if !accepted {
			// Lipschitz search failed to certify descent; accept the last
			// candidate anyway to make progress.
			copy(prev, cur)
			copy(cur, u)
			break
		}
		if converged {
			break
		}
		copy(prev, cur)
		copy(cur, u)
		deltaPrev, delta = delta, (1+math.Sqrt(1+4*delta*delta))/2
		// Mild decrease of the Lipschitz estimate lets ω adapt downward
		// across iterations, as is standard for backtracking APG.
		omega *= 0.9
	}
	return Result{X: cur, Value: p.Value(cur), Iterations: iters, Converged: converged}
}

// ProjectedGradient is the plain (non-accelerated) projected gradient
// method with the same backtracking rule. It exists as the ablation
// baseline against NesterovPG.
func ProjectedGradient(p Problem, x0 []float64, opt NesterovOptions) Result {
	if opt.MaxIter == 0 {
		opt.MaxIter = 300
	}
	if opt.Tol == 0 {
		opt.Tol = float64(p.Dim) * 1e-12
	}
	omega := opt.Lipschitz0
	if omega == 0 {
		omega = 1
	}
	d := p.Dim
	cur := workGet(opt.Work, d)
	copy(cur, x0)
	if p.Project != nil {
		p.Project(cur)
	}
	grad := workGet(opt.Work, d)
	u := workGet(opt.Work, d)
	defer func() {
		workPut(opt.Work, grad)
		workPut(opt.Work, u)
	}()

	converged := false
	iters := 0
	for t := 1; t <= opt.MaxIter; t++ {
		iters = t
		p.Grad(cur, grad)
		fcur := p.Value(cur)
		accepted := false
		for j := 0; j < 60; j++ {
			for i := range u {
				u[i] = cur[i] - grad[i]/omega
			}
			if p.Project != nil {
				p.Project(u)
			}
			var moved, lin, quad float64
			for i := range u {
				dlt := u[i] - cur[i]
				moved += dlt * dlt
				lin += grad[i] * dlt
				quad += dlt * dlt
			}
			if math.Sqrt(moved) < opt.Tol {
				copy(cur, u)
				converged = true
				accepted = true
				break
			}
			if p.Value(u) <= fcur+lin+0.5*omega*quad {
				accepted = true
				break
			}
			omega *= 2
		}
		if !accepted || converged {
			if accepted {
				break
			}
			copy(cur, u)
			break
		}
		copy(cur, u)
		omega *= 0.9
	}
	return Result{X: cur, Value: p.Value(cur), Iterations: iters, Converged: converged}
}
