//go:build (!amd64 && !arm64) || noasm

package mat

// Architectures without assembly micro-kernels — and any build with the
// noasm tag, which CI uses to exercise the portable fallback on stock
// runners — always use the scalar kernels in gemm.go.
var gemmUseAsm = false

// gemmArchFamily is never consulted while gemmUseAsm is false; famScalar
// keeps the dispatch table honest if a test flips the gate.
const gemmArchFamily = famScalar

// gemmKernel4x8 is never called when gemmUseAsm is false; this stub only
// satisfies the compiler.
func gemmKernel4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64) {
	panic("mat: gemmKernel4x8 called without assembly support")
}

// gemmKernelMulAdd4x8 is never called when gemmUseAsm is false; this
// stub only satisfies the compiler.
func gemmKernelMulAdd4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64) {
	panic("mat: gemmKernelMulAdd4x8 called without assembly support")
}
