package mat

import (
	"math"
	"testing"
)

func TestTrace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := Trace(a); got != 5 {
		t.Fatalf("Trace = %v, want 5", got)
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Trace of non-square did not panic")
		}
	}()
	Trace(New(2, 3))
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]float64{{3, 4}})
	if got := FrobeniusNorm(a); math.Abs(got-5) > 1e-14 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := SquaredSum(a); got != 25 {
		t.Fatalf("SquaredSum = %v, want 25", got)
	}
}

func TestMaxColAbsSum(t *testing.T) {
	a := FromRows([][]float64{
		{1, -2, 0},
		{-1, 3, 0.5},
	})
	// Column sums: 2, 5, 0.5.
	if got := MaxColAbsSum(a); got != 5 {
		t.Fatalf("MaxColAbsSum = %v, want 5", got)
	}
	if got := MaxColAbsSum(New(0, 0)); got != 0 {
		t.Fatalf("MaxColAbsSum(empty) = %v", got)
	}
}

func TestMaxRowAbsSum(t *testing.T) {
	a := FromRows([][]float64{
		{1, -2, 0},
		{-1, 3, 0.5},
	})
	if got := MaxRowAbsSum(a); got != 4.5 {
		t.Fatalf("MaxRowAbsSum = %v, want 4.5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{1, -7}, {3, 2}})
	if got := MaxAbs(a); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, -4}
	if got := VecNorm2(x); math.Abs(got-5) > 1e-14 {
		t.Fatalf("VecNorm2 = %v", got)
	}
	if got := VecNorm1(x); got != 7 {
		t.Fatalf("VecNorm1 = %v", got)
	}
	if got := VecDot(x, []float64{1, 1}); got != -1 {
		t.Fatalf("VecDot = %v", got)
	}
	sub := VecSub([]float64{5, 5}, x)
	if sub[0] != 2 || sub[1] != 9 {
		t.Fatalf("VecSub = %v", sub)
	}
	add := VecAdd([]float64{5, 5}, x)
	if add[0] != 8 || add[1] != 1 {
		t.Fatalf("VecAdd = %v", add)
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VecDot length mismatch did not panic")
		}
	}()
	VecDot([]float64{1}, []float64{1, 2})
}

func TestSpectralNormDiag(t *testing.T) {
	a := Diag([]float64{1, 9, 4})
	if got := SpectralNorm(a); math.Abs(got-9) > 1e-8 {
		t.Fatalf("SpectralNorm = %v, want 9", got)
	}
}
