package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// Row is one measured point of a figure: a (sweep value, mechanism,
// epsilon) cell with its average squared error and timing.
type Row struct {
	Figure    string  // "Fig2" … "Fig9"
	Dataset   string  // SearchLogs, NetTrace, SocialNetwork
	Workload  string  // WDiscrete, WRange, WRelated
	Mechanism string  // LM, NOR, WM, HM, MM, LRM
	Param     string  // name of the swept parameter (gamma, ratio, n, m, s)
	Value     float64 // swept value
	Epsilon   float64
	AvgSqErr  float64
	Seconds   float64 // preparation (strategy optimization) time
}

// WriteTable renders rows as an aligned text table grouped like the
// paper's figures: one block per (dataset, workload), series per
// mechanism.
func WriteTable(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "figure\tdataset\tworkload\tmech\tparam\tvalue\teps\tavg_sq_err\tprep_seconds")
	sorted := append([]Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		switch {
		case a.Figure != b.Figure:
			return a.Figure < b.Figure
		case a.Dataset != b.Dataset:
			return a.Dataset < b.Dataset
		case a.Workload != b.Workload:
			return a.Workload < b.Workload
		case a.Mechanism != b.Mechanism:
			return a.Mechanism < b.Mechanism
		case a.Epsilon != b.Epsilon:
			return a.Epsilon > b.Epsilon
		default:
			return a.Value < b.Value
		}
	})
	for _, r := range sorted {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%g\t%g\t%.4g\t%.3f\n",
			r.Figure, r.Dataset, r.Workload, r.Mechanism, r.Param, r.Value, r.Epsilon, r.AvgSqErr, r.Seconds)
	}
	return tw.Flush()
}

// WriteCSV renders rows as CSV with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "dataset", "workload", "mechanism", "param", "value", "epsilon", "avg_sq_err", "prep_seconds"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Dataset, r.Workload, r.Mechanism, r.Param,
			strconv.FormatFloat(r.Value, 'g', -1, 64),
			strconv.FormatFloat(r.Epsilon, 'g', -1, 64),
			strconv.FormatFloat(r.AvgSqErr, 'g', 6, 64),
			strconv.FormatFloat(r.Seconds, 'g', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
