package mechanism

import (
	"math"
	"testing"

	"lrm/internal/rng"
	"lrm/internal/sparse"
	"lrm/internal/workload"
)

func TestSparseStrategyValidation(t *testing.T) {
	w := workload.Identity(8)
	if _, err := NewSparseStrategyPrepared(nil, sparse.Identity(8), 0); err == nil {
		t.Fatal("want error for nil workload")
	}
	if _, err := NewSparseStrategyPrepared(w, sparse.Identity(4), 0); err == nil {
		t.Fatal("want error for column mismatch")
	}
	zero, _ := sparse.FromTriplets(2, 8, nil)
	if _, err := NewSparseStrategyPrepared(w, zero, 0); err == nil {
		t.Fatal("want error for zero strategy")
	}
}

func TestSparseStrategyMatchesDenseTemplate(t *testing.T) {
	// Identical strategy, same noise stream: the sparse CGLS path and the
	// dense pseudo-inverse path must agree to solver tolerance.
	src := rng.New(1)
	n := 16
	w := workload.Range(5, n, src)
	strat, err := TreeStrategy(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewStrategyPrepared(w, strat)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseStrategyPrepared(w, sparse.FromDense(strat, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	x := src.UniformVec(n, 0, 20)
	a1, err := dense.Answer(x, 1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sp.Answer(x, 1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if math.Abs(a1[i]-a2[i]) > 1e-6*(1+math.Abs(a1[i])) {
			t.Fatalf("answer %d: dense %g sparse %g", i, a1[i], a2[i])
		}
	}
	if sp.Sensitivity() != dense.delta {
		t.Fatalf("sensitivity %g vs %g", sp.Sensitivity(), dense.delta)
	}
}

func TestSparseStrategyAnswerValidation(t *testing.T) {
	w := workload.Identity(8)
	sp, err := NewSparseStrategyPrepared(w, sparse.Identity(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Answer(make([]float64, 3), 1, rng.New(1)); err == nil {
		t.Fatal("want error for data length")
	}
	if _, err := sp.Answer(make([]float64, 8), 0, rng.New(1)); err == nil {
		t.Fatal("want error for zero epsilon")
	}
	if !math.IsNaN(sp.ExpectedSSE(1)) {
		t.Fatal("sparse strategy reports no analytic SSE")
	}
}

func TestSparseStrategyLargeDomainTree(t *testing.T) {
	// The point of the sparse path: a 4096-cell hierarchical strategy
	// (nnz ≈ n·log n ≈ 53k vs n² = 16.8M dense entries) prepares and
	// answers quickly and accurately at huge ε.
	n := 4096
	w := workload.Total(n)
	strat, err := TreeStrategy(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := sparse.FromDense(strat, 0)
	if a.Density() > 0.01 {
		t.Fatalf("tree strategy not sparse: density %g", a.Density())
	}
	sp, err := NewSparseStrategyPrepared(w, a, 400)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	x := src.UniformVec(n, 0, 10)
	got, err := sp.Answer(x, 1e9, src)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Answer(x)[0]
	if math.Abs(got[0]-want) > 1e-3*want {
		t.Fatalf("total %g want %g", got[0], want)
	}
}
