package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader. The usual foundation for this layer is
// golang.org/x/tools/go/packages, which this module does not depend on;
// the same result is obtained from the go tool itself: one
// `go list -export -deps` walk compiles the dependency graph and
// reports, for every package, the build-cache location of its export
// data plus whether the package was matched by a pattern (DepOnly=false)
// or only pulled in as a dependency. Each target package is then parsed
// from source and type-checked by go/types against that export data,
// which is exactly how the compiler itself sees the imports.
//
// Loads are memoized process-wide by pattern set: one cmd/lrmlint run
// (or one `go test ./internal/lint` process) shells out to the go tool
// once per distinct pattern set, no matter how many analyzers or fixture
// checks consume the result. The dataflow analyzers additionally share
// one whole-program load (see program.go), so adding analyzers does not
// add `go list` walks.
//
// Only non-test GoFiles are loaded: every analyzer in the suite either
// exempts _test.go files outright (noiserand) or targets hot-path and
// serving code that never lives in a test file, and the export graph of
// external test packages is not available through `go list -export`.

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// SFiles are the package's assembly files (tag-filtered by the go
	// tool, so a noasm or cross-GOARCH load sees the same set the build
	// would), as absolute paths. They are not parsed here; asmvet reads
	// them directly.
	SFiles []string
	Types  *types.Package
	Info   *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	SFiles     []string
}

// goList invokes the go tool and decodes its JSON stream.
func goList(args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// loadCache memoizes LoadPackages results by pattern set for the life of
// the process. Analyzer runs never mutate loaded packages (the one test
// that does — the injected-violation test — loads uncached), so sharing
// is safe, and it is what turns "N fixtures × M analyzers" into one go
// tool walk per distinct fixture.
var loadCache struct {
	sync.Mutex
	byKey map[string]*loadResult
}

type loadResult struct {
	once sync.Once
	pkgs []*Package
	err  error
}

func cacheKey(patterns []string) string {
	sorted := append([]string(nil), patterns...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

// LoadPackages type-checks every package matched by patterns. Patterns
// are anything `go list` accepts (`./...`, `lrm/internal/mat`, explicit
// testdata directories, …). Results are memoized process-wide; callers
// must treat the returned packages as immutable.
func LoadPackages(patterns []string) ([]*Package, error) {
	key := cacheKey(patterns)
	loadCache.Lock()
	if loadCache.byKey == nil {
		loadCache.byKey = make(map[string]*loadResult)
	}
	res, ok := loadCache.byKey[key]
	if !ok {
		res = &loadResult{}
		loadCache.byKey[key] = res
	}
	loadCache.Unlock()
	res.once.Do(func() {
		res.pkgs, res.err = loadPackagesUncached(patterns)
	})
	return res.pkgs, res.err
}

// loadPackagesUncached performs the actual go-list walk and type-check.
// The injected-violation tests use it directly so their AST surgery can
// never poison the shared cache.
func loadPackagesUncached(patterns []string) ([]*Package, error) {
	// One -deps -export walk compiles the graph, locates export data for
	// every import any target needs, and marks which entries the
	// patterns actually matched (DepOnly=false).
	universe, err := goList(append([]string{
		"-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,Standard,DepOnly,GoFiles,SFiles",
	}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(universe))
	for _, e := range universe {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, e := range universe {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := loadOne(fset, imp, e)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// loadOne parses and type-checks a single package from source.
func loadOne(fset *token.FileSet, imp types.Importer, e listEntry) (*Package, error) {
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		path := filepath.Join(e.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	sfiles := make([]string, 0, len(e.SFiles))
	for _, name := range e.SFiles {
		sfiles = append(sfiles, filepath.Join(e.Dir, name))
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", e.ImportPath, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", e.ImportPath, err)
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
		SFiles:     sfiles,
		Types:      tpkg,
		Info:       info,
	}, nil
}
