package optimize

import (
	"math"
	"testing"
)

// quadProblem builds min ½‖x − target‖² over the L1 ball of given radius.
// Its exact solution is the projection of target onto the ball.
func quadProblem(target []float64, radius float64) Problem {
	n := len(target)
	return Problem{
		Dim: n,
		Value: func(x []float64) float64 {
			var s float64
			for i, v := range x {
				d := v - target[i]
				s += d * d
			}
			return 0.5 * s
		},
		Grad: func(x, g []float64) {
			for i, v := range x {
				g[i] = v - target[i]
			}
		},
		Project: func(x []float64) { ProjectL1Ball(x, radius) },
	}
}

func TestNesterovSolvesProjection(t *testing.T) {
	target := []float64{3, -2, 0.5, 1}
	want := append([]float64(nil), target...)
	ProjectL1Ball(want, 1.5)
	res := NesterovPG(quadProblem(target, 1.5), make([]float64, 4), NesterovOptions{MaxIter: 500})
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v (res=%+v)", i, res.X[i], want[i], res)
		}
	}
}

func TestNesterovUnconstrainedQuadratic(t *testing.T) {
	// min ½xᵀAx − bᵀx with A = diag(1, 10): solution A⁻¹b.
	a := []float64{1, 10}
	b := []float64{2, 30}
	p := Problem{
		Dim: 2,
		Value: func(x []float64) float64 {
			return 0.5*(a[0]*x[0]*x[0]+a[1]*x[1]*x[1]) - b[0]*x[0] - b[1]*x[1]
		},
		Grad: func(x, g []float64) {
			g[0] = a[0]*x[0] - b[0]
			g[1] = a[1]*x[1] - b[1]
		},
	}
	res := NesterovPG(p, []float64{0, 0}, NesterovOptions{MaxIter: 2000, Tol: 1e-10})
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]-3) > 1e-4 {
		t.Fatalf("solution = %v, want [2 3]", res.X)
	}
}

func TestNesterovComparableToPG(t *testing.T) {
	// Both solvers must converge on an ill-conditioned quadratic to the
	// same optimum; relative speed is measured by the ablation benchmark
	// on the real LRM subproblem, not asserted here (backtracking makes
	// either one win depending on problem geometry).
	n := 20
	target := make([]float64, n)
	for i := range target {
		target[i] = float64(i%5) - 2
	}
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 1 + float64(i)*10
	}
	mk := func() Problem {
		return Problem{
			Dim: n,
			Value: func(x []float64) float64 {
				var s float64
				for i, v := range x {
					d := v - target[i]
					s += diag[i] * d * d
				}
				return 0.5 * s
			},
			Grad: func(x, g []float64) {
				for i, v := range x {
					g[i] = diag[i] * (v - target[i])
				}
			},
			Project: func(x []float64) { ProjectL1Ball(x, 3) },
		}
	}
	tol := 1e-9
	resN := NesterovPG(mk(), make([]float64, n), NesterovOptions{MaxIter: 5000, Tol: tol})
	resP := ProjectedGradient(mk(), make([]float64, n), NesterovOptions{MaxIter: 5000, Tol: tol})
	if !resN.Converged {
		t.Fatalf("Nesterov did not converge: %+v", resN)
	}
	if !resP.Converged {
		t.Fatalf("plain PG did not converge: %+v", resP)
	}
	if math.Abs(resN.Value-resP.Value) > 1e-6*(1+math.Abs(resP.Value)) {
		t.Fatalf("solvers disagree: Nesterov %v vs PG %v", resN.Value, resP.Value)
	}
}

func TestProjectedGradientSolvesProjection(t *testing.T) {
	target := []float64{2, 2}
	want := append([]float64(nil), target...)
	ProjectL1Ball(want, 1)
	res := ProjectedGradient(quadProblem(target, 1), make([]float64, 2), NesterovOptions{MaxIter: 2000})
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x = %v, want %v", res.X, want)
		}
	}
}

func TestSPGQuadratic(t *testing.T) {
	target := []float64{5, -1, 2}
	res := SPG(quadProblem(target, 2), make([]float64, 3), SPGOptions{MaxIter: 500})
	want := append([]float64(nil), target...)
	ProjectL1Ball(want, 2)
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-5 {
			t.Fatalf("x = %v, want %v", res.X, want)
		}
	}
}

func TestSPGIllConditioned(t *testing.T) {
	// Rosenbrock-like ill conditioning via diagonal quadratic with
	// condition number 1e4; SPG should still converge quickly.
	n := 30
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = math.Pow(10, 4*float64(i)/float64(n-1))
	}
	p := Problem{
		Dim: n,
		Value: func(x []float64) float64 {
			var s float64
			for i, v := range x {
				s += diag[i] * (v - 1) * (v - 1)
			}
			return 0.5 * s
		},
		Grad: func(x, g []float64) {
			for i, v := range x {
				g[i] = diag[i] * (v - 1)
			}
		},
	}
	res := SPG(p, make([]float64, n), SPGOptions{MaxIter: 2000, Tol: 1e-10})
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-4 {
			t.Fatalf("x[%d] = %v, want 1 (iters=%d)", i, v, res.Iterations)
		}
	}
}

func TestResultFeasible(t *testing.T) {
	target := []float64{10, 10, 10}
	for _, res := range []Result{
		NesterovPG(quadProblem(target, 1), make([]float64, 3), NesterovOptions{}),
		ProjectedGradient(quadProblem(target, 1), make([]float64, 3), NesterovOptions{}),
		SPG(quadProblem(target, 1), make([]float64, 3), SPGOptions{}),
	} {
		if l1norm(res.X) > 1+1e-6 {
			t.Fatalf("infeasible result %v", res.X)
		}
	}
}
