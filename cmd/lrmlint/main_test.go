package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The exit-code contract CI relies on: 0 clean, 1 findings, 2 errors.

func TestExitCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"lrm/internal/lint/testdata/src/lockguard/clean"}, &out, &errb); code != 0 {
		t.Fatalf("clean fixture: exit %d, stderr %q, stdout %q", code, errb.String(), out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean fixture printed findings: %q", out.String())
	}
}

func TestExitFindings(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"lrm/internal/lint/testdata/src/lockguard/bad"}, &out, &errb); code != 1 {
		t.Fatalf("bad fixture: exit %d, want 1 (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "lockguard:") {
		t.Fatalf("text findings missing analyzer name: %q", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Fatalf("stderr missing findings summary: %q", errb.String())
	}
}

func TestExitLoadError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"lrm/internal/nonexistent"}, &out, &errb); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
}

func TestExitBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "lrm/internal/lint/testdata/src/lockguard/bad"}, &out, &errb); code != 1 {
		t.Fatalf("json run: exit %d, want 1 (stderr %q)", code, errb.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("json run produced an empty findings array for a bad fixture")
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
}

func TestListExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"noiseflow", "lockguard", "asmvet"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
