// Package workload constructs batch linear-query workloads: the workload
// matrix W of Section 3.2 and the paper's three synthetic generators
// (WDiscrete, WRange, WRelated), plus a few extra workload families used
// by the examples.
package workload

import (
	"fmt"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

// Workload is a batch of m linear counting queries over n unit counts,
// represented by its m×n matrix W. Row i holds the coefficients of query
// qᵢ; the exact batch answer is W·x.
type Workload struct {
	W    *mat.Dense
	Name string
}

// Queries returns m, the number of queries.
func (w *Workload) Queries() int { return w.W.Rows() }

// Domain returns n, the number of unit counts.
func (w *Workload) Domain() int { return w.W.Cols() }

// Answer computes the exact (non-private) batch answer W·x.
func (w *Workload) Answer(x []float64) []float64 {
	if len(x) != w.Domain() {
		panic(fmt.Sprintf("workload: data length %d != domain %d", len(x), w.Domain()))
	}
	return mat.MulVec(w.W, x)
}

// Sensitivity returns the L1 sensitivity max_j Σᵢ|Wᵢⱼ| of the workload.
func (w *Workload) Sensitivity() float64 { return mat.MaxColAbsSum(w.W) }

// Rank returns the numerical rank of the workload matrix.
func (w *Workload) Rank() int { return mat.Rank(w.W) }

// SquaredSum returns ΣWᵢⱼ². The noise-on-data baseline's expected SSE is
// 2·SquaredSum()/ε².
func (w *Workload) SquaredSum() float64 { return mat.SquaredSum(w.W) }

// Stack concatenates workloads over the same domain into one batch.
func Stack(name string, ws ...*Workload) *Workload {
	if len(ws) == 0 {
		panic("workload: Stack of nothing")
	}
	n := ws[0].Domain()
	total := 0
	for _, w := range ws {
		if w.Domain() != n {
			panic(fmt.Sprintf("workload: Stack domain mismatch %d vs %d", w.Domain(), n))
		}
		total += w.Queries()
	}
	out := mat.New(total, n)
	row := 0
	for _, w := range ws {
		for i := 0; i < w.Queries(); i++ {
			copy(out.RawRow(row), w.W.RawRow(i))
			row++
		}
	}
	return &Workload{W: out, Name: name}
}

// Discrete generates the paper's WDiscrete workload: each coefficient is
// +1 with probability p (the paper uses p = 0.02) and −1 otherwise.
func Discrete(m, n int, p float64, src *rng.Source) *Workload {
	checkDims(m, n)
	w := mat.New(m, n)
	data := w.RawData()
	for i := range data {
		if src.Float64() < p {
			data[i] = 1
		} else {
			data[i] = -1
		}
	}
	return &Workload{W: w, Name: "WDiscrete"}
}

// Range generates the paper's WRange workload: m range-count queries with
// endpoints a ≤ b drawn uniformly from the domain; Wᵢⱼ = 1 for a ≤ j ≤ b.
func Range(m, n int, src *rng.Source) *Workload {
	checkDims(m, n)
	w := mat.New(m, n)
	for i := 0; i < m; i++ {
		a := src.Intn(n)
		b := src.Intn(n)
		if a > b {
			a, b = b, a
		}
		row := w.RawRow(i)
		for j := a; j <= b; j++ {
			row[j] = 1
		}
	}
	return &Workload{W: w, Name: "WRange"}
}

// Related generates the paper's WRelated workload: W = C·A where
// A is s×n and C is m×s, both with i.i.d. standard normal entries. The
// resulting workload has rank ≤ s (exactly s almost surely), which is the
// low-rank regime LRM exploits.
func Related(m, n, s int, src *rng.Source) *Workload {
	checkDims(m, n)
	if s < 1 {
		panic(fmt.Sprintf("workload: Related needs s >= 1, got %d", s))
	}
	a := mat.New(s, n)
	for i := range a.RawData() {
		a.RawData()[i] = src.Normal()
	}
	c := mat.New(m, s)
	for i := range c.RawData() {
		c.RawData()[i] = src.Normal()
	}
	return &Workload{W: mat.Mul(c, a), Name: "WRelated"}
}

// Identity returns the n-query workload asking each unit count, the
// strategy implicit in the noise-on-data baseline.
func Identity(n int) *Workload {
	return &Workload{W: mat.Eye(n), Name: "Identity"}
}

// Total returns the single query summing the whole domain.
func Total(n int) *Workload {
	w := mat.New(1, n)
	for j := 0; j < n; j++ {
		w.Set(0, j, 1)
	}
	return &Workload{W: w, Name: "Total"}
}

// AllRanges returns every contiguous range query over a (small) domain:
// n(n+1)/2 queries. Useful for tests and the examples.
func AllRanges(n int) *Workload {
	m := n * (n + 1) / 2
	w := mat.New(m, n)
	i := 0
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			row := w.RawRow(i)
			for j := a; j <= b; j++ {
				row[j] = 1
			}
			i++
		}
	}
	return &Workload{W: w, Name: "AllRanges"}
}

// Prefix returns the n prefix-sum queries q_i = x_0 + … + x_i, a classic
// workload in the matrix-mechanism literature.
func Prefix(n int) *Workload {
	w := mat.New(n, n)
	for i := 0; i < n; i++ {
		row := w.RawRow(i)
		for j := 0; j <= i; j++ {
			row[j] = 1
		}
	}
	return &Workload{W: w, Name: "Prefix"}
}

// Marginal returns the two-way marginal workload over a d1×d2 grid
// flattened row-major into n = d1·d2 cells: d1 row sums followed by d2
// column sums. It exhibits the strong column correlation the paper's
// introduction motivates.
func Marginal(d1, d2 int) *Workload {
	n := d1 * d2
	w := mat.New(d1+d2, n)
	for i := 0; i < d1; i++ {
		row := w.RawRow(i)
		for j := 0; j < d2; j++ {
			row[i*d2+j] = 1
		}
	}
	for j := 0; j < d2; j++ {
		row := w.RawRow(d1 + j)
		for i := 0; i < d1; i++ {
			row[i*d2+j] = 1
		}
	}
	return &Workload{W: w, Name: "Marginal"}
}

// FromMatrix wraps an arbitrary coefficient matrix as a workload.
func FromMatrix(name string, w *mat.Dense) *Workload {
	return &Workload{W: w, Name: name}
}

func checkDims(m, n int) {
	if m < 1 || n < 1 {
		panic(fmt.Sprintf("workload: need m,n >= 1, got m=%d n=%d", m, n))
	}
}
