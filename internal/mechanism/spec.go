package mechanism

import (
	"fmt"

	"lrm/internal/core"
	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// SpecPreparer is the implicit-workload extension of Mechanism: prepare
// against a workload.Spec — answers, sensitivity, and Gram products by
// structure — without the matrix W ever existing. stats, when non-nil,
// carries a prior AnalyzeSpec result the preparer may reuse; nil means
// the preparer derives what it needs from the spec alone.
type SpecPreparer interface {
	PrepareSpec(s workload.Spec, stats *workload.Stats) (Prepared, error)
}

// PrepareSpec prepares m against an implicit spec when it can. Dense
// adapters (workload.AsSpec) always work — they unwrap to the matrix
// path. Otherwise the mechanism must implement SpecPreparer, or the
// caller gets an error telling it to materialize.
func PrepareSpec(m Mechanism, s workload.Spec, stats *workload.Stats) (Prepared, error) {
	if s == nil {
		return nil, fmt.Errorf("mechanism: nil spec")
	}
	if d, ok := s.(*workload.DenseSpec); ok {
		return m.Prepare(d.Dense())
	}
	if sp, ok := m.(SpecPreparer); ok {
		return sp.PrepareSpec(s, stats)
	}
	return nil, fmt.Errorf("mechanism: %s cannot serve an implicit workload spec; materialize it as a dense Workload (workload.MaterializeSpec) first", m.Name())
}

// PrepareSpec implements SpecPreparer for LM: perturb the unit counts
// with Lap(1/ε) and answer the spec on the noisy histogram. No
// workload-shaped state at all — preparation is free at any scale.
func (LaplaceData) PrepareSpec(s workload.Spec, stats *workload.Stats) (Prepared, error) {
	if s == nil {
		return nil, fmt.Errorf("mechanism: nil spec")
	}
	return &laplaceDataSpec{s: s}, nil
}

type laplaceDataSpec struct {
	s workload.Spec
}

func (p *laplaceDataSpec) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if len(x) != p.s.Domain() {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.s.Domain())
	}
	noisy, err := privacy.LaplaceMechanism(x, 1, eps, src)
	if err != nil {
		return nil, err
	}
	return p.s.AnswerTo(make([]float64, p.s.Queries()), noisy), nil
}

func (p *laplaceDataSpec) ExpectedSSE(eps privacy.Epsilon) float64 {
	e := float64(eps)
	return 2 * p.s.SquaredSum() / (e * e)
}

// PrepareSpec implements SpecPreparer for NOR: answer the spec exactly,
// then perturb the m results with Lap(Δ/ε). The only cost that scales
// with the workload is the m-length answer vector.
func (LaplaceResults) PrepareSpec(s workload.Spec, stats *workload.Stats) (Prepared, error) {
	if s == nil {
		return nil, fmt.Errorf("mechanism: nil spec")
	}
	return &laplaceResultsSpec{s: s, delta: s.Sensitivity()}, nil
}

type laplaceResultsSpec struct {
	s     workload.Spec
	delta float64
}

func (p *laplaceResultsSpec) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if len(x) != p.s.Domain() {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.s.Domain())
	}
	exact := p.s.AnswerTo(make([]float64, p.s.Queries()), x)
	return privacy.LaplaceMechanism(exact, p.delta, eps, src)
}

func (p *laplaceResultsSpec) ExpectedSSE(eps privacy.Epsilon) float64 {
	e := float64(eps)
	return 2 * float64(p.s.Queries()) * p.delta * p.delta / (e * e)
}

// lrmFactorCellCap bounds the per-factor matrices the factored LRM path
// will materialize for its per-factor ALM runs. Factors are the small
// building blocks of a Kronecker spec; anything past this cap is not a
// "small factor" and the decomposition would dominate the savings.
const lrmFactorCellCap = 1 << 22

// PrepareSpec implements SpecPreparer for the Low-Rank Mechanism. Only
// Kronecker specs have a factored decomposition: each (small) factor is
// materialized and decomposed independently, and the product strategy
// (⊗Bᵢ)·(⊗Lᵢ) answers through mode-product GEMMs (core.KronMechanism).
// Options.Rank applies per factor (zero keeps each factor's 1.2·rank
// default). Other spec kinds have no factored strategy — materialize
// them or let the planner pick a baseline.
func (l LRM) PrepareSpec(s workload.Spec, stats *workload.Stats) (Prepared, error) {
	k, ok := s.(*workload.KronSpec)
	if !ok {
		return nil, fmt.Errorf("mechanism: LRM has no factored strategy for %s; materialize it as a dense Workload first", s.Describe())
	}
	kd, err := l.decomposeKron(k)
	if err != nil {
		return nil, err
	}
	km, err := core.NewKronMechanism(kd)
	if err != nil {
		return nil, err
	}
	return &kronPrepared{m: km}, nil
}

func (l LRM) decomposeKron(k *workload.KronSpec) (*core.KronDecomposition, error) {
	specs := k.Factors()
	factors := make([]*mat.Dense, len(specs))
	for i, fs := range specs {
		fw, err := workload.MaterializeSpec(fs, lrmFactorCellCap)
		if err != nil {
			return nil, fmt.Errorf("mechanism: kron factor %d: %w", i+1, err)
		}
		factors[i] = fw.W
	}
	return core.DecomposeKron(factors, l.Options)
}

// kronPrepared adapts core.KronMechanism to the Prepared interface.
type kronPrepared struct {
	m *core.KronMechanism
}

func (p *kronPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	return p.m.Answer(x, eps, src)
}

func (p *kronPrepared) ExpectedSSE(eps privacy.Epsilon) float64 {
	return p.m.ExpectedSSE(eps)
}

// KronDecomposition exposes the factored strategy (the engine persists
// it to disk keyed by the spec digest).
func (p *kronPrepared) KronDecomposition() *core.KronDecomposition {
	return p.m.Decomposition()
}

// PreparedFromKronDecomposition wraps a restored factored decomposition
// (core.ReadKronDecomposition) as a Prepared LRM, skipping every ALM
// run — the spec-path twin of PreparedFromDecomposition.
func PreparedFromKronDecomposition(d *core.KronDecomposition) (Prepared, error) {
	m, err := core.NewKronMechanism(d)
	if err != nil {
		return nil, err
	}
	return &kronPrepared{m: m}, nil
}
