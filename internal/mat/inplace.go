package mat

import (
	"fmt"
	"math"
	"unsafe"
)

// This file is the in-place/workspace kernel layer: every allocating
// arithmetic function in arith.go has a *To counterpart here that writes
// into a caller-supplied destination, so hot loops (the ALM of
// internal/core, the inner solvers of internal/optimize) can reuse a
// fixed set of buffers across thousands of iterations instead of leaving
// a fresh Dense behind on every call.
//
// Conventions:
//   - dst must already have the exact result shape; a mismatch panics
//     (silent reshaping would hide bugs in fixed-shape loops).
//   - Pure element-wise kernels (AddTo, SubTo, ScaleTo, AddScaledTo,
//     ElemMulTo) allow dst to alias either operand.
//   - Kernels that read operands while accumulating into dst (MulTo,
//     MulABtTo, MulAtBTo, GramTo, GramTTo, TransposeTo) panic when dst
//     shares storage with an operand: with the parallel row scheduler an
//     aliased product would silently corrupt the operand mid-multiply.
//   - Every *To kernel returns dst for call chaining.

// sharesStorage reports whether two matrices' backing slices overlap.
// Comparing address ranges (not just first elements) also catches
// offset views built with NewFromData or Reuse over a sub-slice of
// another matrix's storage.
func sharesStorage(a, b *Dense) bool {
	if a == b {
		return true
	}
	if len(a.data) == 0 || len(b.data) == 0 {
		return false
	}
	const w = unsafe.Sizeof(float64(0))
	a0 := uintptr(unsafe.Pointer(&a.data[0]))
	b0 := uintptr(unsafe.Pointer(&b.data[0]))
	return a0 < b0+uintptr(len(b.data))*w && b0 < a0+uintptr(len(a.data))*w
}

// SharesStorage reports whether two matrices' backing slices overlap
// anywhere (not just at their first element). Exported for sibling
// packages whose kernels must refuse aliased destinations the same way
// this package's do (e.g. sparse.CSR.MulDenseTo).
func SharesStorage(a, b *Dense) bool { return sharesStorage(a, b) }

// noAlias panics when dst shares storage with the operand m.
func noAlias(op string, dst, m *Dense) {
	if sharesStorage(dst, m) {
		panic(fmt.Sprintf("mat: %s destination aliases an operand", op))
	}
}

// checkShape panics unless dst is exactly r×c.
func checkShape(op string, dst *Dense, r, c int) {
	if dst.rows != r || dst.cols != c {
		panic(fmt.Sprintf("mat: %s destination is %d×%d, need %d×%d", op, dst.rows, dst.cols, r, c))
	}
}

// AddTo stores a + b into dst. dst may alias a or b.
func AddTo(dst, a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("AddTo", a, b)
	}
	checkShape("AddTo", dst, a.rows, a.cols)
	for i, v := range a.data {
		dst.data[i] = v + b.data[i]
	}
	return dst
}

// SubTo stores a - b into dst. dst may alias a or b.
func SubTo(dst, a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("SubTo", a, b)
	}
	checkShape("SubTo", dst, a.rows, a.cols)
	for i, v := range a.data {
		dst.data[i] = v - b.data[i]
	}
	return dst
}

// ScaleTo stores s * a into dst. dst may alias a.
func ScaleTo(dst *Dense, s float64, a *Dense) *Dense {
	checkShape("ScaleTo", dst, a.rows, a.cols)
	for i, v := range a.data {
		dst.data[i] = s * v
	}
	return dst
}

// AddScaledTo stores a + s*b (the matrix axpy) into dst. dst may alias
// a or b.
func AddScaledTo(dst, a *Dense, s float64, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("AddScaledTo", a, b)
	}
	checkShape("AddScaledTo", dst, a.rows, a.cols)
	for i, v := range a.data {
		dst.data[i] = v + s*b.data[i]
	}
	return dst
}

// ElemMulTo stores the Hadamard product a ∘ b into dst. dst may alias
// a or b.
func ElemMulTo(dst, a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("ElemMulTo", a, b)
	}
	checkShape("ElemMulTo", dst, a.rows, a.cols)
	for i, v := range a.data {
		dst.data[i] = v * b.data[i]
	}
	return dst
}

// TransposeTo stores aᵀ into dst. dst must not alias a.
func TransposeTo(dst, a *Dense) *Dense {
	checkShape("TransposeTo", dst, a.cols, a.rows)
	noAlias("TransposeTo", dst, a)
	for i := 0; i < a.rows; i++ {
		row := a.RawRow(i)
		for j, v := range row {
			dst.data[j*a.rows+i] = v
		}
	}
	return dst
}

// MulTo stores the product a·b into dst. dst must not alias a or b: the
// kernel accumulates into dst row-by-row (in parallel for large
// products), so an aliased destination would corrupt its own operands.
func MulTo(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		dimPanic("MulTo", a, b)
	}
	checkShape("MulTo", dst, a.rows, b.cols)
	noAlias("MulTo", dst, a)
	noAlias("MulTo", dst, b)
	mulInto(dst, a, b)
	return dst
}

// MulABtTo stores a·bᵀ into dst without materializing the transpose.
// dst must not alias a or b.
func MulABtTo(dst, a, b *Dense) *Dense {
	if a.cols != b.cols {
		dimPanic("MulABtTo", a, b)
	}
	checkShape("MulABtTo", dst, a.rows, b.rows)
	noAlias("MulABtTo", dst, a)
	noAlias("MulABtTo", dst, b)
	mulABtInto(dst, a, b)
	return dst
}

// MulAtBTo stores aᵀ·b into dst without materializing the transpose.
// dst must not alias a or b.
func MulAtBTo(dst, a, b *Dense) *Dense {
	if a.rows != b.rows {
		dimPanic("MulAtBTo", a, b)
	}
	checkShape("MulAtBTo", dst, a.cols, b.cols)
	noAlias("MulAtBTo", dst, a)
	noAlias("MulAtBTo", dst, b)
	mulAtBInto(dst, a, b)
	return dst
}

// GramTo stores aᵀ·a into dst. dst must not alias a.
func GramTo(dst, a *Dense) *Dense {
	checkShape("GramTo", dst, a.cols, a.cols)
	noAlias("GramTo", dst, a)
	gramInto(dst, a)
	return dst
}

// GramTTo stores a·aᵀ into dst. dst must not alias a.
func GramTTo(dst, a *Dense) *Dense {
	checkShape("GramTTo", dst, a.rows, a.rows)
	noAlias("GramTTo", dst, a)
	gramTInto(dst, a)
	return dst
}

// MulVecTo stores the matrix-vector product a·x into dst (length
// a.Rows()). dst must not alias x. Large products are row-partitioned
// across the persistent pool; each element is a single dot product in
// ascending column order either way, so results are identical across
// dispatch paths.
func MulVecTo(dst []float64, a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVecTo dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: MulVecTo destination length %d, need %d", len(dst), a.rows))
	}
	if serialWork(a.rows * a.cols) {
		mulVecRows(dst, a, x, 0, a.rows)
		return dst
	}
	const chunk = 128
	tiles := (a.rows + chunk - 1) / chunk
	forEachTile(tiles, func(t int) {
		lo := t * chunk
		mulVecRows(dst, a, x, lo, min(lo+chunk, a.rows))
	})
	return dst
}

// mulVecRows computes rows [lo,hi) of a·x into dst.
func mulVecRows(dst []float64, a *Dense, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a.RawRow(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecTTo stores aᵀ·x into dst (length a.Cols()). dst must not alias x.
func MulVecTTo(dst []float64, a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulVecTTo dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.cols {
		panic(fmt.Sprintf("mat: MulVecTTo destination length %d, need %d", len(dst), a.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.RawRow(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// FrobeniusDist returns ‖a − b‖_F without materializing the difference.
func FrobeniusDist(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("FrobeniusDist", a, b)
	}
	var s float64
	for i, v := range a.data {
		d := v - b.data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Workspace is a free-list of Dense buffers and float64 slices for code
// that needs shape-varying scratch across many iterations. Get hands out
// a zeroed matrix, reusing the smallest retired buffer with enough
// capacity; Put retires a buffer for reuse. Fixed-shape loops (like the
// ALM in internal/core, which names each of its buffers once) don't need
// it; it is the generic entry point for loops whose scratch shapes vary
// call to call. A Workspace is not safe for concurrent use — it is meant
// to be owned by one solver loop (give each goroutine its own).
type Workspace struct {
	mats []*Dense
	vecs [][]float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get returns a zeroed r×c matrix, reusing retired capacity when
// possible. The caller should Put it back when finished with it.
func (ws *Workspace) Get(r, c int) *Dense {
	need := r * c
	best := -1
	for i, m := range ws.mats {
		if cap(m.data) >= need && (best < 0 || cap(m.data) < cap(ws.mats[best].data)) {
			best = i
		}
	}
	if best < 0 {
		return New(r, c)
	}
	m := ws.mats[best]
	last := len(ws.mats) - 1
	ws.mats[best] = ws.mats[last]
	ws.mats[last] = nil
	ws.mats = ws.mats[:last]
	m.rows, m.cols = r, c
	m.data = m.data[:need]
	zero(m.data)
	return m
}

// Put retires a matrix obtained from Get (or anywhere else) back into
// the workspace. The caller must not use m afterwards.
func (ws *Workspace) Put(m *Dense) {
	if m == nil || cap(m.data) == 0 {
		return
	}
	ws.mats = append(ws.mats, m)
}

// GetVec returns a zeroed length-n slice, reusing retired capacity when
// possible.
func (ws *Workspace) GetVec(n int) []float64 {
	best := -1
	for i, v := range ws.vecs {
		if cap(v) >= n && (best < 0 || cap(v) < cap(ws.vecs[best])) {
			best = i
		}
	}
	if best < 0 {
		return make([]float64, n)
	}
	v := ws.vecs[best][:n]
	last := len(ws.vecs) - 1
	ws.vecs[best] = ws.vecs[last]
	ws.vecs[last] = nil
	ws.vecs = ws.vecs[:last]
	zero(v)
	return v
}

// PutVec retires a slice obtained from GetVec. The caller must not use v
// afterwards.
func (ws *Workspace) PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	ws.vecs = append(ws.vecs, v)
}
