package privacy

import (
	"math"
	"testing"

	"lrm/internal/rng"
)

func TestRandomizedResponseValidation(t *testing.T) {
	if _, err := RandomizedResponse(true, 0, rng.New(1)); err == nil {
		t.Fatal("want error for zero epsilon")
	}
	if _, err := RandomizedResponseEstimate(0.5, -1); err == nil {
		t.Fatal("want error for negative epsilon")
	}
	if _, err := RandomizedResponseEstimate(1.5, 1); err == nil {
		t.Fatal("want error for fraction > 1")
	}
	if _, err := RandomizedResponseEstimate(-0.1, 1); err == nil {
		t.Fatal("want error for fraction < 0")
	}
}

func TestRandomizedResponseTruthProbability(t *testing.T) {
	// At ε = ln(3), truth is reported with probability 3/4.
	src := rng.New(2)
	eps := Epsilon(math.Log(3))
	const trials = 20000
	truths := 0
	for i := 0; i < trials; i++ {
		b, err := RandomizedResponse(true, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		if b {
			truths++
		}
	}
	got := float64(truths) / trials
	if math.Abs(got-0.75) > 0.02 {
		t.Fatalf("truth rate %g want ≈0.75", got)
	}
}

func TestRandomizedResponseHighEpsilonIsHonest(t *testing.T) {
	src := rng.New(3)
	for i := 0; i < 100; i++ {
		b, err := RandomizedResponse(false, 50, src)
		if err != nil {
			t.Fatal(err)
		}
		if b {
			t.Fatal("at huge ε the response should be (almost surely) honest")
		}
	}
}

func TestRandomizedResponseEstimateDebiases(t *testing.T) {
	// Simulate a population with 30% true bits and check the estimator
	// recovers the fraction.
	src := rng.New(4)
	eps := Epsilon(1)
	const n = 50000
	observed := 0
	for i := 0; i < n; i++ {
		bit := src.Float64() < 0.3
		r, err := RandomizedResponse(bit, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		if r {
			observed++
		}
	}
	est, err := RandomizedResponseEstimate(float64(observed)/n, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-0.3) > 0.02 {
		t.Fatalf("estimate %g want ≈0.3", est)
	}
}

func TestRandomizedResponseEstimateClamps(t *testing.T) {
	// Extreme observed fractions clamp into [0,1].
	lo, err := RandomizedResponseEstimate(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RandomizedResponseEstimate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 1 {
		t.Fatalf("clamps: %g, %g", lo, hi)
	}
}
