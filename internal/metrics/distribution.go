package metrics

import (
	"fmt"
	"math"
	"sort"

	"lrm/internal/mechanism"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Distribution summarizes the spread of per-trial squared errors, beyond
// the paper's single average: published comparisons should carry error
// bars, and heavy-tailed Laplace noise makes the spread substantial at
// small trial counts.
type Distribution struct {
	// Mean is the average squared error (same value Evaluate reports).
	Mean float64
	// StdDev is the sample standard deviation of per-trial SSE.
	StdDev float64
	// StdErr is StdDev/√trials, the standard error of Mean.
	StdErr float64
	// Min, Median, P90, Max are order statistics of per-trial SSE.
	Min, Median, P90, Max float64
	// PerQueryMean[j] is the mean squared error of query j alone,
	// revealing which queries a strategy serves well or poorly.
	PerQueryMean []float64
	// Trials is the number of randomized executions summarized.
	Trials int
}

// ConfidenceInterval returns the normal-approximation 95% interval for
// the mean squared error.
func (d *Distribution) ConfidenceInterval() (lo, hi float64) {
	const z95 = 1.96
	return d.Mean - z95*d.StdErr, d.Mean + z95*d.StdErr
}

// String renders a one-line summary.
func (d *Distribution) String() string {
	lo, hi := d.ConfidenceInterval()
	return fmt.Sprintf("mean %.4g (95%% CI [%.4g, %.4g]), median %.4g, p90 %.4g, %d trials",
		d.Mean, lo, hi, d.Median, d.P90, d.Trials)
}

// EvaluateDistribution measures a mechanism like Evaluate but returns the
// full per-trial and per-query error distribution. Trials run
// sequentially (the per-query accumulation is cheap relative to the
// mechanisms measured this way).
func EvaluateDistribution(mech mechanism.Mechanism, w *workload.Workload, x []float64, eps privacy.Epsilon, trials int, src *rng.Source) (*Distribution, error) {
	if trials < 2 {
		return nil, fmt.Errorf("metrics: distribution needs >= 2 trials, got %d", trials)
	}
	p, err := mech.Prepare(w)
	if err != nil {
		return nil, fmt.Errorf("metrics: preparing %s: %w", mech.Name(), err)
	}
	return EvaluatePreparedDistribution(p, w, x, eps, trials, src)
}

// EvaluatePreparedDistribution is EvaluateDistribution for an
// already-prepared mechanism.
func EvaluatePreparedDistribution(p mechanism.Prepared, w *workload.Workload, x []float64, eps privacy.Epsilon, trials int, src *rng.Source) (*Distribution, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if trials < 2 {
		return nil, fmt.Errorf("metrics: distribution needs >= 2 trials, got %d", trials)
	}
	exact := w.Answer(x)
	m := w.Queries()
	sses := make([]float64, trials)
	perQuery := make([]float64, m)
	for t := 0; t < trials; t++ {
		noisy, err := p.Answer(x, eps, src)
		if err != nil {
			return nil, fmt.Errorf("metrics: trial %d: %w", t, err)
		}
		var sse float64
		for j := range exact {
			d := noisy[j] - exact[j]
			sse += d * d
			perQuery[j] += d * d
		}
		sses[t] = sse
	}
	for j := range perQuery {
		perQuery[j] /= float64(trials)
	}

	var mean float64
	for _, v := range sses {
		mean += v
	}
	mean /= float64(trials)
	var varSum float64
	for _, v := range sses {
		d := v - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(trials-1))

	sorted := make([]float64, trials)
	copy(sorted, sses)
	sort.Float64s(sorted)
	return &Distribution{
		Mean:         mean,
		StdDev:       std,
		StdErr:       std / math.Sqrt(float64(trials)),
		Min:          sorted[0],
		Median:       quantile(sorted, 0.5),
		P90:          quantile(sorted, 0.9),
		Max:          sorted[trials-1],
		PerQueryMean: perQuery,
		Trials:       trials,
	}, nil
}

// quantile interpolates the q-th quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
