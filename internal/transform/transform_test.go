package transform

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"lrm/internal/rng"
)

// naiveDFT is the O(n²) reference implementation with the same unitary
// normalization as FFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j, v := range x {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			s += v * cmplx.Exp(complex(0, ang))
		}
		out[k] = s / complex(math.Sqrt(float64(n)), 0)
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	src := rng.New(1)
	// Mix of power-of-two and awkward lengths (Bluestein path).
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 100, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(src.Normal(), src.Normal())
		}
		if !complexClose(FFT(x), naiveDFT(x), 1e-9) {
			t.Fatalf("FFT disagrees with naive DFT at n=%d", n)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	src := rng.New(2)
	for _, n := range []int{1, 2, 6, 8, 15, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(src.Normal(), src.Normal())
		}
		back := IFFT(FFT(x))
		if !complexClose(back, x, 1e-10) {
			t.Fatalf("IFFT(FFT(x)) != x at n=%d", n)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Unitary transform: ‖FFT(x)‖₂ == ‖x‖₂.
	f := func(seed int64) bool {
		s := rng.New(seed)
		n := 1 + s.Intn(80)
		x := make([]complex128, n)
		var nx float64
		for i := range x {
			x[i] = complex(s.Normal(), s.Normal())
			nx += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		y := FFT(x)
		var ny float64
		for _, v := range y {
			ny += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(nx-ny) <= 1e-9*(1+nx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	src := rng.New(3)
	n := 32
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := range x {
		x[i] = complex(src.Normal(), 0)
		y[i] = complex(src.Normal(), 0)
	}
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 2*x[i] + 3*y[i]
	}
	fx, fy, fs := FFT(x), FFT(y), FFT(sum)
	for i := range fs {
		want := 2*fx[i] + 3*fy[i]
		if cmplx.Abs(fs[i]-want) > 1e-10 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestFFTRealRoundTrip(t *testing.T) {
	src := rng.New(4)
	for _, n := range []int{1, 2, 9, 16, 33, 128} {
		x := src.NormalVec(n, 1)
		back := IFFTReal(FFTReal(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("real round trip failed at n=%d i=%d", n, i)
			}
		}
	}
}

func TestFFTRealConjugateSymmetry(t *testing.T) {
	src := rng.New(5)
	n := 16
	spec := FFTReal(src.NormalVec(n, 1))
	for k := 1; k < n; k++ {
		if cmplx.Abs(spec[k]-cmplx.Conj(spec[n-k])) > 1e-10 {
			t.Fatalf("spectrum of real signal not conjugate-symmetric at k=%d", k)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is flat with value 1/√n.
	n := 8
	x := make([]complex128, n)
	x[0] = 1
	y := FFT(x)
	want := 1 / math.Sqrt(float64(n))
	for k := range y {
		if math.Abs(real(y[k])-want) > 1e-12 || math.Abs(imag(y[k])) > 1e-12 {
			t.Fatalf("impulse spectrum wrong at %d: %v", k, y[k])
		}
	}
}

func TestConvolve(t *testing.T) {
	// Small circular convolution against the direct O(n²) sum.
	a := []float64{1, 2, 3, 4}
	b := []float64{0.5, -1, 0, 2}
	got, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a)
	for k := 0; k < n; k++ {
		var want float64
		for j := 0; j < n; j++ {
			want += a[j] * b[(k-j+n)%n]
		}
		if math.Abs(got[k]-want) > 1e-10 {
			t.Fatalf("Convolve[%d]=%g want %g", k, got[k], want)
		}
	}
	if _, err := Convolve(a, b[:2]); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestDCTRoundTrip(t *testing.T) {
	src := rng.New(6)
	for _, n := range []int{1, 2, 5, 16, 50} {
		x := src.NormalVec(n, 1)
		back := DCT3(DCT2(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("DCT round trip failed at n=%d i=%d", n, i)
			}
		}
	}
}

func TestDCTParseval(t *testing.T) {
	src := rng.New(7)
	x := src.NormalVec(33, 1)
	y := DCT2(x)
	var nx, ny float64
	for i := range x {
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if math.Abs(nx-ny) > 1e-9*(1+nx) {
		t.Fatalf("DCT not orthonormal: %g vs %g", nx, ny)
	}
}

func TestDCTConstantSignal(t *testing.T) {
	// A constant signal concentrates all energy in coefficient 0.
	n := 16
	x := make([]float64, n)
	for i := range x {
		x[i] = 3
	}
	y := DCT2(x)
	if math.Abs(y[0]-3*math.Sqrt(float64(n))) > 1e-10 {
		t.Fatalf("DC coefficient %g", y[0])
	}
	for k := 1; k < n; k++ {
		if math.Abs(y[k]) > 1e-10 {
			t.Fatalf("non-zero AC coefficient at %d: %g", k, y[k])
		}
	}
}

func TestHaarRoundTrip(t *testing.T) {
	src := rng.New(8)
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := src.NormalVec(n, 1)
		back := IHaar(Haar(x))
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("Haar round trip failed at n=%d i=%d", n, i)
			}
		}
	}
}

func TestHaarOrthonormal(t *testing.T) {
	// Columns of the basis are orthonormal: ⟨ψi, ψj⟩ = δij.
	n := 16
	basis := make([][]float64, n)
	for j := 0; j < n; j++ {
		basis[j] = HaarBasisColumn(n, j)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += basis[i][k] * basis[j][k]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Fatalf("⟨ψ%d,ψ%d⟩=%g want %g", i, j, dot, want)
			}
		}
	}
}

func TestHaarParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := rng.New(seed)
		n := 1 << (1 + s.Intn(7))
		x := s.NormalVec(n, 1)
		y := Haar(x)
		var nx, ny float64
		for i := range x {
			nx += x[i] * x[i]
			ny += y[i] * y[i]
		}
		return math.Abs(nx-ny) <= 1e-9*(1+nx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarPanicsOnBadLength(t *testing.T) {
	for _, f := range []func(){
		func() { Haar(make([]float64, 3)) },
		func() { Haar(nil) },
		func() { IHaar(make([]float64, 6)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHaarConstantSignal(t *testing.T) {
	n := 8
	x := make([]float64, n)
	for i := range x {
		x[i] = 2
	}
	y := Haar(x)
	if math.Abs(y[0]-2*math.Sqrt(float64(n))) > 1e-12 {
		t.Fatalf("scaling coefficient %g", y[0])
	}
	for k := 1; k < n; k++ {
		if math.Abs(y[k]) > 1e-12 {
			t.Fatalf("detail coefficient %d non-zero: %g", k, y[k])
		}
	}
}
