package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeAll is a test helper: write p through f, failing the test on a
// real (non-injected) error.
func mustWrite(t *testing.T, f File, p []byte) error {
	t.Helper()
	_, err := f.Write(p)
	return err
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return b
}

// TestDiskRoundTrip exercises the passthrough implementation end to end:
// temp + write + sync + rename + dir sync + append + readdir.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tmp, err := Disk.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "final")
	if err := Disk.Rename(tmp.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if err := Disk.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	f, err := Disk.Append(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := string(readFile(t, dst)); got != "hello world" {
		t.Fatalf("content %q, want %q", got, "hello world")
	}
	names, err := Disk.ReadDir(dir)
	if err != nil || len(names) != 1 || names[0] != "final" {
		t.Fatalf("ReadDir = %v, %v; want [final]", names, err)
	}
}

// TestFailWriteCrashes: the armed write fails with nothing persisted,
// the unsynced prefix written before it is rewound, and every later
// operation reports the crash.
func TestFailWriteCrashes(t *testing.T) {
	dir := t.TempDir()
	inj := New(Faults{FailWrite: 2})
	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mustWrite(t, f, []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mustWrite(t, f, []byte("lost")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write error = %v, want ErrInjected", err)
	}
	if !inj.Tripped() {
		t.Fatal("fault did not trip")
	}
	if _, err := inj.Create(filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Create error = %v, want ErrCrashed", err)
	}
	if got := string(readFile(t, filepath.Join(dir, "f"))); got != "synced" {
		t.Fatalf("post-crash content %q, want only the synced prefix", got)
	}
}

// TestShortWriteTearsRecord: the armed write persists exactly half its
// bytes before the crash.
func TestShortWriteTearsRecord(t *testing.T) {
	dir := t.TempDir()
	inj := New(Faults{ShortWrite: 1, TornTail: true})
	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) || n != 4 {
		t.Fatalf("short write = (%d, %v), want (4, ErrInjected)", n, err)
	}
	// TornTail keeps half of the 4 unsynced bytes.
	if got := string(readFile(t, filepath.Join(dir, "f"))); got != "ab" {
		t.Fatalf("post-crash content %q, want torn half %q", got, "ab")
	}
}

// TestFailSyncRewinds: a failed fsync means everything since the last
// successful one is gone after the crash.
func TestFailSyncRewinds(t *testing.T) {
	dir := t.TempDir()
	inj := New(Faults{FailSync: 2})
	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mustWrite(t, f, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mustWrite(t, f, []byte("drop")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync error = %v, want ErrInjected", err)
	}
	if got := string(readFile(t, filepath.Join(dir, "f"))); got != "keep" {
		t.Fatalf("post-crash content %q, want %q", got, "keep")
	}
}

// TestTornRenameDirtySource is the model behind the fsync-before-rename
// satellite: renaming a never-synced temp can leave the destination name
// pointing at truncated content — here zero bytes.
func TestTornRenameDirtySource(t *testing.T) {
	dir := t.TempDir()
	inj := New(Faults{FailRename: 1})
	tmp, err := inj.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := mustWrite(t, tmp, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// No Sync: the source is dirty at rename time.
	dst := filepath.Join(dir, "final")
	if err := inj.Rename(tmp.Name(), dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed rename error = %v, want ErrInjected", err)
	}
	b, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("destination missing after torn rename: %v", err)
	}
	if len(b) != 0 {
		t.Fatalf("destination holds %q, want the zero-length torn file", b)
	}
}

// TestTornRenameCleanSource: with the source fsynced, the worst a crash
// at the rename can do is lose the swap — the previous destination
// content survives, never a torn file.
func TestTornRenameCleanSource(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "final")
	if err := os.WriteFile(dst, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := New(Faults{FailRename: 1})
	tmp, err := inj.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := mustWrite(t, tmp, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := inj.Rename(tmp.Name(), dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed rename error = %v, want ErrInjected", err)
	}
	if got := string(readFile(t, dst)); got != "old" {
		t.Fatalf("destination %q after lost rename, want previous content %q", got, "old")
	}
}

// TestRenameUndoneWithoutDirSync: a successful rename is provisional
// until SyncDir; a crash before it restores the previous destination,
// while a crash after it keeps the swap.
func TestRenameUndoneWithoutDirSync(t *testing.T) {
	for _, synced := range []bool{false, true} {
		dir := t.TempDir()
		dst := filepath.Join(dir, "final")
		if err := os.WriteFile(dst, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		inj := New(Faults{})
		tmp, err := inj.CreateTemp(dir, ".t-*")
		if err != nil {
			t.Fatal(err)
		}
		if err := mustWrite(t, tmp, []byte("new")); err != nil {
			t.Fatal(err)
		}
		if err := tmp.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := tmp.Close(); err != nil {
			t.Fatal(err)
		}
		if err := inj.Rename(tmp.Name(), dst); err != nil {
			t.Fatal(err)
		}
		if synced {
			if err := inj.SyncDir(dir); err != nil {
				t.Fatal(err)
			}
		}
		inj.Crash()
		want := "old"
		if synced {
			want = "new"
		}
		if got := string(readFile(t, dst)); got != want {
			t.Fatalf("synced=%v: destination %q after crash, want %q", synced, got, want)
		}
	}
}

// TestPointsEnumeration: the probe run counts every operation kind and
// the armed faults actually fire at those points.
func TestPointsEnumeration(t *testing.T) {
	base := t.TempDir()
	run := 0
	scenario := func(fs FS) error {
		dir := filepath.Join(base, "run", string(rune('a'+run)))
		run++
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		tmp, err := fs.CreateTemp(dir, ".t-*")
		if err != nil {
			return err
		}
		if _, err := tmp.Write([]byte("x")); err != nil {
			return err
		}
		if err := tmp.Sync(); err != nil {
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := fs.Rename(tmp.Name(), filepath.Join(dir, "f")); err != nil {
			return err
		}
		return fs.SyncDir(dir)
	}
	pts, err := Points(scenario)
	if err != nil {
		t.Fatal(err)
	}
	// 1 write (+1 shortwrite point), 2 syncs (file + dir), 1 rename, 1 create.
	if len(pts) != 1+1+2+1+1 {
		t.Fatalf("got %d points (%v), want 6", len(pts), pts)
	}
	for _, pt := range pts {
		inj := New(pt.Faults(false))
		if err := scenario(inj); !errors.Is(err, ErrInjected) {
			t.Fatalf("point %s: scenario error = %v, want ErrInjected", pt, err)
		}
		if !inj.Tripped() {
			t.Fatalf("point %s did not trip", pt)
		}
	}
}
