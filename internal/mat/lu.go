package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters an
// (effectively) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu    *Dense // packed L (unit lower) and U
	pivot []int  // row permutation
	sign  int    // permutation parity, for Det
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting.
func FactorLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: FactorLU needs a square matrix")
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxAbs := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		pivot[k] = p
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.RawRow(k), lu.RawRow(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		inv := 1 / lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			lik := lu.data[i*n+k] * inv
			lu.data[i*n+k] = lik
			if lik == 0 {
				continue
			}
			rowi := lu.RawRow(i)
			rowk := lu.RawRow(k)
			for j := k + 1; j < n; j++ {
				rowi[j] -= lik * rowk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// SolveVec solves A·x = b for x.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, errors.New("mat: LU SolveVec length mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the row permutation first (the factorization swaps whole rows,
	// so the stored L refers to fully permuted row positions), then
	// forward-substitute the unit lower factor.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			x[i] -= f.lu.data[i*n+k] * x[k]
		}
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.RawRow(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve solves A·X = B column-by-column.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, errors.New("mat: LU Solve dimension mismatch")
	}
	x := New(n, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		x.SetCol(j, col)
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Inverse returns A⁻¹ for a square nonsingular matrix.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Eye(a.rows))
}

// Solve solves A·X = B for square nonsingular A.
func Solve(a, b *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveVec solves A·x = b for square nonsingular A.
func SolveVec(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}
