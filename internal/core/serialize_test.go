package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestDecompositionRoundTrip(t *testing.T) {
	w := workload.Related(10, 14, 2, rng.New(1))
	d, err := Decompose(w.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecomposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.B.EqualApprox(d.B, 0) || !got.L.EqualApprox(d.L, 0) {
		t.Fatal("round-trip changed the factors")
	}
	if got.Residual != d.Residual || got.Converged != d.Converged || got.OuterIterations != d.OuterIterations {
		t.Fatal("round-trip changed metadata")
	}
	// The restored decomposition must still answer queries.
	m, err := NewMechanism(got)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Answer(make([]float64, 14), 1, rng.New(2)); err != nil {
		t.Fatal(err)
	}
}

func TestReadDecompositionCorrupt(t *testing.T) {
	if _, err := ReadDecomposition(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	w := workload.Prefix(6)
	d, err := Decompose(w.W, Options{MaxOuterIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadDecomposition(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// craftedWire gob-encodes a hand-built wire payload, as an attacker with
// write access to a cache directory could.
func craftedWire(t *testing.T, wire decompositionWire) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestReadDecompositionRejectsCrafted covers payloads that pass the shape
// checks but violate invariants the answer path depends on: non-finite
// factors or metadata would poison every subsequent release, and
// overflowing dimensions would wrap rows*cols past the length check and
// panic deep inside answering instead of failing at decode time.
func TestReadDecompositionRejectsCrafted(t *testing.T) {
	valid := func() decompositionWire {
		return decompositionWire{
			BRows: 2, BCols: 2, LRows: 2, LCols: 3,
			BData:    []float64{1, 0, 0, 1},
			LData:    []float64{1, 0, 0, 0, 1, 0},
			Residual: 0.5, Outer: 3, Converged: true,
		}
	}
	if _, err := ReadDecomposition(craftedWire(t, valid())); err != nil {
		t.Fatalf("valid crafted payload rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*decompositionWire)
	}{
		{"NaN in BData", func(w *decompositionWire) { w.BData[3] = math.NaN() }},
		{"+Inf in BData", func(w *decompositionWire) { w.BData[0] = math.Inf(1) }},
		{"NaN in LData", func(w *decompositionWire) { w.LData[2] = math.NaN() }},
		{"-Inf in LData", func(w *decompositionWire) { w.LData[5] = math.Inf(-1) }},
		{"NaN residual", func(w *decompositionWire) { w.Residual = math.NaN() }},
		{"Inf residual", func(w *decompositionWire) { w.Residual = math.Inf(1) }},
		{"negative residual", func(w *decompositionWire) { w.Residual = -1 }},
		{"negative iterations", func(w *decompositionWire) { w.Outer = -7 }},
		{"overflowing dimensions", func(w *decompositionWire) {
			// 2³²·2³² wraps to 0 on 64-bit int, matching empty data.
			w.BRows, w.BCols = 1<<32, 1<<32
			w.BData = nil
		}},
		{"oversized dimensions", func(w *decompositionWire) {
			w.BRows = 1 << 25
			w.BData = nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wire := valid()
			tc.mutate(&wire)
			if _, err := ReadDecomposition(craftedWire(t, wire)); err == nil {
				t.Fatalf("crafted payload (%s) accepted", tc.name)
			}
		})
	}
}
