package mat

import "math"

// Trace returns the sum of diagonal entries of a square matrix.
func Trace(a *Dense) float64 {
	if a.rows != a.cols {
		panic("mat: Trace of non-square matrix")
	}
	var s float64
	for i := 0; i < a.rows; i++ {
		s += a.data[i*a.cols+i]
	}
	return s
}

// TraceMul returns tr(a·b) = Σᵢⱼ aᵢⱼ·bⱼᵢ without forming the product,
// turning an O(n³) trace-of-product into O(n²).
func TraceMul(a, b *Dense) float64 {
	if a.cols != b.rows || a.rows != b.cols {
		panic("mat: TraceMul needs a (m×n)·(n×m) pair")
	}
	var s float64
	for i := 0; i < a.rows; i++ {
		row := a.RawRow(i)
		for j, v := range row {
			s += v * b.data[j*b.cols+i]
		}
	}
	return s
}

// FrobeniusNorm returns ‖a‖_F = sqrt(Σ aᵢⱼ²).
func FrobeniusNorm(a *Dense) float64 {
	return math.Sqrt(SquaredSum(a))
}

// SquaredSum returns Σ aᵢⱼ², the squared Frobenius norm. This is the
// paper's query scale Φ(B,L) when applied to B (Definition 1).
func SquaredSum(a *Dense) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return s
}

// MaxColAbsSum returns max_j Σᵢ |aᵢⱼ|, the induced L1 operator norm.
// Applied to a strategy matrix L this is the paper's query sensitivity
// Δ(B,L) (Definition 2).
func MaxColAbsSum(a *Dense) float64 {
	if a.cols == 0 {
		return 0
	}
	sums := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.RawRow(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	best := sums[0]
	for _, v := range sums[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

// MaxRowAbsSum returns max_i Σⱼ |aᵢⱼ|, the induced L∞ operator norm.
func MaxRowAbsSum(a *Dense) float64 {
	var best float64
	for i := 0; i < a.rows; i++ {
		var s float64
		for _, v := range a.RawRow(i) {
			s += math.Abs(v)
		}
		if s > best {
			best = s
		}
	}
	return best
}

// MaxAbs returns max |aᵢⱼ|.
func MaxAbs(a *Dense) float64 {
	var best float64
	for _, v := range a.data {
		if av := math.Abs(v); av > best {
			best = av
		}
	}
	return best
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecNorm1 returns the L1 norm of x.
func VecNorm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// VecDot returns the dot product of x and y.
func VecDot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: VecDot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// VecSub returns x - y as a new slice.
func VecSub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: VecSub length mismatch")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - y[i]
	}
	return out
}

// VecAdd returns x + y as a new slice.
func VecAdd(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: VecAdd length mismatch")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + y[i]
	}
	return out
}

// SpectralNorm returns ‖a‖₂, the largest singular value, estimated by
// power iteration on aᵀa. It is accurate to about 1e-10 relative error
// for well-separated spectra and is used only for diagnostics.
func SpectralNorm(a *Dense) float64 {
	if a.rows == 0 || a.cols == 0 {
		return 0
	}
	x := make([]float64, a.cols)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(len(x)))
	}
	var sigma float64
	for iter := 0; iter < 200; iter++ {
		y := MulVec(a, x)
		z := MulVecT(a, y)
		nz := VecNorm2(z)
		if nz == 0 {
			return 0
		}
		for i := range z {
			z[i] /= nz
		}
		newSigma := math.Sqrt(nz)
		x = z
		if math.Abs(newSigma-sigma) <= 1e-12*newSigma {
			sigma = newSigma
			break
		}
		sigma = newSigma
	}
	return sigma
}
