//go:build !amd64

package mat

// Non-amd64 builds always use the scalar micro-kernels in gemm.go.
var gemmUseAsm = false

// gemmKernel4x8 is never called when gemmUseAsm is false; this stub only
// satisfies the compiler.
func gemmKernel4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64) {
	panic("mat: gemmKernel4x8 called without assembly support")
}
