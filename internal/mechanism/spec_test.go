package mechanism

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestSpecPreparedMatchesDense pins the implicit baselines against their
// dense twins: same spec, same seed, (near-)identical release. The noise
// draw sequences are identical by construction; only the float summation
// order of the workload product differs.
func TestSpecPreparedMatchesDense(t *testing.T) {
	specs := []workload.Spec{
		workload.NewPrefixSpec(16),
		workload.NewAllRangesSpec(9),
		workload.NewKronSpec(workload.NewPrefixSpec(5), workload.NewIdentitySpec(4)),
		workload.NewMarginalSpec([]int{3, 4}, 1),
	}
	eps := privacy.Epsilon(0.9)
	for _, s := range specs {
		dense, err := workload.MaterializeSpec(s, 1<<20)
		if err != nil {
			t.Fatalf("MaterializeSpec(%s): %v", s.Describe(), err)
		}
		x := rng.New(3).UniformVec(s.Domain(), 0, 100)
		for _, m := range []Mechanism{LaplaceData{}, LaplaceResults{}} {
			sp, err := PrepareSpec(m, s, nil)
			if err != nil {
				t.Fatalf("%s: PrepareSpec(%s): %v", m.Name(), s.Describe(), err)
			}
			dp, err := m.Prepare(dense)
			if err != nil {
				t.Fatalf("%s: Prepare: %v", m.Name(), err)
			}
			got, err := sp.Answer(x, eps, rng.New(77))
			if err != nil {
				t.Fatalf("%s: spec Answer: %v", m.Name(), err)
			}
			want, err := dp.Answer(x, eps, rng.New(77))
			if err != nil {
				t.Fatalf("%s: dense Answer: %v", m.Name(), err)
			}
			scale := 1 + mat.VecNorm2(want)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9*scale {
					t.Fatalf("%s on %s: Answer[%d] = %g, dense %g", m.Name(), s.Describe(), i, got[i], want[i])
				}
			}
			if g, w := sp.ExpectedSSE(eps), dp.ExpectedSSE(eps); math.Abs(g-w) > 1e-9*(1+w) {
				t.Errorf("%s on %s: ExpectedSSE %g, dense %g", m.Name(), s.Describe(), g, w)
			}
		}
	}
}

func TestLRMPrepareSpecKron(t *testing.T) {
	s := workload.NewKronSpec(workload.NewPrefixSpec(6), workload.NewPrefixSpec(4))
	p, err := PrepareSpec(LRM{}, s, nil)
	if err != nil {
		t.Fatalf("PrepareSpec: %v", err)
	}
	kp, ok := p.(*kronPrepared)
	if !ok {
		t.Fatalf("prepared is %T, want *kronPrepared", p)
	}
	eps := privacy.Epsilon(1)
	// The factored strategy's analytic error must beat NOR on this
	// low-sensitivity product and be self-consistent with Lemma 1.
	kd := kp.KronDecomposition()
	if got, want := p.ExpectedSSE(eps), kd.ExpectedSSE(float64(eps)); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("ExpectedSSE %g, decomposition says %g", got, want)
	}
	x := rng.New(5).UniformVec(24, 0, 10)
	out, err := p.Answer(x, eps, rng.New(9))
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(out) != 24 {
		t.Fatalf("answer length %d, want 24", len(out))
	}

	// Restored factored decompositions answer identically.
	rp, err := PreparedFromKronDecomposition(kd)
	if err != nil {
		t.Fatalf("PreparedFromKronDecomposition: %v", err)
	}
	again, err := rp.Answer(x, eps, rng.New(9))
	if err != nil {
		t.Fatalf("restored Answer: %v", err)
	}
	for i := range out {
		if out[i] != again[i] {
			t.Fatalf("restored Answer[%d] = %g, original %g", i, again[i], out[i])
		}
	}
}

func TestPrepareSpecDispatch(t *testing.T) {
	// Dense adapters unwrap to the matrix path for any mechanism.
	dw := workload.Prefix(8)
	if _, err := PrepareSpec(LRM{}, workload.AsSpec(dw), nil); err != nil {
		t.Errorf("dense adapter via LRM: %v", err)
	}
	// LRM on a non-Kronecker implicit spec has no factored strategy.
	if _, err := PrepareSpec(LRM{}, workload.NewPrefixSpec(8), nil); err == nil {
		t.Errorf("LRM accepted an implicit prefix spec")
	}
	// A mechanism with no spec path reports it needs materialization.
	for _, name := range Names() {
		m, err := ByName(name, Config{})
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if _, ok := m.(SpecPreparer); ok {
			continue
		}
		if _, err := PrepareSpec(m, workload.NewPrefixSpec(8), nil); err == nil {
			t.Errorf("%s silently accepted an implicit spec", name)
		}
	}
}
