package core

import (
	"math"

	"lrm/internal/mat"
)

// Bounds collects the paper's optimality analysis (Section 4.1) for a
// workload matrix: the upper bound on LRM's error (Lemma 3), the lower
// bound on any ε-DP mechanism's error (Lemma 4), and the resulting
// approximation ratio (Theorem 2).
type Bounds struct {
	// Rank is the numerical rank r of the workload.
	Rank int
	// Singular values λ₁ ≥ … ≥ λ_r of the workload (nonzero part).
	Eigenvalues []float64
	// ConditionNumber is C = λ₁/λ_r.
	ConditionNumber float64
	// Upper is Lemma 3's bound: 2·r·Σλ_k²/ε² (the factor 2 is the Laplace
	// variance, carried explicitly here).
	Upper float64
	// Lower is Lemma 4's bound: (2^r/r!·Πλ_k)^{2/r}·r³/ε², computed in
	// log space to avoid overflow.
	Lower float64
	// ApproxRatio is Upper/Lower, which Theorem 2 bounds by O(C²r) for
	// r > 5.
	ApproxRatio float64
}

// AnalyzeBounds computes the optimality certificates for workload w at
// privacy budget eps.
func AnalyzeBounds(w *mat.Dense, eps float64) *Bounds {
	svd := mat.FactorSVD(w)
	r := svd.Rank()
	b := &Bounds{Rank: r}
	if r == 0 {
		return b
	}
	b.Eigenvalues = append([]float64(nil), svd.S[:r]...)
	b.ConditionNumber = svd.S[0] / svd.S[r-1]

	var sumSq float64
	var sumLog float64
	for _, lam := range b.Eigenvalues {
		sumSq += lam * lam
		sumLog += math.Log(lam)
	}
	rf := float64(r)
	b.Upper = 2 * rf * sumSq / (eps * eps)

	// (2^r/r!·Πλ)^{2/r}·r³/ε² in log space:
	// exp((2/r)·(r·ln2 − lnΓ(r+1) + Σlnλ))·r³/ε².
	lgamma, _ := math.Lgamma(rf + 1)
	logVol := rf*math.Ln2 - lgamma + sumLog
	b.Lower = math.Exp(2/rf*logVol) * rf * rf * rf / (eps * eps)

	if b.Lower > 0 {
		b.ApproxRatio = b.Upper / b.Lower
	} else {
		b.ApproxRatio = math.Inf(1)
	}
	return b
}

// TheoremTwoBound returns the paper's O(C²r) cap on the approximation
// ratio in the exact intermediate form of the proof's chain:
//
//	Upper/Lower ≤ 2·C² / ((2^r/r!)^{2/r}·r)
//
// (the leading 2 is the Laplace variance carried in Upper). The proof
// then bounds (2^r/r!)^{2/r} ≥ (4/r)² for r > 5, giving the headline
// O(C²·r). The chain's inequalities are tight exactly when C = 1.
func (b *Bounds) TheoremTwoBound() float64 {
	if b.Rank == 0 {
		return 0
	}
	rf := float64(b.Rank)
	lgamma, _ := math.Lgamma(rf + 1)
	logFactor := (2 / rf) * (rf*math.Ln2 - lgamma)
	return 2 * b.ConditionNumber * b.ConditionNumber / (math.Exp(logFactor) * rf)
}
