package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func l1norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

func TestProjectL1BallAlreadyFeasible(t *testing.T) {
	x := []float64{0.2, -0.3}
	orig := append([]float64(nil), x...)
	ProjectL1Ball(x, 1)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("feasible point was modified")
		}
	}
}

func TestProjectL1BallKnown(t *testing.T) {
	// Projecting (3,0) onto the unit L1 ball gives (1,0).
	x := []float64{3, 0}
	ProjectL1Ball(x, 1)
	if math.Abs(x[0]-1) > 1e-12 || x[1] != 0 {
		t.Fatalf("got %v, want [1 0]", x)
	}
	// Projecting (1,1) onto the unit ball gives (0.5,0.5).
	y := []float64{1, 1}
	ProjectL1Ball(y, 1)
	if math.Abs(y[0]-0.5) > 1e-12 || math.Abs(y[1]-0.5) > 1e-12 {
		t.Fatalf("got %v, want [0.5 0.5]", y)
	}
}

func TestProjectL1BallSigns(t *testing.T) {
	x := []float64{-3, 2}
	ProjectL1Ball(x, 1)
	if x[0] >= 0 {
		t.Fatalf("sign flipped: %v", x)
	}
	if math.Abs(l1norm(x)-1) > 1e-10 {
		t.Fatalf("norm = %v", l1norm(x))
	}
}

func TestProjectL1BallZeroRadius(t *testing.T) {
	x := []float64{1, -2, 3}
	ProjectL1Ball(x, 0)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("got %v, want zeros", x)
		}
	}
}

func TestProjectL1BallNegativeRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative radius did not panic")
		}
	}()
	ProjectL1Ball([]float64{1}, -1)
}

// Property: the projection is feasible and is a fixed point (idempotent).
func TestProjectL1BallProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		radius := r.Float64()*3 + 0.01
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 3
		}
		ProjectL1Ball(x, radius)
		if l1norm(x) > radius+1e-9 {
			return false
		}
		y := append([]float64(nil), x...)
		ProjectL1Ball(y, radius)
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the projection is the nearest feasible point — no random
// feasible point may be closer.
func TestProjectL1BallOptimality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		radius := r.Float64()*2 + 0.05
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 2
		}
		proj := append([]float64(nil), x...)
		ProjectL1Ball(proj, radius)
		var dProj float64
		for i := range x {
			dProj += (x[i] - proj[i]) * (x[i] - proj[i])
		}
		// Generate random feasible candidates; none may beat proj.
		for trial := 0; trial < 50; trial++ {
			c := make([]float64, n)
			for i := range c {
				c[i] = r.NormFloat64()
			}
			ProjectL1Ball(c, radius) // guarantees feasibility
			var dc float64
			for i := range x {
				dc += (x[i] - c[i]) * (x[i] - c[i])
			}
			if dc < dProj-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the pivot-based projection agrees with the sort-based one.
func TestProjectL1BallPivotAgrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		radius := r.Float64()*4 + 0.01
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 3
		}
		a := append([]float64(nil), x...)
		b := append([]float64(nil), x...)
		ProjectL1Ball(a, radius)
		ProjectL1BallPivot(b, radius)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectColumnsL1(t *testing.T) {
	// 2×3 matrix, project each column onto unit L1 ball.
	data := []float64{
		3, 0.2, -1,
		1, 0.3, -1,
	}
	ProjectColumnsL1(data, 2, 3, 1)
	// Column 0: (3,1) -> (1.5,-?) ... check feasibility per column.
	for j := 0; j < 3; j++ {
		s := math.Abs(data[j]) + math.Abs(data[3+j])
		if s > 1+1e-9 {
			t.Fatalf("column %d has L1 norm %v", j, s)
		}
	}
	// Column 1 was already feasible and must be unchanged.
	if data[1] != 0.2 || data[4] != 0.3 {
		t.Fatalf("feasible column changed: %v", data)
	}
}

func TestSmoothMaxBounds(t *testing.T) {
	v := []float64{1, 5, 3}
	mu := 0.1
	f := SmoothMax(v, mu)
	if f < 5 || f > 5+mu*math.Log(3)+1e-12 {
		t.Fatalf("SmoothMax = %v outside [5, 5+μ·log3]", f)
	}
}

func TestSmoothMaxGradSimplex(t *testing.T) {
	v := []float64{2, 8, 5, 8}
	grad := make([]float64, 4)
	SmoothMaxGrad(v, 0.5, grad)
	var sum float64
	for _, g := range grad {
		if g < 0 {
			t.Fatalf("negative gradient component %v", g)
		}
		sum += g
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("gradient sums to %v, want 1", sum)
	}
	// Largest inputs dominate.
	if grad[1] < grad[0] || grad[3] < grad[2] {
		t.Fatalf("gradient not ordered with inputs: %v", grad)
	}
}

func TestSmoothMaxLargeValuesStable(t *testing.T) {
	v := []float64{1e8, 1e8 - 1}
	f := SmoothMax(v, 0.01)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		t.Fatalf("SmoothMax overflowed: %v", f)
	}
}
