// Package sparse provides a compressed sparse row (CSR) matrix used for
// the structurally sparse objects in this repository: range-query
// workloads (each row touches one interval), hierarchical and wavelet
// strategy matrices (O(log n) non-zeros per column), and the measurement
// matrices of the synopsis mechanisms. CSR keeps the per-answer cost of a
// mechanism proportional to the number of non-zeros instead of m·n.
//
// The package mirrors the dense API of internal/mat where the operations
// coincide, and every operation is cross-checked against its dense
// counterpart in the tests.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"lrm/internal/mat"
)

// CSR is an immutable sparse matrix in compressed sparse row form.
//
// For row i, the non-zero columns are colIdx[rowPtr[i]:rowPtr[i+1]] with
// values val[rowPtr[i]:rowPtr[i+1]], sorted by column. Construct one with
// FromDense, FromTriplets or a Builder; the zero value is an empty 0×0
// matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int // len rows+1
	colIdx     []int // len nnz
	val        []float64
}

// Rows returns the number of rows.
func (a *CSR) Rows() int { return a.rows }

// Cols returns the number of columns.
func (a *CSR) Cols() int { return a.cols }

// Dims returns (rows, cols).
func (a *CSR) Dims() (int, int) { return a.rows, a.cols }

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.val) }

// Density returns NNZ / (rows·cols), the fill fraction.
func (a *CSR) Density() float64 {
	if a.rows == 0 || a.cols == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.rows) * float64(a.cols))
}

// Triplet is one explicit (row, col, value) entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// FromTriplets builds an r×c CSR matrix from entries. Duplicate (row, col)
// pairs are summed; explicit zeros are dropped.
func FromTriplets(r, c int, entries []Triplet) (*CSR, error) {
	if r < 0 || c < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d×%d", r, c)
	}
	for _, t := range entries {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range %d×%d", t.Row, t.Col, r, c)
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	a := &CSR{rows: r, cols: c, rowPtr: make([]int, r+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			a.colIdx = append(a.colIdx, sorted[i].Col)
			a.val = append(a.val, v)
			a.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < r; i++ {
		a.rowPtr[i+1] += a.rowPtr[i]
	}
	return a, nil
}

// FromDense converts a dense matrix to CSR, dropping entries with
// |v| <= tol (pass 0 to keep every non-zero bit pattern).
func FromDense(d *mat.Dense, tol float64) *CSR {
	r, c := d.Dims()
	a := &CSR{rows: r, cols: c, rowPtr: make([]int, r+1)}
	for i := 0; i < r; i++ {
		row := d.RawRow(i)
		for j, v := range row {
			if math.Abs(v) > tol {
				a.colIdx = append(a.colIdx, j)
				a.val = append(a.val, v)
			}
		}
		a.rowPtr[i+1] = len(a.val)
	}
	return a
}

// Identity returns the n×n sparse identity.
func Identity(n int) *CSR {
	a := &CSR{rows: n, cols: n, rowPtr: make([]int, n+1), colIdx: make([]int, n), val: make([]float64, n)}
	for i := 0; i < n; i++ {
		a.rowPtr[i+1] = i + 1
		a.colIdx[i] = i
		a.val[i] = 1
	}
	return a
}

// ToDense expands the matrix into a fresh dense matrix.
func (a *CSR) ToDense() *mat.Dense {
	d := mat.New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		row := d.RawRow(i)
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			row[a.colIdx[k]] = a.val[k]
		}
	}
	return d
}

// At returns the element at (i, j) by binary search within row i.
func (a *CSR) At(i, j int) float64 {
	if i < 0 || i >= a.rows || j < 0 || j >= a.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %d×%d", i, j, a.rows, a.cols))
	}
	lo, hi := a.rowPtr[i], a.rowPtr[i+1]
	k := lo + sort.SearchInts(a.colIdx[lo:hi], j)
	if k < hi && a.colIdx[k] == j {
		return a.val[k]
	}
	return 0
}

// MulVec computes y = A·x.
func (a *CSR) MulVec(x []float64) []float64 {
	if len(x) != a.cols {
		panic(fmt.Sprintf("sparse: MulVec length %d != cols %d", len(x), a.cols))
	}
	y := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		var s float64
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			s += a.val[k] * x[a.colIdx[k]]
		}
		y[i] = s
	}
	return y
}

// MulVecT computes y = Aᵀ·x without forming the transpose.
func (a *CSR) MulVecT(x []float64) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("sparse: MulVecT length %d != rows %d", len(x), a.rows))
	}
	y := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			y[a.colIdx[k]] += a.val[k] * xi
		}
	}
	return y
}

// MulDense computes A·B for a dense B, returning a dense rows×B.Cols()
// result. Cost is O(nnz(A)·B.Cols()).
func (a *CSR) MulDense(b *mat.Dense) *mat.Dense {
	if a.cols != b.Rows() {
		panic(fmt.Sprintf("sparse: MulDense %d×%d by %d×%d", a.rows, a.cols, b.Rows(), b.Cols()))
	}
	return a.MulDenseTo(mat.New(a.rows, b.Cols()), b)
}

// mulDenseParallelWork is the nnz·cols volume above which MulDenseTo
// row-partitions across the shared worker pool (mirroring internal/mat's
// serial cutoff for dense products).
const mulDenseParallelWork = 1 << 21

// MulDenseTo computes A·B into dst (rows×B.Cols()), so callers answering
// many products over one workload reuse a single destination instead of
// allocating per call. dst must not share storage with b. Large products
// are row-partitioned over the numeric stack's shared worker pool (each
// output row is still accumulated by one goroutine in stored-entry order,
// so results match the serial path bit-for-bit); small ones stay on the
// caller's goroutine.
func (a *CSR) MulDenseTo(dst, b *mat.Dense) *mat.Dense {
	if a.cols != b.Rows() {
		panic(fmt.Sprintf("sparse: MulDenseTo %d×%d by %d×%d", a.rows, a.cols, b.Rows(), b.Cols()))
	}
	if r, c := dst.Dims(); r != a.rows || c != b.Cols() {
		panic(fmt.Sprintf("sparse: MulDenseTo destination is %d×%d, need %d×%d", r, c, a.rows, b.Cols()))
	}
	if mat.SharesStorage(dst, b) {
		panic("sparse: MulDenseTo destination aliases the dense operand")
	}
	if a.NNZ()*b.Cols() < mulDenseParallelWork || a.rows <= 1 {
		a.mulDenseRows(dst, b, 0, a.rows)
		return dst
	}
	const chunk = 64
	tiles := (a.rows + chunk - 1) / chunk
	mat.ParallelFor(tiles, func(t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		a.mulDenseRows(dst, b, lo, hi)
	})
	return dst
}

// mulDenseRows accumulates output rows [lo,hi) of A·B into dst.
func (a *CSR) mulDenseRows(dst, b *mat.Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := dst.RawRow(i)
		for j := range row {
			row[j] = 0
		}
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			v := a.val[k]
			src := b.RawRow(a.colIdx[k])
			for j, bv := range src {
				row[j] += v * bv
			}
		}
	}
}

// T returns the transpose as a new CSR matrix.
func (a *CSR) T() *CSR {
	t := &CSR{rows: a.cols, cols: a.rows,
		rowPtr: make([]int, a.cols+1),
		colIdx: make([]int, a.NNZ()),
		val:    make([]float64, a.NNZ()),
	}
	for _, j := range a.colIdx {
		t.rowPtr[j+1]++
	}
	for j := 0; j < a.cols; j++ {
		t.rowPtr[j+1] += t.rowPtr[j]
	}
	next := make([]int, a.cols)
	copy(next, t.rowPtr[:a.cols])
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			j := a.colIdx[k]
			p := next[j]
			t.colIdx[p] = i
			t.val[p] = a.val[k]
			next[j]++
		}
	}
	return t
}

// Scale returns s·A as a new matrix.
func (a *CSR) Scale(s float64) *CSR {
	out := &CSR{rows: a.rows, cols: a.cols, rowPtr: a.rowPtr, colIdx: a.colIdx, val: make([]float64, len(a.val))}
	for i, v := range a.val {
		out.val[i] = s * v
	}
	return out
}

// MaxColAbsSum returns max_j Σᵢ |Aᵢⱼ|: the L1 sensitivity of A viewed as a
// query matrix (Definition 2 of the paper).
func (a *CSR) MaxColAbsSum() float64 {
	col := make([]float64, a.cols)
	for k, j := range a.colIdx {
		col[j] += math.Abs(a.val[k])
	}
	var best float64
	for _, v := range col {
		if v > best {
			best = v
		}
	}
	return best
}

// SquaredSum returns ΣAᵢⱼ² (the query scale Φ when A plays the role of B).
func (a *CSR) SquaredSum() float64 {
	var s float64
	for _, v := range a.val {
		s += v * v
	}
	return s
}

// FrobeniusNorm returns ‖A‖_F.
func (a *CSR) FrobeniusNorm() float64 { return math.Sqrt(a.SquaredSum()) }

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int {
	if i < 0 || i >= a.rows {
		panic(fmt.Sprintf("sparse: row %d out of range %d", i, a.rows))
	}
	return a.rowPtr[i+1] - a.rowPtr[i]
}

// Range iterates the stored entries of row i in column order, calling f
// for each (col, val).
func (a *CSR) Range(i int, f func(j int, v float64)) {
	if i < 0 || i >= a.rows {
		panic(fmt.Sprintf("sparse: row %d out of range %d", i, a.rows))
	}
	for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
		f(a.colIdx[k], a.val[k])
	}
}

// IsFinite reports whether every stored value is finite.
func (a *CSR) IsFinite() bool {
	for _, v := range a.val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
