package lrm_test

import (
	"fmt"

	"lrm"
)

// ExampleAnswerBatch demonstrates the one-call path: build a workload,
// answer it under ε-differential privacy.
func ExampleAnswerBatch() {
	x := []float64{10, 20, 30, 40}
	w := lrm.PrefixWorkload(4) // q_i = x_0 + … + x_i
	noisy, err := lrm.AnswerBatch(w, x, lrm.Epsilon(1000), lrm.NewSource(1))
	if err != nil {
		panic(err)
	}
	// With a huge ε the noise is negligible; round for a stable example.
	for _, v := range noisy {
		fmt.Printf("%.0f ", v)
	}
	// Output: 10 30 60 100
}

// ExampleDecompose shows the decomposition API and its error accounting.
func ExampleDecompose() {
	// Two disjoint range sums can both be asked at sensitivity 1.
	w := lrm.MatrixFromRows([][]float64{
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	d, err := lrm.Decompose(w, lrm.DecomposeOptions{Rank: 2, Gamma: 1e-8})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sensitivity %.0f, expected SSE at eps=1: %.1f\n", d.Sensitivity(), d.ExpectedSSE(1))
	// Output: sensitivity 1, expected SSE at eps=1: 4.0
}

// ExampleAnalyzeBounds prints the paper's optimality certificates.
func ExampleAnalyzeBounds() {
	b := lrm.AnalyzeBounds(lrm.IdentityWorkload(10).W, 1)
	fmt.Printf("rank %d, condition number %.0f\n", b.Rank, b.ConditionNumber)
	// Output: rank 10, condition number 1
}

// ExampleBudget shows sequential composition accounting.
func ExampleBudget() {
	budget, _ := lrm.NewBudget(1.0)
	_ = budget.Spend(0.7)
	if err := budget.Spend(0.5); err != nil {
		fmt.Println("denied")
	}
	// Output: denied
}

// ExampleHistogram demonstrates the bucketized DP histogram of reference
// [29]: blocky data is published with far less error than per-cell noise.
func ExampleHistogram() {
	x := make([]float64, 16)
	for i := range x {
		if i < 8 {
			x[i] = 100
		} else {
			x[i] = 20
		}
	}
	res, err := lrm.NoiseFirstHistogram(x, 2, lrm.Epsilon(1e6), lrm.NewSource(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("buckets start at %v, estimate[0] ≈ %.0f, estimate[15] ≈ %.0f\n",
		res.Boundaries, res.Estimate[0], res.Estimate[15])
	// Output: buckets start at [0 8], estimate[0] ≈ 100, estimate[15] ≈ 20
}

// ExampleNewProjector demonstrates the free consistency projection:
// answers already in col(W) pass through unchanged.
func ExampleNewProjector() {
	w := lrm.MatrixFromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1}, // the third query is the sum of the first two
	})
	p, err := lrm.NewProjector(w)
	if err != nil {
		panic(err)
	}
	// Inconsistent noisy answers: 10, 20, but "sum" says 36.
	fixed, err := p.Apply([]float64{10, 20, 36})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %.0f %.0f\n", fixed[0], fixed[1], fixed[2])
	// Output: 12 22 34
}

// ExampleNonNegative demonstrates the count-domain constraint.
func ExampleNonNegative() {
	fmt.Println(lrm.NonNegative([]float64{3.2, -1.5, 0}))
	// Output: [3.2 0 0]
}
