package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetIter guards the numeric layers' bit-identity contract against map
// iteration order. Serial-vs-parallel equality tests, the disk cache's
// cross-process restores, and the CI perf gate all assume answers are a
// pure function of (workload, seed); Go randomizes map range order per
// execution, so a map-range loop that feeds numeric output turns that
// contract into a coin flip that no single test run can catch.
//
// In the packages that carry the guarantee (mat, core, engine, plan),
// a range over a map is flagged when its body
//
//   - writes an element of a slice, array, or matrix declared outside
//     the loop,
//   - appends the map's values (not just its keys) to an outer slice, or
//   - accumulates floating-point state with an op-assignment (+= over
//     floats rounds differently per visit order; integer accumulation is
//     exact and allowed).
//
// Deleting from the map, writing to other maps, and the collect-keys-
// then-sort idiom remain clean.
var DetIter = &Analyzer{
	Name: "detiter",
	Doc: "flags map-range loops whose bodies write slices/matrices or " +
		"accumulate floats in packages with bit-identity guarantees " +
		"(mat, core, engine, plan)",
	Run: runDetIter,
}

// detiterPackages carry the bit-identity guarantee.
var detiterPackages = map[string]bool{
	"lrm/internal/mat":    true,
	"lrm/internal/core":   true,
	"lrm/internal/engine": true,
	"lrm/internal/plan":   true,
}

func runDetIter(pass *Pass) error {
	path := pass.Pkg.Path()
	if !detiterPackages[path] && !strings.Contains(path, "lint/testdata/") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng)
			return true
		})
	}
	return nil
}

// rangeVarObjs resolves the key/value loop variables to their objects.
func rangeVarObjs(info *types.Info, rng *ast.RangeStmt) (key, val types.Object) {
	if id, ok := rng.Key.(*ast.Ident); ok {
		key = info.Defs[id]
	}
	if rng.Value != nil {
		if id, ok := rng.Value.(*ast.Ident); ok {
			val = info.Defs[id]
		}
	}
	return key, val
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	_, valObj := rangeVarObjs(pass.Info, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Op-assignments accumulating floats: order-dependent rounding.
		if assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE && len(assign.Lhs) == 1 {
			if tv, ok := pass.Info.Types[assign.Lhs[0]]; ok && isFloatish(tv.Type) {
				pass.Report(assign.Pos(),
					"floating-point op-assignment inside map range: accumulation order follows map iteration order, which is randomized")
				return true
			}
		}
		for i, lhs := range assign.Lhs {
			// Writes through a slice/array index: out[i] = …
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if tv, ok := pass.Info.Types[idx.X]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Array:
						pass.Report(assign.Pos(),
							"write to %s inside map range: element order follows map iteration order, which is randomized",
							exprString(idx.X))
					}
				}
			}
			// Appends that carry map values into an ordered output.
			if i < len(assign.Rhs) {
				if call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr); ok &&
					calleeBuiltin(pass.Info, call) == "append" {
					for _, arg := range call.Args[1:] {
						if valObj != nil && mentionsObject(pass.Info, arg, valObj) {
							pass.Report(call.Pos(),
								"append of map values inside map range: output order follows map iteration order, which is randomized (collect keys and sort instead)")
							break
						}
					}
				}
			}
		}
		return true
	})
}

// isFloatish reports whether t is (or is based on) a floating-point type.
func isFloatish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
