package privacy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// The accountant's write-ahead log is a flat sequence of fixed-size,
// CRC-framed records, one file per tenant. Two record types exist:
//
//	'D' (delta)    one granted spend of ε
//	'S' (snapshot) the cumulative spent ε at a compaction point; replay
//	               resets the running sum to it
//
// Each record is 13 bytes: the type byte, the ε as a little-endian
// float64, and a CRC-32C over those nine bytes. Appends are synced
// before the spend is granted, so the only damage a crash can do is a
// torn or missing *final* record: either the grant was never issued
// (record lost — nothing to account) or it was about to be (record
// durable, grant maybe not — an over-count). Replay therefore tolerates
// arbitrary corruption within the last record's reach of EOF and fails
// closed on anything earlier, which can only mean real corruption.

const walRecordSize = 13

// walCRC is the Castagnoli table; CRC-32C is the checksum most storage
// stacks accelerate in hardware.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

const (
	walDelta    = 'D'
	walSnapshot = 'S'
)

// appendWALRecord appends one framed record to buf.
func appendWALRecord(buf []byte, typ byte, eps float64) []byte {
	var rec [walRecordSize]byte
	rec[0] = typ
	binary.LittleEndian.PutUint64(rec[1:9], math.Float64bits(eps))
	binary.LittleEndian.PutUint32(rec[9:13], crc32.Checksum(rec[:9], walCRC))
	return append(buf, rec[:]...)
}

// walRecordOK validates one full frame and returns its payload.
func walRecordOK(rec []byte) (typ byte, eps float64, ok bool) {
	if binary.LittleEndian.Uint32(rec[9:13]) != crc32.Checksum(rec[:9], walCRC) {
		return 0, 0, false
	}
	typ = rec[0]
	eps = math.Float64frombits(binary.LittleEndian.Uint64(rec[1:9]))
	switch {
	case typ == walDelta && eps > 0 && !math.IsInf(eps, 0):
	case typ == walSnapshot && eps >= 0 && !math.IsInf(eps, 0) && !math.IsNaN(eps):
	default:
		return 0, 0, false
	}
	return typ, eps, true
}

// replayWAL reconstructs the spent ε from a WAL image. A bad or partial
// record within the final record's reach of EOF is a torn tail — the
// crash the log exists to survive — and is ignored; a bad record with
// more data after it means the file is corrupt, and the accountant
// fails closed rather than guess at a spend history.
func replayWAL(data []byte) (spent Epsilon, err error) {
	o := 0
	for o+walRecordSize <= len(data) {
		typ, eps, ok := walRecordOK(data[o : o+walRecordSize])
		if !ok {
			if len(data)-o <= walRecordSize {
				return spent, nil // torn final record
			}
			return 0, fmt.Errorf("privacy: wal corrupt at offset %d of %d", o, len(data))
		}
		if typ == walSnapshot {
			spent = Epsilon(eps)
		} else {
			spent += Epsilon(eps)
		}
		o += walRecordSize
	}
	// Trailing partial frame: a torn final append, tolerated.
	return spent, nil
}
