package mechanism

import (
	"fmt"

	"lrm/internal/compress"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Compressive adapts the compressive mechanism (Li et al., WPES 2011 —
// the paper's reference [17]) to the batch-query interface: a Gaussian
// synopsis of the histogram is perturbed instead of the histogram itself,
// the histogram is reconstructed by orthogonal matching pursuit in the
// Haar basis, and the workload is answered on the reconstruction.
//
// It wins when the data is sparse (or wavelet-sparse) and the domain is
// much larger than its information content; like FPA its error has a
// data-dependent bias term, so it reports no analytic expected SSE.
type Compressive struct {
	// Measurements is the synopsis length k; zero picks n/4 (at least 1).
	Measurements int
	// Sparsity is the OMP atom budget; zero picks k/4 (at least 1).
	Sparsity int
	// Seed fixes the measurement matrix; releases with the same seed are
	// reproducible. The matrix is data-independent so the seed is public.
	Seed int64
}

// Name implements Mechanism.
func (Compressive) Name() string { return "CM" }

// Prepare implements Mechanism. The domain must be a power of two (pad
// the histogram otherwise, as the paper's evaluation protocol does).
func (c Compressive) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	n := w.Domain()
	k := c.Measurements
	if k == 0 {
		k = n / 4
		if k < 1 {
			k = 1
		}
	}
	syn, err := compress.NewSynopsis(n, k, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("mechanism: %w", err)
	}
	return &compressivePrepared{w: w, syn: syn, sparsity: c.Sparsity}, nil
}

type compressivePrepared struct {
	w        *workload.Workload
	syn      *compress.Synopsis
	sparsity int
}

// Answer implements Prepared.
func (p *compressivePrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	y, err := p.syn.Compress(x, float64(eps), src)
	if err != nil {
		return nil, err
	}
	xhat, err := p.syn.Reconstruct(y, p.sparsity, 0)
	if err != nil {
		return nil, err
	}
	return p.w.Answer(xhat), nil
}

// ExpectedSSE implements Prepared: no data-independent closed form.
func (p *compressivePrepared) ExpectedSSE(eps privacy.Epsilon) float64 { return NoAnalyticSSE() }
