package metrics

import (
	"math"
	"testing"

	"lrm/internal/mechanism"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestSquaredError(t *testing.T) {
	if got := SquaredError([]float64{1, 2}, []float64{2, 4}); got != 5 {
		t.Fatalf("SquaredError = %v, want 5", got)
	}
	if got := SquaredError([]float64{1}, []float64{1}); got != 0 {
		t.Fatalf("SquaredError = %v, want 0", got)
	}
}

func TestSquaredErrorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SquaredError([]float64{1}, []float64{1, 2})
}

func TestEvaluateMatchesAnalytic(t *testing.T) {
	w := workload.Range(16, 32, rng.New(1))
	x := rng.New(2).UniformVec(32, 0, 20)
	m, err := Evaluate(mechanism.LaplaceData{}, w, x, 1, 4000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p, err := mechanism.LaplaceData{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	want := p.ExpectedSSE(1)
	if math.Abs(m.AvgSquaredError-want) > 0.1*want {
		t.Fatalf("measured %v, analytic %v", m.AvgSquaredError, want)
	}
	if m.Trials != 4000 {
		t.Fatalf("trials = %d", m.Trials)
	}
	if m.PrepareSeconds < 0 || m.AnswerSeconds <= 0 {
		t.Fatalf("timings: %+v", m)
	}
}

func TestEvaluateReproducible(t *testing.T) {
	w := workload.Range(8, 16, rng.New(4))
	x := make([]float64, 16)
	a, err := Evaluate(mechanism.LaplaceData{}, w, x, 1, 50, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(mechanism.LaplaceData{}, w, x, 1, 50, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgSquaredError != b.AvgSquaredError {
		t.Fatalf("same seed gave %v and %v", a.AvgSquaredError, b.AvgSquaredError)
	}
}

func TestEvaluateRejectsBadTrials(t *testing.T) {
	w := workload.Identity(4)
	if _, err := Evaluate(mechanism.LaplaceData{}, w, make([]float64, 4), 1, 0, rng.New(1)); err == nil {
		t.Fatal("trials=0 accepted")
	}
}
