// Package bad holds epshygiene want-diagnostic fixtures: an ε that
// reaches a release sink with no validation on any path before it, and
// Budget.Spend calls whose errors are thrown away.
package bad

import "lrm/internal/privacy"

type mech struct{}

func (mech) Answer(x []float64, eps privacy.Epsilon) []float64 {
	return x
}

func release(m mech, x []float64, eps privacy.Epsilon) []float64 {
	return m.Answer(x, eps) // want `reaches Answer without validation`
}

func overspend(b *privacy.Budget, eps privacy.Epsilon) {
	b.Spend(eps) // want `Budget\.Spend error discarded`
}

func blankSpend(b *privacy.Budget, eps privacy.Epsilon) {
	_ = b.Spend(eps) // want `Budget\.Spend error assigned to _`
}
