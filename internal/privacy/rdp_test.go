package privacy

import (
	"math"
	"testing"

	"lrm/internal/rng"
)

func TestRDPGaussianSingleRelease(t *testing.T) {
	// One Gaussian release at σ = Δ·√(2·ln(1.25/δ))/ε must account to at
	// most ε (the classical calibration is looser than RDP, so the RDP ε
	// should come out smaller).
	const eps, delta = 1.0, 1e-5
	sigma := math.Sqrt(2*math.Log(1.25/delta)) / eps
	a := NewRDPAccountant()
	if err := a.AddGaussian(sigma, 1); err != nil {
		t.Fatal(err)
	}
	got, err := a.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	// For a single release the simple RDP→(ε,δ) conversion carries a small
	// overhead over the classical calibration; it must stay within a few
	// percent (the accountant's payoff is at composition, tested below).
	if float64(got) > 1.05*eps {
		t.Fatalf("RDP ε %g exceeds classical calibration %g by too much", got, eps)
	}
	if float64(got) <= 0 {
		t.Fatalf("ε must be positive, got %g", got)
	}
}

func TestRDPBeatsNaiveCompositionForManyRounds(t *testing.T) {
	// k = 100 Gaussian releases: naive composition scales ε linearly with
	// k, RDP with √k. The accountant must report far less than k·ε₁.
	const k = 100
	const sigma = 10.0
	const delta = 1e-5
	single := NewRDPAccountant()
	if err := single.AddGaussian(sigma, 1); err != nil {
		t.Fatal(err)
	}
	eps1, err := single.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	many := NewRDPAccountant()
	for i := 0; i < k; i++ {
		if err := many.AddGaussian(sigma, 1); err != nil {
			t.Fatal(err)
		}
	}
	epsK, err := many.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	if float64(epsK) > 0.5*float64(k)*float64(eps1) {
		t.Fatalf("RDP composition %g not clearly better than naive %g", epsK, float64(k)*float64(eps1))
	}
	if float64(epsK) < float64(eps1) {
		t.Fatalf("composition cannot cost less than one release: %g < %g", epsK, eps1)
	}
}

func TestRDPLaplaceConsistentWithPureDP(t *testing.T) {
	// A Laplace release at scale b = Δ/ε is ε-DP, hence (ε, δ)-DP for any
	// δ; the RDP bound must not exceed ε by more than numerical slack,
	// and should be strictly smaller for δ > 0.
	const eps = 1.0
	a := NewRDPAccountant()
	if err := a.AddLaplace(1/eps, 1); err != nil {
		t.Fatal(err)
	}
	got, err := a.Epsilon(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if float64(got) > eps*1.05 {
		t.Fatalf("RDP ε %g far above pure-DP ε %g", got, eps)
	}
}

func TestRDPAccountantValidation(t *testing.T) {
	a := NewRDPAccountant()
	if err := a.AddGaussian(0, 1); err == nil {
		t.Fatal("want error for zero sigma")
	}
	if err := a.AddGaussian(1, -1); err == nil {
		t.Fatal("want error for negative sensitivity")
	}
	if err := a.AddLaplace(0, 1); err == nil {
		t.Fatal("want error for zero scale")
	}
	if err := a.AddLaplace(1, -1); err == nil {
		t.Fatal("want error for negative sensitivity")
	}
	if _, err := a.Epsilon(0); err == nil {
		t.Fatal("want error for delta 0")
	}
	if _, err := a.Epsilon(1); err == nil {
		t.Fatal("want error for delta 1")
	}
}

func TestRDPCompose(t *testing.T) {
	a := NewRDPAccountant()
	b := NewRDPAccountant()
	if err := a.AddGaussian(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGaussian(5, 1); err != nil {
		t.Fatal(err)
	}
	a.Compose(b)
	two := NewRDPAccountant()
	for i := 0; i < 2; i++ {
		if err := two.AddGaussian(5, 1); err != nil {
			t.Fatal(err)
		}
	}
	ea, _ := a.Epsilon(1e-5)
	et, _ := two.Epsilon(1e-5)
	if math.Abs(float64(ea-et)) > 1e-12 {
		t.Fatalf("Compose != sequential adds: %g vs %g", ea, et)
	}
}

func TestGaussianSigmaForBudget(t *testing.T) {
	const eps, delta, k = 1.0, 1e-5, 50
	sigma, err := GaussianSigmaForBudget(eps, delta, k)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the returned sigma actually fits the budget...
	a := NewRDPAccountant()
	for i := 0; i < k; i++ {
		if err := a.AddGaussian(sigma, 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	if float64(got) > eps {
		t.Fatalf("calibrated sigma %g overspends: ε = %g", sigma, got)
	}
	// ...and is nearly tight: 1% less noise must overspend.
	b := NewRDPAccountant()
	for i := 0; i < k; i++ {
		if err := b.AddGaussian(sigma*0.99, 1); err != nil {
			t.Fatal(err)
		}
	}
	over, err := b.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	if float64(over) <= eps {
		t.Fatalf("sigma not tight: 0.99σ still fits (ε = %g)", over)
	}
	// More rounds need more noise.
	sigma2, err := GaussianSigmaForBudget(eps, delta, 2*k)
	if err != nil {
		t.Fatal(err)
	}
	if sigma2 <= sigma {
		t.Fatalf("σ(2k)=%g should exceed σ(k)=%g", sigma2, sigma)
	}
}

func TestGaussianSigmaForBudgetValidation(t *testing.T) {
	if _, err := GaussianSigmaForBudget(0, 1e-5, 1); err == nil {
		t.Fatal("want error for zero eps")
	}
	if _, err := GaussianSigmaForBudget(1, 0, 1); err == nil {
		t.Fatal("want error for zero delta")
	}
	if _, err := GaussianSigmaForBudget(1, 1e-5, 0); err == nil {
		t.Fatal("want error for zero rounds")
	}
}

func TestGaussianMechanismRDP(t *testing.T) {
	a := NewRDPAccountant()
	src := rng.New(1)
	exact := []float64{10, 20, 30}
	noisy, err := GaussianMechanismRDP(a, exact, 1, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(noisy) != 3 {
		t.Fatalf("%d outputs", len(noisy))
	}
	for i := range noisy {
		if math.Abs(noisy[i]-exact[i]) > 20 {
			t.Fatalf("noise implausibly large at σ=2: %g vs %g", noisy[i], exact[i])
		}
	}
	// The spend was recorded.
	eps, err := a.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Fatal("no spend recorded")
	}
	if _, err := GaussianMechanismRDP(a, exact, 1, 0, src); err == nil {
		t.Fatal("want error for zero sigma")
	}
}
