// Deliberately wrong kernels for the asmvet fixture. Everything here
// assembles; the disagreements are with the Go prototypes.

#include "textflag.h"

// addVec's Go signature is two slices: 48 bytes of ABI0 arguments.
TEXT ·addVec(SB), NOSPLIT, $0-40 // want `declares \$0-40 but the Go signature's ABI0 argument block is 48 bytes`
	RET

// scale: no NOSPLIT, x read 8 bytes off, Y-register use without
// VZEROUPPER before RET.
TEXT ·scale(SB), $0-32 // want `missing NOSPLIT`
	MOVQ x+8(FP), AX // want `ABI0 places x at offset 0`
	VMOVUPD (AX), Y0
	RET // want `returns without VZEROUPPER`

// phantom has no Go prototype at all.
TEXT ·phantom(SB), NOSPLIT, $0-8 // want `TEXT ·phantom has no bodyless Go declaration`
	RET

// scale512: Z-register (AVX-512) use without VZEROUPPER before RET, and
// the s argument read at the wrong offset.
TEXT ·scale512(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), AX
	MOVSD s+16(FP), X1 // want `ABI0 places s at offset 24`
	VMOVUPD (AX), Z0
	VMOVUPD Z0, (AX)
	RET // want `uses Z registers but returns without VZEROUPPER`
