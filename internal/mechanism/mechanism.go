// Package mechanism implements every query-answering mechanism evaluated
// in the paper's Section 6: the Laplace mechanism on data (LM), noise on
// results (NOR), the wavelet mechanism (WM, Privelet), the hierarchical
// mechanism (HM, Boost with consistency), the matrix mechanism (MM,
// Appendix B), and an adapter for the Low-Rank Mechanism itself — all
// behind one interface so the experiment harness treats them uniformly.
package mechanism

import (
	"math"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Mechanism prepares workload-specific state (e.g. a strategy matrix)
// once, after which the returned Prepared can answer many times cheaply.
type Mechanism interface {
	// Name is the short label used in the paper's figures (LM, WM, …).
	Name() string
	// Prepare performs the workload-dependent optimization/setup.
	Prepare(w *workload.Workload) (Prepared, error)
}

// Prepared answers a fixed workload under ε-differential privacy.
type Prepared interface {
	// Answer releases private answers for the histogram x.
	Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error)
	// ExpectedSSE returns the analytic expected sum of squared errors at
	// eps, or NaN when no closed form is implemented.
	ExpectedSSE(eps privacy.Epsilon) float64
}

// NoAnalyticSSE is returned by mechanisms without a closed-form error.
func NoAnalyticSSE() float64 { return math.NaN() }
