// Package compress implements the compressive mechanism of Li, Zhang,
// Winslett and Yang (WPES 2011), the paper's reference [17] and one of
// its named future-work directions ("utilizing the correlations between
// data values"). The histogram x is assumed sparse in an orthonormal
// basis Ψ (Haar wavelets here): x = Ψ·s with s mostly zero. A random
// Gaussian matrix Φ of k ≪ n rows measures y = Φ·x; Laplace noise is
// injected into the k-dimensional synopsis instead of the n-dimensional
// data; and the histogram is reconstructed by sparse recovery (orthogonal
// matching pursuit) from the noisy synopsis.
package compress

import (
	"fmt"
	"math"

	"lrm/internal/mat"
)

// OMPResult reports a sparse recovery run.
type OMPResult struct {
	// Coeffs holds the recovered coefficient for each selected atom.
	Coeffs []float64
	// Support holds the selected atom (column) indices, in selection order.
	Support []int
	// Residual is the final ‖y − A·ŝ‖₂.
	Residual float64
	// Iterations is the number of atoms selected.
	Iterations int
}

// OMP solves min ‖s‖₀ s.t. y ≈ A·s greedily: at each step it selects the
// column of A most correlated with the residual, then re-fits all selected
// coefficients by least squares. It stops after maxAtoms selections or
// when the residual norm drops below tol.
//
// A is k×n with k typically ≪ n; columns should have comparable norms
// (the Gaussian measurement ensemble and orthonormal dictionaries both
// qualify).
func OMP(a *mat.Dense, y []float64, maxAtoms int, tol float64) (*OMPResult, error) {
	k, n := a.Dims()
	if len(y) != k {
		return nil, fmt.Errorf("compress: OMP measurement length %d != rows %d", len(y), k)
	}
	if maxAtoms < 1 || maxAtoms > n {
		return nil, fmt.Errorf("compress: OMP maxAtoms %d out of range [1,%d]", maxAtoms, n)
	}
	if maxAtoms > k {
		// More atoms than measurements makes the LS fit underdetermined.
		maxAtoms = k
	}
	// Column norms normalize the correlation test so atoms with larger
	// norms are not preferred spuriously (the dictionary need not have
	// unit-norm columns).
	colNorm := make([]float64, n)
	for i := 0; i < k; i++ {
		row := a.RawRow(i)
		for j, v := range row {
			colNorm[j] += v * v
		}
	}
	for j := range colNorm {
		colNorm[j] = math.Sqrt(colNorm[j])
	}
	res := make([]float64, k)
	copy(res, y)
	selected := make([]int, 0, maxAtoms)
	inSupport := make([]bool, n)
	// Loop-carried scratch: the correlation vector, the fitted
	// measurements, the support submatrix backing and a reusable header
	// over it, so each greedy iteration allocates only inside the least-
	// squares solve.
	corr := make([]float64, n)
	fit := make([]float64, k)
	subBacking := make([]float64, k*maxAtoms)
	sub := mat.New(0, 0)
	var coeffs []float64
	for iter := 0; iter < maxAtoms; iter++ {
		if mat.VecNorm2(res) <= tol {
			break
		}
		// Normalized correlation of every column with the residual:
		// |⟨a_j, res⟩| / ‖a_j‖.
		mat.MulVecTTo(corr, a, res)
		best, bestVal := -1, 0.0
		for j := 0; j < n; j++ {
			if inSupport[j] || colNorm[j] == 0 {
				continue
			}
			v := math.Abs(corr[j]) / colNorm[j]
			if v > bestVal {
				best, bestVal = j, v
			}
		}
		if best < 0 || bestVal == 0 {
			break
		}
		selected = append(selected, best)
		inSupport[best] = true
		// Re-fit on the selected support by least squares.
		sub.Reuse(k, len(selected), subBacking[:k*len(selected)])
		for c, j := range selected {
			for i := 0; i < k; i++ {
				sub.RawRow(i)[c] = a.At(i, j)
			}
		}
		var err error
		coeffs, err = mat.LeastSquares(sub, y)
		if err != nil {
			return nil, fmt.Errorf("compress: OMP least squares: %w", err)
		}
		mat.MulVecTo(fit, sub, coeffs)
		for i := range res {
			res[i] = y[i] - fit[i]
		}
	}
	return &OMPResult{
		Coeffs:     coeffs,
		Support:    selected,
		Residual:   mat.VecNorm2(res),
		Iterations: len(selected),
	}, nil
}

// Expand scatters an OMP result back to a dense length-n coefficient
// vector.
func (r *OMPResult) Expand(n int) []float64 {
	s := make([]float64, n)
	for i, j := range r.Support {
		if j >= 0 && j < n && i < len(r.Coeffs) {
			s[j] = r.Coeffs[i]
		}
	}
	return s
}
