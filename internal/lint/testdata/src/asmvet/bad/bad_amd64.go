//go:build amd64

package bad

// addVec adds b into a. Its TEXT block declares the wrong argument size.
func addVec(a, b []float64)

// scale multiplies x by s. Its TEXT block reads x at the wrong offset,
// is missing NOSPLIT, and returns from AVX code without VZEROUPPER.
func scale(x []float64, s float64)

// orphan has a prototype but no TEXT block.
func orphan(n int64) int64 // want `orphan has no body and no TEXT block`

// scale512 multiplies x by s with AVX-512 registers. Its TEXT block
// reads s at the wrong offset and returns without VZEROUPPER.
func scale512(x []float64, s float64)
