package optimize

// Workspace is a free-list of float64 slices that lets the solvers in
// this package run without heap allocation when invoked repeatedly with
// the same problem size — the usage pattern of the ALM outer loop, which
// calls NesterovPG hundreds of times per decomposition. A Workspace is
// not safe for concurrent use; give each solver loop its own.
type Workspace struct {
	free [][]float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get returns a zeroed length-n slice, reusing retired capacity when a
// large-enough buffer is available.
func (w *Workspace) Get(n int) []float64 {
	best := -1
	for i, b := range w.free {
		if cap(b) >= n && (best < 0 || cap(b) < cap(w.free[best])) {
			best = i
		}
	}
	if best < 0 {
		return make([]float64, n)
	}
	buf := w.free[best][:n]
	last := len(w.free) - 1
	w.free[best] = w.free[last]
	w.free[last] = nil
	w.free = w.free[:last]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Put retires a slice obtained from Get. The caller must not use buf
// afterwards.
func (w *Workspace) Put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	w.free = append(w.free, buf)
}

// workGet and workPut let the solvers treat a nil workspace as plain
// allocation.
func workGet(w *Workspace, n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	return w.Get(n)
}

func workPut(w *Workspace, buf []float64) {
	if w != nil {
		w.Put(buf)
	}
}
