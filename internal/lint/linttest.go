package lint

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Fixture support: an analysistest-style harness without the
// analysistest dependency. Fixture packages live under
// internal/lint/testdata/src/<analyzer>/… (testdata keeps them out of
// ./... builds; the loader addresses them explicitly) and mark expected
// findings with trailing comments of the form
//
//	// want "regexp"
//
// CheckFixture loads the package, runs one analyzer, and verifies the
// findings and the want comments match one-to-one by line.

// wantComment is one expected diagnostic.
type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// CheckFixture runs the analyzer over the fixture package at importPath
// and returns a list of mismatch descriptions (empty means the fixture
// passed).
func CheckFixture(a *Analyzer, importPath string) ([]string, error) {
	pkgs, err := LoadPackages([]string{importPath})
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("lint: fixture %s resolved to %d packages", importPath, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := runAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	var wants []*wantComment
	addWant := func(pos token.Position, text string) error {
		rest, ok := strings.CutPrefix(text, "// want ")
		if !ok {
			return nil
		}
		pattern, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return fmt.Errorf("%s: malformed want comment %q", pos, text)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return fmt.Errorf("%s: bad want regexp: %v", pos, err)
		}
		wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, re: re})
		return nil
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if err := addWant(pkg.Fset.Position(c.Pos()), c.Text); err != nil {
					return nil, err
				}
			}
		}
	}
	// Assembly sources never enter the FileSet; scan them textually so
	// asmvet fixtures carry their expectations in place like Go ones.
	for _, sfile := range pkg.SFiles {
		data, err := os.ReadFile(sfile)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			pos := token.Position{Filename: sfile, Line: i + 1, Column: idx + 1}
			if err := addWant(pos, line[idx:]); err != nil {
				return nil, err
			}
		}
	}

	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re))
		}
	}
	return problems, nil
}
