package mat

import "math"

// LanczosSpectrum estimates the spectrum of an implicit symmetric
// positive-semidefinite operator A (dimension n, applied through mul:
// dst = A·x) by iters steps of the Lanczos iteration, returning the
// Ritz values in non-increasing order. The extreme Ritz values converge
// to the extreme eigenvalues first, which is exactly what workload
// analysis needs from a Gram operator it cannot materialize: λ_max
// exactly-ish, λ_min(nonzero) and a rank estimate approximately.
//
// Memory is O(n + iters²): the three-term recurrence keeps only two
// basis vectors, plus the iters×iters tridiagonal handed to the dense
// symmetric eigensolver. Without reorthogonalization, converged
// eigenvalues can reappear as "ghost" copies and orthogonality decays
// over long runs, so even iters ≥ n yields estimates (typically within
// a few percent at the extremes), not a factorization — which is all
// workload analysis asks of it.
//
// The start vector is a fixed pseudo-random unit vector derived from
// seed, so estimates are deterministic for a given (operator, seed).
func LanczosSpectrum(n int, mul func(dst, x []float64), iters int, seed int64) []float64 {
	if n <= 0 {
		return nil
	}
	if iters > n {
		iters = n
	}
	if iters < 1 {
		iters = 1
	}
	v := make([]float64, n)    // current basis vector
	prev := make([]float64, n) // previous basis vector
	w := make([]float64, n)    // A·v workspace
	alpha := make([]float64, 0, iters)
	beta := make([]float64, 0, iters) // beta[j] couples steps j and j+1

	// Deterministic pseudo-random start: splitmix64 bits folded to
	// (-1, 1). Any vector with mass on every eigenspace works; random
	// avoids adversarial orthogonality to the extremes.
	z := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	norm := 0.0
	for i := range v {
		z += 0x9e3779b97f4a7c15
		x := z
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		v[i] = float64(int64(x>>11))/(1<<52) - 1
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}

	for j := 0; j < iters; j++ {
		mul(w, v)
		a := VecDot(w, v)
		alpha = append(alpha, a)
		if j == iters-1 {
			break
		}
		for i := range w {
			w[i] -= a * v[i]
			if j > 0 {
				w[i] -= beta[j-1] * prev[i]
			}
		}
		b := VecNorm2(w)
		if b <= 1e-14*math.Abs(a)+1e-300 {
			// Invariant subspace found: the tridiagonal so far carries
			// the whole reachable spectrum.
			break
		}
		beta = append(beta, b)
		prev, v = v, prev
		for i := range v {
			v[i] = w[i] / b
		}
	}

	// Eigenvalues of the small symmetric tridiagonal via the dense
	// Jacobi eigensolver (sizes here are ≤ iters ≪ the operator's n).
	k := len(alpha)
	t := New(k, k)
	for i := 0; i < k; i++ {
		t.Set(i, i, alpha[i])
		if i+1 < k && i < len(beta) {
			t.Set(i, i+1, beta[i])
			t.Set(i+1, i, beta[i])
		}
	}
	eig, err := FactorSymEig(t)
	if err != nil {
		// Cannot happen for a finite symmetric matrix; degrade to the
		// diagonal rather than panicking in an estimator.
		out := append([]float64(nil), alpha...)
		sortDesc(out)
		return out
	}
	vals := append([]float64(nil), eig.Values...)
	// PSD operator: clamp the tiny negative roundoff Ritz values.
	for i, x := range vals {
		if x < 0 {
			vals[i] = 0
		}
	}
	sortDesc(vals)
	return vals
}

func sortDesc(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] > x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
