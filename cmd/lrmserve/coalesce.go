package main

import (
	"sync"
	"time"

	"lrm/internal/engine"
	"lrm/internal/privacy"
	"lrm/internal/workload"
)

// Batch coalescing: under concurrent load, many clients tend to ask for
// the same workload (same fingerprint) at the same ε within a few
// milliseconds of each other. Answering them one request at a time leaves
// the engine's multi-RHS path idle; coalescing gathers concurrent
// same-key requests behind a small time/size window and answers them as
// one engine batch — one cache lookup, one packed GEMM per dense product
// — then hands each caller its own rows.
//
// Only requests with no pinned seed and no per-request budget coalesce:
// a seeded release is a replayable per-request noise contract, and a
// budget is per-request accounting; both would change meaning inside a
// merged batch. Those requests, and all requests when the window is zero,
// go straight to the engine.

// coalesceKey groups requests that may share one engine batch.
type coalesceKey struct {
	fp  string
	eps float64
}

// coalesceResult is what a flushed group hands each waiter.
type coalesceResult struct {
	answers [][]float64
	err     error
}

// coalesceWaiter is one request's slot in a group: its histograms occupy
// rows [lo, lo+n) of the merged batch.
type coalesceWaiter struct {
	lo, n int
	ch    chan coalesceResult
}

// coalesceGroup is one open window of mergeable requests.
type coalesceGroup struct {
	key     coalesceKey
	wl      *workload.Workload
	hists   [][]float64
	waiters []*coalesceWaiter
	timer   *time.Timer
}

// coalescer merges concurrent same-key answer requests into engine
// batches. Zero window means coalescing is disabled and callers should
// not construct one.
type coalescer struct {
	eng    *engine.Engine
	window time.Duration
	max    int // flush a group as soon as it holds this many histograms

	mu sync.Mutex
	//lrm:guardedby mu
	groups map[coalesceKey]*coalesceGroup
}

func newCoalescer(eng *engine.Engine, window time.Duration, max int) *coalescer {
	if max <= 0 {
		max = 64
	}
	return &coalescer{eng: eng, window: window, max: max, groups: make(map[coalesceKey]*coalesceGroup)}
}

// submit merges the request into the open group for its key (opening one
// and arming its window timer if none is open), waits for the group to
// flush, and returns this request's rows. The caller must have validated
// histogram lengths against the workload domain: inside a merged batch a
// malformed histogram would fail the whole group, not just its sender.
func (c *coalescer) submit(wl *workload.Workload, fp string, hists [][]float64, eps float64) ([][]float64, error) {
	w := &coalesceWaiter{n: len(hists), ch: make(chan coalesceResult, 1)}
	key := coalesceKey{fp: fp, eps: eps}

	c.mu.Lock()
	g := c.groups[key]
	if g == nil {
		g = &coalesceGroup{key: key, wl: wl}
		c.groups[key] = g
		g.timer = time.AfterFunc(c.window, func() { c.flush(g) })
	}
	w.lo = len(g.hists)
	g.hists = append(g.hists, hists...)
	g.waiters = append(g.waiters, w)
	full := len(g.hists) >= c.max
	c.mu.Unlock()

	if full {
		// The request that filled the group flushes it immediately
		// instead of waiting out the window; flush is idempotent, so a
		// concurrent timer fire is harmless.
		c.flush(g)
	}
	res := <-w.ch
	if res.err != nil {
		return nil, res.err
	}
	return res.answers[w.lo : w.lo+w.n], nil
}

// flush closes the group (removing it from the open set exactly once)
// and answers its merged batch, distributing the result to every waiter.
func (c *coalescer) flush(g *coalesceGroup) {
	c.mu.Lock()
	if c.groups[g.key] != g {
		c.mu.Unlock()
		return // already flushed by the timer or a filling request
	}
	delete(c.groups, g.key)
	g.timer.Stop()
	c.mu.Unlock()

	answers, err := c.eng.Answer(engine.Request{
		Workload:    g.wl,
		Histograms:  g.hists,
		Eps:         privacy.Epsilon(g.key.eps),
		Fingerprint: g.key.fp,
	})
	for _, w := range g.waiters {
		w.ch <- coalesceResult{answers: answers, err: err}
	}
}
