package hist

import (
	"fmt"

	"lrm/internal/privacy"
	"lrm/internal/rng"
)

// Result is a published ε-DP histogram.
type Result struct {
	// Estimate is the per-cell histogram estimate (bucket means).
	Estimate []float64
	// Boundaries holds the bucket start indices used.
	Boundaries []int
}

// NoiseFirst publishes an ε-DP histogram by perturbing every count with
// Laplace(1/ε) noise and then fitting a B-bucket v-optimal histogram to
// the *noisy* counts. Because the structure is computed from already
// private data, the whole release costs exactly ε; averaging the noisy
// counts inside a bucket of size s reduces the noise variance by a
// factor of s at the price of the bucket's structural bias.
//
//lrm:sanitizer — the Result is built from Laplace-perturbed counts
func NoiseFirst(x []float64, b int, eps privacy.Epsilon, src *rng.Source) (*Result, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("hist: empty data")
	}
	noisy, err := privacy.LaplaceMechanism(x, 1, eps, src)
	if err != nil {
		return nil, err
	}
	boundaries, _, err := VOptimal(noisy, b)
	if err != nil {
		return nil, err
	}
	est, err := Smooth(noisy, boundaries)
	if err != nil {
		return nil, err
	}
	return &Result{Estimate: est, Boundaries: boundaries}, nil
}

// StructureFirstOptions configures StructureFirst.
type StructureFirstOptions struct {
	// Buckets is the number of buckets B (required, 1 ≤ B ≤ n).
	Buckets int
	// StructureFraction is the share of ε spent selecting boundaries via
	// the exponential mechanism; the rest perturbs the bucket sums. Zero
	// means the published default 0.5.
	StructureFraction float64
	// MaxCount is the public bound M on any single count, which caps the
	// exponential mechanism's utility sensitivity at 2(2M+1). Zero means
	// 1000 (adequate for normalized histograms; pick the real domain
	// bound in applications).
	MaxCount float64
}

// StructureFirst publishes an ε-DP histogram by (1) selecting the B−1
// bucket boundaries on the true counts with the exponential mechanism —
// each boundary drawn from candidate positions scored by the optimal
// achievable SSE given the choice, at ε₁/(B−1) apiece — and then (2)
// releasing each bucket's sum with Laplace(1/ε₂) noise. A record affects
// exactly one bucket sum, so step (2) costs ε₂ by parallel composition;
// sequential composition over both steps gives ε = ε₁ + ε₂.
//
//lrm:sanitizer — boundaries via the exponential mechanism, sums noised
func StructureFirst(x []float64, opt StructureFirstOptions, eps privacy.Epsilon, src *rng.Source) (*Result, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("hist: empty data")
	}
	b := opt.Buckets
	if b < 1 || b > n {
		return nil, fmt.Errorf("hist: bucket count %d out of range [1,%d]", b, n)
	}
	frac := opt.StructureFraction
	if frac == 0 {
		frac = 0.5
	}
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("hist: structure fraction %g must be in (0,1)", frac)
	}
	maxCount := opt.MaxCount
	if maxCount == 0 {
		maxCount = 1000
	}
	if maxCount < 0 {
		return nil, fmt.Errorf("hist: negative MaxCount %g", maxCount)
	}
	epsStructure := privacy.Epsilon(float64(eps) * frac)
	epsCounts := eps - epsStructure

	boundaries, err := sampleBoundaries(x, b, epsStructure, maxCount, src)
	if err != nil {
		return nil, err
	}
	// Release bucket sums with Laplace(1/ε₂): one record lands in exactly
	// one bucket, so the vector of bucket sums has L1 sensitivity 1.
	t := newSSETable(x)
	est := make([]float64, n)
	lam := 1 / float64(epsCounts)
	for k := range boundaries {
		lo := boundaries[k]
		hi := n
		if k+1 < len(boundaries) {
			hi = boundaries[k+1]
		}
		noisySum := t.sum(lo, hi) + src.Laplace(lam)
		m := noisySum / float64(hi-lo)
		for i := lo; i < hi; i++ {
			est[i] = m
		}
	}
	return &Result{Estimate: est, Boundaries: boundaries}, nil
}

// sampleBoundaries draws B−1 interior boundaries left to right. The k-th
// draw scores every feasible position p by −(best SSE achievable when the
// previous bucket ends at p and the remaining counts are split optimally)
// and samples with the exponential mechanism. Changing one count by ≤1
// (with counts bounded by M) moves any bucket SSE by at most 2(2M+1), the
// utility sensitivity used for calibration.
func sampleBoundaries(x []float64, b int, eps privacy.Epsilon, maxCount float64, src *rng.Source) ([]int, error) {
	n := len(x)
	boundaries := make([]int, 1, b)
	boundaries[0] = 0
	if b == 1 {
		return boundaries, nil
	}
	t := newSSETable(x)
	// suffix[k][i]: optimal SSE of counts[i:] in k buckets.
	suffix := suffixCosts(t, n, b)
	perChoice := privacy.Epsilon(float64(eps) / float64(b-1))
	du := 2 * (2*maxCount + 1)
	prev := 0
	for k := 1; k < b; k++ {
		remaining := b - k // buckets for counts[p:]
		// Candidate positions p for the k-th boundary: previous bucket is
		// [prev, p); it must be non-empty and leave ≥ remaining cells.
		lo, hi := prev+1, n-remaining+1
		if lo >= hi {
			return nil, fmt.Errorf("hist: no feasible boundary %d of %d", k, b-1)
		}
		scores := make([]float64, hi-lo)
		for p := lo; p < hi; p++ {
			scores[p-lo] = -(t.sse(prev, p) + suffix[remaining][p])
		}
		idx, err := privacy.ExponentialMechanism(scores, du, perChoice, src)
		if err != nil {
			return nil, err
		}
		prev = lo + idx
		boundaries = append(boundaries, prev)
	}
	return boundaries, nil
}

// suffixCosts returns suffix[k][i] = optimal SSE of counts[i:] using k
// buckets (k up to b−1; suffix[k][n] is 0 only for k == 0).
func suffixCosts(t *sseTable, n, b int) [][]float64 {
	const inf = 1e308
	suffix := make([][]float64, b)
	for k := range suffix {
		suffix[k] = make([]float64, n+1)
		for i := range suffix[k] {
			suffix[k][i] = inf
		}
	}
	suffix[0][n] = 0
	for k := 1; k < b; k++ {
		for i := n - k; i >= 0; i-- {
			// First bucket of the suffix is [i, j).
			bestV := inf
			for j := i + 1; j <= n; j++ {
				if suffix[k-1][j] >= inf {
					continue
				}
				c := t.sse(i, j) + suffix[k-1][j]
				if c < bestV {
					bestV = c
				}
			}
			suffix[k][i] = bestV
		}
	}
	return suffix
}
