package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyConfig keeps unit tests fast: the bench grid, one dataset, 2 trials.
func tinyConfig() Config {
	return Config{Scale: ScaleBench, Trials: 2, Seed: 42, Dataset: "socialnetwork"}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run(1, tinyConfig()); err == nil {
		t.Fatal("figure 1 accepted")
	}
	if _, err := Run(10, tinyConfig()); err == nil {
		t.Fatal("figure 10 accepted")
	}
}

func TestFiguresListMatchesRun(t *testing.T) {
	for _, f := range Figures() {
		switch f {
		case 2, 3, 4, 5, 6, 7, 8, 9:
		default:
			t.Fatalf("unexpected figure %d", f)
		}
	}
	if len(Figures()) != 8 {
		t.Fatalf("Figures() has %d entries", len(Figures()))
	}
}

func TestFigure9Rows(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(cfg.sRatios()) * 4 // 4 mechanisms, 1 dataset
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.AvgSqErr <= 0 {
			t.Fatalf("non-positive error in row %+v", r)
		}
		if r.Figure != "Fig9" || r.Param != "s_ratio" {
			t.Fatalf("mislabeled row %+v", r)
		}
	}
}

func TestFigure4IncludesMMOnlySmallDomains(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := float64(cfg.mmMaxDomain())
	sawMM := false
	for _, r := range rows {
		if r.Mechanism == "MM" {
			sawMM = true
			if r.Value > cap {
				t.Fatalf("MM run at n=%g beyond cap %g", r.Value, cap)
			}
		}
	}
	if !sawMM {
		t.Fatal("MM missing entirely")
	}
}

func TestFigure2GammaSweep(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads × |gammaGrid| × 3 epsilons.
	want := 3 * len(cfg.gammaGrid()) * 3
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	// Error must be quadratic in 1/ε: fix workload+gamma, compare eps
	// 1 vs 0.1 — the expected ratio is ~100 (Laplace part dominates with
	// tight default gamma; allow slack for the structural term and
	// Monte-Carlo noise at 2 trials).
	byKey := map[string]map[float64]float64{}
	for _, r := range rows {
		if r.Value != 1e-4 || r.Workload != "WDiscrete" {
			continue
		}
		k := r.Workload
		if byKey[k] == nil {
			byKey[k] = map[float64]float64{}
		}
		byKey[k][r.Epsilon] = r.AvgSqErr
	}
	for k, m := range byKey {
		ratio := m[0.01] / m[1]
		if ratio < 100 {
			t.Fatalf("%s: error(0.01)/error(1) = %v, want >> 100", k, ratio)
		}
	}
}

func TestReproducibleRows(t *testing.T) {
	cfg := tinyConfig()
	a, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("row count mismatch")
	}
	for i := range a {
		if a[i].AvgSqErr != b[i].AvgSqErr {
			t.Fatalf("row %d differs: %v vs %v", i, a[i].AvgSqErr, b[i].AvgSqErr)
		}
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	rows := []Row{
		{Figure: "Fig4", Dataset: "NetTrace", Workload: "WDiscrete", Mechanism: "LM",
			Param: "n", Value: 128, Epsilon: 0.1, AvgSqErr: 123.4, Seconds: 0.01},
		{Figure: "Fig4", Dataset: "NetTrace", Workload: "WDiscrete", Mechanism: "LRM",
			Param: "n", Value: 128, Epsilon: 0.1, AvgSqErr: 45.6, Seconds: 1.2},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LRM") || !strings.Contains(out, "NetTrace") {
		t.Fatalf("table missing content:\n%s", out)
	}
	buf.Reset()
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("csv has %d lines, want 3", lines)
	}
}

func TestDefaultParamsMentionsAllParameters(t *testing.T) {
	s := DefaultParams(Config{})
	for _, frag := range []string{"gamma", "n", "m", "s", "eps"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Table 1 output missing %q:\n%s", frag, s)
		}
	}
}

func TestScaleString(t *testing.T) {
	if ScaleBench.String() != "bench" || ScaleLight.String() != "light" || ScalePaper.String() != "paper" {
		t.Fatal("Scale.String wrong")
	}
	if Scale(9).String() == "" {
		t.Fatal("unknown scale empty")
	}
}

func TestBadDatasetName(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dataset = "nope"
	if _, err := Figure4(cfg); err == nil {
		t.Fatal("bad dataset accepted")
	}
}

func TestAblationsProduceRows(t *testing.T) {
	cfg := tinyConfig()
	rows, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 2 workloads × 10 variants
		t.Fatalf("got %d rows, want 20", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		if r.AvgSqErr <= 0 || r.Seconds < 0 {
			t.Fatalf("bad row %+v", r)
		}
		names[r.Mechanism] = true
	}
	for _, want := range []string{"nesterov", "plain-pg", "beta-fixed10", "restarts-4", "fallback-on"} {
		if !names[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
	// The identity-fallback variant must never exceed the NOD baseline.
	for _, r := range rows {
		if r.Mechanism != "fallback-on" {
			continue
		}
		nod, err := AblationBaselineSSE(cfg, r.Workload)
		if err != nil {
			t.Fatal(err)
		}
		if r.AvgSqErr > nod*(1+1e-9) {
			t.Fatalf("%s fallback SSE %v exceeds NOD %v", r.Workload, r.AvgSqErr, nod)
		}
	}
}

func TestSynopsesProduceRows(t *testing.T) {
	cfg := Config{Scale: ScaleBench, Trials: 2, Seed: 1, Dataset: "socialnetwork"}
	rows, err := Synopses(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset × (identity: 5 mechanisms + WRange: 7 mechanisms).
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	byWorkload := map[string]map[string]float64{}
	for _, r := range rows {
		if r.Figure != "Synopses" {
			t.Fatalf("row figure %q", r.Figure)
		}
		if r.AvgSqErr <= 0 || math.IsNaN(r.AvgSqErr) || math.IsInf(r.AvgSqErr, 0) {
			t.Fatalf("bad error value %g for %s/%s", r.AvgSqErr, r.Workload, r.Mechanism)
		}
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]float64{}
		}
		byWorkload[r.Workload][r.Mechanism] = r.AvgSqErr
	}
	for _, mech := range []string{"LM", "FPA", "CM", "NF", "SF"} {
		if _, ok := byWorkload["Identity"][mech]; !ok {
			t.Fatalf("identity table missing %s", mech)
		}
	}
	for _, mech := range []string{"NOR+proj", "LRM"} {
		if _, ok := byWorkload["WRange"][mech]; !ok {
			t.Fatalf("range table missing %s", mech)
		}
	}
}
