package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes a histogram's shape. The synopsis mechanisms'
// usefulness depends on exactly these properties (smoothness for FPA,
// blockiness for NF, concentration for CM), so the harness and datagen
// expose them next to every dataset.
type Stats struct {
	// Len, Total, Mean, Max are the basic magnitudes.
	Len   int
	Total float64
	Mean  float64
	Max   float64
	// Median and P99 are order statistics of the counts.
	Median, P99 float64
	// Gini is the Gini concentration coefficient in [0,1): 0 for a flat
	// histogram, →1 when mass concentrates in few bins (heavy tails).
	Gini float64
	// Roughness is the mean squared difference of adjacent counts divided
	// by the count variance — ≈0 for smooth/blocky series, ≈2 for i.i.d.
	// noise (the first-difference variance ratio).
	Roughness float64
}

// Summarize computes the statistics of d.
func (d *Dataset) Summarize() (*Stats, error) {
	n := len(d.Counts)
	if n == 0 {
		return nil, fmt.Errorf("dataset: empty dataset")
	}
	s := &Stats{Len: n}
	for _, v := range d.Counts {
		s.Total += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Total / float64(n)

	sorted := make([]float64, n)
	copy(sorted, d.Counts)
	sort.Float64s(sorted)
	s.Median = orderStat(sorted, 0.5)
	s.P99 = orderStat(sorted, 0.99)

	// Gini from the sorted counts: (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n.
	if s.Total > 0 {
		var weighted float64
		for i, v := range sorted {
			weighted += float64(i+1) * v
		}
		s.Gini = 2*weighted/(float64(n)*s.Total) - float64(n+1)/float64(n)
		if s.Gini < 0 {
			s.Gini = 0
		}
	}

	// Roughness: Var(Δx)/Var(x).
	var varSum float64
	for _, v := range d.Counts {
		dm := v - s.Mean
		varSum += dm * dm
	}
	if n > 1 && varSum > 0 {
		var diffSum float64
		for i := 1; i < n; i++ {
			dd := d.Counts[i] - d.Counts[i-1]
			diffSum += dd * dd
		}
		s.Roughness = (diffSum / float64(n-1)) / (varSum / float64(n))
	}
	return s, nil
}

func orderStat(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Describe renders a one-paragraph report, used by cmd/datagen -describe.
func (s *Stats) Describe(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d bins, total %.4g, mean %.4g, median %.4g, p99 %.4g, max %.4g\n",
		name, s.Len, s.Total, s.Mean, s.Median, s.P99, s.Max)
	fmt.Fprintf(&b, "  concentration (Gini) %.3f, roughness (Var Δx / Var x) %.3f", s.Gini, s.Roughness)
	switch {
	case s.Roughness < 0.5:
		b.WriteString(" — smooth/blocky: synopsis-friendly")
	case s.Roughness > 1.5:
		b.WriteString(" — noise-like: synopses will pay heavy bias")
	}
	b.WriteByte('\n')
	return b.String()
}
