// Package bad holds noalloc want-diagnostic fixtures: one annotated
// function containing every construct the analyzer forbids.
package bad

type state struct {
	buf []float64
}

func worker() {}

// hot claims to be allocation-free but trips every rule.
//
//lrm:noalloc
func hot(xs, out []float64) float64 {
	tmp := make([]float64, 4)        // want `calls make`
	p := new(float64)                // want `calls new`
	out = append(out, xs...)         // want `calls append`
	weights := []float64{1, 2, 3}    // want `builds a slice literal`
	index := map[string]int{}        // want `builds a map literal`
	s := &state{}                    // want `address of a composite literal`
	f := func() float64 { return 0 } // want `contains a function literal`
	go worker()                      // want `starts a goroutine`
	return tmp[0] + *p + out[0] + weights[0] + float64(len(index)) + float64(len(s.buf)) + f()
}
