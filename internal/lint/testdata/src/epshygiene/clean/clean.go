// Package clean holds epshygiene fixtures that must produce no
// diagnostics: each of the accepted validation forms ahead of the sink,
// plus a checked Budget.Spend.
package clean

import "lrm/internal/privacy"

type mech struct{}

func (mech) Answer(x []float64, eps privacy.Epsilon) []float64 {
	return x
}

func validated(m mech, x []float64, eps privacy.Epsilon) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	return m.Answer(x, eps), nil
}

func guarded(m mech, x []float64, eps privacy.Epsilon) []float64 {
	if eps <= 0 {
		return nil
	}
	return m.Answer(x, eps)
}

func budgeted(m mech, b *privacy.Budget, x []float64, eps privacy.Epsilon) ([]float64, error) {
	if err := b.Spend(eps); err != nil {
		return nil, err
	}
	return m.Answer(x, eps), nil
}
