// Package malformed holds directives that must themselves be findings:
// a typo cannot silently declare nothing. TestMalformedDirectives
// asserts the exact messages; the package is deliberately not a
// CheckFixture fixture because the findings land on comment lines,
// which a // want comment cannot share.
package malformed

import "lrm/internal/rng"

// typod names a parameter that does not exist.
//
//lrm:sanitizer nosuch — the parameter is called vals, not nosuch
func typod(vals []float64, src *rng.Source) {
	for i := range vals {
		vals[i] += src.Laplace(1)
	}
}

// badSink passes an argument //lrm:sink does not understand.
//
//lrm:sink results
func badSink(vals []float64) { _ = vals }

// badGuard puts a function-form guardedby on a free function.
//
//lrm:guardedby mu
func badGuard() {}
