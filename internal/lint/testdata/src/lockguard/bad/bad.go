// Package bad holds lockguard want-diagnostic fixtures: accesses to a
// //lrm:guardedby field without the sibling lock held.
package bad

import "sync"

type counter struct {
	mu sync.Mutex
	//lrm:guardedby mu
	n int
}

// bump writes the guarded field without ever taking the lock.
func bump(c *counter) {
	c.n++ // want `n is //lrm:guardedby mu`
}

// readAfterUnlock releases too early.
func readAfterUnlock(c *counter) int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `n is //lrm:guardedby mu`
}

// escape returns a closure that runs at an unknown time: the lock held
// at construction says nothing about the call.
func escape(c *counter) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want `n is //lrm:guardedby mu`
	}
}

// sumLocked declares the callee-side contract: mu is held on entry.
//
//lrm:guardedby mu
func (c *counter) sumLocked() int {
	return c.n
}

// callsWithoutLock violates the caller-side half of the contract.
func callsWithoutLock(c *counter) int {
	return c.sumLocked() // want `sumLocked requires c.mu held on entry`
}
