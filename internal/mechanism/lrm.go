package mechanism

import (
	"fmt"

	"lrm/internal/core"
	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// LRM adapts the Low-Rank Mechanism (internal/core) to the shared
// Mechanism interface used by the experiment harness.
type LRM struct {
	// Options configures the workload decomposition; the zero value uses
	// the paper's defaults (r = 1.2·rank(W), γ = 1e-4·‖W‖_F).
	Options core.Options
}

// Name implements Mechanism.
func (LRM) Name() string { return "LRM" }

// Prepare implements Mechanism: it runs the ALM workload decomposition.
func (l LRM) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	d, err := core.Decompose(w.W, l.Options)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMechanism(d)
	if err != nil {
		return nil, err
	}
	return &lrmPrepared{m: m}, nil
}

// PreparedFromDecomposition wraps an already-computed decomposition (for
// example one restored from a cache file via core.ReadDecomposition) as a
// Prepared LRM, skipping the ALM optimization entirely. This is the
// "optimize once and answer forever" entry point serving layers use.
func PreparedFromDecomposition(d *core.Decomposition) (Prepared, error) {
	m, err := core.NewMechanism(d)
	if err != nil {
		return nil, err
	}
	return &lrmPrepared{m: m}, nil
}

type lrmPrepared struct {
	m *core.Mechanism
}

func (p *lrmPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	return p.m.Answer(x, eps, src)
}

// AnswerMany implements BatchAnswerer: both low-rank products run as one
// packed multi-RHS GEMM per batch (see core.Mechanism.AnswerMany).
func (p *lrmPrepared) AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	return p.m.AnswerMany(x, eps, src)
}

func (p *lrmPrepared) ExpectedSSE(eps privacy.Epsilon) float64 {
	return p.m.ExpectedSSE(eps)
}

// Decomposition exposes the underlying factorization for diagnostics.
func (p *lrmPrepared) Decomposition() *core.Decomposition {
	return p.m.Decomposition()
}
