// Package engine is the serving layer of the repository: a long-lived,
// goroutine-safe answering engine that amortizes the paper's expensive
// workload decomposition ("optimize once, answer forever") across many
// private releases and many concurrent clients.
//
// The engine keys workloads by a content fingerprint (core.Fingerprint
// over W's dimensions and data) and keeps an LRU cache of
// mechanism.Prepared instances. Cache misses are deduplicated with
// singleflight semantics: N concurrent first requests for one workload
// run exactly one Prepare, and the other N−1 block on the same result.
// When a cache directory is configured, LRM decompositions are persisted
// with core's gob format and restored on the next miss — including by a
// different process — so the optimization cost is paid once per workload
// per deployment, not per process.
//
// Batches of histograms take the mechanism's multi-RHS path when it has
// one (mechanism.BatchAnswerer): the batch becomes an n×B matrix and
// every dense product runs as one packed GEMM, which is both faster than
// B mat-vecs and scheduler-neutral (the GEMM tiles draw from the shared
// pool). Seeded batches, and mechanisms without a batch path, fan out
// per histogram over the same pool (mat.ParallelFor) rather than an
// engine-owned goroutine fleet, so request-level parallelism and the
// GEMM tiles of any in-flight Prepare draw from one scheduler instead of
// oversubscribing each other. Each request may carry its own ε budget;
// spends are accounted on a per-request privacy.Budget, whose mutex
// makes concurrent workers unable to jointly overspend.
//
// Oversized workloads can opt into row-sharded prepare
// (Options.ShardRows): row blocks decompose concurrently, cache under
// their own fingerprints, answer at ε/k each (sequential composition),
// and concatenate — see shard.go.
//
// With Options.Planner set the engine becomes plan-aware: each workload
// is analyzed and planned (internal/plan) on first sight, the winning
// mechanism serves it, and the plan is cached and persisted alongside
// the preparation — see plan.go. Sharding composes: each row shard is
// planned independently under its own fingerprint.
package engine

import (
	"container/list"
	"context"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lrm/internal/core"
	"lrm/internal/faultfs"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// ErrClosed is returned by Answer after Close: a closed engine has
// released its durable accountant state and must not grant another
// spend against it.
var ErrClosed = errors.New("engine: closed")

// Options configures New. The zero value serves the Low-Rank Mechanism
// with an in-memory cache sized for a moderate workload mix.
type Options struct {
	// Mechanism prepares workloads; nil means mechanism.LRM{}. Only
	// mechanisms whose Prepared exposes a core.Decomposition (the LRM)
	// participate in the disk cache; others are cached in memory only.
	// Mutually exclusive with Planner.
	Mechanism mechanism.Mechanism
	// Planner, when non-nil, switches the engine from "one process, one
	// mechanism" to "one plan per workload": each new workload is
	// analyzed and planned (internal/plan) and served by the winning
	// mechanism with its tuned parameters. Plans are cached alongside
	// the Prepared instances in the same LRU/singleflight machinery —
	// in memory the entry keys by workload fingerprint (the plan is a
	// deterministic function of the fingerprint and these fixed planner
	// options), while disk artifacts key by fingerprint + planner-options
	// digest + plan digest, so a changed decision orphans stale files
	// instead of serving them. The planner's Fingerprint field is
	// overwritten per workload. Mutually exclusive with Mechanism.
	Planner *plan.Options
	// CacheSize bounds the number of prepared workloads held in memory
	// (default 64). Least-recently-answered workloads are evicted first.
	CacheSize int
	// CacheDir, when non-empty, persists LRM decompositions as
	// <fingerprint>-<options-digest>.lrmd files and restores them on
	// later misses. The directory is created if needed and may be shared
	// across processes (and across differently tuned engines — the
	// options digest keeps their files apart). Ignored for mechanisms
	// other than the LRM, which have no serializable decomposition.
	CacheDir string
	// Workers bounds the fan-out width of one batch request (default
	// GOMAXPROCS): a batch is split into at most Workers chunks, which
	// are answered concurrently on the numeric stack's shared worker
	// pool. Single-histogram requests are answered on the caller's
	// goroutine. Unseeded batches over a mechanism with a multi-RHS path
	// (mechanism.BatchAnswerer) skip the fan-out entirely: the whole
	// batch runs as packed multi-RHS GEMMs, whose tiles draw from the
	// same pool.
	Workers int
	// ShardRows, when positive, row-partitions any workload with more
	// than ShardRows queries into ⌈m/ShardRows⌉ row blocks that are
	// decomposed concurrently and cached independently — each shard
	// under its own content fingerprint, so overlapping workloads and
	// restarts reuse shard preparations, and workloads too large for a
	// single ALM decomposition become feasible. Answers are the
	// concatenation of the shard answers.
	//
	// Privacy: the shards are answered over the same database, so they
	// compose sequentially — each shard is released at ε/k (k = number
	// of shards) and the total per-histogram budget remains exactly the
	// request's Eps. This is the standard price of sharding: against a
	// joint decomposition at full ε, expected error grows by up to k²
	// on each shard's block, traded for an O(k)-smaller optimization
	// problem per shard and cross-workload shard reuse. Zero disables
	// sharding.
	ShardRows int
	// PrepareHook, when set, is called with the workload fingerprint each
	// time an actual Prepare executes (not on cache or disk hits). It
	// exists so tests can count preparations; leave nil in production.
	PrepareHook func(fingerprint string)
	// Accountant, when non-nil, charges each tenant-tagged request's
	// total ε (Eps × histograms, the sequential composition) against the
	// tenant's durable budget at the request's commit point — after the
	// preparation succeeds and the context is still live, before any
	// noise is drawn. The engine takes ownership: Close closes it.
	Accountant *privacy.Accountant
	// FS is the filesystem the disk cache reads and writes through; nil
	// means the real disk (faultfs.Disk). Tests inject faults here to
	// prove a torn cache file degrades to a fresh Prepare instead of an
	// outage.
	FS faultfs.FS
}

// Request is one answering call: a workload, one or more histograms to
// answer over it, and the privacy parameters of the release.
//
// The workload and histograms must not be mutated after the call starts:
// the engine caches state derived from W under a content fingerprint, so
// in-place mutation would silently serve answers for the old workload.
type Request struct {
	// Context, when non-nil, carries the request's deadline and
	// cancellation. It is consulted at entry and again at the commit
	// point — after the (possibly long) preparation, before any ε is
	// spent or noise drawn — so a caller that gave up never pays budget
	// for an answer it will not receive. Nil means context.Background().
	Context context.Context
	// Workload is the query batch W. Requests with bit-identical W share
	// one cached preparation. Exactly one of Workload and Spec must be
	// set.
	Workload *workload.Workload
	// Spec is the implicit form of the query batch: a structure-aware
	// workload.Spec answered without W ever being materialized. Requests
	// with equal Spec.Digest() share one cached preparation, keyed by
	// workload.SpecFingerprint. Spec requests never row-shard (there are
	// no matrix rows to slice). Exactly one of Workload and Spec must be
	// set.
	Spec workload.Spec
	// Histograms are the databases to answer; each must have Domain()
	// entries. Every histogram is released independently at Eps.
	//
	//lrm:source — unit-count histograms are the raw, unreleased data
	Histograms [][]float64
	// Eps is the per-histogram release budget.
	Eps privacy.Epsilon
	// Budget, when non-zero, caps the total ε this request may consume
	// (sequential composition across its histograms). The request fails
	// with privacy.ErrBudgetExhausted if len(Histograms)·Eps exceeds it.
	// Zero means exactly len(Histograms)·Eps, i.e. no extra cap.
	Budget privacy.Epsilon
	// Seed, when non-zero, makes the release reproducible: histogram i
	// draws its noise from a stream seeded with Seed+i regardless of
	// worker scheduling. This is a debug/audit mode — anyone who knows
	// the seed can regenerate the noise and subtract it, so a seeded
	// release carries no privacy against a party that learns the seed.
	// Zero (the default) draws each histogram's noise from the engine's
	// unpredictable stream (seeded from crypto/rand at startup, never
	// repeating), which is the right choice for real private releases.
	Seed int64
	// Tenant, when non-empty on an engine configured with an Accountant,
	// names the durable per-tenant budget this request's total ε is
	// charged against. The charge happens once, at the commit point, and
	// a refused charge fails the request with privacy.ErrBudgetExhausted
	// before any noise is drawn. Empty skips tenant accounting.
	Tenant string
	// Fingerprint, when non-empty, must be core.Fingerprint(Workload.W);
	// the engine trusts it and skips both hashing and the pointer memo.
	// Callers that build a fresh workload per request (the HTTP server)
	// should set it: their pointers never repeat, so memoizing them
	// would only pin dead matrices in memory until the memo resets.
	Fingerprint string
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Requests and Answers count Answer calls and histograms answered.
	Requests, Answers uint64
	// Hits and Misses count in-memory cache lookups; Coalesced counts
	// requests that piggybacked on another request's in-flight Prepare.
	Hits, Misses, Coalesced uint64
	// Prepares counts actual decomposition runs; Evictions LRU evictions.
	Prepares, Evictions uint64
	// Planned counts planner runs (plan-aware engines only): workloads
	// whose mechanism was chosen by an actual plan.New, as opposed to a
	// cache hit or a plan document restored from disk.
	Planned uint64
	// DiskHits and DiskWrites count decompositions restored from and
	// persisted to the cache directory.
	DiskHits, DiskWrites uint64
	// Batched counts batches answered through a mechanism's multi-RHS
	// path (one packed GEMM per batch instead of a per-histogram
	// fan-out); Sharded counts requests served by row-sharded prepare.
	Batched, Sharded uint64
	// Implicit counts requests served through the spec path (Request.Spec
	// set): workloads answered with W never materialized.
	Implicit uint64
	// Cached is the number of prepared workloads currently resident.
	Cached int
}

// Engine is a goroutine-safe answering service. Create with New, release
// with Close.
type Engine struct {
	mech     mechanism.Mechanism
	planner  *plan.Options // non-nil switches to per-workload planning
	dir      string
	optTag   string  // digest of the LRM options, part of cache filenames
	gamma    float64 // the LRM's configured relaxation, for disk-load validation
	capacity int
	hook     func(string)
	fs       faultfs.FS

	// Durable per-tenant ε accounting (Options.Accountant); owned by the
	// engine — Close closes it.
	accountant *privacy.Accountant
	closed     atomic.Bool
	closeOnce  sync.Once
	closeErr   error

	// Prepared-workload cache and singleflight table.
	mu sync.Mutex
	// lru holds *cacheEntry values, most recent at front.
	//
	//lrm:guardedby mu
	lru *list.List
	//lrm:guardedby mu
	byFP map[string]*list.Element
	//lrm:guardedby mu
	flight map[string]*flightCall

	// Pointer-identity fingerprint memo: hashing a large W costs more
	// than answering it, so repeat calls with the same *mat.Dense skip
	// the hash. Bounded by reset; entries are only a pointer and a hash.
	memoMu sync.RWMutex
	//lrm:guardedby memoMu
	memo map[*mat.Dense]string

	// fanout bounds how many chunks one batch request is split into on
	// the shared pool (Options.Workers).
	fanout int

	// Row sharding (Options.ShardRows): shardPlans memoizes the row
	// partition of each sharded workload — the sliced shard matrices and
	// their fingerprints — keyed by the parent workload's fingerprint.
	shardRows int
	shardMu   sync.Mutex
	//lrm:guardedby shardMu
	shardPlans map[string]*shardPlan

	// Pooled noise sources: Answer reseeds one per histogram instead of
	// allocating, keeping the cache-hit path at two allocations.
	sources sync.Pool

	// Unseeded requests draw per-histogram seeds from a secret random
	// base mixed with a unique counter, so their noise is unpredictable
	// and never repeats across requests.
	seedBase uint64
	seedCtr  atomic.Uint64

	requests, answers    atomic.Uint64
	hits, misses         atomic.Uint64
	coalesced, prepares  atomic.Uint64
	evictions, planned   atomic.Uint64
	diskHits, diskWrites atomic.Uint64
	batched, sharded     atomic.Uint64
	implicit             atomic.Uint64
}

// memoLimit bounds the fingerprint memo; past it the memo is reset (the
// cost is only re-hashing on the next call per live workload). The map's
// pointer keys strongly retain their matrices, so the bound is kept small
// — callers that churn through fresh workload allocations should pass
// Request.Fingerprint and bypass the memo entirely.
const memoLimit = 256

// New starts an engine. Close flushes and closes the accountant's
// write-ahead logs (when one is configured) and fails all subsequent
// Answer calls with ErrClosed.
func New(opts Options) (*Engine, error) {
	e := &Engine{
		mech:       opts.Mechanism,
		dir:        opts.CacheDir,
		capacity:   opts.CacheSize,
		hook:       opts.PrepareHook,
		fs:         opts.FS,
		accountant: opts.Accountant,
		lru:        list.New(),
		byFP:       make(map[string]*list.Element),
		flight:     make(map[string]*flightCall),
		memo:       make(map[*mat.Dense]string),
	}
	if e.fs == nil {
		e.fs = faultfs.Disk
	}
	if opts.Planner != nil && opts.Mechanism != nil {
		return nil, fmt.Errorf("engine: Options.Mechanism and Options.Planner are mutually exclusive")
	}
	e.planner = opts.Planner
	if e.mech == nil && e.planner == nil {
		e.mech = mechanism.LRM{}
	}
	if e.capacity <= 0 {
		e.capacity = 64
	}
	// The disk cache stores LRM decompositions; for any other fixed
	// mechanism a cached .lrmd would be answered by the wrong mechanism
	// entirely, so the directory is ignored unless the engine serves the
	// LRM or plans per workload (planned engines additionally persist
	// the plan documents that say which mechanism each file belongs to).
	// The filename carries a digest of the LRM options (or of the
	// planner options) so engines tuned differently sharing a directory
	// don't serve each other's artifacts.
	switch {
	case e.planner != nil && e.dir != "":
		if err := e.fs.MkdirAll(e.dir, 0o755); err != nil {
			return nil, fmt.Errorf("engine: cache dir: %w", err)
		}
		po := *e.planner
		po.Fingerprint = "" // per-workload, not part of the engine's identity
		sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", po)))
		e.optTag = hex.EncodeToString(sum[:4])
	case e.planner != nil:
		// memory-only planned engine
	default:
		if l, ok := e.mech.(mechanism.LRM); ok && e.dir != "" {
			if err := e.fs.MkdirAll(e.dir, 0o755); err != nil {
				return nil, fmt.Errorf("engine: cache dir: %w", err)
			}
			sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", l.Options)))
			e.optTag = hex.EncodeToString(sum[:4])
			e.gamma = l.Options.Gamma
		} else {
			e.dir = ""
		}
	}
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("engine: seeding: %w", err)
	}
	e.seedBase = binary.LittleEndian.Uint64(seed[:])
	// The pool only constructs placeholder sources: every Get is
	// immediately followed by Reseed with either the caller's audit seed
	// or nextSeed()'s crypto-based stream, so the constant below never
	// produces noise.
	//lint:ignore noiserand pooled sources are Reseed-ed before every use
	e.sources.New = func() any { return rng.New(0) }
	e.fanout = opts.Workers
	if e.fanout <= 0 {
		e.fanout = runtime.GOMAXPROCS(0)
	}
	if opts.ShardRows < 0 {
		return nil, fmt.Errorf("engine: negative ShardRows %d", opts.ShardRows)
	}
	e.shardRows = opts.ShardRows
	e.shardPlans = make(map[string]*shardPlan)
	return e, nil
}

// Close shuts the engine down: subsequent Answer calls fail with
// ErrClosed, and the accountant's write-ahead logs (when configured) are
// flushed and closed so no further durable spends can be granted. Close
// is idempotent — every call returns the first call's error. In-flight
// Answer calls that already passed their commit point complete; their
// spends were durable before Close returned.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		if e.accountant != nil {
			e.closeErr = e.accountant.Close()
		}
	})
	return e.closeErr
}

// Warm reports whether a fingerprint's preparation is resident in the
// in-memory cache, without freshening the LRU or touching the hit
// counters — a pure peek for admission control: under pressure the
// server sheds cold requests (which would burn a Prepare) while cheap
// warm answers keep flowing.
func (e *Engine) Warm(fp string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.byFP[fp]
	return ok
}

// ctxErr returns the context's error, treating nil as Background.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// spendTenant charges the request's total ε — Eps per histogram,
// composed sequentially — against its tenant's durable budget. This is
// the request's single accounting event; callers invoke it only at the
// commit point.
func (e *Engine) spendTenant(req Request) error {
	if e.accountant == nil || req.Tenant == "" {
		return nil
	}
	eps := privacy.Epsilon(float64(req.Eps) * float64(len(req.Histograms)))
	return e.accountant.Spend(req.Tenant, eps)
}

// Accountant returns the engine's durable accountant, or nil. The
// server uses it to surface per-tenant remaining ε in GET /stats.
func (e *Engine) Accountant() *privacy.Accountant { return e.accountant }

// Answer releases private answers for every histogram in the request and
// returns them in request order. It is safe to call from any number of
// goroutines; identical workloads share one cached preparation.
//
//lrm:sink return — everything Answer returns leaves the privacy boundary
func (e *Engine) Answer(req Request) ([][]float64, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctxErr(req.Context); err != nil {
		return nil, err
	}
	if req.Spec != nil {
		if req.Workload != nil {
			return nil, errors.New("engine: request sets both Workload and Spec")
		}
		return e.answerSpec(req)
	}
	if req.Workload == nil || req.Workload.W == nil {
		return nil, errors.New("engine: nil workload")
	}
	if err := validateHistograms(req, req.Workload.Domain()); err != nil {
		return nil, err
	}
	e.requests.Add(1)

	fp := req.Fingerprint
	if fp == "" {
		fp = e.fingerprint(req.Workload.W)
	}
	if e.shardRows > 0 && req.Workload.Queries() > e.shardRows {
		return e.answerSharded(fp, req)
	}
	p, err := e.prepared(fp, req.Workload)
	if err != nil {
		return nil, err
	}
	return e.release(p, req)
}

// validateHistograms checks the request's release parameters and that
// every histogram matches the workload's domain.
func validateHistograms(req Request, n int) error {
	if len(req.Histograms) == 0 {
		return errors.New("engine: no histograms")
	}
	if err := req.Eps.Validate(); err != nil {
		return err
	}
	for i, x := range req.Histograms {
		if len(x) != n {
			return fmt.Errorf("engine: histogram %d has %d entries, domain is %d", i, len(x), n)
		}
	}
	return nil
}

// release is the post-preparation tail shared by the dense and spec
// paths: commit point, tenant spend, per-request budget, then the
// actual noisy answers.
//
//lrm:sink return — everything release returns leaves the privacy boundary
func (e *Engine) release(p mechanism.Prepared, req Request) ([][]float64, error) {
	// Commit point: the preparation is done and noise is about to be
	// drawn. A request whose caller has already given up is abandoned
	// here, before it costs any ε; past this point the tenant's spend is
	// durable even if the caller later disconnects.
	if err := ctxErr(req.Context); err != nil {
		return nil, err
	}
	if err := e.spendTenant(req); err != nil {
		return nil, err
	}

	var budget *privacy.Budget
	if req.Budget != 0 {
		var err error
		if budget, err = privacy.NewBudget(req.Budget); err != nil {
			return nil, err
		}
	}

	out := make([][]float64, len(req.Histograms))
	if len(req.Histograms) == 1 {
		// Single release: answer inline. The pool buys nothing here, and
		// keeping the fan-out closures out of this function keeps the
		// cache-hit path at two allocations (the result slices).
		a, err := e.answerOne(p, req.Histograms[0], req.Eps, budget, e.seedFor(req.Seed, 0))
		if err != nil {
			return nil, err
		}
		out[0] = a
		e.answers.Add(1)
		return out, nil
	}
	if err := e.answerBatch(p, req, budget, out); err != nil {
		return nil, err
	}
	e.answers.Add(uint64(len(req.Histograms)))
	return out, nil
}

// answerBatch answers a multi-histogram request, filling out in request
// order. Unseeded batches over a mechanism with a multi-RHS path take the
// batched route: one packed GEMM per dense product for the whole batch.
// Seeded batches keep the documented per-histogram stream contract
// (histogram i is seeded Seed+i, replayable independently), which a
// single shared stream could not honor, so they fan out per vector like
// mechanisms without a batch path.
func (e *Engine) answerBatch(p mechanism.Prepared, req Request, budget *privacy.Budget, out [][]float64) error {
	if req.Seed == 0 {
		if ba, ok := p.(mechanism.BatchAnswerer); ok {
			return e.answerMany(ba, histogramColumns(req.Histograms), req.Eps, budget, out)
		}
	}
	n := len(req.Histograms)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = e.seedFor(req.Seed, i)
	}
	return e.fanOut(p, req.Histograms, req.Eps, budget, seeds, out)
}

// histogramColumns stacks a request's histograms as the columns of the
// n×B matrix the multi-RHS path takes.
func histogramColumns(hists [][]float64) *mat.Dense {
	x := mat.New(len(hists[0]), len(hists))
	for j, h := range hists {
		x.SetCol(j, h)
	}
	return x
}

// answerMany routes one batch through the mechanism's multi-RHS path:
// histograms become the columns of an n×B matrix (x, built once per
// request — the sharded path reuses it across shards), one AnswerMany
// call answers them all (its GEMM tiles parallelize on the shared pool),
// and the result columns become the per-histogram answer slices. The
// whole batch draws from one unpredictable noise stream; budget spends
// are accounted per histogram up front, exactly like the fan-out path.
func (e *Engine) answerMany(ba mechanism.BatchAnswerer, x *mat.Dense, eps privacy.Epsilon, budget *privacy.Budget, out [][]float64) error {
	b := x.Cols()
	if budget != nil {
		for i := 0; i < b; i++ {
			if err := budget.Spend(eps); err != nil {
				return err
			}
		}
	}
	src := e.sources.Get().(*rng.Source)
	src.Reseed(e.nextSeed())
	y, err := ba.AnswerMany(x, eps, src)
	e.sources.Put(src)
	if err != nil {
		return err
	}
	m := y.Rows()
	yd := y.RawData()
	for j := range out {
		a := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = yd[i*b+j]
		}
		out[j] = a
	}
	e.batched.Add(1)
	return nil
}

// fanOut answers histograms[i] with seeds[i] across the shared worker
// pool, filling out in order. Seeds are resolved by the caller up front
// so a seeded release is identical however the chunks are scheduled; the
// batch is split into at most e.fanout contiguous chunks so one request
// cannot monopolize the pool beyond its configured width.
func (e *Engine) fanOut(p mechanism.Prepared, hists [][]float64, eps privacy.Epsilon, budget *privacy.Budget, seeds []int64, out [][]float64) error {
	n := len(hists)
	errs := make([]error, n)
	width := e.fanout
	if width > n {
		width = n
	}
	chunk := (n + width - 1) / width
	mat.ParallelFor(width, func(w int) {
		hi := (w + 1) * chunk
		if hi > n {
			hi = n
		}
		for i := w * chunk; i < hi; i++ {
			out[i], errs[i] = e.answerOne(p, hists[i], eps, budget, seeds[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// seedFor resolves the noise seed for histogram i of a request: reqSeed+i
// when the caller pinned a seed, otherwise a fresh unpredictable value.
func (e *Engine) seedFor(reqSeed int64, i int) int64 {
	if reqSeed != 0 {
		return reqSeed + int64(i)
	}
	return e.nextSeed()
}

// nextSeed returns an unpredictable, never-repeating seed: splitmix64
// over a crypto/rand base and a unique counter. The mixer guarantees the
// counter's structure doesn't survive into the output; unpredictability
// rests on the secret base.
func (e *Engine) nextSeed() int64 {
	z := e.seedBase + e.seedCtr.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func (e *Engine) answerOne(p mechanism.Prepared, x []float64, eps privacy.Epsilon, budget *privacy.Budget, seed int64) ([]float64, error) {
	if budget != nil {
		if err := budget.Spend(eps); err != nil {
			return nil, err
		}
	}
	src := e.sources.Get().(*rng.Source)
	src.Reseed(seed)
	out, err := p.Answer(x, eps, src)
	e.sources.Put(src)
	return out, err
}

// fingerprint returns core.Fingerprint(w), memoized by pointer identity
// so the steady-state answer path never re-hashes a workload it has
// already seen. Callers guarantee workloads are not mutated (see Request).
func (e *Engine) fingerprint(w *mat.Dense) string {
	e.memoMu.RLock()
	fp, ok := e.memo[w]
	e.memoMu.RUnlock()
	if ok {
		return fp
	}
	fp = core.Fingerprint(w)
	e.memoMu.Lock()
	if len(e.memo) >= memoLimit {
		e.memo = make(map[*mat.Dense]string)
	}
	e.memo[w] = fp
	e.memoMu.Unlock()
	return fp
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	cached := e.lru.Len()
	e.mu.Unlock()
	return Stats{
		Requests:   e.requests.Load(),
		Answers:    e.answers.Load(),
		Hits:       e.hits.Load(),
		Misses:     e.misses.Load(),
		Coalesced:  e.coalesced.Load(),
		Prepares:   e.prepares.Load(),
		Planned:    e.planned.Load(),
		Evictions:  e.evictions.Load(),
		DiskHits:   e.diskHits.Load(),
		DiskWrites: e.diskWrites.Load(),
		Batched:    e.batched.Load(),
		Sharded:    e.sharded.Load(),
		Implicit:   e.implicit.Load(),
		Cached:     cached,
	}
}
