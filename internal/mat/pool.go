package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the package's parallel scheduler: one persistent worker
// pool, started lazily and sized to the machine, that every kernel in the
// package (and, through ParallelFor, the coarse-grained consumers such as
// internal/engine's batch fan-out) draws from. Replacing the old per-call
// fork/join (a sync.WaitGroup and fresh goroutines per product) with
// long-lived workers removes per-product goroutine churn from the ALM hot
// loop, and funneling every layer through one pool keeps the engine's
// request fan-out and the GEMM tiles from oversubscribing each other.
//
// Work is distributed as tiles claimed from an atomic counter: whichever
// worker is free takes the next tile, so load-imbalanced grids (the
// triangular Gram kernels, whose first rows cost ~2× the last) balance
// themselves without a static partition. Determinism is unaffected — the
// tile grid is a pure function of the operand shapes, each output element
// is written by exactly one tile, and every tile accumulates in a fixed
// k-order — so results are bit-identical no matter how many workers claim
// tiles (see TestGEMMSchedulingInvariance).

// parallelThreshold is the amount of multiply work (flops) below which
// kernels run single-threaded; fork/join overhead dominates for small
// products, which the LRM inner loop issues by the thousand. It is
// atomic so tests forcing one path cannot race concurrently running
// dispatchers (it used to be a bare package global mutated by tests).
var parallelThreshold atomic.Int64

func init() { parallelThreshold.Store(1 << 21) }

// setParallelThreshold installs a new serial/parallel cutoff and returns
// the previous one. It exists for tests that force the serial or the
// parallel path to prove both agree bit-for-bit.
func setParallelThreshold(v int64) int64 {
	return parallelThreshold.Swap(v)
}

// serialWork reports whether a job of the given total work volume (flops)
// is too small to be worth scheduling on the pool.
func serialWork(total int) bool {
	return int64(total) < parallelThreshold.Load()
}

// poolTask is one parallel job: tiles [0,tiles) are claimed from next by
// however many runners participate; the last runner to finish a tile
// signals done.
type poolTask struct {
	fn      func(tile int)
	tiles   int64
	next    atomic.Int64
	pending atomic.Int64
	done    chan struct{}
}

// run claims tiles until the grid is exhausted.
func (t *poolTask) run() {
	for {
		i := t.next.Add(1) - 1
		if i >= t.tiles {
			return
		}
		t.fn(int(i))
		if t.pending.Add(-1) == 0 {
			t.done <- struct{}{}
		}
	}
}

var pool struct {
	once    sync.Once
	workers int // background workers (submitters also run tiles)
	tasks   chan *poolTask
}

// poolInit starts the persistent workers: GOMAXPROCS−1 of them, because
// the submitting goroutine always participates in its own job, so total
// concurrency matches the machine without oversubscription.
func poolInit() {
	pool.workers = runtime.GOMAXPROCS(0) - 1
	if pool.workers <= 0 {
		pool.workers = 0
		return
	}
	pool.tasks = make(chan *poolTask, pool.workers)
	for i := 0; i < pool.workers; i++ {
		go func() {
			for t := range pool.tasks {
				t.run()
			}
		}()
	}
}

// forEachTile invokes fn(i) for every i in [0,tiles), drawing on the
// persistent pool when it exists. The submitter runs tiles itself (so a
// busy pool degrades to caller-runs, never deadlock), workers claim the
// rest dynamically. fn must not retain state across tiles; tiles may run
// in any order and on any goroutine.
func forEachTile(tiles int, fn func(tile int)) {
	if tiles <= 0 {
		return
	}
	pool.once.Do(poolInit)
	if pool.workers == 0 || tiles == 1 {
		for i := 0; i < tiles; i++ {
			fn(i)
		}
		return
	}
	t := &poolTask{fn: fn, tiles: int64(tiles), done: make(chan struct{}, 1)}
	t.pending.Store(int64(tiles))
	// Wake at most tiles−1 workers; if the queue is full every worker is
	// already busy and the submitter simply runs more of the grid itself.
	wake := pool.workers
	if wake > tiles-1 {
		wake = tiles - 1
	}
	for i := 0; i < wake; i++ {
		select {
		case pool.tasks <- t:
		default:
			i = wake // queue full; stop waking
		}
	}
	t.run()
	<-t.done
}

// ParallelFor runs fn(i) for i in [0,n) on the package's persistent
// worker pool, returning when every call has finished. It is the entry
// point for coarse-grained consumers (the engine's histogram batches, the
// sparse row-parallel products): by drawing from the same pool as the
// GEMM tiles, layered parallelism degrades gracefully instead of
// oversubscribing the machine with competing goroutine fleets. Calls may
// execute on any goroutine in any order; nested ParallelFor is safe (the
// submitter always advances its own job).
func ParallelFor(n int, fn func(i int)) {
	forEachTile(n, fn)
}

// packFree is a global free-list of packing buffers for the GEMM layer.
// A sync.Pool would also work, but its GC-droppable contents would make
// the ALM's pinned zero-allocation inner loop flaky; a capped LIFO keeps
// steady-state packing allocation-free deterministically. Retention is
// bounded both by count and by total bytes, so one burst of huge
// products cannot pin hundreds of megabytes in a long-lived server —
// oversized buffers are simply dropped and reallocated on the next
// oversized product.
var packFree struct {
	sync.Mutex
	//lrm:guardedby Mutex
	bufs [][]float64
	// bytes is Σ 8·cap over bufs.
	//
	//lrm:guardedby Mutex
	bytes int
}

const (
	packFreeCap      = 16
	packFreeMaxBytes = 64 << 20
)

// getPackBuf returns a length-n buffer whose contents are arbitrary; the
// packing routines overwrite every slot they read back.
func getPackBuf(n int) []float64 {
	packFree.Lock()
	best := -1
	for i, b := range packFree.bufs {
		if cap(b) >= n && (best < 0 || cap(b) < cap(packFree.bufs[best])) {
			best = i
		}
	}
	if best >= 0 {
		b := packFree.bufs[best]
		last := len(packFree.bufs) - 1
		packFree.bufs[best] = packFree.bufs[last]
		packFree.bufs[last] = nil
		packFree.bufs = packFree.bufs[:last]
		packFree.bytes -= 8 * cap(b)
		packFree.Unlock()
		return b[:n]
	}
	packFree.Unlock()
	return make([]float64, n)
}

// putPackBuf retires a packing buffer for reuse, unless retaining it
// would exceed the free-list's count or byte caps.
func putPackBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	packFree.Lock()
	if len(packFree.bufs) < packFreeCap && packFree.bytes+8*cap(b) <= packFreeMaxBytes {
		packFree.bufs = append(packFree.bufs, b)
		packFree.bytes += 8 * cap(b)
	}
	packFree.Unlock()
}
