// Package optimize provides the optimization substrate shared by the
// Low-Rank Mechanism and the matrix mechanism: Euclidean projection onto
// the L1 ball (Duchi et al., ICML 2008), Nesterov's accelerated projected
// gradient with backtracking (Algorithm 2 of the paper), a plain projected
// gradient baseline for ablations, the nonmonotone spectral projected
// gradient of Birgin–Martínez–Raydan (used by Appendix B's matrix
// mechanism), and a smoothed max via log-sum-exp.
package optimize

import (
	"math"
	"sort"
)

// ProjectL1Ball projects x in place onto the L1 ball of the given radius:
// the Euclidean-nearest point v with ‖v‖₁ ≤ radius. If x is already
// feasible it is returned unchanged. This is the sort-based O(n log n)
// algorithm of Duchi et al.; see ProjectL1BallPivot for the O(n) expected
// variant.
func ProjectL1Ball(x []float64, radius float64) {
	if radius < 0 {
		panic("optimize: negative L1 radius")
	}
	var norm float64
	for _, v := range x {
		norm += math.Abs(v)
	}
	if norm <= radius {
		return
	}
	if radius == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	// Find the soft threshold theta such that Σ max(|xᵢ|−θ, 0) = radius.
	mags := make([]float64, len(x))
	for i, v := range x {
		mags[i] = math.Abs(v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
	var cum float64
	rho := -1
	var cumAtRho float64
	for i, m := range mags {
		cum += m
		if m-(cum-radius)/float64(i+1) > 0 {
			rho = i
			cumAtRho = cum
		}
	}
	theta := (cumAtRho - radius) / float64(rho+1)
	softThreshold(x, theta)
}

// ProjectL1BallPivot is the expected-O(n) randomized-pivot variant of
// ProjectL1Ball. It produces the same projection (up to roundoff) and is
// benchmarked against the sort-based version as an ablation.
func ProjectL1BallPivot(x []float64, radius float64) {
	if radius < 0 {
		panic("optimize: negative L1 radius")
	}
	var norm float64
	for _, v := range x {
		norm += math.Abs(v)
	}
	if norm <= radius {
		return
	}
	if radius == 0 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	projectL1BallPivotBuf(x, radius, make([]float64, len(x)))
}

// projectL1BallPivotBuf is ProjectL1BallPivot with caller-provided
// magnitude scratch (len(x)); the feasibility fast path has already been
// taken by the caller.
func projectL1BallPivotBuf(x []float64, radius float64, mags []float64) {
	for i, v := range x {
		mags[i] = math.Abs(v)
	}
	theta := findTheta(mags, radius)
	softThreshold(x, theta)
}

// findTheta computes the soft threshold by quickselect-style partitioning,
// consuming mags (it is reordered).
func findTheta(mags []float64, radius float64) float64 {
	lo, hi := 0, len(mags)
	// Invariant state: sum and count of elements known to be above the
	// threshold (those partitioned off to the left of lo).
	var sumAbove float64
	var cntAbove int
	// Deterministic median-of-three pivoting is enough here; adversarial
	// inputs are not a concern and it keeps the routine reproducible.
	for lo < hi {
		pivot := medianOfThree(mags[lo], mags[(lo+hi)/2], mags[hi-1])
		// Partition [lo,hi) into > pivot, == pivot, < pivot (Dutch flag).
		i, j, k := lo, lo, hi
		for j < k {
			switch {
			case mags[j] > pivot:
				mags[i], mags[j] = mags[j], mags[i]
				i++
				j++
			case mags[j] < pivot:
				k--
				mags[j], mags[k] = mags[k], mags[j]
			default:
				j++
			}
		}
		// [lo,i) > pivot; [i,j) == pivot; [j,hi) < pivot.
		var sumGT float64
		for t := lo; t < i; t++ {
			sumGT += mags[t]
		}
		nGT := i - lo
		nEQ := j - i
		// If threshold were pivot, the active set would be everything > or
		// == pivot seen so far.
		sumIfEq := sumAbove + sumGT + float64(nEQ)*pivot
		cntIfEq := cntAbove + nGT + nEQ
		thetaIfEq := (sumIfEq - radius) / float64(cntIfEq)
		if thetaIfEq < pivot {
			// Threshold is below pivot: all of [lo,j) stays active;
			// continue in the < pivot region.
			sumAbove = sumIfEq
			cntAbove = cntIfEq
			lo = j
		} else {
			// Threshold is at or above pivot: active set is within > pivot.
			hi = i
		}
	}
	if cntAbove == 0 {
		// Degenerate (radius >= norm was excluded, so this cannot happen
		// with exact arithmetic); fall back to the largest magnitude.
		return 0
	}
	return (sumAbove - radius) / float64(cntAbove)
}

func medianOfThree(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// softThreshold applies sign(xᵢ)·max(|xᵢ|−θ, 0) in place.
func softThreshold(x []float64, theta float64) {
	for i, v := range x {
		m := math.Abs(v) - theta
		if m <= 0 {
			x[i] = 0
		} else if v > 0 {
			x[i] = m
		} else {
			x[i] = -m
		}
	}
}

// ProjectColumnsL1 projects every column of the r×n matrix stored
// row-major in data onto the L1 ball of the given radius. This implements
// Formula (11) of the paper: the constraint set of the L-subproblem
// decouples into per-column L1 balls.
func ProjectColumnsL1(data []float64, rows, cols int, radius float64) {
	ProjectColumnsL1Buf(data, rows, cols, radius, make([]float64, 2*rows))
}

// ProjectColumnsL1Buf is ProjectColumnsL1 with caller-provided scratch of
// length at least 2·rows, so the inner solver's projection step (run once
// per iteration on every column) performs no allocation.
func ProjectColumnsL1Buf(data []float64, rows, cols int, radius float64, scratch []float64) {
	if radius < 0 {
		panic("optimize: negative L1 radius")
	}
	if len(scratch) < 2*rows {
		panic("optimize: ProjectColumnsL1Buf scratch shorter than 2*rows")
	}
	col := scratch[:rows]
	mags := scratch[rows : 2*rows]
	for j := 0; j < cols; j++ {
		var norm float64
		for i := 0; i < rows; i++ {
			v := data[i*cols+j]
			col[i] = v
			norm += math.Abs(v)
		}
		if norm <= radius {
			continue // already feasible; nothing to write back
		}
		if radius == 0 {
			for i := 0; i < rows; i++ {
				data[i*cols+j] = 0
			}
			continue
		}
		// The pivot-based projection avoids the per-column sort; this
		// routine runs once per inner-solver iteration on every column.
		projectL1BallPivotBuf(col, radius, mags)
		for i := 0; i < rows; i++ {
			data[i*cols+j] = col[i]
		}
	}
}

// SmoothMax returns the log-sum-exp smooth approximation of max(v):
// fμ(v) = max(v) + μ·log Σ exp((vᵢ−max(v))/μ). It satisfies
// max(v) ≤ fμ(v) ≤ max(v) + μ·log n (Eq. 14 of the paper's Appendix B,
// in the numerically stable form).
func SmoothMax(v []float64, mu float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	var sum float64
	for _, x := range v {
		sum += math.Exp((x - m) / mu)
	}
	return m + mu*math.Log(sum)
}

// SmoothMaxGrad writes the gradient of SmoothMax into grad:
// ∂f/∂vᵢ = exp((vᵢ−max)/μ) / Σⱼ exp((vⱼ−max)/μ) (Eq. 15, stable form).
func SmoothMaxGrad(v []float64, mu float64, grad []float64) {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp((x - m) / mu)
		grad[i] = e
		sum += e
	}
	for i := range grad {
		grad[i] /= sum
	}
}
