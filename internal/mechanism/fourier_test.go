package mechanism

import (
	"math"
	"testing"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestFourierPrepareValidation(t *testing.T) {
	if _, err := (Fourier{}).Prepare(nil); err == nil {
		t.Fatal("want error for nil workload")
	}
	w := workload.Identity(8)
	if _, err := (Fourier{K: 9}).Prepare(w); err == nil {
		t.Fatal("want error for K > n")
	}
	if _, err := (Fourier{K: -1}).Prepare(w); err == nil {
		t.Fatal("want error for negative K")
	}
	p, err := (Fourier{}).Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.(*fourierPrepared).k != 1 {
		t.Fatalf("default k for n=8 should be 1, got %d", p.(*fourierPrepared).k)
	}
	p, err = (Fourier{}).Prepare(workload.Identity(64))
	if err != nil {
		t.Fatal(err)
	}
	if p.(*fourierPrepared).k != 8 {
		t.Fatalf("default k for n=64 should be 8, got %d", p.(*fourierPrepared).k)
	}
}

func TestFourierAnswerValidation(t *testing.T) {
	p, err := (Fourier{K: 4}).Prepare(workload.Identity(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Answer(make([]float64, 5), 1, rng.New(1)); err == nil {
		t.Fatal("want error for wrong data length")
	}
	if _, err := p.Answer(make([]float64, 16), 0, rng.New(1)); err == nil {
		t.Fatal("want error for non-positive epsilon")
	}
}

func TestFourierFullSpectrumIsUnbiased(t *testing.T) {
	// With K = n and huge ε the mechanism is a near-exact round trip.
	n := 16
	w := workload.Identity(n)
	p, err := (Fourier{K: n}).Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	x := src.UniformVec(n, 0, 100)
	got, err := p.Answer(x, privacy.Epsilon(1e9), src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-3 {
			t.Fatalf("near-noiseless full-spectrum answer differs: got[%d]=%g want %g", i, got[i], x[i])
		}
	}
}

func TestFourierSmoothSignalLowBias(t *testing.T) {
	// A single low-frequency sinusoid is captured exactly by small K.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 50*math.Cos(2*math.Pi*float64(i)/float64(n))
	}
	p, err := (Fourier{K: 4}).Prepare(workload.Identity(n))
	if err != nil {
		t.Fatal(err)
	}
	bias, err := p.(*fourierPrepared).ReconstructionBias(x)
	if err != nil {
		t.Fatal(err)
	}
	if bias > 1e-18*sumSq(x) {
		t.Fatalf("smooth signal should have ~zero tail, got %g", bias)
	}
	// High-frequency content is NOT captured: bias must be large.
	y := make([]float64, n)
	for i := range y {
		y[i] = float64(1 - 2*(i%2)) // Nyquist-rate alternation
	}
	biasY, err := p.(*fourierPrepared).ReconstructionBias(y)
	if err != nil {
		t.Fatal(err)
	}
	if biasY < 0.9*sumSq(y) {
		t.Fatalf("alternating signal should be almost all tail, got %g of %g", biasY, sumSq(y))
	}
}

func TestFourierAnswerIsRealAndFinite(t *testing.T) {
	src := rng.New(4)
	for _, n := range []int{8, 12, 16, 30} { // includes non-power-of-two (Bluestein)
		w := workload.Range(5, n, src)
		p, err := (Fourier{K: n / 2}).Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		x := src.UniformVec(n, 0, 10)
		got, err := p.Answer(x, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != w.Queries() {
			t.Fatalf("n=%d: got %d answers want %d", n, len(got), w.Queries())
		}
		for i, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("n=%d: answer[%d] not finite: %g", n, i, v)
			}
		}
	}
}

func TestFourierNoiseScalesWithK(t *testing.T) {
	// On a zero histogram the answer is pure noise; K=n should carry more
	// noise energy than K=1 at the same ε (scale √(2K) per coefficient,
	// K coefficients).
	n := 64
	w := workload.Identity(n)
	x := make([]float64, n)
	sse := func(k int, seed int64) float64 {
		p, err := (Fourier{K: k}).Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(seed)
		var total float64
		for trial := 0; trial < 30; trial++ {
			got, err := p.Answer(x, 1, src)
			if err != nil {
				t.Fatal(err)
			}
			total += sumSq(got)
		}
		return total / 30
	}
	small, large := sse(1, 5), sse(n, 6)
	if large < 10*small {
		t.Fatalf("noise should grow strongly with K: K=1 → %g, K=n → %g", small, large)
	}
}

func TestFourierExpectedSSEIsNaN(t *testing.T) {
	p, err := (Fourier{K: 2}).Prepare(workload.Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(p.ExpectedSSE(1)) {
		t.Fatal("FPA should report no analytic SSE")
	}
}

func TestFourierBiasValidation(t *testing.T) {
	p, err := (Fourier{K: 2}).Prepare(workload.Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.(*fourierPrepared).ReconstructionBias(make([]float64, 3)); err == nil {
		t.Fatal("want error for wrong length")
	}
}

func sumSq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}
