package main

import (
	"context"
	"sync"
	"time"

	"lrm/internal/engine"
	"lrm/internal/privacy"
	"lrm/internal/workload"
)

// Batch coalescing: under concurrent load, many clients tend to ask for
// the same workload (same fingerprint) at the same ε within a few
// milliseconds of each other. Answering them one request at a time leaves
// the engine's multi-RHS path idle; coalescing gathers concurrent
// same-key requests behind a small time/size window and answers them as
// one engine batch — one cache lookup, one packed GEMM per dense product
// — then hands each caller its own rows.
//
// Only requests with no pinned seed and no per-request budget coalesce:
// a seeded release is a replayable per-request noise contract, and a
// budget is per-request accounting; both would change meaning inside a
// merged batch. Tenant-tagged requests coalesce only with their own
// tenant — the merged batch is charged as one composed spend against
// exactly one durable budget. Those requests, and all requests when the
// window is zero, go straight to the engine.
//
// The flush is the commit point. Waiters hold their own histograms until
// the window closes; only then is the batch assembled, and waiters whose
// context has already ended are pruned first — their rows are never part
// of the batch, so a caller that gave up during the window costs its
// tenant nothing. The engine call itself runs under the background
// context: once the batch commits, one waiter's mid-flight disconnect
// must not void the answers (or un-spend the ε) of everyone else merged
// with it.

// coalesceKey groups requests that may share one engine batch.
type coalesceKey struct {
	fp     string
	eps    float64
	tenant string
}

// coalesceResult is what a flushed group hands each waiter.
type coalesceResult struct {
	answers [][]float64
	err     error
}

// coalesceWaiter is one request's pending slot in a group. Its row
// offset into the merged batch is assigned at flush time, after pruning,
// and is only read from the result channel's payload.
type coalesceWaiter struct {
	ctx   context.Context
	hists [][]float64
	ch    chan coalesceResult
	lo    int // rows [lo, lo+len(hists)) of the flushed batch
}

// coalesceGroup is one open window of mergeable requests.
type coalesceGroup struct {
	key     coalesceKey
	wl      *workload.Workload
	rows    int // histograms pledged so far, for the size trigger
	waiters []*coalesceWaiter
	timer   *time.Timer
}

// coalescer merges concurrent same-key answer requests into engine
// batches. Zero window means coalescing is disabled and callers should
// not construct one.
type coalescer struct {
	eng    *engine.Engine
	window time.Duration
	max    int // flush a group as soon as it holds this many histograms

	mu sync.Mutex
	//lrm:guardedby mu
	groups map[coalesceKey]*coalesceGroup
}

func newCoalescer(eng *engine.Engine, window time.Duration, max int) *coalescer {
	if max <= 0 {
		max = 64
	}
	return &coalescer{eng: eng, window: window, max: max, groups: make(map[coalesceKey]*coalesceGroup)}
}

// submit merges the request into the open group for its key (opening one
// and arming its window timer if none is open), waits for the group to
// flush, and returns this request's rows. The caller must have validated
// histogram lengths against the workload domain: inside a merged batch a
// malformed histogram would fail the whole group, not just its sender.
// A nil ctx means context.Background(). If ctx ends before the flush,
// submit returns its error immediately; the flush later prunes the
// abandoned waiter without charging for it.
func (c *coalescer) submit(ctx context.Context, wl *workload.Workload, fp string, hists [][]float64, eps float64, tenant string) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	w := &coalesceWaiter{ctx: ctx, hists: hists, ch: make(chan coalesceResult, 1)}
	key := coalesceKey{fp: fp, eps: eps, tenant: tenant}

	c.mu.Lock()
	g := c.groups[key]
	if g == nil {
		g = &coalesceGroup{key: key, wl: wl}
		c.groups[key] = g
		g.timer = time.AfterFunc(c.window, func() { c.flush(g) })
	}
	g.rows += len(hists)
	g.waiters = append(g.waiters, w)
	full := g.rows >= c.max
	c.mu.Unlock()

	if full {
		// The request that filled the group flushes it immediately
		// instead of waiting out the window; flush is idempotent, so a
		// concurrent timer fire is harmless.
		c.flush(g)
	}
	select {
	case res := <-w.ch:
		if res.err != nil {
			return nil, res.err
		}
		return res.answers[w.lo : w.lo+len(hists)], nil
	case <-ctx.Done():
		// The buffered channel still absorbs the flush's send, so the
		// group never blocks on an abandoned waiter.
		return nil, ctx.Err()
	}
}

// flush closes the group (removing it from the open set exactly once),
// prunes waiters whose callers have given up, assembles the batch from
// the survivors, and answers it — committing their tenant's composed
// spend — then distributes each waiter its rows.
func (c *coalescer) flush(g *coalesceGroup) {
	c.mu.Lock()
	if c.groups[g.key] != g {
		c.mu.Unlock()
		return // already flushed by the timer or a filling request
	}
	delete(c.groups, g.key)
	g.timer.Stop()
	c.mu.Unlock()

	var hists [][]float64
	live := make([]*coalesceWaiter, 0, len(g.waiters))
	for _, w := range g.waiters {
		if err := w.ctx.Err(); err != nil {
			w.ch <- coalesceResult{err: err}
			continue
		}
		w.lo = len(hists)
		hists = append(hists, w.hists...)
		live = append(live, w)
	}
	if len(live) == 0 {
		return // everyone left during the window; nothing to charge
	}
	answers, err := c.eng.Answer(engine.Request{
		Workload:    g.wl,
		Histograms:  hists,
		Eps:         privacy.Epsilon(g.key.eps),
		Tenant:      g.key.tenant,
		Fingerprint: g.key.fp,
	})
	for _, w := range live {
		w.ch <- coalesceResult{answers: answers, err: err}
	}
}
