// Package suppress exercises the //lint:ignore machinery's edge cases:
// a directive above a multi-line call, and a directive naming an
// analyzer that does not exist. The companion generated.go carries the
// same violation inside a generated file, which is exempt wholesale.
package suppress

// request mirrors the engine's annotated payload shape.
type request struct {
	//lrm:source — fixture raw data
	Counts []float64
	Eps    float64
}

// emit is a release boundary for the fixture.
//
//lrm:sink
func emit(vals []float64) {}

// releaseSuppressed releases raw data, but the finding lands on the
// first line of the multi-line call and the directive directly above it
// must still suppress it.
func releaseSuppressed(req request) {
	//lint:ignore noiseflow fixture — suppression above a multi-line call
	emit(
		req.Counts,
	)
}

// phantomIgnore names an analyzer that does not exist; the directive
// itself must surface as a finding because it suppresses nothing.
func phantomIgnore(req request) {
	//lint:ignore fancypants this analyzer does not exist
	_ = req.Eps
}
