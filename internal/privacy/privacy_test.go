package privacy

import (
	"errors"
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

func TestEpsilonValidate(t *testing.T) {
	for _, e := range []Epsilon{1, 0.01, 10} {
		if err := e.Validate(); err != nil {
			t.Fatalf("Validate(%v) = %v", float64(e), err)
		}
	}
	for _, e := range []Epsilon{0, -1, Epsilon(math.Inf(1)), Epsilon(math.NaN())} {
		if err := e.Validate(); err == nil {
			t.Fatalf("Validate(%v) accepted", float64(e))
		}
	}
}

func TestBudgetSpend(t *testing.T) {
	b, err := NewBudget(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend error = %v, want ErrBudgetExhausted", err)
	}
	if rem := b.Remaining(); math.Abs(float64(rem)) > 1e-9 {
		t.Fatalf("Remaining = %v, want 0", float64(rem))
	}
	if b.Total() != 1.0 {
		t.Fatalf("Total = %v", float64(b.Total()))
	}
}

func TestNewBudgetRejectsBad(t *testing.T) {
	if _, err := NewBudget(0); err == nil {
		t.Fatal("NewBudget(0) accepted")
	}
	if _, err := NewBudget(-3); err == nil {
		t.Fatal("NewBudget(-3) accepted")
	}
}

func TestSensitivityIntroExample(t *testing.T) {
	// Section 1 example: {q1,q2,q3} with q1 = q2+q3 has sensitivity 2,
	// {q2,q3} alone has sensitivity 1.
	full := mat.FromRows([][]float64{
		{1, 1, 1, 1},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	if got := Sensitivity(full); got != 2 {
		t.Fatalf("Sensitivity(full) = %v, want 2", got)
	}
	sub := mat.FromRows([][]float64{
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	if got := Sensitivity(sub); got != 1 {
		t.Fatalf("Sensitivity(sub) = %v, want 1", got)
	}
}

func TestSensitivitySecondIntroExample(t *testing.T) {
	// q1 = 2x_NJ + x_CA + x_WA; q2 = x_NJ + 2x_WA; q3 = x_NY + 2x_CA + 2x_WA.
	// Columns: NY, NJ, CA, WA. NOQ sensitivity is 5 (column WA: 1+2+2).
	w := mat.FromRows([][]float64{
		{0, 2, 1, 1},
		{0, 1, 0, 2},
		{1, 0, 2, 2},
	})
	if got := Sensitivity(w); got != 5 {
		t.Fatalf("Sensitivity = %v, want 5", got)
	}
}

func TestLaplaceMechanismUnbiased(t *testing.T) {
	src := rng.New(1)
	exact := []float64{100, -50, 0}
	const trials = 30_000
	sums := make([]float64, 3)
	for i := 0; i < trials; i++ {
		noisy, err := LaplaceMechanism(exact, 1, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range noisy {
			sums[j] += v
		}
	}
	for j, want := range exact {
		mean := sums[j] / trials
		if math.Abs(mean-want) > 0.1 {
			t.Fatalf("mean[%d] = %v, want ~%v", j, mean, want)
		}
	}
}

func TestLaplaceMechanismEmpiricalSSE(t *testing.T) {
	src := rng.New(2)
	const m = 64
	exact := make([]float64, m)
	const sens = 3.0
	const eps = Epsilon(0.5)
	want := LaplaceExpectedSSE(m, sens, eps)
	var total float64
	const trials = 4000
	for i := 0; i < trials; i++ {
		noisy, err := LaplaceMechanism(exact, sens, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range noisy {
			total += v * v
		}
	}
	got := total / trials
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("empirical SSE = %v, analytic %v", got, want)
	}
}

func TestLaplaceMechanismRejectsBadInput(t *testing.T) {
	src := rng.New(3)
	if _, err := LaplaceMechanism([]float64{1}, 1, 0, src); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := LaplaceMechanism([]float64{1}, -1, 1, src); err == nil {
		t.Fatal("negative sensitivity accepted")
	}
}

func TestLaplaceMechanismDoesNotMutateInput(t *testing.T) {
	src := rng.New(4)
	exact := []float64{5, 6}
	if _, err := LaplaceMechanism(exact, 1, 1, src); err != nil {
		t.Fatal(err)
	}
	if exact[0] != 5 || exact[1] != 6 {
		t.Fatal("input mutated")
	}
}

func TestComposition(t *testing.T) {
	if got := ComposeSequential(0.1, 0.2, 0.3); math.Abs(float64(got)-0.6) > 1e-12 {
		t.Fatalf("sequential = %v", float64(got))
	}
	if got := ComposeParallel(0.1, 0.5, 0.3); got != 0.5 {
		t.Fatalf("parallel = %v", float64(got))
	}
}
