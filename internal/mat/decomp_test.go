package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD returns a random symmetric positive definite n×n matrix.
func randSPD(rnd *rand.Rand, n int) *Dense {
	a := randDense(rnd, n+3, n)
	g := Gram(a)
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+0.5)
	}
	return g
}

func TestLUSolveVec(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	x, err := SolveVec(a, []float64{10, 12})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("SolveVec = %v, want [1 2]", x)
	}
}

func TestLUSolveRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randDense(rnd, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rnd.NormFloat64()
		}
		b := MulVec(a, want)
		got, err := SolveVec(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: solution mismatch at %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("FactorLU on singular matrix succeeded")
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{3, 8}, {4, 6}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Fatalf("Det = %v, want -14", got)
	}
}

func TestInverse(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	a := randDense(rnd, 12, 12)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, inv).EqualApprox(Eye(12), 1e-9) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestCholeskySolve(t *testing.T) {
	rnd := rand.New(rand.NewSource(37))
	for _, n := range []int{1, 3, 10, 40} {
		a := randSPD(rnd, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rnd.NormFloat64()
		}
		b := MulVec(a, want)
		c, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := c.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
		// L·Lᵀ must reconstruct A.
		l := c.L()
		if !Mul(l, l.T()).EqualApprox(a, 1e-8*FrobeniusNorm(a)) {
			t.Fatalf("n=%d: LLᵀ != A", n)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err == nil {
		t.Fatal("FactorCholesky accepted an indefinite matrix")
	}
}

func TestSolveRightSPD(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	a := randSPD(rnd, 6)
	b := randDense(rnd, 4, 6)
	x, err := SolveRightSPD(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(x, a).EqualApprox(b, 1e-8) {
		t.Fatal("X·A != B")
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system has exact solution.
	rnd := rand.New(rand.NewSource(43))
	a := randDense(rnd, 20, 6)
	want := make([]float64, 6)
	for i := range want {
		want[i] = rnd.NormFloat64()
	}
	b := MulVec(a, want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestQRResidualOrthogonal(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rnd := rand.New(rand.NewSource(47))
	a := randDense(rnd, 15, 4)
	b := make([]float64, 15)
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := VecSub(b, MulVec(a, x))
	proj := MulVecT(a, res)
	for i, v := range proj {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("Aᵀr[%d] = %v, want ~0", i, v)
		}
	}
}

func TestSVDReconstruct(t *testing.T) {
	rnd := rand.New(rand.NewSource(53))
	for _, dims := range [][2]int{{1, 1}, {5, 3}, {3, 5}, {20, 20}, {40, 17}, {17, 40}} {
		a := randDense(rnd, dims[0], dims[1])
		s := FactorSVD(a)
		if !s.Reconstruct().EqualApprox(a, 1e-9*math.Max(1, FrobeniusNorm(a))) {
			t.Fatalf("dims %v: UΣVᵀ != A", dims)
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rnd := rand.New(rand.NewSource(59))
	a := randDense(rnd, 12, 8)
	s := FactorSVD(a)
	if !Gram(s.U).EqualApprox(Eye(8), 1e-9) {
		t.Fatal("UᵀU != I")
	}
	if !Gram(s.V).EqualApprox(Eye(8), 1e-9) {
		t.Fatal("VᵀV != I")
	}
}

func TestSVDSortedNonnegative(t *testing.T) {
	rnd := rand.New(rand.NewSource(61))
	a := randDense(rnd, 10, 7)
	s := FactorSVD(a)
	for i, v := range s.S {
		if v < 0 {
			t.Fatalf("S[%d] = %v < 0", i, v)
		}
		if i > 0 && s.S[i] > s.S[i-1]+1e-12 {
			t.Fatalf("S not sorted: S[%d]=%v > S[%d]=%v", i, s.S[i], i-1, s.S[i-1])
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) has singular values exactly 3 and 2.
	a := Diag([]float64{3, 2})
	s := FactorSVD(a)
	if math.Abs(s.S[0]-3) > 1e-12 || math.Abs(s.S[1]-2) > 1e-12 {
		t.Fatalf("S = %v, want [3 2]", s.S)
	}
}

func TestRank(t *testing.T) {
	if got := Rank(Eye(5)); got != 5 {
		t.Fatalf("Rank(I5) = %d", got)
	}
	// Rank-2 matrix: outer product sum.
	rnd := rand.New(rand.NewSource(67))
	u := randDense(rnd, 10, 2)
	v := randDense(rnd, 2, 8)
	if got := Rank(Mul(u, v)); got != 2 {
		t.Fatalf("Rank of rank-2 product = %d", got)
	}
	if got := Rank(New(4, 4)); got != 0 {
		t.Fatalf("Rank(0) = %d", got)
	}
}

func TestPseudoInverseProperties(t *testing.T) {
	// Moore–Penrose conditions: A·A⁺·A = A and A⁺·A·A⁺ = A⁺.
	rnd := rand.New(rand.NewSource(71))
	for _, dims := range [][2]int{{8, 5}, {5, 8}, {6, 6}} {
		a := randDense(rnd, dims[0], dims[1])
		p := PseudoInverse(a)
		if !Mul(Mul(a, p), a).EqualApprox(a, 1e-8) {
			t.Fatalf("dims %v: A·A⁺·A != A", dims)
		}
		if !Mul(Mul(p, a), p).EqualApprox(p, 1e-8) {
			t.Fatalf("dims %v: A⁺·A·A⁺ != A⁺", dims)
		}
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	rnd := rand.New(rand.NewSource(73))
	u := randDense(rnd, 9, 3)
	v := randDense(rnd, 3, 7)
	a := Mul(u, v) // rank 3
	p := PseudoInverse(a)
	if !Mul(Mul(a, p), a).EqualApprox(a, 1e-7) {
		t.Fatal("rank-deficient A·A⁺·A != A")
	}
}

func TestSymEig(t *testing.T) {
	rnd := rand.New(rand.NewSource(79))
	for _, n := range []int{1, 2, 6, 25} {
		a := randSPD(rnd, n)
		e, err := FactorSymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Reconstruct().EqualApprox(a, 1e-8*math.Max(1, FrobeniusNorm(a))) {
			t.Fatalf("n=%d: VΛVᵀ != A", n)
		}
		if !Gram(e.Vectors).EqualApprox(Eye(n), 1e-9) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-10 {
				t.Fatalf("n=%d: eigenvalues not sorted", n)
			}
		}
	}
}

func TestSymEigKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}}) // eigenvalues 3 and 1
	e, err := FactorSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("Values = %v, want [3 1]", e.Values)
	}
}

func TestSqrtPSD(t *testing.T) {
	rnd := rand.New(rand.NewSource(83))
	a := randSPD(rnd, 8)
	s, err := SqrtPSD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(s, s).EqualApprox(a, 1e-7*FrobeniusNorm(a)) {
		t.Fatal("sqrt(A)² != A")
	}
}

func TestProjectPSD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	p, err := ProjectPSD(a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FactorSymEig(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v < 0.1-1e-9 {
			t.Fatalf("eigenvalue %v below floor", v)
		}
	}
}

func TestSpectralNormMatchesSVD(t *testing.T) {
	rnd := rand.New(rand.NewSource(89))
	a := randDense(rnd, 14, 9)
	want := FactorSVD(a).S[0]
	got := SpectralNorm(a)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("SpectralNorm = %v, SVD gives %v", got, want)
	}
}

// Property: SVD singular values are invariant under orthogonal column
// permutation of A, and scale linearly with scalar multiplication.
func TestSVDScaleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 2+r.Intn(8), 2+r.Intn(8)
		a := randDense(r, m, n)
		c := 0.5 + r.Float64()*3
		s1 := FactorSVD(a).S
		s2 := FactorSVD(Scale(c, a)).S
		for i := range s1 {
			if math.Abs(s2[i]-c*s1[i]) > 1e-8*(1+s1[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Frobenius norm equals the L2 norm of singular values.
func TestSVDFrobeniusProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a := randDense(r, m, n)
		s := FactorSVD(a).S
		var sum float64
		for _, v := range s {
			sum += v * v
		}
		return math.Abs(sum-SquaredSum(a)) < 1e-8*(1+sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
