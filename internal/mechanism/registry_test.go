package mechanism

import (
	"reflect"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	want := map[string]string{
		"lrm": "LRM", "lm": "LM", "nor": "NOR", "wm": "WM", "hm": "HM",
		"mm": "MM", "fpa": "FPA", "cm": "CM", "nf": "NF", "sf": "SF",
	}
	for short, label := range want {
		m, err := ByName(short, Config{})
		if err != nil {
			t.Fatalf("ByName(%q): %v", short, err)
		}
		if m.Name() != label {
			t.Fatalf("ByName(%q).Name() = %q, want %q", short, m.Name(), label)
		}
	}
	if _, err := ByName("nope", Config{}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestByNameUnknownListsRegistry: the error for a typo must name every
// registered mechanism, so CLI/server users can self-correct (and the
// planner's candidate validation stays self-documenting).
func TestByNameUnknownListsRegistry(t *testing.T) {
	_, err := ByName("lpm", Config{})
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"lpm"`) {
		t.Fatalf("error does not echo the bad name: %v", err)
	}
	for _, name := range Names() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list registered mechanism %q: %v", name, err)
		}
	}
}

func TestByNameConfig(t *testing.T) {
	m, err := ByName("fpa", Config{Coeffs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.(Fourier).K != 7 {
		t.Fatalf("fpa coeffs not applied: %+v", m)
	}
	m, err = ByName("cm", Config{Coeffs: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cm := m.(Compressive)
	if cm.Measurements != 9 || cm.Seed != 3 {
		t.Fatalf("cm config not applied: %+v", cm)
	}
	m, err = ByName("sf", Config{Coeffs: 4})
	if err != nil {
		t.Fatal(err)
	}
	sf := m.(Histogram)
	if !sf.StructureFirst || sf.Buckets != 4 {
		t.Fatalf("sf config not applied: %+v", sf)
	}
}

func TestNames(t *testing.T) {
	got := Names()
	want := []string{"cm", "fpa", "hm", "lm", "lrm", "mm", "nf", "nor", "sf", "wm"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}
