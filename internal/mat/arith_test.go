package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mulNaive is an obviously-correct reference product for testing Mul.
func mulNaive(a, b *Dense) *Dense {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	sum := Add(a, b)
	if !sum.Equal(FromRows([][]float64{{6, 8}, {10, 12}})) {
		t.Fatalf("Add = %v", sum)
	}
	diff := Sub(sum, b)
	if !diff.Equal(a) {
		t.Fatalf("Sub(Add(a,b),b) != a: %v", diff)
	}
}

func TestAddDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestScale(t *testing.T) {
	a := FromRows([][]float64{{1, -2}})
	if got := Scale(-3, a); !got.Equal(FromRows([][]float64{{-3, 6}})) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	a := FromRows([][]float64{{1, 1}})
	b := FromRows([][]float64{{2, 3}})
	if got := AddScaled(a, 2, b); !got.Equal(FromRows([][]float64{{5, 7}})) {
		t.Fatalf("AddScaled = %v", got)
	}
}

func TestElemMul(t *testing.T) {
	a := FromRows([][]float64{{2, 3}})
	b := FromRows([][]float64{{4, 5}})
	if got := ElemMul(a, b); !got.Equal(FromRows([][]float64{{8, 15}})) {
		t.Fatalf("ElemMul = %v", got)
	}
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulMatchesNaive(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {10, 4, 9}, {64, 33, 70}, {130, 120, 110}} {
		a := randDense(rnd, dims[0], dims[1])
		b := randDense(rnd, dims[1], dims[2])
		got := Mul(a, b)
		want := mulNaive(a, b)
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("Mul mismatch for dims %v", dims)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	a := randDense(rnd, 9, 9)
	if !Mul(a, Eye(9)).EqualApprox(a, 1e-14) {
		t.Fatal("A·I != A")
	}
	if !Mul(Eye(9), a).EqualApprox(a, 1e-14) {
		t.Fatal("I·A != A")
	}
}

func TestMulABt(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	a := randDense(rnd, 6, 8)
	b := randDense(rnd, 5, 8)
	if got, want := MulABt(a, b), Mul(a, b.T()); !got.EqualApprox(want, 1e-12) {
		t.Fatal("MulABt != Mul(a, b.T())")
	}
}

func TestMulAtB(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	a := randDense(rnd, 8, 6)
	b := randDense(rnd, 8, 5)
	if got, want := MulAtB(a, b), Mul(a.T(), b); !got.EqualApprox(want, 1e-12) {
		t.Fatal("MulAtB != Mul(a.T(), b)")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := MulVec(a, []float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulVecT(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	a := randDense(rnd, 5, 7)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rnd.NormFloat64()
	}
	got := MulVecT(a, x)
	want := MulVec(a.T(), x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVecT mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestGram(t *testing.T) {
	rnd := rand.New(rand.NewSource(19))
	a := randDense(rnd, 7, 4)
	if got, want := Gram(a), Mul(a.T(), a); !got.EqualApprox(want, 1e-12) {
		t.Fatal("Gram != AᵀA")
	}
	if got, want := GramT(a), Mul(a, a.T()); !got.EqualApprox(want, 1e-12) {
		t.Fatal("GramT != AAᵀ")
	}
}

func TestDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Dot(a, b); got != 5+12+21+32 {
		t.Fatalf("Dot = %v", got)
	}
}

// Property: matrix multiplication is associative and distributes over
// addition (up to roundoff), exercised on random small matrices.
func TestMulPropertyBased(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	rnd := rand.New(rand.NewSource(23))
	assoc := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b, c := randDense(rnd, m, k), randDense(rnd, k, n), randDense(rnd, n, p)
		lhs := Mul(Mul(a, b), c)
		rhs := Mul(a, Mul(b, c))
		return lhs.EqualApprox(rhs, 1e-9)
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
	distrib := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randDense(rnd, m, k)
		b, c := randDense(rnd, k, n), randDense(rnd, k, n)
		lhs := Mul(a, Add(b, c))
		rhs := Add(Mul(a, b), Mul(a, c))
		return lhs.EqualApprox(rhs, 1e-9)
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(29))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a, b := randDense(rnd, m, k), randDense(rnd, k, n)
		return Mul(a, b).T().EqualApprox(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
