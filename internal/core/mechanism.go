package core

import (
	"errors"
	"fmt"
	"sync"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
)

// Mechanism is the Low-Rank Mechanism of Eq. (6): given W ≈ B·L, release
//
//	M(Q,D) = B·(L·x + Lap(Δ(B,L)/ε)^r)
//
// which satisfies ε-differential privacy because L·x is a linear query
// batch of sensitivity Δ(B,L) and post-processing by B is free.
type Mechanism struct {
	d *Decomposition
	// delta caches Δ(B,L): the decomposition is immutable once wrapped,
	// and recomputing the column scan on every Answer call would dominate
	// the O(r·(n+m)) answering cost itself.
	delta float64
	// scratch pools the r-length intermediate buffer so concurrent
	// Answer calls (the evaluation harness fans trials across goroutines)
	// each reuse one instead of allocating twice per call.
	scratch sync.Pool
}

// NewMechanism wraps a decomposition as a query-answering mechanism. The
// decomposition must not be mutated afterwards (its sensitivity is
// cached).
func NewMechanism(d *Decomposition) (*Mechanism, error) {
	if d == nil || d.B == nil || d.L == nil {
		return nil, errors.New("core: nil decomposition")
	}
	if d.B.Cols() != d.L.Rows() {
		return nil, fmt.Errorf("core: decomposition shape mismatch %d×%d · %d×%d",
			d.B.Rows(), d.B.Cols(), d.L.Rows(), d.L.Cols())
	}
	r := d.L.Rows()
	m := &Mechanism{d: d, delta: d.Sensitivity()}
	m.scratch.New = func() any {
		buf := make([]float64, r)
		return &buf
	}
	return m, nil
}

// Answer releases ε-differentially-private answers to the workload on the
// histogram x. The only per-call allocation is the returned answer slice.
func (m *Mechanism) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.d.L.Cols() {
		return nil, fmt.Errorf("core: data length %d != domain %d", len(x), m.d.L.Cols())
	}
	bufp := m.scratch.Get().(*[]float64)
	y := *bufp // L·x, then its noisy release, r-length
	mat.MulVecTo(y, m.d.L, x)
	if err := privacy.AddLaplaceNoise(y, m.delta, eps, src); err != nil {
		m.scratch.Put(bufp)
		return nil, err
	}
	out := mat.MulVecTo(make([]float64, m.d.B.Rows()), m.d.B, y)
	m.scratch.Put(bufp)
	return out, nil
}

// AnswerMany releases ε-differentially-private answers for a whole batch
// of histograms at once: x is n×B with one histogram per column, and the
// result is m×B with the corresponding releases as columns. The two
// dense products run as packed multi-RHS GEMMs (mat.MulColsTo) instead
// of 2·B mat-vecs — the low-rank factors are packed once per batch and
// streamed through register-blocked kernels — which is where the
// mechanism's batch framing pays off at serving scale.
//
// The Laplace perturbation is fused into the first product: the noise
// block is pre-drawn from the sequential stream and mixed into y = L·x
// inside the GEMM's own output tiles (noiseFusedProduct), so the
// intermediate is swept exactly once instead of getting a second
// gather/noise/scatter pass after the product.
//
// The release is bit-identical to calling Answer on each column in
// ascending order with the same source: MulColsTo guarantees column-exact
// products, the noise is drawn column by column in the same order the
// loop would draw it, and each fused addition y[i][j] + noise[i][j] is
// the same two operands the loop would add.
func (m *Mechanism) AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if x == nil || x.Rows() != m.d.L.Cols() {
		rows := -1
		if x != nil {
			rows = x.Rows()
		}
		return nil, fmt.Errorf("core: data matrix has %d rows, domain is %d", rows, m.d.L.Cols())
	}
	if x.Cols() == 0 {
		return nil, errors.New("core: AnswerMany with no data columns")
	}
	cols := x.Cols()
	y := mat.New(m.d.L.Rows(), cols)
	if err := m.noiseFusedProduct(y, x, eps, src); err != nil {
		return nil, err
	}
	return mat.MulColsTo(mat.New(m.d.B.Rows(), cols), m.d.B, y), nil
}

// noiseFusedProduct computes y = L·x and perturbs every element with
// Laplace noise of scale Δ(B,L)/ε in one pass: the noise block is drawn
// up front — column by column in ascending order, exactly the draw
// sequence a loop of per-column Answer calls sharing one source would
// produce, which the bit-identity contract with Answer requires — and
// added inside the GEMM's per-tile epilogue while each output block is
// still cache-hot. The epilogue touches disjoint rectangles exactly once
// each and adds values that do not depend on tile order, so the result
// is bit-identical across worker counts and kernel families, per the
// MulColsEpiTo contract.
//
// The noise buffer is column-major (column j at noise[j·r : (j+1)·r]) so
// each pre-draw fills a contiguous slice in stream order.
//
//lrm:sanitizer y — every element of y is Laplace-perturbed before return
func (m *Mechanism) noiseFusedProduct(y, x *mat.Dense, eps privacy.Epsilon, src *rng.Source) error {
	r, cols := y.Rows(), y.Cols()
	noise := make([]float64, r*cols)
	for j := 0; j < cols; j++ {
		if err := privacy.DrawLaplaceNoise(noise[j*r:(j+1)*r], m.delta, eps, src); err != nil {
			return err
		}
	}
	yd, yc := y.RawData(), y.Cols()
	mat.MulColsEpiTo(y, m.d.L, x, func(r0, r1, c0, c1 int) {
		for i := r0; i < r1; i++ {
			row := yd[i*yc : i*yc+yc]
			for j := c0; j < c1; j++ {
				row[j] += noise[j*r+i]
			}
		}
	})
	return nil
}

// ExpectedSSE returns the analytic expected sum of squared errors
// (Lemma 1), excluding structural error from a relaxed decomposition.
func (m *Mechanism) ExpectedSSE(eps privacy.Epsilon) float64 {
	return m.d.ExpectedSSE(float64(eps))
}

// Decomposition returns the underlying factorization.
func (m *Mechanism) Decomposition() *Decomposition { return m.d }
