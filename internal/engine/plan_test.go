package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// newPlannedEngine builds a plan-aware engine (bypassing newTestEngine,
// which would force a fixed mechanism).
func newPlannedEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.Planner == nil {
		opts.Planner = &plan.Options{LRM: fastOpts()}
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func plannedRequest(w *workload.Workload, seed int64) Request {
	return Request{
		Workload:   w,
		Histograms: [][]float64{testHistogram(w.Domain(), 40)},
		Eps:        0.5,
		Seed:       seed,
	}
}

// TestPlannedEngineLowRank: a plan-aware engine serves a low-rank
// workload through an LRM plan, plans it exactly once across repeat
// requests, and surfaces the decision.
func TestPlannedEngineLowRank(t *testing.T) {
	e := newPlannedEngine(t, Options{})
	w := testWorkload(1) // Related 12×16 rank 3: the low-rank regime
	for i := 0; i < 3; i++ {
		if _, err := e.Answer(plannedRequest(w, 7)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Planned != 1 || st.Prepares != 1 {
		t.Fatalf("planned %d prepares %d, want 1/1 (stats %+v)", st.Planned, st.Prepares, st)
	}
	if st.Hits != 2 {
		t.Fatalf("hits %d, want 2", st.Hits)
	}
	ds := e.Decisions()
	if len(ds) != 1 || ds[0].Mechanism != "lrm" {
		t.Fatalf("decisions %+v, want one lrm plan", ds)
	}
	if ds[0].Digest == "" || !strings.Contains(ds[0].Summary, "lrm") {
		t.Fatalf("decision not explained: %+v", ds[0])
	}
}

// TestPlannedEngineFullRank: a full-rank workload is served by the
// Section-3.2 baseline, not the LRM.
func TestPlannedEngineFullRank(t *testing.T) {
	e := newPlannedEngine(t, Options{})
	w := workload.Identity(10)
	if _, err := e.Answer(plannedRequest(w, 3)); err != nil {
		t.Fatal(err)
	}
	ds := e.Decisions()
	if len(ds) != 1 || ds[0].Mechanism == "lrm" {
		t.Fatalf("full-rank workload planned %+v, want a baseline", ds)
	}
}

// TestPlannedEngineDiskRestore: a second engine sharing the cache
// directory restores the plan AND the decomposition — zero planner runs,
// zero prepares, zero factorizations — and answers bit-for-bit at the
// same seed.
func TestPlannedEngineDiskRestore(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(2)
	req := plannedRequest(w, 11)

	e1 := newPlannedEngine(t, Options{CacheDir: dir})
	out1, err := e1.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats(); st.Planned != 1 || st.DiskWrites != 1 {
		t.Fatalf("first engine stats %+v, want 1 plan, 1 disk write", st)
	}
	if ds := e1.Decisions(); len(ds) != 1 || ds[0].Mechanism != "lrm" {
		t.Fatalf("first engine decisions %+v", ds)
	}

	e2 := newPlannedEngine(t, Options{CacheDir: dir})
	before := mat.SVDCalls()
	out2, err := e2.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := mat.SVDCalls() - before; got != 0 {
		t.Fatalf("disk restore ran %d factorizations, want 0", got)
	}
	st := e2.Stats()
	if st.Planned != 0 || st.Prepares != 0 || st.DiskHits != 1 {
		t.Fatalf("restore stats %+v, want 0 planned, 0 prepares, 1 disk hit", st)
	}
	if len(out1) != len(out2) || len(out1[0]) != len(out2[0]) {
		t.Fatalf("answer shapes differ: %d×%d vs %d×%d", len(out1), len(out1[0]), len(out2), len(out2[0]))
	}
	for i := range out1[0] {
		if out1[0][i] != out2[0][i] {
			t.Fatalf("restored engine answers differ at %d: %g vs %g", i, out1[0][i], out2[0][i])
		}
	}
	// The restored decision is resident and surfaced like a fresh one.
	if ds := e2.Decisions(); len(ds) != 1 || ds[0].Mechanism != "lrm" {
		t.Fatalf("restored decisions %+v", ds)
	}
}

// TestPlannedEngineDiskRestoreBaselineWinner: a baseline decision (no
// decomposition file) restores from the plan document alone.
func TestPlannedEngineDiskRestoreBaselineWinner(t *testing.T) {
	dir := t.TempDir()
	w := workload.Identity(8)
	req := plannedRequest(w, 5)

	e1 := newPlannedEngine(t, Options{CacheDir: dir})
	if _, err := e1.Answer(req); err != nil {
		t.Fatal(err)
	}
	winner := e1.Decisions()[0].Mechanism
	if winner == "lrm" {
		t.Fatalf("test premise broken: identity planned lrm")
	}

	e2 := newPlannedEngine(t, Options{CacheDir: dir})
	if _, err := e2.Answer(req); err != nil {
		t.Fatal(err)
	}
	st := e2.Stats()
	if st.Planned != 0 || st.DiskHits != 1 {
		t.Fatalf("baseline restore stats %+v, want 0 planned, 1 disk hit", st)
	}
	if got := e2.Decisions()[0].Mechanism; got != winner {
		t.Fatalf("restored winner %q, want %q", got, winner)
	}
}

// TestPlannedEngineCorruptPlanDocument: a truncated document must fall
// back to a fresh plan, not fail the request.
func TestPlannedEngineCorruptPlanDocument(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(3)
	req := plannedRequest(w, 9)

	e1 := newPlannedEngine(t, Options{CacheDir: dir})
	if _, err := e1.Answer(req); err != nil {
		t.Fatal(err)
	}
	docs, err := filepath.Glob(filepath.Join(dir, "*.plan.json"))
	if err != nil || len(docs) != 1 {
		t.Fatalf("plan documents %v (err %v), want one", docs, err)
	}
	if err := os.WriteFile(docs[0], []byte(`{"mechanism":`), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := newPlannedEngine(t, Options{CacheDir: dir})
	if _, err := e2.Answer(req); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.Planned != 1 || st.DiskHits != 0 {
		t.Fatalf("corrupt-doc stats %+v, want a fresh plan and no disk hit", st)
	}
}

// TestPlannedEngineSharded: with row sharding, every shard gets its own
// plan under its own fingerprint.
func TestPlannedEngineSharded(t *testing.T) {
	e := newPlannedEngine(t, Options{ShardRows: 5})
	w := testWorkload(4) // 12 queries → 3 shards of ≤5 rows
	if _, err := e.Answer(plannedRequest(w, 13)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Sharded != 1 {
		t.Fatalf("sharded %d, want 1", st.Sharded)
	}
	if st.Planned != 3 {
		t.Fatalf("planned %d, want one plan per shard (3)", st.Planned)
	}
	if ds := e.Decisions(); len(ds) != 3 {
		t.Fatalf("decisions %+v, want 3", ds)
	}
}

// TestPlannerMechanismExclusive: setting both a fixed mechanism and a
// planner is a configuration error.
func TestPlannerMechanismExclusive(t *testing.T) {
	_, err := New(Options{Mechanism: mechanism.LRM{}, Planner: &plan.Options{}})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
}

// TestPlannedEngineBudget: plan-aware serving keeps the per-request
// budget semantics.
func TestPlannedEngineBudget(t *testing.T) {
	e := newPlannedEngine(t, Options{})
	w := testWorkload(5)
	req := Request{
		Workload:   w,
		Histograms: [][]float64{testHistogram(w.Domain(), 1), testHistogram(w.Domain(), 2)},
		Eps:        0.5,
		Budget:     privacy.Epsilon(0.6), // 2×0.5 > 0.6
		Seed:       1,
	}
	if _, err := e.Answer(req); err == nil {
		t.Fatal("over-budget planned request succeeded")
	}
}

// TestPlannedEngineSingleFactorizationEndToEnd is the serving-layer form
// of the tentpole pin: one cold request on a plan-aware engine = exactly
// one factorization of W (the planner's analysis SVD, reused by the
// LRM's PrepareAnalyzed).
func TestPlannedEngineSingleFactorizationEndToEnd(t *testing.T) {
	e := newPlannedEngine(t, Options{})
	w := workload.Related(16, 20, 3, rng.New(77))
	before := mat.SVDCalls()
	if _, err := e.Answer(plannedRequest(w, 21)); err != nil {
		t.Fatal(err)
	}
	if got := mat.SVDCalls() - before; got != 1 {
		t.Fatalf("cold planned request ran %d factorizations, want exactly 1", got)
	}
	if ds := e.Decisions(); len(ds) != 1 || ds[0].Mechanism != "lrm" {
		t.Fatalf("decisions %+v, want lrm", ds)
	}
}
