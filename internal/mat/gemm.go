package mat

import "sync/atomic"

// Cache-blocked packed GEMM. Every dense product in the package (Mul,
// MulABt, MulAtB, Gram, GramT) funnels into gemmMain, which:
//
//  1. packs the right-hand operand once per product into gemmNR-wide
//     column panels (contiguous k-major strips, so the micro-kernel
//     streams B with unit stride regardless of the operand's original
//     orientation — including transposed views, which pack for free),
//  2. walks a fixed grid of gemmTileRows×gemmTileCols output tiles whose
//     working set (one packed panel + gemmMR operand rows) stays L1/L2
//     resident, and
//  3. computes each tile with a register-blocked micro-kernel, chosen
//     per product shape from the kernel-family dispatch table
//     (gemmdispatch.go): the AVX-512 8×8 kernel on capable amd64
//     machines (gemm_avx512_amd64.s), the AVX2+FMA 4×8 kernel
//     (gemm_amd64.s), the NEON 4×8 kernel on arm64 (gemm_arm64.s), or
//     scalar 4×4 blocks when no assembly tier applies.
//
// The left operand is addressed through an aView — two element strides
// over the backing slice — so one driver serves A, Aᵀ (MulAtB, Gram) and
// the symmetric kernels without materializing a transpose.
//
// Determinism: the panel/tile grid and the kernel choice are pure
// functions of the operand shapes, each output element is written by
// exactly one tile, and every kernel accumulates in ascending k. Results
// are therefore bit-identical whether the tile grid runs serially or on
// any number of pool workers — the property the serial-vs-parallel
// equality tests pin.

const (
	gemmMR       = 4   // 4-row micro-kernel rows
	gemmMR8      = 8   // 8-row micro-kernel rows (the AVX-512 tier)
	gemmNR       = 8   // packed panel width (micro-kernel cols)
	gemmTileRows = 64  // output rows per scheduler tile (multiple of gemmMR8)
	gemmTileCols = 256 // output cols per scheduler tile (multiple of gemmNR)
	packChunk    = 16  // panels packed per scheduler tile
)

// aView addresses the left GEMM operand: element A(i,t) of the m×k
// operand lives at data[i*row + t*k]. (row=cols, k=1) walks a row-major
// matrix; (row=1, k=cols) walks its transpose in place.
type aView struct {
	data []float64
	row  int
	k    int
}

// packPanel packs panel p of the k×n right operand into dst. The operand
// is addressed as B(t,j) = src[t*rowStride + j*colStride], so a
// transposed right operand (MulABt, GramT) packs by passing swapped
// strides. Partial trailing panels are zero-padded to gemmNR so the
// micro-kernels never branch on width.
//
//lrm:noalloc — packs into the pooled panel buffer, called per tile
func packPanel(dst, src []float64, k, n, rowStride, colStride, p int) {
	j0 := p * gemmNR
	pw := n - j0
	if pw > gemmNR {
		pw = gemmNR
	}
	o := p * k * gemmNR
	if colStride == 1 && pw == gemmNR {
		for t := 0; t < k; t++ {
			base := t*rowStride + j0
			copy(dst[o:o+gemmNR], src[base:base+gemmNR])
			o += gemmNR
		}
		return
	}
	for t := 0; t < k; t++ {
		base := t*rowStride + j0*colStride
		for jj := 0; jj < pw; jj++ {
			dst[o+jj] = src[base+jj*colStride]
		}
		for jj := pw; jj < gemmNR; jj++ {
			dst[o+jj] = 0
		}
		o += gemmNR
	}
}

// gemmAsmKernel is the signature of the assembly micro-kernels (4×8 and
// 8×8 alike: the row count is the caller's contract, not the type's).
type gemmAsmKernel = func(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)

// TileEpilogue is a hook gemmMain runs once per scheduler tile, after
// the tile's output block is fully computed, with the tile's rectangle
// [r0,r1)×[c0,c1) in output coordinates. The grid partitions the output,
// so across a product the hook observes every element exactly once; it
// runs on whichever goroutine computed the tile, so it must be safe to
// call concurrently for disjoint rectangles. Because each element's
// value never depends on when its tile's epilogue runs, a per-element
// epilogue op keeps the bit-identical-across-worker-counts guarantee.
//
// This is the fusion point for answer-path noise: AnswerMany's Laplace
// perturbation of the intermediate runs inside the producing GEMM's
// tiles (see MulColsEpiTo) instead of as a second sweep over the matrix.
type TileEpilogue func(r0, r1, c0, c1 int)

// fusedEpilogueRuns counts gemmMain products that ran with a fused tile
// epilogue. Tests (and the CI fused-epilogue gate) difference it to
// prove the one-pass claim: the noise pass happened inside the GEMM, not
// as a separate sweep.
var fusedEpilogueRuns atomic.Uint64

// FusedEpilogueRuns returns the cumulative number of GEMM products
// computed with a fused tile epilogue in this process. The counter never
// resets.
func FusedEpilogueRuns() uint64 { return fusedEpilogueRuns.Load() }

// gemmMain computes dst = A·B (overwriting dst, which must be m×n with
// contiguous rows): A is the aView, B is addressed as
// B(t,j) = bdata[t*bRow + j*bCol]. With upperOnly, tiles strictly below
// the diagonal are skipped and per-panel row ranges are clipped to the
// triangle — callers mirror the result (the symmetric Gram kernels).
//
// colExact selects the kernel family. The default (false) uses the
// fastest available micro-kernel — AVX2+FMA where the hardware supports
// it. colExact swaps in the mul+add assembly kernel (or the scalar
// kernels, which already round that way): every output element is then
// accumulated with a separate multiply and add in ascending k — the
// exact operation sequence of a MulVecTo dot product — so each result
// column is bit-identical to the matrix-vector product of that column
// (the MulColsTo guarantee), which the FMA kernel's fused rounding would
// break.
//
// epi, when non-nil, runs once per scheduler tile after the tile's
// output rectangle is complete (see TileEpilogue). Epilogues are not
// supported on the triangular (upperOnly) grids — no caller needs them
// there and the clipped per-panel row ranges would make the rectangle
// a lie.
//
// Products below parallelThreshold run the identical tile grid inline on
// the calling goroutine (no closures, no allocations — the ALM inner
// loop's zero-alloc pin depends on this); larger ones draw tiles from
// the persistent pool.
func gemmMain(dst *Dense, m, n, k int, av aView, bdata []float64, bRow, bCol int, upperOnly, colExact bool, epi TileEpilogue) {
	if epi != nil {
		if upperOnly {
			panic("mat: tile epilogue on a triangular grid")
		}
		fusedEpilogueRuns.Add(1)
	}
	if m <= 0 || n <= 0 {
		return
	}
	if k <= 0 {
		zero(dst.data)
		if epi != nil {
			epi(0, m, 0, n)
		}
		return
	}
	nPanels := (n + gemmNR - 1) / gemmNR
	packed := getPackBuf(nPanels * k * gemmNR)
	parallel := !serialWork(m * n * k)
	if parallel {
		chunks := (nPanels + packChunk - 1) / packChunk
		forEachTile(chunks, func(c int) {
			hi := min((c+1)*packChunk, nPanels)
			for p := c * packChunk; p < hi; p++ {
				packPanel(packed, bdata, k, n, bRow, bCol, p)
			}
		})
	} else {
		for p := 0; p < nPanels; p++ {
			packPanel(packed, bdata, k, n, bRow, bCol, p)
		}
	}

	tilePanels := gemmTileCols / gemmNR
	tR := (m + gemmTileRows - 1) / gemmTileRows
	tC := (nPanels + tilePanels - 1) / tilePanels
	cd, ldc := dst.data, dst.cols
	sel := selectKernels(m, n, k, colExact)
	if parallel {
		forEachTile(tR*tC, func(t int) {
			gemmTileRun(t, cd, ldc, m, n, k, av, packed, upperOnly, tC, sel, epi)
		})
	} else {
		for t := 0; t < tR*tC; t++ {
			gemmTileRun(t, cd, ldc, m, n, k, av, packed, upperOnly, tC, sel, epi)
		}
	}
	putPackBuf(packed)
}

// gemmTileRun computes scheduler tile t of the fixed grid: output rows
// [r0,r1) × panels [p0,p1). sel holds the selected assembly kernels —
// kern8 for 8-row blocks (the AVX-512 tier), kern4 for 4-row blocks —
// or nils to use the scalar kernels throughout. Row ranges shorter than
// a kernel's height fall through to the next narrower kernel of the same
// rounding class, so which rows run fused-FMA vs scalar arithmetic is a
// function of the shape alone, identical in every asm family — the
// property that keeps measured family dispatch bit-stable. epi, when
// non-nil, runs after the tile completes with its output rectangle.
//
//lrm:noalloc — the kernel dispatch: one scheduler tile, stack state only
func gemmTileRun(t int, cd []float64, ldc, m, n, k int, av aView, packed []float64, upperOnly bool, tC int, sel kernelSel, epi TileEpilogue) {
	tilePanels := gemmTileCols / gemmNR
	nPanels := (n + gemmNR - 1) / gemmNR
	r0 := (t / tC) * gemmTileRows
	r1 := min(r0+gemmTileRows, m)
	p0 := (t % tC) * tilePanels
	p1 := min(p0+tilePanels, nPanels)
	if upperOnly && min(p1*gemmNR, n) <= r0 {
		return // every column of this tile is left of the diagonal
	}
	for p := p0; p < p1; p++ {
		j0 := p * gemmNR
		pw := n - j0
		if pw > gemmNR {
			pw = gemmNR
		}
		rLim := r1
		if upperOnly {
			if lim := j0 + pw; lim < rLim {
				rLim = lim // rows below the panel's last column are sub-diagonal
			}
			if rLim <= r0 {
				continue
			}
		}
		pOff := p * k * gemmNR
		i := r0
		if pw == gemmNR {
			if rLim-r0 >= gemmMR8 && sel.kern8 != nil {
				for ; i+gemmMR8 <= rLim; i += gemmMR8 {
					sel.kern8(int64(k),
						&av.data[i*av.row], int64(av.row*8), int64(av.k*8),
						&packed[pOff], gemmNR*8,
						&cd[i*ldc+j0], int64(ldc*8))
				}
				if i < rLim {
					// Row tail: rerun the full micro-kernel on the last
					// gemmMR8 rows. The overlapped rows are rewritten
					// with bit-identical values (same panel, same
					// k-order, same goroutine), which is far cheaper
					// than an elementwise tail.
					i = rLim - gemmMR8
					sel.kern8(int64(k),
						&av.data[i*av.row], int64(av.row*8), int64(av.k*8),
						&packed[pOff], gemmNR*8,
						&cd[i*ldc+j0], int64(ldc*8))
					i = rLim
				}
			} else if rLim-r0 >= gemmMR {
				if sel.kern4 != nil {
					for ; i+gemmMR <= rLim; i += gemmMR {
						sel.kern4(int64(k),
							&av.data[i*av.row], int64(av.row*8), int64(av.k*8),
							&packed[pOff], gemmNR*8,
							&cd[i*ldc+j0], int64(ldc*8))
					}
					if i < rLim {
						// Same rerun trick at 4-row height.
						i = rLim - gemmMR
						sel.kern4(int64(k),
							&av.data[i*av.row], int64(av.row*8), int64(av.k*8),
							&packed[pOff], gemmNR*8,
							&cd[i*ldc+j0], int64(ldc*8))
						i = rLim
					}
				} else {
					for ; i+gemmMR <= rLim; i += gemmMR {
						gemmScalar4x4(k, av.data, i*av.row, av.row, av.k, packed, pOff, cd, i*ldc+j0, ldc)
						gemmScalar4x4(k, av.data, i*av.row, av.row, av.k, packed, pOff+4, cd, i*ldc+j0+4, ldc)
					}
					if i < rLim {
						i = rLim - gemmMR
						gemmScalar4x4(k, av.data, i*av.row, av.row, av.k, packed, pOff, cd, i*ldc+j0, ldc)
						gemmScalar4x4(k, av.data, i*av.row, av.row, av.k, packed, pOff+4, cd, i*ldc+j0+4, ldc)
						i = rLim
					}
				}
			} else {
				// Fewer than gemmMR rows in the whole range: 1×8 blocks.
				for ; i < rLim; i++ {
					gemmScalarRow8(k, av.data, i*av.row, av.k, packed, pOff, cd, i*ldc+j0)
				}
			}
		}
		if i < rLim {
			gemmScalarTail(k, av.data, i*av.row, av.row, av.k, packed, pOff, cd, i*ldc+j0, ldc, rLim-i, pw)
		}
	}
	if epi != nil {
		c1 := p1 * gemmNR
		if c1 > n {
			c1 = n
		}
		epi(r0, r1, p0*gemmNR, c1)
	}
}

// gemmScalar4x4 is the portable micro-kernel: a 4×4 register block over
// four panel columns starting at bpOff (panel stride is gemmNR). Like the
// assembly kernel it overwrites its output block and accumulates each
// element in ascending k.
//
//lrm:noalloc — register-blocked micro-kernel
func gemmScalar4x4(k int, ad []float64, a0, aRow, aK int, bp []float64, bpOff int, cd []float64, c0, ldc int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	ai0, ai1, ai2, ai3 := a0, a0+aRow, a0+2*aRow, a0+3*aRow
	bo := bpOff
	for t := 0; t < k; t++ {
		b0, b1, b2, b3 := bp[bo], bp[bo+1], bp[bo+2], bp[bo+3]
		bo += gemmNR
		av := ad[ai0]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = ad[ai1]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = ad[ai2]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = ad[ai3]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
		ai0 += aK
		ai1 += aK
		ai2 += aK
		ai3 += aK
	}
	cd[c0], cd[c0+1], cd[c0+2], cd[c0+3] = c00, c01, c02, c03
	c0 += ldc
	cd[c0], cd[c0+1], cd[c0+2], cd[c0+3] = c10, c11, c12, c13
	c0 += ldc
	cd[c0], cd[c0+1], cd[c0+2], cd[c0+3] = c20, c21, c22, c23
	c0 += ldc
	cd[c0], cd[c0+1], cd[c0+2], cd[c0+3] = c30, c31, c32, c33
}

// gemmScalarRow8 computes one output row against a full panel: 8
// accumulators, ascending k. It serves matrices shorter than gemmMR rows.
//
//lrm:noalloc — register-blocked micro-kernel
func gemmScalarRow8(k int, ad []float64, a0, aK int, bp []float64, bpOff int, cd []float64, c0 int) {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	at := a0
	bo := bpOff
	for t := 0; t < k; t++ {
		av := ad[at]
		at += aK
		s0 += av * bp[bo]
		s1 += av * bp[bo+1]
		s2 += av * bp[bo+2]
		s3 += av * bp[bo+3]
		s4 += av * bp[bo+4]
		s5 += av * bp[bo+5]
		s6 += av * bp[bo+6]
		s7 += av * bp[bo+7]
		bo += gemmNR
	}
	cd[c0] = s0
	cd[c0+1] = s1
	cd[c0+2] = s2
	cd[c0+3] = s3
	cd[c0+4] = s4
	cd[c0+5] = s5
	cd[c0+6] = s6
	cd[c0+7] = s7
}

// gemmScalarTail handles the leftovers — partial trailing panels — one
// element at a time, ascending k.
//
//lrm:noalloc — element-at-a-time tail kernel
func gemmScalarTail(k int, ad []float64, a0, aRow, aK int, bp []float64, bpOff int, cd []float64, c0, ldc, rows, cols int) {
	for i := 0; i < rows; i++ {
		ao := a0 + i*aRow
		co := c0 + i*ldc
		for j := 0; j < cols; j++ {
			var s float64
			at := ao
			bo := bpOff + j
			for t := 0; t < k; t++ {
				s += ad[at] * bp[bo]
				at += aK
				bo += gemmNR
			}
			cd[co+j] = s
		}
	}
}

// mirrorLower copies the strictly-upper triangle of the square matrix
// into the strictly-lower one (the symmetric kernels compute only j ≥ i).
func mirrorLower(out *Dense) {
	n := out.cols
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out.data[j*n+i] = out.data[i*n+j]
		}
	}
}
