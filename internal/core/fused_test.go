package core

import (
	"testing"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestAnswerManyFusedOnePass pins the fused-noise property of AnswerMany:
// the Laplace perturbation of the intermediate y = L·x happens inside the
// first GEMM's per-tile epilogue (exactly one fused product per call) and
// never as a separate AddLaplaceNoise sweep over y afterwards. The
// counters are process-wide, so the deltas are measured around the call.
func TestAnswerManyFusedOnePass(t *testing.T) {
	w := workload.Related(12, 40, 3, rng.New(9))
	m, _ := testMechanism(t, w.W)
	for _, batch := range []int{1, 8, 64} {
		x := mat.New(40, batch)
		for j := 0; j < batch; j++ {
			x.SetCol(j, rng.New(int64(batch+j)).UniformVec(40, 0, 20))
		}
		epiBefore := mat.FusedEpilogueRuns()
		sweepsBefore := privacy.NoiseSweeps()
		if _, err := m.AnswerMany(x, 1, rng.New(42)); err != nil {
			t.Fatalf("B=%d: %v", batch, err)
		}
		if d := mat.FusedEpilogueRuns() - epiBefore; d != 1 {
			t.Fatalf("B=%d: %d fused-epilogue products, want exactly 1 (noise fused into the first GEMM only)", batch, d)
		}
		if d := privacy.NoiseSweeps() - sweepsBefore; d != 0 {
			t.Fatalf("B=%d: %d separate noise sweeps over the intermediate, want 0 — noise must ride the GEMM epilogue", batch, d)
		}
	}
}

// TestAnswerManyFusedMatchesLoop repeats the bit-identity contract at the
// core layer with a batch wide enough to span multiple scheduler tiles in
// both GEMM dimensions, so the fused epilogue's tile-order-independent
// addition is exercised across rectangle boundaries.
func TestAnswerManyFusedMatchesLoop(t *testing.T) {
	w := workload.Related(20, 300, 4, rng.New(11))
	m, _ := testMechanism(t, w.W)
	const batch = 70
	x := mat.New(300, batch)
	for j := 0; j < batch; j++ {
		x.SetCol(j, rng.New(int64(100+j)).UniformVec(300, 0, 20))
	}
	got, err := m.AnswerMany(x, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	loopSrc := rng.New(5)
	want := mat.New(got.Rows(), batch)
	col := make([]float64, 300)
	for j := 0; j < batch; j++ {
		for i := 0; i < 300; i++ {
			col[i] = x.At(i, j)
		}
		ans, err := m.Answer(col, 1, loopSrc)
		if err != nil {
			t.Fatal(err)
		}
		want.SetCol(j, ans)
	}
	if !got.Equal(want) {
		t.Fatal("AnswerMany with fused noise differs bitwise from looping Answer per column")
	}
}
