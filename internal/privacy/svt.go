package privacy

import (
	"errors"
	"fmt"

	"lrm/internal/rng"
)

// SparseVector implements the sparse vector technique (SVT): a stream of
// threshold comparisons that answers "is query i above the threshold?"
// and pays privacy budget only for the (at most c) positive answers.
// The calibration follows the standard analysis (Dwork & Roth, 2014,
// Algorithm 2): the threshold is perturbed once with Lap(2c·Δ/ε) and each
// query with Lap(4c·Δ/ε).
type SparseVector struct {
	src         *rng.Source
	noisyThresh float64
	queryScale  float64
	remaining   int
	sensitivity float64
	done        bool
}

// ErrSVTExhausted is returned once the positive-answer budget is used up.
var ErrSVTExhausted = errors.New("privacy: sparse vector exhausted")

// NewSparseVector prepares an SVT run with the given threshold, per-query
// sensitivity, total budget eps, and cap c on positive answers.
func NewSparseVector(threshold, sensitivity float64, eps Epsilon, c int, src *rng.Source) (*SparseVector, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("privacy: SVT needs positive sensitivity, got %v", sensitivity)
	}
	if c < 1 {
		return nil, fmt.Errorf("privacy: SVT needs c >= 1, got %d", c)
	}
	threshScale := 2 * float64(c) * sensitivity / float64(eps)
	return &SparseVector{
		src:         src,
		noisyThresh: threshold + src.Laplace(threshScale),
		queryScale:  4 * float64(c) * sensitivity / float64(eps),
		remaining:   c,
		sensitivity: sensitivity,
	}, nil
}

// Above tests whether the exact query answer is above the threshold,
// under the SVT's privacy accounting. After c positive answers every
// further call returns ErrSVTExhausted.
func (s *SparseVector) Above(answer float64) (bool, error) {
	if s.done {
		return false, ErrSVTExhausted
	}
	if answer+s.src.Laplace(s.queryScale) >= s.noisyThresh {
		s.remaining--
		if s.remaining == 0 {
			s.done = true
		}
		return true, nil
	}
	return false, nil
}

// Remaining reports how many positive answers may still be given.
func (s *SparseVector) Remaining() int { return s.remaining }
