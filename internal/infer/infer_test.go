package infer

import (
	"math"
	"testing"
	"testing/quick"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

func TestLeastSquaresEstimateIdentity(t *testing.T) {
	y := []float64{3, -1, 4}
	x, err := LeastSquaresEstimate(mat.Eye(3), y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(x[i]-y[i]) > 1e-12 {
			t.Fatalf("identity estimate %v", x)
		}
	}
}

func TestLeastSquaresEstimateTallRecoversTruth(t *testing.T) {
	// Noiseless tall system: exact recovery.
	src := rng.New(1)
	a := mat.New(12, 5)
	for i := range a.RawData() {
		a.RawData()[i] = src.Normal()
	}
	truth := src.NormalVec(5, 1)
	y := mat.MulVec(a, truth)
	x, err := LeastSquaresEstimate(a, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(x[i]-truth[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g want %g", i, x[i], truth[i])
		}
	}
}

func TestLeastSquaresEstimateWideMinNorm(t *testing.T) {
	// Underdetermined: the minimum-norm solution satisfies A·x = y and has
	// no component outside the row space.
	a := mat.FromRows([][]float64{{1, 1, 0}, {0, 0, 1}})
	y := []float64{4, 5}
	x, err := LeastSquaresEstimate(a, y)
	if err != nil {
		t.Fatal(err)
	}
	fit := mat.MulVec(a, x)
	for i := range y {
		if math.Abs(fit[i]-y[i]) > 1e-10 {
			t.Fatalf("fit %v want %v", fit, y)
		}
	}
	// Min-norm splits the first constraint evenly.
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-2) > 1e-10 || math.Abs(x[2]-5) > 1e-10 {
		t.Fatalf("min-norm solution %v want [2 2 5]", x)
	}
}

func TestLeastSquaresEstimateValidation(t *testing.T) {
	if _, err := LeastSquaresEstimate(mat.Eye(3), make([]float64, 2)); err == nil {
		t.Fatal("want error for length mismatch")
	}
}

func TestLeastSquaresEstimateRankDeficientTall(t *testing.T) {
	// Tall but rank-1: falls through to the pseudo-inverse route and
	// returns a finite least-squares solution.
	a := mat.FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	y := []float64{1, 2, 3}
	x, err := LeastSquaresEstimate(a, y)
	if err != nil {
		t.Fatal(err)
	}
	fit := mat.MulVec(a, x)
	for i := range y {
		if math.Abs(fit[i]-y[i]) > 1e-9 {
			t.Fatalf("fit %v want %v", fit, y)
		}
	}
}

func TestProjectorExactAnswersUnchanged(t *testing.T) {
	// Exact answers lie in col(W): projection is the identity on them.
	src := rng.New(2)
	w := mat.New(10, 6)
	for i := range w.RawData() {
		w.RawData()[i] = src.Normal()
	}
	p, err := NewProjector(w)
	if err != nil {
		t.Fatal(err)
	}
	x := src.NormalVec(6, 1)
	y := mat.MulVec(w, x)
	got, err := p.Apply(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(got[i]-y[i]) > 1e-9 {
			t.Fatalf("projection moved an exact answer: %g vs %g", got[i], y[i])
		}
	}
}

func TestProjectorIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		s := rng.New(seed)
		m := 2 + s.Intn(10)
		n := 1 + s.Intn(6)
		w := mat.New(m, n)
		for i := range w.RawData() {
			w.RawData()[i] = s.Normal()
		}
		p, err := NewProjector(w)
		if err != nil {
			return true // zero matrix draw; nothing to check
		}
		y := s.NormalVec(m, 1)
		once, err1 := p.Apply(y)
		if err1 != nil {
			return false
		}
		twice, err2 := p.Apply(once)
		if err2 != nil {
			return false
		}
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectorReducesOrthogonalNoise(t *testing.T) {
	// Rank-2 workload over 20 queries: isotropic noise should lose about
	// (m−r)/m = 90% of its energy under projection.
	src := rng.New(3)
	m, n, r := 20, 15, 2
	u := mat.New(m, r)
	for i := range u.RawData() {
		u.RawData()[i] = src.Normal()
	}
	v := mat.New(r, n)
	for i := range v.RawData() {
		v.RawData()[i] = src.Normal()
	}
	w := mat.Mul(u, v)
	p, err := NewProjector(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rank() != r {
		t.Fatalf("projector rank %d want %d", p.Rank(), r)
	}
	var before, after float64
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		noise := src.NormalVec(m, 1)
		proj, err := p.Apply(noise)
		if err != nil {
			t.Fatal(err)
		}
		for i := range noise {
			before += noise[i] * noise[i]
			after += proj[i] * proj[i]
		}
	}
	ratio := after / before
	want := float64(r) / float64(m)
	if math.Abs(ratio-want) > 0.05 {
		t.Fatalf("energy ratio %g want ≈%g", ratio, want)
	}
}

func TestProjectorValidation(t *testing.T) {
	if _, err := NewProjector(nil); err == nil {
		t.Fatal("want error for nil matrix")
	}
	if _, err := NewProjector(mat.New(0, 3)); err == nil {
		t.Fatal("want error for empty matrix")
	}
	if _, err := NewProjector(mat.New(3, 3)); err == nil {
		t.Fatal("want error for zero matrix")
	}
	bad := mat.Eye(2)
	bad.Set(0, 0, math.NaN())
	if _, err := NewProjector(bad); err == nil {
		t.Fatal("want error for NaN matrix")
	}
	p, err := NewProjector(mat.Eye(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(make([]float64, 2)); err == nil {
		t.Fatal("want error for wrong answer length")
	}
}

func TestNonNegative(t *testing.T) {
	got := NonNegative([]float64{-1, 0, 2.5, -0.1})
	want := []float64{0, 0, 2.5, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NonNegative %v want %v", got, want)
		}
	}
}

func TestRoundCounts(t *testing.T) {
	got := RoundCounts([]float64{-3.2, 0.4, 0.6, 7.5})
	want := []float64{0, 0, 1, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RoundCounts %v want %v", got, want)
		}
	}
}

func TestSumPreservingNonNegative(t *testing.T) {
	x := []float64{-2, 4, 8}
	got := SumPreservingNonNegative(x)
	var total float64
	for _, v := range got {
		if v < 0 {
			t.Fatal("negative entry survived")
		}
		total += v
	}
	if math.Abs(total-10) > 1e-12 {
		t.Fatalf("total %g want 10", total)
	}
	// Proportions among positives preserved: 4:8 = 1:2.
	if math.Abs(got[2]-2*got[1]) > 1e-12 {
		t.Fatalf("proportions broken: %v", got)
	}
	// All non-positive input: zero vector.
	z := SumPreservingNonNegative([]float64{-1, -2})
	for _, v := range z {
		if v != 0 {
			t.Fatal("expected zero vector")
		}
	}
}
