// Package bad holds epshygiene want-diagnostic fixtures: an ε that
// reaches a release sink with no validation on any path before it,
// Budget.Spend/Accountant.Spend calls whose errors are thrown away,
// and spends placed after the HTTP response has started.
package bad

import (
	"net/http"

	"lrm/internal/privacy"
)

type mech struct{}

func (mech) Answer(x []float64, eps privacy.Epsilon) []float64 {
	return x
}

func release(m mech, x []float64, eps privacy.Epsilon) []float64 {
	return m.Answer(x, eps) // want `reaches Answer without validation`
}

func overspend(b *privacy.Budget, eps privacy.Epsilon) {
	b.Spend(eps) // want `Budget\.Spend error discarded`
}

func blankSpend(b *privacy.Budget, eps privacy.Epsilon) {
	_ = b.Spend(eps) // want `Budget\.Spend error assigned to _`
}

func overspendTenant(a *privacy.Accountant, eps privacy.Epsilon) {
	a.Spend("acme", eps) // want `Accountant\.Spend error discarded`
}

func blankSpendTenant(a *privacy.Accountant, eps privacy.Epsilon) {
	_ = a.Spend("acme", eps) // want `Accountant\.Spend error assigned to _`
}

func lateSpend(w http.ResponseWriter, b *privacy.Budget, eps privacy.Epsilon) {
	w.WriteHeader(http.StatusOK)
	if err := b.Spend(eps); err != nil { // want `Budget\.Spend after response writing begins`
		return
	}
}

func lateTenantSpend(w http.ResponseWriter, a *privacy.Accountant, eps privacy.Epsilon) {
	w.Write([]byte("ok"))
	if err := a.Spend("acme", eps); err != nil { // want `Accountant\.Spend after response writing begins`
		return
	}
}
