package workload

import (
	"fmt"

	"lrm/internal/mat"
)

// MaterializeSpec renders a spec as the dense workload it describes —
// the bridge back from the implicit world, for small factors (the LRM's
// per-factor decomposition), contract tests, and callers that need a
// mechanism with no spec path. maxCells caps m·n; a spec past the cap
// fails instead of allocating, which is the whole point of specs.
func MaterializeSpec(s Spec, maxCells int) (*Workload, error) {
	if s == nil {
		return nil, fmt.Errorf("workload: nil spec")
	}
	if d, ok := s.(*DenseSpec); ok {
		return d.Dense(), nil
	}
	m, n := s.Queries(), s.Domain()
	if maxCells > 0 && (m > maxCells/n || m*n > maxCells) {
		return nil, fmt.Errorf("workload: materializing %s needs %d×%d = %g cells (cap %d)",
			s.Describe(), m, n, float64(m)*float64(n), maxCells)
	}
	w := mat.New(m, n)
	x := make([]float64, n)
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		x[j] = 1
		s.AnswerTo(col, x)
		x[j] = 0
		w.SetCol(j, col)
	}
	return FromMatrix(s.Describe(), w), nil
}
