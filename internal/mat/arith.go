package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// dimPanic reports a dimension mismatch in op between a and b.
func dimPanic(op string, a, b *Dense) {
	panic(fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
}

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Add", a, b)
	}
	return AddTo(New(a.rows, a.cols), a, b)
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Sub", a, b)
	}
	return SubTo(New(a.rows, a.cols), a, b)
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	return ScaleTo(New(a.rows, a.cols), s, a)
}

// AddScaled returns a + s*b, the matrix axpy.
func AddScaled(a *Dense, s float64, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("AddScaled", a, b)
	}
	return AddScaledTo(New(a.rows, a.cols), a, s, b)
}

// ElemMul returns the Hadamard (element-wise) product a ∘ b.
func ElemMul(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("ElemMul", a, b)
	}
	return ElemMulTo(New(a.rows, a.cols), a, b)
}

// parallelThreshold is the amount of multiply work (flops) below which
// Mul runs single-threaded; fork/join overhead dominates for small
// products, which the LRM inner loop issues by the thousand. It is a
// variable (not a const) only so tests can force the serial path and
// prove both paths agree bit-for-bit.
var parallelThreshold = 1 << 21

// Mul returns the matrix product a·b.
//
// The inner loops are written j-last over b's rows so that both operands
// stream sequentially (ikj order); rows of the output are computed in
// parallel when the product is large enough.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		dimPanic("Mul", a, b)
	}
	out := New(a.rows, b.cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Dense) {
	if serialRows(a.rows, a.cols*b.cols) {
		for i := 0; i < a.rows; i++ {
			mulRow(out, a, b, i)
		}
		return
	}
	parallelRows(a.rows, a.cols*b.cols, func(i int) { mulRow(out, a, b, i) })
}

// mulRow accumulates row i of a·b into out. It is a named function (not
// a closure) so the serial dispatch path allocates nothing; the closure
// wrapping it is only built for products large enough to fork.
func mulRow(out, a, b *Dense, i int) {
	n := b.cols
	kmax := a.cols
	arow := a.RawRow(i)
	orow := out.RawRow(i)
	// Register-blocked over 4 rows of b: one pass over orow applies
	// four axpy updates, quartering the load/store traffic on the
	// accumulator row.
	k := 0
	for ; k+3 < kmax; k += 4 {
		a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0 := b.data[k*n : k*n+n]
		b1 := b.data[(k+1)*n : (k+1)*n+n]
		b2 := b.data[(k+2)*n : (k+2)*n+n]
		b3 := b.data[(k+3)*n : (k+3)*n+n]
		for j := range orow {
			orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; k < kmax; k++ {
		av := arow[k]
		if av == 0 {
			continue
		}
		brow := b.data[k*n : k*n+n]
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}

// serialRows reports whether a rows×workPerRow job is too small to be
// worth forking; it mirrors parallelRows' own fallback so dispatchers can
// skip building the per-row closure entirely on the serial path.
func serialRows(rows, workPerRow int) bool {
	return rows <= 1 || rows*max(workPerRow, 1) < parallelThreshold
}

// parallelRows invokes work(i) for i in [0,rows), in parallel when the
// total work volume rows·workPerRow is large enough to amortize
// scheduling. Worker count is sized so each worker gets at least ~1M
// units of work, which keeps fork/join overhead negligible.
func parallelRows(rows, workPerRow int, work func(i int)) {
	if rows == 0 {
		return
	}
	total := rows * max(workPerRow, 1)
	if total < parallelThreshold || rows == 1 {
		for i := 0; i < rows; i++ {
			work(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if byWork := total / (1 << 20); workers > byWork {
		workers = byWork
	}
	if workers > rows {
		workers = rows
	}
	if workers < 2 {
		for i := 0; i < rows; i++ {
			work(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				work(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MulABt returns a·bᵀ without materializing the transpose.
func MulABt(a, b *Dense) *Dense {
	if a.cols != b.cols {
		dimPanic("MulABt", a, b)
	}
	out := New(a.rows, b.rows)
	mulABtInto(out, a, b)
	return out
}

func mulABtInto(out, a, b *Dense) {
	if serialRows(a.rows, a.cols*b.rows) {
		for i := 0; i < a.rows; i++ {
			mulABtRow(out, a, b, i)
		}
		return
	}
	parallelRows(a.rows, a.cols*b.rows, func(i int) { mulABtRow(out, a, b, i) })
}

func mulABtRow(out, a, b *Dense, i int) {
	arow := a.RawRow(i)
	orow := out.RawRow(i)
	for j := 0; j < b.rows; j++ {
		brow := b.RawRow(j)
		var s float64
		for k, av := range arow {
			s += av * brow[k]
		}
		orow[j] = s
	}
}

// MulAtB returns aᵀ·b without materializing the transpose.
func MulAtB(a, b *Dense) *Dense {
	if a.rows != b.rows {
		dimPanic("MulAtB", a, b)
	}
	out := New(a.cols, b.cols)
	mulAtBInto(out, a, b)
	return out
}

// mulAtBInto accumulates aᵀ·b into out, which must be zeroed.
// (aᵀb)ᵢⱼ = Σ_k a[k][i] b[k][j]. Accumulate row-by-row of the inputs;
// parallelize over output rows (columns of a) via per-worker passes.
func mulAtBInto(out, a, b *Dense) {
	if serialRows(a.cols, a.rows*b.cols) {
		for i := 0; i < a.cols; i++ {
			mulAtBRow(out, a, b, i)
		}
		return
	}
	parallelRows(a.cols, a.rows*b.cols, func(i int) { mulAtBRow(out, a, b, i) })
}

func mulAtBRow(out, a, b *Dense, i int) {
	orow := out.RawRow(i)
	for k := 0; k < a.rows; k++ {
		av := a.data[k*a.cols+i]
		if av == 0 {
			continue
		}
		brow := b.RawRow(k)
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	return MulVecTo(make([]float64, a.rows), a, x)
}

// MulVecT returns aᵀ·x.
func MulVecT(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch %d×%d vs %d", a.rows, a.cols, len(x)))
	}
	return MulVecTTo(make([]float64, a.cols), a, x)
}

// Gram returns aᵀ·a, exploiting the symmetry of the result.
func Gram(a *Dense) *Dense {
	out := New(a.cols, a.cols)
	gramInto(out, a)
	return out
}

// gramInto accumulates aᵀ·a into out, which must be zeroed.
func gramInto(out, a *Dense) {
	for k := 0; k < a.rows; k++ {
		row := a.RawRow(k)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			orow := out.RawRow(i)
			for j := i; j < a.cols; j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < a.cols; i++ {
		for j := i + 1; j < a.cols; j++ {
			out.data[j*a.cols+i] = out.data[i*a.cols+j]
		}
	}
}

// GramT returns a·aᵀ, exploiting the symmetry of the result.
func GramT(a *Dense) *Dense {
	out := New(a.rows, a.rows)
	gramTInto(out, a)
	return out
}

func gramTInto(out, a *Dense) {
	if serialRows(a.rows, a.rows*a.cols/2) {
		for i := 0; i < a.rows; i++ {
			gramTRow(out, a, i)
		}
	} else {
		parallelRows(a.rows, a.rows*a.cols/2, func(i int) { gramTRow(out, a, i) })
	}
	for i := 0; i < a.rows; i++ {
		for j := i + 1; j < a.rows; j++ {
			out.data[j*a.rows+i] = out.data[i*a.rows+j]
		}
	}
}

func gramTRow(out, a *Dense, i int) {
	ri := a.RawRow(i)
	orow := out.RawRow(i)
	for j := i; j < a.rows; j++ {
		rj := a.RawRow(j)
		var s float64
		for k, v := range ri {
			s += v * rj[k]
		}
		orow[j] = s
	}
}

// Dot returns the Frobenius inner product ⟨a,b⟩ = Σᵢⱼ aᵢⱼ·bᵢⱼ.
func Dot(a, b *Dense) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		dimPanic("Dot", a, b)
	}
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}
