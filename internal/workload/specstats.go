package workload

import (
	"fmt"
	"math"

	"lrm/internal/mat"
)

// AnalyzeSpec is the structure-aware sibling of Analyze: the same Stats
// (rank, sensitivity, condition number, the Section 3.2 baseline SSEs),
// computed from the spec's structure instead of a factorization of a
// matrix that never exists.
//
//   - Dense adapters route through Analyze (one SVD of the wrapped
//     matrix, retained on the Stats for PrepareAnalyzed).
//   - Prefix and all-ranges workloads have closed-form spectra.
//   - Kronecker products combine factor analyses: SVD(A⊗B) is the outer
//     product of SVD(A) and SVD(B), so rank, condition number,
//     sensitivity, and ΣW² all multiply across factors — each factor is
//     analyzed recursively (a small SVD at most) and the m×n product is
//     never touched.
//   - k-way marginals have a closed-form Gram eigenstructure (the
//     blocks' Grams commute).
//   - Anything else is estimated by a bounded Lanczos iteration on the
//     implicit Gram operator; rank is then a lower estimate (converged
//     Ritz count), which errs toward planning the cheaper baselines.
//
// The returned Stats carry no SVD except in the dense case.
func AnalyzeSpec(s Spec) (*Stats, error) {
	if s == nil {
		return nil, fmt.Errorf("workload: nil spec")
	}
	if s.Queries() <= 0 || s.Domain() <= 0 {
		return nil, fmt.Errorf("workload: empty spec %s", s.Describe())
	}
	switch v := s.(type) {
	case *DenseSpec:
		return Analyze(v.Dense())
	case *PrefixSpec:
		return statsFromSpectrum(s, v.singularValues(), nil), nil
	case *AllRangesSpec:
		return statsFromSpectrum(s, v.singularValues(), nil), nil
	case *IdentitySpec:
		return statsWithRank(s, v.n, 1), nil
	case *TotalSpec:
		return statsWithRank(s, 1, 1), nil
	case *KronSpec:
		return analyzeKron(v)
	case *MarginalSpec:
		vals, mult := v.gramEigenvalues()
		sv := make([]float64, len(vals))
		for i, x := range vals {
			sv[i] = math.Sqrt(x)
		}
		return statsFromSpectrum(s, sv, mult), nil
	default:
		return analyzeGeneric(s)
	}
}

// baseStats fills the structure-independent fields.
func baseStats(s Spec) *Stats {
	m := s.Queries()
	delta := s.Sensitivity()
	sq := s.SquaredSum()
	return &Stats{
		Queries:     m,
		Domain:      s.Domain(),
		Sensitivity: delta,
		SquaredSum:  sq,
		LaplaceSSE:  2 * sq,
		ResultsSSE:  2 * float64(m) * delta * delta,
	}
}

func statsWithRank(s Spec, rank int, cond float64) *Stats {
	st := baseStats(s)
	st.Rank = rank
	st.ConditionNumber = cond
	return st
}

// statsFromSpectrum derives rank and condition number from known
// singular values (descending). mult, when non-nil, gives each value's
// multiplicity (used by the marginal closed form, whose distinct
// eigenvalue count is far below n).
func statsFromSpectrum(s Spec, sv []float64, mult []float64) *Stats {
	st := baseStats(s)
	if len(sv) == 0 || sv[0] == 0 {
		st.Rank = 0
		st.ConditionNumber = 1
		return st
	}
	// The same relative threshold mat.SVD.Rank uses, so closed-form and
	// factored ranks agree on the same matrix.
	maxDim := st.Queries
	if st.Domain > maxDim {
		maxDim = st.Domain
	}
	tol := float64(maxDim) * 1e-11 * sv[0]
	rank := 0.0
	smallest := sv[0]
	for i, x := range sv {
		if x <= tol {
			break
		}
		if mult != nil {
			rank += mult[i]
		} else {
			rank++
		}
		smallest = x
	}
	st.Rank = int(rank)
	st.ConditionNumber = sv[0] / smallest
	return st
}

// analyzeKron combines recursive factor analyses: every spectral
// quantity of a Kronecker product is the product over factors.
func analyzeKron(k *KronSpec) (*Stats, error) {
	st := baseStats(k)
	st.Rank = 1
	st.ConditionNumber = 1
	for _, f := range k.factors {
		fs, err := AnalyzeSpec(f)
		if err != nil {
			return nil, fmt.Errorf("workload: kron factor %s: %w", f.Describe(), err)
		}
		st.Rank *= fs.Rank
		st.ConditionNumber *= fs.ConditionNumber
	}
	return st, nil
}

// lanczosIters bounds the generic estimator's iteration count (three
// O(n) Gram products per step).
const lanczosIters = 96

// analyzeGeneric estimates rank and condition number for a spec with no
// closed form by Lanczos on the implicit Gram operator. The Ritz count
// lower-bounds the rank; the smallest retained Ritz value upper-bounds
// the smallest nonzero eigenvalue, so the condition number is an
// estimate on both ends. Deterministic for a given spec (fixed seed).
func analyzeGeneric(s Spec) (*Stats, error) {
	st := baseStats(s)
	n := s.Domain()
	vals := mat.LanczosSpectrum(n, func(dst, x []float64) { s.GramMulTo(dst, x) }, lanczosIters, 1)
	sv := make([]float64, len(vals))
	for i, x := range vals {
		sv[i] = math.Sqrt(x)
	}
	// When the Krylov space was truncated (lanczosIters < n) the interior
	// of the spectrum is unexplored and the true rank may be anywhere up
	// to min(m,n); the converged Ritz count is a deliberate lower
	// estimate, which errs toward the cheaper baseline mechanisms.
	est := statsFromSpectrum(s, sv, nil)
	st.Rank = est.Rank
	st.ConditionNumber = est.ConditionNumber
	return st, nil
}
