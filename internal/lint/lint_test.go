package lint

import (
	"testing"
)

// fixtureRoot is where the want-annotated fixture packages live. The
// testdata path keeps them out of every ./... wildcard (build, vet,
// tree-wide lint) while the loader can still address them explicitly.
const fixtureRoot = "lrm/internal/lint/testdata/src/"

func checkFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	problems, err := CheckFixture(a, fixtureRoot+rel)
	if err != nil {
		t.Fatalf("fixture %s: %v", rel, err)
	}
	for _, p := range problems {
		t.Errorf("fixture %s: %s", rel, p)
	}
}

func TestAliasGuardFixtures(t *testing.T) {
	checkFixture(t, AliasGuard, "aliasguard/bad")
	checkFixture(t, AliasGuard, "aliasguard/clean")
}

func TestNoAllocFixtures(t *testing.T) {
	checkFixture(t, NoAlloc, "noalloc/bad")
	checkFixture(t, NoAlloc, "noalloc/clean")
}

func TestNoiseRandFixtures(t *testing.T) {
	checkFixture(t, NoiseRand, "noiserand/bad")
	checkFixture(t, NoiseRand, "noiserand/clean")
}

func TestEpsHygieneFixtures(t *testing.T) {
	checkFixture(t, EpsHygiene, "epshygiene/bad")
	checkFixture(t, EpsHygiene, "epshygiene/clean")
}

func TestDetIterFixtures(t *testing.T) {
	checkFixture(t, DetIter, "detiter/bad")
	checkFixture(t, DetIter, "detiter/clean")
}

// TestMalformedIgnoreReported pins the suppression machinery's failure
// mode: a //lint:ignore with no justification must surface as a finding
// rather than silently suppressing nothing.
func TestMalformedIgnoreReported(t *testing.T) {
	pkgs, err := LoadPackages([]string{fixtureRoot + "noalloc/clean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages", len(pkgs))
	}
	// The clean fixture's ignore is well-formed, so running the full
	// suite over it must stay quiet.
	diags, err := runAnalyzers(pkgs[0], All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestTreeClean is the acceptance gate in test form: the whole module
// must be free of findings (modulo the justified ignores it carries).
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-wide load shells out to go list over every package")
	}
	diags, err := Run([]string{"lrm/..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("tree finding: %s", d)
	}
}
