package mechanism

import (
	"fmt"

	"lrm/internal/infer"
	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Consistent wraps any mechanism with the consistency projection of
// internal/infer: released answers are projected onto the column space of
// the workload matrix before being returned. Projection is free
// post-processing under differential privacy and can only reduce expected
// squared error; for noise-on-results on a rank-r workload it removes
// exactly the (m−r)/m fraction of the noise orthogonal to the answer
// space.
type Consistent struct {
	// Base is the wrapped mechanism (required).
	Base Mechanism
}

// Name implements Mechanism.
func (c Consistent) Name() string {
	if c.Base == nil {
		return "Consistent(?)"
	}
	return c.Base.Name() + "+proj"
}

// Prepare implements Mechanism.
func (c Consistent) Prepare(w *workload.Workload) (Prepared, error) {
	if c.Base == nil {
		return nil, fmt.Errorf("mechanism: Consistent requires a base mechanism")
	}
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	base, err := c.Base.Prepare(w)
	if err != nil {
		return nil, err
	}
	proj, err := infer.NewProjector(w.W)
	if err != nil {
		return nil, fmt.Errorf("mechanism: %w", err)
	}
	return &consistentPrepared{base: base, proj: proj}, nil
}

type consistentPrepared struct {
	base Prepared
	proj *infer.Projector
}

// Answer implements Prepared.
func (p *consistentPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	y, err := p.base.Answer(x, eps, src)
	if err != nil {
		return nil, err
	}
	return p.proj.Apply(y)
}

// AnswerMany implements BatchAnswerer: the base release batches through
// its own multi-RHS path when it has one (the generic AnswerMany entry
// point falls back to a per-column loop otherwise), then each column is
// projected with the same pooled ApplyTo kernel Answer uses — so the
// batch is bit-identical to looping Answer either way.
func (p *consistentPrepared) AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	y, err := AnswerMany(p.base, x, eps, src)
	if err != nil {
		return nil, err
	}
	m, cols := y.Dims()
	in := make([]float64, m)
	out := make([]float64, m)
	for j := 0; j < cols; j++ {
		for i := 0; i < m; i++ {
			in[i] = y.At(i, j)
		}
		if _, err := p.proj.ApplyTo(out, in); err != nil {
			return nil, err
		}
		y.SetCol(j, out)
	}
	return y, nil
}

// ExpectedSSE implements Prepared. The projected error of the base
// mechanism has no general closed form (it depends on how the base noise
// aligns with col(W)), so NaN is reported; Evaluate measures it by Monte
// Carlo like any other mechanism.
func (p *consistentPrepared) ExpectedSSE(eps privacy.Epsilon) float64 { return NoAnalyticSSE() }
