package mechanism

import (
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// histogramMatrix stacks B histograms drawn from src as the columns of an
// n×B matrix, the layout AnswerMany takes.
func histogramMatrix(n, b int, src *rng.Source) *mat.Dense {
	x := mat.New(n, b)
	for j := 0; j < b; j++ {
		x.SetCol(j, src.UniformVec(n, 0, 20))
	}
	return x
}

// TestAnswerManyBitIdenticalToLoop is the BatchAnswerer contract test:
// for every mechanism in the repository, AnswerMany over an n×B data
// matrix must release exactly — bit for bit — what looping Answer over
// the columns with an identically seeded source releases. Batch widths
// cover the single-column case, a partial GEMM panel, and a full one.
func TestAnswerManyBitIdenticalToLoop(t *testing.T) {
	src := rng.New(1)
	const m, n = 6, 32
	w := workload.Range(m, n, src)
	for _, mech := range allMechanisms() {
		mech := mech
		t.Run(mech.Name(), func(t *testing.T) {
			p, err := mech.Prepare(w)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			for _, batch := range []int{1, 5, 8} {
				x := histogramMatrix(n, batch, rng.New(int64(10+batch)))
				want, err := AnswerManyLoop(p, x, 1, rng.New(77))
				if err != nil {
					t.Fatalf("B=%d: loop: %v", batch, err)
				}
				got, err := AnswerMany(p, x, 1, rng.New(77))
				if err != nil {
					t.Fatalf("B=%d: AnswerMany: %v", batch, err)
				}
				if got.Rows() != m || got.Cols() != batch {
					t.Fatalf("B=%d: result is %d×%d, want %d×%d", batch, got.Rows(), got.Cols(), m, batch)
				}
				if !got.Equal(want) {
					t.Fatalf("B=%d: AnswerMany differs bitwise from looping Answer per column", batch)
				}
			}
		})
	}
}

// TestAnswerManyNativeImplementations pins which mechanisms carry a real
// multi-RHS path (one packed GEMM per product) rather than the loop
// fallback — so a refactor that silently drops an implementation fails
// here instead of just getting slower.
func TestAnswerManyNativeImplementations(t *testing.T) {
	src := rng.New(2)
	w := workload.Range(6, 32, src)
	native := []Mechanism{
		LRM{},
		LaplaceData{},
		LaplaceResults{},
		MatrixMechanism{MaxIter: 10},
		Consistent{Base: LaplaceResults{}},
	}
	for _, mech := range native {
		p, err := mech.Prepare(w)
		if err != nil {
			t.Fatalf("%s: prepare: %v", mech.Name(), err)
		}
		if _, ok := p.(BatchAnswerer); !ok {
			t.Errorf("%s: Prepared does not implement BatchAnswerer", mech.Name())
		}
	}
}

// TestAnswerManyValidation covers the batch-shape and ε errors of the
// native implementations.
func TestAnswerManyValidation(t *testing.T) {
	src := rng.New(3)
	const n = 32
	w := workload.Range(6, n, src)
	for _, mech := range []Mechanism{LRM{}, LaplaceData{}, LaplaceResults{}, Consistent{Base: LaplaceResults{}}} {
		p, err := mech.Prepare(w)
		if err != nil {
			t.Fatalf("%s: prepare: %v", mech.Name(), err)
		}
		good := histogramMatrix(n, 3, rng.New(4))
		if _, err := AnswerMany(p, good, 0, rng.New(5)); err == nil {
			t.Errorf("%s: zero epsilon accepted", mech.Name())
		}
		if _, err := AnswerMany(p, histogramMatrix(n-1, 3, rng.New(4)), 1, rng.New(5)); err == nil {
			t.Errorf("%s: wrong-domain matrix accepted", mech.Name())
		}
		if _, err := AnswerMany(p, mat.New(n, 0), 1, rng.New(5)); err == nil {
			t.Errorf("%s: empty batch accepted", mech.Name())
		}
	}
}
