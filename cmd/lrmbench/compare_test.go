package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchDoc(ns map[string]int64) *benchDocument {
	doc := &benchDocument{}
	for _, name := range []string{"MatMul256", "MatMul512", "MatMul1024", "DecomposeBench", "Plan", "ImplicitPlan", "EngineAnswer", "EngineAnswerMany", "EngineAnswerSeq64"} {
		if v, ok := ns[name]; ok {
			doc.Benchmarks = append(doc.Benchmarks, benchResult{Name: name, Iterations: 1, NsPerOp: v})
		}
	}
	return doc
}

func fullDoc(scale int64) map[string]int64 {
	return map[string]int64{
		"MatMul256": 1000 * scale, "MatMul512": 8000 * scale, "MatMul1024": 64000 * scale,
		"DecomposeBench": 200000 * scale, "Plan": 250000 * scale, "ImplicitPlan": 30 * scale, "EngineAnswer": 70 * scale,
		"EngineAnswerMany": 1500 * scale, "EngineAnswerSeq64": 4500 * scale,
	}
}

// TestComparePassesWithinTolerance: uniform noise below the tolerance
// must not trip the gate.
func TestComparePassesWithinTolerance(t *testing.T) {
	oldDoc := benchDoc(fullDoc(100))
	newDoc := benchDoc(fullDoc(120)) // +20% across the board
	var out bytes.Buffer
	if err := compareBenchDocs(&out, oldDoc, newDoc, 0.30); err != nil {
		t.Fatalf("gate tripped within tolerance: %v\n%s", err, out.String())
	}
}

// TestCompareFailsOnTier1Regression: a tier-1 kernel beyond tolerance
// must fail and name the offender.
func TestCompareFailsOnTier1Regression(t *testing.T) {
	oldDoc := benchDoc(fullDoc(100))
	bad := fullDoc(100)
	bad["MatMul512"] = bad["MatMul512"] * 2 // +100%
	var out bytes.Buffer
	err := compareBenchDocs(&out, oldDoc, benchDoc(bad), 0.30)
	if err == nil {
		t.Fatalf("2x MatMul512 regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "MatMul512") {
		t.Fatalf("failure does not name the kernel: %v", err)
	}
}

// TestCompareIgnoresNonTier1Regression: end-to-end sweeps may wobble
// arbitrarily without gating.
func TestCompareIgnoresNonTier1Regression(t *testing.T) {
	oldDoc := benchDoc(fullDoc(100))
	wobble := fullDoc(100)
	wobble["MatMul256"] *= 5
	wobble["EngineAnswerSeq64"] *= 5
	var out bytes.Buffer
	if err := compareBenchDocs(&out, oldDoc, benchDoc(wobble), 0.30); err != nil {
		t.Fatalf("non-tier-1 wobble tripped the gate: %v", err)
	}
}

// TestCompareFailsOnMissingTier1: silently dropping a tier-1 benchmark
// from the suite is itself a gate failure.
func TestCompareFailsOnMissingTier1(t *testing.T) {
	oldDoc := benchDoc(fullDoc(100))
	missing := fullDoc(100)
	delete(missing, "EngineAnswerMany")
	var out bytes.Buffer
	err := compareBenchDocs(&out, oldDoc, benchDoc(missing), 0.30)
	if err == nil || !strings.Contains(err.Error(), "EngineAnswerMany") {
		t.Fatalf("missing tier-1 benchmark not flagged: %v", err)
	}
}

// TestCompareSkipsBenchmarksNewInCandidate: a kernel absent from the old
// baseline (e.g. just added to the suite) is reported and skipped.
func TestCompareSkipsBenchmarksNewInCandidate(t *testing.T) {
	older := fullDoc(100)
	delete(older, "EngineAnswerMany")
	delete(older, "EngineAnswerSeq64")
	var out bytes.Buffer
	if err := compareBenchDocs(&out, benchDoc(older), benchDoc(fullDoc(100)), 0.30); err != nil {
		t.Fatalf("new-in-candidate benchmark failed the gate: %v", err)
	}
	if !strings.Contains(out.String(), "new, no baseline") {
		t.Fatalf("report does not mark the new benchmark:\n%s", out.String())
	}
}

// TestCompareNewBenchmarkReport: candidate-only benchmarks must be
// called out by name in a non-failing summary — even when one of them is
// tier-1 in the candidate (its absence from the baseline is the normal
// state right after the benchmark lands; only absence from the candidate
// gates). A regression elsewhere must still fail independently.
func TestCompareNewBenchmarkReport(t *testing.T) {
	older := fullDoc(100)
	delete(older, "EngineAnswerMany") // tier-1, new in candidate
	delete(older, "MatMul256")        // non-tier-1, new in candidate
	var out bytes.Buffer
	if err := compareBenchDocs(&out, benchDoc(older), benchDoc(fullDoc(100)), 0.30); err != nil {
		t.Fatalf("candidate-only benchmarks tripped the gate: %v\n%s", err, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "2 new benchmark(s) without a baseline, not gated: MatMul256, EngineAnswerMany") {
		t.Fatalf("summary does not list the new benchmarks:\n%s", report)
	}

	// The summary must not mask real failures: regress a tier-1 kernel
	// that does have a baseline and the gate still fails.
	bad := fullDoc(100)
	bad["MatMul512"] *= 2
	out.Reset()
	err := compareBenchDocs(&out, benchDoc(older), benchDoc(bad), 0.30)
	if err == nil || !strings.Contains(err.Error(), "MatMul512") {
		t.Fatalf("regression alongside new benchmarks not gated: %v", err)
	}
	if !strings.Contains(out.String(), "new, no baseline") {
		t.Fatalf("new benchmarks not reported alongside the failure:\n%s", out.String())
	}
}

// TestCompareResolvesGlobByGeneratedStamp: with a glob baseline the
// newest document by "generated" must win — not the lexicographically
// last filename — and the candidate file itself must be excluded.
func TestCompareResolvesGlobByGeneratedStamp(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc *benchDocument, gen string) string {
		if gen != "" {
			if err := doc.Generated.UnmarshalJSON([]byte(`"` + gen + `"`)); err != nil {
				t.Fatal(err)
			}
		}
		buf, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Lexicographically "BENCH_a" < "BENCH_b", but a is newer: a fast
	// candidate must still trip the gate against a (the true baseline),
	// which b — with its slower numbers — would mask.
	write("BENCH_a.json", benchDoc(fullDoc(100)), "2026-07-26T12:00:00Z")
	write("BENCH_b.json", benchDoc(fullDoc(1000)), "2026-07-01T00:00:00Z")
	newPath := write("BENCH_ci.json", benchDoc(fullDoc(150)), "2026-07-27T00:00:00Z")
	var out bytes.Buffer
	err := compareBenchFiles(&out, filepath.Join(dir, "BENCH_*.json"), newPath, 0.30)
	if err == nil {
		t.Fatalf("50%% regression vs the newest baseline passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BENCH_a.json") {
		t.Fatalf("baseline resolution did not pick the newest document:\n%s", out.String())
	}
	// Candidate-only directory: the glob must refuse to self-compare.
	lone := t.TempDir()
	buf, err := json.Marshal(benchDoc(fullDoc(100)))
	if err != nil {
		t.Fatal(err)
	}
	lonePath := filepath.Join(lone, "BENCH_ci.json")
	if err := os.WriteFile(lonePath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBenchFiles(&out, filepath.Join(lone, "BENCH_*.json"), lonePath, 0.30); err == nil {
		t.Fatal("glob matching only the candidate accepted")
	}
}

// TestCompareBenchFiles round-trips through real files, the shape CI
// invokes.
func TestCompareBenchFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc *benchDocument) string {
		buf, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", benchDoc(fullDoc(100)))
	newPath := write("new.json", benchDoc(fullDoc(110)))
	var out bytes.Buffer
	if err := compareBenchFiles(&out, oldPath, newPath, 0.30); err != nil {
		t.Fatal(err)
	}
	if err := compareBenchFiles(&out, oldPath, filepath.Join(dir, "absent.json"), 0.30); err == nil {
		t.Fatal("missing candidate file accepted")
	}
	if err := compareBenchFiles(&out, oldPath, newPath, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}
