// Package dataset synthesizes the paper's three evaluation datasets.
//
// The originals (Search Logs from Google Trends/AOL keyword statistics,
// Net Trace per-IP TCP packet counts from a university intranet, and
// Social Network degree counts) are not redistributable, so this package
// builds seeded synthetic equivalents with the same cardinalities and
// distributional shape; see DESIGN.md for why this substitution preserves
// the paper's measured behaviour. It also implements the paper's domain
// re-sizing protocol: merging consecutive counts down to a target n.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"lrm/internal/rng"
)

// Paper cardinalities (Section 6).
const (
	SearchLogsSize    = 65536 // 2^16 keyword-week counts
	NetTraceSize      = 32768 // 2^15 per-IP packet counts
	SocialNetworkSize = 11342 // users by social-graph degree
)

// Dataset is a histogram of unit counts together with its provenance.
type Dataset struct {
	Name   string
	Counts []float64
}

// Len returns the domain size.
func (d *Dataset) Len() int { return len(d.Counts) }

// Total returns the sum of all counts.
func (d *Dataset) Total() float64 {
	var s float64
	for _, v := range d.Counts {
		s += v
	}
	return s
}

// SquaredSum returns Σ xᵢ², the quantity appearing in the relaxed-LRM
// error bound (Theorem 3).
func (d *Dataset) SquaredSum() float64 {
	var s float64
	for _, v := range d.Counts {
		s += v * v
	}
	return s
}

// Merge returns a new dataset of size n obtained by summing consecutive
// counts in order — the paper's protocol for varying the domain size.
// n must be between 1 and the current size.
func (d *Dataset) Merge(n int) *Dataset {
	if n < 1 || n > len(d.Counts) {
		panic(fmt.Sprintf("dataset: cannot merge %d counts into %d bins", len(d.Counts), n))
	}
	out := make([]float64, n)
	src := len(d.Counts)
	// Distribute src counts over n bins as evenly as possible, preserving
	// order and the grand total.
	for i, v := range d.Counts {
		bin := i * n / src
		out[bin] += v
	}
	return &Dataset{Name: d.Name, Counts: out}
}

// SearchLogs synthesizes the Search Logs dataset: weekly keyword counts
// over several years, modeled as trend + annual seasonality + bursty
// Poisson noise across many keywords laid out contiguously.
func SearchLogs(size int, src *rng.Source) *Dataset {
	counts := make([]float64, size)
	const weeksPerKeyword = 338 // ~6.5 years of weeks, as in 2004–2010
	i := 0
	for i < size {
		span := weeksPerKeyword
		if size-i < span {
			span = size - i
		}
		base := src.Pareto(20, 1.2) // keyword popularity is heavy-tailed
		trend := (src.Float64() - 0.3) * base / float64(span)
		phase := src.Float64() * 2 * math.Pi
		amp := src.Float64() * 0.5 * base
		for w := 0; w < span; w++ {
			seasonal := amp * (1 + math.Sin(2*math.Pi*float64(w)/52+phase)) / 2
			lambda := base + trend*float64(w) + seasonal
			if lambda < 0 {
				lambda = 0
			}
			v := float64(src.Poisson(lambda))
			if src.Float64() < 0.01 { // rare burst weeks
				v *= 1 + 8*src.Float64()
			}
			counts[i+w] = math.Round(v)
		}
		i += span
	}
	return &Dataset{Name: "SearchLogs", Counts: counts}
}

// NetTrace synthesizes the Net Trace dataset: TCP packet counts per IP
// address. Per-host traffic volume is heavy-tailed (a few hosts dominate)
// with many silent hosts.
func NetTrace(size int, src *rng.Source) *Dataset {
	counts := make([]float64, size)
	for i := range counts {
		if src.Float64() < 0.35 {
			continue // silent host
		}
		counts[i] = math.Round(src.Pareto(1, 0.9))
		if counts[i] > 1e6 {
			counts[i] = 1e6 // truncate the extreme tail like a real capture window
		}
	}
	return &Dataset{Name: "NetTrace", Counts: counts}
}

// SocialNetwork synthesizes the Social Network dataset: the number of
// users having each degree d = 1..size in the social graph. Degree
// frequencies follow a power law with exponential cutoff.
func SocialNetwork(size int, src *rng.Source) *Dataset {
	counts := make([]float64, size)
	const users = 5e6
	var norm float64
	weights := make([]float64, size)
	for d := 1; d <= size; d++ {
		w := math.Pow(float64(d), -2.2) * math.Exp(-float64(d)/float64(size)*3)
		weights[d-1] = w
		norm += w
	}
	for i, w := range weights {
		lambda := users * w / norm
		counts[i] = float64(src.Poisson(lambda))
	}
	return &Dataset{Name: "SocialNetwork", Counts: counts}
}

// ByName builds one of the three standard datasets at its paper
// cardinality: "searchlogs", "nettrace" or "socialnetwork".
func ByName(name string, src *rng.Source) (*Dataset, error) {
	switch name {
	case "searchlogs":
		return SearchLogs(SearchLogsSize, src), nil
	case "nettrace":
		return NetTrace(NetTraceSize, src), nil
	case "socialnetwork":
		return SocialNetwork(SocialNetworkSize, src), nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q (want searchlogs, nettrace or socialnetwork)", name)
}

// Names lists the standard dataset names accepted by ByName.
func Names() []string { return []string{"searchlogs", "nettrace", "socialnetwork"} }

// WriteCSV writes the dataset as index,count rows with a header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "count"}); err != nil {
		return err
	}
	for i, v := range d.Counts {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	start := 0
	if records[0][0] == "index" {
		start = 1
	}
	counts := make([]float64, 0, len(records)-start)
	for _, rec := range records[start:] {
		if len(rec) < 2 {
			return nil, fmt.Errorf("dataset: short csv row %v", rec)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: bad count %q: %w", rec[1], err)
		}
		counts = append(counts, v)
	}
	return &Dataset{Name: name, Counts: counts}, nil
}
