package core

import (
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestALMInnerLoopZeroAlloc pins the ADMM alternation — the B-update's
// SPD solve plus the L-update's Nesterov solve, executed up to
// MaxOuterIter·MaxInnerIter times per decomposition — to zero
// per-iteration heap allocations. Any regression here (a kernel that
// stopped writing in place, a closure rebuilt per call, a solver buffer
// that escaped the workspace) fails this test before it shows up as
// garbage-collector churn in the benchmarks.
func TestALMInnerLoopZeroAlloc(t *testing.T) {
	w := workload.Related(24, 32, 4, rng.New(7)).W
	w = mat.Scale(1/mat.FrobeniusNorm(w), w)
	svd := mat.FactorSVD(w)
	opts := Options{}
	withDef := opts.withDefaults(svd)
	b0, l0 := initDecomposition(w, withDef.Rank, svd)
	s := newALMState(w, withDef, 1e-4, b0, l0)

	step := func() {
		if err := s.updateB(); err != nil {
			t.Fatal(err)
		}
		s.updateL()
		s.residual()
		mat.AddScaledTo(s.pi, s.pi, s.beta, s.diff)
	}
	// Warm the optimizer workspace: the first alternation stocks the
	// free lists; every later one must run entirely out of them.
	for i := 0; i < 3; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Errorf("ADMM inner loop allocates %v times per iteration, want 0", allocs)
	}
}

// TestRunALMDeterministic pins that the buffer-reusing runALM is a pure
// function of its inputs — reused scratch must not leak state between
// invocations. (Numerical equivalence with the pre-refactor trajectory
// is covered separately by the package's golden tests, which pin
// Decompose outputs and passed unchanged across the rewrite.)
func TestRunALMDeterministic(t *testing.T) {
	w := workload.Related(16, 24, 3, rng.New(9)).W
	w = mat.Scale(1/mat.FrobeniusNorm(w), w)
	svd := mat.FactorSVD(w)
	opts := Options{MaxOuterIter: 8}
	withDef := opts.withDefaults(svd)
	b0, l0 := initDecomposition(w, withDef.Rank, svd)

	b1, l1, res1, out1, conv1 := runALM(w, withDef, 1e-4, b0, l0)
	b2, l2, res2, out2, conv2 := runALM(w, withDef, 1e-4, b0, l0)
	if !b1.Equal(b2) || !l1.Equal(l2) || res1 != res2 || out1 != out2 || conv1 != conv2 {
		t.Error("runALM is not deterministic across identical invocations")
	}
}
