package core

import (
	"bytes"
	"testing"

	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestDecompositionRoundTrip(t *testing.T) {
	w := workload.Related(10, 14, 2, rng.New(1))
	d, err := Decompose(w.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecomposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.B.EqualApprox(d.B, 0) || !got.L.EqualApprox(d.L, 0) {
		t.Fatal("round-trip changed the factors")
	}
	if got.Residual != d.Residual || got.Converged != d.Converged || got.OuterIterations != d.OuterIterations {
		t.Fatal("round-trip changed metadata")
	}
	// The restored decomposition must still answer queries.
	m, err := NewMechanism(got)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Answer(make([]float64, 14), 1, rng.New(2)); err != nil {
		t.Fatal(err)
	}
}

func TestReadDecompositionCorrupt(t *testing.T) {
	if _, err := ReadDecomposition(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	w := workload.Prefix(6)
	d, err := Decompose(w.W, Options{MaxOuterIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadDecomposition(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
