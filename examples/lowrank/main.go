// Lowrank: the regime where the Low-Rank Mechanism wins by orders of
// magnitude — a large batch of analyst queries that are linear
// combinations of a few base aggregates (the paper's WRelated workload).
// Also demonstrates the optimality certificates of Section 4.1: Lemma 3's
// upper bound, Lemma 4's lower bound and Theorem 2's approximation ratio.
package main

import (
	"fmt"

	"lrm"
)

func main() {
	const (
		m = 256  // queries issued by analysts
		n = 1024 // histogram bins
		s = 8    // hidden base aggregates: rank(W) = 8
	)
	eps := lrm.Epsilon(0.1)

	w := lrm.RelatedWorkload(m, n, s, lrm.NewSource(11))
	fmt.Printf("workload: %d queries over %d bins, rank %d\n", m, n, w.Rank())

	// Optimality certificates for this workload.
	b := lrm.AnalyzeBounds(w.W, float64(eps))
	fmt.Printf("condition number C = %.2f\n", b.ConditionNumber)
	fmt.Printf("Lemma 3 upper bound: %.4g   Lemma 4 lower bound: %.4g\n", b.Upper, b.Lower)
	fmt.Printf("approximation ratio %.2f (Theorem 2 cap %.2f)\n", b.ApproxRatio, b.TheoremTwoBound())

	data := lrm.SocialNetwork(11342, lrm.NewSource(12)).Merge(n)
	const trials = 5
	fmt.Println()
	for _, mech := range []lrm.Mechanism{
		lrm.LaplaceData{},
		lrm.Wavelet{},
		lrm.Hierarchical{},
		lrm.LRM{},
	} {
		meas, err := lrm.Evaluate(mech, w, data.Counts, eps, trials, lrm.NewSource(13))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-4s  avg squared error %.4g   prepare %.2fs\n",
			mech.Name(), meas.AvgSquaredError, meas.PrepareSeconds)
	}

	d, err := lrm.Decompose(w.W, lrm.DecomposeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nLRM decomposition: inner dimension %d (vs n = %d unit counts a\n", d.B.Cols(), n)
	fmt.Printf("full-rank strategy would need), analytic SSE %.4g\n", d.ExpectedSSE(float64(eps)))
}
