package core

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func testMechanism(t *testing.T, w *mat.Dense) (*Mechanism, *Decomposition) {
	t.Helper()
	d, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMechanism(d)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestMechanismUnbiased(t *testing.T) {
	w := workload.Related(8, 10, 2, rng.New(1))
	m, _ := testMechanism(t, w.W)
	x := rng.New(2).UniformVec(10, 0, 100)
	exact := w.Answer(x)
	src := rng.New(3)
	const trials = 20_000
	sums := make([]float64, len(exact))
	for i := 0; i < trials; i++ {
		noisy, err := m.Answer(x, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range noisy {
			sums[j] += v
		}
	}
	for j, want := range exact {
		mean := sums[j] / trials
		// The mechanism is unbiased up to the (tiny) structural residual.
		if math.Abs(mean-want) > 0.05*math.Abs(want)+2 {
			t.Fatalf("mean[%d] = %v, exact %v", j, mean, want)
		}
	}
}

func TestMechanismEmpiricalSSEMatchesLemma1(t *testing.T) {
	w := workload.Related(10, 12, 2, rng.New(4))
	m, d := testMechanism(t, w.W)
	x := make([]float64, 12) // zero data isolates the Laplace error term
	exact := w.Answer(x)
	src := rng.New(5)
	const eps = 0.5
	const trials = 8000
	var total float64
	for i := 0; i < trials; i++ {
		noisy, err := m.Answer(x, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		for j := range noisy {
			dlt := noisy[j] - exact[j]
			total += dlt * dlt
		}
	}
	got := total / trials
	want := d.ExpectedSSE(eps)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("empirical SSE %v vs Lemma 1's %v", got, want)
	}
}

func TestMechanismInputValidation(t *testing.T) {
	w := workload.Range(5, 8, rng.New(6))
	m, _ := testMechanism(t, w.W)
	src := rng.New(7)
	if _, err := m.Answer(make([]float64, 7), 1, src); err == nil {
		t.Fatal("wrong data length accepted")
	}
	if _, err := m.Answer(make([]float64, 8), 0, src); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestNewMechanismValidation(t *testing.T) {
	if _, err := NewMechanism(nil); err == nil {
		t.Fatal("nil decomposition accepted")
	}
	bad := &Decomposition{B: mat.New(3, 2), L: mat.New(3, 4)}
	if _, err := NewMechanism(bad); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
}

func TestMechanismEpsilonScaling(t *testing.T) {
	// SSE must scale as 1/ε² (Lemma 1).
	w := workload.Prefix(10)
	m, _ := testMechanism(t, w.W)
	r := m.ExpectedSSE(0.1) / m.ExpectedSSE(1)
	if math.Abs(r-100) > 1e-6 {
		t.Fatalf("SSE(0.1)/SSE(1) = %v, want 100", r)
	}
}

func TestMechanismDecompositionAccessor(t *testing.T) {
	w := workload.Prefix(6)
	m, d := testMechanism(t, w.W)
	if m.Decomposition() != d {
		t.Fatal("Decomposition accessor mismatch")
	}
}
