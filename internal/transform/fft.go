// Package transform implements the orthonormal transforms used by the
// synopsis-based mechanisms: the discrete Fourier transform (radix-2 FFT
// with a Bluestein fallback for arbitrary lengths), the DCT-II/III pair,
// and the orthonormal Haar wavelet transform. All transforms here are
// unitary/orthonormal, so Parseval's identity holds exactly: ‖T(x)‖₂ =
// ‖x‖₂. That property is what makes the DP sensitivity analysis of the
// Fourier perturbation algorithm and the compressive mechanism go
// through, and it is property-tested.
package transform

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the unitary discrete Fourier transform of x:
//
//	X[k] = (1/√n) Σ_j x[j]·exp(−2πi·jk/n)
//
// Any length is accepted; powers of two use the in-place radix-2
// algorithm, other lengths use Bluestein's chirp-z reduction to a
// power-of-two convolution. The input slice is not modified.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	scale := complex(1/math.Sqrt(float64(len(x))), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// IFFT inverts FFT: IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	scale := complex(1/math.Sqrt(float64(len(x))), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// FFTReal transforms a real vector, returning the full complex spectrum
// under the same unitary normalization as FFT.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	scale := complex(1/math.Sqrt(float64(len(x))), 0)
	for i := range c {
		c[i] *= scale
	}
	return c
}

// IFFTReal inverts FFTReal, discarding the (numerically tiny) imaginary
// residue. It is only correct when the spectrum came from a real signal.
func IFFTReal(spec []complex128) []float64 {
	c := IFFT(spec)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

// fftInPlace computes the unnormalized DFT (or inverse when inv) of x.
func fftInPlace(x []complex128, inv bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inv)
		return
	}
	bluestein(x, inv)
}

// radix2 is the iterative Cooley-Tukey FFT for power-of-two lengths.
func radix2(x []complex128, inv bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inv {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wn := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wn
			}
		}
	}
}

// bluestein reduces an arbitrary-length DFT to a power-of-two circular
// convolution (chirp-z transform).
func bluestein(x []complex128, inv bool) {
	n := len(x)
	sign := -1.0
	if inv {
		sign = 1.0
	}
	// Chirp factors w[j] = exp(sign·πi·j²/n). j² mod 2n avoids overflow
	// and keeps the angle exact for large j.
	w := make([]complex128, n)
	for j := 0; j < n; j++ {
		jj := (int64(j) * int64(j)) % int64(2*n)
		w[j] = cmplx.Exp(complex(0, sign*math.Pi*float64(jj)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		a[j] = x[j] * w[j]
		b[j] = cmplx.Conj(w[j])
	}
	for j := 1; j < n; j++ {
		b[m-j] = cmplx.Conj(w[j])
	}
	radix2(a, false)
	radix2(b, false)
	for j := range a {
		a[j] *= b[j]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for j := 0; j < n; j++ {
		x[j] = a[j] * scale * w[j]
	}
}

// Convolve returns the circular convolution of two equal-length real
// vectors via the FFT. Used by the tests as an independent check of the
// transform and exported because synopsis code occasionally needs it.
func Convolve(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("transform: Convolve length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	fa := FFTReal(a)
	fb := FFTReal(b)
	for i := range fa {
		fa[i] *= fb[i]
	}
	out := IFFTReal(fa)
	// Two unitary forward transforms and one inverse leave a residual
	// factor of √n relative to the plain convolution.
	s := math.Sqrt(float64(n))
	for i := range out {
		out[i] *= s
	}
	return out, nil
}
