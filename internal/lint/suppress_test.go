package lint

import (
	"strings"
	"testing"
)

// TestSuppressionEdgeCases pins three corners of the //lint:ignore
// machinery against the suppress fixture package:
//
//   - a directive directly above a multi-line call suppresses the
//     finding reported on the call's first line;
//   - a violation inside a generated file (// Code generated ... DO NOT
//     EDIT.) is exempt wholesale, with no directive needed;
//   - a directive naming an unknown analyzer is itself a finding, and
//     the only one the package produces.
func TestSuppressionEdgeCases(t *testing.T) {
	pkgs, err := LoadPackages([]string{fixtureRoot + "suppress"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages", len(pkgs))
	}
	diags, err := runAnalyzers(pkgs[0], All())
	if err != nil {
		t.Fatal(err)
	}
	var unknownDirective int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, `unknown analyzer "fancypants"`):
			unknownDirective++
			if d.Analyzer != "lint" {
				t.Errorf("unknown-analyzer finding attributed to %q, want the lint machinery itself", d.Analyzer)
			}
		case strings.Contains(d.Pos.Filename, "generated.go"):
			t.Errorf("finding inside a generated file: %s", d)
		case d.Analyzer == "noiseflow":
			t.Errorf("suppressed or generated-file finding leaked: %s", d)
		default:
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if unknownDirective != 1 {
		t.Errorf("want exactly 1 unknown-analyzer finding, got %d (total %d)", unknownDirective, len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}
