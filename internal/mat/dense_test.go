package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rnd *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rnd.NormFloat64()
	}
	return m
}

func TestNewDimensions(t *testing.T) {
	m := New(3, 5)
	if r, c := m.Dims(); r != 3 || c != 5 {
		t.Fatalf("Dims() = (%d,%d), want (3,5)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(4, 4)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %v, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At(2,0) did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %d×%d, want 3×2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected contents: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestEye(t *testing.T) {
	m := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := Diag([]float64{2, 5})
	if m.At(0, 0) != 2 || m.At(1, 1) != 5 || m.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", m)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims = %d×%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	m := randDense(rnd, 7, 4)
	if !m.T().T().Equal(m) {
		t.Fatal("T∘T is not identity")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Fatal("Row returned aliased storage")
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("Col(1) = %v", col)
	}
	col[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col returned aliased storage")
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := New(2, 3)
	m.SetRow(0, []float64{1, 2, 3})
	m.SetCol(2, []float64{7, 8})
	if m.At(0, 0) != 1 || m.At(0, 2) != 7 || m.At(1, 2) != 8 {
		t.Fatalf("SetRow/SetCol wrong: %v", m)
	}
}

func TestSlice(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want) {
		t.Fatalf("Slice = %v, want %v", s, want)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 4 {
		t.Fatal("Slice aliased the source")
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1 + 1e-12, 2}})
	if !a.EqualApprox(b, 1e-9) {
		t.Fatal("EqualApprox(1e-9) should hold")
	}
	if a.EqualApprox(b, 1e-15) {
		t.Fatal("EqualApprox(1e-15) should fail")
	}
	c := FromRows([][]float64{{1, 2}, {3, 4}})
	if a.EqualApprox(c, 1) {
		t.Fatal("EqualApprox with shape mismatch should fail")
	}
}

func TestIsFinite(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if !m.IsFinite() {
		t.Fatal("finite matrix reported non-finite")
	}
	m.Set(0, 0, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN matrix reported finite")
	}
	m.Set(0, 0, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf matrix reported finite")
	}
}

func TestNewFromDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFromData with bad length did not panic")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestStringElides(t *testing.T) {
	m := New(20, 20)
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}
