// Rangequeries: histogram publishing for range counts — the workload the
// wavelet and hierarchical baselines were designed for — through the
// implicit workload API. Part one serves a Kronecker range workload so
// large its matrix could never exist (2²⁰×2²⁰ ≈ 10¹² cells, ~8 TB dense)
// straight from its structure. Part two materializes a small all-ranges
// spec through the dense bridge and compares LM, WM, HM and LRM by
// Monte-Carlo measured error, as in the paper's Section 6.
package main

import (
	"fmt"
	"time"

	"lrm"
)

func main() {
	eps := lrm.Epsilon(0.1)

	// --- Part one: a workload that can only exist implicitly. ---
	// Two-dimensional prefix sums over a 1024×1024 grid: every query is a
	// dominance rectangle [0,i]×[0,j], the building block 2-D range counts
	// difference from. As a matrix this is 2²⁰ queries × 2²⁰ cells; as a
	// spec it is one line.
	spec, err := lrm.ParseWorkloadSpec("kron:prefix(1024)xprefix(1024)")
	if err != nil {
		panic(err)
	}
	cells := float64(spec.Queries()) * float64(spec.Domain())
	fmt.Printf("implicit workload %s: %d×%d (%.2g cells ≈ %.0f TB dense)\n",
		spec.Describe(), spec.Queries(), spec.Domain(), cells, cells*8/(1<<40))

	stats, err := lrm.AnalyzeSpec(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("closed-form analysis: rank %d, Δ' = %g, ΣW² = %.4g\n",
		stats.Rank, stats.Sensitivity, stats.SquaredSum)

	start := time.Now()
	pl, err := lrm.PlanSpec(spec, lrm.PlanOptions{Eps: eps})
	if err != nil {
		panic(err)
	}
	fmt.Printf("planned %s in %s\n", pl.Summary(), time.Since(start).Round(time.Millisecond))

	// Serve it: a synthetic 1024×1024 grid histogram, flattened row-major.
	grid := lrm.NewSource(7).UniformVec(spec.Domain(), 0, 3)
	start = time.Now()
	answers, err := pl.Prepared().Answer(grid, eps, lrm.NewSource(8))
	if err != nil {
		panic(err)
	}
	fmt.Printf("answered %d dominance queries in %s (peak memory: megabytes, not terabytes)\n\n",
		len(answers), time.Since(start).Round(time.Millisecond))

	// --- Part two: the dense bridge for measured-error comparisons. ---
	// All n(n+1)/2 ranges over a 64-bin Net Trace histogram. The spec is
	// the source of truth; MaterializeSpec builds the matrix only because
	// the Monte-Carlo harness and the dense baselines need one, and only
	// after checking it is small enough to build.
	const n = 64
	ranges := lrm.NewAllRangesSpec(n)
	w, err := lrm.MaterializeSpec(ranges, 1<<22)
	if err != nil {
		panic(err)
	}
	data := lrm.NetTrace(8192, lrm.NewSource(3)).Merge(n)
	fmt.Printf("dense bridge: %s → %d range queries over %d bins (rank %d)\n",
		ranges.Describe(), w.Queries(), w.Domain(), w.Rank())

	const trials = 5
	for _, mech := range []lrm.Mechanism{
		lrm.LaplaceData{},
		lrm.Wavelet{},
		lrm.Hierarchical{},
		lrm.LRM{},
	} {
		meas, err := lrm.Evaluate(mech, w, data.Counts, eps, trials, lrm.NewSource(5))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-4s  avg squared error %.4g   prepare %.2fs\n",
			mech.Name(), meas.AvgSquaredError, meas.PrepareSeconds)
	}
	fmt.Println("\n(The all-ranges workload is full rank, so no strategy beats plain")
	fmt.Println(" noise-on-data by much at this size — LRM's territory is the")
	fmt.Println(" low-rank regime, and the implicit path above is how it scales.)")
}
