// Quickstart: answer a small batch of range queries over a histogram
// under ε-differential privacy with the Low-Rank Mechanism, using only
// the public facade.
package main

import (
	"fmt"

	"lrm"
)

func main() {
	// A histogram of 16 unit counts (say, patients per age bracket).
	x := []float64{12, 40, 33, 91, 55, 18, 27, 64, 70, 22, 9, 31, 48, 53, 26, 17}

	// Eight random range-count queries over the 16 buckets.
	w := lrm.RangeWorkload(8, len(x), lrm.NewSource(1))

	// One-call path: decompose the workload and answer privately.
	eps := lrm.Epsilon(1.0)
	noisy, err := lrm.AnswerBatch(w, x, eps, lrm.NewSource(42))
	if err != nil {
		panic(err)
	}

	exact := w.Answer(x)
	fmt.Println("query  exact    private")
	for i := range noisy {
		fmt.Printf("%5d  %7.1f  %8.2f\n", i, exact[i], noisy[i])
	}

	// The decomposition view, for users who want the knobs.
	d, err := lrm.Decompose(w.W, lrm.DecomposeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nworkload rank: %d, inner dimension r: %d\n", w.Rank(), d.B.Cols())
	fmt.Printf("expected SSE at eps=1: %.1f (Laplace-on-data would be %.1f)\n",
		d.ExpectedSSE(1), 2*w.SquaredSum())
}
