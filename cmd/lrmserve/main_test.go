package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"lrm/internal/core"
	"lrm/internal/engine"
	"lrm/internal/mechanism"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Options{
		Mechanism: mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, "LRM", 1<<20, nil))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func postAnswer(t *testing.T, url string, body answerRequest) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/answer", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestServeAnswer(t *testing.T) {
	srv, eng := newTestServer(t)
	req := answerRequest{
		Workload:   [][]float64{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
		Histograms: [][]float64{{10, 20, 30}, {5, 5, 5}},
		Eps:        0.5,
		Seed:       3,
	}
	resp, body := postAnswer(t, srv.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out answerResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if len(out.Answers) != 2 || len(out.Answers[0]) != 3 {
		t.Fatalf("answers shape %v, want 2×3", out.Answers)
	}
	if len(out.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q, want 64 hex chars", out.Fingerprint)
	}
	// Identical request: cache hit, bit-identical release at the same seed.
	resp2, body2 := postAnswer(t, srv.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	var out2 answerResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, out2) {
		t.Fatal("identical seeded requests produced different releases")
	}
	if st := eng.Stats(); st.Prepares != 1 || st.Hits < 1 {
		t.Fatalf("stats = %+v, want one prepare and a cache hit", st)
	}
}

func TestServeAnswerErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name   string
		req    answerRequest
		status int
	}{
		{"empty workload", answerRequest{Histograms: [][]float64{{1}}, Eps: 1}, http.StatusBadRequest},
		{"ragged workload", answerRequest{Workload: [][]float64{{1, 2}, {3}}, Histograms: [][]float64{{1, 2}}, Eps: 1}, http.StatusBadRequest},
		{"bad eps", answerRequest{Workload: [][]float64{{1}}, Histograms: [][]float64{{1}}, Eps: 0}, http.StatusBadRequest},
		{"wrong histogram length", answerRequest{Workload: [][]float64{{1, 2}}, Histograms: [][]float64{{1}}, Eps: 1}, http.StatusBadRequest},
		{"budget exhausted", answerRequest{
			Workload:   [][]float64{{1, 0}},
			Histograms: [][]float64{{1, 2}, {3, 4}, {5, 6}},
			Eps:        0.5, Budget: 1.0,
		}, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postAnswer(t, srv.URL, tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, body, tc.status)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %s not {\"error\": ...}", body)
			}
		})
	}
	// Unknown fields are rejected (catches schema typos like "epsilon").
	resp, err := http.Post(srv.URL+"/answer", "application/json",
		bytes.NewReader([]byte(`{"workload":[[1]],"histograms":[[1]],"epsilon":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestServeStatsAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	postAnswer(t, srv.URL, answerRequest{
		Workload:   [][]float64{{1, 1}},
		Histograms: [][]float64{{2, 3}},
		Eps:        1,
	})
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mechanism != "LRM" || st.Engine.Requests != 1 || st.Engine.Answers != 1 {
		t.Fatalf("stats = %+v, want LRM with one answered request", st)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
	// Method checks.
	mresp, err := http.Get(srv.URL + "/answer")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /answer status %d, want 405", mresp.StatusCode)
	}
}
