package engine

import (
	"fmt"
	"io"
	"math"
	"path/filepath"

	"lrm/internal/core"
	"lrm/internal/faultfs"
	"lrm/internal/mat"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/workload"
)

// cacheEntry is one prepared workload resident in the LRU. On a
// plan-aware engine pl records the decision that chose p's mechanism —
// plans ride the same LRU/singleflight as the Prepared they produced,
// so a plan can never outlive (or lag behind) its preparation.
type cacheEntry struct {
	fp string
	p  mechanism.Prepared
	pl *plan.Plan // nil on fixed-mechanism engines
}

// flightCall is one in-flight preparation that concurrent requests for the
// same fingerprint coalesce onto (singleflight). p and err are written
// exactly once, before done is closed; waiters read them only after
// receiving from done, so the channel close publishes them.
type flightCall struct {
	done chan struct{}
	p    mechanism.Prepared
	err  error
}

// cached returns the resident Prepared for a fingerprint without
// preparing anything on a miss (freshening the LRU and hit counter like
// any lookup). The sharded path uses it to answer warm shards without
// materializing their workload rows at all; a false return is not
// authoritative under concurrency — callers follow up with prepared(),
// whose singleflight still guarantees at most one preparation.
func (e *Engine) cached(fp string) (mechanism.Prepared, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.byFP[fp]; ok {
		e.lru.MoveToFront(el)
		e.hits.Add(1)
		return el.Value.(*cacheEntry).p, true
	}
	return nil, false
}

// prepared returns the Prepared instance for the workload with the given
// fingerprint, preparing (or loading from disk) at most once per
// fingerprint no matter how many goroutines ask concurrently.
func (e *Engine) prepared(fp string, w *workload.Workload) (mechanism.Prepared, error) {
	return e.preparedWith(fp, func() (mechanism.Prepared, *plan.Plan, error) {
		return e.load(fp, w)
	})
}

// preparedWith is the cache/singleflight core shared by the dense and
// spec paths: one LRU lookup, one in-flight coalesce, and at most one
// invocation of load per fingerprint however many goroutines ask.
func (e *Engine) preparedWith(fp string, load func() (mechanism.Prepared, *plan.Plan, error)) (mechanism.Prepared, error) {
	e.mu.Lock()
	if el, ok := e.byFP[fp]; ok {
		e.lru.MoveToFront(el)
		e.mu.Unlock()
		e.hits.Add(1)
		return el.Value.(*cacheEntry).p, nil
	}
	if c, ok := e.flight[fp]; ok {
		e.mu.Unlock()
		e.coalesced.Add(1)
		<-c.done
		return c.p, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	e.flight[fp] = c
	e.mu.Unlock()

	e.misses.Add(1)
	p, pl, err := load()

	e.mu.Lock()
	delete(e.flight, fp)
	if err == nil {
		e.insertLocked(fp, p, pl)
	}
	e.mu.Unlock()
	c.p, c.err = p, err
	close(c.done)
	return p, err
}

// insertLocked adds a prepared workload at the front of the LRU and evicts
// from the back past capacity. Caller holds e.mu and owns the (sole)
// flight for fp, so no entry for fp can already be resident.
//
//lrm:guardedby mu
func (e *Engine) insertLocked(fp string, p mechanism.Prepared, pl *plan.Plan) {
	e.byFP[fp] = e.lru.PushFront(&cacheEntry{fp: fp, p: p, pl: pl})
	for e.lru.Len() > e.capacity {
		el := e.lru.Back()
		evicted := el.Value.(*cacheEntry).fp
		delete(e.byFP, evicted)
		e.lru.Remove(el)
		e.evictions.Add(1)
		e.dropMemo(evicted)
	}
}

// dropMemo removes fingerprint-memo entries for an evicted workload, so
// the memo's pointer keys stop pinning matrices the cache no longer
// serves. Eviction is cold-path; the scan is bounded by memoLimit.
func (e *Engine) dropMemo(fp string) {
	e.memoMu.Lock()
	for k, v := range e.memo {
		if v == fp {
			delete(e.memo, k)
		}
	}
	e.memoMu.Unlock()
}

// load produces the Prepared (and, on a plan-aware engine, the Plan) for
// one fingerprint: disk cache first (when configured and the mechanism
// supports it), then a fresh Prepare, which is persisted back to disk for
// the next process.
func (e *Engine) load(fp string, w *workload.Workload) (mechanism.Prepared, *plan.Plan, error) {
	if e.planner != nil {
		return e.loadPlanned(fp, w)
	}
	path := e.diskPath(fp)
	if path != "" {
		if p, err := loadPrepared(e.fs, path, w, e.gamma); err == nil {
			e.diskHits.Add(1)
			return p, nil, nil
		}
		// A missing, corrupt, or mismatched cache file must never take
		// down serving: fall through to a fresh preparation.
	}
	e.prepares.Add(1)
	if e.hook != nil {
		e.hook(fp)
	}
	p, err := e.mech.Prepare(w)
	if err != nil {
		return nil, nil, err
	}
	if path != "" {
		if d, ok := decompositionOf(p); ok {
			if err := e.writeDecomposition(path, d); err == nil {
				e.diskWrites.Add(1)
			}
		}
	}
	return p, nil, nil
}

// diskPath returns the cache file for a fingerprint, or "" when disk
// caching is disabled (no directory configured, or a non-LRM mechanism).
// The name is <workload-fingerprint>-<options-digest>.lrmd — both parts
// lowercase hex, so no escaping — keyed on the options too because
// differently tuned LRM engines sharing a directory must not serve each
// other's factorizations.
func (e *Engine) diskPath(fp string) string {
	if e.dir == "" {
		return ""
	}
	return filepath.Join(e.dir, fp+"-"+e.optTag+".lrmd")
}

// decomposer is implemented by Prepared instances whose state is a
// serializable workload decomposition (the LRM); only those can round-trip
// through the disk cache.
type decomposer interface {
	Decomposition() *core.Decomposition
}

func decompositionOf(p mechanism.Prepared) (*core.Decomposition, bool) {
	d, ok := p.(decomposer)
	if !ok {
		return nil, false
	}
	return d.Decomposition(), true
}

// loadPrepared restores a persisted decomposition and checks it actually
// factors this workload (a renamed, foreign, or tampered file fails
// closed here; the decode itself already rejects non-finite or corrupt
// payloads). This runs only on disk misses, so the extra m×n product is
// paid once per workload per process, not per answer.
func loadPrepared(fs faultfs.FS, path string, w *workload.Workload, gamma float64) (mechanism.Prepared, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := core.ReadDecomposition(f)
	if err != nil {
		return nil, err
	}
	if d.B.Rows() != w.Queries() || d.L.Cols() != w.Domain() {
		return nil, fmt.Errorf("engine: cached decomposition is %d×%d for a %d×%d workload",
			d.B.Rows(), d.L.Cols(), w.Queries(), w.Domain())
	}
	// Integrity: the defining invariant is W ≈ B·L. Metadata can be
	// forged, but not the actual residual — recompute it and require
	// consistency with the stored value (small slack for the optimizer's
	// normalized-space arithmetic) plus a sanity cap, so a well-formed
	// file holding someone else's (or a zeroed) factorization cannot
	// silently poison every answer for this workload. The cap admits the
	// engine's own configured relaxation γ, so a deliberately loose-γ
	// deployment still gets disk hits for its own legitimate files.
	normW := math.Sqrt(mat.SquaredSum(w.W))
	maxResidual := 0.5 * normW
	if gamma > maxResidual {
		maxResidual = gamma
	}
	frob := math.Sqrt(mat.SquaredSum(mat.Sub(w.W, mat.Mul(d.B, d.L))))
	if frob > d.Residual+1e-6*normW || d.Residual > maxResidual*(1+1e-9) {
		return nil, fmt.Errorf("engine: cached decomposition does not factor this workload (‖W−BL‖=%.3g, stored %.3g, ‖W‖=%.3g)",
			frob, d.Residual, normW)
	}
	return mechanism.PreparedFromDecomposition(d)
}

// writeDecomposition persists atomically and durably: temp file, fsync,
// rename, directory fsync. The temp fsync *before* the rename is load-
// bearing — rename is atomic in the namespace but says nothing about the
// data, so renaming a dirty temp lets a crash leave the final name
// pointing at a truncated (even zero-length) file. A concurrent reader —
// another engine sharing the directory — never observes a half-written
// file, and a crash at any point leaves either no file or a complete
// one.
//
//lrm:sink — the cache file is on-disk state outside the process
func (e *Engine) writeDecomposition(path string, d *core.Decomposition) error {
	return e.writeEncoded(path, ".lrmd-*", d)
}

// encoder is any artifact with a self-contained binary/JSON writer:
// dense decompositions, factored (Kronecker) decompositions, and plan
// documents all persist through the same atomic write.
type encoder interface {
	Encode(w io.Writer) error
}

// writeEncoded is the shared atomic+durable writer behind every cache
// artifact: temp file, fsync, rename, directory fsync (see
// writeDecomposition's doc for why the pre-rename fsync is load-bearing).
func (e *Engine) writeEncoded(path, tmpPattern string, enc encoder) error {
	dir := filepath.Dir(path)
	tmp, err := e.fs.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	defer e.fs.Remove(tmp.Name())
	if err := enc.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := e.fs.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return e.fs.SyncDir(dir)
}
