package core

import (
	"testing"

	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestTuneRankFindsKnee(t *testing.T) {
	// Low-rank workload: every ratio ≥ 1 should converge, and the chosen
	// rank must be at least rank(W) (ratios below 1 produce the Figure 3
	// cliff and must not win).
	w := workload.Related(24, 32, 4, rng.New(1))
	best, trials, err := TuneRank(w.W, []float64{0.5, 1.0, 1.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 3 {
		t.Fatalf("%d trials", len(trials))
	}
	if best < 4 {
		t.Fatalf("best rank %d below rank(W) = 4", best)
	}
	// The sub-rank trial must be visibly worse (infeasible or high error).
	var sub, full *RankTrial
	for i := range trials {
		switch trials[i].Ratio {
		case 0.5:
			sub = &trials[i]
		case 1.0:
			full = &trials[i]
		}
	}
	if sub == nil || full == nil {
		t.Fatal("missing trials")
	}
	if sub.Converged && sub.ExpectedSSE < full.ExpectedSSE {
		t.Fatalf("sub-rank trial should not win: %+v vs %+v", sub, full)
	}
}

func TestTuneRankDefaults(t *testing.T) {
	w := workload.Related(16, 20, 3, rng.New(2))
	best, trials, err := TuneRank(w.W, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if best < 3 {
		t.Fatalf("best %d", best)
	}
	if len(trials) == 0 || len(trials) > 3 {
		t.Fatalf("%d trials with default ratios", len(trials))
	}
	for _, tr := range trials {
		if tr.Seconds < 0 || tr.Rank < 1 {
			t.Fatalf("bad trial %+v", tr)
		}
	}
}

func TestTuneRankClampsToMinDim(t *testing.T) {
	// Huge ratios clamp r at min(m, n) and deduplicate.
	w := workload.Related(10, 8, 6, rng.New(3))
	_, trials, err := TuneRank(w.W, []float64{5, 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 1 {
		t.Fatalf("expected dedup to one clamped trial, got %d", len(trials))
	}
	if trials[0].Rank != 8 {
		t.Fatalf("clamped rank %d want 8", trials[0].Rank)
	}
}

func TestTuneRankValidation(t *testing.T) {
	if _, _, err := TuneRank(nil, nil, Options{}); err == nil {
		t.Fatal("want error for nil workload")
	}
	w := workload.Related(6, 6, 2, rng.New(4))
	if _, _, err := TuneRank(w.W, []float64{-1}, Options{}); err == nil {
		t.Fatal("want error for negative ratio")
	}
}
