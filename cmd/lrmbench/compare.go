package main

// The -compare mode is the CI perf-regression gate: it diffs two
// BENCH_*.json trajectory documents (the committed baseline and a fresh
// run) and fails when any tier-1 kernel got slower than the tolerance
// allows. Non-tier-1 entries are reported for context but never gate —
// they include end-to-end sweeps whose variance would make the gate cry
// wolf.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// tier1Benchmarks are the kernels the gate protects: the tentpole GEMM
// size, the end-to-end ALM decomposition, the adaptive planner (dense
// and implicit), and the engine's serving paths. A tier-1 name missing
// from the new run fails the gate (a silently dropped benchmark is how
// regressions hide); one missing from the old baseline is reported as
// new and skipped, so adding a kernel does not require rewriting
// history.
var tier1Benchmarks = []string{"MatMul512", "DecomposeBench", "Plan", "ImplicitPlan", "EngineAnswer", "EngineAnswerMany"}

// compareBenchFiles loads two trajectory documents and gates new against
// old at the given tolerance (0.30 = fail on >30% slowdown), writing a
// per-benchmark report to w. The returned error describes every gate
// violation.
//
// oldPath may be a glob (e.g. 'BENCH_*.json'): the candidate file is
// excluded from the matches and the remaining document with the newest
// "generated" timestamp becomes the baseline. Filename sort would get
// this wrong — two baselines committed the same day order
// lexicographically, not chronologically — and the generated stamp is
// written by the suite itself, so it is the ground truth CI wants.
func compareBenchFiles(w io.Writer, oldPath, newPath string, tol float64) error {
	oldPath, err := resolveBaseline(oldPath, newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "baseline: %s\n", oldPath)
	oldDoc, err := readBenchDocument(oldPath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", oldPath, err)
	}
	newDoc, err := readBenchDocument(newPath)
	if err != nil {
		return fmt.Errorf("candidate %s: %w", newPath, err)
	}
	return compareBenchDocs(w, oldDoc, newDoc, tol)
}

// resolveBaseline expands a glob baseline argument to the matched
// document (excluding the candidate) with the newest generated
// timestamp. A non-glob path is returned unchanged.
func resolveBaseline(oldPath, newPath string) (string, error) {
	if !strings.ContainsAny(oldPath, "*?[") {
		return oldPath, nil
	}
	matches, err := filepath.Glob(oldPath)
	if err != nil {
		return "", fmt.Errorf("baseline glob %q: %w", oldPath, err)
	}
	newAbs, _ := filepath.Abs(newPath)
	best := ""
	var bestGen time.Time
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == newAbs {
			continue
		}
		doc, err := readBenchDocument(m)
		if err != nil {
			return "", fmt.Errorf("baseline candidate %s: %w", m, err)
		}
		if best == "" || doc.Generated.After(bestGen) {
			best, bestGen = m, doc.Generated
		}
	}
	if best == "" {
		return "", fmt.Errorf("baseline glob %q matched no usable documents", oldPath)
	}
	return best, nil
}

func readBenchDocument(path string) (*benchDocument, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDocument
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("parsing: %w", err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks in document")
	}
	return &doc, nil
}

func compareBenchDocs(w io.Writer, oldDoc, newDoc *benchDocument, tol float64) error {
	if tol <= 0 {
		return fmt.Errorf("tolerance must be positive, got %v", tol)
	}
	oldBy := make(map[string]benchResult, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]benchResult, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}
	tier1 := make(map[string]bool, len(tier1Benchmarks))
	var failures []string
	for _, name := range tier1Benchmarks {
		tier1[name] = true
		if _, ok := newBy[name]; !ok {
			failures = append(failures, fmt.Sprintf("tier-1 benchmark %s missing from candidate run", name))
		}
	}

	fmt.Fprintf(w, "%-24s %14s %14s %9s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "gate")
	var newNames []string
	for _, nb := range newDoc.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			// A benchmark just added to the suite has no history to gate
			// against; report it so the trajectory grows visibly, never
			// fail on it (requiring baselines to be rewritten before a
			// kernel can land would invert the workflow).
			fmt.Fprintf(w, "%-24s %14s %14d %9s  %s\n", nb.Name, "-", nb.NsPerOp, "-", "new, no baseline")
			newNames = append(newNames, nb.Name)
			continue
		}
		if ob.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-24s %14d %14d %9s  %s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, "-", "baseline unusable, skipped")
			continue
		}
		delta := float64(nb.NsPerOp)/float64(ob.NsPerOp) - 1
		verdict := "info"
		if tier1[nb.Name] {
			verdict = "ok"
			if delta > tol {
				verdict = fmt.Sprintf("FAIL (>%0.f%%)", tol*100)
				failures = append(failures, fmt.Sprintf("%s regressed %+.1f%% (%d → %d ns/op, tolerance %.0f%%)",
					nb.Name, delta*100, ob.NsPerOp, nb.NsPerOp, tol*100))
			}
		}
		fmt.Fprintf(w, "%-24s %14d %14d %+8.1f%%  %s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta*100, verdict)
	}

	if len(newNames) > 0 {
		fmt.Fprintf(w, "%d new benchmark(s) without a baseline, not gated: %s\n",
			len(newNames), strings.Join(newNames, ", "))
	}

	if len(failures) > 0 {
		msg := "perf gate failed:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
