package plan

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lrm/internal/core"
	"lrm/internal/mechanism"
	"lrm/internal/privacy"
	"lrm/internal/workload"
)

// Plans persist as small JSON documents next to the engine's cached
// decompositions, so a restarted process recovers the *decision* —
// which mechanism, which tuned parameters — without re-running the
// analysis or the candidate scoring. The document carries the numeric
// analysis summary but never the SVD (process-local) or the prepared
// mechanism; Decode therefore returns a Plan whose Prepared() is nil,
// and the engine re-prepares from the recorded decision (for an lrm
// winner that means restoring the .lrmd decomposition, not re-running
// the ALM).

// statsDoc is the serializable subset of workload.Stats (everything but
// the SVD).
type statsDoc struct {
	Queries         int     `json:"queries"`
	Domain          int     `json:"domain"`
	Rank            int     `json:"rank"`
	Sensitivity     float64 `json:"sensitivity"`
	SquaredSum      float64 `json:"squared_sum"`
	ConditionNumber float64 `json:"condition_number"`
	LaplaceSSE      float64 `json:"laplace_sse"`
	ResultsSSE      float64 `json:"results_sse"`
}

// planDoc is the on-disk schema. Digest makes the document
// self-checking: Decode recomputes it from the fields and rejects a
// mismatch, so a truncated or hand-edited file cannot smuggle in a
// decision the planner never made.
type planDoc struct {
	Fingerprint string         `json:"fingerprint"`
	Mechanism   string         `json:"mechanism"`
	Eps         float64        `json:"eps"`
	SSE         float64        `json:"sse"`
	Shards      int            `json:"shards"`
	Spec        string         `json:"spec,omitempty"`
	LRMOptions  core.Options   `json:"lrm_options"`
	Candidates  []candidateDoc `json:"candidates"`
	Stats       *statsDoc      `json:"stats,omitempty"`
	Digest      string         `json:"digest"`
}

// candidateDoc mirrors Candidate with NaN-safe SSE encoding
// (encoding/json rejects NaN, which is exactly what a skipped
// candidate's SSE is).
type candidateDoc struct {
	Name   string   `json:"name"`
	SSE    *float64 `json:"sse,omitempty"` // nil encodes NaN
	Source string   `json:"source"`
	Reason string   `json:"reason,omitempty"`
}

// Encode writes the plan as its JSON document.
func (p *Plan) Encode(w io.Writer) error {
	doc := planDoc{
		Fingerprint: p.Fingerprint,
		Mechanism:   p.Mechanism,
		Eps:         float64(p.Eps),
		SSE:         p.SSE,
		Shards:      p.Shards,
		Spec:        p.SpecDesc,
		LRMOptions:  p.LRMOptions,
		Digest:      p.Digest(),
	}
	for _, c := range p.Candidates {
		cd := candidateDoc{Name: c.Name, Source: c.Source, Reason: c.Reason}
		if !math.IsNaN(c.SSE) {
			sse := c.SSE
			cd.SSE = &sse
		}
		doc.Candidates = append(doc.Candidates, cd)
	}
	if p.Stats != nil {
		doc.Stats = &statsDoc{
			Queries:         p.Stats.Queries,
			Domain:          p.Stats.Domain,
			Rank:            p.Stats.Rank,
			Sensitivity:     p.Stats.Sensitivity,
			SquaredSum:      p.Stats.SquaredSum,
			ConditionNumber: p.Stats.ConditionNumber,
			LaplaceSSE:      p.Stats.LaplaceSSE,
			ResultsSSE:      p.Stats.ResultsSSE,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Decode restores a plan persisted with Encode, validating that the
// winner is a registered mechanism, the scoring budget is valid, and
// the stored digest matches the recomputed one. The returned Plan
// carries the decision only — Prepared() is nil.
func Decode(r io.Reader) (*Plan, error) {
	var doc planDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("plan: decoding: %w", err)
	}
	if doc.Mechanism == "" {
		return nil, fmt.Errorf("plan: document names no mechanism")
	}
	if _, err := mechanism.ByName(doc.Mechanism, mechanism.Config{}); err != nil {
		return nil, fmt.Errorf("plan: document winner: %w", err)
	}
	if err := privacy.Epsilon(doc.Eps).Validate(); err != nil {
		return nil, fmt.Errorf("plan: document eps: %w", err)
	}
	if doc.Shards < 1 || doc.Fingerprint == "" || math.IsNaN(doc.SSE) || math.IsInf(doc.SSE, 0) || doc.SSE < 0 {
		return nil, fmt.Errorf("plan: document invalid (shards %d, sse %v, fingerprint %q)",
			doc.Shards, doc.SSE, doc.Fingerprint)
	}
	p := &Plan{
		Fingerprint: doc.Fingerprint,
		Mechanism:   doc.Mechanism,
		Eps:         privacy.Epsilon(doc.Eps),
		SSE:         doc.SSE,
		Shards:      doc.Shards,
		SpecDesc:    doc.Spec,
		LRMOptions:  doc.LRMOptions,
	}
	for _, cd := range doc.Candidates {
		c := Candidate{Name: cd.Name, SSE: math.NaN(), Source: cd.Source, Reason: cd.Reason}
		if cd.SSE != nil {
			c.SSE = *cd.SSE
		}
		p.Candidates = append(p.Candidates, c)
	}
	if doc.Stats != nil {
		p.Stats = &workload.Stats{
			Queries:         doc.Stats.Queries,
			Domain:          doc.Stats.Domain,
			Rank:            doc.Stats.Rank,
			Sensitivity:     doc.Stats.Sensitivity,
			SquaredSum:      doc.Stats.SquaredSum,
			ConditionNumber: doc.Stats.ConditionNumber,
			LaplaceSSE:      doc.Stats.LaplaceSSE,
			ResultsSSE:      doc.Stats.ResultsSSE,
		}
	}
	if got := p.Digest(); got != doc.Digest {
		return nil, fmt.Errorf("plan: digest mismatch (stored %s, recomputed %s) — stale or tampered document", doc.Digest, got)
	}
	return p, nil
}
