package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strings"
)

// This file is the core of the mini-framework: the Analyzer/Pass/
// Diagnostic contract (a deliberate subset of golang.org/x/tools/
// go/analysis, so the suite can migrate onto the real multichecker the
// day the dependency becomes available) plus the //lint:ignore
// suppression machinery.

// Analyzer is one static check. Exactly one of Run and RunProgram is
// set: Run inspects a single type-checked package through the Pass,
// while RunProgram sees the whole load at once — the shape the dataflow
// analyzers need, since their findings depend on call paths that cross
// package boundaries.
type Analyzer struct {
	// Name is the short identifier used in output, in //lint:ignore
	// comments, and in fixture directories.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run analyzes one package. It returns an error only for internal
	// failures; findings go through Pass.Report.
	Run func(*Pass) error
	// RunProgram analyzes every loaded package together, with the
	// call-graph index of program.go available. Runs once per load, not
	// once per package.
	RunProgram func(*ProgramPass) error
}

// Pass carries one package's parsed and type-checked state through an
// Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// ProgramPass carries the whole load through an Analyzer's RunProgram.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Report records a finding at a FileSet position.
func (p *ProgramPass) Report(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Prog.Fset.Position(pos), format, args...)
}

// ReportAt records a finding at an explicit file position — the entry
// point for findings in files the FileSet never parsed, such as the
// assembly sources asmvet checks.
func (p *ProgramPass) ReportAt(position token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Report records a finding at pos unless an ignore comment suppresses it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreSet indexes //lint:ignore comments by file and line. A comment
//
//	//lint:ignore <analyzer> <justification>
//
// suppresses that analyzer's findings on the same line and on the line
// directly below it (so it can sit on its own line above the flagged
// statement, staticcheck-style, or trail the statement itself). The
// justification is mandatory: an ignore without a reason is itself
// reported, so every suppression in the tree documents why the invariant
// does not apply.
type ignoreSet struct {
	// byLine maps file → line → analyzer names ignored on that line.
	byLine map[string]map[int][]string
}

// ignoreAll is the analyzer-name wildcard accepted by //lint:ignore.
const ignoreAll = "all"

// knownAnalyzerNames is the registry //lint:ignore directives are
// validated against: an ignore naming an analyzer that does not exist
// suppresses nothing forever — usually a typo — so it is a finding.
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{ignoreAll: true}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// buildIgnores scans the package's comments for //lint:ignore directives.
// Malformed directives (missing analyzer name or justification, or an
// analyzer name not in the registry) are reported as findings so they
// cannot silently suppress nothing.
func buildIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) *ignoreSet {
	set := &ignoreSet{byLine: make(map[string]map[int][]string)}
	known := knownAnalyzerNames()
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				set.add(pos, strings.Fields(text), known, diags)
			}
		}
	}
	return set
}

// add records one parsed //lint:ignore directive at pos.
func (s *ignoreSet) add(pos token.Position, fields []string, known map[string]bool, diags *[]Diagnostic) {
	if len(fields) < 2 {
		*diags = append(*diags, Diagnostic{
			Analyzer: "lint",
			Pos:      pos,
			Message:  "malformed //lint:ignore: need an analyzer name and a justification",
		})
		return
	}
	if !known[fields[0]] {
		*diags = append(*diags, Diagnostic{
			Analyzer: "lint",
			Pos:      pos,
			Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q (it suppresses nothing)", fields[0]),
		})
		return
	}
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]string)
		s.byLine[pos.Filename] = lines
	}
	// Suppress on the comment's own line and the next: the directive
	// either trails the flagged line or sits directly above it.
	lines[pos.Line] = append(lines[pos.Line], fields[0])
	lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
}

// addSFileIgnores scans an assembly file (which no FileSet parses) for
// //lint:ignore comments, so asmvet findings are suppressed by the same
// directive, with the same mandatory justification, as Go findings.
func (s *ignoreSet) addSFileIgnores(path string, known map[string]bool, diags *[]Diagnostic) {
	data, err := os.ReadFile(path)
	if err != nil {
		return // the analyzer reading the file will surface the error
	}
	for i, line := range strings.Split(string(data), "\n") {
		idx := strings.Index(line, "//lint:ignore")
		if idx < 0 {
			continue
		}
		pos := token.Position{Filename: path, Line: i + 1, Column: idx + 1}
		s.add(pos, strings.Fields(line[idx+len("//lint:ignore"):]), known, diags)
	}
}

// generatedFiles returns the filenames in the load that carry the
// standard `// Code generated … DO NOT EDIT.` header before their
// package clause. Findings in generated files are dropped: the fix
// belongs in the generator, not in a hand-edit the next regeneration
// reverts.
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

func generatedFiles(fset *token.FileSet, files []*ast.File) map[string]bool {
	gen := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			if cg.Pos() >= f.Package {
				break
			}
			for _, c := range cg.List {
				if generatedRx.MatchString(c.Text) {
					gen[fset.Position(f.Package).Filename] = true
				}
			}
		}
	}
	return gen
}

// suppresses reports whether d is covered by an ignore directive.
func (s *ignoreSet) suppresses(d Diagnostic) bool {
	if d.Analyzer == "lint" {
		return false // malformed-directive findings cannot self-suppress
	}
	for _, name := range s.byLine[d.Pos.Filename][d.Pos.Line] {
		if name == d.Analyzer || name == ignoreAll {
			return true
		}
	}
	return false
}

// runAnalyzers applies every analyzer to one loaded package and returns
// the surviving (non-suppressed) findings sorted by position. Program
// analyzers see a one-package program — the fixture-checking shape.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runSuite(BuildProgram([]*Package{pkg}), analyzers)
}

// runSuite applies analyzers — per-package and whole-program alike — to
// one loaded program and returns the surviving findings sorted by
// position. Ignores are collected from every Go and assembly file up
// front, so a program analyzer's cross-package findings are suppressed
// by directives in whichever file they land in.
func runSuite(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	known := knownAnalyzerNames()
	ignores := &ignoreSet{byLine: make(map[string]map[int][]string)}
	generated := make(map[string]bool)
	for _, pkg := range prog.Pkgs {
		pkgIgnores := buildIgnores(pkg.Fset, pkg.Files, &raw)
		for file, lines := range pkgIgnores.byLine {
			ignores.byLine[file] = lines
		}
		for _, sfile := range pkg.SFiles {
			ignores.addSFileIgnores(sfile, known, &raw)
		}
		for file := range generatedFiles(pkg.Fset, pkg.Files) {
			generated[file] = true
		}
	}
	for _, a := range analyzers {
		if a.RunProgram != nil {
			pass := &ProgramPass{Analyzer: a, Prog: prog, diags: &raw}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	kept := raw[:0]
	for _, d := range raw {
		if !ignores.suppresses(d) && !generated[d.Pos.Filename] {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// Run loads the packages matched by patterns and applies analyzers,
// returning all findings sorted by position. The load is shared: one
// `go list -export` walk and one type-check feed every analyzer.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog, err := LoadProgram(patterns)
	if err != nil {
		return nil, err
	}
	return runSuite(prog, analyzers)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AliasGuard,
		NoAlloc,
		NoiseRand,
		EpsHygiene,
		DetIter,
		NoiseFlow,
		LockGuard,
		AsmVet,
	}
}
