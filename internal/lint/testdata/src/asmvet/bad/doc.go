// Package bad holds asmvet want-diagnostic fixtures: TEXT blocks that
// disagree with their Go prototypes. The prototypes are amd64-gated
// alongside the assembly; this file keeps the package loadable on every
// GOARCH (the fixture test itself skips off amd64, where the go tool
// hands the loader no .s files).
package bad
