package mechanism

import (
	"fmt"
	"math"

	"lrm/internal/mat"
	"lrm/internal/optimize"
	"lrm/internal/workload"
)

// MatrixMechanism is the paper's MM competitor (Li et al., PODS 2010),
// implemented exactly as the paper's own evaluation does (Appendix B): the
// L2-approximated objective
//
//	min_{M ≻ 0}  max(diag(M)) · tr(WᵀW·M⁻¹),   M = AᵀA
//
// is minimized by nonmonotone spectral projected gradient over the cone
// {M ⪰ δI}, with the non-smooth max replaced by the log-sum-exp smooth
// approximation (Eqs. 14–15). The strategy A = M^{1/2} then answers the
// workload through the generic strategy template.
//
// As the paper reports, this construction is slow (it eigendecomposes an
// n×n matrix per projection) and rarely competitive; it exists here to
// reproduce Figures 4–6.
type MatrixMechanism struct {
	// MaxIter bounds the SPG iterations (default 60).
	MaxIter int
	// Mu is the smoothing parameter of the max approximation (default
	// log-scaled per Appendix B: 0.01/log n).
	Mu float64
	// Floor is the eigenvalue floor δ of the PSD projection (default
	// 1e-6 of the mean diagonal of WᵀW).
	Floor float64
}

// Name implements Mechanism.
func (MatrixMechanism) Name() string { return "MM" }

// Prepare implements Mechanism. It is O(iterations·n³); keep n modest.
func (m MatrixMechanism) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	n := w.Domain()
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 60
	}
	mu := m.Mu
	if mu == 0 {
		mu = 0.01 / math.Log(float64(n)+1)
	}
	wtw := mat.Gram(w.W)
	floor := m.Floor
	if floor == 0 {
		floor = 1e-6 * (mat.Trace(wtw)/float64(n) + 1)
	}

	// Scratch shared by the closures below: SPG calls Value/Grad once or
	// more per iteration, so per-call temporaries are hoisted out. The
	// remaining per-iteration allocations are inside Inverse and
	// ProjectPSD (LU and eigendecomposition working storage), whose O(n³)
	// arithmetic dwarfs them. tr(WᵀW·M⁻¹) goes through TraceMul, which
	// skips materializing the O(n³) product entirely.
	mM := mat.New(0, 0) // header reused to view solver iterates
	diag := make([]float64, n)
	dmax := make([]float64, n)
	t1 := mat.New(n, n)
	t2 := mat.New(n, n)
	problem := optimize.Problem{
		Dim: n * n,
		Value: func(x []float64) float64 {
			mM.Reuse(n, n, x)
			inv, err := mat.Inverse(mM)
			if err != nil {
				return math.Inf(1)
			}
			diagInto(diag, mM)
			return optimize.SmoothMax(diag, mu) * mat.TraceMul(wtw, inv)
		},
		Grad: func(x, g []float64) {
			mM.Reuse(n, n, x)
			inv, err := mat.Inverse(mM)
			if err != nil {
				for i := range g {
					g[i] = 0
				}
				return
			}
			diagInto(diag, mM)
			fmax := optimize.SmoothMax(diag, mu)
			trTerm := mat.TraceMul(wtw, inv)
			optimize.SmoothMaxGrad(diag, mu, dmax)
			// ∇[fmax]·tr + fmax·∇[tr], with ∇tr = −M⁻¹WᵀWM⁻¹.
			mat.MulTo(t1, inv, wtw)
			mat.MulTo(t2, t1, inv)
			mat.ScaleTo(t2, -fmax, t2)
			for i := 0; i < n; i++ {
				t2.Set(i, i, t2.At(i, i)+trTerm*dmax[i])
			}
			copy(g, t2.RawData())
		},
		Project: func(x []float64) {
			mM.Reuse(n, n, x)
			proj, err := mat.ProjectPSD(mM, floor)
			if err == nil {
				copy(x, proj.RawData())
			}
		},
	}

	// Initialize at a scaled identity matched to the workload magnitude.
	x0 := mat.Scale(mat.Trace(wtw)/float64(n)/math.Sqrt(float64(n))+1, mat.Eye(n)).RawData()
	res := optimize.SPG(problem, x0, optimize.SPGOptions{MaxIter: maxIter, Tol: 1e-7, Work: optimize.NewWorkspace()})

	mOpt := mat.NewFromData(n, n, res.X)
	a, err := mat.SqrtPSD(mOpt)
	if err != nil {
		return nil, fmt.Errorf("mechanism: MM strategy root: %w", err)
	}
	return NewStrategyPrepared(w, a)
}

func diagInto(dst []float64, m *mat.Dense) {
	for i := range dst {
		dst[i] = m.At(i, i)
	}
}
