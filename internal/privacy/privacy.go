// Package privacy provides the ε-differential-privacy primitives shared by
// all mechanisms: privacy budgets, L1 sensitivity of a linear query matrix,
// the Laplace mechanism on a vector of exact answers, and composition
// accounting.
//
// Throughout the repository, the database is a histogram x ∈ ℝⁿ of unit
// counts and neighboring databases differ by ±1 in a single coordinate, so
// the sensitivity of the identity workload is 1 and the sensitivity of a
// query matrix A is its maximum column L1 norm (the paper's Section 3).
package privacy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

// ErrBudgetExhausted is returned when a Budget cannot cover a requested
// spend.
var ErrBudgetExhausted = errors.New("privacy: budget exhausted")

// Epsilon is a privacy budget value. Smaller is more private.
type Epsilon float64

// Validate returns an error unless e is strictly positive and finite.
func (e Epsilon) Validate() error {
	if !(e > 0) || e > 1e12 {
		return fmt.Errorf("privacy: invalid epsilon %v", float64(e))
	}
	return nil
}

// Budget tracks sequential composition: spends accumulate and may not
// exceed the total. The zero value is an empty budget.
//
// A Budget is safe for concurrent use: Spend performs its check-then-add
// under a mutex, so the sum of all successful spends never exceeds the
// total (up to budgetSlack, below) no matter how many goroutines spend
// concurrently. This is a privacy guarantee, not just data-race hygiene —
// an unsynchronized check-then-add would let two racing spenders both
// pass the check and jointly exceed ε.
type Budget struct {
	mu    sync.Mutex
	total Epsilon // immutable after NewBudget
	//lrm:guardedby mu
	spent Epsilon
}

// budgetSlack is the relative tolerance Spend allows for floating-point
// accumulation error: a spend is admitted while spent+eps ≤ total·(1+slack).
// The slack must scale with the total — an absolute slack both rejects
// legitimate final spends on large totals (where rounding error across
// many additions exceeds any fixed constant) and admits real overspends
// near tiny ones (where a fixed constant dwarfs the budget itself).
const budgetSlack = 1e-12

// NewBudget returns a budget with the given total ε.
func NewBudget(total Epsilon) (*Budget, error) {
	if err := total.Validate(); err != nil {
		return nil, err
	}
	return &Budget{total: total}, nil
}

// Spend consumes eps from the budget, or returns ErrBudgetExhausted. It is
// atomic: either the full eps is reserved or nothing is.
func (b *Budget) Spend(eps Epsilon) error {
	if err := eps.Validate(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if float64(b.spent)+float64(eps) > float64(b.total)*(1+budgetSlack) {
		return fmt.Errorf("%w: spent %v + requested %v > total %v",
			ErrBudgetExhausted, float64(b.spent), float64(eps), float64(b.total))
	}
	b.spent += eps
	return nil
}

// canSpend reports whether a Spend of eps would currently be admitted,
// without committing it. The accountant uses it to order its WAL append
// between the admission check and the grant: refused spends must not
// reach the log, or every rejected request would inflate the durable
// count.
func (b *Budget) canSpend(eps Epsilon) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return float64(b.spent)+float64(eps) <= float64(b.total)*(1+budgetSlack)
}

// restoredBudget returns a budget whose spent amount was replayed from
// durable state. Unlike live spending, spent may exceed total: crash
// recovery over-counts but never refunds, so a budget can come back
// already beyond its cap and must simply refuse everything.
func restoredBudget(total, spent Epsilon) *Budget {
	return &Budget{total: total, spent: spent}
}

// Remaining returns the unspent budget.
func (b *Budget) Remaining() Epsilon {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.spent
}

// Spent returns the budget consumed so far.
func (b *Budget) Spent() Epsilon {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Total returns the full budget.
func (b *Budget) Total() Epsilon { return b.total }

// Sensitivity returns the L1 sensitivity of the linear query matrix A over
// unit-count histograms: max_j Σ_i |A_ij| (Eq. 2 specialized to linear
// queries, as in Section 3.2 of the paper).
func Sensitivity(a *mat.Dense) float64 {
	return mat.MaxColAbsSum(a)
}

// LaplaceMechanism perturbs the exact answers with i.i.d. Laplace noise of
// scale sensitivity/ε, the generic ε-DP release of Dwork et al. (Eq. 3).
// It returns a fresh slice.
//
//lrm:sanitizer — the returned slice is the ε-DP release of exact
func LaplaceMechanism(exact []float64, sensitivity float64, eps Epsilon, src *rng.Source) ([]float64, error) {
	out := make([]float64, len(exact))
	copy(out, exact)
	if err := AddLaplaceNoise(out, sensitivity, eps, src); err != nil {
		return nil, err
	}
	return out, nil
}

// AddLaplaceNoise perturbs vals in place with i.i.d. Laplace noise of
// scale sensitivity/ε — the allocation-free core of LaplaceMechanism for
// hot answering paths that own their buffers.
//
//lrm:sanitizer vals — Laplace draws are mixed into vals in place
func AddLaplaceNoise(vals []float64, sensitivity float64, eps Epsilon, src *rng.Source) error {
	if err := eps.Validate(); err != nil {
		return err
	}
	if sensitivity < 0 {
		return fmt.Errorf("privacy: negative sensitivity %v", sensitivity)
	}
	noiseSweeps.Add(1)
	scale := sensitivity / float64(eps)
	for i := range vals {
		vals[i] += src.Laplace(scale)
	}
	return nil
}

// DrawLaplaceNoise fills dst with i.i.d. Laplace draws of scale
// sensitivity/ε, overwriting its contents, with exactly the validation
// and draw sequence of AddLaplaceNoise (dst[i] gets the i-th draw from
// src). It exists for fused answering paths that pre-draw a whole noise
// block from the sequential stream and then mix it into answers inside
// the GEMM's output tiles (core.Mechanism.AnswerMany): the draws stay in
// stream order even though the additions happen tile by tile.
//
//lrm:sanitizer dst — dst is overwritten with pure Laplace noise
func DrawLaplaceNoise(dst []float64, sensitivity float64, eps Epsilon, src *rng.Source) error {
	if err := eps.Validate(); err != nil {
		return err
	}
	if sensitivity < 0 {
		return fmt.Errorf("privacy: negative sensitivity %v", sensitivity)
	}
	scale := sensitivity / float64(eps)
	for i := range dst {
		dst[i] = src.Laplace(scale)
	}
	return nil
}

// noiseSweeps counts AddLaplaceNoise calls process-wide. Together with
// mat.FusedEpilogueRuns it lets tests pin the one-pass property of the
// fused answering path: a batch release that fuses its noise into the
// GEMM epilogue must not also make a separate AddLaplaceNoise sweep over
// the intermediate.
var noiseSweeps atomic.Uint64

// NoiseSweeps returns the number of separate in-place noise sweeps
// (AddLaplaceNoise calls) performed by this process so far.
func NoiseSweeps() uint64 { return noiseSweeps.Load() }

// LaplaceExpectedSSE returns the expected sum of squared errors of the
// Laplace mechanism on m answers: 2·m·(sensitivity/ε)². Each Laplace
// variable of scale s has variance 2s².
func LaplaceExpectedSSE(m int, sensitivity float64, eps Epsilon) float64 {
	s := sensitivity / float64(eps)
	return 2 * float64(m) * s * s
}

// ComposeSequential returns the total ε consumed by releasing each of the
// given mechanisms once on the same data (sequential composition).
func ComposeSequential(epsilons ...Epsilon) Epsilon {
	var sum Epsilon
	for _, e := range epsilons {
		sum += e
	}
	return sum
}

// ComposeParallel returns the ε consumed when mechanisms run on disjoint
// partitions of the data: the maximum of the parts.
func ComposeParallel(epsilons ...Epsilon) Epsilon {
	var best Epsilon
	for _, e := range epsilons {
		if e > best {
			best = e
		}
	}
	return best
}
