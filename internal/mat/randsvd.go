package mat

import (
	"fmt"
	"math"

	"lrm/internal/rng"
)

// RandSVDOptions tunes the randomized SVD.
type RandSVDOptions struct {
	// Oversample adds extra random probe columns beyond the target rank;
	// zero means the standard 10.
	Oversample int
	// PowerIters runs q rounds of the power scheme (A·Aᵀ)^q·A·Ω, which
	// sharpens the spectrum when singular values decay slowly; zero means
	// 2.
	PowerIters int
	// Seed fixes the Gaussian probe matrix.
	Seed int64
}

// RandSVD computes an approximate truncated SVD A ≈ U·diag(S)·Vᵀ with at
// most k components, using the Gaussian range finder of Halko, Martinsson
// and Tropp (2011). For matrices of numerical rank ≤ k the result matches
// the exact SVD to machine precision with high probability; for general
// matrices it captures the dominant k-dimensional subspace.
//
// The low-rank workloads that LRM exploits (WRelated is s ≪ min(m,n) by
// construction) are exactly the regime where this is much cheaper than
// the full Jacobi SVD: O(mn(k+p)) instead of O(sweeps·mn·min(m,n)).
func RandSVD(a *Dense, k int, opt RandSVDOptions) (*SVD, error) {
	m, n := a.Dims()
	if k < 1 {
		return nil, fmt.Errorf("mat: RandSVD target rank %d must be >= 1", k)
	}
	minDim := m
	if n < minDim {
		minDim = n
	}
	if k > minDim {
		k = minDim
	}
	p := opt.Oversample
	if p == 0 {
		p = 10
	}
	if p < 0 {
		return nil, fmt.Errorf("mat: negative oversample %d", p)
	}
	q := opt.PowerIters
	if q == 0 {
		q = 2
	}
	if q < 0 {
		return nil, fmt.Errorf("mat: negative power iterations %d", q)
	}
	l := k + p
	if l > minDim {
		l = minDim
	}
	src := rng.New(opt.Seed)
	omega := New(n, l)
	for i := range omega.data {
		omega.data[i] = src.Normal()
	}
	// Range finder with power iterations, re-orthonormalizing between
	// applications to avoid losing small singular directions.
	y := Mul(a, omega) // m×l
	qm := orthonormalize(y)
	for iter := 0; iter < q; iter++ {
		z := MulAtB(a, qm) // n×l
		qz := orthonormalize(z)
		y = Mul(a, qz)
		qm = orthonormalize(y)
	}
	// Project: B = Qᵀ·A is l×n; its exact SVD is cheap.
	b := MulAtB(qm, a)
	s := FactorSVD(b)
	u := Mul(qm, s.U)
	// Truncate to k components.
	if len(s.S) > k {
		s.S = s.S[:k]
		u = u.Slice(0, m, 0, k)
		s.V = s.V.Slice(0, n, 0, k)
	}
	return &SVD{U: u, S: s.S, V: s.V}, nil
}

// orthonormalize returns an orthonormal basis for the column space of a
// (m×l, m ≥ l assumed in intent; rank-deficient columns are replaced by
// zeros and dropped from spans implicitly). Modified Gram-Schmidt with
// one re-orthogonalization pass — adequate for the well-conditioned
// probe products that arise in the randomized range finder.
func orthonormalize(a *Dense) *Dense {
	m, l := a.Dims()
	out := a.Clone()
	cols := make([][]float64, l)
	for j := 0; j < l; j++ {
		cols[j] = out.Col(j)
	}
	for j := 0; j < l; j++ {
		cj := cols[j]
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				ci := cols[i]
				var dot float64
				for t := 0; t < m; t++ {
					dot += ci[t] * cj[t]
				}
				for t := 0; t < m; t++ {
					cj[t] -= dot * ci[t]
				}
			}
		}
		var norm float64
		for _, v := range cj {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm <= 1e-14 {
			for t := range cj {
				cj[t] = 0
			}
			continue
		}
		for t := range cj {
			cj[t] /= norm
		}
	}
	for j := 0; j < l; j++ {
		out.SetCol(j, cols[j])
	}
	return out
}

// RandomizedRank estimates the numerical rank of a by randomized SVD
// probing up to maxRank components: the count of singular values above
// the same relative tolerance the exact Rank uses. It is exact with high
// probability when the true rank is at most maxRank; otherwise it
// saturates at maxRank, which callers should treat as "at least".
func RandomizedRank(a *Dense, maxRank int, seed int64) (int, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return 0, nil
	}
	s, err := RandSVD(a, maxRank, RandSVDOptions{Seed: seed})
	if err != nil {
		return 0, err
	}
	if len(s.S) == 0 || s.S[0] == 0 {
		return 0, nil
	}
	maxDim := m
	if n > maxDim {
		maxDim = n
	}
	tol := float64(maxDim) * s.S[0] * 1e-12
	r := 0
	for _, v := range s.S {
		if v > tol {
			r++
		}
	}
	return r, nil
}
