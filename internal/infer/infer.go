// Package infer provides the statistical post-processing steps shared by
// strategy-based mechanisms: least-squares estimation of the histogram
// from noisy strategy observations (the matrix mechanism's inference
// step), consistency projection of noisy batch answers onto the column
// space of the workload, and simple domain constraints (non-negativity,
// integrality). Everything here operates on already-released noisy
// values, so by the post-processing property of differential privacy it
// costs no additional budget — it can only reduce error.
package infer

import (
	"fmt"
	"math"
	"sync"

	"lrm/internal/mat"
)

// LeastSquaresEstimate recovers a histogram estimate x̂ from noisy
// observations y of the strategy queries A (y ≈ A·x): the least-squares
// solution A⁺·y. For a tall full-rank A this is the classic matrix-
// mechanism inference step; for wide or rank-deficient A it returns the
// minimum-norm solution.
func LeastSquaresEstimate(a *mat.Dense, y []float64) ([]float64, error) {
	r, n := a.Dims()
	if len(y) != r {
		return nil, fmt.Errorf("infer: observation length %d != strategy rows %d", len(y), r)
	}
	if r >= n {
		if x, err := mat.LeastSquares(a, y); err == nil && allFinite(x) {
			return x, nil
		}
		// Rank-deficient tall systems fall through to the SVD route.
	}
	pinv := mat.PseudoInverse(a)
	return mat.MulVec(pinv, y), nil
}

// Projector projects noisy batch answers onto the column space of a
// workload matrix. Build it once per workload with NewProjector; Apply is
// then O(m·r) per answer vector.
//
// For any mechanism whose noise has components orthogonal to col(W) —
// noise-on-results most prominently — projection strictly reduces
// expected squared error: with isotropic noise the reduction factor is
// rank(W)/m.
type Projector struct {
	u *mat.Dense // m×r orthonormal basis of col(W)

	// tmp pools the r-dimensional intermediate Uᵀ·y so the steady-state
	// Apply path allocates only the returned vector. Entries are
	// *[]float64 (a bare slice in an interface would re-box per Put).
	tmp sync.Pool
}

// NewProjector builds the projector onto the column space of w.
func NewProjector(w *mat.Dense) (*Projector, error) {
	if w == nil || w.Rows() == 0 || w.Cols() == 0 {
		return nil, fmt.Errorf("infer: empty workload matrix")
	}
	if !w.IsFinite() {
		return nil, fmt.Errorf("infer: workload matrix contains NaN or Inf")
	}
	svd := mat.FactorSVD(w)
	r := svd.Rank()
	if r == 0 {
		return nil, fmt.Errorf("infer: zero workload matrix")
	}
	return &Projector{u: svd.U.Slice(0, w.Rows(), 0, r)}, nil
}

// Rank returns the dimension of the space projected onto.
func (p *Projector) Rank() int { return p.u.Cols() }

// Apply returns the orthogonal projection U·Uᵀ·y of y onto col(W).
func (p *Projector) Apply(y []float64) ([]float64, error) {
	if len(y) != p.u.Rows() {
		return nil, fmt.Errorf("infer: answer length %d != queries %d", len(y), p.u.Rows())
	}
	return p.ApplyTo(make([]float64, p.u.Rows()), y)
}

// ApplyTo stores the orthogonal projection U·Uᵀ·y into dst (length
// Rows), so callers projecting many answers over one workload reuse the
// output buffer. Uᵀ·y is computed without materializing the transpose
// (the old path allocated an r×m transpose per call) through a pooled
// intermediate; ApplyTo is safe for concurrent use. dst must not alias y.
func (p *Projector) ApplyTo(dst, y []float64) ([]float64, error) {
	if len(y) != p.u.Rows() {
		return nil, fmt.Errorf("infer: answer length %d != queries %d", len(y), p.u.Rows())
	}
	if len(dst) != p.u.Rows() {
		return nil, fmt.Errorf("infer: destination length %d != queries %d", len(dst), p.u.Rows())
	}
	r := p.u.Cols()
	tp, _ := p.tmp.Get().(*[]float64)
	if tp == nil || cap(*tp) < r {
		tp = new([]float64)
		*tp = make([]float64, r)
	}
	tmp := (*tp)[:r]
	mat.MulVecTTo(tmp, p.u, y)
	mat.MulVecTo(dst, p.u, tmp)
	p.tmp.Put(tp)
	return dst, nil
}

// NonNegative returns a copy of x with negative entries clamped to zero —
// the simplest domain constraint for count data.
func NonNegative(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// RoundCounts returns a copy of x with every entry rounded to the nearest
// non-negative integer, for releases that must look like real counts.
func RoundCounts(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		r := math.Round(v)
		if r > 0 {
			out[i] = r
		}
	}
	return out
}

// SumPreservingNonNegative clamps negatives to zero and then rescales the
// positive entries so the vector total is preserved (a common constraint
// when the total count is public). If every entry is non-positive the
// all-zero vector is returned.
func SumPreservingNonNegative(x []float64) []float64 {
	var total, posSum float64
	for _, v := range x {
		total += v
		if v > 0 {
			posSum += v
		}
	}
	out := NonNegative(x)
	if posSum <= 0 || total <= 0 {
		return out
	}
	scale := total / posSum
	for i := range out {
		out[i] *= scale
	}
	return out
}

func allFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
