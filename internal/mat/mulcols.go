package mat

// MulColsTo stores the product a·b into dst, like MulTo, with one extra
// guarantee that MulTo does not make: every column j of the result is
// bit-identical to the matrix-vector product MulVecTo(·, a, b column j).
//
// It exists for multi-RHS answering paths (mechanism.BatchAnswerer) whose
// contract is "AnswerMany equals looping Answer per data vector, bit for
// bit". Answer paths compute with MulVecTo — a plain dot product per
// output element, separate multiply and add in ascending k — so the
// batched product must round identically. The default AVX2+FMA
// micro-kernel does not (fused multiply-add skips the intermediate
// rounding), so MulColsTo runs the full cache-blocked packed pipeline —
// panel packing, the fixed tile grid, pool scheduling, deterministic
// k-order — with the mul+add kernel family instead: a vectorized AVX
// kernel whose every step is a separate VMULPD and VADDPD on capable
// hardware (gemm_amd64.s), the scalar kernels elsewhere, both rounding
// exactly like the dot product. The cost over MulTo is one extra µop per
// madd; the win over a loop of MulVecTo calls is the same as any GEMM's:
// the right operand is packed once instead of re-streamed per column,
// and the register blocking keeps many accumulator chains in flight
// where a dot product has one.
//
// dst must not alias a or b, and must already be a.Rows()×b.Cols().
func MulColsTo(dst, a, b *Dense) *Dense {
	return MulColsEpiTo(dst, a, b, nil)
}

// MulColsEpiTo is MulColsTo with a fused per-tile epilogue: epi (when
// non-nil) runs once per scheduler tile as soon as that tile's output
// rectangle is complete, while the block is still cache-hot — instead of
// the caller making a second sweep over dst afterwards. Across the
// product the epilogue observes every element of dst exactly once (the
// tile grid partitions the output); it may run concurrently for disjoint
// rectangles and on any goroutine, so it must not assume order.
//
// An epilogue that applies a per-element update whose value does not
// depend on tile order (adding a precomputed noise matrix, scaling,
// clamping) preserves both of MulColsTo's contracts: column-exactness of
// the product underneath, and bit-identical results across worker
// counts. This is how core.Mechanism.AnswerMany fuses its Laplace-noise
// pass into the GEMM that produces the intermediate.
func MulColsEpiTo(dst, a, b *Dense, epi TileEpilogue) *Dense {
	if a.cols != b.rows {
		dimPanic("MulColsTo", a, b)
	}
	checkShape("MulColsTo", dst, a.rows, b.cols)
	noAlias("MulColsTo", dst, a)
	noAlias("MulColsTo", dst, b)
	gemmMain(dst, a.rows, b.cols, a.cols,
		aView{data: a.data, row: a.cols, k: 1},
		b.data, b.cols, 1, false, true, epi)
	return dst
}

// MulCols is the allocating form of MulColsTo.
func MulCols(a, b *Dense) *Dense {
	if a.cols != b.rows {
		dimPanic("MulCols", a, b)
	}
	return MulColsTo(New(a.rows, b.cols), a, b)
}
