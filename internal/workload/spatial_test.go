package workload

import (
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

func TestRange2DShapeAndEntries(t *testing.T) {
	src := rng.New(1)
	w := Range2D(12, 5, 7, src)
	if w.Queries() != 12 || w.Domain() != 35 {
		t.Fatalf("dims %d×%d", w.Queries(), w.Domain())
	}
	for i := 0; i < w.Queries(); i++ {
		row := w.W.RawRow(i)
		ones := 0
		for _, v := range row {
			if v != 0 && v != 1 {
				t.Fatalf("entry %g not in {0,1}", v)
			}
			if v == 1 {
				ones++
			}
		}
		if ones == 0 {
			t.Fatalf("query %d selects nothing", i)
		}
	}
}

func TestRange2DIsRectangle(t *testing.T) {
	// Every query's support must be a full rectangle: the count of
	// selected cells equals (#selected rows)×(#selected cols).
	src := rng.New(2)
	d1, d2 := 6, 9
	w := Range2D(30, d1, d2, src)
	for i := 0; i < w.Queries(); i++ {
		row := w.W.RawRow(i)
		rows := map[int]bool{}
		cols := map[int]bool{}
		total := 0
		for idx, v := range row {
			if v == 1 {
				rows[idx/d2] = true
				cols[idx%d2] = true
				total++
			}
		}
		if total != len(rows)*len(cols) {
			t.Fatalf("query %d support is not a rectangle: %d cells, %d×%d box", i, total, len(rows), len(cols))
		}
	}
}

func TestRange2DPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Range2D(0, 2, 2, rng.New(1))
}

func TestKronWorkload(t *testing.T) {
	// Total ⊗ Total over a 3×4 grid is the single all-cells query.
	w := Kron("grid-total", Total(3), Total(4))
	if w.Queries() != 1 || w.Domain() != 12 {
		t.Fatalf("dims %d×%d", w.Queries(), w.Domain())
	}
	for _, v := range w.W.RawRow(0) {
		if v != 1 {
			t.Fatal("grid total should select every cell with weight 1")
		}
	}
	// Identity ⊗ Identity is the grid identity.
	wi := Kron("grid-id", Identity(2), Identity(3))
	if !wi.W.Equal(mat.Eye(6)) {
		t.Fatal("identity ⊗ identity should be the 6×6 identity")
	}
}

func TestKronMatchesManualRectangle(t *testing.T) {
	// Row i⊗j of W1⊗W2 answers (rows in query i) × (cols in query j).
	w1 := Prefix(3) // rows 0..i
	w2 := Prefix(4)
	w := Kron("prefix2d", w1, w2)
	if w.Queries() != 12 || w.Domain() != 12 {
		t.Fatalf("dims %d×%d", w.Queries(), w.Domain())
	}
	// Query (i=1, j=2) covers rows {0,1} × cols {0,1,2} of the 3×4 grid.
	row := w.W.RawRow(1*4 + 2)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			want := 0.0
			if r <= 1 && c <= 2 {
				want = 1
			}
			if row[r*4+c] != want {
				t.Fatalf("cell (%d,%d): got %g want %g", r, c, row[r*4+c], want)
			}
		}
	}
}

func TestPermutationWorkload(t *testing.T) {
	src := rng.New(3)
	w := PermutationWorkload(8, src)
	if w.Queries() != 8 || w.Domain() != 8 {
		t.Fatalf("dims %d×%d", w.Queries(), w.Domain())
	}
	if w.Sensitivity() != 1 {
		t.Fatalf("sensitivity %g want 1", w.Sensitivity())
	}
	if w.Rank() != 8 {
		t.Fatalf("rank %d want 8", w.Rank())
	}
	// Each row and each column has exactly one 1.
	for i := 0; i < 8; i++ {
		var rowSum float64
		for j := 0; j < 8; j++ {
			rowSum += w.W.At(i, j)
		}
		if rowSum != 1 {
			t.Fatalf("row %d sum %g", i, rowSum)
		}
	}
	// Answers are a permutation of the data.
	x := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	got := w.Answer(x)
	seen := map[float64]int{}
	for _, v := range got {
		seen[v]++
	}
	for _, v := range x {
		if seen[v] != 1 {
			t.Fatalf("answer is not a permutation: %v", got)
		}
	}
}
