// Package mechanism implements every query-answering mechanism evaluated
// in the paper's Section 6: the Laplace mechanism on data (LM), noise on
// results (NOR), the wavelet mechanism (WM, Privelet), the hierarchical
// mechanism (HM, Boost with consistency), the matrix mechanism (MM,
// Appendix B), and an adapter for the Low-Rank Mechanism itself — all
// behind one interface so the experiment harness treats them uniformly.
package mechanism

import (
	"math"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Mechanism prepares workload-specific state (e.g. a strategy matrix)
// once, after which the returned Prepared can answer many times cheaply.
type Mechanism interface {
	// Name is the short label used in the paper's figures (LM, WM, …).
	Name() string
	// Prepare performs the workload-dependent optimization/setup.
	Prepare(w *workload.Workload) (Prepared, error)
}

// Prepared answers a fixed workload under ε-differential privacy.
type Prepared interface {
	// Answer releases private answers for the histogram x.
	Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error)
	// ExpectedSSE returns the analytic expected sum of squared errors at
	// eps, or NaN when no closed form is implemented.
	ExpectedSSE(eps privacy.Epsilon) float64
}

// BatchAnswerer is the optional multi-RHS extension of Prepared: a
// mechanism whose answering cost is dominated by dense matrix-vector
// products can answer a whole batch of data vectors through one packed
// multi-RHS product (mat.MulColsTo) instead of a loop of mat-vecs, which
// is where the paper's "optimize once, answer a batch" framing actually
// pays at serving scale.
//
// The contract is strict: AnswerMany(X, eps, src) must release exactly
// what the loop
//
//	for j := range columns of X { Answer(X column j, eps, src) }
//
// would release with the same source — bit for bit, noise draws in the
// same order. Callers (the engine's batched path, the contract tests)
// rely on batching being a pure throughput optimization, never a
// semantic change. Implementations get this by computing their dense
// products with mat.MulColsTo (column-exact by construction) and drawing
// per-column noise in ascending column order.
type BatchAnswerer interface {
	// AnswerMany releases private answers for the n×B matrix X whose
	// columns are B histograms, returning the m×B matrix whose columns
	// are the corresponding releases.
	AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error)
}

// NoAnalyticSSE is returned by mechanisms without a closed-form error.
func NoAnalyticSSE() float64 { return math.NaN() }
