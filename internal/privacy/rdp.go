package privacy

import (
	"fmt"
	"math"

	"lrm/internal/rng"
)

// defaultRDPOrders is the standard grid of Rényi orders the accountant
// tracks; the (ε, δ) conversion minimizes over it.
var defaultRDPOrders = []float64{
	1.25, 1.5, 1.75, 2, 2.5, 3, 3.5, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64,
	128, 256, 512, 1024, 2048,
}

// RDPAccountant composes mechanisms in Rényi differential privacy and
// converts the total to (ε, δ)-DP. For many-fold composition of Gaussian
// (and, less dramatically, Laplace) mechanisms this is much tighter than
// both naive sequential composition and the advanced composition theorem,
// which is why it is the accountant of choice for iterative releases.
//
// RDP composes by simple addition per order α; the conversion to (ε, δ)
// is ε = min_α [ ε_α + log(1/δ)/(α−1) ] (Mironov 2017).
type RDPAccountant struct {
	orders []float64
	eps    []float64 // accumulated ε_α per order
}

// NewRDPAccountant returns an accountant over the standard order grid.
func NewRDPAccountant() *RDPAccountant {
	a := &RDPAccountant{orders: defaultRDPOrders}
	a.eps = make([]float64, len(a.orders))
	return a
}

// AddGaussian accounts one release of a Gaussian mechanism with the given
// noise standard deviation and L2 sensitivity: ε_α = α·Δ²/(2σ²) for every
// order.
func (a *RDPAccountant) AddGaussian(sigma, l2Sensitivity float64) error {
	if sigma <= 0 {
		return fmt.Errorf("privacy: sigma must be positive, got %g", sigma)
	}
	if l2Sensitivity < 0 {
		return fmt.Errorf("privacy: negative sensitivity %g", l2Sensitivity)
	}
	r := l2Sensitivity * l2Sensitivity / (2 * sigma * sigma)
	for i, alpha := range a.orders {
		a.eps[i] += alpha * r
	}
	return nil
}

// AddLaplace accounts one release of a Laplace mechanism with scale b and
// L1 sensitivity Δ, using Mironov's closed form for the Rényi divergence
// of two Laplace distributions at distance Δ:
//
//	ε_α = 1/(α−1) · log( α/(2α−1)·e^{(α−1)Δ/b} + (α−1)/(2α−1)·e^{−αΔ/b} )
func (a *RDPAccountant) AddLaplace(b, l1Sensitivity float64) error {
	if b <= 0 {
		return fmt.Errorf("privacy: Laplace scale must be positive, got %g", b)
	}
	if l1Sensitivity < 0 {
		return fmt.Errorf("privacy: negative sensitivity %g", l1Sensitivity)
	}
	t := l1Sensitivity / b
	for i, alpha := range a.orders {
		// log-sum-exp of the two terms, guarding overflow at large α·t.
		la := math.Log(alpha/(2*alpha-1)) + (alpha-1)*t
		lb := math.Log((alpha-1)/(2*alpha-1)) - alpha*t
		hi := math.Max(la, lb)
		a.eps[i] += (hi + math.Log(math.Exp(la-hi)+math.Exp(lb-hi))) / (alpha - 1)
	}
	return nil
}

// Compose folds another accountant's spends into this one (same grid).
func (a *RDPAccountant) Compose(other *RDPAccountant) {
	for i := range a.eps {
		a.eps[i] += other.eps[i]
	}
}

// Epsilon converts the accumulated RDP budget to an ε at the given δ,
// minimizing over the tracked orders.
func (a *RDPAccountant) Epsilon(delta float64) (Epsilon, error) {
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("privacy: delta must be in (0,1), got %g", delta)
	}
	best := math.Inf(1)
	logInvDelta := math.Log(1 / delta)
	for i, alpha := range a.orders {
		e := a.eps[i] + logInvDelta/(alpha-1)
		if e < best {
			best = e
		}
	}
	return Epsilon(best), nil
}

// GaussianSigmaForBudget returns the smallest noise multiplier σ (per unit
// L2 sensitivity) such that k composed Gaussian releases stay within
// (eps, delta)-DP under RDP accounting, found by bisection.
func GaussianSigmaForBudget(eps Epsilon, delta float64, k int) (float64, error) {
	if err := eps.Validate(); err != nil {
		return 0, err
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("privacy: delta must be in (0,1), got %g", delta)
	}
	if k < 1 {
		return 0, fmt.Errorf("privacy: k must be >= 1, got %d", k)
	}
	within := func(sigma float64) bool {
		a := NewRDPAccountant()
		for i := 0; i < k; i++ {
			if err := a.AddGaussian(sigma, 1); err != nil {
				return false
			}
		}
		got, err := a.Epsilon(delta)
		return err == nil && got <= eps
	}
	lo, hi := 1e-3, 1e-2
	for !within(hi) {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("privacy: no feasible sigma below 1e9")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if within(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// GaussianMechanismRDP adds N(0, σ²) noise to each coordinate and records
// the spend in the accountant — the iterative-release workhorse.
func GaussianMechanismRDP(a *RDPAccountant, exact []float64, l2Sensitivity, sigma float64, src *rng.Source) ([]float64, error) {
	if err := a.AddGaussian(sigma, l2Sensitivity); err != nil {
		return nil, err
	}
	out := make([]float64, len(exact))
	for i, v := range exact {
		out[i] = v + src.Normal()*sigma
	}
	return out, nil
}
