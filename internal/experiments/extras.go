package experiments

import (
	"fmt"

	"lrm/internal/mechanism"
	"lrm/internal/metrics"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Synopses is the extension table (not a paper figure): the data-synopsis
// mechanisms the paper cites as related/future work — FPA [24], CM [17],
// NF/SF [29] — next to LM, the consistency-projected NOR, and LRM, on the
// paper's datasets. Two workloads bracket the comparison: the identity
// (publish the histogram — the synopses' home turf, where LRM has no rank
// to exploit) and WRange at the default batch size (where LRM's
// query-side optimization applies).
func Synopses(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	datasets, err := cfg.datasetsFor()
	if err != nil {
		return nil, err
	}
	eps := privacy.Epsilon(cfg.epsilonMain())
	n := cfg.defaultN() // power of two at every scale (CM needs that)
	m := cfg.defaultM()

	type point struct {
		wl    *workload.Workload
		mechs []mechanism.Mechanism
	}
	lrmOpts := cfg.lrmOptions()
	lrmOpts.IdentityFallback = true // identity workload has nothing to exploit
	synopses := []mechanism.Mechanism{
		mechanism.LaplaceData{},
		mechanism.Fourier{K: n / 32},
		mechanism.Compressive{Measurements: n / 8, Sparsity: n / 32, Seed: cfg.Seed},
		mechanism.Histogram{Buckets: n / 16},
		mechanism.Histogram{Buckets: n / 16, StructureFirst: true},
	}
	points := []point{
		{workload.Identity(n), synopses},
		{workload.Range(m, n, rng.New(cfg.Seed+23)), append(append([]mechanism.Mechanism{},
			synopses...),
			mechanism.Consistent{Base: mechanism.LaplaceResults{}},
			mechanism.LRM{Options: lrmOpts},
		)},
	}

	results := make([][]Row, 0, len(datasets)*len(points))
	var closures []func() error
	for _, d := range datasets {
		if n > d.Len() {
			continue
		}
		merged := d.Merge(n)
		for _, pt := range points {
			slot := len(results)
			results = append(results, nil)
			d, pt := d, pt
			closures = append(closures, func() error {
				for _, mech := range pt.mechs {
					meas, err := metrics.Evaluate(mech, pt.wl, merged.Counts, eps, cfg.Trials, rng.New(cfg.Seed+29))
					if err != nil {
						return fmt.Errorf("synopses %s %s on %s: %w", d.Name, mech.Name(), pt.wl.Name, err)
					}
					results[slot] = append(results[slot], Row{
						Figure: "Synopses", Dataset: d.Name, Workload: pt.wl.Name,
						Mechanism: mech.Name(), Param: "n", Value: float64(n),
						Epsilon: float64(eps), AvgSqErr: meas.AvgSquaredError,
						Seconds: meas.PrepareSeconds,
					})
				}
				return nil
			})
		}
	}
	if err := runPoints(closures); err != nil {
		return nil, err
	}
	return flatten(results), nil
}
