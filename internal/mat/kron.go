package mat

// Kron returns the Kronecker product A ⊗ B: the (ra·rb)×(ca·cb) block
// matrix whose (i,j) block is Aᵢⱼ·B. Multi-dimensional workloads factor
// naturally as Kronecker products of per-dimension workloads (a range
// query on a grid is a row of W₁ ⊗ W₂), which is how the spatial example
// builds its batches.
func Kron(a, b *Dense) *Dense {
	ra, ca := a.Dims()
	rb, cb := b.Dims()
	out := New(ra*rb, ca*cb)
	for i := 0; i < ra; i++ {
		arow := a.RawRow(i)
		for k := 0; k < rb; k++ {
			dst := out.RawRow(i*rb + k)
			brow := b.RawRow(k)
			for j, av := range arow {
				if av == 0 {
					continue
				}
				base := j * cb
				for l, bv := range brow {
					dst[base+l] = av * bv
				}
			}
		}
	}
	return out
}
