package mechanism

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Degenerate domains and workloads must not panic or mis-answer.

func TestMechanismsOnSingletonDomain(t *testing.T) {
	w := workload.Total(1)
	x := []float64{42}
	for _, m := range []Mechanism{LaplaceData{}, LaplaceResults{}, Wavelet{}, Hierarchical{}, LRM{}} {
		p, err := m.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		out, err := p.Answer(x, 1, rng.New(1))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(out) != 1 || math.IsNaN(out[0]) {
			t.Fatalf("%s: answer %v", m.Name(), out)
		}
		// With huge ε the answer must approach the exact value.
		outBig, err := p.Answer(x, 1e6, rng.New(2))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(outBig[0]-42) > 1 {
			t.Fatalf("%s: eps=1e6 answer %v, want ~42", m.Name(), outBig[0])
		}
	}
}

func TestMechanismsOnZeroWorkloadRow(t *testing.T) {
	// A query with all-zero coefficients has exact answer 0; mechanisms
	// must stay unbiased on it.
	wm := mat.New(3, 4)
	wm.Set(0, 1, 1) // q0 = x1
	// rows 1 and 2 are all zeros
	w := workload.FromMatrix("zeros", wm)
	for _, m := range []Mechanism{LaplaceData{}, Wavelet{}, Hierarchical{}} {
		p, err := m.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		out, err := p.Answer([]float64{1, 2, 3, 4}, 1e6, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[0]-2) > 0.5 || math.Abs(out[1]) > 0.5 || math.Abs(out[2]) > 0.5 {
			t.Fatalf("%s: answers %v, want ~[2 0 0]", m.Name(), out)
		}
	}
}

func TestLaplaceResultsZeroSensitivity(t *testing.T) {
	// An all-zero workload has sensitivity 0: answers are exact.
	w := workload.FromMatrix("zero", mat.New(2, 3))
	p, err := LaplaceResults{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Answer([]float64{1, 2, 3}, 1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("answers %v, want exact zeros", out)
	}
}

func TestWaveletDomainNotPowerOfTwoLarge(t *testing.T) {
	// 1000 pads to 1024; answers on the true domain only.
	w := workload.Range(5, 1000, rng.New(5))
	p, err := Wavelet{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(6).UniformVec(1000, 0, 10)
	out, err := p.Answer(x, 1e5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	exact := w.Answer(x)
	for i := range out {
		if math.Abs(out[i]-exact[i]) > 1 {
			t.Fatalf("answer %d = %v, exact %v", i, out[i], exact[i])
		}
	}
}

func TestHierarchicalDomainOne(t *testing.T) {
	w := workload.Identity(1)
	p, err := Hierarchical{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Answer([]float64{9}, 1e5, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-9) > 0.5 {
		t.Fatalf("answer %v, want ~9", out[0])
	}
}

func TestLRMLargeEpsilonExact(t *testing.T) {
	// As ε → ∞ LRM's answers converge to W·x up to the (tiny) structural
	// residual — a regression test that B·L really reconstructs W.
	w := workload.Related(12, 16, 3, rng.New(9))
	p, err := LRM{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(10).UniformVec(16, 0, 100)
	out, err := p.Answer(x, 1e9, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	exact := w.Answer(x)
	for i := range out {
		if math.Abs(out[i]-exact[i]) > 1e-2*(1+math.Abs(exact[i])) {
			t.Fatalf("answer %d = %v, exact %v", i, out[i], exact[i])
		}
	}
}

func TestPreparedReuseAcrossEpsilons(t *testing.T) {
	// One Prepare, many Answers at different ε — the documented usage.
	w := workload.Range(6, 32, rng.New(12))
	p, err := LRM{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 32)
	src := rng.New(13)
	for _, eps := range []float64{0.01, 0.1, 1, 10} {
		if _, err := p.Answer(x, privacyEps(eps), src); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
	}
	// Error must scale as 1/ε² between two epsilons.
	r := p.ExpectedSSE(0.1) / p.ExpectedSSE(1)
	if math.Abs(r-100) > 1e-9*100 {
		t.Fatalf("SSE ratio %v, want 100", r)
	}
}

// privacyEps converts a float to the Epsilon type (test readability).
func privacyEps(v float64) privacy.Epsilon { return privacy.Epsilon(v) }
