// Command lrmlint runs the repository's custom static-analysis suite
// (internal/lint) over the given packages — the five analyzers that
// mechanically enforce the kernel, privacy, and determinism invariants
// the optimization PRs have accumulated:
//
//	aliasguard  in-place mat kernels must not alias dst with operands
//	noalloc     //lrm:noalloc functions must stay allocation-free
//	noiserand   noise randomness must come from internal/rng, unseeded
//	epshygiene  ε must be validated before release sinks; Spend errors checked
//	detiter     no map-iteration order feeding numeric output
//
// Usage:
//
//	go run ./cmd/lrmlint ./...
//	go run ./cmd/lrmlint -list
//	go run ./cmd/lrmlint lrm/internal/engine
//
// Findings print as file:line:col: analyzer: message. The exit status is
// 0 when the tree is clean, 1 when there are findings, 2 on usage or
// load errors — the contract the CI job relies on. Point suppressions
// use a //lint:ignore <analyzer> <justification> comment on or directly
// above the flagged line; the justification is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"lrm/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their contracts, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lrmlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(patterns, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrmlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lrmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
