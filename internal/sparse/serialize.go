package sparse

import (
	"encoding/gob"
	"fmt"
	"io"
)

// csrWire is the gob wire form of a CSR matrix.
type csrWire struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// Encode writes the matrix to w in gob form, so precomputed sparse
// strategies can be persisted alongside gob-encoded decompositions.
func (a *CSR) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(csrWire{
		Rows: a.rows, Cols: a.cols,
		RowPtr: a.rowPtr, ColIdx: a.colIdx, Val: a.val,
	})
}

// Read restores a matrix written by Encode, validating the structural
// invariants so a corrupted stream cannot produce an inconsistent matrix.
func Read(r io.Reader) (*CSR, error) {
	var wire csrWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("sparse: decoding: %w", err)
	}
	if wire.Rows < 0 || wire.Cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions %d×%d", wire.Rows, wire.Cols)
	}
	if len(wire.RowPtr) != wire.Rows+1 {
		return nil, fmt.Errorf("sparse: row pointer length %d for %d rows", len(wire.RowPtr), wire.Rows)
	}
	if len(wire.ColIdx) != len(wire.Val) {
		return nil, fmt.Errorf("sparse: %d column indices vs %d values", len(wire.ColIdx), len(wire.Val))
	}
	if wire.Rows > 0 {
		if wire.RowPtr[0] != 0 || wire.RowPtr[wire.Rows] != len(wire.Val) {
			return nil, fmt.Errorf("sparse: row pointers do not span the value array")
		}
	} else if len(wire.Val) != 0 {
		return nil, fmt.Errorf("sparse: values without rows")
	}
	prev := 0
	for i, p := range wire.RowPtr {
		if p < prev {
			return nil, fmt.Errorf("sparse: row pointer %d decreases", i)
		}
		prev = p
	}
	for i := 0; i < wire.Rows; i++ {
		last := -1
		for k := wire.RowPtr[i]; k < wire.RowPtr[i+1]; k++ {
			j := wire.ColIdx[k]
			if j < 0 || j >= wire.Cols {
				return nil, fmt.Errorf("sparse: column %d out of range %d", j, wire.Cols)
			}
			if j <= last {
				return nil, fmt.Errorf("sparse: row %d columns not strictly increasing", i)
			}
			last = j
		}
	}
	return &CSR{
		rows: wire.Rows, cols: wire.Cols,
		rowPtr: wire.RowPtr, colIdx: wire.ColIdx, val: wire.Val,
	}, nil
}
