package lint

import (
	"go/ast"
	"runtime"
	"strings"
	"testing"
)

func TestNoiseFlowFixtures(t *testing.T) {
	checkFixture(t, NoiseFlow, "noiseflow/bad")
	checkFixture(t, NoiseFlow, "noiseflow/clean")
}

func TestLockGuardFixtures(t *testing.T) {
	checkFixture(t, LockGuard, "lockguard/bad")
	checkFixture(t, LockGuard, "lockguard/clean")
}

func TestAsmVetFixtures(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skip("asmvet fixtures carry _amd64.s files the go tool filters out here")
	}
	checkFixture(t, AsmVet, "asmvet/bad")
	checkFixture(t, AsmVet, "asmvet/clean")
}

// TestMalformedDirectives pins the failure mode of the directive
// grammar: a typo'd //lrm: declaration must surface as a finding, not
// silently declare nothing. The findings land on the directive comment
// lines, which a // want comment cannot share, so the expectations live
// here instead of in the fixture.
func TestMalformedDirectives(t *testing.T) {
	pkgs, err := LoadPackages([]string{fixtureRoot + "noiseflow/malformed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages", len(pkgs))
	}
	diags, err := runAnalyzers(pkgs[0], All())
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"names nosuch, which is not a parameter of typod",
		`malformed //lrm:sink: want no argument, "args", or "return", got results`,
		"//lrm:guardedby on a function requires a method receiver",
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding contains %q; got %d findings:", want, len(diags))
			for _, d := range diags {
				t.Logf("  %s", d)
			}
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("want exactly %d findings, got %d", len(wants), len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// deleteStmtCalling removes, from the named function's body, every
// top-level statement whose subtree calls the named function — the AST
// surgery the injected-violation tests use to simulate a developer
// deleting a noise-add or a lock acquisition.
func deleteStmtCalling(t *testing.T, prog *Program, fnKey, callee string) {
	t.Helper()
	fi := prog.funcs[fnKey]
	if fi == nil {
		t.Fatalf("function %s not found in load", fnKey)
	}
	var kept []ast.Stmt
	removed := 0
	for _, s := range fi.Decl.Body.List {
		calls := false
		ast.Inspect(s, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == callee {
				calls = true
			}
			if id, ok := n.(*ast.Ident); ok && id.Name == callee {
				calls = true
			}
			return !calls
		})
		if calls {
			removed++
			continue
		}
		kept = append(kept, s)
	}
	if removed == 0 {
		t.Fatalf("%s has no statement calling %s", fnKey, callee)
	}
	fi.Decl.Body.List = kept
}

// loadMutable returns a freshly loaded, uncached program the test may
// mutate without poisoning the process-wide load cache.
func loadMutable(t *testing.T) *Program {
	t.Helper()
	pkgs, err := loadPackagesUncached([]string{"lrm/..."})
	if err != nil {
		t.Fatal(err)
	}
	return BuildProgram(pkgs)
}

// TestInjectedNoiseDeletion is the acceptance criterion in test form:
// deleting the Laplace noise-add inside the serving path's mechanism
// must make noiseflow name a raw source→sink path.
func TestInjectedNoiseDeletion(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-wide uncached load shells out to go list")
	}
	prog := loadMutable(t)
	deleteStmtCalling(t, prog, "lrm/internal/core.Mechanism.Answer", "AddLaplaceNoise")
	diags, err := runSuite(prog, []*Analyzer{NoiseFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("deleting the AddLaplaceNoise call in core.Mechanism.Answer produced no findings")
	}
	pathNamed := false
	for _, d := range diags {
		if strings.Contains(d.Message, "Histograms") || strings.Contains(d.Message, "//lrm:source") {
			pathNamed = true
		}
	}
	if !pathNamed {
		t.Errorf("no finding names the raw source; got:")
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestInjectedBatchNoiseDeletion: same for the multi-RHS path, whose
// noise rides the first GEMM's fused epilogue — deleting the noise
// pre-draw inside noiseFusedProduct leaves a declared sanitizer that
// never draws, which the sanitizer verifier must flag as vacuous.
func TestInjectedBatchNoiseDeletion(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-wide uncached load shells out to go list")
	}
	prog := loadMutable(t)
	deleteStmtCalling(t, prog, "lrm/internal/core.Mechanism.noiseFusedProduct", "DrawLaplaceNoise")
	diags, err := runSuite(prog, []*Analyzer{NoiseFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("deleting the DrawLaplaceNoise pre-draw in core.Mechanism.noiseFusedProduct produced no findings")
	}
	named := false
	for _, d := range diags {
		if strings.Contains(d.Message, "noiseFusedProduct") && strings.Contains(d.Message, "vacuous") {
			named = true
		}
	}
	if !named {
		t.Errorf("no finding names noiseFusedProduct as a vacuous sanitizer; got:")
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestInjectedLockDeletion: deleting the acquisition that guards an
// annotated field must make lockguard flag the now-unguarded accesses.
func TestInjectedLockDeletion(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-wide uncached load shells out to go list")
	}
	prog := loadMutable(t)
	fi := prog.funcs["lrm/internal/privacy.Budget.Spend"]
	if fi == nil {
		t.Fatal("privacy.Budget.Spend not found in load")
	}
	var kept []ast.Stmt
	removed := 0
	for _, s := range fi.Decl.Body.List {
		drop := false
		switch n := s.(type) {
		case *ast.ExprStmt:
			drop = strings.Contains(exprString(n.X), "Lock")
		case *ast.DeferStmt:
			drop = strings.Contains(exprString(n.Call), "Unlock")
		}
		if drop {
			removed++
			continue
		}
		kept = append(kept, s)
	}
	if removed == 0 {
		t.Fatal("Budget.Spend has no lock statements to delete")
	}
	fi.Decl.Body.List = kept
	diags, err := runSuite(prog, []*Analyzer{LockGuard})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "spent is //lrm:guardedby mu") {
			found = true
		}
	}
	if !found {
		t.Errorf("deleting Budget.Spend's lock produced no finding on spent; got %d findings", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}
