package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuard is the static face of the mutex discipline the engine,
// budget, and buffer-pool state rely on: a field annotated
//
//	mu    sync.Mutex
//	state int // //lrm:guardedby mu
//
// may only be touched while the sibling lock is held. The check is a
// source-order scan per function: X.mu.Lock() (or RLock, or Lock on an
// embedded mutex) marks the lock held for the base chain X, Unlock
// releases it, and a deferred Unlock holds it to the end of the
// function. Functions annotated //lrm:guardedby mu declare the
// callee-side half of the contract — the receiver's mu is held on entry
// — and every call site of such a function is checked for it.
//
// Known limitations, accepted for a linear scan: RLock counts the same
// as Lock (the analyzer checks presence, not read/write kind), and a
// lock taken inside a branch is considered held for the rest of the
// function body in source order. Both under-approximate strictness, not
// soundness of the tree: they can hide a race, never invent one.
// Freshly constructed values (assigned from a composite literal, new,
// or make in the same function) are exempt — no other goroutine can
// hold a reference yet.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated //lrm:guardedby mu may only be accessed " +
		"with the sibling lock held",
	RunProgram: runLockGuard,
}

func runLockGuard(pp *ProgramPass) error {
	dirs := buildDirectiveIndex(pp.Prog)
	for _, pkg := range pp.Prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockGuard(pp, pkg, dirs, fd)
			}
		}
	}
	dirs.reportProblems(pp.Report, "guardedby")
	return nil
}

// heldLock identifies one held lock: the object (or, for non-trivial
// base chains, the printed expression) the lock hangs off, plus the
// lock field's name.
type heldLock struct {
	obj  types.Object // base is a plain identifier
	str  string       // otherwise: printed base chain
	name string
}

type lgState struct {
	pp    *ProgramPass
	pkg   *Package
	dirs  *directiveIndex
	held  []heldLock
	fresh map[types.Object]bool // locally constructed: exempt
}

func checkLockGuard(pp *ProgramPass, pkg *Package, dirs *directiveIndex, fd *ast.FuncDecl) {
	st := &lgState{pp: pp, pkg: pkg, dirs: dirs, fresh: make(map[types.Object]bool)}
	// A //lrm:guardedby method starts with the receiver's lock held.
	if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if d := dirs.funcDir(fn); d != nil && d.guardedBy != "" && fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			recv := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
			if recv != nil {
				st.held = append(st.held, heldLock{obj: recv, name: d.guardedBy})
			}
		}
	}
	st.stmt(fd.Body)
}

func (st *lgState) baseKey(expr ast.Expr) heldLock {
	expr = ast.Unparen(expr)
	if id, ok := expr.(*ast.Ident); ok {
		if obj := st.pkg.Info.Uses[id]; obj != nil {
			return heldLock{obj: obj}
		}
		if obj := st.pkg.Info.Defs[id]; obj != nil {
			return heldLock{obj: obj}
		}
	}
	return heldLock{str: exprString(expr)}
}

func (st *lgState) holds(key heldLock) bool {
	for _, h := range st.held {
		if h.name != key.name {
			continue
		}
		if h.obj != nil && h.obj == key.obj {
			return true
		}
		if h.obj == nil && key.obj == nil && h.str == key.str {
			return true
		}
	}
	return false
}

func (st *lgState) release(key heldLock) {
	for i, h := range st.held {
		if h.name == key.name && ((h.obj != nil && h.obj == key.obj) || (h.obj == nil && key.obj == nil && h.str == key.str)) {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return
		}
	}
}

// lockTarget decodes X.mu.Lock() / X.RLock() (embedded) into the lock's
// base key, or ok=false when the call is not a mutex operation.
func (st *lgState) lockTarget(call *ast.CallExpr) (key heldLock, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return heldLock{}, "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return heldLock{}, "", false
	}
	fn, _ := st.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return heldLock{}, "", false
	}
	// X.mu.Lock(): the lock is the explicit field mu of base X.
	if inner, isInner := ast.Unparen(sel.X).(*ast.SelectorExpr); isInner {
		if selInfo := st.pkg.Info.Selections[inner]; selInfo != nil && selInfo.Kind() == types.FieldVal {
			key = st.baseKey(inner.X)
			key.name = inner.Sel.Name
			return key, op, true
		}
		// pkgvar.Lock() through an embedded mutex: fall through below
		// with the selector itself as the base.
	}
	// X.Lock() through an embedded sync.Mutex/RWMutex: the selection
	// path names the embedded field.
	if selInfo := st.pkg.Info.Selections[sel]; selInfo != nil && len(selInfo.Index()) > 1 {
		recv := derefType(selInfo.Recv())
		if s, isStruct := recv.Underlying().(*types.Struct); isStruct {
			f := s.Field(selInfo.Index()[0])
			key = st.baseKey(sel.X)
			key.name = f.Name()
			return key, op, true
		}
	}
	// mu.Lock() on a bare lock variable: the lock is its own base.
	key = st.baseKey(sel.X)
	return key, op, true
}

// branch scans one arm of an if. When the arm terminates — control
// cannot fall through to the statement after the if — its lock-state
// changes are discarded: in `if hit { mu.Unlock(); return }` the lock is
// still held on the path that continues past the if.
func (st *lgState) branch(s ast.Stmt) {
	saved := append([]heldLock(nil), st.held...)
	st.stmt(s)
	if terminates(s) {
		st.held = saved
	}
}

// terminates is a conservative syntactic check for "control always
// leaves the enclosing statement list here".
func terminates(s ast.Stmt) bool {
	switch n := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if len(n.List) > 0 {
			return terminates(n.List[len(n.List)-1])
		}
	case *ast.IfStmt:
		return n.Else != nil && terminates(n.Body) && terminates(n.Else)
	}
	return false
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// stmt walks one statement in source order, updating lock state and
// checking guarded accesses.
func (st *lgState) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range n.List {
			st.stmt(sub)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held through the rest of the
		// scan; any other deferred call is scanned for accesses.
		if key, op, ok := st.lockTarget(n.Call); ok {
			switch op {
			case "Lock", "RLock":
				st.held = append(st.held, key)
			}
			return
		}
		st.scanExpr(n.Call)
	case *ast.IfStmt:
		st.stmt(n.Init)
		st.scanExpr(n.Cond)
		// A branch that cannot fall through (it ends in return, break,
		// continue, goto, or panic) keeps its lock-state changes to
		// itself: `if hit { mu.Unlock(); return }` leaves the lock held
		// on the path that continues past the if.
		st.branch(n.Body)
		if n.Else != nil {
			st.branch(n.Else)
		}
	case *ast.ForStmt:
		st.stmt(n.Init)
		if n.Cond != nil {
			st.scanExpr(n.Cond)
		}
		st.stmt(n.Body)
		st.stmt(n.Post)
	case *ast.RangeStmt:
		st.scanExpr(n.X)
		st.stmt(n.Body)
	case *ast.SwitchStmt:
		st.stmt(n.Init)
		if n.Tag != nil {
			st.scanExpr(n.Tag)
		}
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			for _, x := range cc.List {
				st.scanExpr(x)
			}
			for _, sub := range cc.Body {
				st.stmt(sub)
			}
		}
	case *ast.TypeSwitchStmt:
		st.stmt(n.Init)
		st.stmt(n.Assign)
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			for _, sub := range cc.Body {
				st.stmt(sub)
			}
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			st.stmt(cc.Comm)
			for _, sub := range cc.Body {
				st.stmt(sub)
			}
		}
	case *ast.LabeledStmt:
		st.stmt(n.Stmt)
	case *ast.AssignStmt:
		// Record freshly constructed values before checking uses, so
		// `e := &Engine{...}; e.lru = …` is exempt.
		for _, rhs := range n.Rhs {
			st.scanExpr(rhs)
		}
		for i, lhs := range n.Lhs {
			if i < len(n.Rhs) && isFreshConstruction(st.pkg.Info, n.Rhs[i]) {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := objOf(st.pkg.Info, id); obj != nil {
						st.fresh[obj] = true
						continue
					}
				}
			}
			st.scanExpr(lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, isVS := spec.(*ast.ValueSpec)
				if !isVS {
					continue
				}
				for _, val := range vs.Values {
					st.scanExpr(val)
				}
				// `var e Engine` with no initializer is a zero value no
				// other goroutine can see yet.
				if len(vs.Values) == 0 {
					for _, name := range vs.Names {
						if obj := st.pkg.Info.Defs[name]; obj != nil {
							st.fresh[obj] = true
						}
					}
				}
			}
		}
	default:
		st.scanNode(s)
	}
}

// isFreshConstruction reports whether rhs constructs a brand-new value.
func isFreshConstruction(info *types.Info, rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		switch calleeBuiltin(info, x) {
		case "new", "make":
			return true
		}
	}
	return false
}

// scanExpr checks one expression subtree for lock operations, guarded
// accesses, and calls into //lrm:guardedby methods, in source order.
func (st *lgState) scanExpr(x ast.Expr) { st.scanNode(x) }

func (st *lgState) scanNode(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			// A closure body runs at an unknown time with unknown locks;
			// scan it with an empty lock set of its own.
			inner := &lgState{pp: st.pp, pkg: st.pkg, dirs: st.dirs, fresh: st.fresh}
			inner.stmt(node.Body)
			return false
		case *ast.CallExpr:
			if key, op, ok := st.lockTarget(node); ok {
				switch op {
				case "Lock", "RLock":
					st.held = append(st.held, key)
				case "Unlock", "RUnlock":
					st.release(key)
				}
				return false
			}
			st.checkGuardedCall(node)
			return true
		case *ast.SelectorExpr:
			st.checkGuardedAccess(node)
			// Continue into the base: x.a.b checks both selections.
			return true
		}
		return true
	})
}

// checkGuardedAccess flags sel when it reads or writes a //lrm:guardedby
// field without the sibling lock held on the same base chain.
func (st *lgState) checkGuardedAccess(sel *ast.SelectorExpr) {
	selInfo := st.pkg.Info.Selections[sel]
	if selInfo == nil || selInfo.Kind() != types.FieldVal {
		return
	}
	field, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return
	}
	fd := st.dirs.fieldDir(selInfo)
	if fd == nil || fd.guardedBy == "" {
		return
	}
	key := st.baseKey(sel.X)
	if key.obj != nil && st.fresh[key.obj] {
		return
	}
	key.name = fd.guardedBy
	if !st.holds(key) {
		st.pp.Report(sel.Sel.Pos(),
			"%s is //lrm:guardedby %s, but %s.%s is not held at this access",
			field.Name(), fd.guardedBy, exprString(ast.Unparen(sel.X)), fd.guardedBy)
	}
}

// checkGuardedCall flags calls to //lrm:guardedby methods made without
// the receiver's lock held — the caller-side half of the contract.
func (st *lgState) checkGuardedCall(call *ast.CallExpr) {
	fn := calleeFunc(st.pkg.Info, call)
	if fn == nil {
		return
	}
	d := st.dirs.funcDir(fn)
	if d == nil || d.guardedBy == "" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	key := st.baseKey(sel.X)
	if key.obj != nil && st.fresh[key.obj] {
		return
	}
	key.name = d.guardedBy
	if !st.holds(key) {
		st.pp.Report(call.Pos(),
			"%s requires %s.%s held on entry (//lrm:guardedby), but it is not held at this call",
			fn.Name(), exprString(ast.Unparen(sel.X)), d.guardedBy)
	}
}
