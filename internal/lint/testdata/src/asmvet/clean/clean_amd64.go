//go:build amd64

package clean

// dotVec returns the dot product of a and b.
func dotVec(a, b []float64) (ret float64)

// addOne returns n+1.
func addOne(n int64) (ret int64)

// dotVec512 returns the dot product of a and b via ZMM accumulators.
func dotVec512(a, b []float64) (ret float64)
