// Command lrmrun answers a batch of linear queries over a histogram under
// ε-differential privacy with a chosen mechanism.
//
// Usage:
//
//	lrmrun -data counts.csv -workload queries.csv -mech lrm -eps 0.5
//	lrmrun -data counts.csv -workload 'prefix(1024)' -mech auto
//	lrmrun -data counts.csv -workload 'kron:prefix(32)xranges(32)' -plan
//
// counts.csv has rows "index,count" (a header line is allowed).
//
// -workload takes either a CSV file (one query per line: n comma-separated
// coefficients) or an implicit spec in the compact grammar — prefix(N),
// ranges(N), identity(N), total(N), marginals(n1,…,nd;k=K), or a Kronecker
// product kron:<factor>x<factor>x… — which is never materialized as a
// matrix, so specs with trillions of cells plan and answer in megabytes.
// Anything containing '(' or starting with "kron:" is parsed as a spec.
// The noisy answers are printed one per line.
//
// -mech auto scores the candidate mechanisms on the workload's analysis
// (rank, sensitivity, the paper's Section 3.2/4 regime rules) and
// answers with the winner, logging the decision to stderr; -plan prints
// the full scoring justification instead of answering.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lrm/internal/dataset"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func main() {
	var (
		dataPath = flag.String("data", "", "histogram CSV (index,count)")
		wlArg    = flag.String("workload", "", "workload CSV path, or an implicit spec like 'prefix(1024)' or 'kron:prefix(32)xranges(32)'")
		mechName = flag.String("mech", "lrm", "mechanism: lrm, lm, nor, wm, hm, mm, fpa, cm, nf, sf — or 'auto' to let the planner choose")
		eps      = flag.Float64("eps", 1.0, "privacy budget epsilon")
		seed     = flag.Int64("seed", 0, "noise seed (0 = default stream)")
		exact    = flag.Bool("exact", false, "also print the exact answers (for debugging; not private!)")
		project  = flag.Bool("project", false, "post-process: project answers onto the workload's column space")
		coeffs   = flag.Int("coeffs", 0, "fpa: retained Fourier coefficients / cm: measurements / nf, sf: buckets (0 = mechanism default)")
		inspect  = flag.Bool("inspect", false, "print workload diagnostics (rank, sensitivity, baseline comparison) and exit")
		planOnly = flag.Bool("plan", false, "print the mechanism plan (candidate scores and decision) and exit without answering")
	)
	flag.Parse()
	if *wlArg == "" {
		fatalf("-workload is required")
	}
	// -inspect and -plan only look at the workload, so a spec (which
	// carries its own domain) needs no -data; answering always does.
	dataless := *dataPath == "" && isSpec(*wlArg) && (*inspect || *planOnly)
	if *dataPath == "" && !dataless {
		fatalf("both -data and -workload are required")
	}

	var ds *dataset.Dataset
	if !dataless {
		df, err := os.Open(*dataPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer df.Close()
		if ds, err = dataset.ReadCSV("input", df); err != nil {
			fatalf("reading data: %v", err)
		}
	}

	n := -1
	if ds != nil {
		n = ds.Len()
	}
	s, err := readSpec(*wlArg, n)
	if err != nil {
		fatalf("reading workload: %v", err)
	}

	if *inspect {
		stats, err := workload.AnalyzeSpec(s)
		if err != nil {
			fatalf("analyzing workload: %v", err)
		}
		fmt.Print(stats.Describe())
		return
	}
	planOpts := plan.Options{
		Eps:    privacy.Epsilon(*eps),
		Config: mechanism.Config{Coeffs: *coeffs, Seed: *seed},
	}
	if *planOnly {
		p, err := plan.NewSpec(s, planOpts)
		if err != nil {
			fatalf("planning: %v", err)
		}
		fmt.Print(p.Explain())
		return
	}

	var prepared mechanism.Prepared
	if *mechName == "auto" {
		if *project {
			fatalf("-project composes a fixed mechanism; it is not supported with -mech auto")
		}
		var p *plan.Plan
		var err error
		prepared, p, err = plan.AutoPrepareSpec(s, planOpts)
		if err != nil {
			fatalf("planning: %v", err)
		}
		fmt.Fprintf(os.Stderr, "lrmrun: planned %s\n", p.Summary())
	} else {
		mech, err := mechanism.ByName(*mechName, mechanism.Config{Coeffs: *coeffs, Seed: *seed})
		if err != nil {
			fatalf("%v", err)
		}
		if *project {
			mech = mechanism.Consistent{Base: mech}
		}
		if prepared, err = mechanism.PrepareSpec(mech, s, nil); err != nil {
			fatalf("preparing %s: %v", mech.Name(), err)
		}
	}
	relEps := privacy.Epsilon(*eps)
	if err := relEps.Validate(); err != nil {
		fatalf("invalid -eps: %v", err)
	}
	answers, err := prepared.Answer(ds.Counts, relEps, rng.New(*seed))
	if err != nil {
		fatalf("answering: %v", err)
	}
	var exactAnswers []float64
	if *exact {
		exactAnswers = s.AnswerTo(make([]float64, s.Queries()), ds.Counts)
	}
	for i, a := range answers {
		if *exact {
			fmt.Printf("%g,%g\n", a, exactAnswers[i])
		} else {
			fmt.Printf("%g\n", a)
		}
	}
}

// isSpec reports whether the -workload argument is an implicit spec
// rather than a CSV path: every spec form contains a parenthesized
// dimension, and no sane file path does.
func isSpec(arg string) bool {
	return strings.Contains(arg, "(") || strings.HasPrefix(arg, "kron:")
}

// readSpec resolves the -workload argument to a Spec — parsed directly
// for the spec grammar, or a dense CSV lifted through the adapter — and
// checks it matches the data's domain (n < 0 skips the check, for the
// dataless -inspect/-plan modes).
func readSpec(arg string, n int) (workload.Spec, error) {
	var s workload.Spec
	if isSpec(arg) {
		var err error
		if s, err = workload.ParseSpec(arg); err != nil {
			return nil, err
		}
	} else {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		w, err := workload.ReadCSV("cli", f)
		if err != nil {
			return nil, err
		}
		s = workload.AsSpec(w)
	}
	if n >= 0 && s.Domain() != n {
		return nil, fmt.Errorf("workload has %d coefficients per query, data has %d counts", s.Domain(), n)
	}
	return s, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lrmrun: "+format+"\n", args...)
	os.Exit(1)
}
