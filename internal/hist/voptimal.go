// Package hist implements differentially private histogram publication in
// the style of Xu, Zhang, Xiao, Yang and Yu (ICDE 2012) — the paper's
// reference [29] and the second of its named future-work directions
// ("utilizing the correlations between data values"). Consecutive counts
// with similar values are merged into buckets of a v-optimal histogram;
// averaging within a bucket cancels Laplace noise, trading a small
// structural bias for a large variance reduction.
//
// Two published variants are provided: NoiseFirst (perturb counts, then
// fit the structure to the noisy counts — structure fitting is free
// post-processing) and StructureFirst (select the structure on the true
// counts via the exponential mechanism, then perturb the bucket sums).
package hist

import (
	"fmt"
	"math"
)

// VOptimal computes the optimal B-bucket histogram of counts under the
// sum-of-squared-errors objective: bucket boundaries minimizing
// Σ_buckets Σ_{i∈bucket} (counts[i] − mean(bucket))². It returns the
// bucket start indices (boundaries[0] == 0) and the optimal SSE.
//
// Dynamic programming over prefix sums, O(n²·B) time and O(n·B) space —
// exact, as used by both published variants.
func VOptimal(counts []float64, b int) (boundaries []int, sse float64, err error) {
	n := len(counts)
	if n == 0 {
		return nil, 0, fmt.Errorf("hist: empty counts")
	}
	if b < 1 || b > n {
		return nil, 0, fmt.Errorf("hist: bucket count %d out of range [1,%d]", b, n)
	}
	t := newSSETable(counts)
	// cost[k][i]: minimal SSE of the first i counts in k buckets.
	const inf = math.MaxFloat64
	cost := make([][]float64, b+1)
	arg := make([][]int, b+1)
	for k := range cost {
		cost[k] = make([]float64, n+1)
		arg[k] = make([]int, n+1)
		for i := range cost[k] {
			cost[k][i] = inf
		}
	}
	cost[0][0] = 0
	for k := 1; k <= b; k++ {
		for i := k; i <= n; i++ {
			// Last bucket is [j, i); previous j counts use k−1 buckets.
			for j := k - 1; j < i; j++ {
				if cost[k-1][j] == inf {
					continue
				}
				c := cost[k-1][j] + t.sse(j, i)
				if c < cost[k][i] {
					cost[k][i] = c
					arg[k][i] = j
				}
			}
		}
	}
	boundaries = make([]int, b)
	i := n
	for k := b; k >= 1; k-- {
		j := arg[k][i]
		boundaries[k-1] = j
		i = j
	}
	return boundaries, cost[b][n], nil
}

// sseTable answers bucket SSE queries in O(1) from prefix sums.
type sseTable struct {
	prefix   []float64 // prefix[i] = Σ counts[:i]
	prefixSq []float64 // prefixSq[i] = Σ counts[:i]²
}

func newSSETable(counts []float64) *sseTable {
	n := len(counts)
	t := &sseTable{prefix: make([]float64, n+1), prefixSq: make([]float64, n+1)}
	for i, v := range counts {
		t.prefix[i+1] = t.prefix[i] + v
		t.prefixSq[i+1] = t.prefixSq[i] + v*v
	}
	return t
}

// sse returns the within-bucket SSE of counts[lo:hi] around their mean:
// Σx² − (Σx)²/len.
func (t *sseTable) sse(lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	s := t.prefix[hi] - t.prefix[lo]
	sq := t.prefixSq[hi] - t.prefixSq[lo]
	v := sq - s*s/float64(hi-lo)
	if v < 0 { // guard rounding
		return 0
	}
	return v
}

// sum returns Σ counts[lo:hi].
func (t *sseTable) sum(lo, hi int) float64 { return t.prefix[hi] - t.prefix[lo] }

// Smooth replaces each count with its bucket mean under the given
// boundaries (start indices, boundaries[0] == 0), the denoising step both
// variants share.
func Smooth(counts []float64, boundaries []int) ([]float64, error) {
	if err := validBoundaries(len(counts), boundaries); err != nil {
		return nil, err
	}
	out := make([]float64, len(counts))
	for k := range boundaries {
		lo := boundaries[k]
		hi := len(counts)
		if k+1 < len(boundaries) {
			hi = boundaries[k+1]
		}
		var s float64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		m := s / float64(hi-lo)
		for i := lo; i < hi; i++ {
			out[i] = m
		}
	}
	return out, nil
}

func validBoundaries(n int, boundaries []int) error {
	if len(boundaries) == 0 || boundaries[0] != 0 {
		return fmt.Errorf("hist: boundaries must start at 0, got %v", boundaries)
	}
	for k := 1; k < len(boundaries); k++ {
		if boundaries[k] <= boundaries[k-1] || boundaries[k] >= n {
			return fmt.Errorf("hist: boundaries must be strictly increasing in (0,%d): %v", n, boundaries)
		}
	}
	return nil
}
