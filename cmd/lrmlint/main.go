// Command lrmlint runs the repository's custom static-analysis suite
// (internal/lint) over the given packages — the eight analyzers that
// mechanically enforce the kernel, privacy, and determinism invariants
// the optimization PRs have accumulated:
//
//	aliasguard  in-place mat kernels must not alias dst with operands
//	noalloc     //lrm:noalloc functions must stay allocation-free
//	noiserand   noise randomness must come from internal/rng, unseeded
//	epshygiene  ε must be validated before release sinks; Spend errors checked
//	detiter     no map-iteration order feeding numeric output
//	noiseflow   raw data must pass a //lrm:sanitizer before any release sink
//	lockguard   //lrm:guardedby fields only touched with their mutex held
//	asmvet      .s kernels must agree with their Go prototypes (ABI0)
//
// Usage:
//
//	go run ./cmd/lrmlint ./...
//	go run ./cmd/lrmlint -list
//	go run ./cmd/lrmlint -json lrm/internal/engine
//
// Findings print as file:line:col: analyzer: message, or as a JSON array
// of {analyzer, file, line, col, message} objects with -json. The exit
// status is 0 when the tree is clean, 1 when there are findings, 2 on
// usage or load errors — the contract the CI job relies on. Point
// suppressions use a //lint:ignore <analyzer> <justification> comment on
// or directly above the flagged line; the justification is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lrm/internal/lint"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// run is main with its environment injected: exit status 0 for a clean
// tree, 1 for findings, 2 for usage or load errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lrmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and their contracts, then exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lrmlint [-list] [-json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(patterns, lint.All())
	if err != nil {
		fmt.Fprintf(stderr, "lrmlint: %v\n", err)
		return 2
	}
	if *asJSON {
		out := make([]jsonFinding, len(diags))
		for i, d := range diags {
			out[i] = jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "lrmlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lrmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
