//go:build amd64 && !noasm

package mat

// cpuidex and xgetbv0 are implemented in gemm_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// gemmKernel4x8 is the AVX2+FMA micro-kernel in gemm_amd64.s. It must
// only be called when gemmUseAsm is true.
//
//go:noescape
func gemmKernel4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)

// gemmKernelMulAdd4x8 is the column-exact micro-kernel in gemm_amd64.s:
// same tile, separate multiply and add per step (no fusion), so its
// results match the scalar kernels and MulVecTo bit for bit. It must
// only be called when gemmUseAsm is true.
//
//go:noescape
func gemmKernelMulAdd4x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)

// detectAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// micro-kernel: AVX + FMA + AVX2 in CPUID, and XMM/YMM state enabled in
// XCR0 (the OS must save the wide registers across context switches).
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c&fma == 0 || c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// gemmUseAsm gates the assembly micro-kernel. It is a variable (not a
// const) so tests can force the scalar fallback and check both paths
// against the oracle.
var gemmUseAsm = detectAVX2FMA()

// gemmArchFamily is the architecture's base assembly tier — what the
// dispatcher falls back to when the AVX-512 tier is absent or disabled.
const gemmArchFamily = famAVX2
