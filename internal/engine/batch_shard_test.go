package engine

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"lrm/internal/core"
	"lrm/internal/mechanism"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestBatchedPathUsed: an unseeded multi-histogram request over a
// mechanism with a multi-RHS path must go through it (Batched counter),
// produce full-shape answers, and still draw distinct noise per
// histogram and per request.
func TestBatchedPathUsed(t *testing.T) {
	e := newTestEngine(t, Options{})
	w := testWorkload(200)
	x := testHistogram(w.Domain(), 201)
	req := Request{Workload: w, Histograms: [][]float64{x, x, x}, Eps: 0.5}
	a, err := e.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Batched != 1 {
		t.Fatalf("stats = %+v, want one batched request", st)
	}
	if len(a) != 3 || len(a[0]) != w.Queries() {
		t.Fatalf("answer shape %d×%d, want 3×%d", len(a), len(a[0]), w.Queries())
	}
	if reflect.DeepEqual(a[0], a[1]) {
		t.Fatal("two histograms in one batched release drew identical noise")
	}
	b, err := e.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("two unseeded batched requests drew identical noise")
	}
	for _, col := range a {
		for i, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("answer[%d] = %g", i, v)
			}
		}
	}
}

// TestSeededBatchKeepsPerHistogramStreams: the documented seeded-mode
// contract — histogram i replayable alone at seed Seed+i — must survive
// the batched path's introduction, so seeded batches take the per-vector
// route.
func TestSeededBatchKeepsPerHistogramStreams(t *testing.T) {
	e := newTestEngine(t, Options{})
	w := testWorkload(210)
	xs := [][]float64{testHistogram(w.Domain(), 211), testHistogram(w.Domain(), 212)}
	a, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Batched != 0 {
		t.Fatalf("stats = %+v: seeded batch must not take the shared-stream batched path", st)
	}
	for i, x := range xs {
		one, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.5, Seed: 5 + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one[0], a[i]) {
			t.Fatalf("seeded batch answer %d not replayable at seed %d", i, 5+i)
		}
	}
}

// TestBatchedBudget: the batched path accounts the same per-histogram
// spends as the fan-out path.
func TestBatchedBudget(t *testing.T) {
	e := newTestEngine(t, Options{})
	w := testWorkload(220)
	mk := func(n int) [][]float64 {
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = testHistogram(w.Domain(), int64(i))
		}
		return xs
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: mk(4), Eps: 0.25, Budget: 1.0}); err != nil {
		t.Fatalf("exact budget rejected: %v", err)
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: mk(5), Eps: 0.25, Budget: 1.0}); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("overspending batch = %v, want ErrBudgetExhausted", err)
	}
	if st := e.Stats(); st.Batched != 1 {
		t.Fatalf("stats = %+v, want exactly the within-budget request batched", st)
	}
}

// shardedEngine builds an engine that splits the 12-query test workload
// into 5+5+2 row shards.
func shardedEngine(t *testing.T, hook func(string)) *Engine {
	t.Helper()
	return newTestEngine(t, Options{ShardRows: 5, PrepareHook: hook})
}

// TestShardedPrepare: a workload wider than ShardRows must decompose as
// one preparation per row block, each under its own fingerprint, with
// answers spanning the full query range; repeat requests hit the shard
// cache.
func TestShardedPrepare(t *testing.T) {
	perFP := make(map[string]int)
	var mu sync.Mutex
	e := shardedEngine(t, func(fp string) {
		mu.Lock()
		perFP[fp]++
		mu.Unlock()
	})
	w := testWorkload(300) // 12×16: shards of 5, 5, 2 rows
	x := testHistogram(w.Domain(), 301)
	req := Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.6}
	out, err := e.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != w.Queries() {
		t.Fatalf("answer shape %d×%d, want 1×%d", len(out), len(out[0]), w.Queries())
	}
	mu.Lock()
	shards := len(perFP)
	for fp, n := range perFP {
		if n != 1 {
			t.Fatalf("shard %s prepared %d times", fp, n)
		}
	}
	mu.Unlock()
	if shards != 3 {
		t.Fatalf("%d shard preparations, want 3", shards)
	}
	if _, err := e.Answer(req); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	again := len(perFP)
	mu.Unlock()
	if again != 3 {
		t.Fatalf("repeat request re-prepared shards (%d fingerprints total)", again)
	}
	if st := e.Stats(); st.Sharded != 2 || st.Prepares != 3 || st.Answers != 2 {
		t.Fatalf("stats = %+v, want 2 sharded requests, 3 prepares, 2 answers", st)
	}
}

// TestShardedComposition pins the ε split and the seeded stream layout:
// the sharded release equals, bit for bit, the concatenation of direct
// per-shard requests at ε/k with seeds Seed + s·B + i — the documented
// sequential-composition semantics.
func TestShardedComposition(t *testing.T) {
	e := shardedEngine(t, nil)
	w := testWorkload(310)
	xs := [][]float64{testHistogram(w.Domain(), 311), testHistogram(w.Domain(), 312)}
	const seed = 1000
	eps := privacy.Epsilon(0.9)
	got, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: eps, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: eps, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("identical seeded sharded requests produced different releases")
	}
	const k = 3
	epsShard := privacy.Epsilon(float64(eps) / k)
	bounds := []struct{ lo, hi int }{{0, 5}, {5, 10}, {10, 12}}
	for s, bd := range bounds {
		sw := &workload.Workload{W: w.W.Slice(bd.lo, bd.hi, 0, w.Domain()), Name: "shard"}
		for i, x := range xs {
			one, err := e.Answer(Request{
				Workload:   sw,
				Histograms: [][]float64{x},
				Eps:        epsShard,
				Seed:       seed + int64(s*len(xs)+i),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(one[0], got[i][bd.lo:bd.hi]) {
				t.Fatalf("shard %d histogram %d: sharded release differs from direct ε/k request", s, i)
			}
		}
	}
}

// TestShardedUnseededBatch: unseeded sharded batches run each shard
// through the multi-RHS path.
func TestShardedUnseededBatch(t *testing.T) {
	e := shardedEngine(t, nil)
	w := testWorkload(320)
	xs := [][]float64{testHistogram(w.Domain(), 321), testHistogram(w.Domain(), 322)}
	out, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != w.Queries() {
		t.Fatalf("answer shape %d×%d, want 2×%d", len(out), len(out[0]), w.Queries())
	}
	if st := e.Stats(); st.Sharded != 1 || st.Batched != 3 {
		t.Fatalf("stats = %+v, want 1 sharded request batching all 3 shards", st)
	}
}

// TestShardedBudget: the budget covers the composed spend — ε per
// histogram regardless of shard count — so sharding must not double-bill.
func TestShardedBudget(t *testing.T) {
	e := shardedEngine(t, nil)
	w := testWorkload(330)
	mk := func(n int) [][]float64 {
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = testHistogram(w.Domain(), int64(i))
		}
		return xs
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: mk(4), Eps: 0.25, Budget: 1.0}); err != nil {
		t.Fatalf("exact budget rejected under sharding: %v", err)
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: mk(5), Eps: 0.25, Budget: 1.0}); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("overspending sharded batch = %v, want ErrBudgetExhausted", err)
	}
}

// TestShardedDiskCache: shard decompositions persist and restore through
// the disk cache like any workload — a second engine sharing the
// directory serves the sharded request without a single Prepare.
func TestShardedDiskCache(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(340)
	x := testHistogram(w.Domain(), 341)
	req := Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.5, Seed: 9}
	var p1, p2 atomic.Int64
	e1 := newTestEngine(t, Options{ShardRows: 5, CacheDir: dir, PrepareHook: func(string) { p1.Add(1) }})
	got1, err := e1.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Load() != 3 {
		t.Fatalf("first engine prepared %d shards, want 3", p1.Load())
	}
	e2 := newTestEngine(t, Options{ShardRows: 5, CacheDir: dir, PrepareHook: func(string) { p2.Add(1) }})
	got2, err := e2.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Load() != 0 {
		t.Fatalf("second engine ran %d prepares despite shard disk cache", p2.Load())
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("disk-restored shards answer differently at the same seed")
	}
	if st := e2.Stats(); st.DiskHits != 3 {
		t.Fatalf("stats = %+v, want 3 disk hits", st)
	}
}

// TestShardRowsValidation: negative ShardRows is a config error; a
// workload not exceeding ShardRows takes the normal path.
func TestShardRowsValidation(t *testing.T) {
	if _, err := New(Options{ShardRows: -1}); err == nil {
		t.Fatal("negative ShardRows accepted")
	}
	e := newTestEngine(t, Options{ShardRows: 64})
	w := testWorkload(350) // 12 queries ≤ 64: unsharded
	x := testHistogram(w.Domain(), 351)
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Sharded != 0 {
		t.Fatalf("stats = %+v, want no sharded requests", st)
	}
}

// TestShardedConcurrent hammers the sharded path from many goroutines;
// meaningful mainly under -race (plan memo, shard cache, pool nesting).
func TestShardedConcurrent(t *testing.T) {
	e := newTestEngine(t, Options{ShardRows: 5, CacheSize: 8})
	ws := []*workload.Workload{testWorkload(360), testWorkload(361)}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				w := ws[(g+i)%len(ws)]
				xs := [][]float64{
					testHistogram(w.Domain(), int64(g)),
					testHistogram(w.Domain(), int64(i)),
				}
				out, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 0.3})
				if err != nil {
					t.Error(err)
					return
				}
				if len(out) != 2 || len(out[0]) != w.Queries() {
					t.Errorf("bad shape %d×%d", len(out), len(out[0]))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedLRM answers through the real default LRM options on a
// slightly larger workload to make sure sharded prepare composes with
// the full decomposition path, not just the fast test options.
func TestShardedLRM(t *testing.T) {
	if testing.Short() {
		t.Skip("full decomposition")
	}
	e := newTestEngine(t, Options{
		Mechanism: mechanism.LRM{Options: core.Options{MaxOuterIter: 20}},
		ShardRows: 8,
	})
	w := workload.Related(20, 32, 4, rng.New(42))
	x := testHistogram(w.Domain(), 43)
	out, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 20 {
		t.Fatalf("answer length %d, want 20", len(out[0]))
	}
}
