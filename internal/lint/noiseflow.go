package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// NoiseFlow proves the mechanism's one non-negotiable invariant — every
// value released to the outside world is W·x + noise, never W·x — as a
// whole-program taint analysis:
//
//   - Sources: reads of //lrm:source fields (the engine's Request
//     histograms, the server's request payloads), results of
//     //lrm:source functions (histogram builders), and //lrm:source
//     parameters (the facade's data arguments).
//   - Sanitizers: //lrm:sanitizer functions. The directive is verified,
//     not trusted: the body must draw from an *rng.Source (or call
//     another declared sanitizer), so deleting the noise-add inside a
//     sanitizer is itself a finding.
//   - Sinks: arguments of //lrm:sink functions (HTTP/disk writers),
//     returns of //lrm:sink return functions (the engine/facade answer
//     boundary), and — built in — any call to a method of
//     net/http.ResponseWriter.
//
// Propagation is interprocedural: per-function summaries (which results
// and pointer parameters a function taints, as a function of its inputs)
// are composed to a fixpoint over the `go list`-derived call graph, with
// interface calls joined over every loaded implementation. Taint is
// tracked per variable (field- and element-insensitive): writing a raw
// element taints the whole variable, and only a whole-variable
// assignment or a declared sanitizer clears it.
var NoiseFlow = &Analyzer{
	Name: "noiseflow",
	Doc: "raw data (//lrm:source) must pass a verified //lrm:sanitizer " +
		"before reaching a release sink (//lrm:sink, http.ResponseWriter)",
	RunProgram: runNoiseFlow,
}

// nfDeps is the taint of one value: possibly raw here and now (fresh,
// with a human-readable witness of where the raw data came from), plus
// the set of enclosing-function parameters whose rawness it inherits.
type nfDeps struct {
	fresh   bool
	params  uint64 // bitmask over paramsOf(enclosing function)
	witness string
}

func (d nfDeps) empty() bool { return !d.fresh && d.params == 0 }

func joinDeps(a, b nfDeps) nfDeps {
	out := nfDeps{fresh: a.fresh || b.fresh, params: a.params | b.params}
	out.witness = a.witness
	if out.witness == "" {
		out.witness = b.witness
	}
	return out
}

// sameDeps ignores witnesses: fixpoint convergence is on reachability,
// while witnesses keep whichever explanation was found first.
func sameDeps(a, b nfDeps) bool {
	return a.fresh == b.fresh && a.params == b.params
}

// nfSummary is one function's externally visible taint behavior.
type nfSummary struct {
	results []nfDeps // taint of each result, in terms of the params
	mutates []nfDeps // taint written through each pointer-like param
}

func sameSummary(a, b *nfSummary) bool {
	if len(a.results) != len(b.results) || len(a.mutates) != len(b.mutates) {
		return false
	}
	for i := range a.results {
		if !sameDeps(a.results[i], b.results[i]) {
			return false
		}
	}
	for i := range a.mutates {
		if !sameDeps(a.mutates[i], b.mutates[i]) {
			return false
		}
	}
	return true
}

const (
	nfPhaseSummary = iota // compute per-function summaries to fixpoint
	nfPhaseEntry          // propagate which params arrive raw, top-down
	nfPhaseCheck          // report raw values crossing sinks
)

type nfAnalysis struct {
	prog *Program
	dirs *directiveIndex
	// sums and entry are keyed by funcKey: the same callee appears as
	// distinct *types.Func objects in source-checked and imported views.
	sums    map[string]*nfSummary
	entry   map[string]map[int]string // param index → raw witness
	pass    *ProgramPass
	phase   int
	changed bool
}

func runNoiseFlow(pp *ProgramPass) error {
	a := &nfAnalysis{
		prog:  pp.Prog,
		dirs:  buildDirectiveIndex(pp.Prog),
		sums:  make(map[string]*nfSummary),
		entry: make(map[string]map[int]string),
	}
	fns := a.orderedFuncs()

	// Phase 1: per-function summaries to fixpoint over the call graph.
	a.phase = nfPhaseSummary
	for round := 0; round < 12; round++ {
		a.changed = false
		for _, fi := range fns {
			sum := a.analyze(fi)
			key := funcKey(fi.Fn)
			if prev := a.sums[key]; prev == nil || !sameSummary(prev, sum) {
				a.changed = true
			}
			a.sums[key] = sum
		}
		if !a.changed {
			break
		}
	}

	// Phase 2: which parameters actually receive raw data, from the
	// sources down through every (interface-resolved) call edge.
	a.phase = nfPhaseEntry
	for round := 0; round < 12; round++ {
		a.changed = false
		for _, fi := range fns {
			a.analyze(fi)
		}
		if !a.changed {
			break
		}
	}

	// Phase 3: the same walk, now reporting sink crossings.
	a.phase = nfPhaseCheck
	a.pass = pp
	for _, fi := range fns {
		a.analyze(fi)
	}
	a.verifySanitizers(fns)
	a.dirs.reportProblems(pp.Report, "source", "sanitizer", "sink")
	return nil
}

func (a *nfAnalysis) orderedFuncs() []*FuncInfo {
	fns := make([]*FuncInfo, 0, len(a.prog.funcs))
	for _, fi := range a.prog.funcs {
		if fi.Decl.Body != nil {
			fns = append(fns, fi)
		}
	}
	sort.Slice(fns, func(i, j int) bool {
		return fns[i].Decl.Pos() < fns[j].Decl.Pos()
	})
	return fns
}

// paramsOf flattens receiver-then-parameters into one indexed list.
func paramsOf(sig *types.Signature) []*types.Var {
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func bit(i int) uint64 {
	if i >= 64 {
		return 0 // beyond tracking width: drop, conservatively clean
	}
	return 1 << uint(i)
}

// isErrorType reports whether t is the built-in error interface. Error
// values are exempt from taint: they are control metadata, and carrying
// whole-struct taint through every `return nil, err` would bury the real
// data paths. (Error strings embedding raw counts would evade this; the
// tree's errors carry lengths and names only.)
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// isScalarMetaType reports whether t is an integer or boolean scalar.
// Like the built-in len, these are exempt from taint: in this privacy
// model the histogram VALUES are the secret, while dimensions, counts,
// seeds, and flags derived from them are public metadata — without the
// exemption, `cols := x.Cols()` would make every matrix allocated with
// that width as raw as the data itself. Floats, strings, and slices
// (including []byte — marshalled payloads) keep their taint.
func isScalarMetaType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// taintExempt is the union of the two exemptions applied to call
// results and summary result slots.
func taintExempt(t types.Type) bool {
	return isErrorType(t) || isScalarMetaType(t)
}

func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Interface, *types.Signature:
		return true
	}
	return false
}

func (a *nfAnalysis) posStr(pos token.Pos) string {
	p := a.prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (a *nfAnalysis) addEntry(fn *types.Func, idx int, witness string) {
	key := funcKey(fn)
	m := a.entry[key]
	if m == nil {
		m = make(map[int]string)
		a.entry[key] = m
	}
	if _, ok := m[idx]; !ok {
		m[idx] = witness
		a.changed = true
	}
}

// nfEnv is one walk over one function body.
type nfEnv struct {
	a          *nfAnalysis
	fn         *types.Func
	fi         *FuncInfo
	info       *types.Info
	params     []*types.Var
	paramIdx   map[*types.Var]int
	state      map[*types.Var]nfDeps
	views      map[*types.Var]*types.Var
	resultVars []*types.Var
	sum        *nfSummary
	litDepth   int // >0 inside a FuncLit: returns are the literal's, not fn's
}

// analyze walks fi once and returns its freshly computed summary. In the
// entry and check phases the walk's side effects (entry propagation,
// diagnostics) are the point and the summary is discarded.
func (a *nfAnalysis) analyze(fi *FuncInfo) *nfSummary {
	fn := fi.Fn
	sig := fn.Type().(*types.Signature)
	e := &nfEnv{
		a:        a,
		fn:       fn,
		fi:       fi,
		info:     fi.Pkg.Info,
		params:   paramsOf(sig),
		paramIdx: make(map[*types.Var]int),
		state:    make(map[*types.Var]nfDeps),
		views:    make(map[*types.Var]*types.Var),
		sum:      &nfSummary{results: make([]nfDeps, sig.Results().Len())},
	}
	for i, v := range e.params {
		e.paramIdx[v] = i
		e.state[v] = nfDeps{params: bit(i)}
	}
	if d := a.dirs.funcDir(fn); d != nil {
		for _, idx := range d.sourceParams {
			if idx >= len(e.params) {
				continue
			}
			v := e.params[idx]
			w := fmt.Sprintf("raw parameter %s of %s (//lrm:source, %s)",
				v.Name(), fn.Name(), a.posStr(v.Pos()))
			e.state[v] = joinDeps(e.state[v], nfDeps{fresh: true, witness: w})
		}
	}
	if fi.Decl.Type.Results != nil {
		for _, f := range fi.Decl.Type.Results.List {
			for _, n := range f.Names {
				if v, ok := fi.Pkg.Info.Defs[n].(*types.Var); ok {
					e.resultVars = append(e.resultVars, v)
				}
			}
		}
	}
	e.stmt(fi.Decl.Body)
	for i := range e.sum.results {
		if taintExempt(sig.Results().At(i).Type()) {
			e.sum.results[i] = nfDeps{}
		}
	}
	e.sum.mutates = make([]nfDeps, len(e.params))
	for i, v := range e.params {
		if !pointerLike(v.Type()) {
			continue
		}
		d := e.state[v]
		d.params &^= bit(i)
		if !d.empty() {
			e.sum.mutates[i] = d
		}
	}
	return e.sum
}

// rawNow resolves deps against what is known to reach this function:
// fresh taint is raw outright; a parameter dependence is raw when some
// caller (or a //lrm:source declaration) delivers raw data to it.
func (e *nfEnv) rawNow(d nfDeps) (string, bool) {
	if d.fresh {
		return d.witness, true
	}
	entries := e.a.entry[funcKey(e.fn)]
	for i, v := range e.params {
		if d.params&bit(i) == 0 {
			continue
		}
		if w, ok := entries[i]; ok {
			return fmt.Sprintf("%s (reaching parameter %s)", w, v.Name()), true
		}
	}
	return "", false
}

func (e *nfEnv) setVar(v *types.Var, d nfDeps) {
	if v == nil {
		return
	}
	e.state[v] = d
}

// weakTaint joins d into v and into every variable v is a view of:
// after `cd := dst.data`, a write through cd lands in dst's storage, so
// its taint must reach dst too.
func (e *nfEnv) weakTaint(v *types.Var, d nfDeps) {
	if d.empty() {
		return
	}
	for depth := 0; v != nil && depth < 16; depth++ {
		e.state[v] = joinDeps(e.state[v], d)
		next := e.views[v]
		if next == v {
			return
		}
		v = next
	}
}

// viewBase reports the variable whose storage rhs aliases, or nil when
// rhs allocates or copies. Field reads, slicing, indexing, dereference,
// and address-of all alias the root; calls and literals do not.
func viewBase(info *types.Info, rhs ast.Expr, lhs *types.Var) *types.Var {
	if lhs == nil || !pointerLike(lhs.Type()) {
		return nil
	}
	base := rootVar(info, rhs)
	if base == nil || base == lhs {
		return nil
	}
	return base
}

// rootVar finds the variable that owns the storage an lvalue-ish
// expression reaches through selectors, indexing, and dereferences.
func rootVar(info *types.Info, expr ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			if sel := info.Selections[x]; sel == nil {
				// package-qualified reference
				v, _ := info.Uses[x.Sel].(*types.Var)
				return v
			}
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.IndexListExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.TypeAssertExpr:
			expr = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			expr = x.X
		default:
			return nil
		}
	}
}

func (e *nfEnv) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range st.List {
			e.stmt(sub)
		}
	case *ast.ExprStmt:
		e.expr(st.X)
	case *ast.AssignStmt:
		e.assign(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var d nfDeps
					if i < len(vs.Values) {
						d = e.expr(vs.Values[i])
					}
					v, _ := e.info.Defs[name].(*types.Var)
					e.setVar(v, d)
				}
			}
		}
	case *ast.ReturnStmt:
		e.ret(st)
	case *ast.IfStmt:
		e.stmt(st.Init)
		e.expr(st.Cond)
		e.stmt(st.Body)
		e.stmt(st.Else)
	case *ast.ForStmt:
		e.stmt(st.Init)
		if st.Cond != nil {
			e.expr(st.Cond)
		}
		e.stmt(st.Body)
		e.stmt(st.Post)
	case *ast.RangeStmt:
		e.rangeStmt(st)
	case *ast.SwitchStmt:
		e.stmt(st.Init)
		if st.Tag != nil {
			e.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, x := range cc.List {
				e.expr(x)
			}
			for _, sub := range cc.Body {
				e.stmt(sub)
			}
		}
	case *ast.TypeSwitchStmt:
		e.stmt(st.Init)
		e.stmt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, sub := range cc.Body {
				e.stmt(sub)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			e.stmt(cc.Comm)
			for _, sub := range cc.Body {
				e.stmt(sub)
			}
		}
	case *ast.GoStmt:
		e.expr(st.Call)
	case *ast.DeferStmt:
		e.expr(st.Call)
	case *ast.SendStmt:
		d := e.expr(st.Value)
		e.weakTaint(rootVar(e.info, st.Chan), d)
	case *ast.LabeledStmt:
		e.stmt(st.Stmt)
	}
}

func (e *nfEnv) rangeStmt(st *ast.RangeStmt) {
	d := e.expr(st.X)
	keyDeps := d
	if tv, ok := e.info.Types[st.X]; ok {
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
			keyDeps = nfDeps{} // positional index or rune offset: clean
		}
	}
	if st.Key != nil {
		e.assignTo(st.Key, keyDeps)
	}
	if st.Value != nil {
		e.assignTo(st.Value, d)
	}
	e.stmt(st.Body)
}

func (e *nfEnv) assign(st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// tuple: multi-result call, comma-ok map/assert/recv
		var tup []nfDeps
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			tup = e.call(call)
		} else {
			d := e.expr(st.Rhs[0])
			tup = []nfDeps{d, {}} // the ok/err half of comma-ok is clean
		}
		for i, lhs := range st.Lhs {
			var d nfDeps
			if i < len(tup) {
				d = tup[i]
			}
			e.assignTo(lhs, d)
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		d := e.expr(st.Rhs[i])
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
			// compound ops (+=, |=, …) accumulate into the target
			d = joinDeps(d, e.expr(lhs))
		}
		e.assignTo(lhs, d)
		// Record (or drop) the view relation for whole-variable binds of
		// pointer-like values: `cd := dst.data` makes cd an alias of dst.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			var v *types.Var
			if dv, defined := e.info.Defs[id].(*types.Var); defined {
				v = dv
			} else if uv, used := e.info.Uses[id].(*types.Var); used {
				v = uv
			}
			if v != nil {
				if base := viewBase(e.info, st.Rhs[i], v); base != nil {
					e.views[v] = base
				} else {
					delete(e.views, v)
				}
			}
		}
	}
}

func (e *nfEnv) assignTo(lhs ast.Expr, d nfDeps) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if v, ok := e.info.Defs[x].(*types.Var); ok {
			e.setVar(v, d) // fresh binding: strong update
			return
		}
		if v, ok := e.info.Uses[x].(*types.Var); ok {
			e.setVar(v, d) // whole-variable overwrite: strong update
			return
		}
	default:
		// element, field, or dereference write: weak update on the root
		e.weakTaint(rootVar(e.info, lhs), d)
	}
}

func (e *nfEnv) ret(st *ast.ReturnStmt) {
	if e.litDepth > 0 {
		for _, r := range st.Results {
			e.expr(r)
		}
		return
	}
	var deps []nfDeps
	switch {
	case len(st.Results) == 0:
		for _, v := range e.resultVars {
			deps = append(deps, e.state[v])
		}
	case len(st.Results) == 1 && len(e.sum.results) > 1:
		if call, ok := ast.Unparen(st.Results[0]).(*ast.CallExpr); ok {
			deps = e.call(call)
		} else {
			deps = []nfDeps{e.expr(st.Results[0])}
		}
	default:
		for _, r := range st.Results {
			deps = append(deps, e.expr(r))
		}
	}
	for i, d := range deps {
		if i < len(e.sum.results) {
			e.sum.results[i] = joinDeps(e.sum.results[i], d)
		}
	}
	if e.a.phase == nfPhaseCheck {
		if dir := e.a.dirs.funcDir(e.fn); dir != nil && dir.sinkReturn {
			results := e.fn.Type().(*types.Signature).Results()
			for i, d := range deps {
				if i < results.Len() && taintExempt(results.At(i).Type()) {
					continue
				}
				if w, raw := e.rawNow(d); raw {
					e.a.pass.Report(st.Pos(),
						"raw data returned from %s, a //lrm:sink return release boundary (result %d): %s — no sanitizer on this path",
						e.fn.Name(), i+1, w)
				}
			}
		}
	}
}

func (e *nfEnv) expr(x ast.Expr) nfDeps {
	switch v := ast.Unparen(x).(type) {
	case nil:
		return nfDeps{}
	case *ast.Ident:
		if obj, ok := e.info.Uses[v].(*types.Var); ok {
			return e.state[obj]
		}
		return nfDeps{}
	case *ast.SelectorExpr:
		sel := e.info.Selections[v]
		if sel == nil {
			// package-qualified name
			if obj, ok := e.info.Uses[v.Sel].(*types.Var); ok {
				return e.state[obj]
			}
			return nfDeps{}
		}
		base := e.expr(v.X)
		if sel.Kind() == types.FieldVal {
			if fd := e.a.dirs.fieldDir(sel); fd != nil && fd.source {
				w := fmt.Sprintf("raw field %s read at %s (//lrm:source)",
					v.Sel.Name, e.a.posStr(v.Sel.Pos()))
				base = joinDeps(base, nfDeps{fresh: true, witness: w})
			} else if e.a.dirs.structHasSource(sel.Recv()) {
				// The raw content of a source-bearing struct lives in its
				// //lrm:source fields; its other fields are metadata
				// (workload shape, ε, seeds) and read clean. Without this,
				// every fingerprint or epsilon derived from a Request
				// would count as the histogram itself.
				base = nfDeps{}
			} else if isScalarMetaType(sel.Type()) {
				// Integer/bool fields of a tainted struct (rows, cols,
				// counters, seeds) are shape metadata, not data.
				base = nfDeps{}
			}
		}
		return base
	case *ast.CallExpr:
		tup := e.call(v)
		var out nfDeps
		for _, d := range tup {
			out = joinDeps(out, d)
		}
		return out
	case *ast.IndexExpr:
		return e.expr(v.X) // element of a tainted container is tainted
	case *ast.IndexListExpr:
		return e.expr(v.X)
	case *ast.SliceExpr:
		return e.expr(v.X)
	case *ast.StarExpr:
		return e.expr(v.X)
	case *ast.TypeAssertExpr:
		return e.expr(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.ARROW { // <-ch: whatever was sent on the channel
			return e.expr(v.X)
		}
		return e.expr(v.X)
	case *ast.BinaryExpr:
		return joinDeps(e.expr(v.X), e.expr(v.Y))
	case *ast.CompositeLit:
		var out nfDeps
		for _, elt := range v.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				out = joinDeps(out, e.expr(kv.Value))
				continue
			}
			out = joinDeps(out, e.expr(elt))
		}
		return out
	case *ast.FuncLit:
		e.litDepth++
		e.stmt(v.Body)
		e.litDepth--
		return nfDeps{}
	default:
		return nfDeps{}
	}
}

// resultCount reads the number of values a call produces from its type.
func (e *nfEnv) resultCount(call *ast.CallExpr) int {
	tv, ok := e.info.Types[call]
	if !ok {
		return 1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len()
	default:
		if tv.IsVoid() {
			return 0
		}
		return 1
	}
}

// clearExemptResults zeroes the deps of taint-exempt result positions:
// errors, and integer/boolean scalars (shape metadata).
func (e *nfEnv) clearExemptResults(call *ast.CallExpr, out []nfDeps) []nfDeps {
	tv, ok := e.info.Types[call]
	if !ok {
		return out
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := range out {
			if i < t.Len() && taintExempt(t.At(i).Type()) {
				out[i] = nfDeps{}
			}
		}
	default:
		if len(out) == 1 && taintExempt(tv.Type) {
			out[0] = nfDeps{}
		}
	}
	return out
}

// call evaluates a call expression and returns the taint of each result.
func (e *nfEnv) call(call *ast.CallExpr) []nfDeps {
	return e.clearExemptResults(call, e.call1(call))
}

func (e *nfEnv) call1(call *ast.CallExpr) []nfDeps {
	// Builtins.
	switch calleeBuiltin(e.info, call) {
	case "len", "cap", "new", "make", "delete", "close", "clear",
		"panic", "print", "println", "recover", "complex", "real", "imag":
		for _, arg := range call.Args {
			e.expr(arg)
		}
		return []nfDeps{{}}
	case "append":
		var out nfDeps
		for _, arg := range call.Args {
			out = joinDeps(out, e.expr(arg))
		}
		if len(call.Args) > 0 {
			e.weakTaint(rootVar(e.info, call.Args[0]), out)
		}
		return []nfDeps{out}
	case "copy":
		if len(call.Args) == 2 {
			d := e.expr(call.Args[1])
			e.weakTaint(rootVar(e.info, call.Args[0]), d)
		}
		return []nfDeps{{}}
	case "min", "max":
		var out nfDeps
		for _, arg := range call.Args {
			out = joinDeps(out, e.expr(arg))
		}
		return []nfDeps{out}
	}
	// Type conversion.
	if tv, ok := e.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []nfDeps{e.expr(call.Args[0])}
		}
		return []nfDeps{{}}
	}

	nres := e.resultCount(call)
	fn, impls, ok := e.a.prog.staticCallee(e.info, call)
	if !ok {
		return e.genericCall(call, nres)
	}

	// Evaluate receiver and arguments, mapped onto callee param indices.
	sig := fn.Type().(*types.Signature)
	var recvDeps nfDeps
	hasRecv := sig.Recv() != nil
	var recvExpr ast.Expr
	if hasRecv {
		if sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr); selOK {
			recvExpr = sel.X
			recvDeps = e.expr(sel.X)
		}
	}
	argDeps := make([]nfDeps, len(call.Args))
	for i, arg := range call.Args {
		argDeps[i] = e.expr(arg)
	}
	nparams := sig.Params().Len()
	offset := 0
	if hasRecv {
		offset = 1
	}
	paramDeps := make([]nfDeps, offset+nparams)
	if hasRecv {
		paramDeps[0] = recvDeps
	}
	argToParam := make([]int, len(call.Args))
	for i := range call.Args {
		pi := i
		if pi >= nparams {
			pi = nparams - 1 // variadic tail
		}
		if pi < 0 {
			continue
		}
		argToParam[i] = offset + pi
		paramDeps[offset+pi] = joinDeps(paramDeps[offset+pi], argDeps[i])
	}

	targets := []*types.Func{fn}
	if len(impls) > 0 {
		targets = impls
	}

	// Entry propagation: every param position that receives raw data
	// here is raw-on-entry for every possible callee.
	if e.a.phase >= nfPhaseEntry {
		for pi, d := range paramDeps {
			w, raw := e.rawNow(d)
			if !raw {
				continue
			}
			for _, t := range targets {
				if e.a.prog.FuncOf(t) == nil {
					continue
				}
				e.a.addEntry(t, pi, fmt.Sprintf("%s → passed to %s at %s",
					w, t.Name(), e.a.posStr(call.Pos())))
			}
		}
	}

	// Sink check on the static callee's declaration.
	if e.a.phase == nfPhaseCheck {
		if dir := e.a.dirs.funcDir(fn); dir != nil && dir.sinkArgs {
			for i, d := range argDeps {
				if w, raw := e.rawNow(d); raw {
					e.a.pass.Report(call.Pos(),
						"unsanitized data reaches //lrm:sink %s (argument %d): %s — add noise before release",
						fn.Name(), i+1, w)
				}
			}
		}
		if isResponseWriterMethod(fn) {
			for i, d := range argDeps {
				if w, raw := e.rawNow(d); raw {
					e.a.pass.Report(call.Pos(),
						"unsanitized data written to http.ResponseWriter via %s (argument %d): %s",
						fn.Name(), i+1, w)
				}
			}
		}
	}

	// Compose callee behavior: directives first, then summaries, then
	// the generic model for bodies outside the load.
	out := make([]nfDeps, nres)
	known := false
	for _, t := range targets {
		res, handled := e.calleeResults(t, paramDeps, nres, call)
		if !handled {
			continue
		}
		known = true
		for i := range out {
			out[i] = joinDeps(out[i], res[i])
		}
		// Mutation effects through pointer params.
		if sum := e.a.sums[funcKey(t)]; sum != nil {
			for pi, md := range sum.mutates {
				if md.empty() || pi >= len(paramDeps) {
					continue
				}
				mapped := e.mapThrough(md, paramDeps, t)
				if pi == 0 && hasRecv {
					e.weakTaint(rootVar(e.info, recvExpr), mapped)
					continue
				}
				for ai, p := range argToParam {
					if p == pi {
						e.weakTaint(rootVar(e.info, call.Args[ai]), mapped)
					}
				}
			}
		}
	}
	if !known {
		return e.genericCallWithDeps(call, recvExpr, recvDeps, argDeps, nres)
	}

	// Declared in-place sanitizers clear their targets (strong update) —
	// the body-side verification keeps the declaration honest.
	if dir := e.a.dirs.funcDir(fn); dir != nil && len(dir.sanitizeVars) > 0 && len(impls) == 0 {
		for _, pi := range dir.sanitizeVars {
			if pi == 0 && hasRecv {
				if v := rootVar(e.info, recvExpr); v != nil {
					e.setVar(v, nfDeps{})
				}
				continue
			}
			for ai, ap := range argToParam {
				if ap == pi {
					if v := rootVar(e.info, call.Args[ai]); v != nil {
						e.setVar(v, nfDeps{})
					}
				}
			}
		}
	}
	return out
}

// calleeResults computes one callee's result taints in the caller's
// terms, or handled=false when nothing is known about the callee.
func (e *nfEnv) calleeResults(t *types.Func, paramDeps []nfDeps, nres int, call *ast.CallExpr) (res []nfDeps, handled bool) {
	res = make([]nfDeps, nres)
	if dir := e.a.dirs.funcDir(t); dir != nil {
		if dir.sanitizeAll {
			return res, true // results leave noised
		}
		if dir.sourceResults {
			w := fmt.Sprintf("raw output of %s at %s (//lrm:source)",
				t.Name(), e.a.posStr(call.Pos()))
			for i := range res {
				res[i] = nfDeps{fresh: true, witness: w}
			}
			return res, true
		}
	}
	sum := e.a.sums[funcKey(t)]
	if sum == nil {
		// Declared in-program with a body, summary just not computed yet
		// this fixpoint round: assume bottom (clean). Kleene iteration
		// from ⊥ converges to the least fixpoint; falling back to the
		// conservative unknown-callee model here instead would seed
		// spurious cross-taint through call cycles (interface joins are
		// cyclic: AnswerMany ↔ its implementations) that the fixpoint
		// can never shed.
		if fi := e.a.prog.FuncOf(t); fi != nil && fi.Decl.Body != nil {
			return res, true
		}
		return nil, false
	}
	for i := range res {
		if i < len(sum.results) {
			res[i] = e.mapThrough(sum.results[i], paramDeps, t)
		}
	}
	return res, true
}

// mapThrough translates a callee-relative dep set into the caller's
// frame: parameter bits become the argument taints bound to them, and
// fresh taint keeps its witness with the call hop appended.
func (e *nfEnv) mapThrough(d nfDeps, paramDeps []nfDeps, callee *types.Func) nfDeps {
	var out nfDeps
	if d.fresh {
		out.fresh = true
		out.witness = d.witness + " → through " + callee.Name()
	}
	for i := range paramDeps {
		if d.params&bit(i) != 0 {
			out = joinDeps(out, paramDeps[i])
		}
	}
	return out
}

// genericCall models a call about which nothing is known.
func (e *nfEnv) genericCall(call *ast.CallExpr, nres int) []nfDeps {
	fnDeps := e.expr(call.Fun)
	argDeps := make([]nfDeps, len(call.Args))
	for i, arg := range call.Args {
		argDeps[i] = e.expr(arg)
	}
	return e.genericCallWithDeps(call, nil, fnDeps, argDeps, nres)
}

// genericCallWithDeps is the conservative model shared by dynamic calls
// and bodyless callees (stdlib, assembly): every result carries the join
// of all inputs, and every pointer-like argument may have been written
// with data from any other.
func (e *nfEnv) genericCallWithDeps(call *ast.CallExpr, recvExpr ast.Expr, recvDeps nfDeps, argDeps []nfDeps, nres int) []nfDeps {
	all := recvDeps
	for _, d := range argDeps {
		all = joinDeps(all, d)
	}
	if !all.empty() {
		if recvExpr != nil {
			if tv, ok := e.info.Types[recvExpr]; ok && pointerLike(tv.Type) {
				e.weakTaint(rootVar(e.info, recvExpr), all)
			}
		}
		for i, arg := range call.Args {
			tv, ok := e.info.Types[arg]
			if !ok || !pointerLike(tv.Type) {
				continue
			}
			_ = i
			e.weakTaint(rootVar(e.info, arg), all)
		}
	}
	out := make([]nfDeps, nres)
	for i := range out {
		out[i] = all
	}
	return out
}

// isResponseWriterMethod reports whether fn is a method of
// net/http.ResponseWriter — the built-in release sink.
func isResponseWriterMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "net/http"
}

// isRngSourceMethod reports whether fn is a method of the repository's
// noise root, *lrm/internal/rng.Source.
func isRngSourceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := derefType(sig.Recv().Type()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "lrm/internal/rng" ||
			// fixtures load with their own module paths
			filepath.Base(obj.Pkg().Path()) == "rng")
}

// verifySanitizers keeps //lrm:sanitizer declarations honest: the body
// must actually draw randomness — a method call on *rng.Source or a call
// to another declared sanitizer. Deleting the noise-add inside a
// sanitizer therefore trips the analyzer even though the directive
// still claims the function is safe.
func (a *nfAnalysis) verifySanitizers(fns []*FuncInfo) {
	for _, fi := range fns {
		fn := fi.Fn
		dir := a.dirs.funcDir(fn)
		if dir == nil || (!dir.sanitizeAll && len(dir.sanitizeVars) == 0) {
			continue
		}
		if fi.Decl.Body == nil {
			continue
		}
		draws := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if draws {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(fi.Pkg.Info, call)
			if callee == nil {
				return true
			}
			if isRngSourceMethod(callee) {
				draws = true
				return false
			}
			if cd := a.dirs.funcDir(callee); cd != nil && (cd.sanitizeAll || len(cd.sanitizeVars) > 0) {
				draws = true
				return false
			}
			return true
		})
		if !draws {
			a.pass.Report(fi.Decl.Name.Pos(),
				"%s is declared //lrm:sanitizer but its body never draws noise (no rng.Source call or nested sanitizer) — the declaration is vacuous",
				fn.Name())
		}
	}
}
