package plan

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestNewSpecFullRankPicksLM: a full-rank Kronecker product must skip
// the lrm candidate (Section 4 regime rule) and let the Section 3.2
// closed forms decide — prefix products have ΣW² far below m·Δ², so LM
// wins.
func TestNewSpecFullRankPicksLM(t *testing.T) {
	s, err := workload.ParseSpec("kron:prefix(32)xprefix(32)")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	p, err := NewSpec(s, Options{})
	if err != nil {
		t.Fatalf("NewSpec: %v", err)
	}
	if p.Mechanism != "lm" {
		t.Fatalf("winner %s, want lm\n%s", p.Mechanism, p.Explain())
	}
	if p.SpecDesc != s.Describe() {
		t.Errorf("SpecDesc %q, want %q", p.SpecDesc, s.Describe())
	}
	if p.Fingerprint != workload.SpecFingerprint(s) {
		t.Errorf("Fingerprint %q not the spec fingerprint", p.Fingerprint)
	}
	for _, c := range p.Candidates {
		if c.Name == "lrm" && c.Source != SourceSkipped {
			t.Errorf("lrm scored on a full-rank product: %+v", c)
		}
	}
	// The recorded scores are the spec closed forms.
	st := p.Stats
	if got, want := p.SSE, st.LaplaceSSE; math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("winning SSE %g, LaplaceSSE %g", got, want)
	}
	if p.Prepared() == nil {
		t.Fatalf("spec plan retained no Prepared")
	}
	// Planning is preparing: the winner answers immediately.
	x := rng.New(1).UniformVec(s.Domain(), 0, 10)
	out, err := p.Prepared().Answer(x, privacy.Epsilon(1), rng.New(2))
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(out) != s.Queries() {
		t.Fatalf("answer length %d, want %d", len(out), s.Queries())
	}
}

// TestNewSpecLowRankPicksLRM: a Kronecker product of genuinely low-rank
// dense factors must route to the factored LRM, and its analytic SSE
// must beat both baselines.
func TestNewSpecLowRankPicksLRM(t *testing.T) {
	src := rng.New(3)
	f1 := workload.Related(14, 12, 2, src)
	f2 := workload.Related(10, 9, 2, src)
	s := workload.NewKronSpec(workload.AsSpec(f1), workload.AsSpec(f2))
	p, err := NewSpec(s, Options{})
	if err != nil {
		t.Fatalf("NewSpec: %v", err)
	}
	if p.Mechanism != "lrm" {
		t.Fatalf("winner %s, want lrm\n%s", p.Mechanism, p.Explain())
	}
	for _, c := range p.Candidates {
		if c.Name != "lrm" && c.Source == SourceAnalytic && c.SSE < p.SSE {
			t.Errorf("%s (%g) beat the chosen lrm (%g)", c.Name, c.SSE, p.SSE)
		}
	}
	x := rng.New(4).UniformVec(s.Domain(), 0, 10)
	out, err := p.Prepared().Answer(x, privacy.Epsilon(1), rng.New(5))
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(out) != s.Queries() {
		t.Fatalf("answer length %d, want %d", len(out), s.Queries())
	}
}

// TestNewSpecDenseAdapterMatchesNew: planning through the adapter is
// the dense path — same winner, same digest, no SpecDesc.
func TestNewSpecDenseAdapterMatchesNew(t *testing.T) {
	w := workload.Prefix(24)
	ps, err := NewSpec(workload.AsSpec(w), Options{})
	if err != nil {
		t.Fatalf("NewSpec: %v", err)
	}
	pd, err := New(w, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if ps.SpecDesc != "" {
		t.Errorf("adapter plan has SpecDesc %q", ps.SpecDesc)
	}
	if ps.Digest() != pd.Digest() {
		t.Errorf("adapter digest %s differs from dense digest %s", ps.Digest(), pd.Digest())
	}
}

func TestSpecPlanRoundTrip(t *testing.T) {
	s, err := workload.ParseSpec("kron:prefix(16)xprefix(16)")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	p, err := NewSpec(s, Options{})
	if err != nil {
		t.Fatalf("NewSpec: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(buf.String(), `"spec"`) {
		t.Errorf("document does not carry the spec descriptor:\n%s", buf.String())
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.SpecDesc != p.SpecDesc || got.Digest() != p.Digest() {
		t.Errorf("round trip lost the spec: desc %q digest %s, want %q %s",
			got.SpecDesc, got.Digest(), p.SpecDesc, p.Digest())
	}
	// Tampering with the descriptor must break the self-check.
	tampered := strings.Replace(buf.String(), "kron:prefix(16)xprefix(16)", "kron:prefix(61)xprefix(16)", 1)
	if _, err := Decode(strings.NewReader(tampered)); err == nil {
		t.Errorf("tampered spec descriptor accepted")
	}
}

func TestNewSpecNoScorableCandidate(t *testing.T) {
	// lrm alone on a full-rank implicit spec: skipped by the regime rule,
	// so the plan must fail loudly with the reason.
	s := workload.NewPrefixSpec(32)
	_, err := NewSpec(s, Options{Mechanisms: []string{"lrm"}})
	if err == nil || !strings.Contains(err.Error(), "full-rank regime") {
		t.Fatalf("want a skip-reason error, got %v", err)
	}
}
