// Package bad holds noiseflow want-diagnostic fixtures: raw histogram
// payloads reaching release sinks with no sanitizer on the path, plus a
// sanitizer declaration the body does not back up.
package bad

import (
	"fmt"
	"net/http"

	"lrm/internal/rng"
)

// request mirrors the engine's shape: the histogram payload is the raw
// data; everything else is releasable metadata.
type request struct {
	//lrm:source
	Counts []float64
	Eps    float64
}

// emit releases its argument to the outside world.
//
//lrm:sink
func emit(vals []float64) { _ = vals }

// release sends the raw histogram straight to the sink.
func release(req *request) {
	emit(req.Counts) // want `unsanitized data reaches //lrm:sink emit`
}

// launder copies the data but adds no noise: taint flows through.
func launder(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// answer is a release boundary returning laundered-but-raw data.
//
//lrm:sink return
func answer(req *request) []float64 {
	return launder(req.Counts) // want `raw data returned from answer`
}

// publish receives raw data interprocedurally: the taint reaches vals
// through handler's call below, not through any directive here.
func publish(vals []float64) {
	emit(vals) // want `unsanitized data reaches //lrm:sink emit`
}

func handler(req *request) {
	publish(req.Counts)
}

// serve writes raw data to the built-in ResponseWriter sink.
func serve(w http.ResponseWriter, req *request) {
	w.Write([]byte(fmt.Sprint(req.Counts))) // want `unsanitized data written to http.ResponseWriter`
}

// vacuous claims to sanitize but never draws noise.
//
//lrm:sanitizer — claims a noise-add the body does not perform
func vacuous(vals []float64, src *rng.Source) []float64 { // want `declared //lrm:sanitizer but its body never draws noise`
	_ = src
	return vals
}
