// Package clean holds lockguard fixtures that must produce no
// diagnostics: the lock discipline the analyzer accepts, including the
// early-return unlock pattern and the fresh-value exemption.
package clean

import "sync"

type counter struct {
	mu sync.Mutex
	//lrm:guardedby mu
	n int
}

// bump holds the lock across the write.
func bump(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// deferred holds the lock to the end of the function.
func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// earlyReturn unlocks inside a terminating branch: the lock is still
// held on the path that falls through past the if.
func earlyReturn(c *counter, hit bool) int {
	c.mu.Lock()
	if hit {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// fresh values are exempt: no other goroutine can reach them yet.
func fresh() int {
	c := &counter{}
	c.n = 7
	return c.n
}

// sumLocked declares the callee-side contract: mu is held on entry.
//
//lrm:guardedby mu
func (c *counter) sumLocked() int {
	return c.n
}

// callsWithLock observes the caller-side half of the contract.
func callsWithLock(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sumLocked()
}
