package mat

import (
	"math"
	"sort"
	"sync/atomic"
)

// svdCalls counts FactorSVD invocations process-wide. The adaptive
// planner's contract is "one factorization of W end to end" — its SVD is
// reused by the chosen mechanism's PrepareAnalyzed instead of being
// recomputed — and tests pin that by differencing this counter around
// plan.AutoPrepare. (RandSVD's small projected factorization also routes
// through FactorSVD and therefore counts.)
var svdCalls atomic.Uint64

// SVDCalls returns the cumulative number of FactorSVD invocations in
// this process. Intended for tests that pin factorization counts; the
// counter never resets.
func SVDCalls() uint64 { return svdCalls.Load() }

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// U: m×k, S: k, V: n×k where k = min(m,n). Singular values are sorted in
// non-increasing order.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// svdTol is the relative off-diagonal threshold at which the one-sided
// Jacobi sweep is considered converged.
const svdTol = 1e-12

// maxJacobiSweeps bounds the number of Jacobi sweeps; convergence is
// typically reached in well under 30 sweeps for the sizes used here.
const maxJacobiSweeps = 60

// FactorSVD computes the thin SVD of a by one-sided Jacobi rotations
// (Hestenes' method): columns of a working copy of A are orthogonalized
// pairwise; their final norms are the singular values.
func FactorSVD(a *Dense) *SVD {
	svdCalls.Add(1)
	m, n := a.Dims()
	if m >= n {
		return svdTall(a)
	}
	// Wide matrix: factor the transpose and swap U and V.
	s := svdTall(a.T())
	return &SVD{U: s.V, S: s.S, V: s.U}
}

func svdTall(a *Dense) *SVD {
	m, n := a.Dims()
	// Work column-major so each column is contiguous during rotations.
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		cols[j] = a.Col(j)
	}
	v := Eye(n)
	vcols := make([][]float64, n)
	for j := 0; j < n; j++ {
		vcols[j] = v.Col(j)
	}

	frob := 0.0
	for _, c := range cols {
		for _, x := range c {
			frob += x * x
		}
	}
	threshold := svdTol * frob
	if threshold == 0 {
		threshold = svdTol
	}

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			cp := cols[p]
			for q := p + 1; q < n; q++ {
				cq := cols[q]
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					alpha += cp[i] * cp[i]
					beta += cq[i] * cq[i]
					gamma += cp[i] * cq[i]
				}
				// The absolute floor must sit well below the rank cutoff
				// (null singular values settle near sqrt of this bound).
				if gamma*gamma <= threshold*1e-12 || gamma == 0 {
					continue
				}
				// Skip rotations that cannot change anything numerically.
				if math.Abs(gamma) <= svdTol*math.Sqrt(alpha*beta) {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta > 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					xp, xq := cp[i], cq[i]
					cp[i] = c*xp - s*xq
					cq[i] = s*xp + c*xq
				}
				vp, vq := vcols[p], vcols[q]
				for i := 0; i < n; i++ {
					xp, xq := vp[i], vq[i]
					vp[i] = c*xp - s*xq
					vq[i] = s*xp + c*xq
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Singular values are column norms; U columns are normalized columns.
	type colWithNorm struct {
		idx  int
		norm float64
	}
	order := make([]colWithNorm, n)
	for j := 0; j < n; j++ {
		order[j] = colWithNorm{j, VecNorm2(cols[j])}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].norm > order[j].norm })

	u := New(m, n)
	vOut := New(n, n)
	s := make([]float64, n)
	for k, cw := range order {
		s[k] = cw.norm
		src := cols[cw.idx]
		if cw.norm > 0 {
			inv := 1 / cw.norm
			for i := 0; i < m; i++ {
				u.data[i*n+k] = src[i] * inv
			}
		}
		vc := vcols[cw.idx]
		for i := 0; i < n; i++ {
			vOut.data[i*n+k] = vc[i]
		}
	}
	return &SVD{U: u, S: s, V: vOut}
}

// Reconstruct returns U·diag(S)·Vᵀ, useful for testing.
func (s *SVD) Reconstruct() *Dense {
	us := s.U.Clone()
	_, k := us.Dims()
	for i := 0; i < us.rows; i++ {
		row := us.RawRow(i)
		for j := 0; j < k; j++ {
			row[j] *= s.S[j]
		}
	}
	return MulABt(us, s.V)
}

// Rank returns the numerical rank: the number of singular values above
// max(m,n)·eps·S[0] (the standard LAPACK-style threshold).
func (s *SVD) Rank() int {
	if len(s.S) == 0 || s.S[0] == 0 {
		return 0
	}
	tol := s.rankTol()
	r := 0
	for _, v := range s.S {
		if v > tol {
			r++
		}
	}
	return r
}

// Rank returns the numerical rank of a via SVD.
func Rank(a *Dense) int {
	if a.rows == 0 || a.cols == 0 {
		return 0
	}
	return FactorSVD(a).Rank()
}

// rankTol is the singular-value cutoff below which values are treated as
// zero. One-sided Jacobi with our sweep threshold resolves null singular
// values only to about 1e-11 relative accuracy, so the cutoff is set
// accordingly (looser than the eps-based LAPACK rule).
func (s *SVD) rankTol() float64 {
	if len(s.S) == 0 {
		return 0
	}
	m, _ := s.U.Dims()
	n, _ := s.V.Dims()
	return float64(max(m, n)) * 1e-11 * s.S[0]
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse A⁺ via SVD:
// A⁺ = V·diag(1/sᵢ)·Uᵀ with small singular values zeroed.
func PseudoInverse(a *Dense) *Dense {
	s := FactorSVD(a)
	k := len(s.S)
	tol := s.rankTol()
	// V·diag(inv)·Uᵀ
	vs := s.V.Clone()
	for i := 0; i < vs.rows; i++ {
		row := vs.RawRow(i)
		for j := 0; j < k; j++ {
			if s.S[j] > tol {
				row[j] /= s.S[j]
			} else {
				row[j] = 0
			}
		}
	}
	return MulABt(vs, s.U)
}

// ConditionNumber returns S[0]/S[r-1], the ratio of largest to smallest
// nonzero singular value (the paper's constant C in Theorem 2).
func (s *SVD) ConditionNumber() float64 {
	r := s.Rank()
	if r == 0 {
		return math.Inf(1)
	}
	return s.S[0] / s.S[r-1]
}
