package mat

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kernel-family dispatch. The packed GEMM has more than one capable
// micro-kernel tier on modern hardware (AVX2+FMA 4×8 and AVX-512 8×8 on
// amd64, NEON 4×8 on arm64), and which tier wins depends on the product
// shape: wide multi-RHS products amortize the 8-row kernel's extra
// broadcasts, skinny ones may not. Rather than hard-coding the choice,
// gemmMain classifies every product by shape and looks the family up in a
// small table that internal/benchsuite's startup micro-calibration fills
// in from measured timings (Polynesia-style: pick the kernel per request
// shape, measured). Before calibration the table holds the widest tier
// the host supports.
//
// Determinism across families: the selectable asm families are
// bit-compatible by construction, so calibration (or recalibration with
// different timings) can never change results:
//
//   - fused path: every output element is one FMA chain in ascending k.
//     IEEE FMA lane arithmetic is width-independent, and the 8-row tier
//     reuses the 4-row kernel of the same rounding class for row ranges
//     shorter than 8, so the set of rows handled by FMA vs the scalar
//     row kernel is identical in every asm family (ranges of ≥4 rows are
//     FMA, shorter ones scalar).
//   - column-exact path (MulColsTo): every family rounds each step as a
//     separate multiply and add in ascending k — the dot-product
//     rounding — so all families, scalar included, agree bitwise.
//
// The scalar family is therefore never mixed into a dispatch table that
// contains asm families: it is the whole table exactly when the build or
// host has no asm kernels at all.

// gemmFamilyID enumerates the micro-kernel tiers.
type gemmFamilyID int32

const (
	famScalar gemmFamilyID = iota
	famAVX2                // amd64 AVX2+FMA 4×8 kernels
	famAVX512              // amd64 AVX-512 8×8 kernels (4×8 for short row ranges)
	famNEON                // arm64 NEON 4×8 kernels
)

var famNames = map[gemmFamilyID]string{
	famScalar: "scalar",
	famAVX2:   "avx2",
	famAVX512: "avx512",
	famNEON:   "neon",
}

// Shape classes: products are classified by output width (narrow covers
// the matrix-vector-like and small-batch right-hand sides) and by the
// rows-vs-depth aspect of the left operand. The grid is deliberately
// coarse — six entries a calibration can fill with a handful of timed
// products — and classOf is a pure function of the shape, so dispatch
// never depends on runtime load.
const (
	classSquareWide = iota
	classSquareNarrow
	classTallWide
	classTallNarrow
	classDeepWide
	classDeepNarrow
	gemmNumClasses
)

var classNames = [gemmNumClasses]string{
	classSquareWide:   "square-wide",
	classSquareNarrow: "square-narrow",
	classTallWide:     "tall-wide",
	classTallNarrow:   "tall-narrow",
	classDeepWide:     "deep-wide",
	classDeepNarrow:   "deep-narrow",
}

// gemmNarrowCols is the output width at or below which a product counts
// as narrow: single vectors and small answer batches (B ≤ 16) behave like
// a loop of mat-vecs, wider batches like a true GEMM.
const gemmNarrowCols = 16

// classOf classifies an m×k · k×n product. Pure function of the shape.
func classOf(m, n, k int) int {
	narrow := n <= gemmNarrowCols
	switch {
	case m >= 8*k: // tall: many output rows per unit of accumulation depth
		if narrow {
			return classTallNarrow
		}
		return classTallWide
	case k >= 8*m: // deep: long accumulation chains over few output rows
		if narrow {
			return classDeepNarrow
		}
		return classDeepWide
	default:
		if narrow {
			return classSquareNarrow
		}
		return classSquareWide
	}
}

// gemmDispatch maps shape class → family. Entries are atomic so the
// calibration can install winners while products are in flight; because
// selectable families are bit-compatible, a racing product is merely
// computed by the other tier, never differently.
var gemmDispatch [gemmNumClasses]atomic.Int32

func init() {
	resetDispatch()
}

// resetDispatch points every class at the widest tier the host supports.
func resetDispatch() {
	best := int32(gemmBestFamily())
	for i := range gemmDispatch {
		gemmDispatch[i].Store(best)
	}
}

// gemmBestFamily returns the widest asm tier currently enabled.
func gemmBestFamily() gemmFamilyID {
	if !gemmUseAsm {
		return famScalar
	}
	if gemmUseAVX512 {
		return famAVX512
	}
	return gemmArchFamily
}

// resolveFamily clamps a dispatch-table entry to the kernels that are
// actually enabled right now (tests flip gemmUseAsm/gemmUseAVX512 to
// force paths; the env kill switch clears gemmUseAVX512 at startup).
func resolveFamily(class int) gemmFamilyID {
	if !gemmUseAsm {
		return famScalar
	}
	fam := gemmFamilyID(gemmDispatch[class].Load())
	if fam == famAVX512 && !gemmUseAVX512 {
		fam = gemmArchFamily
	}
	if fam == famScalar {
		// A table can only hold scalar when no asm tier existed at reset;
		// if asm came back (a test restored gemmUseAsm), prefer it.
		fam = gemmArchFamily
	}
	return fam
}

// kernelSel is the kernel pair gemmTileRun drives: kern8 computes 8-row
// blocks (nil outside the AVX-512 family), kern4 computes 4-row blocks,
// both over full gemmNR-wide panels. Both nil selects the scalar kernels.
type kernelSel struct {
	kern8 gemmAsmKernel
	kern4 gemmAsmKernel
}

// famKernels maps a family and rounding class to its kernel pair.
func famKernels(fam gemmFamilyID, colExact bool) kernelSel {
	switch fam {
	case famAVX512:
		if colExact {
			return kernelSel{kern8: gemmKernelMulAdd8x8, kern4: gemmKernelMulAdd4x8}
		}
		return kernelSel{kern8: gemmKernel8x8, kern4: gemmKernel4x8}
	case famAVX2, famNEON:
		if colExact {
			return kernelSel{kern4: gemmKernelMulAdd4x8}
		}
		return kernelSel{kern4: gemmKernel4x8}
	default:
		return kernelSel{}
	}
}

// selectKernels is gemmMain's dispatch: shape class → family → kernels.
func selectKernels(m, n, k int, colExact bool) kernelSel {
	if !gemmUseAsm {
		return kernelSel{}
	}
	return famKernels(resolveFamily(classOf(m, n, k)), colExact)
}

// KernelClasses returns the names of the shape classes the dispatcher
// distinguishes, in table order.
func KernelClasses() []string {
	out := make([]string, gemmNumClasses)
	copy(out, classNames[:])
	return out
}

// KernelFamilies returns the kernel families selectable on this host,
// widest first. When any asm tier is available the list contains only
// asm families (they are mutually bit-compatible; the scalar kernels
// round differently and are reserved for builds and hosts without asm).
func KernelFamilies() []string {
	if !gemmUseAsm {
		return []string{famNames[famScalar]}
	}
	var out []string
	if gemmUseAVX512 {
		out = append(out, famNames[famAVX512])
	}
	out = append(out, famNames[gemmArchFamily])
	return out
}

// KernelTier returns the widest kernel family enabled on this host —
// what every class dispatches to before calibration.
func KernelTier() string { return famNames[gemmBestFamily()] }

// SetKernelFamily installs family as the dispatch choice for the named
// shape class (or for every class when class is empty). Only families
// reported by KernelFamilies are accepted: the selectable set is
// bit-compatible by construction, so installing any member can never
// change results — the property that makes measured (and therefore
// run-to-run varying) calibration safe.
func SetKernelFamily(class, family string) error {
	var fam gemmFamilyID = -1
	for id, name := range famNames {
		if name == family {
			fam = id
		}
	}
	if fam < 0 {
		return fmt.Errorf("mat: unknown kernel family %q", family)
	}
	ok := false
	for _, name := range KernelFamilies() {
		if name == family {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("mat: kernel family %q not selectable on this host (have %v)", family, KernelFamilies())
	}
	if class == "" {
		for i := range gemmDispatch {
			gemmDispatch[i].Store(int32(fam))
		}
		return nil
	}
	for i, name := range classNames {
		if name == class {
			gemmDispatch[i].Store(int32(fam))
			return nil
		}
	}
	return fmt.Errorf("mat: unknown kernel class %q (have %v)", class, KernelClasses())
}

// KernelDispatch returns a snapshot of the dispatch table: shape class →
// family name. This is what lrmbench records in every BENCH artifact and
// lrmserve reports in /stats, so a committed trajectory always says
// which kernels actually ran.
func KernelDispatch() map[string]string {
	out := make(map[string]string, gemmNumClasses)
	for i, name := range classNames {
		out[name] = famNames[resolveFamily(i)]
	}
	return out
}

// KernelDispatchString renders the dispatch table as one sorted
// "class=family" line for logs.
func KernelDispatchString() string {
	table := KernelDispatch()
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += k + "=" + table[k]
	}
	return s
}

// KernelFamilyFor reports the family the dispatcher would run for an
// m×k · k×n product on the default (fused) path — the name recorded per
// benchmark in the perf trajectory.
func KernelFamilyFor(m, n, k int) string {
	if !gemmUseAsm {
		return famNames[famScalar]
	}
	return famNames[resolveFamily(classOf(m, n, k))]
}

// KernelClassFor reports the shape class an m×k · k×n product dispatches
// under — the key calibration uses when installing a measured winner for
// a representative product of that shape.
func KernelClassFor(m, n, k int) string {
	return classNames[classOf(m, n, k)]
}
