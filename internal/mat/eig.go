package mat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition A = V·diag(Values)·Vᵀ of a symmetric
// matrix. Eigenvalues are sorted in non-increasing order and V's columns
// are the corresponding orthonormal eigenvectors.
type Eigen struct {
	Values  []float64
	Vectors *Dense
}

// FactorSymEig computes the eigendecomposition of a symmetric matrix by
// the cyclic Jacobi method. Only symmetry up to roundoff is assumed; the
// symmetric part (A+Aᵀ)/2 is what is actually diagonalized.
func FactorSymEig(a *Dense) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: FactorSymEig needs a square matrix")
	}
	n := a.rows
	// Symmetrize defensively.
	w := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.data[i*n+j] = 0.5 * (a.data[i*n+j] + a.data[j*n+i])
		}
	}
	v := Eye(n)

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.data[i*n+j] * w.data[i*n+j]
			}
		}
		return s
	}
	frob := SquaredSum(w)
	tol := 1e-24 * frob
	if tol == 0 {
		tol = 1e-30
	}

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				if math.Abs(apq) <= 1e-16*(math.Abs(app)+math.Abs(aqq)) {
					w.data[p*n+q] = 0
					w.data[q*n+p] = 0
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Update rows/cols p and q of w.
				for k := 0; k < n; k++ {
					akp := w.data[k*n+p]
					akq := w.data[k*n+q]
					w.data[k*n+p] = c*akp - s*akq
					w.data[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := w.data[p*n+k]
					aqk := w.data[q*n+k]
					w.data[p*n+k] = c*apk - s*aqk
					w.data[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.data[k*n+p]
					vkq := v.data[k*n+q]
					v.data[k*n+p] = c*vkp - s*vkq
					v.data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}

	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.data[i*n+i]
	}
	// Sort eigenpairs by non-increasing eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for k, src := range idx {
		sortedVals[k] = values[src]
		for i := 0; i < n; i++ {
			sortedVecs.data[i*n+k] = v.data[i*n+src]
		}
	}
	return &Eigen{Values: sortedVals, Vectors: sortedVecs}, nil
}

// Reconstruct returns V·diag(Values)·Vᵀ, useful for testing.
func (e *Eigen) Reconstruct() *Dense {
	vs := e.Vectors.Clone()
	n := vs.rows
	for i := 0; i < n; i++ {
		row := vs.RawRow(i)
		for j := 0; j < n; j++ {
			row[j] *= e.Values[j]
		}
	}
	return MulABt(vs, e.Vectors)
}

// SqrtPSD returns the symmetric square root V·diag(√λᵢ)·Vᵀ of a positive
// semidefinite matrix; negative eigenvalues (roundoff) are clamped to 0.
// It is how the matrix mechanism recovers its strategy A from M = AᵀA.
func SqrtPSD(a *Dense) (*Dense, error) {
	e, err := FactorSymEig(a)
	if err != nil {
		return nil, err
	}
	n := len(e.Values)
	vs := e.Vectors.Clone()
	for i := 0; i < n; i++ {
		row := vs.RawRow(i)
		for j := 0; j < n; j++ {
			lam := e.Values[j]
			if lam < 0 {
				lam = 0
			}
			row[j] *= math.Sqrt(lam)
		}
	}
	return MulABt(vs, e.Vectors), nil
}

// LambdaMaxSym estimates the largest eigenvalue of a symmetric positive
// semidefinite matrix by power iteration. The estimate converges from
// below; callers needing a certified upper bound should add a small
// safety factor.
func LambdaMaxSym(a *Dense, iters int) float64 {
	n := a.Rows()
	if n == 0 {
		return 0
	}
	return LambdaMaxSymBuf(a, iters, make([]float64, n), make([]float64, n))
}

// LambdaMaxSymBuf is LambdaMaxSym with caller-provided length-n scratch
// vectors, so iterative solvers can re-estimate spectral norms without
// allocating. x and y must not alias.
func LambdaMaxSymBuf(a *Dense, iters int, x, y []float64) float64 {
	n := a.Rows()
	if n == 0 {
		return 0
	}
	if len(x) != n || len(y) != n {
		panic(fmt.Sprintf("mat: LambdaMaxSymBuf scratch lengths %d,%d, need %d", len(x), len(y), n))
	}
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	lam := 0.0
	for it := 0; it < iters; it++ {
		MulVecTo(y, a, x)
		ny := VecNorm2(y)
		if ny == 0 {
			return 0
		}
		for i := range y {
			y[i] /= ny
		}
		x, y = y, x
		if math.Abs(ny-lam) <= 1e-10*ny {
			return ny
		}
		lam = ny
	}
	return lam
}

// ProjectPSD returns the projection of the symmetric matrix a onto the
// cone {M : M ⪰ floor·I}: eigenvalues below floor are raised to floor.
// It is the projection step of the matrix mechanism's SPG solver.
func ProjectPSD(a *Dense, floor float64) (*Dense, error) {
	e, err := FactorSymEig(a)
	if err != nil {
		return nil, err
	}
	n := len(e.Values)
	vs := e.Vectors.Clone()
	for i := 0; i < n; i++ {
		row := vs.RawRow(i)
		for j := 0; j < n; j++ {
			lam := e.Values[j]
			if lam < floor {
				lam = floor
			}
			row[j] *= lam
		}
	}
	return MulABt(vs, e.Vectors), nil
}
