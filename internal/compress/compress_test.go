package compress

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/transform"
)

func TestOMPExactRecoverySparseSignal(t *testing.T) {
	// A 3-sparse coefficient vector measured by a 24×64 Gaussian matrix is
	// recovered exactly (no noise) by OMP.
	src := rng.New(1)
	k, n := 24, 64
	a := mat.New(k, n)
	for i := range a.RawData() {
		a.RawData()[i] = src.Normal() / math.Sqrt(float64(k))
	}
	truth := make([]float64, n)
	truth[5], truth[20], truth[41] = 3, -2, 1.5
	y := mat.MulVec(a, truth)
	res, err := OMP(a, y, 3, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Expand(n)
	for j := range truth {
		if math.Abs(got[j]-truth[j]) > 1e-8 {
			t.Fatalf("coefficient %d: got %g want %g", j, got[j], truth[j])
		}
	}
	if res.Residual > 1e-8 {
		t.Fatalf("residual %g", res.Residual)
	}
	if res.Iterations != 3 {
		t.Fatalf("selected %d atoms, want 3", res.Iterations)
	}
}

func TestOMPSupportIdentification(t *testing.T) {
	src := rng.New(2)
	k, n := 20, 50
	a := mat.New(k, n)
	for i := range a.RawData() {
		a.RawData()[i] = src.Normal()
	}
	truth := map[int]float64{7: 4, 33: -5}
	y := make([]float64, k)
	for j, v := range truth {
		col := a.Col(j)
		for i := range y {
			y[i] += v * col[i]
		}
	}
	res, err := OMP(a, y, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, j := range res.Support {
		found[j] = true
	}
	for j := range truth {
		if !found[j] {
			t.Fatalf("support %v misses true atom %d", res.Support, j)
		}
	}
}

func TestOMPValidation(t *testing.T) {
	a := mat.New(4, 8)
	if _, err := OMP(a, make([]float64, 3), 2, 0); err == nil {
		t.Fatal("want error for measurement length mismatch")
	}
	if _, err := OMP(a, make([]float64, 4), 0, 0); err == nil {
		t.Fatal("want error for zero atom budget")
	}
	if _, err := OMP(a, make([]float64, 4), 9, 0); err == nil {
		t.Fatal("want error for atom budget > n")
	}
}

func TestOMPAtomBudgetClampedToMeasurements(t *testing.T) {
	// maxAtoms > k would make the least-squares fit underdetermined; the
	// solver clamps it.
	src := rng.New(3)
	k, n := 5, 20
	a := mat.New(k, n)
	for i := range a.RawData() {
		a.RawData()[i] = src.Normal()
	}
	y := src.NormalVec(k, 1)
	res, err := OMP(a, y, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > k {
		t.Fatalf("selected %d atoms with only %d measurements", res.Iterations, k)
	}
}

func TestOMPZeroSignal(t *testing.T) {
	a := mat.Eye(6)
	res, err := OMP(a, make([]float64, 6), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || res.Residual != 0 {
		t.Fatalf("zero signal should select nothing: %+v", res)
	}
}

func TestSynopsisValidation(t *testing.T) {
	if _, err := NewSynopsis(12, 4, 1); err == nil {
		t.Fatal("want error for non-power-of-two domain")
	}
	if _, err := NewSynopsis(16, 0, 1); err == nil {
		t.Fatal("want error for zero measurements")
	}
	if _, err := NewSynopsis(16, 17, 1); err == nil {
		t.Fatal("want error for k > n")
	}
	s, err := NewSynopsis(16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compress(make([]float64, 5), 1, rng.New(1)); err == nil {
		t.Fatal("want error for bad data length")
	}
	if _, err := s.Compress(make([]float64, 16), 0, rng.New(1)); err == nil {
		t.Fatal("want error for bad epsilon")
	}
	if _, err := s.Reconstruct(make([]float64, 3), 2, 0); err == nil {
		t.Fatal("want error for bad synopsis length")
	}
	if _, err := s.MeasureExact(make([]float64, 3)); err == nil {
		t.Fatal("want error for bad data length")
	}
}

func TestSynopsisDeterministicInSeed(t *testing.T) {
	a, _ := NewSynopsis(32, 8, 7)
	b, _ := NewSynopsis(32, 8, 7)
	c, _ := NewSynopsis(32, 8, 8)
	x := make([]float64, 32)
	x[3] = 10
	ya, _ := a.MeasureExact(x)
	yb, _ := b.MeasureExact(x)
	yc, _ := c.MeasureExact(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("same seed should give identical measurements")
		}
	}
	same := true
	for i := range ya {
		if ya[i] != yc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different measurement matrices")
	}
}

func TestSynopsisSensitivityConcentration(t *testing.T) {
	// With Φ entries N(0, 1/k), each column's abs sum concentrates near
	// k·√(2/(πk)) = √(2k/π); the max over n columns sits a modest factor
	// above. Sanity-check the computed sensitivity is in a plausible band.
	s, err := NewSynopsis(256, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	mean := math.Sqrt(2 * 64 / math.Pi)
	if s.Sensitivity() < mean*0.8 || s.Sensitivity() > mean*2.5 {
		t.Fatalf("sensitivity %g far from expected scale %g", s.Sensitivity(), mean)
	}
}

func TestSynopsisNoiselessRecoveryOfWaveletSparseData(t *testing.T) {
	// A histogram that is 4-sparse in the Haar basis is recovered almost
	// exactly from a noiseless synopsis of only n/4 measurements.
	n := 128
	coeffs := make([]float64, n)
	coeffs[0], coeffs[1], coeffs[5], coeffs[17] = 40, -12, 6, 3
	x := transform.IHaar(coeffs)
	s, err := NewSynopsis(n, n/4, 11)
	if err != nil {
		t.Fatal(err)
	}
	y, err := s.MeasureExact(x)
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := s.Reconstruct(y, 4, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(xhat[i]-x[i]) > 1e-6 {
			t.Fatalf("xhat[%d]=%g want %g", i, xhat[i], x[i])
		}
	}
}

func TestSynopsisNoisyRecoveryBeatsNoiseOnData(t *testing.T) {
	// On a strongly wavelet-sparse histogram over a large domain, the
	// compressive pipeline at ε=1 should reconstruct with far less error
	// than adding Laplace(1/ε) to every one of the n counts (the
	// noise-on-data baseline) — the whole point of reference [17].
	n := 256
	coeffs := make([]float64, n)
	coeffs[0], coeffs[2], coeffs[9] = 400, -150, 80
	x := transform.IHaar(coeffs)
	s, err := NewSynopsis(n, n/4, 13)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	const eps = 1.0
	var cmSSE float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		y, err := s.Compress(x, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		xhat, err := s.Reconstruct(y, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			d := xhat[i] - x[i]
			cmSSE += d * d
		}
	}
	cmSSE /= trials
	nodSSE := 2 * float64(n) / (eps * eps) // analytic E‖Lap(1/ε)^n‖²
	if cmSSE > nodSSE {
		t.Fatalf("compressive SSE %g should beat noise-on-data %g on sparse data", cmSSE, nodSSE)
	}
}

func TestExpandIgnoresOutOfRange(t *testing.T) {
	r := &OMPResult{Coeffs: []float64{1, 2}, Support: []int{0, 99}}
	s := r.Expand(4)
	if s[0] != 1 {
		t.Fatal("valid atom dropped")
	}
	for _, v := range s[1:] {
		if v != 0 {
			t.Fatal("out-of-range atom leaked")
		}
	}
}
