package lrm

import (
	"math"
	"testing"
)

func TestAnswerBatchEndToEnd(t *testing.T) {
	x := []float64{5, 10, 15, 20, 25, 30, 35, 40}
	w := RangeWorkload(4, len(x), NewSource(1))
	noisy, err := AnswerBatch(w, x, 1.0, NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(noisy) != 4 {
		t.Fatalf("got %d answers", len(noisy))
	}
	exact := w.Answer(x)
	for i := range noisy {
		if math.Abs(noisy[i]-exact[i]) > 200 {
			t.Fatalf("answer %d wildly off: %v vs %v", i, noisy[i], exact[i])
		}
	}
}

func TestFacadeEngine(t *testing.T) {
	e, err := NewEngine(EngineOptions{CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	x := []float64{5, 10, 15, 20, 25, 30, 35, 40}
	w := RangeWorkload(4, len(x), NewSource(1))
	out, err := e.Answer(EngineRequest{
		Workload:   w,
		Histograms: [][]float64{x, x},
		Eps:        0.5,
		Budget:     1.0,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || len(out[0]) != 4 {
		t.Fatalf("answers shape %v, want 2×4", out)
	}
	st := e.Stats()
	if st.Prepares != 1 || st.Answers != 2 {
		t.Fatalf("stats = %+v, want one prepare, two answers", st)
	}
	if fp := WorkloadFingerprint(w); len(fp) != 64 {
		t.Fatalf("fingerprint %q, want 64 hex chars", fp)
	}
}

func TestFacadeMatrixHelpers(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("MatrixFromRows wrong")
	}
	z := NewMatrix(2, 3)
	if z.Rows() != 2 || z.Cols() != 3 {
		t.Fatal("NewMatrix wrong dims")
	}
}

func TestFacadeWorkloadGenerators(t *testing.T) {
	src := NewSource(3)
	for _, w := range []*Workload{
		DiscreteWorkload(5, 8, 0.02, src),
		RangeWorkload(5, 8, src),
		RelatedWorkload(5, 8, 2, src),
		IdentityWorkload(8),
		PrefixWorkload(8),
		MarginalWorkload(2, 4),
		TotalWorkload(8),
	} {
		if w.Domain() != 8 {
			t.Fatalf("%s domain = %d", w.Name, w.Domain())
		}
	}
}

func TestFacadeDatasets(t *testing.T) {
	src := NewSource(4)
	if d := SearchLogs(100, src); d.Len() != 100 {
		t.Fatal("SearchLogs size")
	}
	if d := NetTrace(100, src); d.Len() != 100 {
		t.Fatal("NetTrace size")
	}
	if d := SocialNetwork(100, src); d.Len() != 100 {
		t.Fatal("SocialNetwork size")
	}
	if _, err := DatasetByName("searchlogs", src); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDecomposeAndBounds(t *testing.T) {
	w := RelatedWorkload(10, 12, 2, NewSource(5))
	d, err := Decompose(w.W, DecomposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.ExpectedSSE(1) <= 0 {
		t.Fatal("non-positive SSE")
	}
	b := AnalyzeBounds(w.W, 1)
	if b.Rank != 2 {
		t.Fatalf("bounds rank = %d", b.Rank)
	}
}

func TestFacadeBudget(t *testing.T) {
	bud, err := NewBudget(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bud.Spend(0.5); err != nil {
		t.Fatal(err)
	}
	if bud.Remaining() != 0.5 {
		t.Fatalf("remaining = %v", float64(bud.Remaining()))
	}
}

func TestFacadeEvaluate(t *testing.T) {
	w := RangeWorkload(6, 16, NewSource(6))
	x := make([]float64, 16)
	meas, err := Evaluate(LaplaceData{}, w, x, 1, 10, NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	if meas.AvgSquaredError <= 0 {
		t.Fatal("no error measured")
	}
}

func TestFacadeAllMechanismsPrepare(t *testing.T) {
	w := RangeWorkload(6, 16, NewSource(8))
	x := NewSource(9).UniformVec(16, 0, 10)
	for _, mech := range []Mechanism{
		LRM{}, LaplaceData{}, LaplaceResults{}, Wavelet{}, Hierarchical{}, MatrixMechanism{MaxIter: 10},
	} {
		p, err := mech.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if _, err := p.Answer(x, 0.5, NewSource(10)); err != nil {
			t.Fatalf("%s answer: %v", mech.Name(), err)
		}
	}
}

func TestFacadeExtensionMechanismsEndToEnd(t *testing.T) {
	// Every extension mechanism answers a workload through the facade.
	src := NewSource(11)
	n := 64
	w := RangeWorkload(6, n, src)
	x := src.UniformVec(n, 0, 50)
	for _, mech := range []Mechanism{
		Fourier{K: 8},
		Compressive{Measurements: 16, Sparsity: 4, Seed: 2},
		Histogram{Buckets: 4},
		Histogram{Buckets: 4, StructureFirst: true},
		Consistent{Base: LaplaceResults{}},
	} {
		p, err := mech.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		got, err := p.Answer(x, 1, src)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if len(got) != 6 {
			t.Fatalf("%s: %d answers", mech.Name(), len(got))
		}
		for _, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite answer", mech.Name())
			}
		}
	}
}

func TestFacadeSpatialWorkloads(t *testing.T) {
	src := NewSource(12)
	w2d := Range2DWorkload(5, 4, 6, src)
	if w2d.Domain() != 24 || w2d.Queries() != 5 {
		t.Fatalf("Range2D dims %d×%d", w2d.Queries(), w2d.Domain())
	}
	kr := KronWorkload("k", PrefixWorkload(2), PrefixWorkload(3))
	if kr.Domain() != 6 || kr.Queries() != 6 {
		t.Fatalf("Kron dims %d×%d", kr.Queries(), kr.Domain())
	}
	perm := PermutationWorkload(7, src)
	if perm.Rank() != 7 {
		t.Fatalf("permutation rank %d", perm.Rank())
	}
}

func TestFacadeHistogramPrimitives(t *testing.T) {
	counts := []float64{5, 5, 9, 9}
	boundaries, sse, err := VOptimalHistogram(counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sse != 0 || boundaries[1] != 2 {
		t.Fatalf("v-optimal: %v sse=%g", boundaries, sse)
	}
	src := NewSource(13)
	if _, err := NoiseFirstHistogram(counts, 2, 1, src); err != nil {
		t.Fatal(err)
	}
	if _, err := StructureFirstHistogram(counts, StructureFirstOptions{Buckets: 2, MaxCount: 10}, 1, src); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCompressiveSynopsis(t *testing.T) {
	syn, err := NewCompressiveSynopsis(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(14)
	x := src.UniformVec(32, 0, 10)
	y, err := syn.Compress(x, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 8 {
		t.Fatalf("synopsis length %d", len(y))
	}
	xhat, err := syn.Reconstruct(y, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(xhat) != 32 {
		t.Fatalf("reconstruction length %d", len(xhat))
	}
}

func TestFacadePostProcessing(t *testing.T) {
	est, err := LeastSquaresEstimate(MatrixFromRows([][]float64{{2, 0}, {0, 4}}), []float64{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est[0]-3) > 1e-12 || math.Abs(est[1]-2) > 1e-12 {
		t.Fatalf("estimate %v", est)
	}
	if got := RoundCounts([]float64{1.6, -2}); got[0] != 2 || got[1] != 0 {
		t.Fatalf("RoundCounts %v", got)
	}
}

// TestFacadeImplicitSpec: the exported spec API end to end — parse,
// analyze, plan, and serve through the engine, all without building W.
func TestFacadeImplicitSpec(t *testing.T) {
	s, err := ParseWorkloadSpec("kron:prefix(64)xranges(8)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries() != 64*36 || s.Domain() != 64*8 {
		t.Fatalf("spec is %d×%d", s.Queries(), s.Domain())
	}
	st, err := AnalyzeSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rank <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	pl, err := PlanSpec(s, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Prepared() == nil {
		t.Fatal("plan retained no prepared mechanism")
	}
	e, err := NewEngine(EngineOptions{Planner: &PlanOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	x := NewSource(7).UniformVec(s.Domain(), 0, 20)
	out, err := e.Answer(EngineRequest{Spec: s, Histograms: [][]float64{x}, Eps: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != s.Queries() {
		t.Fatalf("answer length %d, want %d", len(out[0]), s.Queries())
	}
	if fp := SpecFingerprint(s); len(fp) != len("spec-")+64 {
		t.Fatalf("spec fingerprint %q", fp)
	}
	// The adapter direction: a dense workload lifted to a spec keeps its
	// dense fingerprint semantics.
	w := PrefixWorkload(16)
	if AsWorkloadSpec(w).Digest() != WorkloadFingerprint(w) {
		t.Fatal("dense adapter digest differs from the workload fingerprint")
	}
	// And the other direction bounds materialization.
	if _, err := MaterializeSpec(s, 100); err == nil {
		t.Fatal("MaterializeSpec ignored its cell cap")
	}
	if mw, err := MaterializeSpec(NewPrefixSpec(8), 1<<10); err != nil || mw.Queries() != 8 {
		t.Fatalf("MaterializeSpec: %v", err)
	}
}
