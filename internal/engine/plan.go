package engine

import (
	"fmt"
	"path/filepath"

	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/workload"
)

// Plan-aware serving (Options.Planner): instead of one process-wide
// mechanism, each workload is analyzed once and an executable plan —
// which mechanism, which tuned parameters, why — is computed, cached,
// and persisted through the same machinery as the preparations
// themselves.
//
// Cache keying. In memory a planned entry keys by the workload
// fingerprint: the planner options are fixed for the engine's lifetime
// and planning is deterministic, so the fingerprint determines the plan.
// On disk the key is richer — <fp>-<plannerTag>.plan.json for the
// decision and <fp>-<plannerTag>-<planDigest>.lrmd for an lrm winner's
// decomposition — so artifacts from a differently configured planner, or
// from a plan whose decision has changed, are orphaned rather than
// served (the plan document is additionally self-checking: its stored
// digest must match the digest recomputed from its fields).
//
// Restart economics. A restored plan document skips the analysis and the
// candidate scoring entirely; an lrm winner then restores its
// decomposition (validated against W like any disk hit) instead of
// re-running the ALM, and a baseline winner re-runs only its trivial
// Prepare. Restores count as DiskHits, fresh plans as Planned.

// loadPlanned produces the Prepared and Plan for one fingerprint on a
// plan-aware engine: restore from disk when possible, otherwise run the
// planner (whose scoring already prepares the winner — planning IS
// preparing) and persist the result.
func (e *Engine) loadPlanned(fp string, w *workload.Workload) (mechanism.Prepared, *plan.Plan, error) {
	if path := e.planPath(fp); path != "" {
		if p, pl, err := e.restorePlanned(path, fp, w); err == nil {
			e.diskHits.Add(1)
			return p, pl, nil
		}
		// A missing, corrupt, or mismatched plan document must never take
		// down serving: fall through to a fresh plan.
	}
	opts := *e.planner
	opts.Fingerprint = fp
	e.prepares.Add(1)
	if e.hook != nil {
		e.hook(fp)
	}
	pl, err := plan.New(w, opts)
	if err != nil {
		return nil, nil, err
	}
	e.planned.Add(1)
	p := pl.Prepared()
	if path := e.planPath(fp); path != "" {
		if err := e.writePlan(path, pl); err == nil {
			if d, ok := decompositionOf(p); ok {
				// Best-effort like every disk write: a failed .lrmd write
				// leaves a valid plan document whose restore path will
				// simply miss on the decomposition and re-plan.
				_ = e.writeDecomposition(e.plannedDiskPath(fp, pl.Digest()), d)
			}
			e.diskWrites.Add(1)
		}
	}
	return p, pl, nil
}

// restorePlanned rebuilds a served workload from its persisted plan: the
// decision comes from the (self-checking) document, the preparation from
// the decomposition file for an lrm winner or a fresh trivial Prepare
// for a baseline winner.
func (e *Engine) restorePlanned(path, fp string, w *workload.Workload) (mechanism.Prepared, *plan.Plan, error) {
	f, err := e.fs.Open(path)
	if err != nil {
		return nil, nil, err
	}
	pl, err := plan.Decode(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	if pl.Fingerprint != fp {
		return nil, nil, fmt.Errorf("engine: plan document is for workload %s, not %s", pl.Fingerprint, fp)
	}
	if pl.Mechanism == "lrm" {
		p, err := loadPrepared(e.fs, e.plannedDiskPath(fp, pl.Digest()), w, pl.LRMOptions.Gamma)
		if err != nil {
			return nil, nil, err
		}
		return p, pl, nil
	}
	m, err := mechanism.ByName(pl.Mechanism, e.planner.Config)
	if err != nil {
		return nil, nil, err
	}
	p, err := m.Prepare(w)
	if err != nil {
		return nil, nil, err
	}
	return p, pl, nil
}

// planPath returns the plan-document path for a fingerprint, or "" when
// disk caching is disabled.
func (e *Engine) planPath(fp string) string {
	if e.dir == "" {
		return ""
	}
	return filepath.Join(e.dir, fp+"-"+e.optTag+".plan.json")
}

// plannedDiskPath is the decomposition file for a planned lrm winner:
// keyed by workload fingerprint, planner-options digest, AND plan
// digest, so a replanned decision can never be served by the previous
// decision's factorization.
func (e *Engine) plannedDiskPath(fp, digest string) string {
	return filepath.Join(e.dir, fp+"-"+e.optTag+"-"+digest+".lrmd")
}

// writePlan persists a plan document atomically and durably (temp file
// + fsync + rename + directory fsync), mirroring writeDecomposition.
func (e *Engine) writePlan(path string, pl *plan.Plan) error {
	return e.writeEncoded(path, ".plan-*", pl)
}

// PlanDecision is one resident plan, as surfaced by Decisions and the
// HTTP server's GET /stats.
type PlanDecision struct {
	// Fingerprint identifies the planned workload.
	Fingerprint string `json:"fingerprint"`
	// Mechanism is the winning candidate's registry name.
	Mechanism string `json:"mechanism"`
	// Digest is the plan's content digest (see plan.Plan.Digest).
	Digest string `json:"digest"`
	// Summary is the one-line justification (winner, expected SSE,
	// margin over the runner-up, shard width).
	Summary string `json:"summary"`
}

// Decisions returns the plan decision of every planned workload still
// resident in the cache, most recently answered first. Empty on
// fixed-mechanism engines.
func (e *Engine) Decisions() []PlanDecision {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []PlanDecision
	for el := e.lru.Front(); el != nil; el = el.Next() {
		ce := el.Value.(*cacheEntry)
		if ce.pl == nil {
			continue
		}
		out = append(out, PlanDecision{
			Fingerprint: ce.fp,
			Mechanism:   ce.pl.Mechanism,
			Digest:      ce.pl.Digest(),
			Summary:     ce.pl.Summary(),
		})
	}
	return out
}
