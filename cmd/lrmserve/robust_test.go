package main

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lrm/internal/core"
	"lrm/internal/engine"
	"lrm/internal/mechanism"
	"lrm/internal/privacy"
)

func TestParseTenantEps(t *testing.T) {
	def, totals, err := parseTenantEps("10, acme=2.5 ,beta=0.5,")
	if err != nil {
		t.Fatal(err)
	}
	if def != 10 || totals["acme"] != 2.5 || totals["beta"] != 0.5 || len(totals) != 2 {
		t.Fatalf("parsed def=%v totals=%v", def, totals)
	}
	for _, bad := range []string{"acme=-1", "acme=x", "acme=", "1,2", "acme=1,acme=2", "=3"} {
		if _, _, err := parseTenantEps(bad); err == nil {
			t.Fatalf("parseTenantEps(%q) accepted", bad)
		}
	}
}

// tenantServer builds a server with durable-in-memory tenant accounting
// and a 3×3 test workload.
func tenantServer(t *testing.T, totals map[string]privacy.Epsilon, def privacy.Epsilon) (*httptest.Server, *privacy.Accountant) {
	t.Helper()
	acct, err := privacy.OpenAccountant(privacy.AccountantOptions{DefaultTotal: def, Totals: totals})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Options{
		Mechanism:  mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
		Accountant: acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, handlerConfig{mech: "LRM", maxBody: 1 << 20}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, acct
}

// TestServeTenantAccounting: the tenant field routes each request's
// composed ε to its own durable budget, GET /stats surfaces remaining ε
// per tenant, exhaustion is 429, and unknown tenants are 403 — with
// zero ε charged for any refused request.
func TestServeTenantAccounting(t *testing.T) {
	srv, acct := tenantServer(t, map[string]privacy.Epsilon{"acme": 1.0}, 0.5)
	req := answerRequest{
		Workload:   [][]float64{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
		Histograms: [][]float64{{10, 20, 30}, {5, 5, 5}},
		Eps:        0.2,
		Tenant:     "acme",
	}
	if resp, body := postAnswer(t, srv.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := float64(acct.Spent("acme")); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("acme spent %v, want 0.4 (0.2 × 2 histograms)", got)
	}
	// Empty tenant draws from "default" (capped at 0.5 here).
	anon := req
	anon.Tenant = ""
	anon.Histograms = req.Histograms[:1]
	if resp, body := postAnswer(t, srv.URL, anon); resp.StatusCode != http.StatusOK {
		t.Fatalf("default-tenant status %d: %s", resp.StatusCode, body)
	}
	if got := float64(acct.Spent("default")); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("default spent %v, want 0.2", got)
	}
	// Overdraw: acme has 0.6 left; 4 histograms at 0.2 compose to 0.8.
	over := req
	over.Histograms = [][]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}}
	resp, body := postAnswer(t, srv.URL, over)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overdraw status %d (%s), want 429", resp.StatusCode, body)
	}
	if got := float64(acct.Spent("acme")); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("refused overdraw charged acme: spent %v, want unchanged 0.4", got)
	}
	// /stats surfaces per-tenant remaining ε.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	derr := json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	remaining := map[string]float64{}
	for _, ts := range st.Tenants {
		remaining[ts.Tenant] = ts.Remaining
	}
	if math.Abs(remaining["acme"]-0.6) > 1e-9 || math.Abs(remaining["default"]-0.3) > 1e-9 {
		t.Fatalf("stats tenants %+v, want acme 0.6 and default 0.3 remaining", st.Tenants)
	}
}

// TestServeUnknownTenant: a tenant with no configured cap is refused
// with 403 before any ε moves.
func TestServeUnknownTenant(t *testing.T) {
	srv, acct := tenantServer(t, map[string]privacy.Epsilon{"acme": 1.0}, 0)
	req := answerRequest{
		Workload:   [][]float64{{1, 0}, {1, 1}},
		Histograms: [][]float64{{3, 4}},
		Eps:        0.2,
		Tenant:     "stranger",
	}
	resp, body := postAnswer(t, srv.URL, req)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown tenant status %d (%s), want 403", resp.StatusCode, body)
	}
	if ts := acct.Tenants(); len(ts) != 0 {
		t.Fatalf("refused tenant left accounting state: %+v", ts)
	}
}

// overloadServer builds a server whose engine blocks inside Prepare
// while `blocking` is set (gate released by closing the channel), with
// admission bounded to maxInflight slots and queue waiters.
func overloadServer(t *testing.T, maxInflight, queue int, acct *privacy.Accountant) (*httptest.Server, *admission, chan string, chan struct{}, *atomic.Bool) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan string, 16)
	var blocking atomic.Bool
	eng, err := engine.New(engine.Options{
		Mechanism:  mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
		Accountant: acct,
		PrepareHook: func(fp string) {
			if blocking.Load() {
				entered <- fp
				<-gate
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	adm := newAdmission(maxInflight, queue, 2*time.Second)
	srv := httptest.NewServer(newHandler(eng, handlerConfig{mech: "LRM", maxBody: 1 << 20, adm: adm}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, adm, entered, gate, &blocking
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// wlRows builds a small distinct workload per seed so cold and warm
// fingerprints are controlled by the test.
func wlRows(seed float64) [][]float64 {
	return [][]float64{{1, 0, seed}, {1, 1, 0}, {0, 1, 1}}
}

// TestServeOverload is the overload smoke the issue demands: with slots
// full, a burst gets bounded-queue behavior — warm requests queue up to
// the limit, the excess and every cold request get immediate 429 with a
// Retry-After hint, in-flight requests complete once the stall clears,
// and rejected requests cost their tenant zero ε.
func TestServeOverload(t *testing.T) {
	acct, err := privacy.OpenAccountant(privacy.AccountantOptions{DefaultTotal: 100})
	if err != nil {
		t.Fatal(err)
	}
	srv, adm, entered, gate, blocking := overloadServer(t, 2, 2, acct)
	const eps = 0.25
	post := func(seed float64) (*http.Response, []byte) {
		return postAnswer(t, srv.URL, answerRequest{
			Workload:   wlRows(seed),
			Histograms: [][]float64{{1, 2, 3}},
			Eps:        eps,
			Tenant:     "burst",
		})
	}

	// Warm workload 0 while the server is idle.
	if resp, body := post(0); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", resp.StatusCode, body)
	}

	// Stall the engine: two cold requests take both slots and block
	// inside their Prepare.
	blocking.Store(true)
	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 2)
	for _, seed := range []float64{1, 2} {
		go func(seed float64) {
			resp, body := post(seed)
			inflight <- result{resp.StatusCode, body}
		}(seed)
	}
	waitFor(t, "both slots blocked in Prepare", func() bool { return len(entered) == 2 })

	// Cold request under full load: shed immediately, told when to retry.
	resp, body := post(3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold shed status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("cold shed Retry-After %q, want \"2\"", resp.Header.Get("Retry-After"))
	}

	// Warm requests queue — up to the bound.
	queued := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, body := post(0)
			queued <- result{resp.StatusCode, body}
		}()
	}
	waitFor(t, "two warm waiters in the queue", func() bool { return adm.waiting.Load() == 2 })

	// The queue is full: the next warm request is rejected immediately.
	resp, body = post(0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-overflow status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-overflow 429 carries no Retry-After")
	}

	// Clear the stall: the in-flight pair and both queued waiters all
	// complete.
	blocking.Store(false)
	close(gate)
	for i := 0; i < 2; i++ {
		if r := <-inflight; r.status != http.StatusOK {
			t.Fatalf("in-flight request finished %d: %s", r.status, r.body)
		}
		if r := <-queued; r.status != http.StatusOK {
			t.Fatalf("queued request finished %d: %s", r.status, r.body)
		}
	}

	// ε accounting: exactly the five 200s (warm-up, two in-flight, two
	// queued) were charged; the three 429s cost nothing.
	if got, want := float64(acct.Spent("burst")), 5*eps; math.Abs(got-want) > 1e-9 {
		t.Fatalf("tenant spent %v, want %v (five successes, zero for rejections)", got, want)
	}
	st := adm.stats()
	if st.Rejected != 1 || st.Shed != 1 {
		t.Fatalf("admission stats %+v, want 1 rejected + 1 shed", st)
	}
}

// TestServeDeadline: a request that cannot finish inside -deadline is
// abandoned at the commit point — 503 to the caller, zero ε charged.
func TestServeDeadline(t *testing.T) {
	acct, err := privacy.OpenAccountant(privacy.AccountantOptions{DefaultTotal: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Options{
		Mechanism:   mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
		Accountant:  acct,
		PrepareHook: func(string) { time.Sleep(100 * time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, handlerConfig{mech: "LRM", maxBody: 1 << 20, deadline: 20 * time.Millisecond}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	resp, body := postAnswer(t, srv.URL, answerRequest{
		Workload:   wlRows(9),
		Histograms: [][]float64{{1, 2, 3}},
		Eps:        0.5,
		Tenant:     "slow",
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline status %d (%s), want 503", resp.StatusCode, body)
	}
	if got := float64(acct.Spent("slow")); got != 0 {
		t.Fatalf("timed-out request spent %v ε, want 0", got)
	}
}

// TestCoalesceCancelledWaiterPruned: a waiter whose context ends during
// the window is pruned at flush — its rows never join the batch and its
// tenant pays nothing for them; the surviving waiter is answered and
// charged normally.
func TestCoalesceCancelledWaiterPruned(t *testing.T) {
	acct, err := privacy.OpenAccountant(privacy.AccountantOptions{DefaultTotal: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Options{
		Mechanism:  mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
		Accountant: acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	co := newCoalescer(eng, 60*time.Millisecond, 64)

	wl, err := workloadFromJSON(wlRows(0))
	if err != nil {
		t.Fatal(err)
	}
	fp := core.Fingerprint(wl.W)
	const eps = 0.25

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // this caller is gone before the window even opens
	var wg sync.WaitGroup
	wg.Add(2)
	var cancelledErr, liveErr error
	var liveRows [][]float64
	go func() {
		defer wg.Done()
		_, cancelledErr = co.submit(ctx, wl, fp, [][]float64{{1, 2, 3}, {4, 5, 6}}, eps, "acme")
	}()
	go func() {
		defer wg.Done()
		liveRows, liveErr = co.submit(context.Background(), wl, fp, [][]float64{{7, 8, 9}}, eps, "acme")
	}()
	wg.Wait()
	if !errors.Is(cancelledErr, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", cancelledErr)
	}
	if liveErr != nil || len(liveRows) != 1 || len(liveRows[0]) != 3 {
		t.Fatalf("live waiter: rows %v, err %v", liveRows, liveErr)
	}
	// Only the live waiter's single histogram was charged — not the
	// cancelled waiter's two.
	if got := float64(acct.Spent("acme")); math.Abs(got-eps) > 1e-9 {
		t.Fatalf("tenant spent %v, want %v (pruned rows must not be charged)", got, eps)
	}
}

// TestCoalesceTenantsSeparate: requests from different tenants never
// share a batch — each merged batch charges exactly one budget.
func TestCoalesceTenantsSeparate(t *testing.T) {
	acct, err := privacy.OpenAccountant(privacy.AccountantOptions{DefaultTotal: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Options{
		Mechanism:  mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
		Accountant: acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	co := newCoalescer(eng, 40*time.Millisecond, 64)
	wl, err := workloadFromJSON(wlRows(0))
	if err != nil {
		t.Fatal(err)
	}
	fp := core.Fingerprint(wl.W)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, tenant := range []string{"a", "b"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			_, errs[i] = co.submit(context.Background(), wl, fp, [][]float64{{1, 2, 3}}, 0.5, tenant)
		}(i, tenant)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	if a, b := float64(acct.Spent("a")), float64(acct.Spent("b")); math.Abs(a-0.5) > 1e-9 || math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("spent a=%v b=%v, want 0.5 each", a, b)
	}
}
