package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"lrm/internal/mat"
)

// Spec is an implicit workload: the m×n query matrix W described by its
// structure instead of its entries, so m and n can reach the millions
// that a dense Workload (m·n float64s) cannot. Everything the planner,
// the mechanisms, and the engine need — exact answers, Gram-vector
// products, sensitivity, the squared sum, a stable cache key — is
// computable from the structure in O(m+n) space.
//
// A Spec is immutable after construction and safe for concurrent use.
// Dense workloads participate through the AsSpec adapter, so one serving
// path covers both representations.
type Spec interface {
	// Queries returns m, the number of linear queries.
	Queries() int
	// Domain returns n, the number of unit counts.
	Domain() int
	// AnswerTo computes the exact batch answer W·x into dst and returns
	// it. len(x) must be Domain() and len(dst) must be Queries().
	AnswerTo(dst, x []float64) []float64
	// GramMulTo computes the Gram-vector product (WᵀW)·x into dst and
	// returns it; both slices have Domain() entries. It is the implicit
	// handle iterative analyses (Lanczos, CGLS-style solvers) need, and
	// never materializes WᵀW.
	GramMulTo(dst, x []float64) []float64
	// Sensitivity returns the L1 sensitivity Δ' = max_j Σᵢ|Wᵢⱼ|.
	Sensitivity() float64
	// SquaredSum returns ΣWᵢⱼ² (the noise-on-data baseline's error
	// driver).
	SquaredSum() float64
	// Digest is a stable, filename-safe content hash: two Specs digest
	// equal iff they describe bit-identical workload matrices. Engines
	// key caches on it — a few hex bytes instead of hashing a matrix
	// that never exists.
	Digest() string
	// Describe renders the compact canonical description (the grammar
	// ParseSpec accepts, for every kind but dense). It doubles as the
	// spec's display name.
	Describe() string
}

// specDigest hashes a canonical description into the filename-safe hex
// form every structural Spec uses. The "lrm-spec" prefix keeps the hash
// domain disjoint from matrix fingerprints.
func specDigest(parts ...string) string {
	h := sha256.New()
	h.Write([]byte("lrm-spec\x00"))
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SpecFingerprint is the engine cache key for a spec-served workload:
// the spec digest under a "spec-" namespace, so implicit entries can
// never collide with (or be served by) dense-fingerprint artifacts.
func SpecFingerprint(s Spec) string { return "spec-" + s.Digest() }

// maxSpecDim bounds any single dimension a Spec may declare; products
// are additionally checked for int overflow at construction.
const maxSpecDim = 1 << 40

func checkSpecDims(m, n int) {
	if m < 1 || n < 1 || m > maxSpecDim || n > maxSpecDim {
		panic(fmt.Sprintf("workload: spec needs 1 <= m,n <= 2^40, got m=%d n=%d", m, n))
	}
}

// checkAnswerShapes validates an AnswerTo call's slice lengths.
func checkAnswerShapes(kind string, dst, x []float64, m, n int) {
	if len(x) != n {
		panic(fmt.Sprintf("workload: %s AnswerTo data length %d != domain %d", kind, len(x), n))
	}
	if len(dst) != m {
		panic(fmt.Sprintf("workload: %s AnswerTo dst length %d != queries %d", kind, len(dst), m))
	}
}

// checkGramShapes validates a GramMulTo call's slice lengths.
func checkGramShapes(kind string, dst, x []float64, n int) {
	if len(x) != n || len(dst) != n {
		panic(fmt.Sprintf("workload: %s GramMulTo lengths %d,%d != domain %d", kind, len(dst), len(x), n))
	}
}

// ---------------------------------------------------------------------
// Dense adapter

// DenseSpec adapts a dense Workload to the Spec interface, so every
// existing call site (and every workload with no exploitable structure)
// rides the same serving path. Its Digest equals the engine's dense
// matrix fingerprint (core.Fingerprint): same bits, same key.
type DenseSpec struct {
	w      *Workload
	sens   float64
	sq     float64
	digest string
	// scratch pools the m-length intermediate of GramMulTo.
	scratch sync.Pool
}

// AsSpec wraps a dense workload as a Spec. The workload must not be
// mutated afterwards (sensitivity, squared sum, and digest are cached).
func AsSpec(w *Workload) *DenseSpec {
	if w == nil || w.W == nil {
		panic("workload: AsSpec of nil workload")
	}
	d := &DenseSpec{
		w:      w,
		sens:   w.Sensitivity(),
		sq:     w.SquaredSum(),
		digest: matrixFingerprint(w.W),
	}
	m := w.Queries()
	d.scratch.New = func() any {
		buf := make([]float64, m)
		return &buf
	}
	return d
}

// matrixFingerprint is core.Fingerprint's exact hash — SHA-256 over the
// dimensions and the IEEE-754 bits of every entry — re-implemented here
// because workload sits below core in the import order. The equality is
// pinned by a test; keep the two in sync.
func matrixFingerprint(w *mat.Dense) string {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(w.Rows()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(w.Cols()))
	h.Write(hdr[:])
	var chunk [1024]byte
	data := w.RawData()
	for len(data) > 0 {
		n := len(chunk) / 8
		if n > len(data) {
			n = len(data)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], math.Float64bits(data[i]))
		}
		h.Write(chunk[:n*8])
		data = data[n:]
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Dense returns the wrapped workload.
func (d *DenseSpec) Dense() *Workload { return d.w }

// Queries implements Spec.
func (d *DenseSpec) Queries() int { return d.w.Queries() }

// Domain implements Spec.
func (d *DenseSpec) Domain() int { return d.w.Domain() }

// AnswerTo implements Spec.
func (d *DenseSpec) AnswerTo(dst, x []float64) []float64 {
	checkAnswerShapes("dense", dst, x, d.w.Queries(), d.w.Domain())
	return mat.MulVecTo(dst, d.w.W, x)
}

// GramMulTo implements Spec: Wᵀ(W·x) through the pooled m-vector.
func (d *DenseSpec) GramMulTo(dst, x []float64) []float64 {
	checkGramShapes("dense", dst, x, d.w.Domain())
	bufp := d.scratch.Get().(*[]float64)
	mat.MulVecTo(*bufp, d.w.W, x)
	mat.MulVecTTo(dst, d.w.W, *bufp)
	d.scratch.Put(bufp)
	return dst
}

// Sensitivity implements Spec.
func (d *DenseSpec) Sensitivity() float64 { return d.sens }

// SquaredSum implements Spec.
func (d *DenseSpec) SquaredSum() float64 { return d.sq }

// Digest implements Spec; equals core.Fingerprint of the wrapped matrix.
func (d *DenseSpec) Digest() string { return d.digest }

// Describe implements Spec. Dense matrices have no compact grammar, so
// the description names the shape and a digest prefix; ParseSpec rejects
// the "dense" kind with a pointer to the CSV path.
func (d *DenseSpec) Describe() string {
	return fmt.Sprintf("dense:%dx%d:%s", d.w.Queries(), d.w.Domain(), d.digest[:12])
}

// ---------------------------------------------------------------------
// Prefix workload

// PrefixSpec is the n prefix-sum queries q_i = x_0 + … + x_i in implicit
// form: answers are one running sum, the Gram matrix has the closed form
// G_jk = n − max(j,k) (two-pass O(n) products), and the full spectrum is
// known analytically — no factorization ever runs.
type PrefixSpec struct {
	n int
}

// NewPrefixSpec returns the implicit prefix workload over n counts.
func NewPrefixSpec(n int) *PrefixSpec {
	checkSpecDims(n, n)
	return &PrefixSpec{n: n}
}

// Queries implements Spec.
func (p *PrefixSpec) Queries() int { return p.n }

// Domain implements Spec.
func (p *PrefixSpec) Domain() int { return p.n }

// AnswerTo implements Spec: one running sum.
func (p *PrefixSpec) AnswerTo(dst, x []float64) []float64 {
	checkAnswerShapes("prefix", dst, x, p.n, p.n)
	sum := 0.0
	for i, v := range x {
		sum += v
		dst[i] = sum
	}
	return dst
}

// GramMulTo implements Spec. With G_jk = n − max(j,k),
//
//	(G·x)_j = (n−j)·Σ_{k≤j} x_k + Σ_{k>j} (n−k)·x_k,
//
// computed in two passes: a forward prefix sum and a backward weighted
// suffix sum.
func (p *PrefixSpec) GramMulTo(dst, x []float64) []float64 {
	checkGramShapes("prefix", dst, x, p.n)
	n := p.n
	// Backward pass: dst[j] temporarily holds T_j = Σ_{k>j} (n−k)·x_k.
	t := 0.0
	for j := n - 1; j >= 0; j-- {
		dst[j] = t
		t += float64(n-j) * x[j]
	}
	// Forward pass folds in (n−j)·P_j.
	prefix := 0.0
	for j := 0; j < n; j++ {
		prefix += x[j]
		dst[j] += float64(n-j) * prefix
	}
	return dst
}

// Sensitivity implements Spec: column 0 appears in every query, Δ' = n.
func (p *PrefixSpec) Sensitivity() float64 { return float64(p.n) }

// SquaredSum implements Spec: Σᵢ(i+1) = n(n+1)/2.
func (p *PrefixSpec) SquaredSum() float64 {
	n := float64(p.n)
	return n * (n + 1) / 2
}

// Digest implements Spec.
func (p *PrefixSpec) Digest() string { return specDigest(p.Describe()) }

// Describe implements Spec.
func (p *PrefixSpec) Describe() string { return fmt.Sprintf("prefix(%d)", p.n) }

// singularValues returns the closed-form spectrum of the prefix matrix,
// σ_k = 1 / (2·sin((2k−1)π / (2(2n+1)))) for k = 1…n, descending.
func (p *PrefixSpec) singularValues() []float64 {
	s := make([]float64, p.n)
	for k := 1; k <= p.n; k++ {
		s[k-1] = 1 / (2 * math.Sin(float64(2*k-1)*math.Pi/float64(2*(2*p.n+1))))
	}
	return s
}

// ---------------------------------------------------------------------
// All contiguous ranges

// AllRangesSpec is every contiguous range query over the domain —
// m = n(n+1)/2 queries — in implicit form. The Gram matrix is the
// scaled Green's function of the discrete Laplacian,
// G_jk = (min(j,k)+1)·(n − max(j,k)), so Gram products are O(n) and the
// spectrum is closed-form.
type AllRangesSpec struct {
	n int
	m int
}

// NewAllRangesSpec returns the implicit all-ranges workload over n
// counts. Answering requires materializing the m = n(n+1)/2 results, so
// n is bounded by how many answers the caller can hold, not by any m×n
// matrix.
func NewAllRangesSpec(n int) *AllRangesSpec {
	checkSpecDims(n, n)
	if n > 1<<26 {
		panic(fmt.Sprintf("workload: ranges(%d) would have %d·(%d+1)/2 queries; answers could not be materialized", n, n, n))
	}
	return &AllRangesSpec{n: n, m: n * (n + 1) / 2}
}

// Queries implements Spec.
func (r *AllRangesSpec) Queries() int { return r.m }

// Domain implements Spec.
func (r *AllRangesSpec) Domain() int { return r.n }

// AnswerTo implements Spec: prefix sums once, then each range answer is
// one subtraction, in the same (a ascending, b ascending) query order as
// the dense AllRanges generator.
func (r *AllRangesSpec) AnswerTo(dst, x []float64) []float64 {
	checkAnswerShapes("ranges", dst, x, r.m, r.n)
	i := 0
	for a := 0; a < r.n; a++ {
		sum := 0.0
		for b := a; b < r.n; b++ {
			sum += x[b]
			dst[i] = sum
			i++
		}
	}
	return dst
}

// GramMulTo implements Spec. With G_jk = (min(j,k)+1)(n − max(j,k)),
//
//	(G·x)_j = (j+1)·Σ_{k≥j} (n−k)·x_k + (n−j)·Σ_{k<j} (k+1)·x_k,
//
// two weighted scans.
func (r *AllRangesSpec) GramMulTo(dst, x []float64) []float64 {
	checkGramShapes("ranges", dst, x, r.n)
	n := r.n
	// Backward: dst[j] holds S1_j = Σ_{k≥j} (n−k)·x_k.
	s1 := 0.0
	for j := n - 1; j >= 0; j-- {
		s1 += float64(n-j) * x[j]
		dst[j] = float64(j+1) * s1
	}
	// Forward folds in (n−j)·S2_j with S2_j = Σ_{k<j} (k+1)·x_k.
	s2 := 0.0
	for j := 0; j < n; j++ {
		dst[j] += float64(n-j) * s2
		s2 += float64(j+1) * x[j]
	}
	return dst
}

// Sensitivity implements Spec: column j lies in (j+1)(n−j) ranges; the
// maximum is at the middle.
func (r *AllRangesSpec) Sensitivity() float64 {
	best := 0.0
	// (j+1)(n−j) is concave in j; evaluate the two integer points around
	// the vertex instead of scanning.
	n := r.n
	for _, j := range []int{(n - 1) / 2, n / 2} {
		if v := float64(j+1) * float64(n-j); v > best {
			best = v
		}
	}
	return best
}

// SquaredSum implements Spec: Σ over ranges of their length,
// n(n+1)(n+2)/6.
func (r *AllRangesSpec) SquaredSum() float64 {
	n := float64(r.n)
	return n * (n + 1) * (n + 2) / 6
}

// Digest implements Spec.
func (r *AllRangesSpec) Digest() string { return specDigest(r.Describe()) }

// Describe implements Spec.
func (r *AllRangesSpec) Describe() string { return fmt.Sprintf("ranges(%d)", r.n) }

// singularValues returns the closed-form spectrum: G = (n+1)·T⁻¹ with T
// the [−1,2,−1] second-difference matrix, whose eigenvalues are
// 4·sin²(kπ/(2(n+1))), so σ_k = √(n+1) / (2·sin(kπ/(2(n+1)))),
// descending for k = 1…n.
func (r *AllRangesSpec) singularValues() []float64 {
	s := make([]float64, r.n)
	for k := 1; k <= r.n; k++ {
		s[k-1] = math.Sqrt(float64(r.n+1)) / (2 * math.Sin(float64(k)*math.Pi/float64(2*(r.n+1))))
	}
	return s
}

// ---------------------------------------------------------------------
// Identity and total

// IdentitySpec is the n-query identity workload in implicit form.
type IdentitySpec struct {
	n int
}

// NewIdentitySpec returns the implicit identity workload over n counts.
func NewIdentitySpec(n int) *IdentitySpec {
	checkSpecDims(n, n)
	return &IdentitySpec{n: n}
}

// Queries implements Spec.
func (s *IdentitySpec) Queries() int { return s.n }

// Domain implements Spec.
func (s *IdentitySpec) Domain() int { return s.n }

// AnswerTo implements Spec.
func (s *IdentitySpec) AnswerTo(dst, x []float64) []float64 {
	checkAnswerShapes("identity", dst, x, s.n, s.n)
	copy(dst, x)
	return dst
}

// GramMulTo implements Spec: WᵀW = I.
func (s *IdentitySpec) GramMulTo(dst, x []float64) []float64 {
	checkGramShapes("identity", dst, x, s.n)
	copy(dst, x)
	return dst
}

// Sensitivity implements Spec.
func (s *IdentitySpec) Sensitivity() float64 { return 1 }

// SquaredSum implements Spec.
func (s *IdentitySpec) SquaredSum() float64 { return float64(s.n) }

// Digest implements Spec.
func (s *IdentitySpec) Digest() string { return specDigest(s.Describe()) }

// Describe implements Spec.
func (s *IdentitySpec) Describe() string { return fmt.Sprintf("identity(%d)", s.n) }

// TotalSpec is the single query summing the whole domain.
type TotalSpec struct {
	n int
}

// NewTotalSpec returns the implicit total-count workload over n counts.
func NewTotalSpec(n int) *TotalSpec {
	checkSpecDims(1, n)
	return &TotalSpec{n: n}
}

// Queries implements Spec.
func (s *TotalSpec) Queries() int { return 1 }

// Domain implements Spec.
func (s *TotalSpec) Domain() int { return s.n }

// AnswerTo implements Spec.
func (s *TotalSpec) AnswerTo(dst, x []float64) []float64 {
	checkAnswerShapes("total", dst, x, 1, s.n)
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	dst[0] = sum
	return dst
}

// GramMulTo implements Spec: WᵀW is the all-ones matrix.
func (s *TotalSpec) GramMulTo(dst, x []float64) []float64 {
	checkGramShapes("total", dst, x, s.n)
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	for i := range dst {
		dst[i] = sum
	}
	return dst
}

// Sensitivity implements Spec.
func (s *TotalSpec) Sensitivity() float64 { return 1 }

// SquaredSum implements Spec.
func (s *TotalSpec) SquaredSum() float64 { return float64(s.n) }

// Digest implements Spec.
func (s *TotalSpec) Digest() string { return specDigest(s.Describe()) }

// Describe implements Spec.
func (s *TotalSpec) Describe() string { return fmt.Sprintf("total(%d)", s.n) }

// ---------------------------------------------------------------------
// Kronecker products

// KronSpec is the Kronecker product W = F₀ ⊗ F₁ ⊗ … ⊗ F_{d−1} of
// (small) factor workloads, the structure real multidimensional
// workloads have: a range workload per attribute, combined over the
// flattened cross-product domain. The product matrix — m = Πmᵢ by
// n = Πnᵢ, easily 10¹²+ cells — is never formed: answers and Gram
// products run as d passes of per-factor row operations on O(m+n)
// buffers (the tensor mode-product algorithm), and sensitivity, squared
// sum, and the spectrum all multiply across factors.
type KronSpec struct {
	factors []Spec
	m, n    int
	// maxStage is the largest intermediate vector the mode products
	// touch; two pooled buffers of this size serve every call.
	maxStage int
	scratch  sync.Pool
}

// NewKronSpec returns the Kronecker product of the given factor specs
// (at least one; nested KronSpecs are flattened — ⊗ is associative).
// Index order matches mat.Kron and the flattening of the cross-product
// domain: the first factor varies slowest.
func NewKronSpec(factors ...Spec) *KronSpec {
	flat := make([]Spec, 0, len(factors))
	for _, f := range factors {
		if f == nil {
			panic("workload: NewKronSpec with nil factor")
		}
		if k, ok := f.(*KronSpec); ok {
			flat = append(flat, k.factors...)
			continue
		}
		flat = append(flat, f)
	}
	if len(flat) == 0 {
		panic("workload: NewKronSpec of nothing")
	}
	k := &KronSpec{factors: flat, m: 1, n: 1}
	for _, f := range flat {
		k.m = mulDim("kron queries", k.m, f.Queries())
		k.n = mulDim("kron domain", k.n, f.Domain())
	}
	// Stage sizes while applying factors trailing-first: after step i the
	// leading modes still hold input sizes and the processed trailing
	// modes hold output sizes.
	k.maxStage = k.n
	stage := k.n
	for i := len(flat) - 1; i >= 0; i-- {
		stage = stage / flat[i].Domain() * flat[i].Queries()
		if stage > k.maxStage {
			k.maxStage = stage
		}
	}
	size := k.maxStage
	k.scratch.New = func() any {
		buf := make([]float64, 2*size)
		return &buf
	}
	return k
}

// mulDim multiplies dimensions with an overflow guard.
func mulDim(what string, a, b int) int {
	if b != 0 && a > maxSpecDim/b {
		panic(fmt.Sprintf("workload: %s overflows: %d × %d", what, a, b))
	}
	return a * b
}

// Factors returns the factor specs (do not mutate).
func (k *KronSpec) Factors() []Spec { return k.factors }

// Queries implements Spec.
func (k *KronSpec) Queries() int { return k.m }

// Domain implements Spec.
func (k *KronSpec) Domain() int { return k.n }

// AnswerTo implements Spec via mode products: viewing x as a d-way
// tensor, each factor is applied along its mode as contiguous per-row
// AnswerTo calls followed by a buffer transpose that rotates the next
// mode into trailing position. d passes, O(maxStage) memory, and the
// full product matrix never exists.
func (k *KronSpec) AnswerTo(dst, x []float64) []float64 {
	checkAnswerShapes("kron", dst, x, k.m, k.n)
	k.apply(dst, x, false)
	return dst
}

// GramMulTo implements Spec: (⊗Fᵢ)ᵀ(⊗Fᵢ) = ⊗(FᵢᵀFᵢ), so the same mode
// algorithm runs with each factor's GramMulTo (square, no shape change).
func (k *KronSpec) GramMulTo(dst, x []float64) []float64 {
	checkGramShapes("kron", dst, x, k.n)
	k.apply(dst, x, true)
	return dst
}

// apply runs the shared mode-product loop. For each factor, trailing
// mode first: the current tensor (P rows × width columns, row-major) is
// mapped row-by-row through the factor, then transposed so the next
// mode becomes trailing. After d apply+rotate steps the layout is the
// output tensor in row-major order.
func (k *KronSpec) apply(dst, x []float64, gram bool) {
	bufp := k.scratch.Get().(*[]float64)
	a := (*bufp)[:k.maxStage]
	b := (*bufp)[k.maxStage:]
	cur := x
	size := k.n
	for i := len(k.factors) - 1; i >= 0; i-- {
		f := k.factors[i]
		in, out := f.Domain(), f.Queries()
		if gram {
			out = in
		}
		rows := size / in
		for p := 0; p < rows; p++ {
			if gram {
				f.GramMulTo(b[p*out:(p+1)*out], cur[p*in:(p+1)*in])
			} else {
				f.AnswerTo(b[p*out:(p+1)*out], cur[p*in:(p+1)*in])
			}
		}
		size = rows * out
		// Rotate: (rows × out) → (out × rows), writing into a (never
		// aliased with b).
		transposeInto(a, b, rows, out)
		cur = a
	}
	copy(dst, cur[:size])
	k.scratch.Put(bufp)
}

// transposeInto writes the r×c row-major matrix src into dst as its c×r
// transpose. Cache-blocked the simple way; stage sizes here are far
// smaller than the dense products this package replaces.
func transposeInto(dst, src []float64, r, c int) {
	const blk = 64
	for i0 := 0; i0 < r; i0 += blk {
		i1 := i0 + blk
		if i1 > r {
			i1 = r
		}
		for j0 := 0; j0 < c; j0 += blk {
			j1 := j0 + blk
			if j1 > c {
				j1 = c
			}
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					dst[j*r+i] = src[i*c+j]
				}
			}
		}
	}
}

// Sensitivity implements Spec: a Kronecker column's absolute sum is the
// product of its factor columns' sums, so Δ'(⊗Fᵢ) = ΠΔ'(Fᵢ).
func (k *KronSpec) Sensitivity() float64 {
	p := 1.0
	for _, f := range k.factors {
		p *= f.Sensitivity()
	}
	return p
}

// SquaredSum implements Spec: Σ(⊗Fᵢ)² = ΠΣFᵢ².
func (k *KronSpec) SquaredSum() float64 {
	p := 1.0
	for _, f := range k.factors {
		p *= f.SquaredSum()
	}
	return p
}

// Digest implements Spec: a hash over the factor digests in order, so
// any factor change (including a dense factor's data) changes the key.
func (k *KronSpec) Digest() string {
	parts := make([]string, 0, len(k.factors)+1)
	parts = append(parts, "kron")
	for _, f := range k.factors {
		parts = append(parts, f.Digest())
	}
	return specDigest(parts...)
}

// Describe implements Spec.
func (k *KronSpec) Describe() string {
	parts := make([]string, len(k.factors))
	for i, f := range k.factors {
		parts[i] = f.Describe()
	}
	return "kron:" + strings.Join(parts, "x")
}

// ---------------------------------------------------------------------
// k-way marginals

// MarginalSpec is the k-way marginal workload over a d-attribute domain
// with per-attribute cardinalities dims: for every size-k attribute
// subset S, one query per cell of the S-projection (the Kronecker block
// ⊗ᵢ (Identity if i∈S else Total)). This is the workload OLAP data
// cubes actually ask, with C(d,k) structured blocks instead of a dense
// matrix over the full cross-product domain.
type MarginalSpec struct {
	dims    []int
	k       int
	n       int
	m       int
	blocks  []*KronSpec
	subsets [][]int
	scratch sync.Pool
}

// maxMarginalBlocks bounds C(d,k); past it answering (one block of
// output per subset) stops being meaningful.
const maxMarginalBlocks = 1 << 16

// NewMarginalSpec returns the k-way marginal workload over the given
// attribute cardinalities.
func NewMarginalSpec(dims []int, k int) *MarginalSpec {
	if len(dims) == 0 {
		panic("workload: NewMarginalSpec with no dimensions")
	}
	if k < 1 || k > len(dims) {
		panic(fmt.Sprintf("workload: marginal k=%d out of range 1..%d", k, len(dims)))
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("workload: marginal dimension %d < 1", d))
		}
		n = mulDim("marginal domain", n, d)
	}
	ms := &MarginalSpec{dims: append([]int(nil), dims...), k: k, n: n}
	ms.subsets = subsetsOf(len(dims), k)
	if len(ms.subsets) > maxMarginalBlocks {
		panic(fmt.Sprintf("workload: marginals over %d attributes choose %d has %d blocks (max %d)",
			len(dims), k, len(ms.subsets), maxMarginalBlocks))
	}
	for _, sub := range ms.subsets {
		factors := make([]Spec, len(dims))
		inS := make(map[int]bool, k)
		for _, i := range sub {
			inS[i] = true
		}
		for i, d := range dims {
			if inS[i] {
				factors[i] = NewIdentitySpec(d)
			} else {
				factors[i] = NewTotalSpec(d)
			}
		}
		blk := NewKronSpec(factors...)
		ms.m += blk.Queries()
		ms.blocks = append(ms.blocks, blk)
	}
	size := n
	ms.scratch.New = func() any {
		buf := make([]float64, size)
		return &buf
	}
	return ms
}

// subsetsOf enumerates the size-k subsets of {0..d−1} in lexicographic
// order (deterministic: slices, never map iteration).
func subsetsOf(d, k int) [][]int {
	var out [][]int
	sub := make([]int, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			out = append(out, append([]int(nil), sub...))
			return
		}
		for i := start; i <= d-(k-idx); i++ {
			sub[idx] = i
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
	return out
}

// Dims returns the attribute cardinalities (do not mutate).
func (ms *MarginalSpec) Dims() []int { return ms.dims }

// K returns the marginal order.
func (ms *MarginalSpec) K() int { return ms.k }

// Queries implements Spec: Σ over subsets of the projection sizes.
func (ms *MarginalSpec) Queries() int { return ms.m }

// Domain implements Spec.
func (ms *MarginalSpec) Domain() int { return ms.n }

// AnswerTo implements Spec: each block answers its projection into its
// slice of dst, blocks in subset order.
func (ms *MarginalSpec) AnswerTo(dst, x []float64) []float64 {
	checkAnswerShapes("marginals", dst, x, ms.m, ms.n)
	off := 0
	for _, blk := range ms.blocks {
		blk.AnswerTo(dst[off:off+blk.Queries()], x)
		off += blk.Queries()
	}
	return dst
}

// GramMulTo implements Spec: the Gram of a stack is the sum of the
// blocks' Grams.
func (ms *MarginalSpec) GramMulTo(dst, x []float64) []float64 {
	checkGramShapes("marginals", dst, x, ms.n)
	bufp := ms.scratch.Get().(*[]float64)
	buf := *bufp
	for i := range dst {
		dst[i] = 0
	}
	for _, blk := range ms.blocks {
		blk.GramMulTo(buf, x)
		for i := range dst {
			dst[i] += buf[i]
		}
	}
	ms.scratch.Put(bufp)
	return dst
}

// Sensitivity implements Spec: every block has column sums exactly 1
// (each cell lands in one projection bucket), so Δ' = C(d,k).
func (ms *MarginalSpec) Sensitivity() float64 { return float64(len(ms.blocks)) }

// SquaredSum implements Spec: each block has exactly one unit entry per
// column, so ΣW² = C(d,k)·n.
func (ms *MarginalSpec) SquaredSum() float64 {
	return float64(len(ms.blocks)) * float64(ms.n)
}

// Digest implements Spec.
func (ms *MarginalSpec) Digest() string { return specDigest(ms.Describe()) }

// Describe implements Spec.
func (ms *MarginalSpec) Describe() string {
	parts := make([]string, len(ms.dims))
	for i, d := range ms.dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("marginals(%s;k=%d)", strings.Join(parts, ","), ms.k)
}

// gramEigenvalues returns the distinct eigenvalues of WᵀW with their
// multiplicities, descending. The blocks' Grams commute (each is a
// Kronecker product of I and the all-ones J over the same slots), so
// the joint eigenspaces are indexed by the attribute subsets T whose
// slot carries the mean-orthogonal component:
//
//	λ_T = Σ_{S ⊇ T, |S|=k} Π_{i∉S} dims[i],   multiplicity Π_{i∈T}(dims[i]−1),
//
// nonzero exactly when |T| ≤ k.
func (ms *MarginalSpec) gramEigenvalues() (vals []float64, mult []float64) {
	d := len(ms.dims)
	type eig struct{ v, m float64 }
	var all []eig
	for t := 0; t <= ms.k; t++ {
		for _, T := range subsetsOf(d, t) {
			inT := make(map[int]bool, t)
			for _, i := range T {
				inT[i] = true
			}
			lambda := 0.0
			for _, S := range ms.subsets {
				inS := make(map[int]bool, ms.k)
				superset := true
				for _, i := range S {
					inS[i] = true
				}
				for _, i := range T {
					if !inS[i] {
						superset = false
						break
					}
				}
				if !superset {
					continue
				}
				prod := 1.0
				for i := 0; i < d; i++ {
					if !inS[i] {
						prod *= float64(ms.dims[i])
					}
				}
				lambda += prod
			}
			m := 1.0
			for _, i := range T {
				m *= float64(ms.dims[i] - 1)
			}
			if m > 0 && lambda > 0 {
				all = append(all, eig{lambda, m})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	for _, e := range all {
		vals = append(vals, e.v)
		mult = append(mult, e.m)
	}
	return vals, mult
}
