package dataset

import (
	"bytes"
	"math"
	"testing"

	"lrm/internal/rng"
)

func TestStandardCardinalities(t *testing.T) {
	for _, tc := range []struct {
		name string
		want int
	}{
		{"searchlogs", SearchLogsSize},
		{"nettrace", NetTraceSize},
		{"socialnetwork", SocialNetworkSize},
	} {
		d, err := ByName(tc.name, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if d.Len() != tc.want {
			t.Fatalf("%s size = %d, want %d", tc.name, d.Len(), tc.want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("bogus", rng.New(1)); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNamesCovered(t *testing.T) {
	for _, n := range Names() {
		if _, err := ByName(n, rng.New(1)); err != nil {
			t.Fatalf("Names() lists %q but ByName fails: %v", n, err)
		}
	}
}

func TestCountsNonNegative(t *testing.T) {
	src := rng.New(2)
	for _, d := range []*Dataset{
		SearchLogs(4096, src),
		NetTrace(4096, src),
		SocialNetwork(4096, src),
	} {
		for i, v := range d.Counts {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s count[%d] = %v", d.Name, i, v)
			}
		}
		if d.Total() <= 0 {
			t.Fatalf("%s total = %v", d.Name, d.Total())
		}
	}
}

func TestReproducible(t *testing.T) {
	a := SearchLogs(1000, rng.New(7))
	b := SearchLogs(1000, rng.New(7))
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
}

func TestMergePreservesTotal(t *testing.T) {
	d := SearchLogs(4096, rng.New(3))
	for _, n := range []int{1, 7, 128, 1000, 4096} {
		m := d.Merge(n)
		if m.Len() != n {
			t.Fatalf("Merge(%d) has %d bins", n, m.Len())
		}
		if math.Abs(m.Total()-d.Total()) > 1e-6*d.Total() {
			t.Fatalf("Merge(%d) total %v != %v", n, m.Total(), d.Total())
		}
	}
}

func TestMergeOrderPreserving(t *testing.T) {
	d := &Dataset{Name: "x", Counts: []float64{1, 2, 3, 4}}
	m := d.Merge(2)
	if m.Counts[0] != 3 || m.Counts[1] != 7 {
		t.Fatalf("Merge = %v, want [3 7]", m.Counts)
	}
}

func TestMergeBadSizePanics(t *testing.T) {
	d := &Dataset{Name: "x", Counts: []float64{1, 2}}
	for _, n := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Merge(%d) did not panic", n)
				}
			}()
			d.Merge(n)
		}()
	}
}

func TestNetTraceHeavyTail(t *testing.T) {
	d := NetTrace(20000, rng.New(5))
	// A heavy-tailed distribution has max far above the mean.
	mean := d.Total() / float64(d.Len())
	var maxV float64
	for _, v := range d.Counts {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 50*mean {
		t.Fatalf("max %v not heavy-tailed relative to mean %v", maxV, mean)
	}
}

func TestSocialNetworkDecreasingTrend(t *testing.T) {
	d := SocialNetwork(2000, rng.New(6))
	// Power-law degree counts: low degrees dominate high degrees.
	var head, tail float64
	for i := 0; i < 100; i++ {
		head += d.Counts[i]
	}
	for i := 1900; i < 2000; i++ {
		tail += d.Counts[i]
	}
	if head <= 10*tail {
		t.Fatalf("head %v not dominating tail %v", head, tail)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := SearchLogs(100, rng.New(8))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("SearchLogs", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round-trip length %d != %d", got.Len(), d.Len())
	}
	for i := range d.Counts {
		if got.Counts[i] != d.Counts[i] {
			t.Fatalf("round-trip mismatch at %d", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", bytes.NewBufferString("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := ReadCSV("x", bytes.NewBufferString("index,count\n0,notanumber\n")); err == nil {
		t.Fatal("bad count accepted")
	}
}

func TestSquaredSum(t *testing.T) {
	d := &Dataset{Counts: []float64{3, 4}}
	if got := d.SquaredSum(); got != 25 {
		t.Fatalf("SquaredSum = %v", got)
	}
}
