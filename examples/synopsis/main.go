// Synopsis: the paper's future-work direction — exploiting correlations
// between data values — demonstrated head-to-head on the histogram-
// publication task (the identity workload: release all n counts). Three
// synthetic histograms, each matched to one data-synopsis mechanism cited
// by the paper: "smooth" (Fourier-sparse → FPA, reference [24]), "blocky"
// (piecewise-constant → NF, reference [29]) and "spiky" (wavelet-sparse →
// CM, reference [17]). The diagonal wins: every synopsis beats plain
// Laplace exactly when the data matches its structural prior. LRM is
// deliberately shown on its *worst* workload — the identity has full rank
// n, so there is no query correlation to exploit and LRM can only match
// the Laplace floor; the two families of correlation are complementary.
package main

import (
	"fmt"
	"math"

	"lrm"
)

const (
	n      = 256
	trials = 8
)

// smooth: a strong seasonal curve — nearly all energy in the first three
// Fourier coefficients.
func smooth() []float64 {
	x := make([]float64, n)
	for i := range x {
		t := 2 * math.Pi * float64(i) / float64(n)
		x[i] = 2500 + 1500*math.Sin(t) + 400*math.Cos(2*t)
	}
	return x
}

// blocky: eight constant plateaus — zero bias for an 8-bucket histogram.
func blocky() []float64 {
	levels := []float64{400, 2600, 1200, 3400, 800, 2900, 1800, 300}
	x := make([]float64, n)
	for i := range x {
		x[i] = levels[i/(n/len(levels))]
	}
	return x
}

// spiky: two Haar atoms — the extreme-sparsity regime the compressive
// mechanism assumes. (Sparse recovery needs k ≳ 4s·ln(n/s) measurements,
// and the synopsis noise grows with k, so at n = 256 only very sparse
// signals leave CM room to win; reference [17] evaluates at much larger
// n, where the ratio s²·ln(n/s)/n is smaller.)
func spiky(src *lrm.Source) []float64 {
	coeffs := make([]float64, n)
	for _, idx := range []int{0, 9} {
		coeffs[idx] = 15000 + 25000*src.Float64()
	}
	return inverseHaar(coeffs)
}

// inverseHaar inverts the orthonormal Haar transform (same convention as
// the library's internal one; reproduced here so the example stays on the
// public API).
func inverseHaar(c []float64) []float64 {
	out := make([]float64, len(c))
	copy(out, c)
	buf := make([]float64, len(c))
	inv := 1 / math.Sqrt2
	for length := 2; length <= len(c); length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			buf[2*i] = (out[i] + out[half+i]) * inv
			buf[2*i+1] = (out[i] - out[half+i]) * inv
		}
		copy(out[:length], buf[:length])
	}
	return out
}

func main() {
	eps := lrm.Epsilon(0.01) // small budget: noise dominates, synopses shine
	w := lrm.IdentityWorkload(n)
	fmt.Printf("workload: publish all %d counts (identity, full rank), ε = %g\n\n",
		n, float64(eps))

	datasets := []struct {
		name string
		x    []float64
	}{
		{"smooth", smooth()},
		{"blocky", blocky()},
		{"spiky", spiky(lrm.NewSource(4))},
	}
	mechanisms := []lrm.Mechanism{
		lrm.LaplaceData{},
		lrm.Fourier{K: 3},
		lrm.Histogram{Buckets: 8},
		lrm.Compressive{Measurements: 40, Sparsity: 2, Seed: 7},
		lrm.LRM{Options: lrm.DecomposeOptions{IdentityFallback: true, MaxOuterIter: 20}},
	}

	fmt.Printf("%-8s", "data")
	for _, mech := range mechanisms {
		fmt.Printf("  %12s", mech.Name())
	}
	fmt.Println("\n--------------------------------------------------------------------------")
	for _, ds := range datasets {
		fmt.Printf("%-8s", ds.name)
		for _, mech := range mechanisms {
			meas, err := lrm.Evaluate(mech, w, ds.x, eps, trials, lrm.NewSource(5))
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %12.4g", meas.AvgSquaredError)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Read along the rows: FPA wins on smooth data (3 of 256 Fourier")
	fmt.Println("coefficients carry everything), NF wins on blocky data (8 v-optimal")
	fmt.Println("buckets have zero bias), CM beats Laplace on wavelet-sparse data (2")
	fmt.Println("Haar atoms recovered from 40 measurements; NF is competitive there")
	fmt.Println("because Haar-sparse signals are also piecewise-constant). Every")
	fmt.Println("synopsis pays a bias on the data it was NOT built for. LRM cannot")
	fmt.Println("beat Laplace here — the identity workload has no query correlation —")
	fmt.Println("which is exactly the paper's point: query-side and data-side")
	fmt.Println("correlations are complementary.")
}
