package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Finite-difference check of SmoothMaxGrad against SmoothMax.
func TestSmoothMaxGradFiniteDifference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		mu := 0.1 + r.Float64()
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64() * 3
		}
		grad := make([]float64, n)
		SmoothMaxGrad(v, mu, grad)
		const h = 1e-6
		for i := range v {
			vp := append([]float64(nil), v...)
			vm := append([]float64(nil), v...)
			vp[i] += h
			vm[i] -= h
			fd := (SmoothMax(vp, mu) - SmoothMax(vm, mu)) / (2 * h)
			if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The Nesterov and SPG solvers must agree with each other on a strongly
// convex constrained problem (they solve the same program).
func TestSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		target := make([]float64, n)
		for i := range target {
			target[i] = r.NormFloat64() * 2
		}
		radius := 0.2 + r.Float64()
		a := NesterovPG(quadProblem(target, radius), make([]float64, n), NesterovOptions{MaxIter: 2000})
		b := SPG(quadProblem(target, radius), make([]float64, n), SPGOptions{MaxIter: 2000})
		return math.Abs(a.Value-b.Value) < 1e-5*(1+math.Abs(a.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// FixedLipschitz mode must reach the same optimum as backtracking when
// given a valid bound.
func TestFixedLipschitzAgreesWithBacktracking(t *testing.T) {
	target := []float64{4, -3, 2, 1}
	p := quadProblem(target, 1.5)
	bt := NesterovPG(p, make([]float64, 4), NesterovOptions{MaxIter: 3000})
	// The quadratic ½‖x−t‖² has Lipschitz constant exactly 1.
	fl := NesterovPG(p, make([]float64, 4), NesterovOptions{MaxIter: 3000, Lipschitz0: 1.0, FixedLipschitz: true})
	if math.Abs(bt.Value-fl.Value) > 1e-6*(1+math.Abs(bt.Value)) {
		t.Fatalf("fixed-Lipschitz %v vs backtracking %v", fl.Value, bt.Value)
	}
}
