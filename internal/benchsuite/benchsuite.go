// Package benchsuite pins the operand definitions shared by the root
// package's go-test benchmarks (BenchmarkMatMulN, BenchmarkDecomposeBench,
// BenchmarkEngineAnswer) and cmd/lrmbench's -json perf-trajectory suite.
// Both front ends construct their workloads here, so the committed
// BENCH_*.json trajectory always measures exactly the code path of the
// identically named go benchmark — they cannot silently diverge.
package benchsuite

import (
	"lrm/internal/engine"
	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// MatMulSizes are the square GEMM sizes the perf trajectory tracks.
var MatMulSizes = []int{256, 512, 1024}

// MatMulOperands returns the canonical n×n operands and a reusable
// destination for the BenchmarkMatMulN family.
func MatMulOperands(n int) (x, y, dst *mat.Dense) {
	src := rng.New(31)
	x = mat.NewFromData(n, n, src.NormalVec(n*n, 1))
	y = mat.NewFromData(n, n, src.NormalVec(n*n, 1))
	return x, y, mat.New(n, n)
}

// DecomposeWorkload returns the ablation workload BenchmarkDecomposeBench
// (and the ablation benches) decompose end to end.
func DecomposeWorkload() *workload.Workload {
	return workload.Related(64, 128, 8, rng.New(5))
}

// EngineAnswerSetup builds the engine and cache-hit request of
// BenchmarkEngineAnswer. The caller owns the engine (Close it) and must
// issue the request once to warm the cache before timing.
func EngineAnswerSetup() (*engine.Engine, engine.Request, error) {
	e, err := engine.New(engine.Options{})
	if err != nil {
		return nil, engine.Request{}, err
	}
	w := workload.Range(64, 1024, rng.New(21))
	x := rng.New(22).UniformVec(1024, 0, 100)
	return e, engine.Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.1, Seed: 23}, nil
}

// PlanLowRankWorkload is BenchmarkPlan's expensive input: the same
// low-rank workload DecomposeWorkload pins, planned end to end — the
// analysis SVD, candidate scoring, and the winning lrm candidate's full
// ALM preparation (reusing that SVD). Its cost should track
// DecomposeBench plus one factorization.
func PlanLowRankWorkload() *workload.Workload {
	return DecomposeWorkload()
}

// PlanFullRankWorkload is BenchmarkPlan's cheap input: a dense ±1
// WDiscrete batch (p = 0.5, full rank almost surely — the paper's sparse
// p = 0.02 setting collapses to low rank at this size because rows with
// no +1 are identical), where the planner skips the lrm candidate
// (Section 4 regime gate) and decides between the baselines from closed
// forms alone — so its cost is essentially the analysis SVD.
func PlanFullRankWorkload() *workload.Workload {
	return workload.Discrete(48, 64, 0.5, rng.New(6))
}

// ImplicitPlanSpec returns BenchmarkImplicitPlan's input: a Kronecker
// spec of two prefix workloads whose product has 10⁶ matrix cells
// (1024×1024 assembled) — large enough that materializing W would
// dominate the profile, so the benchmark pins the structure-only cost
// of plan + prepare: closed-form analysis, candidate scoring, and the
// winner's preparation, no m×n allocation anywhere.
func ImplicitPlanSpec() workload.Spec {
	s, err := workload.ParseSpec("kron:prefix(32)xprefix(32)")
	if err != nil {
		panic(err) // the literal above is a test fixture; it cannot fail
	}
	return s
}

// EngineAnswerManyBatch is the batch width of BenchmarkEngineAnswerMany:
// one request carrying this many histograms over the BenchmarkEngineAnswer
// workload.
const EngineAnswerManyBatch = 64

// EngineAnswerManySetup builds the engine and the unseeded batch request
// of BenchmarkEngineAnswerMany (unseeded, so the engine takes the
// multi-RHS batched path). The caller owns the engine and must issue the
// request once to warm the cache before timing. The sequential baseline
// (BenchmarkEngineAnswerSeq64) answers the same histograms through the
// same engine one request at a time.
func EngineAnswerManySetup() (*engine.Engine, engine.Request, error) {
	e, err := engine.New(engine.Options{})
	if err != nil {
		return nil, engine.Request{}, err
	}
	w := workload.Range(64, 1024, rng.New(21))
	xs := make([][]float64, EngineAnswerManyBatch)
	for i := range xs {
		xs[i] = rng.New(int64(22+i)).UniformVec(1024, 0, 100)
	}
	return e, engine.Request{Workload: w, Histograms: xs, Eps: 0.1}, nil
}
