package core

import (
	"errors"
	"fmt"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
)

// Mechanism is the Low-Rank Mechanism of Eq. (6): given W ≈ B·L, release
//
//	M(Q,D) = B·(L·x + Lap(Δ(B,L)/ε)^r)
//
// which satisfies ε-differential privacy because L·x is a linear query
// batch of sensitivity Δ(B,L) and post-processing by B is free.
type Mechanism struct {
	d *Decomposition
}

// NewMechanism wraps a decomposition as a query-answering mechanism.
func NewMechanism(d *Decomposition) (*Mechanism, error) {
	if d == nil || d.B == nil || d.L == nil {
		return nil, errors.New("core: nil decomposition")
	}
	if d.B.Cols() != d.L.Rows() {
		return nil, fmt.Errorf("core: decomposition shape mismatch %d×%d · %d×%d",
			d.B.Rows(), d.B.Cols(), d.L.Rows(), d.L.Cols())
	}
	return &Mechanism{d: d}, nil
}

// Answer releases ε-differentially-private answers to the workload on the
// histogram x.
func (m *Mechanism) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.d.L.Cols() {
		return nil, fmt.Errorf("core: data length %d != domain %d", len(x), m.d.L.Cols())
	}
	intermediate := mat.MulVec(m.d.L, x)
	noisy, err := privacy.LaplaceMechanism(intermediate, m.d.Sensitivity(), eps, src)
	if err != nil {
		return nil, err
	}
	return mat.MulVec(m.d.B, noisy), nil
}

// ExpectedSSE returns the analytic expected sum of squared errors
// (Lemma 1), excluding structural error from a relaxed decomposition.
func (m *Mechanism) ExpectedSSE(eps privacy.Epsilon) float64 {
	return m.d.ExpectedSSE(float64(eps))
}

// Decomposition returns the underlying factorization.
func (m *Mechanism) Decomposition() *Decomposition { return m.d }
