// Package clean holds aliasguard fixtures that must produce no
// diagnostics: distinct operands, kernels that permit aliasing, and the
// dst/b aliasing that SolveRightSPDTo explicitly supports.
package clean

import "lrm/internal/mat"

func product(a, b, dst *mat.Dense) *mat.Dense {
	return mat.MulTo(dst, a, b)
}

// accumulate aliases dst with an operand of AddTo, which is an
// element-wise kernel outside the aliasing contract.
func accumulate(dst, a *mat.Dense) *mat.Dense {
	return mat.AddTo(dst, dst, a)
}

// solveInPlace overwrites b with the solution, the documented in-place
// form of SolveRightSPDTo: dst may alias b, just not the system matrix
// or the scratch.
func solveInPlace(b, sys, lwork *mat.Dense) error {
	return mat.SolveRightSPDTo(b, b, sys, lwork)
}
