package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the core of the mini-framework: the Analyzer/Pass/
// Diagnostic contract (a deliberate subset of golang.org/x/tools/
// go/analysis, so the suite can migrate onto the real multichecker the
// day the dependency becomes available) plus the //lint:ignore
// suppression machinery.

// Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings with Pass.Report.
type Analyzer struct {
	// Name is the short identifier used in output, in //lint:ignore
	// comments, and in fixture directories.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run analyzes one package. It returns an error only for internal
	// failures; findings go through Pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state through an
// Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Report records a finding at pos unless an ignore comment suppresses it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreSet indexes //lint:ignore comments by file and line. A comment
//
//	//lint:ignore <analyzer> <justification>
//
// suppresses that analyzer's findings on the same line and on the line
// directly below it (so it can sit on its own line above the flagged
// statement, staticcheck-style, or trail the statement itself). The
// justification is mandatory: an ignore without a reason is itself
// reported, so every suppression in the tree documents why the invariant
// does not apply.
type ignoreSet struct {
	// byLine maps file → line → analyzer names ignored on that line.
	byLine map[string]map[int][]string
}

// ignoreAll is the analyzer-name wildcard accepted by //lint:ignore.
const ignoreAll = "all"

// buildIgnores scans the package's comments for //lint:ignore directives.
// Malformed directives (missing analyzer name or justification) are
// reported as findings so they cannot silently suppress nothing.
func buildIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) *ignoreSet {
	set := &ignoreSet{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: need an analyzer name and a justification",
					})
					continue
				}
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set.byLine[pos.Filename] = lines
				}
				// Suppress on the comment's own line and the next: the
				// directive either trails the flagged line or sits
				// directly above it.
				lines[pos.Line] = append(lines[pos.Line], fields[0])
				lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
			}
		}
	}
	return set
}

// suppresses reports whether d is covered by an ignore directive.
func (s *ignoreSet) suppresses(d Diagnostic) bool {
	if d.Analyzer == "lint" {
		return false // malformed-directive findings cannot self-suppress
	}
	for _, name := range s.byLine[d.Pos.Filename][d.Pos.Line] {
		if name == d.Analyzer || name == ignoreAll {
			return true
		}
	}
	return false
}

// runAnalyzers applies every analyzer to one loaded package and returns
// the surviving (non-suppressed) findings sorted by position.
func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	ignores := buildIgnores(pkg.Fset, pkg.Files, &raw)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	kept := raw[:0]
	for _, d := range raw {
		if !ignores.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// Run loads the packages matched by patterns and applies analyzers to
// each, returning all findings sorted by position.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := LoadPackages(patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AliasGuard,
		NoAlloc,
		NoiseRand,
		EpsHygiene,
		DetIter,
	}
}
