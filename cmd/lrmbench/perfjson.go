package main

// The -json mode is the perf-trajectory artifact: a fixed suite of
// micro- and end-to-end benchmarks (the dense GEMM sizes the kernel
// layer is tuned for, the full ALM decomposition, and the engine's
// cache-hit answering path) run through testing.Benchmark and written as
// one JSON document. CI runs it on every push and uploads the
// BENCH_*.json, so kernel regressions show up as a broken trajectory
// rather than an anecdote; perf PRs commit a snapshot alongside the
// README numbers. Operands come from internal/benchsuite — the same
// definitions the root package's go benchmarks use — so the trajectory
// measures exactly the paths named in it.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lrm/internal/benchsuite"
	"lrm/internal/core"
	"lrm/internal/mat"
	"lrm/internal/plan"
)

// benchResult is one suite entry of the trajectory document.
// KernelFamily names the GEMM micro-kernel family the dispatcher ran for
// the benchmark's product shape (set where the suite pins one exact
// shape — the MatMulN family; end-to-end entries span many shapes and
// are covered by the document-level dispatch table instead).
type benchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	GFLOPS       float64 `json:"gflops,omitempty"`
	KernelFamily string  `json:"kernel_family,omitempty"`
}

// benchDocument is the BENCH_*.json schema. KernelTier is the widest
// kernel family the host supports; KernelDispatch the post-calibration
// shape-class → family table every benchmark below ran under; and
// Calibration the raw measurements that produced it — so a committed
// trajectory always says which kernels actually ran and why.
type benchDocument struct {
	Generated      time.Time                 `json:"generated"`
	GoVersion      string                    `json:"go_version"`
	GOOS           string                    `json:"goos"`
	GOARCH         string                    `json:"goarch"`
	GOMAXPROCS     int                       `json:"gomaxprocs"`
	KernelTier     string                    `json:"kernel_tier,omitempty"`
	KernelDispatch map[string]string         `json:"kernel_dispatch,omitempty"`
	Calibration    []benchsuite.KernelTiming `json:"calibration,omitempty"`
	Benchmarks     []benchResult             `json:"benchmarks"`
}

// record converts a testing.BenchmarkResult into a trajectory entry.
func record(name string, res testing.BenchmarkResult, flops float64) benchResult {
	out := benchResult{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if flops > 0 && res.NsPerOp() > 0 {
		out.GFLOPS = flops / float64(res.NsPerOp())
	}
	return out
}

// writeBenchJSON runs the perf suite and writes the trajectory document
// to path (conventionally BENCH_<label>.json at the repository root).
func writeBenchJSON(path string) error {
	// Calibrate the kernel-family dispatch first, exactly as a serving
	// process would at startup: every benchmark below then runs under the
	// measured table, and the document records both the table and the
	// timings behind it.
	calibration := benchsuite.CalibrateKernels()
	doc := benchDocument{
		Generated:      time.Now().UTC(),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		KernelTier:     mat.KernelTier(),
		KernelDispatch: mat.KernelDispatch(),
		Calibration:    calibration,
	}
	fmt.Fprintf(os.Stderr, "kernel tier %s, dispatch: %s\n", mat.KernelTier(), mat.KernelDispatchString())

	for _, n := range benchsuite.MatMulSizes {
		x, y, dst := benchsuite.MatMulOperands(n)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mat.MulTo(dst, x, y)
			}
		})
		flops := 2 * float64(n) * float64(n) * float64(n)
		entry := record(fmt.Sprintf("MatMul%d", n), res, flops)
		entry.KernelFamily = mat.KernelFamilyFor(n, n, n)
		doc.Benchmarks = append(doc.Benchmarks, entry)
	}

	// End-to-end ALM decomposition on the ablation workload
	// (BenchmarkDecomposeBench in the test suite).
	w := benchsuite.DecomposeWorkload()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Decompose(w.W, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("DecomposeBench", res, 0))

	// Adaptive planner end to end (BenchmarkPlan): one op plans the
	// low-rank decompose workload (analysis + scoring + the winning lrm
	// candidate's ALM, reusing the analysis SVD) and the full-rank
	// WDiscrete workload (regime-gated, closed forms only).
	wl := benchsuite.PlanLowRankWorkload()
	wf := benchsuite.PlanFullRankWorkload()
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.New(wl, plan.Options{}); err != nil {
				b.Fatal(err)
			}
			if _, err := plan.New(wf, plan.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("Plan", res, 0))

	// Structure-aware planning (BenchmarkImplicitPlan): plan + prepare a
	// 10⁶-cell Kronecker spec from its closed forms alone — no matrix is
	// ever materialized, so this must stay orders of magnitude under Plan.
	sp := benchsuite.ImplicitPlanSpec()
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.NewSpec(sp, plan.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("ImplicitPlan", res, 0))

	// Engine cache-hit answering path (BenchmarkEngineAnswer).
	e, req, err := benchsuite.EngineAnswerSetup()
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	defer e.Close()
	if _, err := e.Answer(req); err != nil {
		return fmt.Errorf("warming engine: %w", err)
	}
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Answer(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("EngineAnswer", res, 0))

	// Engine multi-RHS batched path and its sequential baseline
	// (BenchmarkEngineAnswerMany / BenchmarkEngineAnswerSeq64): both
	// answer the same 64 histograms per op, so their ratio is the batch
	// speedup the README table quotes.
	em, emReq, err := benchsuite.EngineAnswerManySetup()
	if err != nil {
		return fmt.Errorf("engine batch: %w", err)
	}
	defer em.Close()
	if _, err := em.Answer(emReq); err != nil {
		return fmt.Errorf("warming batch engine: %w", err)
	}
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := em.Answer(emReq); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("EngineAnswerMany", res, 0))
	oneReq := emReq
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, x := range emReq.Histograms {
				oneReq.Histograms = [][]float64{x}
				if _, err := em.Answer(oneReq); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	doc.Benchmarks = append(doc.Benchmarks, record("EngineAnswerSeq64", res, 0))

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", path, len(doc.Benchmarks))
	return nil
}
