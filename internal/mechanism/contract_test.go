package mechanism

import (
	"math"
	"testing"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// allMechanisms returns one configured instance of every mechanism in the
// repository (paper baselines + extensions), sized for a power-of-two
// domain so the synopsis mechanisms are applicable.
func allMechanisms() []Mechanism {
	return []Mechanism{
		LaplaceData{},
		LaplaceResults{},
		Wavelet{},
		Hierarchical{},
		MatrixMechanism{MaxIter: 10},
		LRM{},
		Fourier{K: 8},
		Compressive{Measurements: 16, Sparsity: 4, Seed: 3},
		Histogram{Buckets: 4},
		Histogram{Buckets: 4, StructureFirst: true},
		Consistent{Base: LaplaceResults{}},
	}
}

// TestMechanismContract checks the invariants every Mechanism must obey:
// nil workloads rejected, answer shape and finiteness, ε validation, data
// length validation, and reproducibility from a seed.
func TestMechanismContract(t *testing.T) {
	src := rng.New(1)
	const m, n = 6, 32
	w := workload.Range(m, n, src)
	x := src.UniformVec(n, 0, 20)
	for _, mech := range allMechanisms() {
		mech := mech
		t.Run(mech.Name(), func(t *testing.T) {
			if name := mech.Name(); name == "" {
				t.Fatal("empty name")
			}
			if _, err := mech.Prepare(nil); err == nil {
				t.Fatal("nil workload accepted")
			}
			p, err := mech.Prepare(w)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			if _, err := p.Answer(x, 0, rng.New(2)); err == nil {
				t.Fatal("zero epsilon accepted")
			}
			if _, err := p.Answer(x, -1, rng.New(2)); err == nil {
				t.Fatal("negative epsilon accepted")
			}
			if _, err := p.Answer(x[:n-1], 1, rng.New(2)); err == nil {
				t.Fatal("short data accepted")
			}
			got, err := p.Answer(x, 1, rng.New(2))
			if err != nil {
				t.Fatalf("answer: %v", err)
			}
			if len(got) != m {
				t.Fatalf("%d answers, want %d", len(got), m)
			}
			for i, v := range got {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("answer[%d] = %g", i, v)
				}
			}
			// Reproducibility: same source seed → identical release.
			again, err := p.Answer(x, 1, rng.New(2))
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != again[i] {
					t.Fatalf("not reproducible at %d: %g vs %g", i, got[i], again[i])
				}
			}
			// ExpectedSSE is either NaN (no closed form) or positive.
			if sse := p.ExpectedSSE(1); !math.IsNaN(sse) && sse <= 0 {
				t.Fatalf("analytic SSE %g", sse)
			}
		})
	}
}

// TestMechanismNoiseScalesInverselyWithEpsilonSquared verifies the 1/ε²
// error law on the pure-noise mechanisms (those without a structural bias
// term): measured SSE at ε = 0.1 should be ≈100× the SSE at ε = 1.
func TestMechanismNoiseScalesInverselyWithEpsilonSquared(t *testing.T) {
	src := rng.New(4)
	const m, n = 8, 64
	w := workload.Range(m, n, src)
	x := src.UniformVec(n, 0, 30)
	exact := w.Answer(x)
	for _, mech := range []Mechanism{LaplaceData{}, LaplaceResults{}, Wavelet{}, Hierarchical{}} {
		p, err := mech.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		sse := func(eps privacy.Epsilon, seed int64) float64 {
			s := rng.New(seed)
			var total float64
			const trials = 300
			for trial := 0; trial < trials; trial++ {
				got, err := p.Answer(x, eps, s)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					d := got[i] - exact[i]
					total += d * d
				}
			}
			return total / trials
		}
		ratio := sse(0.1, 5) / sse(1, 5)
		if ratio < 50 || ratio > 200 {
			t.Fatalf("%s: ε-scaling ratio %g, want ≈100", mech.Name(), ratio)
		}
	}
}

// TestMechanismAnalyticSSEMatchesMonteCarlo cross-checks every closed-form
// error formula against simulation at 15% tolerance.
func TestMechanismAnalyticSSEMatchesMonteCarlo(t *testing.T) {
	src := rng.New(6)
	const m, n = 6, 32
	w := workload.Range(m, n, src)
	x := src.UniformVec(n, 0, 10)
	exact := w.Answer(x)
	eps := privacy.Epsilon(1)
	for _, mech := range allMechanisms() {
		p, err := mech.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		want := p.ExpectedSSE(eps)
		if math.IsNaN(want) {
			continue // no closed form: nothing to check
		}
		s := rng.New(7)
		var total float64
		const trials = 2000
		for trial := 0; trial < trials; trial++ {
			got, err := p.Answer(x, eps, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				d := got[i] - exact[i]
				total += d * d
			}
		}
		measured := total / trials
		if math.Abs(measured-want) > 0.15*want {
			t.Fatalf("%s: analytic %g vs Monte Carlo %g", mech.Name(), want, measured)
		}
	}
}
