package privacy

import (
	"fmt"
	"math"

	"lrm/internal/rng"
)

// RandomizedResponse releases one sensitive bit under ε-differential
// privacy by Warner's classic protocol: the true bit is reported with
// probability e^ε/(1+e^ε) and flipped otherwise. It is the local-model
// primitive underlying frequency estimation and is provided alongside
// the central-model mechanisms for completeness.
func RandomizedResponse(bit bool, eps Epsilon, src *rng.Source) (bool, error) {
	if err := eps.Validate(); err != nil {
		return false, err
	}
	pTruth := math.Exp(float64(eps)) / (1 + math.Exp(float64(eps)))
	if src.Float64() < pTruth {
		return bit, nil
	}
	return !bit, nil
}

// RandomizedResponseEstimate debiases the mean of k randomized responses:
// given the observed fraction of "true" answers, it inverts the response
// distribution to estimate the true fraction (clamped to [0,1]).
func RandomizedResponseEstimate(observedFraction float64, eps Epsilon) (float64, error) {
	if err := eps.Validate(); err != nil {
		return 0, err
	}
	if observedFraction < 0 || observedFraction > 1 {
		return 0, fmt.Errorf("privacy: observed fraction %g outside [0,1]", observedFraction)
	}
	e := math.Exp(float64(eps))
	p := e / (1 + e)
	est := (observedFraction - (1 - p)) / (2*p - 1)
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}
