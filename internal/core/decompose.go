// Package core implements the paper's primary contribution: the workload
// matrix decomposition W ≈ B·L of Section 4 computed by the inexact
// Augmented Lagrangian Method of Section 5 (Algorithm 1, with the
// Nesterov-accelerated projected-gradient inner solver of Algorithm 2),
// the resulting Low-Rank Mechanism (Eq. 6), and the error bounds of
// Lemmas 3–4 and Theorems 2–3.
package core

import (
	"errors"
	"fmt"
	"math"

	"lrm/internal/mat"
	"lrm/internal/optimize"
	"lrm/internal/rng"
)

// InnerSolver selects the algorithm used for the L-subproblem
// (Formula (10)). Nesterov is the paper's choice; plain projected
// gradient exists for the ablation study.
type InnerSolver int

const (
	// SolverNesterov is Algorithm 2 (default).
	SolverNesterov InnerSolver = iota
	// SolverProjectedGradient is the non-accelerated ablation baseline.
	SolverProjectedGradient
)

// Options configures Decompose. The zero value requests the defaults used
// throughout the experiments.
type Options struct {
	// Rank r is the inner dimension of B (m×r) and L (r×n). If zero,
	// 1.2·rank(W) is used — the paper's recommended setting (Section 6.1).
	Rank int
	// Gamma is the Frobenius tolerance ‖W−BL‖_F ≤ γ of Formula (8).
	// Zero requests the exact program (Formula (7)), implemented as a
	// tight tolerance of 1e-4·‖W‖_F.
	Gamma float64
	// MaxOuterIter bounds Algorithm 1's outer loop (default 100).
	MaxOuterIter int
	// MaxInnerIter bounds the alternating B/L passes per outer iteration
	// (default 5).
	MaxInnerIter int
	// MaxNesterovIter bounds Algorithm 2's iterations per L-update
	// (default 50).
	MaxNesterovIter int
	// Beta0 is the initial penalty β(0) (default 10; see withDefaults).
	Beta0 float64
	// BetaMax stops the outer loop once β exceeds it (default 1e8).
	BetaMax float64
	// BetaDoubleEvery selects the penalty schedule. Zero (default) is
	// adaptive: β doubles whenever an outer iteration fails to shrink the
	// residual by at least 30%, which reaches feasibility in far fewer
	// iterations than the paper's fixed schedule. A positive value
	// doubles β every that many outer iterations (10 reproduces the
	// paper's Algorithm 1 literally). Negative freezes β entirely — the
	// fixed-penalty ablation.
	BetaDoubleEvery int
	// Solver selects the inner solver (default Nesterov).
	Solver InnerSolver
	// Restarts runs the ALM this many times — once from the SVD starting
	// point and the rest from seeded random orthogonal rotations of it —
	// keeping the best feasible result. The program is nonconvex, so
	// extra starts can escape the SVD basin. 0 or 1 means a single run.
	Restarts int
	// IdentityFallback, when set, compares the optimized decomposition
	// against the trivial identity strategy (B = W, L = I, the
	// noise-on-data mechanism) and returns whichever has lower expected
	// error. This guarantees the result is never worse than the Laplace
	// baseline, at the cost of departing from the paper's Algorithm 1
	// (whose output on near-full-rank workloads can lose to LM, as the
	// paper's own Figure 4 shows at small domains). Off by default.
	IdentityFallback bool
	// RandomizedInit replaces the full Jacobi SVD used for the rank
	// default and the Lemma-3 starting point with the randomized range
	// finder (mat.RandSVD). On genuinely low-rank workloads — WRelated,
	// the paper's headline regime — this computes the same starting point
	// in O(mn·r) instead of O(mn·min(m,n)) per sweep. When the workload
	// turns out to be near full rank the probe falls back to the exact
	// SVD, so results never degrade.
	RandomizedInit bool
}

func (o *Options) withDefaults(svd *mat.SVD) Options {
	out := *o
	if out.Rank == 0 {
		out.Rank = int(math.Ceil(1.2 * float64(svd.Rank())))
		if out.Rank < 1 {
			out.Rank = 1
		}
	}
	if out.MaxOuterIter == 0 {
		out.MaxOuterIter = 100
	}
	if out.MaxInnerIter == 0 {
		out.MaxInnerIter = 5
	}
	if out.MaxNesterovIter == 0 {
		out.MaxNesterovIter = 50
	}
	if out.Beta0 == 0 {
		// The workload is normalized to unit Frobenius norm before the ALM
		// runs, so a fixed β(0) = 10 keeps the fit term dominant enough to
		// preserve the SVD initialization (β ≫ r is required for the
		// closed-form B-update not to collapse B on the first pass).
		out.Beta0 = 10
	}
	if out.BetaMax == 0 {
		out.BetaMax = 1e8
	}
	return out
}

// Decomposition is the result of Decompose: W ≈ B·L with every column of
// L inside the unit L1 ball. After normalization (applied by Decompose),
// Δ(L) = 1 exactly, so the mechanism's expected squared error is simply
// 2·tr(BᵀB)/ε² (Lemma 1).
type Decomposition struct {
	B *mat.Dense // m×r
	L *mat.Dense // r×n

	// Residual is ‖W − B·L‖_F at termination.
	Residual float64
	// OuterIterations is the number of ALM iterations executed.
	OuterIterations int
	// Converged reports whether the residual reached γ before the
	// iteration or penalty limits.
	Converged bool
}

// Scale returns Φ(B,L) = Σ Bᵢⱼ² (Definition 1).
func (d *Decomposition) Scale() float64 { return mat.SquaredSum(d.B) }

// Sensitivity returns Δ(B,L) = max_j Σᵢ |Lᵢⱼ| (Definition 2).
func (d *Decomposition) Sensitivity() float64 { return mat.MaxColAbsSum(d.L) }

// ExpectedSSE returns the analytic expected sum of squared errors of the
// mechanism built on this decomposition: 2·Φ(B,L)·Δ(B,L)²/ε² (Lemma 1).
// It excludes the structural error of a relaxed (γ > 0) decomposition;
// see StructuralErrorBound.
func (d *Decomposition) ExpectedSSE(eps float64) float64 {
	delta := d.Sensitivity()
	return 2 * d.Scale() * delta * delta / (eps * eps)
}

// StructuralErrorBound returns the data-dependent part of Theorem 3's
// bound: ‖W−BL‖_F²·Σxᵢ², given Σxᵢ². (The theorem states the total
// expected error is at most 2·tr(BᵀB)/ε² + γ·Σxᵢ² with γ bounding the
// squared residual term.)
func (d *Decomposition) StructuralErrorBound(dataSquaredSum float64) float64 {
	return d.Residual * d.Residual * dataSquaredSum
}

// Normalize rescales (B,L) per Lemma 2 so that Δ(L) = 1 (when L is
// nonzero), leaving both W ≈ BL and the error objective unchanged.
func (d *Decomposition) Normalize() {
	delta := d.Sensitivity()
	if delta == 0 || delta == 1 {
		return
	}
	d.L = mat.Scale(1/delta, d.L)
	d.B = mat.Scale(delta, d.B)
}

// Decompose runs Algorithm 1 (inexact ALM) on the workload matrix w,
// returning the optimal decomposition found for the program
//
//	min ½·tr(BᵀB)  s.t. ‖W−BL‖_F ≤ γ,  ∀j Σᵢ|Lᵢⱼ| ≤ 1   (Formula 8)
//
// The result is normalized so Δ(L) = 1.
func Decompose(w *mat.Dense, opts Options) (*Decomposition, error) {
	return decompose(w, nil, opts)
}

// DecomposeAnalyzed is Decompose for callers that already hold the thin
// SVD of w — typically a planner that ran workload.Analyze and wants the
// chosen mechanism to reuse that factorization instead of running a
// second one. The provided SVD backs both the rank default and the
// Lemma-3 starting point (rescaled internally to the ALM's normalized
// units, which is loss-free: scaling a matrix scales its singular values
// and leaves the singular vectors and numerical rank unchanged). A nil
// svd falls back to Decompose exactly.
func DecomposeAnalyzed(w *mat.Dense, svd *mat.SVD, opts Options) (*Decomposition, error) {
	if svd != nil {
		if svd.U == nil || svd.V == nil || len(svd.S) == 0 {
			return nil, errors.New("core: DecomposeAnalyzed with incomplete SVD")
		}
		if svd.U.Rows() != w.Rows() || svd.V.Rows() != w.Cols() ||
			svd.U.Cols() != len(svd.S) || svd.V.Cols() != len(svd.S) {
			return nil, fmt.Errorf("core: SVD shapes (U %d×%d, S %d, V %d×%d) do not factor a %d×%d workload",
				svd.U.Rows(), svd.U.Cols(), len(svd.S), svd.V.Rows(), svd.V.Cols(), w.Rows(), w.Cols())
		}
	}
	return decompose(w, svd, opts)
}

// decompose is the shared body of Decompose and DecomposeAnalyzed;
// preSVD, when non-nil, is a thin SVD of the *original* (unnormalized) w.
func decompose(w *mat.Dense, preSVD *mat.SVD, opts Options) (*Decomposition, error) {
	if w.Rows() == 0 || w.Cols() == 0 {
		return nil, errors.New("core: empty workload matrix")
	}
	if opts.Rank < 0 || opts.Gamma < 0 {
		return nil, fmt.Errorf("core: invalid options rank=%d gamma=%v", opts.Rank, opts.Gamma)
	}
	if !w.IsFinite() {
		return nil, errors.New("core: workload matrix contains NaN or Inf")
	}
	m, n := w.Dims()

	// Normalize the workload to unit Frobenius norm so the penalty
	// schedule is scale-free; B is rescaled on the way out (Lemma 2 makes
	// this loss-free).
	wNorm := mat.FrobeniusNorm(w)
	if wNorm == 0 {
		r := opts.Rank
		if r == 0 {
			r = 1
		}
		return &Decomposition{B: mat.New(m, r), L: mat.New(r, n), Converged: true}, nil
	}
	w = mat.Scale(1/wNorm, w)

	// The SVD is shared by the rank default and the Lemma-3 init; the
	// randomized path probes only as many components as the workload's
	// rank (or the requested r) actually needs. A caller-provided SVD
	// (DecomposeAnalyzed) factors the original w, so its singular values
	// are rescaled into the normalized units; U, V, and the numerical
	// rank are scale-invariant and shared as-is.
	var svd *mat.SVD
	switch {
	case preSVD != nil:
		s := make([]float64, len(preSVD.S))
		for i, v := range preSVD.S {
			s[i] = v / wNorm
		}
		svd = &mat.SVD{U: preSVD.U, S: s, V: preSVD.V}
	case opts.RandomizedInit:
		svd = randomizedInitSVD(w, opts.Rank)
	default:
		svd = mat.FactorSVD(w)
	}
	o := opts.withDefaults(svd)
	r := o.Rank
	// γ works in original workload units; the ALM runs in normalized
	// units. A zero γ requests the exact program, implemented as the
	// tight relative tolerance 1e-4·‖W‖_F.
	gamma := o.Gamma / wNorm
	if o.Gamma == 0 {
		gamma = 1e-4
	}

	// Starting points: the SVD construction of Lemma 3 plus optional
	// seeded random rotations of it (Restarts). The program is nonconvex,
	// so the best feasible result across starts wins, judged by the true
	// objective Φ(B)·Δ(L)² (which is what the mechanism's error is made
	// of — raw Φ alone is meaningless across candidates whose Δ differ).
	b0, l0 := initDecomposition(w, r, svd)
	type start struct{ b, l *mat.Dense }
	starts := []start{{b0, l0}}
	for i := 1; i < o.Restarts; i++ {
		qb, ql := rotateInit(b0, l0, int64(i))
		starts = append(starts, start{qb, ql})
	}

	effObj := func(bm, lm *mat.Dense) float64 {
		d := mat.MaxColAbsSum(lm)
		return mat.SquaredSum(bm) * d * d
	}
	var b, l *mat.Dense
	residualOut := math.Inf(1)
	outerOut := 0
	convergedOut := false
	consider := func(cb, cl *mat.Dense, cres float64, cconv bool) {
		better := b == nil
		switch {
		case better:
		case cconv && !convergedOut:
			better = true
		case cconv == convergedOut && cconv:
			better = effObj(cb, cl) < effObj(b, l)
		case cconv == convergedOut:
			better = cres < residualOut
		}
		if better {
			b, l, residualOut, convergedOut = cb, cl, cres, cconv
		}
	}
	for _, st := range starts {
		cb, cl, cres, couter, cconv := runALM(w, o, gamma, st.b, st.l)
		outerOut += couter
		consider(cb, cl, cres, cconv)
	}

	// On near-full-rank workloads the SVD basin can be far worse than the
	// trivial identity strategy (B = W, L = I, objective ΣWᵢⱼ² = 1 in
	// normalized units). The raw identity point is always considered (it
	// is free and exactly feasible, so the result can never lose badly to
	// noise-on-data); on small domains it is additionally refined by its
	// own ALM run — its inner dimension is n, so refinement cost grows
	// cubically with the domain and is skipped on large ones.
	const refineMaxDomain = 384
	if b == nil || !convergedOut || effObj(b, l) > 1 {
		ib := w.Clone()
		il := mat.Eye(n)
		if n <= refineMaxDomain {
			cb, cl, cres, couter, cconv := runALM(w, o, gamma, ib, il)
			outerOut += couter
			consider(cb, cl, cres, cconv)
		} else {
			consider(ib, il, 0, true)
		}
	}

	// The noise-on-results strategy is the other free, exactly feasible
	// classical point: B = Δ'·I (zero-padded to m×r), L = W/Δ' with
	// Δ' = max_j Σᵢ|Wᵢⱼ|, objective m·Δ'² in normalized units. It needs
	// r ≥ m and dominates on batches whose sensitivity is small relative
	// to their squared sum (e.g. marginals). Considering it guarantees the
	// optimizer never loses to the NOR baseline either.
	if delta := mat.MaxColAbsSum(w); r >= m && delta > 0 {
		norObj := float64(m) * delta * delta
		if b == nil || !convergedOut || effObj(b, l) > norObj {
			nb := mat.New(m, r)
			for i := 0; i < m; i++ {
				nb.Set(i, i, delta)
			}
			nl := mat.New(r, n)
			for i := 0; i < m; i++ {
				row := w.RawRow(i)
				dst := nl.RawRow(i)
				for j, v := range row {
					dst[j] = v / delta
				}
			}
			if n <= refineMaxDomain {
				cb, cl, cres, couter, cconv := runALM(w, o, gamma, nb, nl)
				outerOut += couter
				consider(cb, cl, cres, cconv)
			} else {
				consider(nb, nl, 0, true)
			}
		}
	}

	d := &Decomposition{
		B:               mat.Scale(wNorm, b), // undo the input normalization
		L:               l,
		Residual:        residualOut * wNorm,
		OuterIterations: outerOut,
		Converged:       convergedOut,
	}
	d.Normalize()

	if o.IdentityFallback {
		// The identity strategy is always feasible with zero residual;
		// prefer it when the optimizer did worse.
		identitySSE := 2 * wNorm * wNorm // 2·ΣWᵢⱼ² on the original scale
		if d.ExpectedSSE(1) > identitySSE || !d.Converged {
			d = &Decomposition{
				B:               mat.Scale(wNorm, w), // the original W
				L:               mat.Eye(n),
				Residual:        0,
				OuterIterations: outerOut,
				Converged:       true,
			}
		}
	}
	return d, nil
}

// randomizedInitSVD returns a truncated SVD adequate for the Lemma-3
// starting point. With an explicit rank it probes exactly that many
// components; otherwise it doubles the probe size until the numerical
// rank is strictly inside the probe (so no direction was missed), falling
// back to the exact SVD when the workload is near full rank or the probe
// errors.
func randomizedInitSVD(w *mat.Dense, rank int) *mat.SVD {
	m, n := w.Dims()
	minDim := m
	if n < minDim {
		minDim = n
	}
	if rank > 0 {
		k := rank
		if k > minDim {
			k = minDim
		}
		// The seed drives the Gaussian sketch of the randomized range
		// finder — a deterministic-by-design numerical probe, not a noise
		// stream; a fixed seed keeps Decompose bit-reproducible.
		//lint:ignore noiserand SVD sketch seed, not privacy noise
		if s, err := mat.RandSVD(w, k, mat.RandSVDOptions{Seed: 1}); err == nil {
			return s
		}
		return mat.FactorSVD(w)
	}
	for k := 16; k < minDim; k *= 2 {
		//lint:ignore noiserand SVD sketch seed, not privacy noise
		s, err := mat.RandSVD(w, k, mat.RandSVDOptions{Seed: 1})
		if err != nil {
			break
		}
		if s.Rank() < len(s.S) {
			return s
		}
	}
	return mat.FactorSVD(w)
}

// rotateInit applies a seeded random orthogonal mixing Q to the starting
// point: (B·Qᵀ)·(Q·L) = B·L, so the rotated start reconstructs W equally
// well while sitting in a different region of the (nonconvex) landscape.
// Columns of Q·L may exceed the L1 ball slightly; the ALM's projection
// restores feasibility on the first L-update.
func rotateInit(b, l *mat.Dense, seed int64) (*mat.Dense, *mat.Dense) {
	r := l.Rows()
	src := rng.New(seed * 7919)
	g := mat.New(r, r)
	for i := range g.RawData() {
		g.RawData()[i] = src.Normal()
	}
	// The U factor of a square Gaussian matrix is Haar-distributed
	// orthogonal (almost surely full rank).
	q := mat.FactorSVD(g).U
	return mat.MulABt(b, q), mat.Mul(q, l)
}

// almState owns every buffer the ALM outer/inner loops touch. All
// scratch is sized once at construction, so the alternating B/L updates
// — executed up to MaxOuterIter·MaxInnerIter times per decomposition —
// perform no per-iteration heap allocation (pinned by a
// testing.AllocsPerRun regression test).
type almState struct {
	w     *mat.Dense
	o     Options
	gamma float64
	beta  float64

	b     *mat.Dense // current B, m×r (overwritten in place by updateB)
	l     *mat.Dense // current L, r×n
	lPrev *mat.Dense // previous L (ping-pongs with l across updateL calls)
	pi    *mat.Dense // Lagrange multiplier π, m×n

	pw    *mat.Dense // π + β·W, m×n
	diff  *mat.Dense // W − B·L, m×n
	rhs   *mat.Dense // (π+βW)·Lᵀ, m×r
	sys   *mat.Dense // β·LLᵀ + I, r×r
	lwork *mat.Dense // Cholesky factor scratch, r×r
	btb   *mat.Dense // BᵀB, r×r
	kmat  *mat.Dense // Bᵀ(π+βW), r×n
	gm    *mat.Dense // BᵀB·L gradient scratch, r×n
	lmHdr *mat.Dense // reusable header wrapping solver iterates, r×n

	x0         []float64 // inner-solver starting point, r·n
	powX, powY []float64 // power-iteration scratch, r
	projBuf    []float64 // column-projection scratch, 2·r

	nwork   *optimize.Workspace
	problem optimize.Problem
}

// newALMState clones the starting point into solver-owned buffers and
// builds the L-subproblem closures once, so nothing is re-created per
// iteration.
func newALMState(w *mat.Dense, o Options, gamma float64, b0, l0 *mat.Dense) *almState {
	m, n := w.Dims()
	r := l0.Rows()
	s := &almState{
		w:     w,
		o:     o,
		gamma: gamma,
		beta:  o.Beta0,
		b:     b0.Clone(),
		l:     l0.Clone(),
		lPrev: mat.New(r, n),
		pi:    mat.New(m, n),
		pw:    mat.New(m, n),
		diff:  mat.New(m, n),
		rhs:   mat.New(m, r),
		sys:   mat.New(r, r),
		lwork: mat.New(r, r),
		btb:   mat.New(r, r),
		kmat:  mat.New(r, n),
		gm:    mat.New(r, n),
		lmHdr: mat.New(0, 0),

		x0:      make([]float64, r*n),
		powX:    make([]float64, r),
		powY:    make([]float64, r),
		projBuf: make([]float64, 2*r),

		nwork: optimize.NewWorkspace(),
	}
	// The quadratic subproblem of Formula (10):
	//	G(L) = β/2·tr(LᵀBᵀBL) − tr((βW+π)ᵀBL)
	//	∇G  = β·BᵀB·L − Bᵀ·(βW+π)
	// btb and kmat are refreshed by updateL before each solve; beta is
	// read through the state so the closures track the penalty schedule.
	s.problem = optimize.Problem{
		Dim: r * n,
		Value: func(x []float64) float64 {
			s.lmHdr.Reuse(r, n, x)
			mat.MulTo(s.gm, s.btb, s.lmHdr)
			return 0.5*s.beta*mat.Dot(s.lmHdr, s.gm) - mat.Dot(s.kmat, s.lmHdr)
		},
		Grad: func(x, g []float64) {
			s.lmHdr.Reuse(r, n, x)
			mat.MulTo(s.gm, s.btb, s.lmHdr)
			gd, kd := s.gm.RawData(), s.kmat.RawData()
			for i := range g {
				g[i] = s.beta*gd[i] - kd[i]
			}
		},
		Project: func(x []float64) {
			optimize.ProjectColumnsL1Buf(x, r, n, 1, s.projBuf)
		},
	}
	return s
}

// residual recomputes W − B·L into s.diff and returns its Frobenius norm.
//
//lrm:noalloc — runs every outer iteration against preallocated state
func (s *almState) residual() float64 {
	mat.MulTo(s.diff, s.b, s.l)
	mat.SubTo(s.diff, s.w, s.diff)
	return mat.FrobeniusNorm(s.diff)
}

// runALM executes Algorithm 1 from the given starting point on the
// normalized workload, returning the best feasible iterate found (seeded
// with the start itself when feasible).
func runALM(w *mat.Dense, o Options, gamma float64, b0, l0 *mat.Dense) (outB, outL *mat.Dense, residualOut float64, outer int, converged bool) {
	s := newALMState(w, o, gamma, b0, l0)
	residual := math.Inf(1)

	// Track the best feasible iterate by objective: once the residual
	// reaches γ, further outer iterations typically keep shrinking
	// tr(BᵀB), so we continue until the improvement stalls rather than
	// returning at first feasibility.
	var bestB, bestL *mat.Dense
	bestObj := math.Inf(1)
	bestResidual := math.Inf(1)
	// The SVD starting point is itself feasible whenever its truncation
	// error fits in γ; seeding the tracker with it guarantees the result
	// never falls above Lemma 3's bound however the trajectory wanders.
	if initRes := s.residual(); initRes <= gamma {
		bestB = s.b.Clone()
		bestL = s.l.Clone()
		bestObj = mat.SquaredSum(s.b)
		bestResidual = initRes
	}
	const stallWindow = 15
	stallRef := math.Inf(1)
	stallAge := 0
	prevResidual := math.Inf(1)

	for k := 1; k <= o.MaxOuterIter; k++ {
		outer = k
		// Approximately solve the subproblem by alternating B and L.
		for inner := 0; inner < o.MaxInnerIter; inner++ {
			if err := s.updateB(); err != nil {
				// The system βLLᵀ+I is SPD by construction, so a solve
				// failure only means catastrophic numerics; keep the
				// previous iterate and stop this run.
				return s.b, s.l, residual, k, converged
			}
			s.updateL()
			// Early exit when the inner alternation has stalled.
			if mat.FrobeniusDist(s.l, s.lPrev) < 1e-10*(1+mat.FrobeniusNorm(s.lPrev)) {
				break
			}
		}

		residual = s.residual()
		if residual <= gamma {
			converged = true
			if obj := mat.SquaredSum(s.b); obj < bestObj {
				bestObj = obj
				if bestB == nil {
					bestB = s.b.Clone()
					bestL = s.l.Clone()
				} else {
					bestB.CopyFrom(s.b)
					bestL.CopyFrom(s.l)
				}
				bestResidual = residual
			}
			// Stop once the feasible objective has stopped improving.
			stallAge++
			if stallAge >= stallWindow {
				if bestObj > stallRef*(1-1e-3) {
					break
				}
				stallRef = bestObj
				stallAge = 0
			}
		} else {
			stallAge = 0
			stallRef = math.Inf(1)
		}
		if s.beta >= o.BetaMax {
			break
		}
		switch {
		case o.BetaDoubleEvery > 0:
			if k%o.BetaDoubleEvery == 0 {
				s.beta *= 2
			}
		case o.BetaDoubleEvery == 0:
			// Adaptive: escalate the penalty only while infeasible and
			// stalling. Once the residual is inside γ, β stays put — at
			// ever-larger penalties the subproblem degenerates into pure
			// fitting and the tr(BᵀB) objective stops descending.
			if residual > gamma && residual > 0.7*prevResidual {
				s.beta *= 2
			}
		}
		prevResidual = residual
		// π(k+1) = π(k) + β·(W − B·L). s.diff still holds the residual
		// matrix computed above.
		mat.AddScaledTo(s.pi, s.pi, s.beta, s.diff)
	}

	if bestB != nil {
		return bestB, bestL, bestResidual, outer, true // a feasible iterate was found and kept
	}
	return s.b, s.l, residual, outer, converged
}

// initDecomposition builds the SVD-based feasible starting point from the
// proof of Lemma 3: B = √k'·U·Σ, L = Vᵀ/√k' on the leading k' = min(r,
// rank) singular triples, zero-padded up to r. Every column of L then has
// L1 norm ≤ 1 (‖v‖₁ ≤ √k'·‖v‖₂).
func initDecomposition(w *mat.Dense, r int, svd *mat.SVD) (b, l *mat.Dense) {
	m, n := w.Dims()
	k := svd.Rank()
	if k > r {
		k = r
	}
	if k == 0 {
		k = 1 // degenerate all-zero workload; keep shapes valid
	}
	scale := math.Sqrt(float64(k))
	b = mat.New(m, r)
	for i := 0; i < m; i++ {
		row := b.RawRow(i)
		for j := 0; j < k; j++ {
			row[j] = scale * svd.U.At(i, j) * svd.S[j]
		}
	}
	l = mat.New(r, n)
	inv := 1 / scale
	for i := 0; i < k; i++ {
		row := l.RawRow(i)
		for j := 0; j < n; j++ {
			row[j] = inv * svd.V.At(j, i)
		}
	}
	return b, l
}

// updateB applies the closed-form solution of Eq. (9):
// B = (βW+π)·Lᵀ·(βLLᵀ+I)⁻¹, an r×r SPD solve. It overwrites s.b in
// place (the update does not read the previous B) and leaves π+βW in
// s.pw for updateL to reuse.
//
//lrm:noalloc — the ALM inner loop: every buffer comes from almState
func (s *almState) updateB() error {
	mat.AddScaledTo(s.pw, s.pi, s.beta, s.w)
	mat.MulABtTo(s.rhs, s.pw, s.l) // (βW+π)Lᵀ, m×r
	mat.GramTTo(s.sys, s.l)        // LLᵀ
	mat.ScaleTo(s.sys, s.beta, s.sys)
	r := s.sys.Rows()
	for i := 0; i < r; i++ {
		s.sys.Set(i, i, s.sys.At(i, i)+1)
	}
	return mat.SolveRightSPDTo(s.b, s.rhs, s.sys, s.lwork)
}

// updateL minimizes the quadratic G(L) of Formula (10) over the per-column
// L1 balls (Formula 11) using the configured inner solver, writing the
// new iterate into s.l (the previous one lands in s.lPrev). It relies on
// s.pw holding π+βW from the updateB call of the same alternation pass.
// This is the ALM inner loop: solver scratch lives in s.nwork, and the
// AllocsPerRun pin in alloc_test.go counts on this body staying clean.
//
//lrm:noalloc
func (s *almState) updateL() {
	mat.GramTo(s.btb, s.b)          // BᵀB, r×r
	mat.MulAtBTo(s.kmat, s.b, s.pw) // Bᵀ(βW+π), r×n
	copy(s.x0, s.l.RawData())
	var res optimize.Result
	if s.o.Solver == SolverProjectedGradient {
		// Ablation baseline: plain projected gradient with backtracking.
		nopt := optimize.NesterovOptions{
			MaxIter:    s.o.MaxNesterovIter,
			Lipschitz0: s.beta*mat.FrobeniusNorm(s.btb) + 1,
			Work:       s.nwork,
		}
		res = optimize.ProjectedGradient(s.problem, s.x0, nopt)
	} else {
		// G is quadratic with ∇G exactly β·λmax(BᵀB)-Lipschitz, so a
		// certified constant (power iteration plus 5% headroom) lets
		// Nesterov skip line search: one gradient product per iteration.
		lip := s.beta*mat.LambdaMaxSymBuf(s.btb, 100, s.powX, s.powY)*1.05 + 1e-12
		nopt := optimize.NesterovOptions{
			MaxIter:        s.o.MaxNesterovIter,
			Lipschitz0:     lip,
			FixedLipschitz: true,
			Work:           s.nwork,
		}
		res = optimize.NesterovPG(s.problem, s.x0, nopt)
	}
	// res.X aliases workspace memory: copy it into the ping-pong buffer
	// and retire it before the next solver call reuses the workspace.
	s.l, s.lPrev = s.lPrev, s.l
	copy(s.l.RawData(), res.X)
	s.nwork.Put(res.X)
}
