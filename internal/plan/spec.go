package plan

import (
	"fmt"
	"math"

	"lrm/internal/mechanism"
	"lrm/internal/workload"
)

// NewSpec is the implicit-workload sibling of New: plan a workload.Spec
// without the matrix W ever existing. The analysis comes from
// workload.AnalyzeSpec (closed forms and factor recursion instead of an
// SVD), candidates are scored through their SpecPreparer closed forms,
// and the winner's Prepared is retained exactly as in New. Differences
// forced by the matrix's absence:
//
//   - Dense adapters (workload.AsSpec) route straight to New — the
//     adapter path, with identical plans and digests.
//   - No Monte-Carlo probe: a candidate with neither a closed form nor
//     a spec path is skipped with a reason, never silently scored.
//   - No row sharding (Options.ShardRows is ignored): sharding splits
//     the matrix's rows, and there is no matrix.
//   - Options.LRM.Rank applies per Kronecker factor (zero keeps each
//     factor's ⌈1.2·rank⌉ default); the planner does not tune it against
//     the product rank, which would be meaningless for a factored
//     strategy.
//
// The plan records the spec's Describe() form in SpecDesc, and its
// Fingerprint is workload.SpecFingerprint (digest-keyed, namespaced
// apart from dense matrix fingerprints).
func NewSpec(s workload.Spec, opts Options) (*Plan, error) {
	if s == nil {
		return nil, fmt.Errorf("plan: nil spec")
	}
	if d, ok := s.(*workload.DenseSpec); ok {
		return New(d.Dense(), opts)
	}
	eps := opts.Eps
	if eps == 0 {
		eps = 1
	}
	if err := eps.Validate(); err != nil {
		return nil, fmt.Errorf("plan: scoring epsilon: %w", err)
	}
	names := opts.Mechanisms
	if names == nil {
		names = DefaultCandidates()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("plan: empty candidate set")
	}
	for _, name := range names {
		if _, err := mechanism.ByName(name, opts.Config); err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
	}
	stats, err := workload.AnalyzeSpec(s)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	fp := opts.Fingerprint
	if fp == "" {
		fp = workload.SpecFingerprint(s)
	}

	p := &Plan{
		Fingerprint: fp,
		Eps:         eps,
		Shards:      1,
		SpecDesc:    s.Describe(),
		LRMOptions:  opts.LRM,
		Stats:       stats,
	}

	bestSSE := math.Inf(1)
	var bestPrepared mechanism.Prepared
	for _, name := range names {
		c := Candidate{Name: name, SSE: math.NaN()}
		if name == "lrm" && !stats.LowRank() {
			// The same Section 4 regime rule as the dense planner, decided
			// from the structural rank (factor ranks multiply) instead of a
			// factorization.
			c.Source = SourceSkipped
			c.Reason = fmt.Sprintf("full-rank regime: rank %d ≥ 0.8·min(m,n) = %.4g, LRM cannot beat the baselines (Section 4)",
				stats.Rank, 0.8*math.Min(float64(stats.Queries), float64(stats.Domain)))
			p.Candidates = append(p.Candidates, c)
			continue
		}
		mech, err := candidateMechanism(name, opts, p.LRMOptions)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		prepared, err := mechanism.PrepareSpec(mech, s, stats)
		if err != nil {
			c.Source = SourceSkipped
			c.Reason = fmt.Sprintf("prepare failed: %v", err)
			p.Candidates = append(p.Candidates, c)
			continue
		}
		c.SSE = prepared.ExpectedSSE(eps)
		c.Source = SourceAnalytic
		if math.IsNaN(c.SSE) {
			// The dense planner would fall back to a Monte-Carlo probe
			// here, but a probe needs full releases of a synthetic
			// histogram scored against exact answers — affordable when W
			// fits in memory, not as a default at implicit scale.
			c.SSE = math.NaN()
			c.Source = SourceSkipped
			c.Reason = "no analytic error form; implicit plans score closed forms only"
			p.Candidates = append(p.Candidates, c)
			continue
		}
		if c.SSE < bestSSE {
			bestSSE = c.SSE
			bestPrepared = prepared
			p.Mechanism = name
		}
		p.Candidates = append(p.Candidates, c)
	}
	if bestPrepared == nil {
		return nil, fmt.Errorf("plan: no scorable candidate among %v for spec %s (all skipped: %s)",
			names, s.Describe(), skipReasons(p.Candidates))
	}
	p.SSE = bestSSE
	p.prepared = bestPrepared
	return p, nil
}

// AutoPrepareSpec plans the spec and returns the winning mechanism's
// Prepared alongside the plan that chose it — the implicit twin of
// AutoPrepare. No m×n allocation happens anywhere in the call.
func AutoPrepareSpec(s workload.Spec, opts Options) (mechanism.Prepared, *Plan, error) {
	p, err := NewSpec(s, opts)
	if err != nil {
		return nil, nil, err
	}
	return p.prepared, p, nil
}
