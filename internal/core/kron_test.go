package core

import (
	"bytes"
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
)

func randDense(r, c int, seed int64) *mat.Dense {
	src := rng.New(seed)
	m := mat.New(r, c)
	copy(m.RawData(), src.UniformVec(r*c, -1, 1))
	return m
}

func TestKronMulToMatchesDense(t *testing.T) {
	cases := [][]*mat.Dense{
		{randDense(3, 4, 1)},
		{randDense(3, 4, 1), randDense(2, 5, 2)},
		{randDense(4, 2, 3), randDense(3, 3, 4), randDense(2, 4, 5)},
		{randDense(1, 6, 6), randDense(5, 1, 7)},
	}
	for ci, factors := range cases {
		dense := mat.Eye(1)
		n, m := 1, 1
		for _, f := range factors {
			dense = mat.Kron(dense, f)
			m *= f.Rows()
			n *= f.Cols()
		}
		src := rng.New(int64(100 + ci))
		x := src.UniformVec(n, -2, 2)
		want := mat.MulVec(dense, x)
		got := mat.KronMulTo(make([]float64, m), factors, x, make([]float64, mat.KronScratchLen(factors)))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("case %d: KronMulTo[%d] = %g, dense %g", ci, i, got[i], want[i])
			}
		}
	}
}

// kronTestFactors builds small per-dimension workload matrices whose
// product mechanism we can compare against the dense decomposition of
// the materialized Kronecker product.
func kronTestFactors() []*mat.Dense {
	// Prefix(6) and Prefix(4): low-rank-ish, well-conditioned, and their
	// product is exactly the 2-D prefix workload.
	prefix := func(n int) *mat.Dense {
		w := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				w.Set(i, j, 1)
			}
		}
		return w
	}
	return []*mat.Dense{prefix(6), prefix(4)}
}

func TestDecomposeKron(t *testing.T) {
	factors := kronTestFactors()
	kd, err := DecomposeKron(factors, Options{})
	if err != nil {
		t.Fatalf("DecomposeKron: %v", err)
	}
	if !kd.Converged() {
		t.Fatalf("factor ALM runs did not converge")
	}
	if d := kd.Sensitivity(); math.Abs(d-1) > 1e-9 {
		t.Errorf("Sensitivity %g, want 1 (factors are normalized)", d)
	}

	// The factored strategy is a valid (feasible) strategy for the dense
	// product: (⊗Bᵢ)(⊗Lᵢ) = ⊗(BᵢLᵢ) ≈ ⊗Wᵢ. Verify the reconstruction.
	denseW := mat.Kron(factors[0], factors[1])
	bigB := mat.Kron(kd.Factors[0].B, kd.Factors[1].B)
	bigL := mat.Kron(kd.Factors[0].L, kd.Factors[1].L)
	recon := mat.Mul(bigB, bigL)
	if res := mat.FrobeniusDist(recon, denseW); res > 1e-3*mat.FrobeniusNorm(denseW) {
		t.Errorf("product reconstruction residual %g too large", res)
	}

	// Product identities: Scale and Sensitivity of the assembled strategy
	// equal the factor products.
	if got, want := kd.Scale(), mat.SquaredSum(bigB); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("Scale %g, assembled %g", got, want)
	}
	if got, want := kd.Sensitivity(), mat.MaxColAbsSum(bigL); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("Sensitivity %g, assembled %g", got, want)
	}
	wantSSE := (&Decomposition{B: bigB, L: bigL}).ExpectedSSE(0.5)
	if got := kd.ExpectedSSE(0.5); math.Abs(got-wantSSE) > 1e-9*(1+wantSSE) {
		t.Errorf("ExpectedSSE %g, assembled %g", got, wantSSE)
	}
}

func TestKronMechanismMatchesAssembled(t *testing.T) {
	factors := kronTestFactors()
	kd, err := DecomposeKron(factors, Options{})
	if err != nil {
		t.Fatalf("DecomposeKron: %v", err)
	}
	km, err := NewKronMechanism(kd)
	if err != nil {
		t.Fatalf("NewKronMechanism: %v", err)
	}
	// The assembled dense mechanism over ⊗Bᵢ, ⊗Lᵢ draws the same noise
	// (same r, same Δ, same source) — answers must agree to roundoff.
	assembled, err := NewMechanism(&Decomposition{
		B: mat.Kron(kd.Factors[0].B, kd.Factors[1].B),
		L: mat.Kron(kd.Factors[0].L, kd.Factors[1].L),
	})
	if err != nil {
		t.Fatalf("NewMechanism: %v", err)
	}
	if km.Queries() != 24 || km.Domain() != 24 {
		t.Fatalf("shape %d×%d, want 24×24", km.Queries(), km.Domain())
	}
	eps := privacy.Epsilon(0.7)
	x := rng.New(11).UniformVec(24, 0, 50)
	got, err := km.Answer(x, eps, rng.New(42))
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	want, err := assembled.Answer(x, eps, rng.New(42))
	if err != nil {
		t.Fatalf("assembled Answer: %v", err)
	}
	scale := 1 + mat.VecNorm2(want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*scale {
			t.Fatalf("Answer[%d] = %g, assembled %g", i, got[i], want[i])
		}
	}
	if got, want := km.ExpectedSSE(eps), assembled.ExpectedSSE(eps); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("ExpectedSSE %g, assembled %g", got, want)
	}

	if _, err := km.Answer(x[:5], eps, rng.New(1)); err == nil {
		t.Errorf("short histogram accepted")
	}
	if _, err := km.Answer(x, privacy.Epsilon(0), rng.New(1)); err == nil {
		t.Errorf("zero epsilon accepted")
	}
}

func TestKronDecompositionRoundTrip(t *testing.T) {
	factors := kronTestFactors()
	kd, err := DecomposeKron(factors, Options{})
	if err != nil {
		t.Fatalf("DecomposeKron: %v", err)
	}
	var buf bytes.Buffer
	if err := kd.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ReadKronDecomposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadKronDecomposition: %v", err)
	}
	if len(got.Factors) != len(kd.Factors) {
		t.Fatalf("%d factors, want %d", len(got.Factors), len(kd.Factors))
	}
	for i := range got.Factors {
		if !got.Factors[i].B.EqualApprox(kd.Factors[i].B, 0) || !got.Factors[i].L.EqualApprox(kd.Factors[i].L, 0) {
			t.Errorf("factor %d not bit-identical after round trip", i+1)
		}
	}

	// Corruption must be rejected, not answered.
	if _, err := ReadKronDecomposition(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Errorf("truncated payload accepted")
	}
	if _, err := ReadKronDecomposition(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Errorf("garbage payload accepted")
	}
	empty := &KronDecomposition{}
	if err := empty.Encode(&bytes.Buffer{}); err == nil {
		t.Errorf("empty kron decomposition encoded")
	}
}
