package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpsHygiene enforces two ε-handling rules:
//
//  1. An ε value reaching a release sink — a call to Answer, AnswerMany,
//     Prepare, or PrepareWith taking a privacy.Epsilon argument — must
//     have passed through validation earlier in the same function:
//     eps.Validate(), a comparison guard (eps <= 0, eps > 0, …), a
//     math.IsNaN/IsInf check, or a Budget.Spend (which validates
//     internally). An unvalidated ε ≤ 0 silently yields a Laplace scale
//     that is negative, zero, or NaN — noise that protects nothing.
//     The check is intraprocedural and syntactic: it traces only ε
//     arguments that are plain variables or field chains, and accepts
//     any textual validation of the same chain before the call. Callers
//     whose ε was validated by their own caller annotate the sink with
//     //lint:ignore epshygiene and a justification.
//
//  2. A (*privacy.Budget).Spend or (*privacy.Accountant).Spend call
//     whose error result is discarded is always flagged: an unchecked
//     spend turns the budget into an unenforced suggestion — the
//     release happens whether or not ε was available, which is an
//     overspend bug, not a style issue.
//
//  3. In an HTTP handler, a Spend call positioned after the response
//     has started — after a Write or WriteHeader on an
//     http.ResponseWriter earlier in the same function — is flagged:
//     once the client has been answered, an exhausted budget can no
//     longer stop the release, so the charge must land before the
//     first byte of the response.
var EpsHygiene = &Analyzer{
	Name: "epshygiene",
	Doc: "requires ε to be validated (Validate, comparison guard, or " +
		"Budget.Spend) before reaching Answer/AnswerMany/Prepare, flags " +
		"discarded Budget.Spend/Accountant.Spend errors, and flags " +
		"spends placed after response writing begins",
	Run: runEpsHygiene,
}

// epsSinkNames are the method/function names that release answers or
// commit preparation work against an ε.
var epsSinkNames = map[string]bool{
	"Answer":      true,
	"AnswerMany":  true,
	"Prepare":     true,
	"PrepareWith": true,
}

const epsilonTypeName = "lrm/internal/privacy.Epsilon"

// isEpsilonType reports whether t is privacy.Epsilon (possibly aliased).
func isEpsilonType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path()+"."+obj.Name() == epsilonTypeName
}

// spendCallee names the privacy spend method the call resolves to —
// "Budget.Spend" or "Accountant.Spend" — or returns "" for any other
// callee. Both methods carry the same contract: the error is the
// enforcement, so discarding it (or calling after the response has
// started) defeats the budget.
func spendCallee(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	switch fn.FullName() {
	case "(*lrm/internal/privacy.Budget).Spend":
		return "Budget.Spend"
	case "(*lrm/internal/privacy.Accountant).Spend":
		return "Accountant.Spend"
	}
	return ""
}

func runEpsHygiene(pass *Pass) error {
	for _, file := range pass.Files {
		// Discarded Budget.Spend/Accountant.Spend errors: a Spend used
		// as a bare statement or assigned to blank.
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name := spendCallee(pass.Info, call); name != "" {
						pass.Report(call.Pos(), "%s error discarded: the release proceeds even when the budget is exhausted", name)
					}
				}
			case *ast.GoStmt:
				if name := spendCallee(pass.Info, stmt.Call); name != "" {
					pass.Report(stmt.Call.Pos(), "%s error discarded: the release proceeds even when the budget is exhausted", name)
				}
			case *ast.DeferStmt:
				if name := spendCallee(pass.Info, stmt.Call); name != "" {
					pass.Report(stmt.Call.Pos(), "%s error discarded: the release proceeds even when the budget is exhausted", name)
				}
			case *ast.AssignStmt:
				for i, rhs := range stmt.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					name := spendCallee(pass.Info, call)
					if name == "" {
						continue
					}
					// Single-value context: Spend's one result maps to
					// the matching LHS (or to every LHS for a 1:1 assign).
					if i < len(stmt.Lhs) {
						if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							pass.Report(call.Pos(), "%s error assigned to _: the release proceeds even when the budget is exhausted", name)
						}
					}
				}
			}
			return true
		})

		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEpsFlow(pass, fd)
			checkSpendAfterWrite(pass, fd)
		}
	}
	return nil
}

// checkEpsFlow verifies every ε sink inside one function.
func checkEpsFlow(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var sinkName string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			sinkName = fun.Sel.Name
		case *ast.Ident:
			sinkName = fun.Name
		default:
			return true
		}
		if !epsSinkNames[sinkName] {
			return true
		}
		// Locate the privacy.Epsilon argument.
		var epsArg ast.Expr
		for _, arg := range call.Args {
			if tv, ok := pass.Info.Types[arg]; ok && isEpsilonType(tv.Type) {
				epsArg = arg
				break
			}
		}
		if epsArg == nil {
			return true
		}
		target := traceEpsExpr(pass.Info, epsArg)
		if target == nil {
			return true // constants and computed ε are out of scope
		}
		if !validatedBefore(pass, fd, target, call.Pos()) {
			pass.Report(call.Pos(),
				"ε argument %s reaches %s without validation in this function (no Validate call, comparison guard, or Budget.Spend)",
				exprString(target), sinkName)
		}
		return true
	})
}

// traceEpsExpr strips conversions and parens off an ε argument and
// returns the underlying variable or field chain, or nil when the value
// is a constant or a computed expression.
func traceEpsExpr(info *types.Info, e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	// Unwrap conversions like privacy.Epsilon(x): a CallExpr whose Fun is
	// a type.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return traceEpsExpr(info, call.Args[0])
		}
		return nil
	}
	switch v := e.(type) {
	case *ast.Ident:
		if _, ok := info.Uses[v].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr, *ast.StarExpr:
		return e
	case *ast.BasicLit:
		return nil
	}
	if _, isConst := isConstExpr(info, e); isConst {
		return nil
	}
	return nil
}

// validatedBefore reports whether the ε chain is validated anywhere in
// the function before pos: a Validate() call on it, a comparison
// involving it, a math.IsNaN/IsInf mentioning it, or a Spend taking it.
func validatedBefore(pass *Pass, fd *ast.FuncDecl, target ast.Expr, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Validate":
					if sameExpr(pass.Info, sel.X, target) {
						found = true
					}
				case "Spend":
					for _, arg := range node.Args {
						if sameExpr(pass.Info, ast.Unparen(arg), target) || epsConversionOf(pass.Info, arg, target) {
							found = true
						}
					}
				case "IsNaN", "IsInf":
					for _, arg := range node.Args {
						if exprMentions(pass.Info, arg, target) {
							found = true
						}
					}
				}
			}
		case *ast.BinaryExpr:
			switch node.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				if exprMentions(pass.Info, node.X, target) || exprMentions(pass.Info, node.Y, target) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkSpendAfterWrite flags a Budget.Spend/Accountant.Spend whose
// call site sits after the first Write/WriteHeader on an
// http.ResponseWriter in the same function. The check is positional
// and intraprocedural, matching the handler shape this repo uses: the
// spend is the commit point, so it must precede the first response
// byte — after that a budget error can only be logged, not enforced.
func checkSpendAfterWrite(pass *Pass, fd *ast.FuncDecl) {
	firstWrite := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Write" && sel.Sel.Name != "WriteHeader") {
			return true
		}
		if !isResponseWriter(pass.Info, sel.X) {
			return true
		}
		if !firstWrite.IsValid() || call.Pos() < firstWrite {
			firstWrite = call.Pos()
		}
		return true
	})
	if !firstWrite.IsValid() {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := spendCallee(pass.Info, call); name != "" && call.Pos() > firstWrite {
			pass.Report(call.Pos(),
				"%s after response writing begins: the client has already been answered, so an exhausted budget can no longer stop the release",
				name)
		}
		return true
	})
}

// isResponseWriter reports whether the expression's static type is
// net/http.ResponseWriter.
func isResponseWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// epsConversionOf reports whether arg is a conversion whose operand is
// the target chain (Spend(privacy.Epsilon(eps))).
func epsConversionOf(info *types.Info, arg ast.Expr, target ast.Expr) bool {
	traced := traceEpsExpr(info, arg)
	return traced != nil && sameExpr(info, traced, target)
}

// exprMentions reports whether e contains the target chain as a
// subexpression.
func exprMentions(info *types.Info, e ast.Expr, target ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && sameExpr(info, sub, target) {
			found = true
			return false
		}
		return true
	})
	return found
}
