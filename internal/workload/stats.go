package workload

import (
	"fmt"
	"strings"

	"lrm/internal/mat"
)

// Stats summarizes the properties of a workload that determine which
// mechanism will serve it well: the decision inputs of the paper's
// Section 3.2 (the LM-vs-NOR comparison) and Section 4 (the low-rank
// regime LRM exploits).
type Stats struct {
	// Queries and Domain are m and n.
	Queries, Domain int
	// Rank is the numerical rank of W; Rank ≪ min(m,n) is LRM's regime.
	Rank int
	// Sensitivity is Δ' = max_j Σᵢ|Wᵢⱼ| (drives noise-on-results).
	Sensitivity float64
	// SquaredSum is ΣWᵢⱼ² (drives noise-on-data).
	SquaredSum float64
	// ConditionNumber is λ₁/λᵣ over the non-zero spectrum — the paper's C
	// in Theorem 2; near 1 means the LRM approximation bound is tight.
	ConditionNumber float64
	// LaplaceSSE and ResultsSSE are the analytic expected errors of the
	// two baselines at ε = 1: 2·ΣW² and 2m·Δ'².
	LaplaceSSE, ResultsSSE float64
	// SVD is the thin factorization Analyze computed for Rank and
	// ConditionNumber, retained so planners can hand it to a mechanism's
	// PrepareAnalyzed and keep the whole analyze-then-prepare flow at one
	// factorization. Nil when the Stats were constructed by hand. It
	// factors the workload W the Stats describe; do not pair it with a
	// different workload.
	SVD *mat.SVD
}

// Analyze computes the summary for w (one SVD, reused for rank and
// condition number).
func Analyze(w *Workload) (*Stats, error) {
	if w == nil || w.W == nil || w.W.Rows() == 0 || w.W.Cols() == 0 {
		return nil, fmt.Errorf("workload: empty workload")
	}
	if !w.W.IsFinite() {
		return nil, fmt.Errorf("workload: matrix contains NaN or Inf")
	}
	svd := mat.FactorSVD(w.W)
	delta := w.Sensitivity()
	sq := w.SquaredSum()
	m := w.Queries()
	return &Stats{
		Queries:         m,
		Domain:          w.Domain(),
		Rank:            svd.Rank(),
		Sensitivity:     delta,
		SquaredSum:      sq,
		ConditionNumber: svd.ConditionNumber(),
		LaplaceSSE:      2 * sq,
		ResultsSSE:      2 * float64(m) * delta * delta,
		SVD:             svd,
	}, nil
}

// LowRank reports whether the workload is in LRM's favourable regime:
// rank below 80% of min(m, n).
func (s *Stats) LowRank() bool {
	minDim := s.Queries
	if s.Domain < minDim {
		minDim = s.Domain
	}
	return float64(s.Rank) < 0.8*float64(minDim)
}

// BetterBaseline names the cheaper of the two classical baselines,
// per the Section 3.2 comparison (noise-on-results wins iff
// m·Δ'² < ΣW²).
func (s *Stats) BetterBaseline() string {
	if s.ResultsSSE < s.LaplaceSSE {
		return "noise-on-results"
	}
	return "noise-on-data"
}

// Describe renders a human-readable report, used by cmd/lrmrun -inspect.
func (s *Stats) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries m=%d  domain n=%d  rank %d", s.Queries, s.Domain, s.Rank)
	if s.LowRank() {
		b.WriteString(" (low-rank: LRM's favourable regime)")
	}
	fmt.Fprintf(&b, "\nsensitivity Δ' = %g   ΣW² = %g   condition number C = %.3g\n", s.Sensitivity, s.SquaredSum, s.ConditionNumber)
	fmt.Fprintf(&b, "baseline expected SSE at ε=1: noise-on-data %g, noise-on-results %g → %s wins\n",
		s.LaplaceSSE, s.ResultsSSE, s.BetterBaseline())
	return b.String()
}
