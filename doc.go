// Package lrm implements the Low-Rank Mechanism (LRM) of Yuan et al.
// (PVLDB 5(11), 2012) for answering batches of linear counting queries
// under ε-differential privacy, together with every baseline mechanism
// evaluated in the paper (Laplace, noise-on-results, Privelet wavelets,
// hierarchical trees with consistency, and the matrix mechanism), the
// paper's workload generators, and synthetic stand-ins for its datasets.
//
// Beyond the paper's evaluation, the library implements its named
// related-/future-work directions as extensions: the Fourier perturbation
// algorithm (reference [24]), the compressive mechanism with OMP
// reconstruction (reference [17]), bucketized DP histograms (reference
// [29]), a free consistency projection onto the workload's column space,
// a sparse (CSR + CGLS) strategy-mechanism path for tree/wavelet
// strategies, rank tuning, and a Rényi-DP accountant.
//
// Workloads come in two forms. A dense Workload holds the m×n query
// matrix explicitly; a WorkloadSpec describes the same queries
// structurally (prefix sums, range queries, marginals, and Kronecker
// products of those) and never materializes W — answers, Gram products,
// sensitivity, analysis, planning, and serving all run against the
// structure, so workloads with 10¹²⁺ cells stay megabyte-sized end to
// end. The dense form is the adapter path: AsWorkloadSpec lifts any
// matrix into the spec API unchanged (same fingerprints, same caches),
// and MaterializeSpec lowers small specs back to matrices for code that
// needs them.
//
// For serving, the Engine (NewEngine) amortizes workload decompositions
// across concurrent answer traffic — LRU-cached prepared workloads,
// singleflight preparation, an optional on-disk decomposition cache, and
// per-request budget accounting — and cmd/lrmserve exposes it over HTTP.
// The adaptive planner (Plan, AutoPrepare; EngineOptions.Planner) turns
// the paper's regime analysis into an executable per-workload mechanism
// choice: candidates are scored by their expected-error closed forms and
// the winner serves the workload, at the cost of one factorization.
//
// The root package is a thin facade over the internal packages; see
// facade.go for the public API and examples/ for runnable programs.
package lrm
