package mat

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization A = Q·R for an m×n matrix with
// m ≥ n. Q is stored implicitly as Householder reflectors.
type QR struct {
	qr   *Dense    // reflectors below the diagonal, R on and above
	rdia []float64 // diagonal of R
}

// FactorQR computes the QR factorization of a (rows ≥ cols).
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, errors.New("mat: FactorQR needs rows >= cols")
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.data[i*n+k])
		}
		if norm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.data[k*n+k] < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.data[i*n+k] /= norm
		}
		qr.data[k*n+k]++
		// Apply reflector to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.data[i*n+k] * qr.data[i*n+j]
			}
			s = -s / qr.data[k*n+k]
			for i := k; i < m; i++ {
				qr.data[i*n+j] += s * qr.data[i*n+k]
			}
		}
		rdia[k] = -norm
	}
	return &QR{qr: qr, rdia: rdia}, nil
}

// SolveVec solves the least-squares problem min ‖A·x − b‖₂.
func (f *QR) SolveVec(b []float64) ([]float64, error) {
	m, n := f.qr.Dims()
	if len(b) != m {
		return nil, errors.New("mat: QR SolveVec length mismatch")
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < n; k++ {
		if f.qr.data[k*n+k] == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.data[i*n+k] * y[i]
		}
		s = -s / f.qr.data[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * f.qr.data[i*n+k]
		}
	}
	// Back-substitute R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		if f.rdia[i] == 0 {
			return nil, ErrSingular
		}
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.data[i*n+j] * x[j]
		}
		x[i] = s / f.rdia[i]
	}
	return x, nil
}

// Solve solves min ‖A·X − B‖_F column-by-column.
func (f *QR) Solve(b *Dense) (*Dense, error) {
	m, n := f.qr.Dims()
	if b.rows != m {
		return nil, errors.New("mat: QR Solve dimension mismatch")
	}
	x := New(n, b.cols)
	for j := 0; j < b.cols; j++ {
		col, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		x.SetCol(j, col)
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ for full-column-rank A (m ≥ n);
// for rank-deficient or wide matrices use PseudoInverse.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}
