package mat

import (
	"math"
	"testing"

	"lrm/internal/rng"
)

func TestKronSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 0}})
	b := FromRows([][]float64{{0, 5}, {6, 7}})
	got := Kron(a, b)
	want := FromRows([][]float64{
		{0, 5, 0, 10},
		{6, 7, 12, 14},
		{0, 15, 0, 0},
		{18, 21, 0, 0},
	})
	if !got.Equal(want) {
		t.Fatalf("Kron:\n%v\nwant\n%v", got, want)
	}
}

func TestKronIdentity(t *testing.T) {
	// I_a ⊗ I_b = I_{ab}.
	if !Kron(Eye(3), Eye(4)).Equal(Eye(12)) {
		t.Fatal("identity Kronecker product")
	}
}

func TestKronMixedProductProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD).
	src := rng.New(1)
	randM := func(r, c int) *Dense {
		m := New(r, c)
		for i := range m.data {
			m.data[i] = src.Normal()
		}
		return m
	}
	a, b := randM(2, 3), randM(3, 2)
	c, d := randM(3, 2), randM(2, 4)
	lhs := Mul(Kron(a, b), Kron(c, d))
	rhs := Kron(Mul(a, c), Mul(b, d))
	if !lhs.EqualApprox(rhs, 1e-10) {
		t.Fatal("mixed-product property violated")
	}
}

func TestKronVecIsOuterStructure(t *testing.T) {
	// (A⊗B)·vec works out to the flattened action on a grid: for
	// rank-one x = u⊗v, (A⊗B)(u⊗v) = (Au)⊗(Bv).
	src := rng.New(2)
	a := New(2, 3)
	b := New(3, 4)
	for i := range a.data {
		a.data[i] = src.Normal()
	}
	for i := range b.data {
		b.data[i] = src.Normal()
	}
	u := src.NormalVec(3, 1)
	v := src.NormalVec(4, 1)
	x := make([]float64, 12)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			x[i*4+j] = u[i] * v[j]
		}
	}
	got := MulVec(Kron(a, b), x)
	au := MulVec(a, u)
	bv := MulVec(b, v)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			want := au[i] * bv[j]
			if math.Abs(got[i*3+j]-want) > 1e-10 {
				t.Fatalf("entry (%d,%d): got %g want %g", i, j, got[i*3+j], want)
			}
		}
	}
}

func TestKronEmpty(t *testing.T) {
	got := Kron(New(0, 2), Eye(3))
	if got.Rows() != 0 || got.Cols() != 6 {
		t.Fatalf("empty Kron dims %d×%d", got.Rows(), got.Cols())
	}
}
