package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// NoiseRand enforces the repository's noise-provenance invariant, the
// core correctness property of the paper's mechanism: Laplace noise that
// an adversary can regenerate can be subtracted, which voids the ε-DP
// guarantee entirely. Concretely:
//
//  1. Only internal/rng may import math/rand (it wraps it behind the
//     Source samplers); anywhere else the import is flagged, so noise can
//     never be drawn from an ad-hoc, guessably seeded stream.
//  2. In serving and mechanism code, rng.New / Source.Reseed /
//     lrm.NewSource with a compile-time-constant seed is flagged: a
//     constant seed bakes a replayable noise stream into production
//     code. Packages whose constant seeds are reproducibility features,
//     not noise (benchmarks, experiment figures, dataset synthesis,
//     examples), are exempt.
//  3. Likewise, a non-zero compile-time-constant Seed: field in a
//     composite literal is flagged outside the exempt packages (zero
//     means "unseeded", which the engine resolves from crypto/rand).
//
// Test files are outside the loader's scope, so seeded determinism in
// tests is untouched.
var NoiseRand = &Analyzer{
	Name: "noiserand",
	Doc: "forbids math/rand outside internal/rng and flags constant noise " +
		"seeds (rng.New, Source.Reseed, Seed: fields) in serving code, " +
		"where a guessable seed makes Laplace noise subtractable",
	Run: runNoiseRand,
}

// randImportExempt may import math/rand.
var randImportExempt = map[string]bool{
	"lrm/internal/rng": true,
}

// seedExempt packages may use compile-time-constant seeds: their seeded
// streams regenerate benchmarks, paper figures, and synthetic datasets
// bit-for-bit — a documented reproducibility contract, not a privacy
// release. Fixture packages under testdata keep the checks active so the
// analyzer can be tested.
var seedExempt = []string{
	"lrm/internal/rng",
	"lrm/internal/benchsuite",
	"lrm/internal/experiments",
	"lrm/internal/dataset",
	"lrm/examples/",
}

// seededConstructors are the functions whose first argument is a noise
// seed.
var seededConstructors = map[string]bool{
	"lrm/internal/rng.New":              true,
	"(*lrm/internal/rng.Source).Reseed": true,
	"lrm.NewSource":                     true,
}

func noiseSeedExempt(path string) bool {
	if strings.Contains(path, "lint/testdata/") {
		return false
	}
	for _, e := range seedExempt {
		if path == e || strings.HasSuffix(e, "/") && strings.HasPrefix(path, e) {
			return true
		}
	}
	return false
}

func runNoiseRand(pass *Pass) error {
	path := pass.Pkg.Path()

	// (1) math/rand imports.
	if !randImportExempt[path] {
		for _, file := range pass.Files {
			for _, imp := range file.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Report(imp.Pos(),
						"import of %s outside internal/rng: noise must come from rng.Source so seeds are auditable", p)
				}
			}
		}
	}

	if noiseSeedExempt(path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, node)
				if fn == nil || !seededConstructors[fn.FullName()] || len(node.Args) == 0 {
					return true
				}
				if v, ok := isConstExpr(pass.Info, node.Args[0]); ok {
					pass.Report(node.Pos(),
						"%s with constant seed %s: a fixed seed makes the noise stream replayable (and subtractable)",
						shortKernelName(fn), v)
				}
			case *ast.CompositeLit:
				for _, elt := range node.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || key.Name != "Seed" {
						continue
					}
					if v, ok := isConstExpr(pass.Info, kv.Value); ok && v != "0" {
						pass.Report(kv.Pos(),
							"constant Seed: %s in non-test code: a baked-in seed makes the release replayable (zero means crypto-seeded)", v)
					}
				}
			}
			return true
		})
	}
	return nil
}
