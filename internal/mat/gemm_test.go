package mat

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// naiveMul is the oracle: the textbook triple loop, no blocking, no
// packing, no fused operations.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for t := 0; t < a.cols; t++ {
				s += a.data[i*a.cols+t] * b.data[t*b.cols+j]
			}
			out.data[i*b.cols+j] = s
		}
	}
	return out
}

// approxEqual compares against the oracle with a tolerance scaled to the
// summation length: the blocked kernels accumulate in a different order
// (and fuse multiply-adds on AVX2 hardware), so exact equality with the
// naive loop is not expected — only agreement to roundoff.
func approxEqual(t *testing.T, name string, got, want *Dense, k int) {
	t.Helper()
	if got.rows != want.rows || got.cols != want.cols {
		t.Fatalf("%s: got %d×%d, want %d×%d", name, got.rows, got.cols, want.rows, want.cols)
	}
	tol := 1e-13 * float64(k+1)
	for i, v := range want.data {
		scale := math.Abs(v)
		if scale < 1 {
			scale = 1
		}
		if math.Abs(got.data[i]-v) > tol*scale {
			t.Fatalf("%s: element %d = %v, oracle %v", name, i, got.data[i], v)
		}
	}
}

// gemmShapes crosses the dimension edge cases: micro-kernel multiples,
// odd and prime sizes, single rows/columns, rank-1 inner dimensions, and
// tall/wide panels that exercise partial tiles in every direction.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 1, 7},
	{7, 1, 1},
	{1, 5, 1},
	{4, 8, 8},
	{8, 8, 8},
	{3, 2, 5},
	{5, 4, 3},
	{7, 7, 7},
	{9, 13, 11},
	{17, 23, 19},
	{31, 1, 31},
	{1, 64, 64},
	{64, 64, 1},
	{33, 29, 65},
	{130, 5, 9},
	{9, 5, 130},
	{66, 70, 62},
}

// TestGEMMOracle checks every product kernel against the naive triple
// loop across the shape grid, on both the assembly and the scalar
// micro-kernel paths, with destinations pre-filled with garbage (the
// kernels overwrite rather than accumulate).
func TestGEMMOracle(t *testing.T) {
	type mode struct{ asm, avx512 bool }
	modes := []mode{{false, false}}
	if gemmUseAsm {
		modes = append(modes, mode{true, false})
	}
	if gemmUseAVX512 {
		modes = append(modes, mode{true, true})
	}
	savedAsm, saved512 := gemmUseAsm, gemmUseAVX512
	defer func() { gemmUseAsm, gemmUseAVX512 = savedAsm, saved512 }()
	for _, md := range modes {
		gemmUseAsm, gemmUseAVX512 = md.asm, md.avx512
		for _, sh := range gemmShapes {
			name := fmt.Sprintf("asm=%v/avx512=%v/%dx%dx%d", md.asm, md.avx512, sh.m, sh.k, sh.n)
			a := randDenseSeed(t, sh.m, sh.k, int64(3*sh.m+5*sh.k+7*sh.n))
			b := randDenseSeed(t, sh.k, sh.n, int64(11*sh.m+13*sh.k+17*sh.n))
			garbage := func(r, c int) *Dense {
				g := New(r, c)
				for i := range g.data {
					g.data[i] = math.Inf(1)
				}
				return g
			}

			approxEqual(t, name+"/MulTo", MulTo(garbage(sh.m, sh.n), a, b), naiveMul(a, b), sh.k)

			bt := b.T()
			approxEqual(t, name+"/MulABt", MulABt(a, bt), naiveMul(a, b), sh.k)
			approxEqual(t, name+"/MulABtTo", MulABtTo(garbage(sh.m, sh.n), a, bt), naiveMul(a, b), sh.k)
			at := a.T()
			approxEqual(t, name+"/MulAtB", MulAtB(at, b), naiveMul(a, b), sh.k)
			approxEqual(t, name+"/Gram", GramTo(garbage(sh.k, sh.k), a), naiveMul(at, a), sh.m)
			approxEqual(t, name+"/GramT", GramTTo(garbage(sh.m, sh.m), a), naiveMul(a, at), sh.k)
		}
	}
}

// runTilesWithClaimants executes the same fixed tile grid with exactly n
// concurrent claimants — the moral equivalent of running the pool at
// GOMAXPROCS=n — so tests can prove scheduling does not leak into
// results even on single-CPU machines.
func runTilesWithClaimants(claimants, tiles int, fn func(int)) {
	task := &poolTask{fn: fn, tiles: int64(tiles), done: make(chan struct{}, 1)}
	task.pending.Store(int64(tiles))
	var wg sync.WaitGroup
	for i := 0; i < claimants; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task.run()
		}()
	}
	wg.Wait()
}

// TestGEMMSchedulingInvariance pins the bit-identical guarantee: the same
// product computed with 1, 2, 3 and 8 concurrent tile claimants must
// produce exactly the same bits, because the tile grid and per-tile
// k-order are pure functions of the shapes. This is the GOMAXPROCS=1/2/N
// acceptance check, claimant count playing the role of worker count.
func TestGEMMSchedulingInvariance(t *testing.T) {
	for _, sh := range []struct{ m, k, n int }{{96, 64, 96}, {130, 70, 66}, {64, 128, 256}} {
		a := randDenseSeed(t, sh.m, sh.k, int64(1000+sh.m))
		b := randDenseSeed(t, sh.k, sh.n, int64(2000+sh.n))
		nPanels := (sh.n + gemmNR - 1) / gemmNR
		packed := getPackBuf(nPanels * sh.k * gemmNR)
		for p := 0; p < nPanels; p++ {
			packPanel(packed, b.data, sh.k, sh.n, b.cols, 1, p)
		}
		tilePanels := gemmTileCols / gemmNR
		tR := (sh.m + gemmTileRows - 1) / gemmTileRows
		tC := (nPanels + tilePanels - 1) / tilePanels
		av := aView{data: a.data, row: a.cols, k: 1}

		// Every kernel family available on this host runs the same grid:
		// the scalar kernels, the 4-row asm tier, and (on AVX-512
		// hardware) the 8-row tier with its 4-row fallback.
		sels := []kernelSel{{}}
		if gemmUseAsm {
			sels = append(sels, famKernels(gemmArchFamily, false))
		}
		if gemmUseAVX512 {
			sels = append(sels, famKernels(famAVX512, false))
		}
		for _, sel := range sels {
			ref := New(sh.m, sh.n)
			for tl := 0; tl < tR*tC; tl++ {
				gemmTileRun(tl, ref.data, ref.cols, sh.m, sh.n, sh.k, av, packed, false, tC, sel, nil)
			}
			for _, claimants := range []int{1, 2, 3, 8} {
				got := New(sh.m, sh.n)
				runTilesWithClaimants(claimants, tR*tC, func(tl int) {
					gemmTileRun(tl, got.data, got.cols, sh.m, sh.n, sh.k, av, packed, false, tC, sel, nil)
				})
				if !got.Equal(ref) {
					t.Fatalf("%dx%dx%d: %d claimants disagree bitwise with serial grid", sh.m, sh.k, sh.n, claimants)
				}
			}
		}
		putPackBuf(packed)

		// The public dispatcher must agree with itself across the
		// serial/parallel threshold too.
		saved := setParallelThreshold(1)
		viaPool := Mul(a, b)
		setParallelThreshold(1 << 62)
		viaSerial := Mul(a, b)
		setParallelThreshold(saved)
		if !viaPool.Equal(viaSerial) {
			t.Fatalf("%dx%dx%d: pool and serial dispatch disagree bitwise", sh.m, sh.k, sh.n)
		}
	}
}

// TestGEMMPoolHammer drives many concurrent products of every kernel
// through the persistent pool with the threshold forced to 1 (every
// product schedules tiles). Run under -race it proves tiles never write
// across their bounds and the pack free-list is properly synchronized.
func TestGEMMPoolHammer(t *testing.T) {
	saved := setParallelThreshold(1)
	defer setParallelThreshold(saved)

	a := randDenseSeed(t, 70, 48, 71)
	b := randDenseSeed(t, 48, 66, 72)
	atc := a.T().Clone() // 48×70, so MulAtB(atc, b) is the 70×66 product
	wantMul := Mul(a, b)
	wantAtB := MulAtB(atc, b)
	wantABt := MulABt(a, b.T().Clone())
	wantGram := Gram(a)
	wantGramT := GramT(a)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := New(70, 66)
			for i := 0; i < 6; i++ {
				switch (g + i) % 5 {
				case 0:
					if !MulTo(dst, a, b).Equal(wantMul) {
						t.Error("hammer: MulTo mismatch")
						return
					}
				case 1:
					if !MulAtB(atc, b).Equal(wantAtB) {
						t.Error("hammer: MulAtB mismatch")
						return
					}
				case 2:
					if !MulABt(a, b.T().Clone()).Equal(wantABt) {
						t.Error("hammer: MulABt mismatch")
						return
					}
				case 3:
					if !Gram(a).Equal(wantGram) {
						t.Error("hammer: Gram mismatch")
						return
					}
				case 4:
					if !GramT(a).Equal(wantGramT) {
						t.Error("hammer: GramT mismatch")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
