// Package clean holds noiserand fixtures that must produce no
// diagnostics: seeds that flow in as variables and the zero Seed that
// means "resolve from crypto/rand".
package clean

import "lrm/internal/rng"

func fromFlag(seed int64) *rng.Source {
	return rng.New(seed)
}

func reseed(s *rng.Source, seed int64) {
	s.Reseed(seed)
}

type options struct {
	Seed int64
}

func unseeded() options {
	return options{Seed: 0}
}
