package workload

import (
	"strings"
	"testing"
)

// FuzzParseSpec: whatever garbage the parser accepts must be a
// well-formed spec that round-trips — Describe() re-parses to the same
// digest, digests are deterministic, and the basic shape invariants
// hold. Crashes and unbounded allocations are the other half of the
// contract: the parser's dimension caps must hold for any input.
func FuzzParseSpec(f *testing.F) {
	f.Add("prefix(16)")
	f.Add("ranges(8)")
	f.Add("identity(4)")
	f.Add("total(9)")
	f.Add("marginals(2,3,4;k=2)")
	f.Add("kron:prefix(4)xranges(4)")
	f.Add("kron:prefix(4)xkron:total(2)xidentity(3)")
	f.Add("prefix(")
	f.Add("kron:")
	f.Add("marginals(;k=0)")
	f.Add(strings.Repeat("kron:prefix(2)x", 40) + "prefix(2)")
	f.Add("prefix(99999999999999999999)")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		if s.Queries() <= 0 || s.Domain() <= 0 {
			t.Fatalf("%q parsed to an empty %d×%d spec", in, s.Queries(), s.Domain())
		}
		if s.Sensitivity() <= 0 || s.SquaredSum() <= 0 {
			t.Fatalf("%q: non-positive sensitivity %g or mass %g", in, s.Sensitivity(), s.SquaredSum())
		}
		d1 := s.Digest()
		if d1 == "" || d1 != s.Digest() {
			t.Fatalf("%q: unstable digest", in)
		}
		desc := s.Describe()
		s2, err := ParseSpec(desc)
		if err != nil {
			t.Fatalf("Describe() of %q is unparseable: %q: %v", in, desc, err)
		}
		if s2.Digest() != d1 {
			t.Fatalf("%q: describe/re-parse changed the digest (%q → %s, was %s)", in, desc, s2.Digest(), d1)
		}
		if s2.Describe() != desc {
			t.Fatalf("%q: Describe not a fixed point: %q → %q", in, desc, s2.Describe())
		}
	})
}
