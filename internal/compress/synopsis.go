package compress

import (
	"fmt"
	"math"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/transform"
)

// Synopsis is the compressive-mechanism pipeline for one domain size: a
// fixed Gaussian measurement matrix Φ (k×n) plus the Haar dictionary
// A = Φ·Ψ used for sparse recovery. Build it once per domain with
// NewSynopsis; it can then compress and reconstruct many histograms.
//
// The measurement matrix is data-independent, so publishing it (or its
// seed) costs no privacy.
type Synopsis struct {
	n, k int
	phi  *mat.Dense // k×n measurement matrix, entries N(0, 1/k)
	dict *mat.Dense // k×n dictionary Φ·Ψ in the Haar basis
	sens float64    // L1 sensitivity of x ↦ Φx: max column abs sum of Φ
}

// NewSynopsis builds a synopsis for histograms of length n (a power of
// two, for the Haar dictionary) using k Gaussian measurements. The seed
// fixes Φ so releases are reproducible.
func NewSynopsis(n, k int, seed int64) (*Synopsis, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("compress: domain %d must be a power of two", n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("compress: measurements k=%d out of range [1,%d]", k, n)
	}
	src := rng.New(seed)
	phi := mat.New(k, n)
	sigma := 1 / math.Sqrt(float64(k))
	data := phi.RawData()
	for i := range data {
		data[i] = src.Normal() * sigma
	}
	// Dictionary row i = Haar(Φ row i): (Φ·Ψ)ᵢ· = Ψᵀ·Φᵢ·, and Ψᵀ is the
	// forward Haar transform.
	dict := mat.New(k, n)
	for i := 0; i < k; i++ {
		dict.SetRow(i, transform.Haar(phi.RawRow(i)))
	}
	return &Synopsis{n: n, k: k, phi: phi, dict: dict, sens: mat.MaxColAbsSum(phi)}, nil
}

// Measurements returns k, the synopsis length.
func (s *Synopsis) Measurements() int { return s.k }

// Domain returns n.
func (s *Synopsis) Domain() int { return s.n }

// Sensitivity returns the L1 sensitivity of the measurement map x ↦ Φx:
// the largest column absolute sum of Φ. With k measurements of variance
// 1/k it concentrates around k·E|N(0,1/k)| ≈ √(2k/π).
func (s *Synopsis) Sensitivity() float64 { return s.sens }

// Compress returns the noisy ε-DP synopsis y = Φx + Lap(Δ/ε)^k.
//
//lrm:sanitizer — the measurements carry Laplace noise of scale Δ/ε
func (s *Synopsis) Compress(x []float64, eps float64, src *rng.Source) ([]float64, error) {
	if len(x) != s.n {
		return nil, fmt.Errorf("compress: data length %d != domain %d", len(x), s.n)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("compress: epsilon must be positive, got %g", eps)
	}
	y := mat.MulVec(s.phi, x)
	lam := s.sens / eps
	for i := range y {
		y[i] += src.Laplace(lam)
	}
	return y, nil
}

// Reconstruct recovers a histogram estimate from a (possibly noisy)
// synopsis by OMP in the Haar basis with at most sparsity atoms. tol
// stops recovery early once the residual is below it; pass 0 to always
// use the full atom budget.
func (s *Synopsis) Reconstruct(y []float64, sparsity int, tol float64) ([]float64, error) {
	if len(y) != s.k {
		return nil, fmt.Errorf("compress: synopsis length %d != k %d", len(y), s.k)
	}
	if sparsity < 1 {
		sparsity = s.k / 4
		if sparsity < 1 {
			sparsity = 1
		}
	}
	res, err := OMP(s.dict, y, sparsity, tol)
	if err != nil {
		return nil, err
	}
	return transform.IHaar(res.Expand(s.n)), nil
}

// MeasureExact returns the noiseless measurement Φx (used by tests and
// for offline tuning on public data).
func (s *Synopsis) MeasureExact(x []float64) ([]float64, error) {
	if len(x) != s.n {
		return nil, fmt.Errorf("compress: data length %d != domain %d", len(x), s.n)
	}
	return mat.MulVec(s.phi, x), nil
}
