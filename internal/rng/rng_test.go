package rng

import (
	"math"
	"testing"
)

func TestReproducibility(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Laplace(1) != b.Laplace(1) {
			t.Fatal("same seed produced different Laplace streams")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(1)
	child := s.Split()
	if child == nil {
		t.Fatal("Split returned nil")
	}
	// Children of identical parents are identical.
	s2 := New(1)
	child2 := s2.Split()
	for i := 0; i < 10; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestLaplaceMomentsMatchTheory(t *testing.T) {
	// Var(Lap(b)) = 2b²; mean 0. Check with 200k samples.
	s := New(7)
	const n = 200_000
	const b = 2.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Laplace(b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Laplace mean = %v, want ~0", mean)
	}
	want := 2 * b * b
	if math.Abs(variance-want) > 0.05*want {
		t.Fatalf("Laplace variance = %v, want ~%v", variance, want)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	s := New(1)
	if got := s.Laplace(0); got != 0 {
		t.Fatalf("Laplace(0) = %v", got)
	}
}

func TestLaplaceNegativeScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Laplace(-1) did not panic")
		}
	}()
	New(1).Laplace(-1)
}

func TestLaplaceSymmetry(t *testing.T) {
	s := New(11)
	const n = 100_000
	pos := 0
	for i := 0; i < n; i++ {
		if s.Laplace(1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("P(X>0) = %v, want ~0.5", frac)
	}
}

func TestLaplaceVecLen(t *testing.T) {
	s := New(2)
	v := s.LaplaceVec(17, 1)
	if len(v) != 17 {
		t.Fatalf("LaplaceVec length = %d", len(v))
	}
}

func TestNormalVecVariance(t *testing.T) {
	s := New(3)
	v := s.NormalVec(100_000, 3)
	var sumSq float64
	for _, x := range v {
		sumSq += x * x
	}
	variance := sumSq / float64(len(v))
	if math.Abs(variance-9) > 0.5 {
		t.Fatalf("variance = %v, want ~9", variance)
	}
}

func TestUniformVecRange(t *testing.T) {
	s := New(4)
	v := s.UniformVec(10_000, -2, 5)
	for _, x := range v {
		if x < -2 || x >= 5 {
			t.Fatalf("uniform sample %v outside [-2,5)", x)
		}
	}
}

func TestParetoTail(t *testing.T) {
	s := New(5)
	// All samples >= xm; mean for alpha>1 is alpha·xm/(alpha−1).
	const xm, alpha = 1.0, 2.5
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		x := s.Pareto(xm, alpha)
		if x < xm {
			t.Fatalf("Pareto sample %v < xm", x)
		}
		sum += x
	}
	mean := sum / n
	want := alpha * xm / (alpha - 1)
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(6)
	for _, lambda := range []float64{0.5, 4, 50, 800} {
		var sum float64
		const n = 50_000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestZipfDistribution(t *testing.T) {
	s := New(8)
	z := NewZipf(s, 100, 1.0)
	counts := make([]int, 101)
	const n = 200_000
	for i := 0; i < n; i++ {
		k := z.Sample()
		if k < 1 || k > 100 {
			t.Fatalf("Zipf sample %d out of range", k)
		}
		counts[k]++
	}
	// Rank 1 should be about twice as frequent as rank 2.
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-2) > 0.2 {
		t.Fatalf("count(1)/count(2) = %v, want ~2", ratio)
	}
}
