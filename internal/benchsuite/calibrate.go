// Startup micro-calibration of the GEMM kernel-family dispatch. The mat
// layer classifies every product into a small shape-class grid and runs
// whatever family its dispatch table names; this file fills that table
// from measured timings instead of a hard-coded guess — the
// measured-dispatch idea (pick the kernel per request shape, from
// timings on the machine that will run it), which is safe here only
// because the selectable families are bit-compatible by construction
// (see internal/mat/gemmdispatch.go): a different winner on a different
// host changes speed, never output bits.
package benchsuite

import (
	"time"

	"lrm/internal/mat"
)

// KernelTiming is one calibration measurement: the best observed wall
// time for a shape class's representative product under one family.
type KernelTiming struct {
	Class   string        `json:"class"`
	Family  string        `json:"family"`
	Best    time.Duration `json:"best_ns"`
	Winner  bool          `json:"winner"`
	M, N, K int           `json:"-"`
}

// calibShapes gives each shape class one representative product. Sizes
// are chosen to finish in well under a millisecond per run so the whole
// calibration stays in the low tens of milliseconds, while still being
// large enough that the kernel (not the pack) dominates. The narrow
// classes use the serving batch widths that actually occur: B=1 (a
// mat-vec-like RHS) and B=8 (one packed panel); the wide classes use
// B=64, the engine's batch width. TestCalibShapesCoverClasses pins that
// these shapes hit all six classes, one each.
var calibShapes = []struct{ m, n, k int }{
	{192, 64, 192}, // square-wide
	{192, 8, 192},  // square-narrow
	{512, 64, 48},  // tall-wide
	{512, 8, 48},   // tall-narrow
	{48, 64, 512},  // deep-wide
	{48, 1, 512},   // deep-narrow
}

// calibRounds is how many timed runs each (class, family) pair gets; the
// minimum is kept, which is the standard way to strip scheduler noise
// from a microbenchmark.
const calibRounds = 5

// CalibrateKernels times every selectable kernel family on one
// representative product per shape class and installs the winner in the
// mat dispatch table. It returns the measurements (winner flagged per
// class) so callers can record them — lrmbench embeds them in the perf
// trajectory, lrmserve logs them at startup.
//
// On hosts with a single family (no AVX-512, or no asm at all) there is
// nothing to choose: the table is left at its reset default and the
// measurements (still taken, still recorded) are all winners. The
// function never panics on missing tiers — it only consults
// mat.KernelFamilies, which reports what this host can actually run.
func CalibrateKernels() []KernelTiming {
	families := mat.KernelFamilies()
	out := make([]KernelTiming, 0, len(calibShapes)*len(families))
	for _, sh := range calibShapes {
		class := mat.KernelClassFor(sh.m, sh.n, sh.k)
		a, b, dst := calibOperands(sh.m, sh.n, sh.k)
		bestFam := ""
		var bestTime time.Duration
		classStart := len(out)
		for _, fam := range families {
			if len(families) > 1 {
				if err := mat.SetKernelFamily(class, fam); err != nil {
					continue
				}
			}
			mat.MulTo(dst, a, b) // warm: pack buffers, page in operands
			best := time.Duration(1<<63 - 1)
			for r := 0; r < calibRounds; r++ {
				start := time.Now()
				mat.MulTo(dst, a, b)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			out = append(out, KernelTiming{Class: class, Family: fam, Best: best, M: sh.m, N: sh.n, K: sh.k})
			if bestFam == "" || best < bestTime {
				bestFam, bestTime = fam, best
			}
		}
		if bestFam == "" {
			continue
		}
		for i := classStart; i < len(out); i++ {
			out[i].Winner = out[i].Family == bestFam
		}
		if len(families) > 1 {
			// Install the measured winner; SetKernelFamily only accepts
			// selectable (bit-compatible) families, so this cannot change
			// results.
			_ = mat.SetKernelFamily(class, bestFam)
		}
	}
	return out
}

// calibOperands builds deterministic m×k and k×n operands plus an m×n
// destination for one calibration product.
func calibOperands(m, n, k int) (a, b, dst *mat.Dense) {
	a = mat.New(m, k)
	ad := a.RawData()
	for i := range ad {
		ad[i] = float64(i%13) * 0.25
	}
	b = mat.New(k, n)
	bd := b.RawData()
	for i := range bd {
		bd[i] = float64(i%11) * 0.5
	}
	return a, b, mat.New(m, n)
}
