package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Program is every package of one load, indexed for interprocedural
// analysis: the dataflow analyzers (noiseflow, lockguard) compose
// per-function summaries over the static call graph, which requires
// resolving a callee's declaration — and, for interface calls, the set
// of concrete implementations — across package boundaries. All packages
// share one *token.FileSet, so positions compare globally.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// funcs maps every function/method declared in the loaded packages,
	// keyed by funcKey, to its declaration and owning package. Bodyless
	// entries (assembly-backed prototypes) have Decl.Body == nil.
	//
	// The string key matters: the same function is a different
	// *types.Func object depending on whether it was seen by
	// type-checking its own package from source or by importing another
	// package's export data, so object pointers cannot be map keys
	// across package boundaries.
	funcs map[string]*FuncInfo

	// methodIndex groups concrete (non-interface) methods by name, the
	// candidate pool interface-call resolution filters with
	// types.Implements.
	methodIndex map[string][]*types.Func
}

// FuncInfo is one declared function or method.
type FuncInfo struct {
	Fn   *types.Func // the source-checked object
	Decl *ast.FuncDecl
	Pkg  *Package
}

// funcKey names a function identically whether its *types.Func came from
// source type-checking or from gc export data: package path, receiver
// type name (for methods), and function name.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := derefType(sig.Recv().Type()).(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
		return pkg + ".?." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// BuildProgram indexes a set of loaded packages. LoadProgram is the
// cached entry point; tests that mutate ASTs build their own.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		funcs:       make(map[string]*FuncInfo),
		methodIndex: make(map[string][]*types.Func),
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	p.Pkgs = pkgs
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.funcs[funcKey(fn)] = &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				if fd.Recv != nil {
					p.methodIndex[fn.Name()] = append(p.methodIndex[fn.Name()], fn)
				}
			}
		}
	}
	return p
}

// LoadProgram loads patterns (memoized, like LoadPackages) and indexes
// the result. The index itself is rebuilt per call — it is cheap next
// to the load — so analyzers may not mutate it.
func LoadProgram(patterns []string) (*Program, error) {
	pkgs, err := LoadPackages(patterns)
	if err != nil {
		return nil, err
	}
	return BuildProgram(pkgs), nil
}

// FuncOf returns the declaration of fn, or nil when fn was not declared
// in the loaded packages (stdlib, export-data-only dependencies). fn may
// be either the source-checked or an imported object.
func (p *Program) FuncOf(fn *types.Func) *FuncInfo {
	return p.funcs[funcKey(fn)]
}

// Implementations resolves a call through interface method iface to the
// concrete methods that may run: every method of the same name, declared
// in the loaded packages, whose receiver type satisfies the interface.
// An empty result means every implementation lives outside the load (or
// the set is empty), which callers must treat conservatively.
func (p *Program) Implementations(iface *types.Func) []*types.Func {
	sig, ok := iface.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	ifaceType, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*types.Func
	for _, cand := range p.methodIndex[iface.Name()] {
		recv := cand.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		if types.Implements(t, ifaceType) || types.Implements(types.NewPointer(derefType(t)), ifaceType) {
			impls = append(impls, cand)
		}
	}
	return impls
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// staticCallee resolves a call expression to its target: a declared
// function (possibly bodyless), or — through an interface receiver — the
// set of loaded implementations. ok is false for builtins, type
// conversions, and dynamic function values.
func (p *Program) staticCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, impls []*types.Func, ok bool) {
	fn = calleeFunc(info, call)
	if fn == nil {
		return nil, nil, false
	}
	if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return fn, p.Implementations(fn), true
		}
	}
	return fn, nil, true
}
