package mechanism

import (
	"fmt"
	"math"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Wavelet is the paper's WM baseline: Privelet (Xiao, Wang and Gehrke,
// ICDE 2010). The histogram is transformed into Haar wavelet
// coefficients, each coefficient is perturbed with Laplace noise whose
// scale is calibrated per level so the whole release costs ε, and the
// noisy histogram is reconstructed by the inverse transform. Range-query
// noise then grows with log³n instead of the range length.
type Wavelet struct{}

// Name implements Mechanism.
func (Wavelet) Name() string { return "WM" }

// Prepare implements Mechanism.
func (Wavelet) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	n := w.Domain()
	padded := 1
	h := 0
	for padded < n {
		padded *= 2
		h++
	}
	return &waveletPrepared{w: w, n: n, padded: padded, levels: h}, nil
}

type waveletPrepared struct {
	w      *workload.Workload
	n      int // true domain size
	padded int // next power of two
	levels int // h = log2(padded)
}

// coefficientScales returns the Laplace scale for the base coefficient c0
// and for each height j = 1..h. Changing one unit count by 1 changes c0
// by 1/N and the ancestor coefficient at height j by 1/2ʲ; with scales
// λ0 = (1+h)/(ε·N) and λj = (1+h)/(ε·2ʲ) the total privacy cost is
// (1/N)/λ0 + Σⱼ (1/2ʲ)/λⱼ = ε(1 + h)/(1+h) = ε.
func (p *waveletPrepared) coefficientScales(eps privacy.Epsilon) (lam0 float64, lam []float64) {
	e := float64(eps)
	c := float64(1+p.levels) / e
	lam0 = c / float64(p.padded)
	lam = make([]float64, p.levels+1)
	for j := 1; j <= p.levels; j++ {
		lam[j] = c / float64(int(1)<<j)
	}
	return lam0, lam
}

// Answer implements Prepared.
//
//lrm:sanitizer — every wavelet coefficient is Laplace-perturbed
func (p *waveletPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != p.n {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.n)
	}
	n := p.padded
	// Forward transform: subtree sums bottom-up in a heap-ordered array
	// (node i has children 2i and 2i+1; leaves live at [n, 2n)).
	sums := make([]float64, 2*n)
	copy(sums[n:n+p.n], x)
	for i := n - 1; i >= 1; i-- {
		sums[i] = sums[2*i] + sums[2*i+1]
	}
	lam0, lam := p.coefficientScales(eps)
	// Noisy coefficients: coeff[i] for internal node i is
	// (sumLeft − sumRight)/size(i); heights decrease with depth.
	coeff := make([]float64, n) // index 1..n−1 used
	for i := 1; i < n; i++ {
		size := n / sizeIndex(i)
		j := log2(size) // height of node i
		coeff[i] = (sums[2*i]-sums[2*i+1])/float64(size) + src.Laplace(lam[j])
	}
	c0 := sums[1]/float64(n) + src.Laplace(lam0)

	// Inverse transform: propagate averages down the tree.
	avg := make([]float64, 2*n)
	avg[1] = c0
	for i := 1; i < n; i++ {
		avg[2*i] = avg[i] + coeff[i]
		avg[2*i+1] = avg[i] - coeff[i]
	}
	xhat := avg[n : n+p.n]
	return p.w.Answer(xhat), nil
}

// sizeIndex returns the first index of node i's depth row (a power of 2),
// so n/sizeIndex(i) is the number of leaves under node i.
func sizeIndex(i int) int {
	s := 1
	for s*2 <= i {
		s *= 2
	}
	return s
}

func log2(v int) int {
	j := 0
	for v > 1 {
		v >>= 1
		j++
	}
	return j
}

// ExpectedSSE implements Prepared. The reconstruction noise is
// x̂ − x = η0·1 + Σ_v ηv·g_v with g_v = +1 on v's left half, −1 on its
// right half, so SSE = 2λ0²·‖W·1‖² + Σ_v 2λ_{h(v)}²·‖W·g_v‖², computed
// with per-row prefix sums in O(m·n).
func (p *waveletPrepared) ExpectedSSE(eps privacy.Epsilon) float64 {
	lam0, lam := p.coefficientScales(eps)
	n := p.padded
	m := p.w.Queries()
	// Prefix sums of each workload row over the padded domain.
	prefix := make([][]float64, m)
	for q := 0; q < m; q++ {
		row := p.w.W.RawRow(q)
		ps := make([]float64, n+1)
		for j := 0; j < p.n; j++ {
			ps[j+1] = ps[j] + row[j]
		}
		for j := p.n; j < n; j++ {
			ps[j+1] = ps[j]
		}
		prefix[q] = ps
	}
	rangeSum := func(q, lo, hi int) float64 { // [lo, hi)
		return prefix[q][hi] - prefix[q][lo]
	}
	var sse float64
	// Base coefficient: g = all ones.
	for q := 0; q < m; q++ {
		v := rangeSum(q, 0, n)
		sse += 2 * lam0 * lam0 * v * v
	}
	// Internal nodes in heap order: node i covers [start, start+size).
	for i := 1; i < n; i++ {
		size := n / sizeIndex(i)
		start := (i - sizeIndex(i)) * size
		half := size / 2
		j := log2(size)
		for q := 0; q < m; q++ {
			v := rangeSum(q, start, start+half) - rangeSum(q, start+half, start+size)
			sse += 2 * lam[j] * lam[j] * v * v
		}
	}
	if math.IsNaN(sse) {
		return NoAnalyticSSE()
	}
	return sse
}
