package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"lrm/internal/core"
	"lrm/internal/engine"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Options{
		Mechanism: mechanism.LRM{Options: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, handlerConfig{mech: "LRM", maxBody: 1 << 20}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func postAnswer(t *testing.T, url string, body answerRequest) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/answer", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestServeAnswer(t *testing.T) {
	srv, eng := newTestServer(t)
	req := answerRequest{
		Workload:   [][]float64{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
		Histograms: [][]float64{{10, 20, 30}, {5, 5, 5}},
		Eps:        0.5,
		Seed:       3,
	}
	resp, body := postAnswer(t, srv.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out answerResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if len(out.Answers) != 2 || len(out.Answers[0]) != 3 {
		t.Fatalf("answers shape %v, want 2×3", out.Answers)
	}
	if len(out.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q, want 64 hex chars", out.Fingerprint)
	}
	// Identical request: cache hit, bit-identical release at the same seed.
	resp2, body2 := postAnswer(t, srv.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	var out2 answerResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, out2) {
		t.Fatal("identical seeded requests produced different releases")
	}
	if st := eng.Stats(); st.Prepares != 1 || st.Hits < 1 {
		t.Fatalf("stats = %+v, want one prepare and a cache hit", st)
	}
}

func TestServeAnswerErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name   string
		req    answerRequest
		status int
	}{
		{"empty workload", answerRequest{Histograms: [][]float64{{1}}, Eps: 1}, http.StatusBadRequest},
		{"ragged workload", answerRequest{Workload: [][]float64{{1, 2}, {3}}, Histograms: [][]float64{{1, 2}}, Eps: 1}, http.StatusBadRequest},
		{"bad eps", answerRequest{Workload: [][]float64{{1}}, Histograms: [][]float64{{1}}, Eps: 0}, http.StatusBadRequest},
		{"wrong histogram length", answerRequest{Workload: [][]float64{{1, 2}}, Histograms: [][]float64{{1}}, Eps: 1}, http.StatusBadRequest},
		{"budget exhausted", answerRequest{
			Workload:   [][]float64{{1, 0}},
			Histograms: [][]float64{{1, 2}, {3, 4}, {5, 6}},
			Eps:        0.5, Budget: 1.0,
		}, http.StatusTooManyRequests},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postAnswer(t, srv.URL, tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, body, tc.status)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body %s not {\"error\": ...}", body)
			}
		})
	}
	// Unknown fields are rejected (catches schema typos like "epsilon").
	resp, err := http.Post(srv.URL+"/answer", "application/json",
		bytes.NewReader([]byte(`{"workload":[[1]],"histograms":[[1]],"epsilon":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestServeStatsAndHealth(t *testing.T) {
	srv, _ := newTestServer(t)
	postAnswer(t, srv.URL, answerRequest{
		Workload:   [][]float64{{1, 1}},
		Histograms: [][]float64{{2, 3}},
		Eps:        1,
	})
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mechanism != "LRM" || st.Engine.Requests != 1 || st.Engine.Answers != 1 {
		t.Fatalf("stats = %+v, want LRM with one answered request", st)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
	// Method checks.
	mresp, err := http.Get(srv.URL + "/answer")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /answer status %d, want 405", mresp.StatusCode)
	}
}

// TestServeRejectsBadEpsilonBeforeEngine pins the validation order: a
// zero/negative/non-finite (or absent) eps is rejected with 400 straight
// off the decoded body — before the workload is parsed, hashed, or the
// engine touched, which the engine's untouched Requests counter proves.
func TestServeRejectsBadEpsilonBeforeEngine(t *testing.T) {
	srv, eng := newTestServer(t)
	workload := [][]float64{{1, 0}, {1, 1}}
	hist := [][]float64{{3, 4}}
	cases := []struct {
		name string
		body string
	}{
		{"zero", `{"workload":[[1,0],[1,1]],"histograms":[[3,4]],"eps":0}`},
		{"omitted", `{"workload":[[1,0],[1,1]],"histograms":[[3,4]]}`},
		{"negative", `{"workload":[[1,0],[1,1]],"histograms":[[3,4]],"eps":-0.5}`},
		{"huge non-finite-ish", `{"workload":[[1,0],[1,1]],"histograms":[[3,4]],"eps":1e300}`},
		// JSON cannot carry NaN/Inf literals; they must die in decoding,
		// still 400, still before the engine.
		{"nan literal", `{"workload":[[1,0],[1,1]],"histograms":[[3,4]],"eps":NaN}`},
		{"inf literal", `{"workload":[[1,0],[1,1]],"histograms":[[3,4]],"eps":Infinity}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/answer", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			var e map[string]string
			decErr := json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if decErr != nil || e["error"] == "" {
				t.Fatalf("error body not {\"error\": ...}: %v", decErr)
			}
		})
	}
	if st := eng.Stats(); st.Requests != 0 {
		t.Fatalf("engine saw %d requests; bad-eps rejection must happen before the engine", st.Requests)
	}
	// Sanity: the same shape with a valid eps goes through.
	resp, body := postAnswer(t, srv.URL, answerRequest{Workload: workload, Histograms: hist, Eps: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control request failed: %d (%s)", resp.StatusCode, body)
	}
}

// TestServeAuto drives the handler over a plan-aware engine: answering
// works, and GET /stats surfaces the per-workload plan decisions.
func TestServeAuto(t *testing.T) {
	eng, err := engine.New(engine.Options{
		Planner: &plan.Options{LRM: core.Options{MaxOuterIter: 5, MaxInnerIter: 2, MaxNesterovIter: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, handlerConfig{mech: "auto", maxBody: 1 << 20}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	// A rank-1 workload (every query a multiple of the total) plans lrm; the
	// identity workload is full-rank and must plan a baseline.
	lowRank := answerRequest{
		Workload:   [][]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}},
		Histograms: [][]float64{{5, 6, 7}},
		Eps:        0.5,
	}
	fullRank := answerRequest{
		Workload:   [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		Histograms: [][]float64{{5, 6, 7}},
		Eps:        0.5,
	}
	for _, req := range []answerRequest{lowRank, fullRank} {
		resp, body := postAnswer(t, srv.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mechanism != "auto" || st.Engine.Planned != 2 {
		t.Fatalf("stats %+v, want mechanism auto with 2 planned workloads", st)
	}
	byMech := map[string]int{}
	for _, d := range st.Plans {
		byMech[d.Mechanism]++
		if d.Digest == "" || d.Summary == "" || len(d.Fingerprint) != 64 {
			t.Fatalf("incomplete plan decision %+v", d)
		}
	}
	if byMech["lrm"] != 1 || len(st.Plans) != 2 {
		t.Fatalf("plan decisions %+v, want one lrm and one baseline", st.Plans)
	}
}

// TestSplitCandidates covers the -plan-candidates parser.
func TestSplitCandidates(t *testing.T) {
	if got := splitCandidates(""); got != nil {
		t.Fatalf("empty list → %v, want nil (planner default)", got)
	}
	if got := splitCandidates(" lrm, lm ,nor,"); !reflect.DeepEqual(got, []string{"lrm", "lm", "nor"}) {
		t.Fatalf("parsed %v", got)
	}
}

// TestServeSpec: POST /answer with an implicit spec — served without a
// matrix, fingerprinted in the spec namespace, deterministic at a seed.
func TestServeSpec(t *testing.T) {
	srv, eng := newTestServer(t)
	req := answerRequest{
		Spec:       "kron:prefix(4)xprefix(4)",
		Histograms: [][]float64{make([]float64, 16)},
		Eps:        0.5,
		Seed:       9,
	}
	for i := range req.Histograms[0] {
		req.Histograms[0][i] = float64(i)
	}
	resp, body := postAnswer(t, srv.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out answerResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if len(out.Answers) != 1 || len(out.Answers[0]) != 16 {
		t.Fatalf("answers shape %v, want 1×16", out.Answers)
	}
	if !strings.HasPrefix(out.Fingerprint, "spec-") {
		t.Fatalf("fingerprint %q not in the spec namespace", out.Fingerprint)
	}
	resp2, body2 := postAnswer(t, srv.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	var out2 answerResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, out2) {
		t.Fatal("identical seeded spec requests produced different releases")
	}
	if st := eng.Stats(); st.Implicit != 2 || st.Prepares != 1 {
		t.Fatalf("stats = %+v, want 2 implicit requests and 1 prepare", st)
	}
}

// TestServeSpecErrors: malformed, unknown, or ambiguous spec requests
// die with 400 before any engine work.
func TestServeSpecErrors(t *testing.T) {
	srv, eng := newTestServer(t)
	cases := []answerRequest{
		{Spec: "prefix(", Histograms: [][]float64{{1}}, Eps: 1},
		{Spec: "bogus(16)", Histograms: [][]float64{make([]float64, 16)}, Eps: 1},
		{Spec: "kron:prefix(4)xbogus(4)", Histograms: [][]float64{make([]float64, 16)}, Eps: 1},
		{Spec: "prefix(0)", Histograms: [][]float64{{}}, Eps: 1},
		{Spec: "prefix(4)", Workload: [][]float64{{1, 0, 0, 0}}, Histograms: [][]float64{{1, 2, 3, 4}}, Eps: 1},
		{Spec: "prefix(4)", Histograms: [][]float64{{1, 2, 3}}, Eps: 1}, // wrong domain
	}
	for _, rq := range cases {
		resp, body := postAnswer(t, srv.URL, rq)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: status %d (%s), want 400", rq.Spec, resp.StatusCode, body)
		}
	}
	if st := eng.Stats(); st.Prepares != 0 {
		t.Fatalf("rejected spec requests reached the engine: %+v", st)
	}
}
