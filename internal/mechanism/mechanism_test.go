package mechanism

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// empiricalSSE estimates the expected SSE of a prepared mechanism by
// Monte Carlo.
func empiricalSSE(t *testing.T, p Prepared, w *workload.Workload, x []float64, eps privacy.Epsilon, trials int, src *rng.Source) float64 {
	t.Helper()
	exact := w.Answer(x)
	var total float64
	for i := 0; i < trials; i++ {
		noisy, err := p.Answer(x, eps, src)
		if err != nil {
			t.Fatal(err)
		}
		for j := range noisy {
			d := noisy[j] - exact[j]
			total += d * d
		}
	}
	return total / float64(trials)
}

func TestLaplaceDataAnalyticVsEmpirical(t *testing.T) {
	w := workload.Range(20, 32, rng.New(1))
	p, err := LaplaceData{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(2).UniformVec(32, 0, 50)
	got := empiricalSSE(t, p, w, x, 1, 3000, rng.New(3))
	want := p.ExpectedSSE(1)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("empirical %v vs analytic %v", got, want)
	}
}

func TestLaplaceResultsAnalyticVsEmpirical(t *testing.T) {
	w := workload.Range(20, 32, rng.New(4))
	p, err := LaplaceResults{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(5).UniformVec(32, 0, 50)
	got := empiricalSSE(t, p, w, x, 0.5, 3000, rng.New(6))
	want := p.ExpectedSSE(0.5)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("empirical %v vs analytic %v", got, want)
	}
}

func TestLaplaceCrossover(t *testing.T) {
	// Section 3.2: NOR beats LM iff m·max_j ΣᵢWᵢⱼ² < ΣᵢⱼWᵢⱼ², which can
	// only happen for m < n. Verify both regimes.
	few := workload.FromMatrix("few", mat.FromRows([][]float64{
		{1, 1, 1, 1, 1, 1, 1, 1}, // single total query: NOR wins
	}))
	pd, _ := LaplaceData{}.Prepare(few)
	pr, _ := LaplaceResults{}.Prepare(few)
	if pr.ExpectedSSE(1) >= pd.ExpectedSSE(1) {
		t.Fatal("NOR should beat LM on a single total query")
	}
	many := workload.AllRanges(6) // m=21 > n=6: LM wins
	pd2, _ := LaplaceData{}.Prepare(many)
	pr2, _ := LaplaceResults{}.Prepare(many)
	if pd2.ExpectedSSE(1) >= pr2.ExpectedSSE(1) {
		t.Fatal("LM should beat NOR when m >> n")
	}
}

func TestWaveletUnbiased(t *testing.T) {
	w := workload.Range(10, 24, rng.New(7)) // non-power-of-two domain
	p, err := Wavelet{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(8).UniformVec(24, 0, 100)
	exact := w.Answer(x)
	src := rng.New(9)
	const trials = 20_000
	sums := make([]float64, len(exact))
	for i := 0; i < trials; i++ {
		noisy, err := p.Answer(x, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range noisy {
			sums[j] += v
		}
	}
	for j, want := range exact {
		mean := sums[j] / trials
		if math.Abs(mean-want) > 0.03*math.Abs(want)+3 {
			t.Fatalf("mean[%d] = %v, exact %v", j, mean, want)
		}
	}
}

func TestWaveletAnalyticVsEmpirical(t *testing.T) {
	w := workload.Range(16, 32, rng.New(10))
	p, err := Wavelet{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 32)
	got := empiricalSSE(t, p, w, x, 1, 4000, rng.New(11))
	want := p.ExpectedSSE(1)
	if math.IsNaN(want) {
		t.Fatal("wavelet analytic SSE is NaN")
	}
	if math.Abs(got-want) > 0.12*want {
		t.Fatalf("empirical %v vs analytic %v", got, want)
	}
}

func TestWaveletBeatsLaplaceOnLargeRangeWorkload(t *testing.T) {
	// Privelet's regime: range queries over a large domain.
	n := 2048
	w := workload.Range(64, n, rng.New(12))
	wm, err := Wavelet{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := LaplaceData{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if wm.ExpectedSSE(1) >= lm.ExpectedSSE(1) {
		t.Fatalf("WM %v not better than LM %v at n=%d", wm.ExpectedSSE(1), lm.ExpectedSSE(1), n)
	}
}

func TestHierarchicalUnbiased(t *testing.T) {
	w := workload.Range(8, 20, rng.New(13)) // padding exercised (20 < 32)
	p, err := Hierarchical{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.New(14).UniformVec(20, 0, 100)
	exact := w.Answer(x)
	src := rng.New(15)
	const trials = 20_000
	sums := make([]float64, len(exact))
	for i := 0; i < trials; i++ {
		noisy, err := p.Answer(x, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range noisy {
			sums[j] += v
		}
	}
	for j, want := range exact {
		mean := sums[j] / trials
		if math.Abs(mean-want) > 0.03*math.Abs(want)+5 {
			t.Fatalf("mean[%d] = %v, exact %v", j, mean, want)
		}
	}
}

func TestHierarchicalConsistencyReducesError(t *testing.T) {
	// The consistency step is a least-squares projection, so the total
	// error on the identity workload must not exceed the naive leaf-only
	// estimate (which costs the same budget but ignores internal nodes).
	n := 64
	w := workload.Identity(n)
	p, err := Hierarchical{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	hmSSE := empiricalSSE(t, p, w, x, 1, 2000, rng.New(16))
	// Naive: each leaf with Lap(ℓ/ε), ℓ = log2(64)+1 = 7 levels.
	levels := 7.0
	naive := 2 * float64(n) * levels * levels
	if hmSSE >= naive {
		t.Fatalf("consistency SSE %v not below naive per-leaf %v", hmSSE, naive)
	}
}

func TestHierarchicalBranchingFactor(t *testing.T) {
	w := workload.Range(10, 27, rng.New(17))
	for _, b := range []int{2, 3, 4} {
		p, err := Hierarchical{Branch: b}.Prepare(w)
		if err != nil {
			t.Fatalf("branch %d: %v", b, err)
		}
		if _, err := p.Answer(make([]float64, 27), 1, rng.New(18)); err != nil {
			t.Fatalf("branch %d: %v", b, err)
		}
	}
	if _, err := (Hierarchical{Branch: 1}).Prepare(w); err == nil {
		t.Fatal("branch 1 accepted")
	}
}

func TestStrategyPreparedIdentityMatchesLaplaceData(t *testing.T) {
	// With strategy A = I the generic template degenerates to LM.
	w := workload.Range(12, 16, rng.New(19))
	sp, err := NewStrategyPrepared(w, mat.Eye(16))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := LaplaceData{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.ExpectedSSE(1)-lm.ExpectedSSE(1)) > 1e-6*lm.ExpectedSSE(1) {
		t.Fatalf("strategy-I SSE %v != LM SSE %v", sp.ExpectedSSE(1), lm.ExpectedSSE(1))
	}
}

func TestStrategyPreparedEmpiricalMatchesAnalytic(t *testing.T) {
	w := workload.Range(10, 12, rng.New(20))
	// A random full-rank strategy.
	src := rng.New(21)
	a := mat.New(12, 12)
	for i := range a.RawData() {
		a.RawData()[i] = src.Normal()
	}
	sp, err := NewStrategyPrepared(w, a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 12)
	got := empiricalSSE(t, sp, w, x, 1, 4000, rng.New(22))
	want := sp.ExpectedSSE(1)
	if math.Abs(got-want) > 0.12*want {
		t.Fatalf("empirical %v vs analytic %v", got, want)
	}
}

func TestStrategyRejectsBadInput(t *testing.T) {
	w := workload.Identity(4)
	if _, err := NewStrategyPrepared(w, mat.New(3, 5)); err == nil {
		t.Fatal("mismatched strategy accepted")
	}
	if _, err := NewStrategyPrepared(w, mat.New(4, 4)); err == nil {
		t.Fatal("zero strategy accepted")
	}
}

func TestMatrixMechanismRuns(t *testing.T) {
	w := workload.Range(8, 16, rng.New(23))
	p, err := MatrixMechanism{MaxIter: 30}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	sse := p.ExpectedSSE(1)
	if math.IsNaN(sse) || math.IsInf(sse, 0) || sse <= 0 {
		t.Fatalf("MM SSE = %v", sse)
	}
	x := rng.New(24).UniformVec(16, 0, 10)
	out, err := p.Answer(x, 1, rng.New(25))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("answer length %d", len(out))
	}
}

func TestMatrixMechanismWorseThanLRMOnLowRank(t *testing.T) {
	// The paper's headline: MM is not competitive with LRM.
	w := workload.Related(16, 16, 2, rng.New(26))
	mm, err := MatrixMechanism{MaxIter: 40}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	lrm, err := LRM{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if lrm.ExpectedSSE(1) >= mm.ExpectedSSE(1) {
		t.Fatalf("LRM %v not better than MM %v", lrm.ExpectedSSE(1), mm.ExpectedSSE(1))
	}
}

func TestLRMAdapterMatchesCore(t *testing.T) {
	w := workload.Related(12, 14, 2, rng.New(27))
	p, err := LRM{}.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 14)
	got := empiricalSSE(t, p, w, x, 1, 3000, rng.New(28))
	want := p.ExpectedSSE(1)
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("empirical %v vs analytic %v", got, want)
	}
}

func TestMechanismNames(t *testing.T) {
	for _, tc := range []struct {
		m    Mechanism
		want string
	}{
		{LaplaceData{}, "LM"},
		{LaplaceResults{}, "NOR"},
		{Wavelet{}, "WM"},
		{Hierarchical{}, "HM"},
		{MatrixMechanism{}, "MM"},
		{LRM{}, "LRM"},
	} {
		if got := tc.m.Name(); got != tc.want {
			t.Fatalf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestPrepareNilWorkload(t *testing.T) {
	for _, m := range []Mechanism{LaplaceData{}, LaplaceResults{}, Wavelet{}, Hierarchical{}, MatrixMechanism{}, LRM{}} {
		if _, err := m.Prepare(nil); err == nil {
			t.Fatalf("%s accepted nil workload", m.Name())
		}
	}
}

func TestAnswerWrongLength(t *testing.T) {
	w := workload.Identity(8)
	for _, m := range []Mechanism{LaplaceData{}, LaplaceResults{}, Wavelet{}, Hierarchical{}} {
		p, err := m.Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Answer(make([]float64, 7), 1, rng.New(1)); err == nil {
			t.Fatalf("%s accepted wrong data length", m.Name())
		}
	}
}
