package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
)

// A Kronecker workload W = W₁⊗…⊗W_d decomposes factor by factor: if
// Wᵢ ≈ Bᵢ·Lᵢ then W ≈ (⊗Bᵢ)·(⊗Lᵢ), and both mechanism quantities
// multiply — Φ(⊗Bᵢ) = ΠΦ(Bᵢ) (Frobenius norms multiply) and
// Δ(⊗Lᵢ) = ΠΔ(Lᵢ) (every column of ⊗Lᵢ is a Kronecker product of
// factor columns, so its L1 norm is the product of theirs). Running
// Algorithm 1 on each small factor therefore yields a valid low-rank
// strategy for the full product at the cost of the factors alone: the
// m×n matrix is never formed, stored, or multiplied.

// KronDecomposition is the factored form of W ≈ B·L for a Kronecker
// workload: one Decomposition per factor, in workload factor order.
type KronDecomposition struct {
	Factors []*Decomposition
}

// DecomposeKron runs Decompose on each factor. opts applies per factor
// (in particular Rank: zero keeps the per-factor 1.2·rank default;
// a positive value caps each factor's inner dimension, not the
// product's).
func DecomposeKron(factors []*mat.Dense, opts Options) (*KronDecomposition, error) {
	if len(factors) == 0 {
		return nil, errors.New("core: DecomposeKron with no factors")
	}
	out := &KronDecomposition{Factors: make([]*Decomposition, len(factors))}
	for i, f := range factors {
		d, err := Decompose(f, opts)
		if err != nil {
			return nil, fmt.Errorf("core: kron factor %d: %w", i+1, err)
		}
		out.Factors[i] = d
	}
	return out, nil
}

// Scale returns Φ(⊗Bᵢ) = Π Φ(Bᵢ).
func (d *KronDecomposition) Scale() float64 {
	p := 1.0
	for _, f := range d.Factors {
		p *= f.Scale()
	}
	return p
}

// Sensitivity returns Δ(⊗Lᵢ) = Π Δ(Lᵢ). Factor decompositions are
// normalized to Δ = 1, so this is 1 up to roundoff for Decompose output.
func (d *KronDecomposition) Sensitivity() float64 {
	p := 1.0
	for _, f := range d.Factors {
		p *= f.Sensitivity()
	}
	return p
}

// ExpectedSSE is Lemma 1 on the product strategy: 2·Φ·Δ²/ε².
func (d *KronDecomposition) ExpectedSSE(eps float64) float64 {
	delta := d.Sensitivity()
	return 2 * d.Scale() * delta * delta / (eps * eps)
}

// Converged reports whether every factor's ALM run converged.
func (d *KronDecomposition) Converged() bool {
	for _, f := range d.Factors {
		if !f.Converged {
			return false
		}
	}
	return true
}

func (d *KronDecomposition) validate() error {
	if d == nil || len(d.Factors) == 0 {
		return errors.New("core: empty kron decomposition")
	}
	for i, f := range d.Factors {
		if f == nil || f.B == nil || f.L == nil {
			return fmt.Errorf("core: kron factor %d is nil", i+1)
		}
		if f.B.Cols() != f.L.Rows() {
			return fmt.Errorf("core: kron factor %d shape mismatch %d×%d · %d×%d",
				i+1, f.B.Rows(), f.B.Cols(), f.L.Rows(), f.L.Cols())
		}
	}
	return nil
}

// dims returns (m, n, r) = (ΠBᵢ.Rows, ΠLᵢ.Cols, ΠBᵢ.Cols) along with the
// scratch each of the two Kronecker products needs, erroring on
// overflow rather than wrapping.
func (d *KronDecomposition) dims() (m, n, r, lScratch, bScratch int, err error) {
	m, n, r = 1, 1, 1
	ldims := make([][2]int, len(d.Factors))
	bdims := make([][2]int, len(d.Factors))
	for i, f := range d.Factors {
		ldims[i] = [2]int{f.L.Rows(), f.L.Cols()}
		bdims[i] = [2]int{f.B.Rows(), f.B.Cols()}
		m *= f.B.Rows()
		n *= f.L.Cols()
		r *= f.L.Rows()
	}
	ls, err := mat.KronStages(ldims)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	bs, err := mat.KronStages(bdims)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	return m, n, r, 2 * ls, 2 * bs, nil
}

// KronMechanism is the Low-Rank Mechanism running on a factored
// strategy: M(Q,D) = (⊗Bᵢ)·((⊗Lᵢ)·x + Lap(Δ/ε)^r), with both products
// applied as mode-product GEMM chains (mat.KronMulTo). Per answer it
// touches O(Σ stage sizes) memory — for the 1024×1024 prefix grid that
// is a few vectors of 2²⁰ floats against a 10¹²-cell matrix.
type KronMechanism struct {
	d      *KronDecomposition
	bs, ls []*mat.Dense
	m, n   int
	r      int
	delta  float64
	// scratch pools one answer's worth of buffers: the r-length noisy
	// intermediate plus the two mode-product stage buffers.
	scratch sync.Pool
}

type kronBuffers struct {
	y      []float64 // (⊗Lᵢ)·x, then its noisy release
	lStage []float64
	bStage []float64
}

// NewKronMechanism wraps a factored decomposition as a query-answering
// mechanism. The decomposition must not be mutated afterwards.
func NewKronMechanism(d *KronDecomposition) (*KronMechanism, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	m, n, r, lScratch, bScratch, err := d.dims()
	if err != nil {
		return nil, err
	}
	k := &KronMechanism{d: d, m: m, n: n, r: r, delta: d.Sensitivity()}
	for _, f := range d.Factors {
		k.bs = append(k.bs, f.B)
		k.ls = append(k.ls, f.L)
	}
	k.scratch.New = func() any {
		return &kronBuffers{
			y:      make([]float64, r),
			lStage: make([]float64, lScratch),
			bStage: make([]float64, bScratch),
		}
	}
	return k, nil
}

// Answer releases ε-differentially-private answers to the factored
// workload on the histogram x. Only the returned answer slice is
// allocated per call.
func (k *KronMechanism) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != k.n {
		return nil, fmt.Errorf("core: data length %d != domain %d", len(x), k.n)
	}
	buf := k.scratch.Get().(*kronBuffers)
	mat.KronMulTo(buf.y, k.ls, x, buf.lStage)
	if err := privacy.AddLaplaceNoise(buf.y, k.delta, eps, src); err != nil {
		k.scratch.Put(buf)
		return nil, err
	}
	out := mat.KronMulTo(make([]float64, k.m), k.bs, buf.y, buf.bStage)
	k.scratch.Put(buf)
	return out, nil
}

// ExpectedSSE returns Lemma 1's analytic expected error for this
// strategy.
func (k *KronMechanism) ExpectedSSE(eps privacy.Epsilon) float64 {
	return k.d.ExpectedSSE(float64(eps))
}

// Decomposition returns the underlying factored strategy.
func (k *KronMechanism) Decomposition() *KronDecomposition { return k.d }

// Queries and Domain report the product shape.
func (k *KronMechanism) Queries() int { return k.m }
func (k *KronMechanism) Domain() int  { return k.n }

// kronWire is the gob wire form of a KronDecomposition: the factor wire
// forms in order.
type kronWire struct {
	Factors []decompositionWire
}

// maxKronWireFactors bounds what an untrusted cache file may ask this
// process to assemble.
const maxKronWireFactors = 64

// Encode serializes the factored decomposition.
func (d *KronDecomposition) Encode(w io.Writer) error {
	if err := d.validate(); err != nil {
		return err
	}
	wire := kronWire{Factors: make([]decompositionWire, len(d.Factors))}
	for i, f := range d.Factors {
		wire.Factors[i] = f.wire()
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("core: encoding kron decomposition: %w", err)
	}
	return nil
}

// ReadKronDecomposition deserializes a factored decomposition written by
// Encode, re-validating every factor with the same scrutiny as the dense
// reader (the payload is an untrusted cache file).
func ReadKronDecomposition(r io.Reader) (*KronDecomposition, error) {
	var wire kronWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding kron decomposition: %w", err)
	}
	if len(wire.Factors) == 0 || len(wire.Factors) > maxKronWireFactors {
		return nil, fmt.Errorf("core: kron decomposition with %d factors", len(wire.Factors))
	}
	d := &KronDecomposition{Factors: make([]*Decomposition, len(wire.Factors))}
	for i := range wire.Factors {
		f, err := wire.Factors[i].decomposition()
		if err != nil {
			return nil, fmt.Errorf("core: kron factor %d: %w", i+1, err)
		}
		d.Factors[i] = f
	}
	// The factor dims must compose without overflow, or the first Answer
	// would panic far from the corrupt input.
	if _, _, _, _, _, err := d.dims(); err != nil {
		return nil, err
	}
	return d, nil
}
