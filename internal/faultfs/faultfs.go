// Package faultfs is the filesystem seam under the repository's
// durability-critical paths — the engine's disk cache and the privacy
// accountant's write-ahead log — plus the fault injector that proves
// they survive crashes.
//
// Production code writes through the FS interface (Disk, a passthrough
// to package os). Tests substitute an Injector, which forwards to the
// real filesystem while counting operations and, at a chosen operation,
// simulates a crash: the designated write, sync, or rename fails, the
// on-disk state is rewound to what a real power cut would have left
// durable (unsynced bytes truncated, renames without a directory sync
// undone), and every subsequent operation fails with ErrCrashed so the
// "process" cannot keep going. Re-opening the same directory through
// Disk then plays the recovery path exactly as a restarted process
// would.
//
// The crash model is the conservative POSIX one:
//
//   - Bytes written to a file are durable only up to the last successful
//     File.Sync. On crash the unsynced suffix is lost (or, in TornTail
//     mode, half of it survives — a torn final page).
//   - Rename is atomic but its durability requires a subsequent SyncDir
//     on the parent directory; a rename not followed by SyncDir is
//     undone on crash (the previous destination, if any, reappears).
//   - A renamed file's *data* durability is independent of the rename:
//     renaming an unsynced temp file can leave the destination name
//     pointing at truncated or torn content. This is precisely the
//     failure mode of temp+rename without fsync.
package faultfs

import (
	"os"
	"path/filepath"
)

// File is the subset of *os.File the durability paths need.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem interface the engine's disk cache and the
// accountant's WAL write through. All paths are interpreted like
// package os does.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Open opens a file read-only.
	Open(name string) (File, error)
	// Create creates (truncating) a file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a fresh temp file in dir, like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// Rename atomically replaces newpath with oldpath. Durability of the
	// swap requires SyncDir on the parent directory.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs a directory, making previously performed renames
	// and creates within it durable.
	SyncDir(dir string) error
	// ReadDir returns the names of the entries in dir.
	ReadDir(dir string) ([]string, error)
}

// Disk is the production implementation: a passthrough to package os.
var Disk FS = diskFS{}

type diskFS struct{}

func (diskFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (diskFS) Open(name string) (File, error) { return os.Open(name) }

func (diskFS) Create(name string) (File, error) { return os.Create(name) }

func (diskFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (diskFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (diskFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (diskFS) Remove(name string) error { return os.Remove(name) }

func (diskFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some platforms (notably it can
	// return EINVAL); treat only the open as authoritative and surface
	// the sync error as-is — callers decide whether to tolerate it.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (diskFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}
