package optimize

import "math"

// SPGOptions configures the nonmonotone spectral projected gradient
// method.
type SPGOptions struct {
	// MaxIter bounds the iterations (default 200).
	MaxIter int
	// Tol stops when the projected gradient step moves less than Tol in
	// Euclidean norm (default 1e-8).
	Tol float64
	// Memory is the nonmonotone window M of Grippo–Lampariello–Lucidi
	// line search (default 10).
	Memory int
	// Work, when non-nil, supplies all solver scratch so a call performs
	// no heap allocation. Result.X then aliases Work memory: the caller
	// must copy it out and Put it back before the workspace is reused.
	Work *Workspace
}

// SPG minimizes p with the nonmonotone spectral projected gradient method
// of Birgin, Martínez and Raydan (SIAM J. Optim. 2000) — the solver the
// paper's Appendix B prescribes for the matrix mechanism's semidefinite
// program. The spectral (Barzilai–Borwein) step length makes it far more
// effective than plain projected gradient on ill-conditioned problems.
func SPG(p Problem, x0 []float64, opt SPGOptions) Result {
	if opt.MaxIter == 0 {
		opt.MaxIter = 200
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-8
	}
	if opt.Memory == 0 {
		opt.Memory = 10
	}
	const (
		alphaMin = 1e-10
		alphaMax = 1e10
		gammaLS  = 1e-4
	)

	d := p.Dim
	x := workGet(opt.Work, d)
	copy(x, x0)
	if p.Project != nil {
		p.Project(x)
	}
	g := workGet(opt.Work, d)
	p.Grad(x, g)
	f := p.Value(x)

	hist := workGet(opt.Work, opt.Memory)[:0]
	hist = append(hist, f)

	alpha := 1.0
	xNew := workGet(opt.Work, d)
	gNew := workGet(opt.Work, d)
	ddir := workGet(opt.Work, d)
	defer func() {
		workPut(opt.Work, g)
		workPut(opt.Work, hist[:cap(hist)])
		workPut(opt.Work, xNew)
		workPut(opt.Work, gNew)
		workPut(opt.Work, ddir)
	}()

	iters := 0
	converged := false
	for t := 1; t <= opt.MaxIter; t++ {
		iters = t
		// Projected gradient direction with spectral step.
		for i := range ddir {
			ddir[i] = x[i] - alpha*g[i]
		}
		if p.Project != nil {
			p.Project(ddir)
		}
		var stepNorm float64
		for i := range ddir {
			ddir[i] -= x[i]
			stepNorm += ddir[i] * ddir[i]
		}
		if math.Sqrt(stepNorm) < opt.Tol {
			converged = true
			break
		}
		// Nonmonotone line search against the window max.
		fMax := hist[0]
		for _, v := range hist[1:] {
			if v > fMax {
				fMax = v
			}
		}
		var gd float64
		for i := range ddir {
			gd += g[i] * ddir[i]
		}
		lambda := 1.0
		var fNew float64
		for ls := 0; ls < 50; ls++ {
			for i := range xNew {
				xNew[i] = x[i] + lambda*ddir[i]
			}
			fNew = p.Value(xNew)
			if fNew <= fMax+gammaLS*lambda*gd {
				break
			}
			lambda *= 0.5
		}
		p.Grad(xNew, gNew)
		// Barzilai–Borwein step: α = ⟨s,s⟩/⟨s,y⟩.
		var ss, sy float64
		for i := range x {
			s := xNew[i] - x[i]
			y := gNew[i] - g[i]
			ss += s * s
			sy += s * y
		}
		if sy <= 0 {
			alpha = alphaMax
		} else {
			alpha = math.Min(alphaMax, math.Max(alphaMin, ss/sy))
		}
		copy(x, xNew)
		copy(g, gNew)
		f = fNew
		if len(hist) == opt.Memory {
			copy(hist, hist[1:])
			hist[len(hist)-1] = f
		} else {
			hist = append(hist, f)
		}
	}
	return Result{X: x, Value: p.Value(x), Iterations: iters, Converged: converged}
}
