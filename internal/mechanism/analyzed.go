package mechanism

import (
	"fmt"

	"lrm/internal/core"
	"lrm/internal/workload"
)

// AnalyzedPreparer is the optional planner-facing extension of Mechanism:
// a mechanism whose Prepare re-derives quantities a workload analysis
// already computed (the SVD, the sensitivity) can accept the analysis and
// skip the rework. The planner runs one workload.Analyze per workload and
// hands the same Stats to every candidate, so the whole
// analyze-score-prepare flow costs a single factorization of W.
//
// PrepareAnalyzed must release exactly what Prepare would release: the
// Stats are a computational shortcut, never a semantic input. Callers use
// PrepareWith, which falls back to Prepare when the mechanism does not
// implement this interface or the Stats are nil.
type AnalyzedPreparer interface {
	// PrepareAnalyzed is Prepare with a precomputed workload analysis.
	// stats must describe w (same matrix the Stats were computed from).
	PrepareAnalyzed(w *workload.Workload, stats *workload.Stats) (Prepared, error)
}

// PrepareWith prepares m for w, routing through PrepareAnalyzed when m
// implements it and stats is non-nil, and plain Prepare otherwise.
func PrepareWith(m Mechanism, w *workload.Workload, stats *workload.Stats) (Prepared, error) {
	if ap, ok := m.(AnalyzedPreparer); ok && stats != nil {
		return ap.PrepareAnalyzed(w, stats)
	}
	return m.Prepare(w)
}

// PrepareAnalyzed implements AnalyzedPreparer: the analysis's SVD seeds
// the ALM decomposition (rank default + Lemma-3 starting point) via
// core.DecomposeAnalyzed, so preparing after an Analyze performs no
// second factorization of W.
func (l LRM) PrepareAnalyzed(w *workload.Workload, stats *workload.Stats) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	if stats == nil || stats.SVD == nil {
		return l.Prepare(w)
	}
	d, err := core.DecomposeAnalyzed(w.W, stats.SVD, l.Options)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMechanism(d)
	if err != nil {
		return nil, err
	}
	return &lrmPrepared{m: m}, nil
}

// PrepareAnalyzed implements AnalyzedPreparer: the analysis already holds
// Δ' = max_j Σᵢ|Wᵢⱼ|, so the column scan Prepare would run is skipped.
func (LaplaceResults) PrepareAnalyzed(w *workload.Workload, stats *workload.Stats) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	if stats == nil {
		return LaplaceResults{}.Prepare(w)
	}
	return &laplaceResultsPrepared{w: w, delta: stats.Sensitivity}, nil
}
