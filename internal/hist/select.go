package hist

import (
	"fmt"
	"math"

	"lrm/internal/privacy"
	"lrm/internal/rng"
)

// SelectBuckets chooses the bucket count for NoiseFirst from the noisy
// counts themselves, so the whole release still costs exactly ε. For each
// candidate B it estimates the post-smoothing error as
//
//	bias ≈ max(0, SSE_B(noisy) − (n−B)·2/ε²)  +  variance ≈ B·2/ε²
//
// where SSE_B(noisy) is the v-optimal within-bucket spread of the noisy
// counts: spread of pure noise contributes ≈ 2/ε² per merged cell, and
// subtracting that leaves an (unbiased-ish) estimate of the true data's
// within-bucket spread, the smoothing bias. Averaging inside a bucket
// keeps one noisy degree of freedom per bucket, the variance term.
//
// This is the bucket-count selection step of the NoiseFirst algorithm of
// Xu et al. (the paper's reference [29]), which publishes with the B
// minimizing the estimate. Candidates are the powers of two up to n plus
// n itself (B = n means no smoothing: plain Laplace).
func SelectBuckets(noisy []float64, eps privacy.Epsilon) (int, error) {
	if err := eps.Validate(); err != nil {
		return 0, err
	}
	n := len(noisy)
	if n == 0 {
		return 0, fmt.Errorf("hist: empty counts")
	}
	noiseVar := 2 / (float64(eps) * float64(eps))
	bestB, bestEst := n, math.Inf(1)
	for _, b := range candidateBuckets(n) {
		_, sse, err := VOptimal(noisy, b)
		if err != nil {
			return 0, err
		}
		bias := sse - float64(n-b)*noiseVar
		if bias < 0 {
			bias = 0
		}
		est := bias + float64(b)*noiseVar
		if est < bestEst {
			bestEst = est
			bestB = b
		}
	}
	return bestB, nil
}

// candidateBuckets returns the geometric candidate grid {1, 2, 4, …} ∪
// {n}.
func candidateBuckets(n int) []int {
	var out []int
	for b := 1; b < n; b *= 2 {
		out = append(out, b)
	}
	out = append(out, n)
	return out
}

// NoiseFirstAuto is NoiseFirst with the bucket count selected from the
// noisy counts (still exactly ε-DP: both the structure and the bucket
// count are post-processing of one Laplace release).
func NoiseFirstAuto(x []float64, eps privacy.Epsilon, src *rng.Source) (*Result, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("hist: empty data")
	}
	noisy, err := privacy.LaplaceMechanism(x, 1, eps, src)
	if err != nil {
		return nil, err
	}
	b, err := SelectBuckets(noisy, eps)
	if err != nil {
		return nil, err
	}
	boundaries, _, err := VOptimal(noisy, b)
	if err != nil {
		return nil, err
	}
	est, err := Smooth(noisy, boundaries)
	if err != nil {
		return nil, err
	}
	return &Result{Estimate: est, Boundaries: boundaries}, nil
}
