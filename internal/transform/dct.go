package transform

import "math"

// DCT2 returns the orthonormal DCT-II of x:
//
//	X[k] = s(k) Σ_j x[j]·cos(π(2j+1)k / 2n)
//
// with s(0) = √(1/n) and s(k) = √(2/n) otherwise. The orthonormal scaling
// makes DCT3 its exact inverse and preserves the L2 norm.
//
// The implementation is the direct O(n²) sum: the synopsis mechanisms
// only transform vectors up to a few thousand entries once per release,
// where the quadratic cost is negligible next to the mechanism itself.
func DCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	inv2n := math.Pi / float64(2*n)
	for k := 0; k < n; k++ {
		var s float64
		for j, v := range x {
			s += v * math.Cos(float64((2*j+1)*k)*inv2n)
		}
		out[k] = s * dctScale(k, n)
	}
	return out
}

// DCT3 returns the orthonormal DCT-III of x, the inverse of DCT2.
func DCT3(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	inv2n := math.Pi / float64(2*n)
	for j := 0; j < n; j++ {
		var s float64
		for k, v := range x {
			s += v * dctScale(k, n) * math.Cos(float64((2*j+1)*k)*inv2n)
		}
		out[j] = s
	}
	return out
}

func dctScale(k, n int) float64 {
	if k == 0 {
		return math.Sqrt(1 / float64(n))
	}
	return math.Sqrt(2 / float64(n))
}

// Haar returns the orthonormal Haar wavelet transform of x, whose length
// must be a power of two. Coefficient layout: out[0] is the scaling
// coefficient; out[2^j .. 2^{j+1}) hold the detail coefficients of level
// j, coarsest first — the standard Mallat ordering.
func Haar(x []float64) []float64 {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic("transform: Haar requires power-of-two length")
	}
	out := make([]float64, n)
	copy(out, x)
	buf := make([]float64, n)
	inv := 1 / math.Sqrt2
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			buf[i] = (out[2*i] + out[2*i+1]) * inv
			buf[half+i] = (out[2*i] - out[2*i+1]) * inv
		}
		copy(out[:length], buf[:length])
	}
	return out
}

// IHaar inverts Haar: IHaar(Haar(x)) == x up to rounding.
func IHaar(c []float64) []float64 {
	n := len(c)
	if n&(n-1) != 0 || n == 0 {
		panic("transform: IHaar requires power-of-two length")
	}
	out := make([]float64, n)
	copy(out, c)
	buf := make([]float64, n)
	inv := 1 / math.Sqrt2
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			buf[2*i] = (out[i] + out[half+i]) * inv
			buf[2*i+1] = (out[i] - out[half+i]) * inv
		}
		copy(out[:length], buf[:length])
	}
	return out
}

// HaarBasisColumn returns column j of the inverse Haar transform matrix
// Ψ (n×n, orthonormal), i.e. the signal whose Haar coefficients are the
// j-th standard basis vector. The compressive mechanism's reconstruction
// builds its dictionary from these columns lazily.
func HaarBasisColumn(n, j int) []float64 {
	e := make([]float64, n)
	e[j] = 1
	return IHaar(e)
}
