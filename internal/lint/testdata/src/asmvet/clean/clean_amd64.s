// Correct kernels for the asmvet fixture: NOSPLIT, ABI0 offsets that
// match the prototypes, and VZEROUPPER immediately before RET in the
// AVX function.

#include "textflag.h"

TEXT ·dotVec(SB), NOSPLIT, $0-56
	MOVQ    a+0(FP), AX
	MOVQ    b+24(FP), BX
	VXORPD  Y0, Y0, Y0
	MOVSD   X0, ret+48(FP)
	VZEROUPPER
	RET

TEXT ·addOne(SB), NOSPLIT, $0-16
	MOVQ n+0(FP), AX
	INCQ AX
	MOVQ AX, ret+8(FP)
	RET

// dotVec512 mirrors an AVX-512 kernel: Z accumulators, correct ABI0
// offsets, VZEROUPPER immediately before RET.
TEXT ·dotVec512(SB), NOSPLIT, $0-56
	MOVQ    a+0(FP), AX
	MOVQ    b+24(FP), BX
	VXORPD  Z0, Z0, Z0
	MOVSD   X0, ret+48(FP)
	VZEROUPPER
	RET
