package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"lrm/internal/faultfs"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/privacy"
)

func testAccountant(t *testing.T, total privacy.Epsilon) *privacy.Accountant {
	t.Helper()
	a, err := privacy.OpenAccountant(privacy.AccountantOptions{DefaultTotal: total})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestTenantSpend: a tenant-tagged request charges exactly Eps×B against
// the tenant's durable budget, and an exhausted tenant is refused with
// no partial spend.
func TestTenantSpend(t *testing.T) {
	acct := testAccountant(t, 1.0)
	e := newTestEngine(t, Options{Accountant: acct})
	w := testWorkload(300)
	xs := [][]float64{testHistogram(w.Domain(), 301), testHistogram(w.Domain(), 302)}
	if _, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 0.2, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	if got := float64(acct.Spent("alice")); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("tenant spent %v, want 0.4 (0.2 × 2 histograms)", got)
	}
	// 0.4 spent, 0.6 left: a 2×0.4 request overdraws and must not spend.
	if _, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 0.4, Tenant: "alice"}); !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Fatalf("overdraw = %v, want ErrBudgetExhausted", err)
	}
	if got := float64(acct.Spent("alice")); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("refused request moved spent to %v, want unchanged 0.4", got)
	}
	// Untagged requests are not accounted.
	if _, err := e.Answer(Request{Workload: w, Histograms: xs, Eps: 0.2}); err != nil {
		t.Fatal(err)
	}
	if got := float64(acct.Spent("alice")); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("untagged request charged alice: spent %v", got)
	}
}

// TestTenantSpendSharded: the sharded path charges the same single
// composed spend as the unsharded path — ε per histogram, once.
func TestTenantSpendSharded(t *testing.T) {
	acct := testAccountant(t, 1.0)
	e := newTestEngine(t, Options{Accountant: acct, ShardRows: 5})
	w := testWorkload(310) // 12 queries → 3 shards of ≤5 rows
	x := testHistogram(w.Domain(), 311)
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.3, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Sharded != 1 {
		t.Fatalf("request did not take the sharded path: %+v", st)
	}
	if got := float64(acct.Spent("alice")); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("sharded tenant spent %v, want 0.3", got)
	}
}

// TestCancelledRequestSpendsNothing: cancellation before the commit
// point — at entry or while the Prepare runs — costs the tenant zero ε.
func TestCancelledRequestSpendsNothing(t *testing.T) {
	acct := testAccountant(t, 1.0)
	ctx, cancel := context.WithCancel(context.Background())

	// Cancel mid-Prepare: the hook fires inside the preparation, after
	// admission but before the commit point.
	var e *Engine
	e = newTestEngine(t, Options{
		Accountant:  acct,
		PrepareHook: func(string) { cancel() },
	})
	w := testWorkload(320)
	x := testHistogram(w.Domain(), 321)
	req := Request{Context: ctx, Workload: w, Histograms: [][]float64{x}, Eps: 0.5, Tenant: "alice"}
	if _, err := e.Answer(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled answer = %v, want context.Canceled", err)
	}
	if got := float64(acct.Spent("alice")); got != 0 {
		t.Fatalf("cancelled request spent %v ε, want 0", got)
	}
	// Already-cancelled context is refused at entry; the warm cache
	// entry from the aborted request must not change that.
	if _, err := e.Answer(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled answer = %v, want context.Canceled", err)
	}
	if got := float64(acct.Spent("alice")); got != 0 {
		t.Fatalf("pre-cancelled request spent %v ε, want 0", got)
	}
	// A live caller then pays normally.
	req.Context = context.Background()
	if _, err := e.Answer(req); err != nil {
		t.Fatal(err)
	}
	if got := float64(acct.Spent("alice")); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("live request spent %v, want 0.5", got)
	}
}

// TestCloseClosesAccountant: Close flushes and closes the accountant's
// WAL; further spends through any path are refused.
func TestCloseClosesAccountant(t *testing.T) {
	dir := t.TempDir()
	acct, err := privacy.OpenAccountant(privacy.AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Options{Accountant: acct})
	w := testWorkload(330)
	x := testHistogram(w.Domain(), 331)
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 0.25, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend("alice", 0.1); !errors.Is(err, privacy.ErrAccountantClosed) {
		t.Fatalf("spend on closed accountant = %v, want ErrAccountantClosed", err)
	}
	// The spend survived to disk.
	b, err := privacy.OpenAccountant(privacy.AccountantOptions{Dir: dir, DefaultTotal: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := float64(b.Spent("alice")); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("replayed spent %v, want 0.25", got)
	}
}

// TestWarmPeek: Warm reports residency without perturbing the LRU or
// hit counters.
func TestWarmPeek(t *testing.T) {
	e := newTestEngine(t, Options{})
	w := testWorkload(340)
	x := testHistogram(w.Domain(), 341)
	fp := e.fingerprint(w.W)
	if e.Warm(fp) {
		t.Fatal("cold fingerprint reported warm")
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	if !e.Warm(fp) {
		t.Fatal("prepared fingerprint reported cold")
	}
	if after := e.Stats(); after.Hits != before.Hits {
		t.Fatalf("Warm moved the hit counter %d → %d", before.Hits, after.Hits)
	}
}

// TestDiskCacheCrashSweep kills the cache-persistence path at every
// injectable point — mid-encode, at the temp fsync, at the rename, at
// the directory fsync — in both clean and torn-tail mode, and asserts
// the recovery engine on the real disk always serves correct answers:
// either the file is complete (disk hit) or its absence/corruption
// degrades to one fresh Prepare. This is the regression test for the
// fsync-before-rename fix: before it, a torn rename could leave a
// truncated .lrmd under the final name.
func TestDiskCacheCrashSweep(t *testing.T) {
	base := t.TempDir()
	run := 0
	w := testWorkload(350)
	x := testHistogram(w.Domain(), 351)
	scenario := func(fs faultfs.FS) error {
		dir := filepath.Join(base, fmt.Sprintf("run%d", run))
		run++
		e, err := New(Options{
			Mechanism: mechanism.LRM{Options: fastOpts()},
			CacheDir:  dir,
			FS:        fs,
		})
		if err != nil {
			return err
		}
		defer e.Close()
		// The disk write is best-effort, so a faulted Answer may still
		// succeed; probe the write explicitly so every fs op is reached.
		if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
			return err
		}
		if st := e.Stats(); st.DiskWrites != 1 {
			return fmt.Errorf("decomposition write failed")
		}
		return nil
	}
	lastDir := func() string { return filepath.Join(base, fmt.Sprintf("run%d", run-1)) }

	points, err := faultfs.Points(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("only %d failure points (%v); want writes, syncs, a create, and a rename", len(points), points)
	}
	for _, torn := range []bool{false, true} {
		for _, pt := range points {
			inj := faultfs.New(pt.Faults(torn))
			scenario(inj)
			if !inj.Tripped() {
				continue
			}
			var prepares int
			e, err := New(Options{
				Mechanism:   mechanism.LRM{Options: fastOpts()},
				CacheDir:    lastDir(),
				PrepareHook: func(string) { prepares++ },
			})
			if err != nil {
				t.Fatalf("point %s (torn=%v): recovery engine: %v", pt, torn, err)
			}
			out, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1})
			if err != nil || len(out) != 1 || len(out[0]) != w.Queries() {
				t.Fatalf("point %s (torn=%v): recovery answer = %v (len %d)", pt, torn, err, len(out))
			}
			st := e.Stats()
			if st.DiskHits+uint64(prepares) != 1 {
				t.Fatalf("point %s (torn=%v): diskHits=%d prepares=%d, want exactly one source of the preparation",
					pt, torn, st.DiskHits, prepares)
			}
			e.Close()
		}
	}
}

// TestCorruptPlanAndDecompositionFallBack: byte-level corruption of the
// persisted .plan.json and .lrmd artifacts must degrade to a fresh
// Prepare (or re-plan), never to an error or a poisoned answer.
func TestCorruptPlanAndDecompositionFallBack(t *testing.T) {
	for _, planned := range []bool{false, true} {
		dir := t.TempDir()
		opts := Options{CacheDir: dir}
		if planned {
			opts.Planner = &plan.Options{LRM: fastOpts()}
		} else {
			opts.Mechanism = mechanism.LRM{Options: fastOpts()}
		}
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		w := testWorkload(360)
		x := testHistogram(w.Domain(), 361)
		if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		names, err := faultfs.Disk.ReadDir(dir)
		if err != nil || len(names) == 0 {
			t.Fatalf("planned=%v: cache dir holds %v (%v)", planned, names, err)
		}
		corruptFiles(t, dir, names)

		var prepares int
		opts.PrepareHook = func(string) { prepares++ }
		e2, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e2.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1})
		if err != nil || len(out) != 1 {
			t.Fatalf("planned=%v: answer over corrupt cache = %v", planned, err)
		}
		if prepares != 1 {
			t.Fatalf("planned=%v: %d prepares over corrupt cache, want exactly 1 fresh one", planned, prepares)
		}
		if st := e2.Stats(); st.DiskHits != 0 {
			t.Fatalf("planned=%v: corrupt artifacts counted as disk hits: %+v", planned, st)
		}
		e2.Close()
	}
}

// corruptFiles truncates each file to half and flips a byte, simulating
// a torn write under the pre-fix cache (rename of an unsynced temp).
func corruptFiles(t *testing.T, dir string, names []string) {
	t.Helper()
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := faultfs.Disk.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<20)
		n, _ := f.Read(buf)
		f.Close()
		if n == 0 {
			t.Fatalf("%s is empty before corruption", name)
		}
		half := buf[:(n+1)/2]
		if len(half) > 0 {
			half[len(half)/2] ^= 0xff
		}
		g, err := faultfs.Disk.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Write(half); err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
