package sparse

import "fmt"

// Builder accumulates rows of a CSR matrix in order. It is the cheap path
// for generators that know their non-zeros row by row (range workloads,
// tree strategies) and avoids the sort in FromTriplets.
type Builder struct {
	cols   int
	rowPtr []int
	colIdx []int
	val    []float64
	// lastCol guards the column-sorted invariant within the current row.
	lastCol int
}

// NewBuilder starts a builder for matrices with c columns.
func NewBuilder(c int) *Builder {
	if c < 0 {
		panic(fmt.Sprintf("sparse: negative column count %d", c))
	}
	return &Builder{cols: c, rowPtr: []int{0}, lastCol: -1}
}

// Append adds a non-zero at column j of the current row. Columns must be
// strictly increasing within a row; zeros are dropped.
func (b *Builder) Append(j int, v float64) {
	if j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: column %d out of range %d", j, b.cols))
	}
	if j <= b.lastCol {
		panic(fmt.Sprintf("sparse: columns must be strictly increasing within a row (got %d after %d)", j, b.lastCol))
	}
	b.lastCol = j
	if v == 0 {
		return
	}
	b.colIdx = append(b.colIdx, j)
	b.val = append(b.val, v)
}

// AppendRange adds value v at every column in [lo, hi) of the current row.
func (b *Builder) AppendRange(lo, hi int, v float64) {
	if lo < 0 || hi > b.cols || lo > hi {
		panic(fmt.Sprintf("sparse: bad range [%d,%d) of %d", lo, hi, b.cols))
	}
	for j := lo; j < hi; j++ {
		b.Append(j, v)
	}
}

// EndRow finishes the current row and starts the next.
func (b *Builder) EndRow() {
	b.rowPtr = append(b.rowPtr, len(b.val))
	b.lastCol = -1
}

// Build finalizes the matrix. The builder must not be reused afterwards.
func (b *Builder) Build() *CSR {
	return &CSR{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		val:    b.val,
	}
}
