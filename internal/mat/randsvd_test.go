package mat

import (
	"math"
	"testing"

	"lrm/internal/rng"
)

// lowRank builds an m×n matrix of exact rank r with singular values
// roughly spanning [1, r].
func lowRank(m, n, r int, src *rng.Source) *Dense {
	u := New(m, r)
	for i := range u.data {
		u.data[i] = src.Normal()
	}
	v := New(r, n)
	for i := range v.data {
		v.data[i] = src.Normal()
	}
	return Mul(u, v)
}

func TestRandSVDExactOnLowRank(t *testing.T) {
	src := rng.New(1)
	a := lowRank(60, 40, 5, src)
	s, err := RandSVD(a, 5, RandSVDOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	recon := Mul(s.U, Mul(Diag(s.S), s.V.T()))
	if !recon.EqualApprox(a, 1e-8*FrobeniusNorm(a)) {
		t.Fatal("rank-5 matrix not reconstructed by 5-component RandSVD")
	}
}

func TestRandSVDMatchesExactSingularValues(t *testing.T) {
	src := rng.New(3)
	a := lowRank(50, 30, 8, src)
	exact := FactorSVD(a)
	approx, err := RandSVD(a, 8, RandSVDOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if math.Abs(exact.S[i]-approx.S[i]) > 1e-8*(1+exact.S[i]) {
			t.Fatalf("σ%d: exact %g approx %g", i, exact.S[i], approx.S[i])
		}
	}
}

func TestRandSVDOrthonormalFactors(t *testing.T) {
	src := rng.New(5)
	a := lowRank(40, 40, 6, src)
	s, err := RandSVD(a, 6, RandSVDOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Dense{s.U, s.V} {
		g := Gram(f) // FᵀF should be identity
		if !g.EqualApprox(Eye(g.Rows()), 1e-8) {
			t.Fatal("factor columns not orthonormal")
		}
	}
}

func TestRandSVDCapturesDominantSubspace(t *testing.T) {
	// Full-rank matrix with a sharp spectral gap: the top-k approximation
	// error should be near the optimal (Eckart-Young) error, i.e. the
	// energy of the dropped tail.
	src := rng.New(7)
	m, n := 50, 50
	a := lowRank(m, n, 3, src)
	noise := New(m, n)
	for i := range noise.data {
		noise.data[i] = src.Normal() * 1e-3
	}
	a = Add(a, noise)
	exact := FactorSVD(a)
	s, err := RandSVD(a, 3, RandSVDOptions{Seed: 8, PowerIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	recon := Mul(s.U, Mul(Diag(s.S), s.V.T()))
	errF := FrobeniusNorm(Sub(a, recon))
	var optimal float64
	for _, v := range exact.S[3:] {
		optimal += v * v
	}
	optimal = math.Sqrt(optimal)
	if errF > 1.5*optimal+1e-12 {
		t.Fatalf("approximation error %g vs optimal %g", errF, optimal)
	}
}

func TestRandSVDValidation(t *testing.T) {
	a := New(4, 4)
	if _, err := RandSVD(a, 0, RandSVDOptions{}); err == nil {
		t.Fatal("want error for k < 1")
	}
	if _, err := RandSVD(a, 2, RandSVDOptions{Oversample: -1}); err == nil {
		t.Fatal("want error for negative oversample")
	}
	if _, err := RandSVD(a, 2, RandSVDOptions{PowerIters: -1}); err == nil {
		t.Fatal("want error for negative power iterations")
	}
	// k larger than min dimension is clamped, not an error.
	src := rng.New(9)
	b := lowRank(6, 4, 2, src)
	s, err := RandSVD(b, 100, RandSVDOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.S) > 4 {
		t.Fatalf("clamp failed: %d singular values", len(s.S))
	}
}

func TestRandSVDDeterministicInSeed(t *testing.T) {
	src := rng.New(10)
	a := lowRank(20, 20, 4, src)
	s1, _ := RandSVD(a, 4, RandSVDOptions{Seed: 42})
	s2, _ := RandSVD(a, 4, RandSVDOptions{Seed: 42})
	for i := range s1.S {
		if s1.S[i] != s2.S[i] {
			t.Fatal("same seed should reproduce identical singular values")
		}
	}
}

func TestRandomizedRankMatchesExact(t *testing.T) {
	src := rng.New(11)
	for _, r := range []int{1, 3, 7} {
		a := lowRank(40, 25, r, src)
		got, err := RandomizedRank(a, 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != Rank(a) || got != r {
			t.Fatalf("rank %d: randomized %d exact %d", r, got, Rank(a))
		}
	}
}

func TestRandomizedRankSaturates(t *testing.T) {
	src := rng.New(12)
	a := lowRank(30, 30, 20, src)
	got, err := RandomizedRank(a, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("probing 5 components of a rank-20 matrix should saturate at 5, got %d", got)
	}
}

func TestRandomizedRankZeroMatrix(t *testing.T) {
	got, err := RandomizedRank(New(8, 8), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("zero matrix rank %d", got)
	}
	got, err = RandomizedRank(New(0, 5), 4, 1)
	if err != nil || got != 0 {
		t.Fatalf("empty matrix: %d, %v", got, err)
	}
}

func TestOrthonormalizeDropsDependentColumns(t *testing.T) {
	// Two identical columns: the second must be zeroed, not NaN.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	q := orthonormalize(a)
	if !q.IsFinite() {
		t.Fatal("orthonormalize produced non-finite values")
	}
	c1 := q.Col(1)
	for _, v := range c1 {
		if v != 0 {
			t.Fatal("dependent column should be zeroed")
		}
	}
}
