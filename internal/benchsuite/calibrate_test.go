package benchsuite

import (
	"testing"

	"lrm/internal/mat"
)

// TestCalibShapesCoverClasses pins that the representative products hit
// every shape class exactly once — a renumbering of the class grid or a
// threshold change in mat's classifier breaks here, not silently in the
// timing loop.
func TestCalibShapesCoverClasses(t *testing.T) {
	want := mat.KernelClasses()
	seen := map[string]bool{}
	for _, sh := range calibShapes {
		class := mat.KernelClassFor(sh.m, sh.n, sh.k)
		if seen[class] {
			t.Errorf("shape %dx%dx%d: class %s already covered", sh.m, sh.k, sh.n, class)
		}
		seen[class] = true
	}
	for _, class := range want {
		if !seen[class] {
			t.Errorf("no calibration shape classifies as %s", class)
		}
	}
}

// TestCalibrateKernels is the calibration smoke test CI runs on stock
// runners (with or without AVX-512, with or without asm at all): it must
// never panic, must measure every selectable family for every class,
// must flag exactly one winner per class, and must leave the dispatch
// table naming only selectable families.
func TestCalibrateKernels(t *testing.T) {
	timings := CalibrateKernels()
	families := mat.KernelFamilies()
	classes := mat.KernelClasses()
	if want := len(families) * len(classes); len(timings) != want {
		t.Fatalf("got %d timings, want %d (%d families × %d classes)", len(timings), want, len(families), len(classes))
	}
	winners := map[string]int{}
	for _, tm := range timings {
		if tm.Best <= 0 {
			t.Errorf("%s/%s: non-positive best time %v", tm.Class, tm.Family, tm.Best)
		}
		if tm.Winner {
			winners[tm.Class]++
		}
	}
	for _, class := range classes {
		if winners[class] != 1 {
			t.Errorf("class %s: %d winners, want exactly 1", class, winners[class])
		}
	}
	selectable := map[string]bool{}
	for _, f := range families {
		selectable[f] = true
	}
	for class, fam := range mat.KernelDispatch() {
		if !selectable[fam] {
			t.Errorf("dispatch table names %s for %s, which is not selectable (have %v)", fam, class, families)
		}
	}
}

// TestCalibrationPreservesBits pins the property that makes measured
// dispatch safe at all: whatever family calibration installs, a
// column-exact product computes the same bits as before calibration.
func TestCalibrationPreservesBits(t *testing.T) {
	a := mat.New(130, 70)
	ad := a.RawData()
	for i := range ad {
		ad[i] = float64(i%17)*0.125 - 0.5
	}
	b := mat.New(70, 66)
	bd := b.RawData()
	for i := range bd {
		bd[i] = float64(i%19)*0.25 - 1
	}
	before := mat.MulColsTo(mat.New(130, 66), a, b)
	CalibrateKernels()
	after := mat.MulColsTo(mat.New(130, 66), a, b)
	if !after.Equal(before) {
		t.Fatal("column-exact product changed bits across kernel calibration")
	}
}
