package workload

import (
	"math"
	"testing"
	"testing/quick"

	"lrm/internal/mat"
	"lrm/internal/rng"
)

func TestDiscreteEntries(t *testing.T) {
	w := Discrete(50, 80, 0.02, rng.New(1))
	if w.Queries() != 50 || w.Domain() != 80 {
		t.Fatalf("dims = %d×%d", w.Queries(), w.Domain())
	}
	plus, minus := 0, 0
	for _, v := range w.W.RawData() {
		switch v {
		case 1:
			plus++
		case -1:
			minus++
		default:
			t.Fatalf("WDiscrete entry %v not in {−1, +1}", v)
		}
	}
	frac := float64(plus) / float64(plus+minus)
	if frac > 0.06 {
		t.Fatalf("fraction of +1 entries = %v, want ~0.02", frac)
	}
}

func TestDiscreteReproducible(t *testing.T) {
	a := Discrete(10, 10, 0.02, rng.New(9))
	b := Discrete(10, 10, 0.02, rng.New(9))
	if !a.W.Equal(b.W) {
		t.Fatal("same seed produced different workloads")
	}
}

func TestRangeRowsAreIntervals(t *testing.T) {
	w := Range(100, 64, rng.New(2))
	for i := 0; i < w.Queries(); i++ {
		row := w.W.RawRow(i)
		// Row must be 0…0 1…1 0…0 with at least one 1.
		first, last := -1, -1
		for j, v := range row {
			if v != 0 && v != 1 {
				t.Fatalf("row %d has entry %v", i, v)
			}
			if v == 1 {
				if first < 0 {
					first = j
				}
				last = j
			}
		}
		if first < 0 {
			t.Fatalf("row %d is empty", i)
		}
		for j := first; j <= last; j++ {
			if row[j] != 1 {
				t.Fatalf("row %d not contiguous", i)
			}
		}
	}
}

func TestRelatedRank(t *testing.T) {
	for _, s := range []int{1, 3, 8} {
		w := Related(40, 30, s, rng.New(3))
		if got := w.Rank(); got != s {
			t.Fatalf("rank(WRelated s=%d) = %d", s, got)
		}
	}
}

func TestIdentityTotalPrefix(t *testing.T) {
	id := Identity(4)
	if !id.W.Equal(mat.Eye(4)) {
		t.Fatal("Identity workload is not I")
	}
	tot := Total(4)
	if got := tot.Answer([]float64{1, 2, 3, 4}); got[0] != 10 {
		t.Fatalf("Total answer = %v", got)
	}
	pre := Prefix(3)
	ans := pre.Answer([]float64{1, 2, 3})
	if ans[0] != 1 || ans[1] != 3 || ans[2] != 6 {
		t.Fatalf("Prefix answers = %v", ans)
	}
	if got := pre.Sensitivity(); got != 3 {
		t.Fatalf("Prefix sensitivity = %v, want 3", got)
	}
}

func TestAllRanges(t *testing.T) {
	w := AllRanges(4)
	if w.Queries() != 10 {
		t.Fatalf("AllRanges(4) has %d queries, want 10", w.Queries())
	}
	// Every row distinct and a valid interval.
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		key := ""
		for _, v := range w.W.RawRow(i) {
			if v == 1 {
				key += "1"
			} else {
				key += "0"
			}
		}
		if seen[key] {
			t.Fatalf("duplicate range row %q", key)
		}
		seen[key] = true
	}
}

func TestMarginal(t *testing.T) {
	w := Marginal(2, 3)
	if w.Queries() != 5 || w.Domain() != 6 {
		t.Fatalf("dims = %d×%d", w.Queries(), w.Domain())
	}
	x := []float64{1, 2, 3, 4, 5, 6} // grid [[1,2,3],[4,5,6]]
	ans := w.Answer(x)
	want := []float64{6, 15, 5, 7, 9}
	for i := range want {
		if math.Abs(ans[i]-want[i]) > 1e-12 {
			t.Fatalf("marginal answers = %v, want %v", ans, want)
		}
	}
	// Each cell appears in exactly one row sum and one column sum.
	if got := w.Sensitivity(); got != 2 {
		t.Fatalf("Marginal sensitivity = %v, want 2", got)
	}
}

func TestAnswerLengthPanics(t *testing.T) {
	w := Identity(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Answer with wrong data length did not panic")
		}
	}()
	w.Answer([]float64{1, 2})
}

func TestBadDimsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Discrete(0, 5, 0.02, rng.New(1)) },
		func() { Range(5, 0, rng.New(1)) },
		func() { Related(5, 5, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad dims did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: workload sensitivity is the max column L1 norm, so scaling a
// workload by c scales sensitivity by |c|.
func TestSensitivityScaleProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		w := Discrete(4+src.Intn(10), 4+src.Intn(10), 0.1, src)
		c := 0.5 + src.Float64()*4
		scaled := FromMatrix("scaled", mat.Scale(c, w.W))
		return math.Abs(scaled.Sensitivity()-c*w.Sensitivity()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: rank(WRelated) ≤ s always, and answers are linear in the data.
func TestAnswerLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(8)
		w := Range(6, n, src)
		x := src.NormalVec(n, 1)
		y := src.NormalVec(n, 1)
		xy := make([]float64, n)
		for i := range xy {
			xy[i] = x[i] + y[i]
		}
		ax := w.Answer(x)
		ay := w.Answer(y)
		axy := w.Answer(xy)
		for i := range axy {
			if math.Abs(axy[i]-ax[i]-ay[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSquaredSum(t *testing.T) {
	w := FromMatrix("x", mat.FromRows([][]float64{{3, 4}}))
	if got := w.SquaredSum(); got != 25 {
		t.Fatalf("SquaredSum = %v", got)
	}
}

func TestStack(t *testing.T) {
	a := Identity(3)
	b := Total(3)
	s := Stack("combo", a, b)
	if s.Queries() != 4 || s.Domain() != 3 {
		t.Fatalf("dims %d×%d", s.Queries(), s.Domain())
	}
	ans := s.Answer([]float64{1, 2, 3})
	want := []float64{1, 2, 3, 6}
	for i := range want {
		if ans[i] != want[i] {
			t.Fatalf("answers %v", ans)
		}
	}
}

func TestStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Stack did not panic")
		}
	}()
	Stack("bad", Identity(3), Identity(4))
}

func TestStackEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Stack did not panic")
		}
	}()
	Stack("empty")
}
