//go:build !amd64 || noasm || noavx512

package mat

// Builds without the AVX-512 tier: non-amd64 architectures, the noasm
// scalar-fallback leg, and the noavx512 kill-switch tag (which CI runs
// on every push so the AVX2 fallback path stays green on AVX-512
// hardware too).
var gemmUseAVX512 = false

// gemmKernel8x8 is never called when gemmUseAVX512 is false; this stub
// only satisfies the compiler.
func gemmKernel8x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64) {
	panic("mat: gemmKernel8x8 called without AVX-512 support")
}

// gemmKernelMulAdd8x8 is never called when gemmUseAVX512 is false; this
// stub only satisfies the compiler.
func gemmKernelMulAdd8x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64) {
	panic("mat: gemmKernelMulAdd8x8 called without AVX-512 support")
}
