package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// The compact spec grammar the CLIs accept (and Describe emits):
//
//	prefix(N)                         n prefix sums
//	ranges(N)                         all N(N+1)/2 contiguous ranges
//	identity(N)                       one query per count
//	total(N)                          the single total count
//	marginals(d1,d2,…;k=K)            K-way marginals over a d-attribute grid
//	kron:<factor>x<factor>x…          Kronecker product of factor specs
//
// e.g. kron:prefix(1024)xprefix(1024) is every 2-D prefix box over a
// 1024×1024 grid: m = n = 1,048,576 and m·n ≈ 1.1·10¹² cells, served
// without the matrix ever existing.

// Parse limits. These bound what an untrusted string (a CLI flag, an
// HTTP request) may ask this process to hold: per-spec m and n within
// maxParseDim, so answer vectors stay allocatable, and factor counts
// within maxKronFactors.
const (
	maxParseDim     = 1 << 26
	maxKronFactors  = 8
	maxMarginalDims = 16
)

// ParseSpec parses the compact workload-spec grammar above. Dense
// workloads have no grammar form — load them from CSV and wrap with
// AsSpec.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("workload: empty spec")
	}
	if rest, ok := strings.CutPrefix(s, "kron:"); ok {
		return parseKron(rest)
	}
	return parsePrimary(s)
}

// parseKron parses the x-joined factor list of a kron: spec. The split
// respects parentheses, so marginals(2,3;k=1) survives as one factor
// even though no current factor kind contains an 'x'.
func parseKron(s string) (Spec, error) {
	parts, err := splitTopLevel(s, 'x')
	if err != nil {
		return nil, err
	}
	if len(parts) < 1 || (len(parts) == 1 && strings.TrimSpace(parts[0]) == "") {
		return nil, fmt.Errorf("workload: kron: needs at least one factor")
	}
	if len(parts) > maxKronFactors {
		return nil, fmt.Errorf("workload: kron: %d factors exceeds the maximum %d", len(parts), maxKronFactors)
	}
	factors := make([]Spec, len(parts))
	m, n := 1, 1
	for i, p := range parts {
		f, err := parsePrimary(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("workload: kron factor %d: %w", i+1, err)
		}
		m, n = m*f.Queries(), n*f.Domain()
		if m > maxParseDim || n > maxParseDim {
			return nil, fmt.Errorf("workload: kron product exceeds %d queries or counts", maxParseDim)
		}
		factors[i] = f
	}
	return NewKronSpec(factors...), nil
}

// splitTopLevel splits s on sep at parenthesis depth zero. A separator
// only counts immediately after a closing ')': every factor form ends
// with one, so an 'x' inside a kind name (prefix!) never splits.
func splitTopLevel(s string, sep byte) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	afterClose := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
			afterClose = false
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("workload: unbalanced ')' in spec %q", s)
			}
			afterClose = true
		case sep:
			if depth == 0 && afterClose {
				parts = append(parts, s[start:i])
				start = i + 1
			}
			afterClose = false
		default:
			afterClose = false
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("workload: unbalanced '(' in spec %q", s)
	}
	return append(parts, s[start:]), nil
}

// parsePrimary parses one kind(args) form.
func parsePrimary(s string) (Spec, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, unknownKind(s)
	}
	kind := strings.TrimSpace(s[:open])
	args := s[open+1 : len(s)-1]
	switch kind {
	case "prefix":
		n, err := parseSize(kind, args)
		if err != nil {
			return nil, err
		}
		return NewPrefixSpec(n), nil
	case "ranges":
		n, err := parseSize(kind, args)
		if err != nil {
			return nil, err
		}
		if m := n * (n + 1) / 2; m > maxParseDim {
			return nil, fmt.Errorf("workload: ranges(%d) has %d queries, exceeding %d", n, m, maxParseDim)
		}
		return NewAllRangesSpec(n), nil
	case "identity":
		n, err := parseSize(kind, args)
		if err != nil {
			return nil, err
		}
		return NewIdentitySpec(n), nil
	case "total":
		n, err := parseSize(kind, args)
		if err != nil {
			return nil, err
		}
		return NewTotalSpec(n), nil
	case "marginals":
		return parseMarginals(args)
	case "dense":
		return nil, fmt.Errorf("workload: dense workloads have no spec form; load the CSV matrix and wrap it with AsSpec")
	default:
		return nil, unknownKind(kind)
	}
}

func unknownKind(kind string) error {
	return fmt.Errorf("workload: unknown spec kind %q (known: identity, kron, marginals, prefix, ranges, total)", kind)
}

// parseSize parses one positive bounded integer argument.
func parseSize(kind, arg string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil {
		return 0, fmt.Errorf("workload: %s size %q: %w", kind, arg, err)
	}
	if n < 1 || n > maxParseDim {
		return 0, fmt.Errorf("workload: %s size %d out of range 1..%d", kind, n, maxParseDim)
	}
	return n, nil
}

// parseMarginals parses "d1,d2,…;k=K".
func parseMarginals(args string) (Spec, error) {
	dimsPart, kPart, ok := strings.Cut(args, ";")
	if !ok {
		return nil, fmt.Errorf("workload: marginals needs the form marginals(d1,d2,…;k=K)")
	}
	kStr, ok := strings.CutPrefix(strings.TrimSpace(kPart), "k=")
	if !ok {
		return nil, fmt.Errorf("workload: marginals needs k=K after ';', got %q", kPart)
	}
	k, err := strconv.Atoi(strings.TrimSpace(kStr))
	if err != nil {
		return nil, fmt.Errorf("workload: marginals k %q: %w", kStr, err)
	}
	fields := strings.Split(dimsPart, ",")
	if len(fields) > maxMarginalDims {
		return nil, fmt.Errorf("workload: marginals over %d attributes exceeds the maximum %d", len(fields), maxMarginalDims)
	}
	dims := make([]int, len(fields))
	n, m := 1, 0
	for i, f := range fields {
		d, err := parseSize("marginals dimension", f)
		if err != nil {
			return nil, err
		}
		dims[i] = d
		n *= d
		if n > maxParseDim {
			return nil, fmt.Errorf("workload: marginals domain exceeds %d counts", maxParseDim)
		}
	}
	if k < 1 || k > len(dims) {
		return nil, fmt.Errorf("workload: marginals k=%d out of range 1..%d", k, len(dims))
	}
	// Bound the query count before constructing: Σ over C(d,k) subsets of
	// their projection sizes.
	for _, sub := range subsetsOf(len(dims), k) {
		size := 1
		for _, i := range sub {
			size *= dims[i]
		}
		m += size
		if m > maxParseDim {
			return nil, fmt.Errorf("workload: marginals query count exceeds %d", maxParseDim)
		}
	}
	return NewMarginalSpec(dims, k), nil
}
