// AVX-512 micro-kernels for the packed GEMM layer (gemm.go). Selected at
// runtime per product shape by the kernel-family dispatcher
// (gemmdispatch.go) when CPUID reports AVX512F+AVX512DQ and XCR0 has the
// opmask/ZMM state enabled (gemm_avx512_amd64.go); the build itself
// stays at the GOAMD64=v1 baseline. The noavx512 build tag compiles
// these kernels out, mirroring the noasm tag one tier down.

//go:build amd64 && !noasm && !noavx512

#include "textflag.h"

// func gemmKernel8x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)
//
// Computes the 8×8 output block
//
//	C[i][j] = Σ_{t=0..k-1} A(i,t) · B(t,j)   for i in 0..7, j in 0..7
//
// overwriting C. Addressing matches gemmKernel4x8: element A(i,t) lives
// at a + i·aRowStride + t·aKStride, the 8 packed values for step t at
// bp + t·bKStride, C rows cRowStride bytes apart.
//
// One ZMM accumulator per output row; each k step is one 64-byte panel
// load plus eight embedded-broadcast FMAs (VFMADD231PD.BCST reads A(i,t)
// once and broadcasts it across the lanes). Every C element is a single
// FMA chain in ascending t — per-lane arithmetic identical to the 4×8
// AVX2 kernel's, which is what makes the two tiers interchangeable
// without changing a bit of output.
TEXT ·gemmKernel8x8(SB), NOSPLIT, $0-64
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ aRowStride+16(FP), R8
	MOVQ aKStride+24(FP), R12
	MOVQ bp+32(FP), DX
	MOVQ bKStride+40(FP), R13
	MOVQ c+48(FP), DI
	MOVQ cRowStride+56(FP), R10

	LEAQ (R8)(R8*2), R9       // 3·aRowStride
	LEAQ (R8)(R8*4), R14      // 5·aRowStride
	LEAQ (R9)(R8*4), R15      // 7·aRowStride
	LEAQ (R10)(R10*2), R11    // 3·cRowStride

	VXORPD Z0, Z0, Z0
	VXORPD Z1, Z1, Z1
	VXORPD Z2, Z2, Z2
	VXORPD Z3, Z3, Z3
	VXORPD Z4, Z4, Z4
	VXORPD Z5, Z5, Z5
	VXORPD Z6, Z6, Z6
	VXORPD Z7, Z7, Z7

	TESTQ CX, CX
	JZ    store8

loop8:
	VMOVUPD (DX), Z8                       // B(t, 0:8)
	VFMADD231PD.BCST (SI), Z8, Z0          // A(0,t)
	VFMADD231PD.BCST (SI)(R8*1), Z8, Z1    // A(1,t)
	VFMADD231PD.BCST (SI)(R8*2), Z8, Z2    // A(2,t)
	VFMADD231PD.BCST (SI)(R9*1), Z8, Z3    // A(3,t)
	VFMADD231PD.BCST (SI)(R8*4), Z8, Z4    // A(4,t)
	VFMADD231PD.BCST (SI)(R14*1), Z8, Z5   // A(5,t)
	VFMADD231PD.BCST (SI)(R9*2), Z8, Z6    // A(6,t)
	VFMADD231PD.BCST (SI)(R15*1), Z8, Z7   // A(7,t)
	ADDQ R12, SI
	ADDQ R13, DX
	DECQ CX
	JNZ  loop8

store8:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, (DI)(R10*1)
	VMOVUPD Z2, (DI)(R10*2)
	VMOVUPD Z3, (DI)(R11*1)
	LEAQ (DI)(R10*4), DI
	VMOVUPD Z4, (DI)
	VMOVUPD Z5, (DI)(R10*1)
	VMOVUPD Z6, (DI)(R10*2)
	VMOVUPD Z7, (DI)(R11*1)
	VZEROUPPER
	RET

// func gemmKernelMulAdd8x8(k int64, a *float64, aRowStride, aKStride int64, bp *float64, bKStride int64, c *float64, cRowStride int64)
//
// The column-exact sibling of gemmKernel8x8: identical addressing and
// tile shape, but each accumulation step is a separate VMULPD + VADDPD
// instead of a fused multiply-add — product rounded, then sum rounded,
// in ascending t. Bit-for-bit the arithmetic of the scalar kernels, of
// gemmKernelMulAdd4x8, and of a MulVecTo dot product, so the multi-RHS
// answering path (MulColsTo) reproduces per-column mat-vec results
// exactly on every kernel tier.
TEXT ·gemmKernelMulAdd8x8(SB), NOSPLIT, $0-64
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ aRowStride+16(FP), R8
	MOVQ aKStride+24(FP), R12
	MOVQ bp+32(FP), DX
	MOVQ bKStride+40(FP), R13
	MOVQ c+48(FP), DI
	MOVQ cRowStride+56(FP), R10

	LEAQ (R8)(R8*2), R9       // 3·aRowStride
	LEAQ (R8)(R8*4), R14      // 5·aRowStride
	LEAQ (R9)(R8*4), R15      // 7·aRowStride
	LEAQ (R10)(R10*2), R11    // 3·cRowStride

	VXORPD Z0, Z0, Z0
	VXORPD Z1, Z1, Z1
	VXORPD Z2, Z2, Z2
	VXORPD Z3, Z3, Z3
	VXORPD Z4, Z4, Z4
	VXORPD Z5, Z5, Z5
	VXORPD Z6, Z6, Z6
	VXORPD Z7, Z7, Z7

	TESTQ CX, CX
	JZ    storeMulAdd8

loopMulAdd8:
	VMOVUPD (DX), Z8                  // B(t, 0:8)
	VMULPD.BCST (SI), Z8, Z9          // A(0,t)
	VADDPD Z9, Z0, Z0
	VMULPD.BCST (SI)(R8*1), Z8, Z10   // A(1,t)
	VADDPD Z10, Z1, Z1
	VMULPD.BCST (SI)(R8*2), Z8, Z9    // A(2,t)
	VADDPD Z9, Z2, Z2
	VMULPD.BCST (SI)(R9*1), Z8, Z10   // A(3,t)
	VADDPD Z10, Z3, Z3
	VMULPD.BCST (SI)(R8*4), Z8, Z9    // A(4,t)
	VADDPD Z9, Z4, Z4
	VMULPD.BCST (SI)(R14*1), Z8, Z10  // A(5,t)
	VADDPD Z10, Z5, Z5
	VMULPD.BCST (SI)(R9*2), Z8, Z9    // A(6,t)
	VADDPD Z9, Z6, Z6
	VMULPD.BCST (SI)(R15*1), Z8, Z10  // A(7,t)
	VADDPD Z10, Z7, Z7
	ADDQ R12, SI
	ADDQ R13, DX
	DECQ CX
	JNZ  loopMulAdd8

storeMulAdd8:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, (DI)(R10*1)
	VMOVUPD Z2, (DI)(R10*2)
	VMOVUPD Z3, (DI)(R11*1)
	LEAQ (DI)(R10*4), DI
	VMOVUPD Z4, (DI)
	VMOVUPD Z5, (DI)(R10*1)
	VMOVUPD Z6, (DI)(R10*2)
	VMOVUPD Z7, (DI)(R11*1)
	VZEROUPPER
	RET
