package mat

import "fmt"

// Kronecker mat-vec without the Kronecker matrix. (F₁⊗…⊗F_d)·x costs
// Π nᵢ · Σ mᵢ·… flops if the product matrix exists — but the product
// never needs to exist: viewing x as a d-mode tensor, the product is d
// mode multiplications, each a small GEMM against one factor. Total
// cost is Σᵢ (stage size)·mᵢ and memory is two stage buffers, which is
// what lets a 10¹²-cell workload answer in milliseconds.

// KronStages returns the maximum intermediate vector length reached
// while applying the given (rows, cols) factor sequence trailing-mode
// first, starting from a Π cols input. It errors if any stage
// overflows.
func KronStages(dims [][2]int) (maxStage int, err error) {
	size := 1
	for _, d := range dims {
		size, err = checkedMul(size, d[1])
		if err != nil {
			return 0, err
		}
	}
	maxStage = size
	for i := len(dims) - 1; i >= 0; i-- {
		size = size / dims[i][1]
		size, err = checkedMul(size, dims[i][0])
		if err != nil {
			return 0, err
		}
		if size > maxStage {
			maxStage = size
		}
	}
	return maxStage, nil
}

func checkedMul(a, b int) (int, error) {
	const maxKronSize = 1 << 40
	if b != 0 && a > maxKronSize/b {
		return 0, fmt.Errorf("mat: kron stage size %d×%d overflows the %d cap", a, b, maxKronSize)
	}
	return a * b, nil
}

// KronScratchLen returns the scratch length KronMulTo requires for the
// given factors: two buffers of the maximum stage size.
func KronScratchLen(factors []*Dense) int {
	dims := make([][2]int, len(factors))
	for i, f := range factors {
		dims[i] = [2]int{f.Rows(), f.Cols()}
	}
	ms, err := KronStages(dims)
	if err != nil {
		panic(err)
	}
	return 2 * ms
}

// KronMulTo computes dst = (F₁ ⊗ … ⊗ F_d)·x by mode products: the state
// starts as x viewed as a (Π nⱼ/n_d)×n_d tensor unfolding; each step
// multiplies the trailing mode by its factor (one GEMM, out = state·Fᵢᵀ)
// and rotates the next mode into trailing position by a transpose. After
// all d steps the state is the output tensor in row-major order.
//
// dst must have length Π Fᵢ.Rows(); x length Π Fᵢ.Cols(); scratch at
// least KronScratchLen(factors). dst, x, and scratch must not overlap.
// The factor list must be non-empty. Returns dst.
//
//lrm:noalloc — two header reuses per mode, all data in caller scratch
func KronMulTo(dst []float64, factors []*Dense, x []float64, scratch []float64) []float64 {
	m, n := 1, 1
	for _, f := range factors {
		m *= f.Rows()
		n *= f.Cols()
	}
	if len(dst) < m || len(x) < n {
		panic(fmt.Sprintf("mat: KronMulTo dst %d / x %d for a %d×%d product", len(dst), len(x), m, n))
	}
	half := len(scratch) / 2
	a, b := scratch[:half], scratch[half:]
	size := n
	copy(a[:size], x[:size])
	var in, out, tr Dense
	for i := len(factors) - 1; i >= 0; i-- {
		f := factors[i]
		rows := size / f.Cols()
		in.Reuse(rows, f.Cols(), a[:size])
		size = rows * f.Rows()
		out.Reuse(rows, f.Rows(), b[:size])
		MulABtTo(&out, &in, f)
		// Rotate: (rows × mᵢ) → (mᵢ × rows), landing back in a.
		tr.Reuse(f.Rows(), rows, a[:size])
		TransposeTo(&tr, &out)
	}
	copy(dst[:m], a[:m])
	return dst
}
