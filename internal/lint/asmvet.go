package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// AsmVet checks the hand-written assembly kernels against their Go
// prototypes — the contract `go vet`'s asmdecl enforces upstream,
// reimplemented here (stdlib-only, like the rest of the suite) and
// extended with the repository's own kernel policies:
//
//   - every TEXT symbol must have a bodyless Go declaration in the same
//     package, and vice versa;
//   - the declared argument size ($frame-argsize) must equal the ABI0
//     layout of the Go signature (parameters in order, then results,
//     with the result block pointer-aligned);
//   - every sym+off(FP) reference must name a parameter or result at
//     its correct ABI0 offset;
//   - kernels must be NOSPLIT (they are leaf functions on hot paths;
//     a stack split inside a micro-kernel would wreck both latency and
//     the no-alloc pins);
//   - a function that touches Y or Z registers must run VZEROUPPER
//     before every RET, or the next SSE-encoded float op pays the
//     AVX-SSE transition penalty — a silent 4× slowdown, exactly the
//     class of regression the CI perf gate exists to catch. Z coverage
//     is deliberately conservative: VZEROUPPER only architecturally
//     matters for the lower sixteen register files, but a kernel using
//     Z16–Z31 without dirtying Z0–Z15 is not a pattern this repository
//     has, and the blanket rule cannot be silently outgrown.
//
// The analyzer reads Package.SFiles, which the go tool has already
// filtered by file-name GOARCH suffix and build tags: under -tags noasm
// the file set is empty, and on amd64 builds the arm64 NEON kernels
// (gemm_arm64.s) are filtered out, so the amd64-specific checks only
// ever see amd64 assembly. (The ABI0 offset checks would agree anyway:
// every kernel argument is 8 bytes on both architectures.)
var AsmVet = &Analyzer{
	Name: "asmvet",
	Doc: "assembly TEXT blocks must agree with their Go prototypes " +
		"(ABI0 sizes and offsets, NOSPLIT, VZEROUPPER before RET)",
	RunProgram: runAsmVet,
}

// asmFunc is one parsed TEXT block.
type asmFunc struct {
	name    string
	file    string
	line    int
	flags   string
	frame   int64
	argsize int64
	hasArgs bool
	instrs  []asmInstr
	refs    []fpRef
	usesY   bool
	usesZ   bool
}

type asmInstr struct {
	line int
	op   string
}

type fpRef struct {
	line   int
	name   string
	offset int64
}

var (
	asmTextRx = regexp.MustCompile(`^TEXT\s+·([A-Za-z0-9_]+)\(SB\)\s*(?:,\s*([A-Z0-9|]+))?\s*,\s*\$(-?[0-9]+)(?:-([0-9]+))?`)
	asmFPRx   = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\+([0-9]+)\(FP\)`)
	asmYregRx = regexp.MustCompile(`\bY([0-9]|1[0-5])\b`)
	// Z0–Z31: the AVX-512 register file. \b keeps mnemonics (JZ, CBZ)
	// and labels from matching — the Z must start its own word.
	asmZregRx = regexp.MustCompile(`\bZ([0-9]|[12][0-9]|3[01])\b`)
)

// parseAsmFile splits one assembly source into TEXT blocks.
func parseAsmFile(path string) ([]*asmFunc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fns []*asmFunc
	var cur *asmFunc
	for i, raw := range strings.Split(string(data), "\n") {
		line := raw
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if m := asmTextRx.FindStringSubmatch(line); m != nil {
			cur = &asmFunc{name: m[1], file: path, line: i + 1, flags: m[2]}
			cur.frame, _ = strconv.ParseInt(m[3], 10, 64)
			if m[4] != "" {
				cur.argsize, _ = strconv.ParseInt(m[4], 10, 64)
				cur.hasArgs = true
			}
			fns = append(fns, cur)
			continue
		}
		if cur == nil || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, "GLOBL") || strings.HasPrefix(line, "DATA") {
			continue
		}
		op := line
		if sp := strings.IndexAny(op, " \t"); sp >= 0 {
			op = op[:sp]
		}
		cur.instrs = append(cur.instrs, asmInstr{line: i + 1, op: op})
		for _, m := range asmFPRx.FindAllStringSubmatch(line, -1) {
			off, _ := strconv.ParseInt(m[2], 10, 64)
			cur.refs = append(cur.refs, fpRef{line: i + 1, name: m[1], offset: off})
		}
		if asmYregRx.MatchString(line) {
			cur.usesY = true
		}
		if asmZregRx.MatchString(line) {
			cur.usesZ = true
		}
	}
	return fns, nil
}

// abi0Layout computes the stack-argument layout the assembly sees:
// parameters in declaration order, then results with the result block
// aligned to the pointer size. Returns name→offset and the total size.
func abi0Layout(sig *types.Signature, sizes types.Sizes) (map[string]int64, int64) {
	const ptrSize = 8
	align := func(off, a int64) int64 { return (off + a - 1) &^ (a - 1) }
	offsets := make(map[string]int64)
	off := int64(0)
	lay := func(tup *types.Tuple) {
		for i := 0; i < tup.Len(); i++ {
			v := tup.At(i)
			t := v.Type()
			off = align(off, sizes.Alignof(t))
			if v.Name() != "" && v.Name() != "_" {
				offsets[v.Name()] = off
			}
			off += sizes.Sizeof(t)
		}
	}
	lay(sig.Params())
	off = align(off, ptrSize)
	lay(sig.Results())
	return offsets, align(off, ptrSize)
}

func runAsmVet(pp *ProgramPass) error {
	// The declared frame layout is amd64's. The go tool filters SFiles
	// by GOARCH file suffix, so on the amd64 hosts that run this suite
	// only the _amd64.s kernels appear; and the layouts would agree on
	// arm64 regardless — every kernel argument is an 8-byte scalar or
	// pointer on both architectures.
	sizes := types.SizesFor("gc", "amd64")
	for _, pkg := range pp.Prog.Pkgs {
		if len(pkg.SFiles) == 0 {
			continue
		}
		// Bodyless Go declarations are the prototype side.
		protos := make(map[string]*ast.FuncDecl)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body == nil && fd.Recv == nil {
					protos[fd.Name.Name] = fd
				}
			}
		}
		seen := make(map[string]bool)
		for _, sfile := range pkg.SFiles {
			fns, err := parseAsmFile(sfile)
			if err != nil {
				pp.ReportAt(token.Position{Filename: sfile, Line: 1, Column: 1},
					"cannot read assembly file: %v", err)
				continue
			}
			for _, fn := range fns {
				seen[fn.name] = true
				checkAsmFunc(pp, pkg, fn, protos[fn.name], sizes)
			}
		}
		for name, fd := range protos {
			if !seen[name] {
				pp.Report(fd.Name.Pos(),
					"%s has no body and no TEXT block in the package's assembly files", name)
			}
		}
	}
	return nil
}

func checkAsmFunc(pp *ProgramPass, pkg *Package, fn *asmFunc, proto *ast.FuncDecl, sizes types.Sizes) {
	at := func(line int) token.Position {
		return token.Position{Filename: fn.file, Line: line, Column: 1}
	}
	if proto == nil {
		pp.ReportAt(at(fn.line),
			"TEXT ·%s has no bodyless Go declaration in package %s", fn.name, pkg.Types.Name())
		return
	}
	if !strings.Contains(fn.flags, "NOSPLIT") {
		pp.ReportAt(at(fn.line),
			"TEXT ·%s is missing NOSPLIT: kernel entry points must not grow the stack", fn.name)
	}
	obj, _ := pkg.Info.Defs[proto.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig := obj.Type().(*types.Signature)
	offsets, total := abi0Layout(sig, sizes)
	if fn.hasArgs && fn.argsize != total {
		pp.ReportAt(at(fn.line),
			"TEXT ·%s declares $%d-%d but the Go signature's ABI0 argument block is %d bytes",
			fn.name, fn.frame, fn.argsize, total)
	}
	for _, ref := range fn.refs {
		want, ok := offsets[ref.name]
		if !ok {
			pp.ReportAt(at(ref.line),
				"·%s references %s+%d(FP), but %s is not a parameter or result of the Go declaration",
				fn.name, ref.name, ref.offset, ref.name)
			continue
		}
		if ref.offset != want {
			pp.ReportAt(at(ref.line),
				"·%s references %s+%d(FP), but ABI0 places %s at offset %d",
				fn.name, ref.name, ref.offset, ref.name, want)
		}
	}
	if fn.usesY || fn.usesZ {
		wide := "Y"
		if fn.usesZ {
			wide = "Z"
			if fn.usesY {
				wide = "Y/Z"
			}
		}
		for i, in := range fn.instrs {
			if in.op != "RET" {
				continue
			}
			if i == 0 || fn.instrs[i-1].op != "VZEROUPPER" {
				pp.ReportAt(at(in.line),
					"·%s uses %s registers but returns without VZEROUPPER: the next SSE float op pays the AVX-SSE transition penalty",
					fn.name, wide)
			}
		}
	}
}
