package mat

import (
	"sync"
	"testing"
)

// TestEpilogueExactlyOnce proves the MulColsEpiTo contract that the
// epilogue observes every element of dst exactly once, with in-bounds
// rectangles, on both the serial path and the pooled tile path (forced
// via the parallel threshold). Shapes cross tile boundaries in both
// dimensions and include partial panels.
func TestEpilogueExactlyOnce(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{7, 5, 3},
		{64, 32, 8},
		{65, 33, 9},
		{130, 40, 70},
		{64, 128, 300},
	}
	for _, forcePool := range []bool{false, true} {
		saved := setParallelThreshold(1)
		if !forcePool {
			setParallelThreshold(1 << 62)
		}
		for _, sh := range shapes {
			a := randDenseSeed(t, sh.m, sh.k, int64(7*sh.m+sh.n))
			b := randDenseSeed(t, sh.k, sh.n, int64(13*sh.k+sh.m))
			seen := make([]int, sh.m*sh.n)
			var mu sync.Mutex
			MulColsEpiTo(New(sh.m, sh.n), a, b, func(r0, r1, c0, c1 int) {
				if r0 < 0 || r1 > sh.m || c0 < 0 || c1 > sh.n || r0 >= r1 || c0 >= c1 {
					t.Errorf("%dx%dx%d: epilogue rect [%d,%d)x[%d,%d) out of bounds", sh.m, sh.k, sh.n, r0, r1, c0, c1)
					return
				}
				mu.Lock()
				for i := r0; i < r1; i++ {
					for j := c0; j < c1; j++ {
						seen[i*sh.n+j]++
					}
				}
				mu.Unlock()
			})
			for idx, c := range seen {
				if c != 1 {
					t.Fatalf("%dx%dx%d (pool=%v): element %d observed %d times, want exactly once", sh.m, sh.k, sh.n, forcePool, idx, c)
				}
			}
		}
		setParallelThreshold(saved)
	}
}

// TestEpilogueBitIdentity checks that an order-independent per-element
// epilogue (adding a precomputed matrix, as the fused noise pass does)
// yields bit-identical results across the serial/pooled scheduling split
// and equals the unfused two-pass computation exactly.
func TestEpilogueBitIdentity(t *testing.T) {
	const m, k, n = 130, 70, 66
	a := randDenseSeed(t, m, k, 31)
	b := randDenseSeed(t, k, n, 32)
	add := randDenseSeed(t, m, n, 33)

	run := func() *Dense {
		dst := New(m, n)
		MulColsEpiTo(dst, a, b, func(r0, r1, c0, c1 int) {
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					dst.Set(i, j, dst.At(i, j)+add.At(i, j))
				}
			}
		})
		return dst
	}

	// Unfused reference: full product, then a second sweep.
	want := MulColsTo(New(m, n), a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want.Set(i, j, want.At(i, j)+add.At(i, j))
		}
	}

	saved := setParallelThreshold(1)
	viaPool := run()
	setParallelThreshold(1 << 62)
	viaSerial := run()
	setParallelThreshold(saved)

	if !viaPool.Equal(want) {
		t.Fatal("fused epilogue over the pool differs bitwise from the unfused two-pass result")
	}
	if !viaSerial.Equal(want) {
		t.Fatal("fused epilogue on the serial path differs bitwise from the unfused two-pass result")
	}
}

// TestEpilogueCounter pins the FusedEpilogueRuns accounting: one bump per
// product with an epilogue, none without.
func TestEpilogueCounter(t *testing.T) {
	a := randDenseSeed(t, 8, 8, 41)
	b := randDenseSeed(t, 8, 8, 42)
	before := FusedEpilogueRuns()
	MulColsTo(New(8, 8), a, b)
	if d := FusedEpilogueRuns() - before; d != 0 {
		t.Fatalf("plain MulColsTo bumped the fused-epilogue counter by %d", d)
	}
	MulColsEpiTo(New(8, 8), a, b, func(r0, r1, c0, c1 int) {})
	if d := FusedEpilogueRuns() - before; d != 1 {
		t.Fatalf("MulColsEpiTo bumped the fused-epilogue counter by %d, want 1", d)
	}
}
