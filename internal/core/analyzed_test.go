package core

import (
	"math"
	"strings"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// TestDecomposeAnalyzedMatchesDecompose: seeding the ALM with a
// caller-provided SVD must land in the same place as computing it
// internally — same tuned rank, a feasible factorization of the same
// quality — while running zero factorizations of its own.
func TestDecomposeAnalyzedMatchesDecompose(t *testing.T) {
	w := workload.Related(24, 32, 3, rng.New(8)).W
	svd := mat.FactorSVD(w)

	ref, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := mat.SVDCalls()
	got, err := DecomposeAnalyzed(w, svd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls := mat.SVDCalls() - before; calls != 0 {
		t.Fatalf("DecomposeAnalyzed ran %d factorizations, want 0", calls)
	}
	if got.B.Cols() != ref.B.Cols() {
		t.Fatalf("tuned rank %d vs Decompose's %d", got.B.Cols(), ref.B.Cols())
	}
	// Both must reconstruct W within the default tolerance and deliver
	// the same error objective: the injected SVD is the same starting
	// point, just not recomputed. (Bitwise equality is not guaranteed —
	// the internal SVD factors the Frobenius-normalized W, whose Jacobi
	// rotation schedule can differ — so compare the objective.)
	refSSE, gotSSE := ref.ExpectedSSE(1), got.ExpectedSSE(1)
	if math.Abs(gotSSE-refSSE) > 0.05*refSSE {
		t.Fatalf("objective drifted: %g vs %g", gotSSE, refSSE)
	}
	normW := math.Sqrt(mat.SquaredSum(w))
	if got.Residual > 1e-3*normW {
		t.Fatalf("analyzed decomposition infeasible: residual %g for ‖W‖=%g", got.Residual, normW)
	}
}

// TestDecomposeAnalyzedValidation: mismatched SVD shapes fail loudly,
// nil falls back to the plain path.
func TestDecomposeAnalyzedValidation(t *testing.T) {
	w := workload.Related(10, 14, 2, rng.New(9)).W
	wrong := mat.FactorSVD(workload.Related(8, 14, 2, rng.New(10)).W)
	if _, err := DecomposeAnalyzed(w, wrong, Options{}); err == nil || !strings.Contains(err.Error(), "do not factor") {
		t.Fatalf("mismatched SVD accepted: %v", err)
	}
	if _, err := DecomposeAnalyzed(w, &mat.SVD{}, Options{}); err == nil {
		t.Fatal("incomplete SVD accepted")
	}
	d, err := DecomposeAnalyzed(w, nil, Options{})
	if err != nil || d == nil {
		t.Fatalf("nil SVD fallback failed: %v", err)
	}
}
