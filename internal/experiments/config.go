// Package experiments is the benchmark harness that regenerates every
// table and figure of the paper's Section 6. Each FigureN function runs
// the corresponding parameter sweep over the paper's workloads, datasets
// and mechanisms and returns printable rows; cmd/lrmbench and the root
// bench_test.go drive it.
package experiments

import (
	"fmt"

	"lrm/internal/core"
	"lrm/internal/dataset"
	"lrm/internal/rng"
)

// Scale selects the grid size of every sweep.
type Scale int

const (
	// ScaleBench is the smallest meaningful grid, sized so the whole
	// bench suite finishes in minutes.
	ScaleBench Scale = iota
	// ScaleLight is the default CLI grid: the paper's shapes on reduced
	// domains (n ≤ 1024).
	ScaleLight
	// ScalePaper is the full grid of Table 1 (n up to 8192, 20 trials).
	ScalePaper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleBench:
		return "bench"
	case ScaleLight:
		return "light"
	case ScalePaper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Config parameterizes a figure run. The zero value is ScaleBench with
// per-scale defaults.
type Config struct {
	Scale Scale
	// Trials overrides the per-scale trial count (bench 10, light 20,
	// paper 20).
	Trials int
	// Seed makes the whole figure reproducible (default 1).
	Seed int64
	// Dataset restricts figures 4–9 to one dataset name; empty runs all
	// three.
	Dataset string
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		switch c.Scale {
		case ScalePaper:
			c.Trials = 20
		case ScaleLight:
			c.Trials = 20
		default:
			c.Trials = 10
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Grid accessors: every sweep in Section 6 is defined here, per scale.

func (c Config) domainSizes() []int {
	switch c.Scale {
	case ScalePaper:
		return []int{128, 256, 512, 1024, 2048, 4096, 8192}
	case ScaleLight:
		return []int{128, 256, 512, 1024}
	default:
		return []int{64, 128, 256}
	}
}

func (c Config) querySizes() []int {
	switch c.Scale {
	case ScalePaper:
		return []int{64, 128, 256, 512, 1024}
	case ScaleLight:
		return []int{64, 128, 256}
	default:
		return []int{16, 32, 64}
	}
}

// defaultN and defaultM are the fixed values used while another
// parameter sweeps.
func (c Config) defaultN() int {
	switch c.Scale {
	case ScalePaper:
		return 1024
	case ScaleLight:
		return 512
	default:
		return 128
	}
}

func (c Config) defaultM() int {
	switch c.Scale {
	case ScalePaper:
		return 256
	case ScaleLight:
		return 128
	default:
		return 64
	}
}

func (c Config) gammaGrid() []float64 {
	switch c.Scale {
	case ScalePaper:
		return []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	case ScaleLight:
		return []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
	default:
		return []float64{1e-4, 1e-1, 10}
	}
}

func (c Config) rankRatios() []float64 {
	switch c.Scale {
	case ScalePaper:
		return []float64{0.8, 1.0, 1.2, 1.4, 1.7, 2.1, 2.5, 3.0, 3.6}
	case ScaleLight:
		return []float64{0.8, 1.0, 1.2, 1.4, 1.7, 2.1}
	default:
		return []float64{0.8, 1.2, 2.1}
	}
}

func (c Config) sRatios() []float64 {
	switch c.Scale {
	case ScalePaper:
		return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	case ScaleLight:
		return []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	default:
		return []float64{0.2, 0.6, 1.0}
	}
}

// epsilonsFig23 are the privacy budgets of Figures 2–3.
func (Config) epsilonsFig23() []float64 { return []float64{1, 0.1, 0.01} }

// epsilonMain is the budget of Figures 4–9.
func (Config) epsilonMain() float64 { return 0.1 }

// mmMaxDomain caps the domain size at which the (cubic) matrix mechanism
// is still run, as the paper itself stops reporting it beyond Figure 6.
func (c Config) mmMaxDomain() int {
	switch c.Scale {
	case ScalePaper:
		return 512
	case ScaleLight:
		return 256
	default:
		return 128
	}
}

// lrmOptions tunes the decomposition iteration caps per scale.
func (c Config) lrmOptions() core.Options {
	switch c.Scale {
	case ScalePaper:
		return core.Options{MaxOuterIter: 120, MaxInnerIter: 6, MaxNesterovIter: 60}
	case ScaleLight:
		return core.Options{MaxOuterIter: 60, MaxInnerIter: 4, MaxNesterovIter: 40}
	default:
		return core.Options{MaxOuterIter: 50, MaxInnerIter: 3, MaxNesterovIter: 30}
	}
}

// sDefault is the WRelated base size used when s is not the swept
// parameter: 0.1·min(m,n). The low-rank regime n ≫ s² is where the paper
// reports LRM's order-of-magnitude advantage (its Figure 9 shows the
// advantage eroding as s grows toward min(m,n)).
func sDefault(m, n int) int {
	s := int(0.1 * float64(min(m, n)))
	if s < 1 {
		s = 1
	}
	return s
}

// datasetsFor returns the datasets a figure iterates over, generated at
// their paper cardinalities from the run seed.
func (c Config) datasetsFor() ([]*dataset.Dataset, error) {
	names := dataset.Names()
	if c.Dataset != "" {
		names = []string{c.Dataset}
	}
	out := make([]*dataset.Dataset, 0, len(names))
	for _, name := range names {
		d, err := dataset.ByName(name, rng.New(c.Seed+int64(len(name))))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// DefaultParams renders Table 1: the parameter grid of the experiments.
func DefaultParams(c Config) string {
	c = c.withDefaults()
	return fmt.Sprintf(`Table 1 — experiment parameters (scale=%s, trials=%d)
  gamma : %v
  r     : ratio x rank(W), ratios %v
  n     : %v (default %d)
  m     : %v (default %d)
  s     : ratio x min(m,n), ratios %v
  eps   : figures 2-3: %v; figures 4-9: %v
`, c.Scale, c.Trials, c.gammaGrid(), c.rankRatios(), c.domainSizes(), c.defaultN(),
		c.querySizes(), c.defaultM(), c.sRatios(), c.epsilonsFig23(), c.epsilonMain())
}
