package mechanism

import (
	"math"
	"testing"

	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestConsistentValidation(t *testing.T) {
	if _, err := (Consistent{}).Prepare(workload.Identity(4)); err == nil {
		t.Fatal("want error for missing base")
	}
	if _, err := (Consistent{Base: LaplaceResults{}}).Prepare(nil); err == nil {
		t.Fatal("want error for nil workload")
	}
	if (Consistent{}).Name() != "Consistent(?)" {
		t.Fatal("name without base")
	}
	if (Consistent{Base: LaplaceResults{}}).Name() != "NOR+proj" {
		t.Fatalf("name: %s", Consistent{Base: LaplaceResults{}}.Name())
	}
}

func TestConsistentReducesNORErrorOnLowRankWorkload(t *testing.T) {
	// NOR noise is isotropic in R^m; on a rank-2 workload of 24 queries
	// the projection should keep only ~2/24 of the noise energy.
	src := rng.New(1)
	w := workload.Related(24, 16, 2, src)
	x := src.UniformVec(16, 0, 100)
	exact := w.Answer(x)

	measure := func(m Mechanism, seed int64) float64 {
		p, err := m.Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(seed)
		var sse float64
		const trials = 40
		for trial := 0; trial < trials; trial++ {
			got, err := p.Answer(x, 1, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				d := got[i] - exact[i]
				sse += d * d
			}
		}
		return sse / trials
	}
	raw := measure(LaplaceResults{}, 7)
	projected := measure(Consistent{Base: LaplaceResults{}}, 7)
	// Same seed → same base noise stream; the projection must cut the
	// error to roughly rank/m ≈ 8%; allow generous slack.
	if projected > raw/4 {
		t.Fatalf("projection did not reduce NOR error: %g vs %g", projected, raw)
	}
}

func TestConsistentPreservesLRMAnswersApproximately(t *testing.T) {
	// LRM answers already live (almost) in col(W): projection is a no-op
	// up to the γ-relaxation residual.
	src := rng.New(2)
	w := workload.Related(20, 12, 3, src)
	x := src.UniformVec(12, 0, 50)
	base, err := (LRM{}).Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := (Consistent{Base: LRM{}}).Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: identical noise draw inside.
	a1, err := base.Answer(x, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := wrapped.Answer(x, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var diff, norm float64
	for i := range a1 {
		d := a2[i] - a1[i]
		diff += d * d
		norm += a1[i] * a1[i]
	}
	if diff > 1e-4*(1+norm) {
		t.Fatalf("projection moved LRM answers: rel diff %g", diff/(1+norm))
	}
}

func TestConsistentExpectedSSEIsNaN(t *testing.T) {
	p, err := (Consistent{Base: LaplaceResults{}}).Prepare(workload.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(p.ExpectedSSE(1)) {
		t.Fatal("wrapped mechanism should report no analytic SSE")
	}
}
