package mechanism

import (
	"fmt"

	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/sparse"
	"lrm/internal/workload"
)

// SparseStrategyPrepared is the scalable variant of StrategyPrepared for
// strategies that are structurally sparse (hierarchical trees and wavelet
// matrices have O(log n) non-zeros per column). It answers exactly like
// the dense template — release ŷ = A·x + Lap(Δ_A/ε), infer x̂ by least
// squares, answer W·x̂ — but every product is a CSR mat-vec and the
// inference is iterative (CGLS), so preparation needs no O(n³)
// pseudo-inverse and each answer costs O(iters·nnz(A) + nnz(W)).
type SparseStrategyPrepared struct {
	w       *workload.Workload
	wSparse *sparse.CSR
	a       *sparse.CSR
	delta   float64
	maxIter int
}

// NewSparseStrategyPrepared builds the sparse strategy mechanism for
// workload w with sparse strategy a. maxIter caps the CGLS iterations per
// answer (≤ 0 means the CGLS default of 2·n).
func NewSparseStrategyPrepared(w *workload.Workload, a *sparse.CSR, maxIter int) (*SparseStrategyPrepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	if a.Cols() != w.Domain() {
		return nil, fmt.Errorf("mechanism: strategy has %d columns, workload domain is %d", a.Cols(), w.Domain())
	}
	delta := a.MaxColAbsSum()
	if delta == 0 {
		return nil, fmt.Errorf("mechanism: zero strategy matrix")
	}
	return &SparseStrategyPrepared{
		w:       w,
		wSparse: sparse.FromDense(w.W, 0),
		a:       a,
		delta:   delta,
		maxIter: maxIter,
	}, nil
}

// Strategy returns the sparse strategy matrix.
func (p *SparseStrategyPrepared) Strategy() *sparse.CSR { return p.a }

// Sensitivity returns Δ_A.
func (p *SparseStrategyPrepared) Sensitivity() float64 { return p.delta }

// Answer implements Prepared.
//
//lrm:sanitizer — the strategy observations are Laplace-perturbed before inference
func (p *SparseStrategyPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != p.w.Domain() {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.w.Domain())
	}
	y := p.a.MulVec(x)
	lam := p.delta / float64(eps)
	for i := range y {
		y[i] += src.Laplace(lam)
	}
	res, err := sparse.CGLS(p.a, y, p.maxIter, 0)
	if err != nil {
		return nil, err
	}
	return p.wSparse.MulVec(res.X), nil
}

// ExpectedSSE implements Prepared: the iterative inference has the same
// fixed point as the dense pseudo-inverse, but no cheap closed form is
// evaluated here (computing ‖W·A⁺‖_F² would need the dense inverse this
// type exists to avoid).
func (p *SparseStrategyPrepared) ExpectedSSE(eps privacy.Epsilon) float64 { return NoAnalyticSSE() }
