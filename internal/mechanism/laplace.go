package mechanism

import (
	"fmt"

	"lrm/internal/mat"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// LaplaceData is the paper's LM baseline (noise on data, Section 3.2's
// M_D): perturb each unit count with Lap(1/ε) and answer W·x′. Its
// expected SSE is 2·ΣWᵢⱼ²/ε².
type LaplaceData struct{}

// Name implements Mechanism.
func (LaplaceData) Name() string { return "LM" }

// Prepare implements Mechanism.
func (LaplaceData) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	return &laplaceDataPrepared{w: w}, nil
}

type laplaceDataPrepared struct {
	w *workload.Workload
}

func (p *laplaceDataPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if len(x) != p.w.Domain() {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.w.Domain())
	}
	// Unit-count histogram: the identity workload has sensitivity 1.
	noisy, err := privacy.LaplaceMechanism(x, 1, eps, src)
	if err != nil {
		return nil, err
	}
	return mat.MulVec(p.w.W, noisy), nil
}

// AnswerMany implements BatchAnswerer: the unit counts of every column
// are perturbed (column-major draw order), then all B noisy histograms
// are pushed through W in one packed multi-RHS product.
func (p *laplaceDataPrepared) AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := checkBatchShape(x, p.w.Domain()); err != nil {
		return nil, err
	}
	noisy := x.Clone()
	if err := addLaplaceNoiseCols(noisy, 1, eps, src); err != nil {
		return nil, err
	}
	return mat.MulColsTo(mat.New(p.w.Queries(), x.Cols()), p.w.W, noisy), nil
}

func (p *laplaceDataPrepared) ExpectedSSE(eps privacy.Epsilon) float64 {
	e := float64(eps)
	return 2 * mat.SquaredSum(p.w.W) / (e * e)
}

// LaplaceResults is the noise-on-results baseline (Section 3.2's M_R,
// the intro's NOQ): answer W·x + Lap(Δ/ε)^m with Δ the workload
// sensitivity. Its expected SSE is 2·m·Δ²/ε².
type LaplaceResults struct{}

// Name implements Mechanism.
func (LaplaceResults) Name() string { return "NOR" }

// Prepare implements Mechanism.
func (LaplaceResults) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	return &laplaceResultsPrepared{w: w, delta: w.Sensitivity()}, nil
}

type laplaceResultsPrepared struct {
	w     *workload.Workload
	delta float64
}

func (p *laplaceResultsPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if len(x) != p.w.Domain() {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.w.Domain())
	}
	return privacy.LaplaceMechanism(p.w.Answer(x), p.delta, eps, src)
}

// AnswerMany implements BatchAnswerer: one packed multi-RHS product
// computes every column's exact answers, then Laplace noise is applied
// per column in ascending order.
func (p *laplaceResultsPrepared) AnswerMany(x *mat.Dense, eps privacy.Epsilon, src *rng.Source) (*mat.Dense, error) {
	if err := checkBatchShape(x, p.w.Domain()); err != nil {
		return nil, err
	}
	out := mat.MulColsTo(mat.New(p.w.Queries(), x.Cols()), p.w.W, x)
	if err := addLaplaceNoiseCols(out, p.delta, eps, src); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *laplaceResultsPrepared) ExpectedSSE(eps privacy.Epsilon) float64 {
	e := float64(eps)
	return 2 * float64(p.w.Queries()) * p.delta * p.delta / (e * e)
}
