package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive grammar. The dataflow analyzers are driven by declarations
// in the code under analysis, so new subsystems self-declare their
// privacy topology instead of growing tables inside the linter:
//
//	//lrm:source                 (func)   results carry raw, unreleased data
//	//lrm:source p q             (func)   the named parameters arrive raw
//	//lrm:source                 (field)  reads of the field yield raw data
//	//lrm:sanitizer              (func)   results are noise-protected
//	//lrm:sanitizer p            (func)   the named parameters are noised in place
//	//lrm:sink                   (func)   raw data must not reach its arguments
//	//lrm:sink return            (func)   the function's results are a release
//	                                      boundary: they must never be raw
//	//lrm:guardedby mu           (field)  accesses require the sibling lock
//	                                      field mu (sync.Mutex/RWMutex) held
//	//lrm:guardedby mu           (func)   the receiver's mu is held on entry
//	                                      (the callee-side half of the contract;
//	                                      call sites are checked for it)
//
// Trailing prose after the arguments is allowed and encouraged — it
// documents why. A sanitizer declaration is verified, not trusted:
// noiseflow additionally proves the function's body actually mixes
// randomness from an *rng.Source into the declared target (see
// noiseflow.go), so deleting the noise-add inside a declared sanitizer
// is itself a finding.

// funcDirectives are the //lrm: markers on one function declaration.
// Parameter references are stored as indices into paramsOf(signature)
// (receiver first), because the *types.Var objects differ between the
// source-checked and imported views of the same function.
type funcDirectives struct {
	decl *ast.FuncDecl
	pkg  *Package

	sourceResults bool   // //lrm:source (no args)
	sourceParams  []int  // //lrm:source p q
	sanitizeAll   bool   // //lrm:sanitizer (no args): results sanitized
	sanitizeVars  []int  // //lrm:sanitizer p: params noised in place
	sinkArgs      bool   // //lrm:sink [args]
	sinkReturn    bool   // //lrm:sink return
	guardedBy     string // //lrm:guardedby mu (methods: mu held on entry)
}

// fieldDirectives are the //lrm: markers on one struct field.
type fieldDirectives struct {
	source    bool
	guardedBy string // sibling lock field name
	pos       token.Pos
}

// directiveIndex is the program-wide view of every //lrm: privacy/lock
// directive, plus the malformed ones (reported by the analyzer that
// owns the directive kind, so a typo cannot silently declare nothing).
//
// Functions are keyed by funcKey and fields doubly: by the
// source-checked object (covers anonymous structs) and by a
// package-path/owner-type/field-name string (covers access from other
// packages, where the field object comes from export data).
type directiveIndex struct {
	funcs       map[string]*funcDirectives
	fieldsByObj map[*types.Var]*fieldDirectives
	fieldsByKey map[string]*fieldDirectives

	// problems are malformed directives: pos, directive kind, message.
	problems []directiveProblem
}

// funcDir resolves the directives on fn (source-checked or imported).
func (idx *directiveIndex) funcDir(fn *types.Func) *funcDirectives {
	if fn == nil {
		return nil
	}
	return idx.funcs[funcKey(fn)]
}

// fieldDir resolves the directives on the field a selection reaches.
func (idx *directiveIndex) fieldDir(sel *types.Selection) *fieldDirectives {
	field, ok := sel.Obj().(*types.Var)
	if !ok {
		return nil
	}
	if fd := idx.fieldsByObj[field]; fd != nil {
		return fd
	}
	if named, ok := derefType(sel.Recv()).(*types.Named); ok {
		return idx.fieldsByKey[fieldKey(field, named.Obj().Name())]
	}
	return nil
}

// structHasSource reports whether the struct type behind recv declares
// any //lrm:source field — used to treat its other fields as metadata.
func (idx *directiveIndex) structHasSource(recv types.Type) bool {
	t := derefType(recv)
	owner := ""
	if named, ok := t.(*types.Named); ok {
		owner = named.Obj().Name()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if fd := idx.fieldsByObj[f]; fd != nil && fd.source {
			return true
		}
		if owner != "" {
			if fd := idx.fieldsByKey[fieldKey(f, owner)]; fd != nil && fd.source {
				return true
			}
		}
	}
	return false
}

func fieldKey(field *types.Var, owner string) string {
	pkg := ""
	if field.Pkg() != nil {
		pkg = field.Pkg().Path()
	}
	return pkg + "." + owner + "." + field.Name()
}

type directiveProblem struct {
	pos  token.Pos
	kind string // "source", "sanitizer", "sink", "guardedby"
	msg  string
}

// directiveArgs splits "//lrm:<name> arg arg — prose" into its
// arguments, cutting the free-text tail at the first token that is not
// a plain identifier. ok is false when c is not the named directive.
func directiveArgs(c *ast.Comment, name string) (args []string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//lrm:"+name)
	if !found || (text != "" && text[0] != ' ' && text[0] != '\t') {
		return nil, false
	}
	for _, f := range strings.Fields(text) {
		if !isIdentWord(f) {
			break
		}
		args = append(args, f)
	}
	return args, true
}

func isIdentWord(s string) bool {
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case '0' <= r && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// buildDirectiveIndex scans every declaration in the program.
func buildDirectiveIndex(prog *Program) *directiveIndex {
	idx := &directiveIndex{
		funcs:       make(map[string]*funcDirectives),
		fieldsByObj: make(map[*types.Var]*fieldDirectives),
		fieldsByKey: make(map[string]*fieldDirectives),
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					idx.addFunc(pkg, fd)
				}
				// Named struct types: index their fields under the
				// owner's name so imported views resolve too.
				if gd, ok := decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if st, ok := ts.Type.(*ast.StructType); ok {
							idx.addStruct(pkg, ts.Name.Name, st)
						}
					}
				}
			}
			// Anonymous struct types anywhere else (package variables,
			// locals, nested literals): same-package access only, keyed
			// by object identity.
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.TypeSpec:
					if _, ok := node.Type.(*ast.StructType); ok {
						return false // handled above with the owner name
					}
				case *ast.StructType:
					idx.addStruct(pkg, "", node)
				}
				return true
			})
		}
	}
	return idx
}

func (idx *directiveIndex) addFunc(pkg *Package, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	var dirs *funcDirectives
	ensure := func() *funcDirectives {
		if dirs == nil {
			dirs = &funcDirectives{decl: fd, pkg: pkg}
			idx.funcs[funcKey(fn)] = dirs
		}
		return dirs
	}
	sig := fn.Type().(*types.Signature)
	paramByName := make(map[string]int)
	for i, p := range paramsOf(sig) {
		if p.Name() != "" {
			paramByName[p.Name()] = i
		}
	}
	for _, c := range fd.Doc.List {
		if args, ok := directiveArgs(c, "source"); ok {
			d := ensure()
			if len(args) == 0 {
				d.sourceResults = true
				continue
			}
			d.sourceParams = append(d.sourceParams, idx.resolveParams(c, "source", fn.Name(), args, paramByName)...)
		}
		if args, ok := directiveArgs(c, "sanitizer"); ok {
			d := ensure()
			if len(args) == 0 {
				d.sanitizeAll = true
				continue
			}
			d.sanitizeVars = append(d.sanitizeVars, idx.resolveParams(c, "sanitizer", fn.Name(), args, paramByName)...)
		}
		if args, ok := directiveArgs(c, "sink"); ok {
			d := ensure()
			switch {
			case len(args) == 0 || args[0] == "args":
				d.sinkArgs = true
			case args[0] == "return":
				d.sinkReturn = true
			default:
				idx.problems = append(idx.problems, directiveProblem{
					pos: c.Pos(), kind: "sink",
					msg: "malformed //lrm:sink: want no argument, \"args\", or \"return\", got " + args[0],
				})
			}
		}
		if args, ok := directiveArgs(c, "guardedby"); ok {
			if len(args) != 1 {
				idx.problems = append(idx.problems, directiveProblem{
					pos: c.Pos(), kind: "guardedby",
					msg: "malformed //lrm:guardedby on a function: want exactly one receiver lock-field name",
				})
				continue
			}
			if sig.Recv() == nil {
				idx.problems = append(idx.problems, directiveProblem{
					pos: c.Pos(), kind: "guardedby",
					msg: "//lrm:guardedby on a function requires a method receiver to hang the lock off",
				})
				continue
			}
			ensure().guardedBy = args[0]
		}
	}
}

// resolveParams maps directive argument names to parameter indices,
// recording a problem for any name that matches no parameter.
func (idx *directiveIndex) resolveParams(c *ast.Comment, kind, fn string, args []string, byName map[string]int) []int {
	var out []int
	for _, a := range args {
		i, ok := byName[a]
		if !ok {
			idx.problems = append(idx.problems, directiveProblem{
				pos: c.Pos(), kind: kind,
				msg: "//lrm:" + kind + " names " + a + ", which is not a parameter of " + fn,
			})
			continue
		}
		out = append(out, i)
	}
	return out
}

func (idx *directiveIndex) addStruct(pkg *Package, owner string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		var comments []*ast.Comment
		if field.Doc != nil {
			comments = append(comments, field.Doc.List...)
		}
		if field.Comment != nil {
			comments = append(comments, field.Comment.List...)
		}
		for _, c := range comments {
			source := false
			guarded := ""
			if _, ok := directiveArgs(c, "source"); ok {
				source = true
			}
			if args, ok := directiveArgs(c, "guardedby"); ok {
				if len(args) != 1 {
					idx.problems = append(idx.problems, directiveProblem{
						pos: c.Pos(), kind: "guardedby",
						msg: "malformed //lrm:guardedby: want exactly one sibling lock-field name",
					})
					continue
				}
				guarded = args[0]
			}
			if !source && guarded == "" {
				continue
			}
			for _, name := range field.Names {
				v, _ := pkg.Info.Defs[name].(*types.Var)
				if v == nil {
					continue
				}
				fd := idx.fieldsByObj[v]
				if fd == nil {
					fd = &fieldDirectives{pos: c.Pos()}
					idx.fieldsByObj[v] = fd
					if owner != "" {
						idx.fieldsByKey[fieldKey(v, owner)] = fd
					}
				}
				if source {
					fd.source = true
				}
				if guarded != "" {
					fd.guardedBy = guarded
				}
			}
		}
	}
}

// reportProblems emits the malformed directives of one kind.
func (idx *directiveIndex) reportProblems(report func(token.Pos, string, ...any), kinds ...string) {
	for _, p := range idx.problems {
		for _, k := range kinds {
			if p.kind == k {
				report(p.pos, "%s", p.msg)
			}
		}
	}
}
