package privacy

import (
	"math"
	"testing"

	"lrm/internal/rng"
)

func TestExponentialMechanismPrefersHighScores(t *testing.T) {
	src := rng.New(1)
	scores := []float64{0, 0, 10, 0}
	counts := make([]int, 4)
	const trials = 20_000
	for i := 0; i < trials; i++ {
		idx, err := ExponentialMechanism(scores, 1, 1, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	// Index 2 should dominate: weight ratio exp(5) ≈ 148 per competitor.
	if frac := float64(counts[2]) / trials; frac < 0.95 {
		t.Fatalf("best index chosen %v of the time, want > 0.95", frac)
	}
}

func TestExponentialMechanismDistribution(t *testing.T) {
	// With scores {0, s} the odds must be exp(ε·s/2) for sensitivity 1.
	src := rng.New(2)
	scores := []float64{0, 2}
	const eps = 1.0
	wantOdds := math.Exp(eps * 2 / 2)
	count1 := 0
	const trials = 100_000
	for i := 0; i < trials; i++ {
		idx, err := ExponentialMechanism(scores, 1, Epsilon(eps), src)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 1 {
			count1++
		}
	}
	gotOdds := float64(count1) / float64(trials-count1)
	if math.Abs(gotOdds-wantOdds) > 0.15*wantOdds {
		t.Fatalf("odds = %v, want ~%v", gotOdds, wantOdds)
	}
}

func TestExponentialMechanismLargeScoresStable(t *testing.T) {
	src := rng.New(3)
	idx, err := ExponentialMechanism([]float64{1e9, 1e9 + 1}, 1, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 && idx != 1 {
		t.Fatalf("index %d out of range", idx)
	}
}

func TestExponentialMechanismErrors(t *testing.T) {
	src := rng.New(4)
	if _, err := ExponentialMechanism(nil, 1, 1, src); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := ExponentialMechanism([]float64{1}, 0, 1, src); err == nil {
		t.Fatal("zero sensitivity accepted")
	}
	if _, err := ExponentialMechanism([]float64{1}, 1, 0, src); err == nil {
		t.Fatal("zero epsilon accepted")
	}
}

func TestGeometricMechanismMoments(t *testing.T) {
	// Two-sided geometric with α = e^{−ε}: variance 2α/(1−α)².
	src := rng.New(5)
	const eps = 0.5
	alpha := math.Exp(-eps)
	wantVar := 2 * alpha / ((1 - alpha) * (1 - alpha))
	var sum, sumSq float64
	const trials = 200_000
	for i := 0; i < trials; i++ {
		v, err := GeometricMechanism(100, 1, Epsilon(eps), src)
		if err != nil {
			t.Fatal(err)
		}
		d := float64(v - 100)
		sum += d
		sumSq += d * d
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.05*math.Sqrt(wantVar) {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-wantVar) > 0.05*wantVar {
		t.Fatalf("variance = %v, want ~%v", variance, wantVar)
	}
}

func TestGeometricMechanismInteger(t *testing.T) {
	src := rng.New(6)
	for i := 0; i < 100; i++ {
		v, err := GeometricMechanism(7, 2, 0.1, src)
		if err != nil {
			t.Fatal(err)
		}
		_ = v // any int64 is fine; the point is it compiles to integers
	}
	if _, err := GeometricMechanism(0, 0, 1, src); err == nil {
		t.Fatal("zero sensitivity accepted")
	}
}

func TestGaussianMechanismCalibration(t *testing.T) {
	src := rng.New(7)
	const (
		eps   = 0.5
		delta = 1e-5
		sens  = 2.0
	)
	wantSigma := sens * math.Sqrt(2*math.Log(1.25/delta)) / eps
	exact := make([]float64, 50_000)
	noisy, err := GaussianMechanism(exact, sens, Epsilon(eps), delta, src)
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	for _, v := range noisy {
		sumSq += v * v
	}
	gotSigma := math.Sqrt(sumSq / float64(len(noisy)))
	if math.Abs(gotSigma-wantSigma) > 0.05*wantSigma {
		t.Fatalf("sigma = %v, want ~%v", gotSigma, wantSigma)
	}
}

func TestGaussianMechanismErrors(t *testing.T) {
	src := rng.New(8)
	if _, err := GaussianMechanism([]float64{1}, 1, 2, 1e-5, src); err == nil {
		t.Fatal("eps > 1 accepted")
	}
	if _, err := GaussianMechanism([]float64{1}, 1, 0.5, 0, src); err == nil {
		t.Fatal("delta = 0 accepted")
	}
	if _, err := GaussianMechanism([]float64{1}, -1, 0.5, 1e-5, src); err == nil {
		t.Fatal("negative sensitivity accepted")
	}
}

func TestAdvancedCompositionBeatsBasic(t *testing.T) {
	// For many small-ε mechanisms, advanced composition gives a smaller
	// total ε than the basic k·ε bound.
	const eps = 0.01
	const k = 1000
	got, deltaOut, err := AdvancedComposition(eps, 0, k, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	basic := Epsilon(k * eps)
	if got >= basic {
		t.Fatalf("advanced ε' = %v not below basic %v", float64(got), float64(basic))
	}
	if deltaOut != 1e-6 {
		t.Fatalf("δ' = %v, want 1e-6", deltaOut)
	}
}

func TestAdvancedCompositionErrors(t *testing.T) {
	if _, _, err := AdvancedComposition(1, 0, 0, 1e-6); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := AdvancedComposition(1, 0, 5, 0); err == nil {
		t.Fatal("slack=0 accepted")
	}
	if _, _, err := AdvancedComposition(0, 0, 5, 1e-6); err == nil {
		t.Fatal("eps=0 accepted")
	}
}
