package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"lrm/internal/mat"
)

// RankTrial reports one candidate rank from TuneRank.
type RankTrial struct {
	// Ratio is the multiple of rank(W) tried.
	Ratio float64
	// Rank is the resulting inner dimension r.
	Rank int
	// ExpectedSSE is the decomposition objective 2·Φ·Δ²/ε² at ε = 1.
	ExpectedSSE float64
	// Residual is ‖W − BL‖_F of the trial decomposition.
	Residual float64
	// Seconds is the decomposition time.
	Seconds float64
	// Converged reports feasibility.
	Converged bool
}

// TuneRank sweeps the inner dimension r over ratio·rank(W) for the given
// ratios (nil means the paper's Figure 3 guidance {1.0, 1.2, 1.4}) and
// returns the rank whose decomposition has the lowest expected error,
// along with every trial for inspection. This is the programmatic form of
// the paper's Section 6.1 finding: accuracy collapses for r < rank(W) and
// flattens beyond ≈1.2·rank(W) while cost keeps growing, so a small sweep
// just above rank(W) finds the knee.
//
// Duplicate ranks arising from rounding are tried once. The sweep costs
// one full decomposition per distinct rank; use it when the workload is
// answered many times and the one-off optimization is worth tuning.
func TuneRank(w *mat.Dense, ratios []float64, opts Options) (best int, trials []RankTrial, err error) {
	if w == nil || w.Rows() == 0 || w.Cols() == 0 {
		return 0, nil, errors.New("core: empty workload matrix")
	}
	if len(ratios) == 0 {
		ratios = []float64{1.0, 1.2, 1.4}
	}
	baseRank := mat.Rank(w)
	if baseRank == 0 {
		return 0, nil, errors.New("core: zero workload matrix")
	}
	maxRank := w.Rows()
	if w.Cols() < maxRank {
		maxRank = w.Cols()
	}
	seen := map[int]bool{}
	bestSSE := math.Inf(1)
	for _, ratio := range ratios {
		if ratio <= 0 {
			return 0, nil, fmt.Errorf("core: non-positive ratio %g", ratio)
		}
		r := int(math.Ceil(ratio * float64(baseRank)))
		if r < 1 {
			r = 1
		}
		// The inner dimension never needs to exceed min(m, n): B·L of that
		// shape already spans every possible factorization.
		if r > maxRank {
			r = maxRank
		}
		if seen[r] {
			continue
		}
		seen[r] = true
		o := opts
		o.Rank = r
		start := time.Now()
		d, derr := Decompose(w, o)
		if derr != nil {
			return 0, trials, fmt.Errorf("core: rank %d: %w", r, derr)
		}
		trial := RankTrial{
			Ratio:       ratio,
			Rank:        r,
			ExpectedSSE: d.ExpectedSSE(1),
			Residual:    d.Residual,
			Seconds:     time.Since(start).Seconds(),
			Converged:   d.Converged,
		}
		trials = append(trials, trial)
		// Prefer feasible trials; among those, the lowest objective.
		if trial.Converged && trial.ExpectedSSE < bestSSE {
			bestSSE = trial.ExpectedSSE
			best = trial.Rank
		}
	}
	if best == 0 {
		// No trial converged: fall back to the lowest-residual one.
		bestRes := math.Inf(1)
		for _, tr := range trials {
			if tr.Residual < bestRes {
				bestRes = tr.Residual
				best = tr.Rank
			}
		}
	}
	return best, trials, nil
}
