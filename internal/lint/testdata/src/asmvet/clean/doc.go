// Package clean holds asmvet fixtures that must produce no
// diagnostics: TEXT blocks in full agreement with their Go prototypes.
package clean
