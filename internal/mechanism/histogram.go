package mechanism

import (
	"fmt"

	"lrm/internal/hist"
	"lrm/internal/privacy"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// Histogram adapts the bucketized histogram publication of Xu et al.
// (ICDE 2012, the paper's reference [29]) to the batch-query interface:
// the histogram is published once under ε-DP with bucket smoothing, and
// the workload is answered on the published estimate.
type Histogram struct {
	// Buckets is B, the bucket budget; zero picks max(1, n/16).
	Buckets int
	// StructureFirst selects the Xu et al. StructureFirst variant
	// (exponential-mechanism boundaries + noisy bucket sums) instead of
	// the default NoiseFirst.
	StructureFirst bool
	// Auto selects the NoiseFirst bucket count from the noisy counts at
	// answer time (hist.NoiseFirstAuto) — still exactly ε-DP. Ignored
	// when StructureFirst is set; Buckets is ignored when Auto is set.
	Auto bool
	// Options tunes the StructureFirst variant; ignored by NoiseFirst.
	Options hist.StructureFirstOptions
}

// Name implements Mechanism.
func (h Histogram) Name() string {
	if h.StructureFirst {
		return "SF"
	}
	return "NF"
}

// Prepare implements Mechanism.
func (h Histogram) Prepare(w *workload.Workload) (Prepared, error) {
	if w == nil || w.W == nil {
		return nil, fmt.Errorf("mechanism: nil workload")
	}
	n := w.Domain()
	b := h.Buckets
	if b == 0 {
		b = n / 16
		if b < 1 {
			b = 1
		}
	}
	if b < 1 || b > n {
		return nil, fmt.Errorf("mechanism: histogram buckets %d out of range [1,%d]", b, n)
	}
	opt := h.Options
	opt.Buckets = b
	return &histogramPrepared{w: w, buckets: b, structureFirst: h.StructureFirst, auto: h.Auto, opt: opt}, nil
}

type histogramPrepared struct {
	w              *workload.Workload
	buckets        int
	structureFirst bool
	auto           bool
	opt            hist.StructureFirstOptions
}

// Answer implements Prepared.
func (p *histogramPrepared) Answer(x []float64, eps privacy.Epsilon, src *rng.Source) ([]float64, error) {
	if err := eps.Validate(); err != nil {
		return nil, err
	}
	if len(x) != p.w.Domain() {
		return nil, fmt.Errorf("mechanism: data length %d != domain %d", len(x), p.w.Domain())
	}
	var res *hist.Result
	var err error
	switch {
	case p.structureFirst:
		res, err = hist.StructureFirst(x, p.opt, eps, src)
	case p.auto:
		res, err = hist.NoiseFirstAuto(x, eps, src)
	default:
		res, err = hist.NoiseFirst(x, p.buckets, eps, src)
	}
	if err != nil {
		return nil, err
	}
	return p.w.Answer(res.Estimate), nil
}

// ExpectedSSE implements Prepared: bucket bias is data-dependent, so no
// closed form exists.
func (p *histogramPrepared) ExpectedSSE(eps privacy.Epsilon) float64 { return NoAnalyticSSE() }
