// Spatial: batch queries over a two-dimensional grid. Cross-tabulations
// (row and column marginals) over a flattened d1×d2 grid are heavily
// correlated — the situation the paper's introduction motivates with the
// NY/NJ example — and their workload matrix has rank d1+d2−1 ≪ n, the
// regime where the low-rank decomposition pays off. A second, over-
// complete rectangle batch (more queries than cells) shows the free
// consistency projection: noise-on-results noise orthogonal to the
// workload's column space is removed by post-processing alone.
package main

import (
	"fmt"

	"lrm"
)

func main() {
	const trials = 8
	eps := lrm.Epsilon(0.1)

	// --- Workload A: marginals over a 16×16 grid (rank 31 ≪ 256) ---
	{
		const d1, d2 = 16, 16
		n := d1 * d2
		data := lrm.SocialNetwork(4096, lrm.NewSource(1)).Merge(n)
		w := lrm.MarginalWorkload(d1, d2)
		fmt.Printf("workload %-14s  %4d queries × %d cells, rank %d, sensitivity %.0f\n",
			"marginals", w.Queries(), w.Domain(), w.Rank(), w.Sensitivity())
		for _, mech := range []lrm.Mechanism{
			lrm.LaplaceData{},
			lrm.LaplaceResults{},
			// A tight explicit γ: the counts are large, so even a small
			// residual ‖W−BL‖ would contribute a visible bias (Theorem 3's
			// data-dependent term).
			lrm.LRM{Options: lrm.DecomposeOptions{Gamma: 1e-6}},
		} {
			meas, err := lrm.Evaluate(mech, w, data.Counts, eps, trials, lrm.NewSource(3))
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-9s avg squared error %.4g\n", mech.Name(), meas.AvgSquaredError)
		}
		fmt.Println()
	}

	// --- Workload B: 160 random rectangles over an 8×8 grid (m > n, so
	// col(W) is a 64-dimensional subspace of R¹⁶⁰) ---
	{
		const d1, d2 = 8, 8
		n := d1 * d2
		data := lrm.SocialNetwork(4096, lrm.NewSource(1)).Merge(n)
		w := lrm.Range2DWorkload(160, d1, d2, lrm.NewSource(2))
		fmt.Printf("workload %-14s  %4d queries × %d cells, rank %d, sensitivity %.0f\n",
			w.Name, w.Queries(), w.Domain(), w.Rank(), w.Sensitivity())
		for _, mech := range []lrm.Mechanism{
			lrm.LaplaceData{},
			lrm.LaplaceResults{},
			lrm.Consistent{Base: lrm.LaplaceResults{}},
		} {
			meas, err := lrm.Evaluate(mech, w, data.Counts, eps, trials, lrm.NewSource(3))
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-9s avg squared error %.4g\n", mech.Name(), meas.AvgSquaredError)
		}
	}

	fmt.Println()
	fmt.Println("Marginals: 32 queries spanning a rank-31 space — LRM's optimizer")
	fmt.Println("(which always dominates both classical strategies by construction)")
	fmt.Println("reshapes the noise inside that space and matches or beats the")
	fmt.Println("better Laplace baseline. Overcomplete rectangles: NOR+proj removes")
	fmt.Println("the (m−rank)/m fraction of noise-on-results noise lying outside")
	fmt.Println("col(W) — free post-processing, no extra privacy budget.")
}
