package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"lrm/internal/mat"
)

// Fingerprint returns a stable content hash of a workload matrix: SHA-256
// over its dimensions and the IEEE-754 bits of every entry, hex-encoded.
// Two matrices fingerprint equal iff they have the same shape and
// bit-identical data, so the fingerprint can key caches of
// workload-derived state (decompositions, prepared mechanisms) both in
// memory and on disk — it is filename-safe by construction.
func Fingerprint(w *mat.Dense) string {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(w.Rows()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(w.Cols()))
	h.Write(hdr[:])
	var chunk [1024]byte
	data := w.RawData()
	for len(data) > 0 {
		n := len(chunk) / 8
		if n > len(data) {
			n = len(data)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], math.Float64bits(data[i]))
		}
		h.Write(chunk[:n*8])
		data = data[n:]
	}
	return hex.EncodeToString(h.Sum(nil))
}
