package core

import (
	"math"
	"testing"

	"lrm/internal/mat"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

func TestDecomposeExactRecovery(t *testing.T) {
	// A low-rank workload must be decomposed with small residual.
	w := workload.Related(20, 30, 3, rng.New(1)).W
	d, err := Decompose(w, Options{Gamma: 1e-3 * mat.FrobeniusNorm(w)})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Converged {
		t.Fatalf("did not converge: residual %v after %d iters", d.Residual, d.OuterIterations)
	}
	if d.Residual > 1e-3*mat.FrobeniusNorm(w) {
		t.Fatalf("residual %v too large", d.Residual)
	}
	recon := mat.Mul(d.B, d.L)
	if !recon.EqualApprox(w, 1e-2*mat.MaxAbs(w)+1e-2) {
		t.Fatal("B·L does not reconstruct W")
	}
}

func TestDecomposeFeasibility(t *testing.T) {
	w := workload.Range(15, 24, rng.New(2)).W
	d, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// After Normalize, Δ(L) = 1 exactly (within roundoff).
	if delta := d.Sensitivity(); math.Abs(delta-1) > 1e-9 {
		t.Fatalf("Δ(L) = %v, want 1", delta)
	}
	// Every column individually feasible.
	for j := 0; j < d.L.Cols(); j++ {
		var s float64
		for i := 0; i < d.L.Rows(); i++ {
			s += math.Abs(d.L.At(i, j))
		}
		if s > 1+1e-9 {
			t.Fatalf("column %d has L1 norm %v", j, s)
		}
	}
}

func TestDecomposeRankOption(t *testing.T) {
	w := workload.Related(16, 20, 2, rng.New(3)).W
	d, err := Decompose(w, Options{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.B.Cols() != 5 || d.L.Rows() != 5 {
		t.Fatalf("inner dims %d/%d, want 5", d.B.Cols(), d.L.Rows())
	}
	// Default rank = ceil(1.2·rank(W)) = ceil(2.4) = 3.
	d2, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.B.Cols() != 3 {
		t.Fatalf("default inner dim = %d, want 3", d2.B.Cols())
	}
}

func TestDecomposeBeatsNoiseOnData(t *testing.T) {
	// The paper's core claim: on correlated workloads, the optimized
	// decomposition yields lower expected error than noise-on-data,
	// whose SSE is 2·ΣWᵢⱼ²/ε² (identity strategy, sensitivity 1).
	// Low-rank workloads: LRM must clearly beat NOD. (On full-rank
	// workloads like Prefix the paper itself shows LM can win at small n —
	// Figure 4 — so no such assertion is made there.)
	src := rng.New(4)
	for _, w := range []*workload.Workload{
		workload.Related(24, 32, 3, src),
		workload.Related(30, 20, 2, src),
	} {
		d, err := Decompose(w.W, Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		const eps = 1.0
		lrmSSE := d.ExpectedSSE(eps)
		nodSSE := 2 * mat.SquaredSum(w.W) / (eps * eps)
		if lrmSSE > nodSSE*0.8 {
			t.Fatalf("%s: LRM SSE %v not clearly below NOD %v", w.Name, lrmSSE, nodSSE)
		}
	}
	// Marginal workload (the intro's correlated-counts setting): LRM must
	// be at least competitive with NOD.
	w := workload.Marginal(6, 8)
	d, err := Decompose(w.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lrm, nod := d.ExpectedSSE(1), 2*mat.SquaredSum(w.W); lrm > nod*1.1 {
		t.Fatalf("Marginal: LRM SSE %v much worse than NOD %v", lrm, nod)
	}
}

func TestDecomposeIntroExample(t *testing.T) {
	// Section 1's running example: W for {q1,q2,q3} over 4 states.
	// NOD achieves SSE 40/ε²; the optimal strategy given achieves 39/ε².
	// LRM must do at least as well as NOD and not beat the optimum.
	w := mat.FromRows([][]float64{
		{0, 2, 1, 1},
		{0, 1, 0, 2},
		{1, 0, 2, 2},
	})
	// The paper exhibits a sensitivity-1 strategy achieving 39/ε² and
	// notes NOD achieves 40/ε²; LRM's optimizer finds 38/ε² (the paper's
	// example strategy is illustrative, not globally optimal). Require a
	// genuinely feasible decomposition that beats NOD.
	d, err := Decompose(w, Options{Rank: 3, Gamma: 1e-5, MaxOuterIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Converged || d.Residual > 1e-4 {
		t.Fatalf("not feasible: converged=%v residual=%v", d.Converged, d.Residual)
	}
	sse := d.ExpectedSSE(1)
	if sse > 40 {
		t.Fatalf("LRM SSE %v, want < 40 (NOD)", sse)
	}
	if sse < 35 {
		t.Fatalf("LRM SSE %v suspiciously low (infeasible?)", sse)
	}
}

func TestDecomposeScaleInvariance(t *testing.T) {
	// Lemma 2: rescaling (B,L) -> (αB, L/α) preserves the objective.
	w := workload.Related(10, 12, 2, rng.New(5)).W
	d, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	obj := d.Scale() * d.Sensitivity() * d.Sensitivity()
	alpha := 3.7
	b2 := mat.Scale(alpha, d.B)
	l2 := mat.Scale(1/alpha, d.L)
	d2 := &Decomposition{B: b2, L: l2}
	obj2 := d2.Scale() * d2.Sensitivity() * d2.Sensitivity()
	if math.Abs(obj-obj2) > 1e-9*obj {
		t.Fatalf("objective not scale-invariant: %v vs %v", obj, obj2)
	}
}

func TestDecomposeRelaxationLoosensResidual(t *testing.T) {
	w := workload.Range(16, 32, rng.New(6)).W
	norm := mat.FrobeniusNorm(w)
	tight, err := Decompose(w, Options{Gamma: 1e-4 * norm})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Decompose(w, Options{Gamma: 0.3 * norm})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Residual > 0.3*norm+1e-9 {
		t.Fatalf("loose run violated its tolerance: %v", loose.Residual)
	}
	if !tight.Converged || tight.Residual > 1e-4*norm+1e-9 {
		t.Fatalf("tight run did not meet its tolerance: converged=%v residual=%v",
			tight.Converged, tight.Residual)
	}
	// The looser program can only do at least as well on the objective
	// (its feasible set is a superset of the tight one's).
	if loose.ExpectedSSE(1) > tight.ExpectedSSE(1)*(1+0.05) {
		t.Fatalf("loose SSE %v worse than tight %v despite larger feasible set",
			loose.ExpectedSSE(1), tight.ExpectedSSE(1))
	}
}

func TestDecomposeAblationSolvers(t *testing.T) {
	// Both inner solvers must reach comparable objective values.
	w := workload.Related(12, 16, 2, rng.New(7)).W
	dN, err := Decompose(w, Options{Solver: SolverNesterov})
	if err != nil {
		t.Fatal(err)
	}
	dP, err := Decompose(w, Options{Solver: SolverProjectedGradient})
	if err != nil {
		t.Fatal(err)
	}
	if dP.ExpectedSSE(1) > 2*dN.ExpectedSSE(1)+1e-9 {
		t.Fatalf("PG ablation much worse: %v vs %v", dP.ExpectedSSE(1), dN.ExpectedSSE(1))
	}
}

func TestDecomposeFixedPenaltyAblation(t *testing.T) {
	w := workload.Related(10, 12, 2, rng.New(8)).W
	d, err := Decompose(w, Options{BetaDoubleEvery: -1, MaxOuterIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if d.B == nil || !d.B.IsFinite() || !d.L.IsFinite() {
		t.Fatal("fixed-penalty ablation produced non-finite factors")
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(mat.New(0, 0), Options{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	bad := mat.Eye(3)
	bad.Set(0, 1, math.NaN())
	if _, err := Decompose(bad, Options{}); err == nil {
		t.Fatal("NaN workload accepted")
	}
	bad2 := mat.Eye(3)
	bad2.Set(2, 2, math.Inf(1))
	if _, err := Decompose(bad2, Options{}); err == nil {
		t.Fatal("Inf workload accepted")
	}
	w := mat.Eye(3)
	if _, err := Decompose(w, Options{Rank: -1}); err == nil {
		t.Fatal("negative rank accepted")
	}
	if _, err := Decompose(w, Options{Gamma: -1}); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestDecomposeIdentityWorkload(t *testing.T) {
	// For W = I the optimal decomposition is essentially B = I, L = I
	// (up to sign/permutation), with SSE 2n/ε², matching noise-on-data.
	n := 8
	d, err := Decompose(mat.Eye(n), Options{Rank: n, Gamma: 1e-6, MaxOuterIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	sse := d.ExpectedSSE(1)
	want := 2 * float64(n)
	if sse > want*1.1 {
		t.Fatalf("identity SSE %v, want <= %v", sse, want*1.1)
	}
}

func TestDecomposeDeterministic(t *testing.T) {
	w := workload.Related(10, 12, 2, rng.New(11)).W
	d1, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decompose(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d1.B.EqualApprox(d2.B, 1e-12) || !d1.L.EqualApprox(d2.L, 1e-12) {
		t.Fatal("Decompose is not deterministic for identical inputs")
	}
}

func TestDecomposeRandomizedInitMatchesDefault(t *testing.T) {
	// On a genuinely low-rank workload the randomized init must land in
	// the same basin as the exact SVD init: same objective to a few
	// percent, and never above Lemma 3's bound.
	src := rng.New(21)
	w := workload.Related(48, 64, 5, src)
	exact, err := Decompose(w.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Decompose(w.W, Options{RandomizedInit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Converged {
		t.Fatal("randomized init did not converge")
	}
	eObj := exact.ExpectedSSE(1)
	fObj := fast.ExpectedSSE(1)
	if fObj > 1.1*eObj {
		t.Fatalf("randomized init objective %g vs exact-init %g", fObj, eObj)
	}
	bounds := AnalyzeBounds(w.W, 1)
	if fObj > bounds.Upper*(1+1e-9) {
		t.Fatalf("randomized init exceeded Lemma 3 bound: %g > %g", fObj, bounds.Upper)
	}
}

func TestDecomposeRandomizedInitExplicitRank(t *testing.T) {
	src := rng.New(22)
	w := workload.Related(32, 40, 4, src)
	d, err := Decompose(w.W, Options{RandomizedInit: true, Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	if d.B.Cols() != 6 || d.L.Rows() != 6 {
		t.Fatalf("rank not honored: B %dx%d, L %dx%d", d.B.Rows(), d.B.Cols(), d.L.Rows(), d.L.Cols())
	}
	if d.Residual > 1e-3*mat.FrobeniusNorm(w.W) {
		t.Fatalf("residual %g too large", d.Residual)
	}
}

func TestDecomposeRandomizedInitFullRankFallsBack(t *testing.T) {
	// A full-rank workload forces the adaptive probe to fall back to the
	// exact SVD; the result must still be valid and feasible.
	w := workload.Prefix(24)
	d, err := Decompose(w.W, Options{RandomizedInit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Converged {
		t.Fatal("fallback path did not converge")
	}
	if s := d.Sensitivity(); s > 1+1e-9 {
		t.Fatalf("sensitivity %g violates the L1 constraint", s)
	}
}

func TestDecomposeNeverLosesToNOR(t *testing.T) {
	// The marginal workload has sensitivity 2 but large squared sum, the
	// regime where noise-on-results dominates noise-on-data; the optimizer
	// must match or beat the NOR point m·Δ'² (it is a free candidate
	// whenever r ≥ m).
	w := workload.Marginal(12, 12)
	d, err := Decompose(w.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	delta := w.Sensitivity()
	norSSE := 2 * float64(w.Queries()) * delta * delta
	if got := d.ExpectedSSE(1); got > norSSE*(1+1e-6) {
		t.Fatalf("decomposition SSE %g loses to NOR %g", got, norSSE)
	}
	// And it must still not lose to noise-on-data either.
	nodSSE := 2 * w.SquaredSum()
	if got := d.ExpectedSSE(1); got > nodSSE*(1+1e-6) {
		t.Fatalf("decomposition SSE %g loses to NOD %g", got, nodSSE)
	}
}

func TestDecomposeNORCandidateSkippedWhenRankTooSmall(t *testing.T) {
	// With r < m the NOR point does not fit in B's m×r shape; the
	// decomposition must still succeed via the other candidates.
	w := workload.Related(30, 20, 3, rng.New(23))
	d, err := Decompose(w.W, Options{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.B.Cols() != 5 {
		t.Fatalf("rank not honored: %d", d.B.Cols())
	}
	if !d.Converged {
		t.Fatal("did not converge")
	}
}
