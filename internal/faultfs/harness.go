package faultfs

import "fmt"

// Point is one injectable failure point of a scenario: the Nth
// operation of one kind.
type Point struct {
	// Kind is which Faults field the point arms: "write", "shortwrite",
	// "sync", "rename", or "create".
	Kind string
	// N is the 1-based operation count the fault fires at.
	N int
}

func (p Point) String() string { return fmt.Sprintf("%s#%d", p.Kind, p.N) }

// Faults returns the fault configuration arming exactly this point.
func (p Point) Faults(tornTail bool) Faults {
	f := Faults{TornTail: tornTail}
	switch p.Kind {
	case "write":
		f.FailWrite = p.N
	case "shortwrite":
		f.ShortWrite = p.N
	case "sync":
		f.FailSync = p.N
	case "rename":
		f.FailRename = p.N
	case "create":
		f.FailCreate = p.N
	default:
		panic("faultfs: unknown point kind " + p.Kind)
	}
	return f
}

// Points enumerates every injectable failure point of a scenario by
// running it once against a fault-free injector and counting its
// operations. Crash-recovery harnesses iterate the result: for each
// point, re-run the scenario in a fresh directory with Point.Faults
// armed, then re-open through Disk and assert the recovery invariant.
// The scenario must be deterministic in its operation sequence.
func Points(scenario func(FS) error) ([]Point, error) {
	probe := New(Faults{})
	if err := scenario(probe); err != nil {
		return nil, fmt.Errorf("faultfs: fault-free probe run failed: %w", err)
	}
	writes, syncs, renames, creates := probe.Counts()
	var pts []Point
	add := func(kind string, count int) {
		for n := 1; n <= count; n++ {
			pts = append(pts, Point{Kind: kind, N: n})
		}
	}
	add("write", writes)
	add("shortwrite", writes)
	add("sync", syncs)
	add("rename", renames)
	add("create", creates)
	return pts, nil
}
