package privacy

import (
	"math"
	"testing"

	"lrm/internal/rng"
)

// TestLaplaceMechanismSatisfiesDPEmpirically estimates the privacy loss
// of the Laplace mechanism by simulation: release a single count under
// two neighbor databases many times, histogram the outputs, and check the
// empirical log-likelihood ratio never exceeds ε by more than sampling
// slack. This is a smoke test of the mechanism implementation (wrong
// noise scale or a biased sampler would blow the ratio), not a formal
// verification.
func TestLaplaceMechanismSatisfiesDPEmpirically(t *testing.T) {
	const (
		eps    = 1.0
		trials = 400000
		nBins  = 40
		lo, hi = -8.0, 9.0
	)
	width := (hi - lo) / nBins
	histogram := func(db float64, seed int64) []float64 {
		src := rng.New(seed)
		counts := make([]float64, nBins)
		for i := 0; i < trials; i++ {
			out, err := LaplaceMechanism([]float64{db}, 1, eps, src)
			if err != nil {
				t.Fatal(err)
			}
			b := int((out[0] - lo) / width)
			if b >= 0 && b < nBins {
				counts[b]++
			}
		}
		for i := range counts {
			counts[i] /= trials
		}
		return counts
	}
	// Neighbor databases: the count differs by exactly the sensitivity.
	p := histogram(0, 1)
	q := histogram(1, 2)
	worst := 0.0
	for i := range p {
		// Only compare well-populated bins; sparse tails are sampling
		// noise, and the DP inequality is about the true densities.
		if p[i]*trials < 200 || q[i]*trials < 200 {
			continue
		}
		r := math.Abs(math.Log(p[i] / q[i]))
		if r > worst {
			worst = r
		}
	}
	if worst > eps*1.15 {
		t.Fatalf("empirical privacy loss %g exceeds ε = %g beyond sampling slack", worst, eps)
	}
	if worst < eps*0.5 {
		t.Fatalf("empirical privacy loss %g implausibly small — noise scale looks wrong", worst)
	}
}

// TestGeometricMechanismSatisfiesDPEmpirically does the same for the
// discrete geometric mechanism, whose support makes the ratio exact per
// point.
func TestGeometricMechanismSatisfiesDPEmpirically(t *testing.T) {
	const (
		eps    = 0.8
		trials = 300000
	)
	pmf := func(db int64, seed int64) map[int64]float64 {
		src := rng.New(seed)
		counts := map[int64]float64{}
		for i := 0; i < trials; i++ {
			out, err := GeometricMechanism(db, 1, eps, src)
			if err != nil {
				t.Fatal(err)
			}
			counts[out]++
		}
		for k := range counts {
			counts[k] /= trials
		}
		return counts
	}
	p := pmf(0, 3)
	q := pmf(1, 4)
	worst := 0.0
	for k, pv := range p {
		qv := q[k]
		if pv*trials < 300 || qv*trials < 300 {
			continue
		}
		r := math.Abs(math.Log(pv / qv))
		if r > worst {
			worst = r
		}
	}
	if worst > eps*1.15 {
		t.Fatalf("empirical privacy loss %g exceeds ε = %g beyond sampling slack", worst, eps)
	}
}
