package workload

import (
	"bytes"
	"strings"
	"testing"

	"lrm/internal/rng"
)

func TestWorkloadCSVRoundTrip(t *testing.T) {
	w := Related(6, 9, 2, rng.New(1))
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.W.EqualApprox(w.W, 0) {
		t.Fatal("round-trip changed the workload")
	}
	if got.Name != "roundtrip" {
		t.Fatalf("name = %q", got.Name)
	}
}

func TestWorkloadReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("1,2\n3,oops\n")); err == nil {
		t.Fatal("bad float accepted")
	}
	// csv.Reader reports ragged rows itself.
	if _, err := ReadCSV("x", strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged csv accepted")
	}
}

func TestWorkloadCSVIntegerPrecision(t *testing.T) {
	w := Range(4, 7, rng.New(2))
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// 0/1 coefficients must serialize without decimal noise.
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, tok := range strings.Split(first, ",") {
		if tok != "0" && tok != "1" {
			t.Fatalf("unexpected token %q", tok)
		}
	}
}
