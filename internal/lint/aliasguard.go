package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AliasGuard flags calls to the mat (and sparse) in-place kernels whose
// destination syntactically aliases an operand that the kernel forbids
// aliasing. The kernels enforce the same rule at runtime with a
// sharesStorage panic, but only on the execution paths a test happens to
// drive; the analyzer turns the obvious cases — the same variable or the
// same field chain passed as both dst and operand — into findings on
// every path at build time.
var AliasGuard = &Analyzer{
	Name: "aliasguard",
	Doc: "flags mat in-place kernel calls (MulTo, GramTo, MulColsTo, …) " +
		"whose destination syntactically aliases an operand the kernel " +
		"must not alias; such calls panic at runtime and would corrupt " +
		"the operand mid-product if they did not",
	Run: runAliasGuard,
}

// aliasRule describes one kernel: which argument is the destination and
// which argument positions it must not alias. Argument indices are into
// the call's ordinary argument list (methods count from their first
// explicit argument).
type aliasRule struct {
	dst      int
	operands []int
}

// aliasKernels maps the fully qualified function name (types.Func.FullName)
// to its aliasing contract. Element-wise kernels (AddTo, ScaleTo, …)
// explicitly allow aliasing and are absent.
var aliasKernels = map[string]aliasRule{
	"lrm/internal/mat.MulTo":       {dst: 0, operands: []int{1, 2}},
	"lrm/internal/mat.MulABtTo":    {dst: 0, operands: []int{1, 2}},
	"lrm/internal/mat.MulAtBTo":    {dst: 0, operands: []int{1, 2}},
	"lrm/internal/mat.MulColsTo":   {dst: 0, operands: []int{1, 2}},
	"lrm/internal/mat.GramTo":      {dst: 0, operands: []int{1}},
	"lrm/internal/mat.GramTTo":     {dst: 0, operands: []int{1}},
	"lrm/internal/mat.TransposeTo": {dst: 0, operands: []int{1}},
	// SolveRightSPDTo(dst, b, a, lwork): dst may fully alias b (the
	// solve consumes b row-by-row into dst), but must not alias the
	// system matrix or the Cholesky scratch; lwork must be private.
	"lrm/internal/mat.SolveRightSPDTo": {dst: 0, operands: []int{2, 3}},
	// Vector kernels: dst must not alias the input vector.
	"lrm/internal/mat.MulVecTo":  {dst: 0, operands: []int{2}},
	"lrm/internal/mat.MulVecTTo": {dst: 0, operands: []int{2}},
	// sparse.CSR's dense product has the same contract as MulTo.
	"(*lrm/internal/sparse.CSR).MulDenseTo": {dst: 0, operands: []int{1}},
}

func runAliasGuard(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			rule, ok := aliasKernels[fn.FullName()]
			if !ok {
				return true
			}
			if len(call.Args) <= rule.dst {
				return true
			}
			dst := call.Args[rule.dst]
			for _, oi := range rule.operands {
				if oi >= len(call.Args) {
					continue
				}
				if sameExpr(pass.Info, dst, call.Args[oi]) {
					pass.Report(call.Pos(),
						"%s: destination %s aliases operand %d (this call panics at runtime)",
						shortKernelName(fn), exprString(dst), oi)
				}
			}
			return true
		})
	}
	return nil
}

// shortKernelName renders pkg.Func or Type.Method for diagnostics.
func shortKernelName(fn *types.Func) string {
	full := fn.FullName()
	if i := strings.LastIndex(full, "/"); i >= 0 {
		full = full[i+1:]
	}
	return full
}
