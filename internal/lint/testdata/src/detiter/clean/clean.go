// Package clean holds detiter fixtures that must produce no
// diagnostics: the collect-keys-then-sort idiom, map deletion, integer
// counting, and ranges over non-maps.
package clean

import "sort"

func sorted(m map[string]float64) []float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func prune(m map[string]float64) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func count(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
