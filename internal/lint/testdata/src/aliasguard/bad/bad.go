// Package bad holds aliasguard want-diagnostic fixtures: every call
// below passes the same variable or field chain as both destination and
// a forbidden operand.
package bad

import (
	"lrm/internal/mat"
	"lrm/internal/sparse"
)

type state struct {
	work *mat.Dense
}

func product(a, dst *mat.Dense) *mat.Dense {
	return mat.MulTo(dst, a, dst) // want `destination dst aliases operand 2`
}

func gram(g *mat.Dense) *mat.Dense {
	return mat.GramTo(g, g) // want `destination g aliases operand 1`
}

func fieldChain(s *state, b *mat.Dense) *mat.Dense {
	return mat.MulTo(s.work, s.work, b) // want `destination s\.work aliases operand 1`
}

func vec(dst []float64, a *mat.Dense) []float64 {
	return mat.MulVecTo(dst, a, dst) // want `destination dst aliases operand 2`
}

func sparseProduct(c *sparse.CSR, d *mat.Dense) *mat.Dense {
	return c.MulDenseTo(d, d) // want `destination d aliases operand 1`
}

func solveAliasedSystem(b, lwork *mat.Dense) error {
	return mat.SolveRightSPDTo(b, b, b, lwork) // want `destination b aliases operand 2`
}
