package privacy

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"lrm/internal/faultfs"
)

// ErrAccountantClosed is returned by Spend after Close: a closed
// accountant can no longer make a grant durable, so it must not grant
// at all.
var ErrAccountantClosed = errors.New("privacy: accountant closed")

// ErrUnknownTenant is returned by Spend for a tenant with no configured
// budget (no Totals entry and no DefaultTotal). Callers can map it to an
// authorization failure rather than a server fault.
var ErrUnknownTenant = errors.New("privacy: no budget configured for tenant")

// AccountantOptions configures OpenAccountant.
type AccountantOptions struct {
	// Dir is where the per-tenant write-ahead logs live (one
	// <hex(tenant)>.wal per tenant; created if needed). Empty means
	// memory-only: the same per-tenant accounting with no durability —
	// a crash forgets every spend.
	Dir string
	// FS is the filesystem the WAL writes through; nil means the real
	// disk (faultfs.Disk). Tests substitute a fault injector.
	FS faultfs.FS
	// DefaultTotal is the budget of any tenant without an entry in
	// Totals. Zero means unlisted tenants are rejected.
	DefaultTotal Epsilon
	// Totals overrides the budget per tenant.
	Totals map[string]Epsilon
	// CompactEvery bounds WAL growth: after this many delta records the
	// log is rewritten as a single snapshot record (default 4096;
	// negative disables compaction).
	CompactEvery int
}

// TenantStatus is one tenant's accounting snapshot, as surfaced by
// Tenants and the HTTP server's GET /stats.
type TenantStatus struct {
	Tenant    string  `json:"tenant"`
	Total     float64 `json:"total"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

// Accountant is a durable, per-tenant privacy budget: a map of
// tenant → Budget whose grants survive the process.
//
// The durability contract is write-ahead: a spend is appended to the
// tenant's log and fsynced *before* it is granted. A crash can
// therefore land in exactly two states — record absent (the grant was
// never issued; nothing to account) or record durable (the grant may or
// may not have been issued; the replay charges it anyway). Recovery can
// over-count ε that was never actually released, but can never refund ε
// that was: the conservative direction for a privacy budget, where the
// cost of a crash is wasted budget, not a silent privacy violation.
//
// An Accountant is safe for concurrent use. Spends of different tenants
// fsync in parallel; spends of one tenant serialize on its ledger.
type Accountant struct {
	dir          string
	fs           faultfs.FS
	defaultTotal Epsilon
	totals       map[string]Epsilon
	compactEvery int

	mu sync.Mutex
	//lrm:guardedby mu
	tenants map[string]*ledger
	//lrm:guardedby mu
	closed bool
}

// ledger is one tenant's accounting state: the in-memory budget and the
// open WAL it is replayed from and appended to.
type ledger struct {
	path string // "" in memory-only mode
	dir  string

	mu sync.Mutex
	//lrm:guardedby mu
	budget *Budget
	//lrm:guardedby mu
	w faultfs.File // nil in memory-only mode or after Close
	//lrm:guardedby mu
	records int // delta records appended to the current log file
	//lrm:guardedby mu
	closed bool
}

// OpenAccountant opens (or creates) the accountant state under
// opts.Dir, replaying every existing tenant log. A log with a torn
// final record replays cleanly — that is the crash the WAL exists to
// survive — while corruption anywhere earlier fails the open: a spend
// history that cannot be trusted must not admit new spends.
func OpenAccountant(opts AccountantOptions) (*Accountant, error) {
	if opts.DefaultTotal != 0 {
		if err := opts.DefaultTotal.Validate(); err != nil {
			return nil, fmt.Errorf("privacy: accountant default total: %w", err)
		}
	}
	for tenant, total := range opts.Totals {
		if err := total.Validate(); err != nil {
			return nil, fmt.Errorf("privacy: accountant total for %q: %w", tenant, err)
		}
	}
	a := &Accountant{
		dir:          opts.Dir,
		fs:           opts.FS,
		defaultTotal: opts.DefaultTotal,
		totals:       make(map[string]Epsilon, len(opts.Totals)),
		compactEvery: opts.CompactEvery,
		tenants:      make(map[string]*ledger),
	}
	for tenant, total := range opts.Totals {
		a.totals[tenant] = total
	}
	if a.fs == nil {
		a.fs = faultfs.Disk
	}
	if a.compactEvery == 0 {
		a.compactEvery = 4096
	}
	if a.dir == "" {
		return a, nil
	}
	if err := a.fs.MkdirAll(a.dir, 0o755); err != nil {
		return nil, fmt.Errorf("privacy: accountant dir: %w", err)
	}
	names, err := a.fs.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("privacy: accountant dir: %w", err)
	}
	for _, name := range names {
		hexName, ok := strings.CutSuffix(name, ".wal")
		if !ok {
			continue
		}
		raw, err := hex.DecodeString(hexName)
		if err != nil {
			continue // not one of ours
		}
		tenant := string(raw)
		l, err := a.openLedger(tenant)
		if err != nil {
			a.Close()
			return nil, err
		}
		a.tenants[tenant] = l
	}
	return a, nil
}

// totalFor resolves a tenant's budget cap, or 0 for an unknown tenant.
func (a *Accountant) totalFor(tenant string) Epsilon {
	if total, ok := a.totals[tenant]; ok {
		return total
	}
	return a.defaultTotal
}

// openLedger replays a tenant's WAL (if any) and opens it for append.
func (a *Accountant) openLedger(tenant string) (*ledger, error) {
	total := a.totalFor(tenant)
	if total == 0 {
		return nil, fmt.Errorf("%w %q", ErrUnknownTenant, tenant)
	}
	l := &ledger{}
	var spent Epsilon
	if a.dir != "" {
		l.dir = a.dir
		l.path = a.dir + string(os.PathSeparator) + hex.EncodeToString([]byte(tenant)) + ".wal"
		f, err := a.fs.Open(l.path)
		switch {
		case err == nil:
			data, rerr := io.ReadAll(f)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("privacy: reading wal for tenant %q: %w", tenant, rerr)
			}
			if spent, err = replayWAL(data); err != nil {
				return nil, fmt.Errorf("privacy: tenant %q: %w", tenant, err)
			}
		case os.IsNotExist(err):
			// First sight of this tenant.
		default:
			return nil, fmt.Errorf("privacy: opening wal for tenant %q: %w", tenant, err)
		}
		if l.w, err = a.fs.Append(l.path); err != nil {
			return nil, fmt.Errorf("privacy: opening wal for tenant %q: %w", tenant, err)
		}
	}
	l.budget = restoredBudget(total, spent)
	return l, nil
}

// ledgerFor returns (creating and replaying if needed) a tenant's ledger.
func (a *Accountant) ledgerFor(tenant string) (*ledger, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, ErrAccountantClosed
	}
	if l, ok := a.tenants[tenant]; ok {
		return l, nil
	}
	l, err := a.openLedger(tenant)
	if err != nil {
		return nil, err
	}
	a.tenants[tenant] = l
	return l, nil
}

// Spend durably consumes eps from a tenant's budget, or returns
// ErrBudgetExhausted (budget gone), ErrAccountantClosed (accountant
// shut down), or an I/O error (the grant could not be made durable, so
// it was not issued). The write-ahead ordering — admission check, log
// append, fsync, grant — means a crash anywhere inside Spend either
// loses the record (no grant happened) or keeps it (charged on replay
// whether or not the grant made it out): ε is over-counted at worst,
// never refunded.
func (a *Accountant) Spend(tenant string, eps Epsilon) error {
	if err := eps.Validate(); err != nil {
		return err
	}
	l, err := a.ledgerFor(tenant)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrAccountantClosed
	}
	// Admission first: a refused spend must not reach the log, or every
	// rejected request would inflate the durable count.
	if !l.budget.canSpend(eps) {
		return fmt.Errorf("%w: tenant %q spent %v + requested %v > total %v",
			ErrBudgetExhausted, tenant, float64(l.budget.Spent()), float64(eps), float64(l.budget.Total()))
	}
	if l.w != nil {
		if _, err := l.w.Write(appendWALRecord(nil, walDelta, float64(eps))); err != nil {
			return fmt.Errorf("privacy: wal append for tenant %q: %w", tenant, err)
		}
		if err := l.w.Sync(); err != nil {
			return fmt.Errorf("privacy: wal sync for tenant %q: %w", tenant, err)
		}
		l.records++
	}
	// The record is durable; the grant must follow. Under l.mu nothing
	// can have spent since the admission check, so this cannot fail.
	if err := l.budget.Spend(eps); err != nil {
		return err
	}
	if l.w != nil && a.compactEvery > 0 && l.records >= a.compactEvery {
		// Compaction is best-effort: on failure the old log remains
		// fully valid and the next spend retries. A crash between the
		// snapshot rename and the old log vanishing cannot refund — the
		// snapshot holds the full spent sum.
		if l.compact(a.fs) == nil {
			l.records = 0
		}
	}
	return nil
}

// compact rewrites the ledger's WAL as a single snapshot record holding
// the cumulative spent ε: temp file, fsync, rename over the log,
// directory fsync, then the append handle moves to the new file.
//
//lrm:guardedby mu
func (l *ledger) compact(fs faultfs.FS) error {
	tmp, err := fs.CreateTemp(l.dir, ".wal-compact-*")
	if err != nil {
		return err
	}
	cleanup := func() { _ = fs.Remove(tmp.Name()) }
	if _, err := tmp.Write(appendWALRecord(nil, walSnapshot, float64(l.budget.Spent()))); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := fs.Rename(tmp.Name(), l.path); err != nil {
		cleanup()
		return err
	}
	if err := fs.SyncDir(l.dir); err != nil {
		return err
	}
	w, err := fs.Append(l.path)
	if err != nil {
		// The compacted log is durable but unappendable; keep writing
		// through the old handle (same durability, larger file).
		return err
	}
	old := l.w
	l.w = w
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// Remaining returns a tenant's unspent ε, clamped at zero (a replayed
// over-count can push spent past total). Unknown tenants report their
// configured cap, spent-nothing.
func (a *Accountant) Remaining(tenant string) Epsilon {
	a.mu.Lock()
	l, ok := a.tenants[tenant]
	a.mu.Unlock()
	if !ok {
		return a.totalFor(tenant)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if r := l.budget.Remaining(); r > 0 {
		return r
	}
	return 0
}

// Spent returns a tenant's consumed ε (zero for unknown tenants).
func (a *Accountant) Spent(tenant string) Epsilon {
	a.mu.Lock()
	l, ok := a.tenants[tenant]
	a.mu.Unlock()
	if !ok {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.budget.Spent()
}

// Tenants returns the status of every tenant the accountant has seen
// (including those replayed from disk), sorted by tenant ID.
func (a *Accountant) Tenants() []TenantStatus {
	a.mu.Lock()
	names := make([]string, 0, len(a.tenants))
	for tenant := range a.tenants {
		names = append(names, tenant)
	}
	ledgers := make([]*ledger, len(names))
	for i, tenant := range names {
		ledgers[i] = a.tenants[tenant]
	}
	a.mu.Unlock()
	sort.Sort(&tenantSort{names, ledgers})
	out := make([]TenantStatus, len(names))
	for i, l := range ledgers {
		l.mu.Lock()
		total, spent := l.budget.Total(), l.budget.Spent()
		l.mu.Unlock()
		remaining := total - spent
		if remaining < 0 {
			remaining = 0
		}
		out[i] = TenantStatus{
			Tenant:    names[i],
			Total:     float64(total),
			Spent:     float64(spent),
			Remaining: float64(remaining),
		}
	}
	return out
}

// tenantSort sorts the parallel name/ledger slices by tenant name.
type tenantSort struct {
	names   []string
	ledgers []*ledger
}

func (s *tenantSort) Len() int           { return len(s.names) }
func (s *tenantSort) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *tenantSort) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.ledgers[i], s.ledgers[j] = s.ledgers[j], s.ledgers[i]
}

// Close flushes and closes every tenant log and rejects all subsequent
// spends with ErrAccountantClosed. It is idempotent; concurrent
// in-flight spends complete before their ledger closes.
func (a *Accountant) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	names := make([]string, 0, len(a.tenants))
	for tenant := range a.tenants {
		names = append(names, tenant)
	}
	sort.Strings(names)
	ledgers := make([]*ledger, len(names))
	for i, tenant := range names {
		ledgers[i] = a.tenants[tenant]
	}
	a.mu.Unlock()
	var first error
	for _, l := range ledgers {
		l.mu.Lock()
		l.closed = true
		if l.w != nil {
			if err := l.w.Close(); err != nil && first == nil {
				first = err
			}
			l.w = nil
		}
		l.mu.Unlock()
	}
	return first
}
