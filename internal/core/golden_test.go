package core

import (
	"math"
	"testing"

	"lrm/internal/mat"
)

// Golden cases with hand-derivable optima for the program in Formula (7).

func TestGoldenSingleTotalQuery(t *testing.T) {
	// W = [1 1]: the optimal decomposition is L = [1 1] (each column L1
	// norm exactly 1), B = [1], giving Φ·Δ² = 1 and SSE = 2/ε².
	// NOD would pay 2·ΣW² = 4.
	w := mat.FromRows([][]float64{{1, 1}})
	d, err := Decompose(w, Options{Rank: 1, Gamma: 1e-8, MaxOuterIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	sse := d.ExpectedSSE(1)
	if math.Abs(sse-2) > 0.05 {
		t.Fatalf("SSE = %v, want 2", sse)
	}
}

func TestGoldenRepeatedQuery(t *testing.T) {
	// W repeats the same query three times. The optimal strategy asks it
	// once (L = the query, normalized) and replays it through B, giving
	// SSE = 3·(Φ per copy)… concretely W = [[1],[1],[1]] over one bin:
	// L = [1], B = (1,1,1)ᵀ, Φ = 3, Δ = 1 → SSE = 6/ε².
	// (NOR would pay 2·m·Δ(W)² = 2·3·9 = 54; NOD pays 2·ΣW² = 6 as well,
	// since duplicating a unit query costs nothing extra under NOD.)
	w := mat.FromRows([][]float64{{1}, {1}, {1}})
	d, err := Decompose(w, Options{Rank: 1, Gamma: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if sse := d.ExpectedSSE(1); math.Abs(sse-6) > 0.1 {
		t.Fatalf("SSE = %v, want 6", sse)
	}
}

func TestGoldenDisjointRanges(t *testing.T) {
	// q1 = x1+x2, q2 = x3+x4 are disjoint: both can be asked at full
	// sensitivity 1 simultaneously. Optimal SSE = 2·2/ε² = 4 with
	// L = [[1,1,0,0],[0,0,1,1]], B = I.
	w := mat.FromRows([][]float64{
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	d, err := Decompose(w, Options{Rank: 2, Gamma: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if sse := d.ExpectedSSE(1); math.Abs(sse-4) > 0.1 {
		t.Fatalf("SSE = %v, want 4", sse)
	}
}

func TestGoldenSumAndParts(t *testing.T) {
	// The introduction's first example: q1 = q2 + q3 where q2, q3 are
	// disjoint range sums. The hand-crafted strategy {q2, q3} achieves
	// SSE 8/ε² with B = [[1,1],[1,0],[0,1]]. The single-start ALM lands
	// in the symmetric SVD basin (SSE ≈ 14.6) — the program is nonconvex
	// and Theorem 2 only certifies the SVD-init bound, so the assertion
	// here is "strictly better than NOD's 16"; with restarts the
	// optimizer closes most of the remaining gap (see
	// TestGoldenSumAndPartsWithRestarts).
	w := mat.FromRows([][]float64{
		{1, 1, 1, 1},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	d, err := Decompose(w, Options{Rank: 2, Gamma: 1e-8, MaxOuterIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sse := d.ExpectedSSE(1); sse >= 16 || sse < 7.9 {
		t.Fatalf("SSE = %v, want in [8, 16)", sse)
	}
}

func TestGoldenSumAndPartsWithRestarts(t *testing.T) {
	w := mat.FromRows([][]float64{
		{1, 1, 1, 1},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	d, err := Decompose(w, Options{Rank: 2, Gamma: 1e-8, MaxOuterIter: 200, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Decompose(w, Options{Rank: 2, Gamma: 1e-8, MaxOuterIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if d.ExpectedSSE(1) > base.ExpectedSSE(1)*(1+1e-9) {
		t.Fatalf("restarts made things worse: %v vs %v", d.ExpectedSSE(1), base.ExpectedSSE(1))
	}
}
