package faultfs

import (
	"errors"
	"os"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the error returned by the operation a fault was armed
// on. From the caller's perspective it is indistinguishable from a real
// I/O failure followed by the process dying.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a fault has fired:
// the simulated process is dead and may not touch the disk again. A
// harness re-opens the directory through Disk to play recovery.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Faults arms at most one failure point per field, counted 1-based
// across the injector's lifetime. Zero means "never". The injector
// simulates a crash at the armed operation: the operation fails (or
// half-succeeds, for ShortWrite and a dirty-source rename), on-disk
// state is rewound to what survived the crash, and all later operations
// return ErrCrashed.
type Faults struct {
	// FailWrite crashes on the Nth File.Write, with none of its bytes
	// written.
	FailWrite int
	// ShortWrite crashes on the Nth File.Write after persisting only the
	// first half of its bytes — a torn write.
	ShortWrite int
	// FailSync crashes on the Nth sync, counting File.Sync and SyncDir
	// together in operation order.
	FailSync int
	// FailRename crashes on the Nth Rename. If the source file has
	// unsynced bytes the swap itself survives but the data does not (the
	// destination is truncated to the synced prefix — the classic
	// rename-without-fsync torn file); if the source was clean the swap
	// is lost instead and the previous destination remains.
	FailRename int
	// FailCreate crashes on the Nth Create/CreateTemp/Append, before the
	// file exists.
	FailCreate int
	// Delay is added to every operation before it executes, for latency
	// injection under concurrent load.
	Delay time.Duration
	// TornTail changes the crash rewind to keep half of each file's
	// unsynced suffix instead of dropping it — a torn final page — so
	// recovery code must tolerate partially persisted records, not just
	// cleanly truncated ones.
	TornTail bool
}

// Injector is an FS that forwards to the real filesystem (Disk) while
// counting operations and simulating a crash at the armed failure
// point. It is safe for concurrent use.
type Injector struct {
	faults Faults

	mu sync.Mutex
	//lrm:guardedby mu
	writes int
	//lrm:guardedby mu
	syncs int
	//lrm:guardedby mu
	renames int
	//lrm:guardedby mu
	creates int
	//lrm:guardedby mu
	crashed bool
	// files tracks every file opened for writing, keyed by its current
	// path (renames re-key), with how much of it is durable.
	//
	//lrm:guardedby mu
	files map[string]*fileState
	// pending holds renames whose parent directory has not been synced;
	// a crash undoes them newest-first.
	//
	//lrm:guardedby mu
	pending []pendingRename
}

type fileState struct {
	f      *os.File // nil once closed
	synced int64    // durable bytes (as of the last successful Sync)
	size   int64    // written bytes
}

type pendingRename struct {
	dir    string
	path   string // destination
	hadOld bool
	old    []byte // previous destination content, when hadOld
}

// New returns an injector arming the given faults.
func New(f Faults) *Injector {
	return &Injector{faults: f, files: make(map[string]*fileState)}
}

// Tripped reports whether the armed fault has fired.
func (i *Injector) Tripped() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Counts returns how many writes, syncs, renames, and creates have been
// performed — the enumeration a crash-point sweep iterates over.
func (i *Injector) Counts() (writes, syncs, renames, creates int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.writes, i.syncs, i.renames, i.creates
}

// Crash simulates an asynchronous kill: on-disk state is rewound and
// every subsequent operation fails with ErrCrashed.
func (i *Injector) Crash() {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.crashed {
		i.crashLocked()
	}
}

// crashLocked rewinds the disk to the durable state: every tracked file
// is truncated to its synced prefix (plus half the unsynced suffix in
// TornTail mode), and renames never made durable by a SyncDir are
// undone, newest first. Caller holds i.mu.
//
//lrm:guardedby mu
func (i *Injector) crashLocked() {
	i.crashed = true
	paths := make([]string, 0, len(i.files))
	for path := range i.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		st := i.files[path]
		keep := st.synced
		if i.faults.TornTail && st.size > st.synced {
			keep += (st.size - st.synced + 1) / 2
		}
		if st.f != nil {
			st.f.Close()
			st.f = nil
		}
		// The file may have been removed or renamed over since; a failed
		// truncate of a vanished path is exactly the crash outcome.
		_ = os.Truncate(path, keep)
	}
	for n := len(i.pending) - 1; n >= 0; n-- {
		p := i.pending[n]
		if p.hadOld {
			_ = os.WriteFile(p.path, p.old, 0o644)
		} else {
			_ = os.Remove(p.path)
		}
	}
	i.pending = nil
}

// delay applies the configured latency before an operation runs.
func (i *Injector) delay() {
	if i.faults.Delay > 0 {
		time.Sleep(i.faults.Delay)
	}
}

// alive reports whether the injector has not yet crashed, for the
// read-only passthrough operations that do their I/O outside the lock.
func (i *Injector) alive() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return !i.crashed
}

func (i *Injector) MkdirAll(dir string, perm os.FileMode) error {
	i.delay()
	if !i.alive() {
		return ErrCrashed
	}
	return os.MkdirAll(dir, perm)
}

func (i *Injector) Open(name string) (File, error) {
	i.delay()
	if !i.alive() {
		return nil, ErrCrashed
	}
	return os.Open(name)
}

// create is the shared body of Create, CreateTemp, and Append.
//
//lrm:guardedby mu
func (i *Injector) create(open func() (*os.File, error), existing bool) (File, error) {
	i.creates++
	if i.creates == i.faults.FailCreate {
		i.crashLocked()
		return nil, ErrInjected
	}
	f, err := open()
	if err != nil {
		return nil, err
	}
	st := &fileState{f: f}
	if existing {
		// Append: bytes already in the file were durable before this
		// process touched them.
		if info, err := f.Stat(); err == nil {
			st.synced, st.size = info.Size(), info.Size()
		}
	}
	i.files[f.Name()] = st
	return &injFile{inj: i, st: st, f: f}, nil
}

func (i *Injector) Create(name string) (File, error) {
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return nil, ErrCrashed
	}
	return i.create(func() (*os.File, error) { return os.Create(name) }, false)
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return nil, ErrCrashed
	}
	return i.create(func() (*os.File, error) { return os.CreateTemp(dir, pattern) }, false)
}

func (i *Injector) Append(name string) (File, error) {
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return nil, ErrCrashed
	}
	return i.create(func() (*os.File, error) {
		return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	}, true)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return ErrCrashed
	}
	i.renames++
	st := i.files[oldpath]
	if i.renames == i.faults.FailRename {
		if st != nil && st.synced < st.size {
			// Dirty source: the directory swap makes it to disk but the
			// file data does not — perform the rename, then crash, which
			// truncates the destination to the synced prefix. This is
			// the torn/zero-length file a temp+rename without fsync
			// leaves behind.
			if err := os.Rename(oldpath, newpath); err == nil {
				delete(i.files, oldpath)
				i.files[newpath] = st
			}
		}
		// Clean source: rename is atomic and the data durable, so the
		// only thing a crash can lose is the un-fsynced directory entry —
		// the swap simply never happened.
		i.crashLocked()
		return ErrInjected
	}
	var backup []byte
	hadOld := false
	if old, err := os.ReadFile(newpath); err == nil {
		backup, hadOld = old, true
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	delete(i.files, newpath) // any tracked file at the destination is overwritten
	if st != nil {
		delete(i.files, oldpath)
		i.files[newpath] = st
	}
	i.pending = append(i.pending, pendingRename{
		dir: dirOf(newpath), path: newpath, hadOld: hadOld, old: backup,
	})
	return nil
}

func (i *Injector) Remove(name string) error {
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return ErrCrashed
	}
	if st, ok := i.files[name]; ok {
		if st.f != nil {
			st.f.Close()
			st.f = nil
		}
		delete(i.files, name)
	}
	return os.Remove(name)
}

func (i *Injector) SyncDir(dir string) error {
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return ErrCrashed
	}
	i.syncs++
	if i.syncs == i.faults.FailSync {
		i.crashLocked()
		return ErrInjected
	}
	if err := Disk.SyncDir(dir); err != nil {
		return err
	}
	kept := i.pending[:0]
	for _, p := range i.pending {
		if p.dir != dir {
			kept = append(kept, p)
		}
	}
	i.pending = kept
	return nil
}

func (i *Injector) ReadDir(dir string) ([]string, error) {
	i.delay()
	if !i.alive() {
		return nil, ErrCrashed
	}
	return Disk.ReadDir(dir)
}

func dirOf(path string) string {
	for n := len(path) - 1; n >= 0; n-- {
		if path[n] == '/' || path[n] == os.PathSeparator {
			return path[:n]
		}
	}
	return "."
}

// injFile is the injector's writable file handle.
type injFile struct {
	inj *Injector
	st  *fileState
	f   *os.File
}

func (w *injFile) Name() string { return w.f.Name() }

func (w *injFile) Read(p []byte) (int, error) {
	w.inj.delay()
	if !w.inj.alive() {
		return 0, ErrCrashed
	}
	return w.f.Read(p)
}

func (w *injFile) Write(p []byte) (int, error) {
	i := w.inj
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return 0, ErrCrashed
	}
	i.writes++
	switch {
	case i.writes == i.faults.FailWrite:
		i.crashLocked()
		return 0, ErrInjected
	case i.writes == i.faults.ShortWrite:
		n, _ := w.f.Write(p[:len(p)/2])
		w.st.size += int64(n)
		i.crashLocked()
		return n, ErrInjected
	}
	n, err := w.f.Write(p)
	w.st.size += int64(n)
	return n, err
}

func (w *injFile) Sync() error {
	i := w.inj
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return ErrCrashed
	}
	i.syncs++
	if i.syncs == i.faults.FailSync {
		i.crashLocked()
		return ErrInjected
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.st.synced = w.st.size
	return nil
}

func (w *injFile) Close() error {
	i := w.inj
	i.delay()
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return ErrCrashed
	}
	// Closing does not make data durable: synced stays where the last
	// Sync left it, and the state remains tracked so a later crash still
	// truncates the unsynced suffix.
	w.st.f = nil
	return w.f.Close()
}
