package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lrm/internal/mat"
)

// WriteCSV writes the workload matrix as CSV: one query per row, n
// coefficient columns. The format round-trips through ReadCSV and is the
// format cmd/lrmrun consumes.
func (w *Workload) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	rec := make([]string, w.Domain())
	for i := 0; i < w.Queries(); i++ {
		row := w.W.RawRow(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a workload written by WriteCSV. Every row must have the
// same number of coefficients. Rows stream one at a time into the
// coefficient buffer — the only allocation proportional to the input is
// the matrix itself, never a second [][]string copy of the whole file.
func ReadCSV(name string, in io.Reader) (*Workload, error) {
	cr := csv.NewReader(in)
	cr.ReuseRecord = true
	var (
		data []float64
		n    int
		rows int
	)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading csv: %w", err)
		}
		if rows == 0 {
			n = len(rec)
		} else if len(rec) != n {
			return nil, fmt.Errorf("workload: row %d has %d columns, want %d", rows, len(rec), n)
		}
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: row %d column %d: %w", rows, j, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if rows == 0 {
		return nil, fmt.Errorf("workload: empty csv")
	}
	var w mat.Dense
	w.Reuse(rows, n, data)
	return FromMatrix(name, &w), nil
}
