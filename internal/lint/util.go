package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// calleeFunc resolves a call's static callee, or nil for builtins,
// function values, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeBuiltin resolves a call to a builtin (make, new, append, …), or
// returns "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// sameExpr reports whether two expressions are syntactically the same
// storage location: identical identifier chains resolving to identical
// objects. It is deliberately conservative — distinct expressions that
// alias dynamically (two slices over one array) are out of scope for a
// syntactic check and left to the runtime guards.
func sameExpr(info *types.Info, x, y ast.Expr) bool {
	x, y = ast.Unparen(x), ast.Unparen(y)
	switch xe := x.(type) {
	case *ast.Ident:
		ye, ok := y.(*ast.Ident)
		if !ok {
			return false
		}
		xo, yo := info.Uses[xe], info.Uses[ye]
		return xo != nil && xo == yo
	case *ast.SelectorExpr:
		ye, ok := y.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		xo, yo := info.Uses[xe.Sel], info.Uses[ye.Sel]
		if xo == nil || xo != yo {
			return false
		}
		return sameExpr(info, xe.X, ye.X)
	case *ast.IndexExpr:
		ye, ok := y.(*ast.IndexExpr)
		if !ok {
			return false
		}
		return sameExpr(info, xe.X, ye.X) && sameExpr(info, xe.Index, ye.Index)
	case *ast.StarExpr:
		ye, ok := y.(*ast.StarExpr)
		if !ok {
			return false
		}
		return sameExpr(info, xe.X, ye.X)
	case *ast.UnaryExpr:
		ye, ok := y.(*ast.UnaryExpr)
		if !ok || xe.Op != ye.Op {
			return false
		}
		return sameExpr(info, xe.X, ye.X)
	case *ast.BasicLit:
		ye, ok := y.(*ast.BasicLit)
		return ok && xe.Kind == ye.Kind && xe.Value == ye.Value
	}
	return false
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(info *types.Info, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders an expression compactly for diagnostics.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// isConstExpr reports whether the expression is a compile-time constant,
// returning its value rendering when it is.
func isConstExpr(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	return tv.Value.String(), true
}

// hasDirective reports whether the function declaration's doc comment
// carries the given //-directive (e.g. "//lrm:noalloc"), which may take
// trailing explanatory text.
func hasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == directive || len(c.Text) > len(directive) &&
			c.Text[:len(directive)] == directive &&
			(c.Text[len(directive)] == ' ' || c.Text[len(directive)] == '\t') {
			return true
		}
	}
	return false
}
