package engine

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"lrm/internal/core"
	"lrm/internal/mechanism"
	"lrm/internal/plan"
	"lrm/internal/rng"
	"lrm/internal/workload"
)

// lowRankKronSpec is a Kronecker product of genuinely low-rank dense
// factors: the planner routes it to the factored LRM.
func lowRankKronSpec(seed int64) *workload.KronSpec {
	src := rng.New(seed)
	f1 := workload.Related(14, 12, 2, src)
	f2 := workload.Related(10, 9, 2, src)
	return workload.NewKronSpec(workload.AsSpec(f1), workload.AsSpec(f2))
}

// TestSpecAnswer: the implicit path end to end on a plan-aware engine —
// right shape, Implicit counted, spec-namespaced fingerprint, and the
// dense counters behave exactly as for a matrix workload.
func TestSpecAnswer(t *testing.T) {
	e := newPlannedEngine(t, Options{Planner: &plan.Options{}})
	s, err := workload.ParseSpec("kron:prefix(16)xprefix(8)")
	if err != nil {
		t.Fatal(err)
	}
	x := testHistogram(s.Domain(), 7)
	out, err := e.Answer(Request{Spec: s, Histograms: [][]float64{x}, Eps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != s.Queries() {
		t.Fatalf("answer shape %d×%d, want 1×%d", len(out), len(out[0]), s.Queries())
	}
	// Deterministic at a fixed seed, like the dense path.
	again, err := e.Answer(Request{Spec: s, Histograms: [][]float64{x}, Eps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out[0] {
		if out[0][i] != again[0][i] {
			t.Fatalf("answer not deterministic at fixed seed (row %d)", i)
		}
	}
	st := e.Stats()
	if st.Implicit != 2 || st.Requests != 2 || st.Prepares != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 implicit requests, 1 prepare, 1 hit", st)
	}
	ds := e.Decisions()
	if len(ds) != 1 || !strings.HasPrefix(ds[0].Fingerprint, "spec-") {
		t.Fatalf("decisions = %+v, want one spec-namespaced plan", ds)
	}
}

// TestSpecRequestValidation: a request must set exactly one of Workload
// and Spec, and implicit requests get the same histogram validation as
// dense ones.
func TestSpecRequestValidation(t *testing.T) {
	e := newPlannedEngine(t, Options{Planner: &plan.Options{}})
	s := workload.NewPrefixSpec(8)
	w := testWorkload(1)
	if _, err := e.Answer(Request{Workload: w, Spec: s, Histograms: [][]float64{testHistogram(8, 1)}, Eps: 1}); err == nil {
		t.Error("request with both Workload and Spec accepted")
	}
	if _, err := e.Answer(Request{Spec: s, Eps: 1}); err == nil {
		t.Error("spec request with no histograms accepted")
	}
	if _, err := e.Answer(Request{Spec: s, Histograms: [][]float64{testHistogram(7, 1)}, Eps: 1}); err == nil {
		t.Error("spec request with a short histogram accepted")
	}
	if _, err := e.Answer(Request{Spec: s, Histograms: [][]float64{testHistogram(8, 1)}, Eps: 0}); err == nil {
		t.Error("spec request with zero epsilon accepted")
	}
	if st := e.Stats(); st.Implicit != 0 {
		t.Errorf("rejected requests counted as implicit: %+v", st)
	}
}

// TestSpecPlannedDiskRestore is the acceptance contract for the spec
// disk cache: a second engine sharing the cache directory must serve an
// lrm-planned spec with ZERO prepares — the plan document restores the
// decision, the .lrmk restores the factored decomposition — and produce
// bit-identical answers at the same seed.
func TestSpecPlannedDiskRestore(t *testing.T) {
	dir := t.TempDir()
	s := lowRankKronSpec(31)
	x := testHistogram(s.Domain(), 32)
	req := Request{Spec: s, Histograms: [][]float64{x}, Eps: 0.7, Seed: 99}

	var p1 atomic.Int64
	e1 := newPlannedEngine(t, Options{
		CacheDir:    dir,
		PrepareHook: func(string) { p1.Add(1) },
	})
	got1, err := e1.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Load() != 1 {
		t.Fatalf("first engine prepared %d times, want 1", p1.Load())
	}
	if ds := e1.Decisions(); len(ds) != 1 || ds[0].Mechanism != "lrm" {
		t.Fatalf("decisions = %+v, want an lrm winner (the restore under test)", ds)
	}
	lrmk, err := filepath.Glob(filepath.Join(dir, "spec-*.lrmk"))
	if err != nil || len(lrmk) != 1 {
		t.Fatalf("want exactly one .lrmk in the cache dir, got %v (%v)", lrmk, err)
	}

	var p2 atomic.Int64
	e2 := newPlannedEngine(t, Options{
		CacheDir:    dir,
		PrepareHook: func(string) { p2.Add(1) },
	})
	got2, err := e2.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Load() != 0 {
		t.Fatalf("second engine ran %d prepares, want 0 (disk restore)", p2.Load())
	}
	st := e2.Stats()
	if st.Prepares != 0 || st.DiskHits != 1 {
		t.Fatalf("second engine stats = %+v, want 0 prepares and 1 disk hit", st)
	}
	for i := range got1[0] {
		if got1[0][i] != got2[0][i] {
			t.Fatalf("restored engine diverges at row %d: %g vs %g", i, got1[0][i], got2[0][i])
		}
	}
}

// TestSpecPlannedDiskRestoreBaseline: a baseline (lm) winner restores
// from the plan document alone — no .lrmk exists, and no Prepare runs.
func TestSpecPlannedDiskRestoreBaseline(t *testing.T) {
	dir := t.TempDir()
	s, err := workload.ParseSpec("kron:prefix(16)xprefix(16)")
	if err != nil {
		t.Fatal(err)
	}
	x := testHistogram(s.Domain(), 40)
	req := Request{Spec: s, Histograms: [][]float64{x}, Eps: 1, Seed: 41}

	e1 := newPlannedEngine(t, Options{Planner: &plan.Options{}, CacheDir: dir})
	got1, err := e1.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if ds := e1.Decisions(); len(ds) != 1 || ds[0].Mechanism != "lm" {
		t.Fatalf("decisions = %+v, want an lm winner", ds)
	}

	var p2 atomic.Int64
	e2 := newPlannedEngine(t, Options{Planner: &plan.Options{}, CacheDir: dir, PrepareHook: func(string) { p2.Add(1) }})
	got2, err := e2.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Load() != 0 {
		t.Fatalf("baseline restore ran %d prepares, want 0", p2.Load())
	}
	for i := range got1[0] {
		if got1[0][i] != got2[0][i] {
			t.Fatalf("restored engine diverges at row %d", i)
		}
	}
}

// TestSpecFixedLRMDiskRestore: a fixed-mechanism LRM engine persists the
// factored decomposition as .lrmk and a second engine restores it with
// zero prepares and bit-identical answers.
func TestSpecFixedLRMDiskRestore(t *testing.T) {
	dir := t.TempDir()
	s := lowRankKronSpec(50)
	x := testHistogram(s.Domain(), 51)
	req := Request{Spec: s, Histograms: [][]float64{x}, Eps: 0.9, Seed: 52}

	e1 := newTestEngine(t, Options{CacheDir: dir})
	got1, err := e1.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := e1.Stats(); st.Prepares != 1 || st.DiskWrites != 1 {
		t.Fatalf("first engine stats = %+v, want 1 prepare and 1 disk write", st)
	}

	var p2 atomic.Int64
	e2 := newTestEngine(t, Options{CacheDir: dir, PrepareHook: func(string) { p2.Add(1) }})
	got2, err := e2.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Load() != 0 {
		t.Fatalf("second engine ran %d prepares, want 0", p2.Load())
	}
	if st := e2.Stats(); st.DiskHits != 1 {
		t.Fatalf("second engine stats = %+v, want 1 disk hit", st)
	}
	for i := range got1[0] {
		if got1[0][i] != got2[0][i] {
			t.Fatalf("restored engine diverges at row %d", i)
		}
	}
}

// TestSpecDiskRejectsTamperedKron: a .lrmk holding a different spec's
// factorization must fail the per-factor residual check and fall back to
// a fresh preparation instead of silently poisoning answers.
func TestSpecDiskRejectsTamperedKron(t *testing.T) {
	dir := t.TempDir()
	victim := lowRankKronSpec(60)
	other := workload.NewKronSpec(
		workload.AsSpec(workload.Related(14, 12, 2, rng.New(999))),
		workload.AsSpec(workload.Related(10, 9, 2, rng.New(998))),
	)
	e1 := newTestEngine(t, Options{CacheDir: dir})
	if _, err := e1.Answer(Request{Spec: other, Histograms: [][]float64{testHistogram(other.Domain(), 1)}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.lrmk"))
	if len(files) != 1 {
		t.Fatalf("want one .lrmk, got %v", files)
	}
	// Plant the other spec's decomposition under the victim's cache key.
	// Same shapes, different matrices — only the residual check can tell.
	victimPath := e1.specDiskPath(workload.SpecFingerprint(victim))
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victimPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var prepares atomic.Int64
	e2 := newTestEngine(t, Options{CacheDir: dir, PrepareHook: func(string) { prepares.Add(1) }})
	if _, err := e2.Answer(Request{Spec: victim, Histograms: [][]float64{testHistogram(victim.Domain(), 2)}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if prepares.Load() != 1 {
		t.Fatalf("planted foreign decomposition served without a fresh prepare (%d prepares)", prepares.Load())
	}
}

// TestSpecDenseAdapterSharesDenseCache: a Spec request wrapping a dense
// workload and a plain Workload request must agree on the fingerprint,
// so the second form hits the first's cache entry.
func TestSpecDenseAdapterSharesDenseCache(t *testing.T) {
	var prepares atomic.Int64
	e := newTestEngine(t, Options{PrepareHook: func(string) { prepares.Add(1) }})
	w := testWorkload(70)
	x := testHistogram(w.Domain(), 71)
	if _, err := e.Answer(Request{Spec: workload.AsSpec(w), Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Answer(Request{Workload: w, Histograms: [][]float64{x}, Eps: 1}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if prepares.Load() != 1 || st.Hits != 1 {
		t.Fatalf("adapter and dense requests did not share a cache entry: %d prepares, stats %+v", prepares.Load(), st)
	}
	if st.Implicit != 1 {
		t.Fatalf("stats = %+v, want exactly the spec request counted implicit", st)
	}
}

// TestSpecAcceptanceScale is the ISSUE acceptance criterion: a Kronecker
// spec with m·n ≥ 10¹² cells plans, prepares, and answers through the
// engine without ever allocating an m×n matrix. The workload is
// 2²⁰×2²⁰ ≈ 1.1·10¹² cells — materialized, ~8 TB — and the whole serve
// must stay under 256 MB of cumulative allocation.
func TestSpecAcceptanceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second at -short")
	}
	dir := t.TempDir()
	s, err := workload.ParseSpec("kron:prefix(1024)xprefix(1024)")
	if err != nil {
		t.Fatal(err)
	}
	if cells := float64(s.Queries()) * float64(s.Domain()); cells < 1e12 {
		t.Fatalf("spec is only %g cells, acceptance needs ≥ 1e12", cells)
	}
	x := rng.New(80).UniformVec(s.Domain(), 0, 10)
	req := Request{Spec: s, Histograms: [][]float64{x}, Eps: 1, Seed: 81}

	e1 := newPlannedEngine(t, Options{Planner: &plan.Options{}, CacheDir: dir})
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	out, err := e1.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if len(out[0]) != s.Queries() {
		t.Fatalf("answer length %d, want %d", len(out[0]), s.Queries())
	}
	allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	if allocMB > 256 {
		t.Fatalf("serving a 10¹²-cell spec allocated %.0f MB — something materialized W", allocMB)
	}
	t.Logf("planned, prepared, and answered 2²⁰×2²⁰ with %.1f MB allocated", allocMB)
	// Answers are finite and the prefix structure holds approximately:
	// later prefixes accumulate more mass than early ones on average.
	for i, v := range out[0] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite answer at row %d", i)
		}
	}

	// Acceptance part two: a fresh engine on the same cache directory
	// restores by Spec.Digest() with zero prepares.
	var p2 atomic.Int64
	e2 := newPlannedEngine(t, Options{Planner: &plan.Options{}, CacheDir: dir, PrepareHook: func(string) { p2.Add(1) }})
	out2, err := e2.Answer(req)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Load() != 0 {
		t.Fatalf("restore ran %d prepares, want 0", p2.Load())
	}
	for i := range out[0] {
		if out[0][i] != out2[0][i] {
			t.Fatalf("restored engine diverges at row %d", i)
		}
	}
}

// TestSpecPreparedFromKronRoundTrip: what the engine writes to .lrmk is
// what PreparedFromKronDecomposition serves — answers from the restored
// file are bit-identical to the original preparation's.
func TestSpecPreparedFromKronRoundTrip(t *testing.T) {
	s := lowRankKronSpec(90)
	p, err := mechanism.PrepareSpec(mechanism.LRM{Options: fastOpts()}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := kronDecompositionOf(p)
	if !ok {
		t.Fatal("LRM spec preparation does not expose its factored decomposition")
	}
	if _, err := core.NewKronMechanism(d); err != nil {
		t.Fatalf("restored mechanism: %v", err)
	}
}
