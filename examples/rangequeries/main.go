// Rangequeries: histogram publishing for range counts — the workload the
// wavelet and hierarchical baselines were designed for. Compares LM, WM,
// HM and LRM on random range queries over a large synthetic Net Trace
// histogram, reporting measured average squared error (Monte Carlo, as in
// the paper's Section 6) and preparation time.
package main

import (
	"fmt"

	"lrm"
)

func main() {
	const (
		n      = 512 // domain size
		m      = 64  // number of range queries
		trials = 5
	)
	eps := lrm.Epsilon(0.1)

	data := lrm.NetTrace(8192, lrm.NewSource(3)).Merge(n)
	w := lrm.RangeWorkload(m, n, lrm.NewSource(4))
	fmt.Printf("workload: %d range queries over %d bins (rank %d)\n", m, n, w.Rank())

	for _, mech := range []lrm.Mechanism{
		lrm.LaplaceData{},
		lrm.Wavelet{},
		lrm.Hierarchical{},
		lrm.LRM{},
	} {
		meas, err := lrm.Evaluate(mech, w, data.Counts, eps, trials, lrm.NewSource(5))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-4s  avg squared error %.4g   prepare %.2fs\n",
			mech.Name(), meas.AvgSquaredError, meas.PrepareSeconds)
	}
	fmt.Println("\n(LRM exploits the fact that m = 64 queries over n = 1024 bins")
	fmt.Println(" span a rank-64 subspace; WM/HM exploit the range structure.)")
}
